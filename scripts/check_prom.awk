# Tiny Prometheus text-format checker (plain awk — no gawk extensions).
#
#   awk -f scripts/check_prom.awk metrics.prom
#
# Accepts # HELP/# TYPE comments and sample lines `name[{labels}] value`;
# requires every sample's family to carry a # TYPE declaration and at
# least one sample overall. Knows the detector families' fixed shapes:
# triad_detector_alarms_total must be a counter and
# triad_detector_first_alarm_seconds a gauge wherever they appear, and
# with `-v require_detectors=1` every detector-labelled alarm series
# plus the first-alarm gauge becomes mandatory — attack-free runs
# export them as explicit zeros, so their absence means the detector
# bank was not wired in. Prints the first offence and exits 1.
#
# With `-v families=scripts/prom_families.txt` the generated R9 metric
# inventory (`triad_lint --emit-metric-inventory`) drives the check:
# every # TYPE declaration for an inventoried family must match the
# kind the source registered, and the require_detectors series list is
# read from the inventory's detector= label values instead of the
# built-in slope/disagreement/jump fallback — so a detector added in
# code is demanded here without touching this script.
#
# With `-v http=1` the input is a raw scrape of a telemetry endpoint
# (triad_timed --telemetry): the status line must be HTTP/1.0 200 OK,
# header lines up to the first blank line are skipped, trailing \r is
# stripped, and the body is validated as above.

function fail(msg) {
  printf "check_prom: line %d: %s\n", NR, msg
  bad = 1
  exit 1
}

BEGIN {
  if (families != "") {
    while ((getline inv_line < families) > 0) {
      if (inv_line == "" || substr(inv_line, 1, 1) == "#") continue
      nf = split(inv_line, fa, " ")
      inv_kind[fa[2]] = fa[1]
      if (fa[2] == "triad_detector_alarms_total") {
        for (i = 3; i <= nf; i++) {
          if (split(fa[i], kv, "=") == 2 && kv[1] == "detector") {
            nv = split(kv[2], vals, "|")
            for (j = 1; j <= nv; j++)
              if (vals[j] != "*") required_detector[vals[j]] = 1
          }
        }
      }
    }
    close(families)
    inv_loaded = 1
  }
  if (!inv_loaded) {
    # No inventory given: fall back to the fixed detector set.
    required_detector["slope"] = 1
    required_detector["disagreement"] = 1
    required_detector["jump"] = 1
  }
}

{
  if (http) {
    sub(/\r+$/, "")
    if (NR == 1) {
      if ($0 != "HTTP/1.0 200 OK") fail("bad status line: " $0)
      status_ok = 1
      next
    }
    if (!in_body) {
      if ($0 == "") in_body = 1
      next
    }
  }
  if ($0 == "") next
  if (substr($0, 1, 1) == "#") {
    if ($2 != "HELP" && $2 != "TYPE") fail("unknown comment: " $0)
    if ($2 == "TYPE") {
      if ($4 != "counter" && $4 != "gauge" && $4 != "histogram")
        fail("bad metric type: " $0)
      if (inv_loaded && ($3 in inv_kind) && inv_kind[$3] != $4)
        fail("TYPE " $4 " but the source registers " $3 " as " inv_kind[$3])
      typed[$3] = $4
    }
    next
  }
  name = $0
  sub(/[{ ].*$/, "", name)
  if (name !~ /^[A-Za-z_:][A-Za-z0-9_:]*$/)
    fail("bad metric name: " $0)
  if (index($0, "{") > 0 && index($0, "}") == 0)
    fail("unterminated label set: " $0)
  value = $NF
  if (value !~ /^[-+]?([0-9]+(\.[0-9]*)?|\.[0-9]+)([eE][-+]?[0-9]+)?$/ &&
      value != "+Inf" && value != "-Inf" && value != "NaN")
    fail("bad sample value: " $0)
  family = name
  sub(/_(bucket|sum|count)$/, "", family)
  if (!(name in typed) && !(family in typed))
    fail("sample without # TYPE: " $0)
  if (name == "triad_detector_alarms_total") {
    if (typed[name] != "counter")
      fail("triad_detector_alarms_total must be a counter")
    if (match($0, /detector="[a-z]+"/))
      detector_series[substr($0, RSTART + 10, RLENGTH - 11)] = value
  }
  if (name == "triad_detector_first_alarm_seconds") {
    if (typed[name] != "gauge")
      fail("triad_detector_first_alarm_seconds must be a gauge")
    first_alarm_seen = 1
  }
  samples++
}

END {
  if (bad) exit 1
  if (http && !status_ok) {
    print "check_prom: empty scrape (no status line)"
    exit 1
  }
  if (samples == 0) {
    print "check_prom: no samples found"
    exit 1
  }
  if (require_detectors) {
    for (d in required_detector) {
      if (!(d in detector_series)) {
        print "check_prom: missing detector alarm series: " d
        exit 1
      }
    }
    if (!first_alarm_seen) {
      print "check_prom: missing triad_detector_first_alarm_seconds"
      exit 1
    }
  }
}
