#!/usr/bin/env bash
# Builds everything, runs the full test suite and every figure/table
# bench, and records the outputs EXPERIMENTS.md is based on.
#
#   scripts/run_all.sh              # regular build + tests + benches
#   TRIAD_SANITIZE=1 scripts/run_all.sh
#                                   # additionally builds with ASan+UBSan
#                                   # and runs the test suite under them
set -u

cd "$(dirname "$0")/.."

if [ "${TRIAD_SANITIZE:-0}" != "0" ]; then
  cmake -B build-asan -G Ninja -DTRIAD_SANITIZE=ON
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure 2>&1 | tee test_output_asan.txt
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Observability smoke: a short F- run must export Prometheus text that
# parses, and the adoption-step counter must match the Recorder's
# adoption event count printed in the summary.
./build/examples/triad_sim --duration 2m --seed 9 --attack fminus \
    --metrics obs_metrics.prom --trace obs_trace.jsonl > obs_summary.txt \
  || { echo "obs smoke: triad_sim failed" >&2; exit 1; }
awk -f scripts/check_prom.awk obs_metrics.prom \
  || { echo "obs smoke: metrics failed to parse" >&2; exit 1; }
adoptions_metric=$(awk '/^triad_node_adoptions_total/ { sum += $NF } \
                        END { printf "%d", sum }' obs_metrics.prom)
adoptions_summary=$(awk '/^adoption events:/ { print $3 }' obs_summary.txt)
if [ "$adoptions_metric" != "$adoptions_summary" ]; then
  echo "obs smoke: adoption counter ($adoptions_metric) !=" \
       "summary count ($adoptions_summary)" >&2
  exit 1
fi
echo "obs smoke ok: $adoptions_metric adoptions," \
     "$(wc -l < obs_trace.jsonl) trace events"

: > bench_output.txt
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "wrote test_output.txt and bench_output.txt"
if [ "${TRIAD_SANITIZE:-0}" != "0" ]; then
  echo "wrote test_output_asan.txt (ASan+UBSan run)"
fi
