#!/usr/bin/env bash
# Builds everything, runs the static-analysis tier, the full test suite,
# every figure/table bench, and records the outputs EXPERIMENTS.md is
# based on. All generated artifacts land under $BUILD_DIR/artifacts/ —
# never at the repo root.
#
#   scripts/run_all.sh                  # static tier + build + tests + benches
#   TRIAD_STATIC_GATE=warn scripts/run_all.sh
#                                       # report static-tier failures
#                                       # (triad_lint / cppcheck /
#                                       # clang-tidy) without aborting;
#                                       # the default 'fail' stops the run
#   TRIAD_SANITIZE=address scripts/run_all.sh
#                                       # additionally builds with ASan+UBSan
#                                       # and runs the test suite under them
#                                       # (TRIAD_SANITIZE=1 still works)
#   TRIAD_SANITIZE=thread scripts/run_all.sh
#                                       # additionally builds with TSan and
#                                       # runs the Logger concurrency test
#                                       # plus the jobs-4 campaign race test
set -u

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
ART="$BUILD_DIR/artifacts"

# ---- static tier: triad_lint (R1-R9 + stale-allowlist audit) and,
# when installed, cppcheck and clang-tidy (driven off the exported
# compile_commands.json) — before any test runs. TRIAD_WERROR defaults
# ON, so the build below is the warning gate; the lint gate runs first
# because it is much cheaper than a full compile.
# TRIAD_STATIC_GATE=fail (the default) aborts when any gated tool
# fails; =warn prints the verdicts and continues. A stale [allow] entry
# always hard-fails regardless of the gate: the allowlist must stay an
# exact census of sanctioned exceptions.
STATIC_GATE=${TRIAD_STATIC_GATE:-fail}
cmake -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$BUILD_DIR" --target triad_lint
lint_verdict=ok allow_verdict=ok
cppcheck_verdict=skipped tidy_verdict=skipped
static_fail=0
if ! "$BUILD_DIR"/tools/lint/triad_lint --root . \
    --config tools/lint/lint_rules.toml; then
  lint_verdict=FAIL
  static_fail=1
elif ! "$BUILD_DIR"/tools/lint/triad_lint --root . \
    --config tools/lint/lint_rules.toml --fail-unused-allow \
    > /dev/null 2>&1; then
  allow_verdict=FAIL
fi
if command -v cppcheck > /dev/null 2>&1; then
  if cppcheck --quiet --error-exitcode=1 --inline-suppr \
      --enable=warning,performance,portability \
      --suppress=missingIncludeSystem -I src src; then
    cppcheck_verdict=ok
  else
    cppcheck_verdict=FAIL
    static_fail=1
  fi
fi
if command -v clang-tidy > /dev/null 2>&1; then
  # .clang-tidy at the repo root mirrors the -Wall -Wextra -Wshadow
  # -Wnon-virtual-dtor -Werror warning set; -p points clang-tidy at the
  # compile_commands.json the configure above exported.
  if find src -name '*.cpp' -print0 \
      | xargs -0 clang-tidy -p "$BUILD_DIR" --quiet; then
    tidy_verdict=ok
  else
    tidy_verdict=FAIL
    static_fail=1
  fi
fi
echo "static tier: triad_lint=$lint_verdict cppcheck=$cppcheck_verdict" \
     "clang-tidy=$tidy_verdict unused-allow=$allow_verdict" \
     "(gate=$STATIC_GATE)"
if [ "$allow_verdict" = FAIL ]; then
  "$BUILD_DIR"/tools/lint/triad_lint --root . \
      --config tools/lint/lint_rules.toml --fail-unused-allow || true
  echo "static tier: stale [allow] entries — prune them from" \
       "tools/lint/lint_rules.toml" >&2
  exit 1
fi
if [ "$static_fail" -ne 0 ]; then
  case "$STATIC_GATE" in
    warn) echo "static tier: WARNING failures above" \
               "(TRIAD_STATIC_GATE=warn)" >&2 ;;
    *)    echo "static tier: failed (TRIAD_STATIC_GATE=$STATIC_GATE)" >&2
          exit 1 ;;
  esac
fi

cmake --build "$BUILD_DIR"
mkdir -p "$ART"

case "${TRIAD_SANITIZE:-0}" in
  0) ;;
  thread)
    cmake -B build-tsan -G Ninja -DTRIAD_SANITIZE=thread
    cmake --build build-tsan
    # The thread-heavy paths: the Logger's concurrent level/gating test,
    # the campaign worker pool (jobs 1 vs 4 byte-compare runs inside the
    # tsan-campaign ctest entry), the real-transport runtime (epoll
    # loops + SO_REUSEPORT serve workers + snapshot board in
    # real_env_test), and the telemetry plane (scrape-signal atomics +
    # node-thread listener in timed_telemetry_test). TSan exits nonzero
    # on any report, so a clean pass means zero races.
    ctest --test-dir build-tsan --output-on-failure \
        -R 'LogTest|tsan-campaign|RealEnv|RealScheduler|UdpSocket|UdpTransport|TimedService|TimedTelemetry|SockAddr' \
        2>&1 | tee "$ART"/test_output_tsan.txt
    test "${PIPESTATUS[0]}" -eq 0 \
      || { echo "TSan tier failed" >&2; exit 1; }
    ;;
  *)
    # Debug (-O0): sanitizer accuracy over speed, and GCC 12's optimizer
    # false-fires -Wrestrict/-Wmaybe-uninitialized under -Werror at -O2
    # when combined with -fsanitize=address,undefined.
    cmake -B build-asan -G Ninja -DTRIAD_SANITIZE=address \
          -DCMAKE_BUILD_TYPE=Debug
    cmake --build build-asan
    ctest --test-dir build-asan --output-on-failure 2>&1 \
      | tee "$ART"/test_output_asan.txt
    test "${PIPESTATUS[0]}" -eq 0 \
      || { echo "ASan tier failed" >&2; exit 1; }
    ;;
esac

ctest --test-dir "$BUILD_DIR" 2>&1 | tee "$ART"/test_output.txt

# Observability smoke: a short F- run must export Prometheus text that
# parses, and the adoption-step counter must match the Recorder's
# adoption event count printed in the summary.
./"$BUILD_DIR"/examples/triad_sim --duration 2m --seed 9 --attack fminus \
    --metrics "$ART"/obs_metrics.prom --trace "$ART"/obs_trace.jsonl \
    > "$ART"/obs_summary.txt \
  || { echo "obs smoke: triad_sim failed" >&2; exit 1; }
awk -f scripts/check_prom.awk -v require_detectors=1 \
    -v families=scripts/prom_families.txt "$ART"/obs_metrics.prom \
  || { echo "obs smoke: metrics failed to parse" >&2; exit 1; }
adoptions_metric=$(awk '/^triad_node_adoptions_total/ { sum += $NF } \
                        END { printf "%d", sum }' "$ART"/obs_metrics.prom)
adoptions_summary=$(awk '/^adoption events:/ { print $3 }' \
                        "$ART"/obs_summary.txt)
if [ "$adoptions_metric" != "$adoptions_summary" ]; then
  echo "obs smoke: adoption counter ($adoptions_metric) !=" \
       "summary count ($adoptions_summary)" >&2
  exit 1
fi
# The trace ring must have kept every event — a dropped event would make
# the forensic reconstruction below unsound.
dropped=$(awk '/^trace events:/ { gsub(/\)/, "", $NF); print $NF }' \
              "$ART"/obs_summary.txt)
if [ "$dropped" != "0" ]; then
  echo "obs smoke: trace ring dropped $dropped events" >&2
  exit 1
fi
echo "obs smoke ok: $adoptions_metric adoptions," \
     "$(wc -l < "$ART"/obs_trace.jsonl) trace events"

# Detector smoke: on the paper seed the F- detectors must raise at least
# one alarm, and raise it before the first significant clock jump — the
# forensic report's "detection latency" is positive exactly then. The
# report itself must be byte-deterministic across repeated reads.
./"$BUILD_DIR"/examples/triad_trace "$ART"/obs_trace.jsonl \
    > "$ART"/obs_forensic.txt \
  || { echo "detector smoke: triad_trace failed" >&2; exit 1; }
grep -q '^suspect: node 3' "$ART"/obs_forensic.txt \
  || { echo "detector smoke: forensic report misses the victim" >&2
       exit 1; }
grep -q '^detection latency: +' "$ART"/obs_forensic.txt \
  || { echo "detector smoke: no alarm before the first jump" >&2; exit 1; }
./"$BUILD_DIR"/examples/triad_trace "$ART"/obs_trace.jsonl \
    | cmp -s - "$ART"/obs_forensic.txt \
  || { echo "detector smoke: forensic report not deterministic" >&2
       exit 1; }
echo "detector smoke ok:" \
     "$(awk '/^alarms:/ { print $2 }' "$ART"/obs_forensic.txt) alarms," \
     "$(awk '/^detection latency:/ { print $3 }' "$ART"/obs_forensic.txt)" \
     "s lead"

# Attack-free sweep: eight honest seeds must raise zero alarms — the
# detectors' false-positive floor on clean runs.
./"$BUILD_DIR"/examples/triad_campaign --seeds 1..8 --attack none \
    --duration 2m --json "$ART"/campaign_honest.json \
  || { echo "detector smoke: honest sweep failed" >&2; exit 1; }
python3 - "$ART"/campaign_honest.json <<'EOF' || exit 1
import json, sys
report = json.load(open(sys.argv[1]))
for cell in report["cells"]:
    alarms = cell["metrics"]["detector_alarms"]
    if alarms["max"] != 0:
        raise SystemExit(
            f"detector smoke: {alarms['max']} alarms on an attack-free run")
print("detector smoke ok: zero alarms across the honest 8-seed sweep")
EOF

# Campaign smoke: a small F- seed sweep must carry the honest-node
# max-jump statistic and aggregate deterministically — the report from
# --jobs 4 must be byte-identical to the one from --jobs 1.
./"$BUILD_DIR"/examples/triad_campaign --seeds 1..4 --attack fminus \
    --duration 2m --jobs 1 --json "$ART"/campaign_j1.json \
  || { echo "campaign smoke: jobs=1 sweep failed" >&2; exit 1; }
./"$BUILD_DIR"/examples/triad_campaign --seeds 1..4 --attack fminus \
    --duration 2m --jobs 4 --json "$ART"/campaign_j4.json \
  || { echo "campaign smoke: jobs=4 sweep failed" >&2; exit 1; }
grep -q '"honest_max_jump_ms"' "$ART"/campaign_j1.json \
  || { echo "campaign smoke: honest_max_jump_ms missing from report" >&2
       exit 1; }
cmp -s "$ART"/campaign_j1.json "$ART"/campaign_j4.json \
  || { echo "campaign smoke: reports differ between jobs 1 and 4" >&2
       exit 1; }
echo "campaign smoke ok: jobs 1 vs 4 reports byte-identical"

# ---- realenv smoke tier: a triad_timed loopback trio (TA + 3 nodes,
# real UDP/epoll) must calibrate, serve sealed timestamps with zero auth
# failures and per-node monotone timestamps, and exit cleanly on
# SIGTERM. Skips loudly when the sandbox has no loopback sockets (the
# probe run below fails to bind).
REALENV_PORT=${REALENV_PORT:-47830}
TIMED="$BUILD_DIR/examples/triad_timed"
if "$TIMED" --role ta --id 9 --listen "127.0.0.1:$REALENV_PORT" \
    --duration 0.2 > "$ART"/realenv_probe.txt 2>&1; then
  "$TIMED" --role ta --id 9 --listen "127.0.0.1:$REALENV_PORT" \
      --telemetry "127.0.0.1:$((REALENV_PORT + 20))" \
      > "$ART"/realenv_ta.txt 2>&1 &
  realenv_ta_pid=$!
  realenv_node_pids=""
  for i in 1 2 3; do
    "$TIMED" --role node --id "$i" \
        --listen "127.0.0.1:$((REALENV_PORT + i))" \
        --serve "127.0.0.1:$((REALENV_PORT + 10 + i))" --workers 2 \
        --peer "9=127.0.0.1:$REALENV_PORT" \
        --calib-pairs 2 --calib-wait-high 0.05 \
        --telemetry "127.0.0.1:$((REALENV_PORT + 20 + i))" --detectors \
        --metrics "$ART/realenv_node$i.prom" \
        > "$ART/realenv_node$i.txt" 2>&1 &
    realenv_node_pids="$realenv_node_pids $!"
  done
  realenv_ok=1
  # Nodes answer `tainted` (unavailable) until their first TA
  # calibration completes — instantly, not after a timeout — so poll
  # each serve port with a single-probe client before the scored run.
  # Every attempt needs a fresh client id: a new process restarts the
  # channel sequence at 0, and a reused id trips the node's replay
  # protection (counted as bad_frames).
  for i in 1 2 3; do
    ready=0
    for t in $(seq 1 50); do
      if "$TIMED" --role client --id "$((100 * i + 100 + t))" \
          --server "127.0.0.1:$((REALENV_PORT + 10 + i))" \
          --server-id "$i" --requests 1 > /dev/null 2>&1; then
        ready=1; break
      fi
      sleep 0.1
    done
    [ "$ready" -eq 1 ] \
      || { echo "realenv tier: node $i never became available" >&2
           realenv_ok=0; }
  done
  for i in 1 2 3; do
    "$TIMED" --role client --id "$((40 + i))" \
        --server "127.0.0.1:$((REALENV_PORT + 10 + i))" --server-id "$i" \
        --requests 50 > "$ART/realenv_client$i.txt" 2>&1 \
      || { echo "realenv tier: client against node $i failed" >&2
           realenv_ok=0; }
    grep -q 'bad_frames=0' "$ART/realenv_client$i.txt" \
      || { echo "realenv tier: client $i saw auth failures" >&2
           realenv_ok=0; }
  done
  # ---- telemetry plane: scrape the live daemons (plain /dev/tcp — no
  # curl in the image), validate the pages, and let triad_mon pull the
  # whole fleet while it is still running.
  scrape() {  # scrape PORT PATH OUT
    exec 3<> "/dev/tcp/127.0.0.1/$1" || return 1
    printf 'GET %s HTTP/1.0\r\n\r\n' "$2" >&3
    cat <&3 > "$3"
    exec 3<&- 3>&-
  }
  for i in 1 2 3; do
    scrape "$((REALENV_PORT + 20 + i))" /metrics \
        "$ART/realenv_scrape$i.txt" 2> /dev/null \
      || { echo "realenv tier: node $i telemetry scrape failed" >&2
           realenv_ok=0; }
    awk -f scripts/check_prom.awk -v http=1 -v require_detectors=1 \
        -v families=scripts/prom_families.txt "$ART/realenv_scrape$i.txt" \
      || { echo "realenv tier: node $i scraped metrics invalid" >&2
           realenv_ok=0; }
  done
  "$BUILD_DIR/examples/triad_mon" \
      --node "9=127.0.0.1:$((REALENV_PORT + 20))" \
      --node "1=127.0.0.1:$((REALENV_PORT + 21))" \
      --node "2=127.0.0.1:$((REALENV_PORT + 22))" \
      --node "3=127.0.0.1:$((REALENV_PORT + 23))" \
      --out-dir "$ART/fleet" > "$ART/fleet_report.txt" \
    || { echo "realenv tier: triad_mon fleet scrape failed" >&2
         realenv_ok=0; }
  kill -TERM $realenv_ta_pid $realenv_node_pids 2> /dev/null
  for pid in $realenv_ta_pid $realenv_node_pids; do
    wait "$pid" \
      || { echo "realenv tier: pid $pid did not exit cleanly on SIGTERM" >&2
           realenv_ok=0; }
  done
  for i in 1 2 3; do
    grep -q 'bad_frames=0' "$ART/realenv_node$i.txt" \
      || { echo "realenv tier: node $i counted bad frames" >&2
           realenv_ok=0; }
    # A dropped trace event would make the offline replay below unsound.
    grep -q 'dropped 0' "$ART/realenv_node$i.txt" \
      || { echo "realenv tier: node $i trace ring dropped events" >&2
           realenv_ok=0; }
  done
  # Offline==online: replaying each shipped per-node trace through
  # triad_trace must reproduce triad_mon's per-node verdict byte for
  # byte — the live detectors and the offline forensics are one code
  # path, so any divergence is a wiring bug.
  for i in 1 2 3 9; do
    "$BUILD_DIR/examples/triad_trace" "$ART/fleet/node$i.jsonl" \
        > "$ART/fleet/node$i.replay.txt" 2> /dev/null
    cmp -s "$ART/fleet/node$i.replay.txt" "$ART/fleet/node$i.forensic.txt" \
      || { echo "realenv tier: node $i live verdict != offline replay" >&2
           realenv_ok=0; }
  done
  # The scraped page and the --metrics exit dump are the same registry
  # rendered at different instants: sample values move, but the family
  # set must match exactly.
  for i in 1 2 3; do
    grep '^# TYPE ' "$ART/realenv_scrape$i.txt" | sort \
        > "$ART/realenv_scrape$i.families"
    grep '^# TYPE ' "$ART/realenv_node$i.prom" | sort \
        | cmp -s - "$ART/realenv_scrape$i.families" \
      || { echo "realenv tier: node $i scrape vs exit-dump families differ" >&2
           realenv_ok=0; }
  done
  [ "$realenv_ok" -eq 1 ] \
    || { echo "realenv tier failed (see $ART/realenv_*.txt)" >&2; exit 1; }
  served=$(awk -F'[ /]' '/^served/ { sum += $2 } END { print sum }' \
               "$ART"/realenv_client[123].txt)
  echo "realenv smoke ok: trio served $served sealed probes," \
       "zero auth failures, telemetry verified, clean SIGTERM"
else
  echo "realenv tier SKIPPED (no loopback UDP:" \
       "$(tail -n 1 "$ART"/realenv_probe.txt))"
fi

# ---- bench tier. BENCH_FILTER=substr runs only the matching binaries
# (e.g. BENCH_FILTER=micro). The micro benches additionally write their
# BENCH JSON for the perf gate below. Each bench's own exit status is
# checked via PIPESTATUS — a plain `"$b" | tee` would report tee's
# status and let a crashing bench slip through.
: > "$ART"/bench_output.txt
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name=$(basename "$b")
  case "$name" in
    *"${BENCH_FILTER:-}"*) ;;
    *) echo "===== $name skipped (BENCH_FILTER=${BENCH_FILTER:-})" \
         | tee -a "$ART"/bench_output.txt
       continue ;;
  esac
  set -- # per-bench extra args
  case "$name" in
    bench_micro_sim)      set -- --json "$ART"/BENCH_micro_sim.json ;;
    bench_micro_crypto)   set -- --json "$ART"/BENCH_micro_crypto.json ;;
    bench_triad_loopback) set -- --json "$ART"/BENCH_loopback_current.json ;;
  esac
  echo "===== $name =====" | tee -a "$ART"/bench_output.txt
  "$b" "$@" 2>&1 | tee -a "$ART"/bench_output.txt
  test "${PIPESTATUS[0]}" -eq 0 \
    || { echo "bench tier: $name failed" >&2; exit 1; }
done

# ---- perf tier: compare fresh micro-bench medians against the
# committed BENCH_micro.json baseline. TRIAD_PERF_GATE=fail makes a
# >10% median regression fatal; the default 'warn' only reports it, so
# noisy shared boxes don't hard-fail the run.
if [ -f "$ART"/BENCH_micro_sim.json ] \
    && [ -f "$ART"/BENCH_micro_crypto.json ] && [ -f BENCH_micro.json ]; then
  "$BUILD_DIR"/tools/bench_diff/bench_diff \
      --merge "$ART"/BENCH_micro_current.json \
      "$ART"/BENCH_micro_sim.json "$ART"/BENCH_micro_crypto.json \
    || { echo "perf tier: bench_diff --merge failed" >&2; exit 1; }
  if "$BUILD_DIR"/tools/bench_diff/bench_diff \
      BENCH_micro.json "$ART"/BENCH_micro_current.json \
      > "$ART"/bench_diff.txt 2>&1; then
    tail -n 1 "$ART"/bench_diff.txt
    echo "perf tier ok (full table: $ART/bench_diff.txt)"
  else
    cat "$ART"/bench_diff.txt
    case "${TRIAD_PERF_GATE:-warn}" in
      fail) echo "perf tier: median regression (TRIAD_PERF_GATE=fail)" >&2
            exit 1 ;;
      *)    echo "perf tier: WARNING median regression (gate=warn)" >&2 ;;
    esac
  fi
else
  echo "perf tier SKIPPED (micro JSONs or BENCH_micro.json baseline missing)"
fi

# Loopback service trajectory: compare against the committed
# BENCH_loopback.json (QPS + RTT percentiles). Same warn-by-default gate
# — service QPS on a shared 1-core box is far noisier than the micro
# benches. The bench SKIPs (writing no JSON) in socketless sandboxes.
if [ -f "$ART"/BENCH_loopback_current.json ] && [ -f BENCH_loopback.json ]; then
  if "$BUILD_DIR"/tools/bench_diff/bench_diff \
      BENCH_loopback.json "$ART"/BENCH_loopback_current.json \
      > "$ART"/bench_diff_loopback.txt 2>&1; then
    tail -n 1 "$ART"/bench_diff_loopback.txt
    echo "loopback perf ok (full table: $ART/bench_diff_loopback.txt)"
  else
    cat "$ART"/bench_diff_loopback.txt
    case "${TRIAD_PERF_GATE:-warn}" in
      fail) echo "loopback perf: median regression (TRIAD_PERF_GATE=fail)" >&2
            exit 1 ;;
      *)    echo "loopback perf: WARNING median regression (gate=warn)" >&2 ;;
    esac
  fi
else
  echo "loopback perf SKIPPED (no current JSON or committed baseline)"
fi

echo "artifacts under $ART/ (test_output.txt, bench_output.txt, ...)"
case "${TRIAD_SANITIZE:-0}" in
  0) ;;
  thread) echo "wrote $ART/test_output_tsan.txt (TSan run)" ;;
  *) echo "wrote $ART/test_output_asan.txt (ASan+UBSan run)" ;;
esac
