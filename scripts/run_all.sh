#!/usr/bin/env bash
# Builds everything, runs the full test suite and every figure/table
# bench, and records the outputs EXPERIMENTS.md is based on.
#
#   scripts/run_all.sh              # regular build + tests + benches
#   TRIAD_SANITIZE=1 scripts/run_all.sh
#                                   # additionally builds with ASan+UBSan
#                                   # and runs the test suite under them
set -u

cd "$(dirname "$0")/.."

if [ "${TRIAD_SANITIZE:-0}" != "0" ]; then
  cmake -B build-asan -G Ninja -DTRIAD_SANITIZE=ON
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure 2>&1 | tee test_output_asan.txt
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Observability smoke: a short F- run must export Prometheus text that
# parses, and the adoption-step counter must match the Recorder's
# adoption event count printed in the summary.
./build/examples/triad_sim --duration 2m --seed 9 --attack fminus \
    --metrics obs_metrics.prom --trace obs_trace.jsonl > obs_summary.txt \
  || { echo "obs smoke: triad_sim failed" >&2; exit 1; }
awk -f scripts/check_prom.awk -v require_detectors=1 obs_metrics.prom \
  || { echo "obs smoke: metrics failed to parse" >&2; exit 1; }
adoptions_metric=$(awk '/^triad_node_adoptions_total/ { sum += $NF } \
                        END { printf "%d", sum }' obs_metrics.prom)
adoptions_summary=$(awk '/^adoption events:/ { print $3 }' obs_summary.txt)
if [ "$adoptions_metric" != "$adoptions_summary" ]; then
  echo "obs smoke: adoption counter ($adoptions_metric) !=" \
       "summary count ($adoptions_summary)" >&2
  exit 1
fi
# The trace ring must have kept every event — a dropped event would make
# the forensic reconstruction below unsound.
dropped=$(awk '/^trace events:/ { gsub(/\)/, "", $NF); print $NF }' \
              obs_summary.txt)
if [ "$dropped" != "0" ]; then
  echo "obs smoke: trace ring dropped $dropped events" >&2
  exit 1
fi
echo "obs smoke ok: $adoptions_metric adoptions," \
     "$(wc -l < obs_trace.jsonl) trace events"

# Detector smoke: on the paper seed the F- detectors must raise at least
# one alarm, and raise it before the first significant clock jump — the
# forensic report's "detection latency" is positive exactly then. The
# report itself must be byte-deterministic across repeated reads.
./build/examples/triad_trace obs_trace.jsonl > obs_forensic.txt \
  || { echo "detector smoke: triad_trace failed" >&2; exit 1; }
grep -q '^suspect: node 3' obs_forensic.txt \
  || { echo "detector smoke: forensic report misses the victim" >&2
       exit 1; }
grep -q '^detection latency: +' obs_forensic.txt \
  || { echo "detector smoke: no alarm before the first jump" >&2; exit 1; }
./build/examples/triad_trace obs_trace.jsonl | cmp -s - obs_forensic.txt \
  || { echo "detector smoke: forensic report not deterministic" >&2
       exit 1; }
echo "detector smoke ok: $(awk '/^alarms:/ { print $2 }' obs_forensic.txt)" \
     "alarms, $(awk '/^detection latency:/ { print $3 }' obs_forensic.txt)" \
     "s lead"

# Attack-free sweep: eight honest seeds must raise zero alarms — the
# detectors' false-positive floor on clean runs.
./build/examples/triad_campaign --seeds 1..8 --attack none --duration 2m \
    --json campaign_honest.json \
  || { echo "detector smoke: honest sweep failed" >&2; exit 1; }
python3 - <<'EOF' || exit 1
import json
report = json.load(open("campaign_honest.json"))
for cell in report["cells"]:
    alarms = cell["metrics"]["detector_alarms"]
    if alarms["max"] != 0:
        raise SystemExit(
            f"detector smoke: {alarms['max']} alarms on an attack-free run")
print("detector smoke ok: zero alarms across the honest 8-seed sweep")
EOF

# Campaign smoke: a small F- seed sweep must carry the honest-node
# max-jump statistic and aggregate deterministically — the report from
# --jobs 4 must be byte-identical to the one from --jobs 1.
./build/examples/triad_campaign --seeds 1..4 --attack fminus \
    --duration 2m --jobs 1 --json campaign_j1.json \
  || { echo "campaign smoke: jobs=1 sweep failed" >&2; exit 1; }
./build/examples/triad_campaign --seeds 1..4 --attack fminus \
    --duration 2m --jobs 4 --json campaign_j4.json \
  || { echo "campaign smoke: jobs=4 sweep failed" >&2; exit 1; }
grep -q '"honest_max_jump_ms"' campaign_j1.json \
  || { echo "campaign smoke: honest_max_jump_ms missing from report" >&2
       exit 1; }
cmp -s campaign_j1.json campaign_j4.json \
  || { echo "campaign smoke: reports differ between jobs 1 and 4" >&2
       exit 1; }
echo "campaign smoke ok: jobs 1 vs 4 reports byte-identical"

: > bench_output.txt
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "wrote test_output.txt and bench_output.txt"
if [ "${TRIAD_SANITIZE:-0}" != "0" ]; then
  echo "wrote test_output_asan.txt (ASan+UBSan run)"
fi
