#!/usr/bin/env bash
# Builds everything, runs the full test suite and every figure/table
# bench, and records the outputs EXPERIMENTS.md is based on.
set -u

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "wrote test_output.txt and bench_output.txt"
