#!/usr/bin/env bash
# Builds everything, runs the full test suite and every figure/table
# bench, and records the outputs EXPERIMENTS.md is based on.
#
#   scripts/run_all.sh              # regular build + tests + benches
#   TRIAD_SANITIZE=1 scripts/run_all.sh
#                                   # additionally builds with ASan+UBSan
#                                   # and runs the test suite under them
set -u

cd "$(dirname "$0")/.."

if [ "${TRIAD_SANITIZE:-0}" != "0" ]; then
  cmake -B build-asan -G Ninja -DTRIAD_SANITIZE=ON
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure 2>&1 | tee test_output_asan.txt
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "wrote test_output.txt and bench_output.txt"
if [ "${TRIAD_SANITIZE:-0}" != "0" ]; then
  echo "wrote test_output_asan.txt (ASan+UBSan run)"
fi
