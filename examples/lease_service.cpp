// Domain example: trusted leases on top of Triad trusted time.
//
// The paper's introduction motivates trusted time with time-constrained
// resource allocation (T-Lease-style leasing): a lease granted by one
// node must not be considered expired by another node while the holder
// still believes it valid — otherwise two parties hold the same resource.
//
// This example grants leases from node 1 and checks expiry on node 2
// while node 3 mounts an F- attack on the cluster. Under the original
// Triad protocol the infected checker's clock races ahead and it revokes
// leases early (safety violation); under Triad+ it does not.
//
//   $ ./lease_service
#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "apps/lease.h"
#include "exp/scenario.h"
#include "resilient/triad_plus.h"

namespace {

using namespace triad;
using apps::Lease;

/// Expiry check against a (possibly different) node's trusted clock: the
/// cross-node disagreement is exactly what the attack manipulates.
std::optional<bool> expired_on(TriadNode& node, const Lease& lease) {
  const auto now = node.serve_timestamp();
  if (!now) return std::nullopt;
  return *now >= lease.expires_at;
}

struct RunResult {
  int granted = 0;
  int completed = 0;        // leases observed to expiry
  double median_real_s = 0; // median real-time lease lifetime
  double min_real_s = 0;    // shortest real lifetime
  int compressed = 0;       // lifetimes < 95% of the nominal term
};

RunResult run(bool hardened) {
  exp::ScenarioConfig config;
  config.seed = 99;
  if (hardened) {
    config.node_template = resilient::harden(config.node_template);
    config.policy_factory = [] {
      return resilient::make_triad_plus_policy();
    };
  }
  exp::Scenario cluster(std::move(config));

  attacks::DelayAttackConfig attack;  // node 3 compromised, as usual
  attack.kind = attacks::AttackKind::kFMinus;
  attack.victim = cluster.node_address(2);
  attack.ta_address = cluster.ta_address();
  cluster.add_delay_attack(attack);
  cluster.start();
  cluster.run_until(minutes(1));  // everyone calibrated

  constexpr Duration kTerm = seconds(5);
  apps::LeaseManager granter(
      [&cluster] { return cluster.node(0).serve_timestamp(); }, kTerm);
  TriadNode& checker = cluster.node(1);

  RunResult result;
  std::vector<std::pair<Lease, SimTime>> outstanding;  // lease, real grant
  std::vector<double> lifetimes_s;
  int task_counter = 0;

  runtime::PeriodicTimer grant_loop(cluster.env(), seconds(2), [&] {
    if (const auto lease =
            granter.grant("task-" + std::to_string(++task_counter))) {
      ++result.granted;
      outstanding.emplace_back(*lease, cluster.env().now());
    }
  });

  // Audit loop: how long does a "5 second" lease really live before the
  // checking node declares it expired?
  runtime::PeriodicTimer audit_loop(cluster.env(), milliseconds(100), [&] {
    for (auto it = outstanding.begin(); it != outstanding.end();) {
      const auto verdict = expired_on(checker, it->first);
      if (verdict && *verdict) {
        const double real_s =
            to_seconds(cluster.env().now() - it->second);
        lifetimes_s.push_back(real_s);
        it = outstanding.erase(it);
      } else {
        ++it;
      }
    }
  });

  cluster.run_until(minutes(10));

  result.completed = static_cast<int>(lifetimes_s.size());
  if (!lifetimes_s.empty()) {
    double min = lifetimes_s.front();
    for (double v : lifetimes_s) {
      min = std::min(min, v);
      if (v < to_seconds(kTerm) * 0.95) ++result.compressed;
    }
    std::sort(lifetimes_s.begin(), lifetimes_s.end());
    result.median_real_s = lifetimes_s[lifetimes_s.size() / 2];
    result.min_real_s = min;
  }
  return result;
}

}  // namespace

int main() {
  std::printf("=== trusted leases under an F- attack (5 s terms) ===\n\n");

  const RunResult original = run(/*hardened=*/false);
  std::printf("original Triad : %4d leases; real lifetime median %.2f s, "
              "min %.2f s; %d of %d cut short (>5%%)\n",
              original.granted, original.median_real_s, original.min_real_s,
              original.compressed, original.completed);

  const RunResult hardened = run(/*hardened=*/true);
  std::printf("Triad+         : %4d leases; real lifetime median %.2f s, "
              "min %.2f s; %d of %d cut short (>5%%)\n",
              hardened.granted, hardened.median_real_s, hardened.min_real_s,
              hardened.compressed, hardened.completed);

  std::printf(
      "\nUnder F-, the whole infected cluster runs ~11%% fast, so every "
      "\"5 second\" lease really ends after ~4.5 s — the attacker silently "
      "claws back paid resource time. The hardened protocol keeps real "
      "lifetimes at the nominal term.\n");
  return original.compressed > hardened.compressed ? 0 : 1;
}
