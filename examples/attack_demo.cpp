// Attack demo: mount the paper's F- calibration attack from a single
// compromised node and watch it infect the honest cluster — then re-run
// with the Section-V hardened protocol ("Triad+") and watch it fail.
//
//   $ ./attack_demo          # F- (fast clock, propagates)
//   $ ./attack_demo fplus    # F+ (slow clock, stays local)
#include <cstdio>
#include <cstring>

#include "exp/recorder.h"
#include "exp/scenario.h"
#include "resilient/triad_plus.h"

namespace {

using namespace triad;

struct Outcome {
  double honest_worst_drift_ms = 0;
  double victim_worst_drift_ms = 0;
  std::uint64_t infections = 0;  // honest adoptions sourced at the victim
};

Outcome run(attacks::AttackKind kind, bool hardened) {
  exp::ScenarioConfig config;
  config.seed = 7;
  if (hardened) {
    config.node_template = resilient::harden(config.node_template);
    config.policy_factory = [] {
      return resilient::make_triad_plus_policy();
    };
  }
  exp::Scenario cluster(std::move(config));

  attacks::DelayAttackConfig attack;
  attack.kind = kind;
  attack.victim = cluster.node_address(2);  // node 3 is compromised
  attack.ta_address = cluster.ta_address();
  attack.added_delay = milliseconds(100);   // as in the paper
  cluster.add_delay_attack(attack);

  exp::Recorder recorder(cluster);
  cluster.start();
  cluster.run_until(minutes(10));

  Outcome outcome;
  for (std::size_t i = 0; i < 2; ++i) {
    outcome.honest_worst_drift_ms =
        std::max({outcome.honest_worst_drift_ms,
                  std::abs(recorder.drift_ms(i).max_value()),
                  std::abs(recorder.drift_ms(i).min_value())});
  }
  outcome.victim_worst_drift_ms =
      std::max(std::abs(recorder.drift_ms(2).max_value()),
               std::abs(recorder.drift_ms(2).min_value()));
  for (const auto& adoption : recorder.adoptions()) {
    if (adoption.node != 2 && adoption.source == cluster.node_address(2) &&
        adoption.step() > 0) {
      ++outcome.infections;
    }
  }
  std::printf(
      "  victim F_calib = %.3f MHz (true: %.3f MHz)\n",
      cluster.node(2).calibrated_frequency_hz() / 1e6,
      tsc::kPaperTscFrequencyHz / 1e6);
  return outcome;
}

void report(const char* label, const Outcome& o) {
  std::printf("%s\n", label);
  std::printf("  honest nodes' worst |drift|: %10.1f ms\n",
              o.honest_worst_drift_ms);
  std::printf("  victim's worst |drift|:      %10.1f ms\n",
              o.victim_worst_drift_ms);
  std::printf("  forward jumps onto the compromised clock: %llu\n\n",
              static_cast<unsigned long long>(o.infections));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace triad;
  const bool fplus = argc > 1 && std::strcmp(argv[1], "fplus") == 0;
  const auto kind =
      fplus ? attacks::AttackKind::kFPlus : attacks::AttackKind::kFMinus;
  std::printf("=== %s attack from one compromised node, 10 min ===\n\n",
              fplus ? "F+" : "F-");

  std::printf("--- original Triad protocol ---\n");
  const Outcome original = run(kind, /*hardened=*/false);
  report("result:", original);

  std::printf("--- Triad+ (Section V hardening) ---\n");
  const Outcome hardened = run(kind, /*hardened=*/true);
  report("result:", hardened);

  if (!fplus) {
    std::printf("Takeaway: under F-, the original max-timestamp policy lets "
                "a single fast clock drag every honest node into the future "
                "(%.0f ms); the true-chimer majority caps honest drift at "
                "%.0f ms.\n",
                original.honest_worst_drift_ms,
                hardened.honest_worst_drift_ms);
  }
  return 0;
}
