// triad_sim — command-line scenario runner.
//
//   $ ./triad_sim --nodes 3 --duration 30m
//   $ ./triad_sim --attack fminus --victim 3 --policy triadplus --csv drift.csv
//   $ ./triad_sim --attack fminus --metrics - --trace trace.jsonl
//
// Machine-readable output sent to stdout ('-') moves the human summary
// to stderr, so `triad_sim --metrics - | promtool check metrics` works.
// All logic lives in exp/cli.{h,cpp} (unit-tested); this is the thin
// entry point.
#include <iostream>

#include "campaign/sim_sweep.h"
#include "exp/cli.h"

int main(int argc, char** argv) {
  std::string error;
  const auto options = triad::exp::parse_cli(argc, argv, &error);
  if (!options) {
    std::cerr << "triad_sim: " << error << "\n\n"
              << triad::exp::cli_usage();
    return 2;
  }
  // --seeds / --repeat turn the single run into a campaign seed sweep.
  if (!options->help && triad::exp::is_sweep(*options)) {
    return triad::campaign::run_sim_sweep(*options, std::cout, std::cerr);
  }
  return triad::exp::run_cli(*options, std::cout, std::cerr);
}
