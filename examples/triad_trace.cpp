// triad_trace — forensic reader for recorded protocol traces.
//
//   $ ./triad_sim --attack fminus --trace trace.jsonl && ./triad_trace trace.jsonl
//   $ ./triad_sim --attack fminus --trace - | ./triad_trace -
//   $ ./triad_trace --json trace.jsonl
//
// Loads a JSONL trace dump (obs/export.h schema), replays it through the
// standard online detectors, rebuilds causal spans, and prints the
// attack-propagation report (obs/forensic.h). Output is byte-identical
// for a given input: the report is a pure function of the event stream.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/forensic.h"

namespace {

constexpr const char* kUsage =
    "usage: triad_trace [options] <trace.jsonl | ->\n"
    "\n"
    "  <file>               JSONL trace dump (triad_sim --trace FILE); '-'\n"
    "                       reads stdin\n"
    "  --json               emit the report as one JSON object\n"
    "  --min-jump-ms <ms>   timeline floor for significant forward jumps\n"
    "                       (default 5.0)\n"
    "  --help               this text\n";

}  // namespace

int main(int argc, char** argv) {
  triad::obs::ForensicOptions options;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0) {
      std::cout << kUsage;
      return 0;
    }
    if (std::strcmp(arg, "--json") == 0) {
      options.json = true;
    } else if (std::strcmp(arg, "--min-jump-ms") == 0 && i + 1 < argc) {
      options.min_jump_ms = std::atof(argv[++i]);
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::cerr << "triad_trace: unknown option " << arg << "\n\n" << kUsage;
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "triad_trace: more than one input file\n\n" << kUsage;
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "triad_trace: no input\n\n" << kUsage;
    return 2;
  }

  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "triad_trace: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  std::size_t rejected = 0;
  std::vector<triad::obs::TraceEvent> events =
      triad::obs::parse_jsonl(text, &rejected);
  if (events.empty()) {
    std::cerr << "triad_trace: no parseable events in " << path << " ("
              << rejected << " lines rejected)\n";
    return 1;
  }
  if (rejected > 0) {
    std::cerr << "triad_trace: warning: " << rejected
              << " unparseable lines skipped\n";
  }

  std::cout << triad::obs::forensic_report(std::move(events), options);
  return 0;
}
