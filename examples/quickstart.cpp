// Quickstart: stand up a three-node Triad cluster with a Time Authority,
// run it for ten virtual minutes, and consume trusted timestamps.
//
//   $ ./quickstart
//
// Everything runs on the deterministic simulator: an entire experiment
// finishes in milliseconds of wall time. See examples/attack_demo.cpp for
// the adversarial scenarios.
#include <cstdio>

#include "exp/recorder.h"
#include "exp/scenario.h"

int main() {
  using namespace triad;

  // 1. Describe the deployment: three nodes + TA on one machine, each
  //    monitoring core seeing the paper's "Triad-like" AEX distribution.
  exp::ScenarioConfig config;
  config.seed = 2025;  // every run is bit-for-bit reproducible
  config.node_count = 3;

  exp::Scenario cluster(std::move(config));
  exp::Recorder recorder(cluster);  // drift/state/AEX instrumentation

  // 2. Start the protocol: each node calibrates its TSC frequency against
  //    the TA (linear regression over 0 s / 1 s round-trips), then serves
  //    monotonic trusted timestamps, untainting via peers after each AEX.
  cluster.start();

  // 3. Use the public time API from an application.
  std::uint64_t served = 0, unavailable = 0;
  SimTime last = 0;
  runtime::PeriodicTimer app(cluster.env(), milliseconds(250), [&] {
    TriadNode& node = cluster.node(0);
    if (const auto ts = node.serve_timestamp()) {
      if (*ts <= last) std::puts("BUG: non-monotonic timestamp!");
      last = *ts;
      ++served;
    } else {
      ++unavailable;  // node tainted or calibrating right now
    }
  });

  cluster.run_until(minutes(10));

  // 4. Report.
  std::printf("ran 10 virtual minutes; %llu timestamps served, "
              "%llu requests hit an unavailable node\n",
              static_cast<unsigned long long>(served),
              static_cast<unsigned long long>(unavailable));
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    TriadNode& node = cluster.node(i);
    std::printf(
        "node %zu: state=%s  F_calib=%.3f MHz  availability=%.2f%%  "
        "aex=%llu  ta_refs=%llu  drift_now=%+.2f ms\n",
        i + 1, to_string(node.state()),
        node.calibrated_frequency_hz() / 1e6, node.availability() * 100.0,
        static_cast<unsigned long long>(node.stats().aex_count),
        static_cast<unsigned long long>(node.stats().ta_time_references),
        to_milliseconds(node.current_time() - cluster.env().now()));
  }
  std::printf("peer time jumps observed: %zu\n",
              recorder.adoptions().size());
  return 0;
}
