# Runs the same campaign sweep at --jobs 1 and --jobs 4 and requires the
# two JSON reports to be byte-identical. Invoked by the `tsan-campaign`
# ctest entry (see examples/CMakeLists.txt); under a TSan build the
# jobs-4 leg doubles as the worker-pool race test. Both legs run with
# the scope profiler active (--prof) so TSan also covers the per-thread
# profile registration and post-join merge; --prof-normalize zeroes the
# durations, making the two scope trees byte-comparable as well.
set(args --seeds 1..4 --attack fminus --duration 2m --prof-normalize)

execute_process(
  COMMAND ${CAMPAIGN} ${args} --jobs 1
          --json ${WORK_DIR}/tsan_campaign_j1.json
          --prof ${WORK_DIR}/tsan_campaign_j1.prof
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "jobs=1 campaign run failed (rc=${rc1})")
endif()

execute_process(
  COMMAND ${CAMPAIGN} ${args} --jobs 4
          --json ${WORK_DIR}/tsan_campaign_j4.json
          --prof ${WORK_DIR}/tsan_campaign_j4.prof
  RESULT_VARIABLE rc4)
if(NOT rc4 EQUAL 0)
  message(FATAL_ERROR "jobs=4 campaign run failed (rc=${rc4})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/tsan_campaign_j1.json ${WORK_DIR}/tsan_campaign_j4.json
  RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "campaign reports differ between --jobs 1 and --jobs 4")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/tsan_campaign_j1.prof ${WORK_DIR}/tsan_campaign_j4.prof
  RESULT_VARIABLE same_prof)
if(NOT same_prof EQUAL 0)
  message(FATAL_ERROR
          "normalized profiles differ between --jobs 1 and --jobs 4")
endif()
message(STATUS "campaign reports and profiles byte-identical at jobs 1 and 4")
