// triad_mon — fleet telemetry aggregator for triad_timed clusters.
//
//   $ ./triad_mon --node 1=127.0.0.1:9101 --node 2=127.0.0.1:9102
//   $ ./triad_mon --from 1=node1.jsonl --from 2=node2.jsonl --json
//   $ ./triad_mon --node 1=... --node 2=... --out-dir /tmp/fleet
//
// Collects each node's protocol trace — live from its telemetry
// endpoint (`triad_timed --telemetry`, GET /trace) or offline from a
// previously shipped JSONL file — merges the streams into the
// deterministic cluster timeline, and prints the fleet forensic report
// (obs/cluster.h): per-node slope and alarm table, cluster disagreement
// width, and the infection timeline with cross-node cause chains.
//
// With --out-dir it also writes, per node:
//   node<id>.jsonl         the shipped trace, byte-for-byte;
//   node<id>.forensic.txt  the single-node report — byte-identical to
//                          `triad_trace node<id>.jsonl` (same replay);
//   node<id>.metrics.prom  the scraped /metrics page (live nodes only).
//
// The report is a pure function of the collected streams: same streams
// in any order, same bytes out.
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/cluster.h"
#include "obs/export.h"
#include "obs/forensic.h"
#include "runtime/real_env.h"

namespace {

constexpr const char* kUsage =
    "usage: triad_mon [options] (--node ID=IP:PORT | --from ID=FILE)...\n"
    "\n"
    "  --node ID=IP:PORT    scrape a live triad_timed telemetry endpoint\n"
    "  --from ID=FILE       load a shipped JSONL trace dump instead\n"
    "  --json               emit the fleet report as one JSON object\n"
    "  --min-jump-ms <ms>   timeline floor for significant forward jumps\n"
    "                       (default 5.0)\n"
    "  --out-dir <dir>      also write per-node artifacts: node<ID>.jsonl,\n"
    "                       node<ID>.forensic.txt, node<ID>.metrics.prom\n"
    "  --help               this text\n";

struct Source {
  triad::NodeId id = 0;
  bool live = false;
  triad::runtime::SockAddr addr;  // live
  std::string path;               // offline
};

// One HTTP/1.0 GET against a telemetry endpoint; returns the body or
// nullopt (dial failure, non-200, truncated response).
std::optional<std::string> http_get(triad::runtime::SockAddr addr,
                                    const std::string& path,
                                    std::string* error) {
  triad::runtime::TcpConn conn = triad::runtime::TcpConn::dial(
      addr, /*timeout_ms=*/2000, error);
  if (!conn.valid()) return std::nullopt;
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!conn.write_all(triad::BytesView{
          reinterpret_cast<const std::uint8_t*>(request.data()),
          request.size()})) {
    *error = "send failed";
    return std::nullopt;
  }
  conn.shutdown_write();
  std::string response;
  std::uint8_t buf[4096];
  for (;;) {
    const std::size_t n = conn.read_some(buf, sizeof(buf));
    if (n == 0) break;
    response.append(reinterpret_cast<const char*>(buf), n);
  }
  const auto line_end = response.find("\r\n");
  if (line_end == std::string::npos ||
      response.compare(0, line_end, "HTTP/1.0 200 OK") != 0) {
    *error = "bad status: " +
             response.substr(0, std::min<std::size_t>(line_end, 64));
    return std::nullopt;
  }
  const auto body = response.find("\r\n\r\n");
  if (body == std::string::npos) {
    *error = "truncated response";
    return std::nullopt;
  }
  return response.substr(body + 4);
}

bool write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  triad::obs::ClusterReportOptions options;
  std::vector<Source> sources;
  std::string out_dir;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0) {
      std::cout << kUsage;
      return 0;
    }
    if (std::strcmp(arg, "--json") == 0) {
      options.json = true;
    } else if (std::strcmp(arg, "--min-jump-ms") == 0 && i + 1 < argc) {
      options.forensic.min_jump_ms = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if ((std::strcmp(arg, "--node") == 0 ||
                std::strcmp(arg, "--from") == 0) &&
               i + 1 < argc) {
      const bool live = std::strcmp(arg, "--node") == 0;
      const std::string value = argv[++i];
      const auto eq = value.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "triad_mon: expected ID=" << (live ? "IP:PORT" : "FILE")
                  << ", got " << value << "\n\n"
                  << kUsage;
        return 2;
      }
      Source source;
      source.id =
          static_cast<triad::NodeId>(std::atoi(value.substr(0, eq).c_str()));
      source.live = live;
      if (live) {
        const auto addr =
            triad::runtime::parse_sockaddr(value.substr(eq + 1));
        if (!addr.has_value()) {
          std::cerr << "triad_mon: bad address in " << value << "\n\n"
                    << kUsage;
          return 2;
        }
        source.addr = *addr;
      } else {
        source.path = value.substr(eq + 1);
      }
      sources.push_back(source);
    } else {
      std::cerr << "triad_mon: unknown option " << arg << "\n\n" << kUsage;
      return 2;
    }
  }
  if (sources.empty()) {
    std::cerr << "triad_mon: no nodes\n\n" << kUsage;
    return 2;
  }

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
      std::cerr << "triad_mon: cannot create " << out_dir << ": "
                << ec.message() << "\n";
      return 1;
    }
  }

  std::vector<triad::obs::NodeStream> streams;
  for (const Source& source : sources) {
    std::string text;
    if (source.live) {
      std::string error;
      const auto body = http_get(source.addr, "/trace", &error);
      if (!body.has_value()) {
        std::cerr << "triad_mon: node " << source.id << ": /trace scrape"
                  << " failed: " << error << "\n";
        return 1;
      }
      text = *body;
    } else {
      std::ifstream in(source.path, std::ios::binary);
      if (!in) {
        std::cerr << "triad_mon: cannot open " << source.path << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }

    std::size_t rejected = 0;
    triad::obs::NodeStream stream;
    stream.node = source.id;
    stream.events = triad::obs::parse_jsonl(text, &rejected);
    if (rejected > 0) {
      std::cerr << "triad_mon: node " << source.id << ": warning: "
                << rejected << " unparseable lines skipped\n";
    }

    if (!out_dir.empty()) {
      const std::filesystem::path dir(out_dir);
      const std::string stem = "node" + std::to_string(source.id);
      // The shipped bytes, untouched: `triad_trace <file>` replays the
      // exact stream the forensic file below was rendered from.
      if (!write_file(dir / (stem + ".jsonl"), text) ||
          !write_file(dir / (stem + ".forensic.txt"),
                      triad::obs::forensic_report(stream.events,
                                                  options.forensic))) {
        std::cerr << "triad_mon: cannot write " << out_dir << "/" << stem
                  << ".*\n";
        return 1;
      }
      if (source.live) {
        std::string error;
        const auto metrics = http_get(source.addr, "/metrics", &error);
        if (metrics.has_value()) {
          write_file(dir / (stem + ".metrics.prom"), *metrics);
        } else {
          std::cerr << "triad_mon: node " << source.id
                    << ": /metrics scrape failed: " << error << "\n";
        }
      }
    }
    streams.push_back(std::move(stream));
  }

  std::cout << triad::obs::cluster_report(std::move(streams), options);
  return 0;
}
