// triad_timed: the real-transport trusted-time daemon.
//
// Runs one cluster member over UDP/epoll (runtime::RealEnv):
//   --role ta      the Time Authority (reference clock root of trust)
//   --role node    a triad::Node + SO_REUSEPORT serve workers answering
//                  sealed timestamp requests from external clients
//   --role client  a probe issuing sealed requests against a node's
//                  serve endpoint and checking monotonicity
//
// The observability flags behave exactly as on triad_sim: --metrics
// writes a Prometheus dump, --trace a JSONL protocol trace, --prof /
// --prof-trace the scope profile — each to a file or '-' (stdout, at
// most one). On SIGTERM/SIGINT the daemon shuts down cleanly and emits
// the final dumps.
//
// Live telemetry: --telemetry ip:port opens a read-only TCP listener
// serving /metrics, /trace, and /prof (scraped by Prometheus or the
// triad_mon fleet aggregator); --detectors runs the online attack
// detectors on the daemon's own trace, so alarms fire while the attack
// is happening, not just in post-hoc analysis.
//
// Quickstart (3-node loopback cluster): see README.md §triad_timed.

#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "timed/service.h"
#include "util/types.h"

namespace {

using triad::Duration;
using triad::NodeId;
using triad::runtime::SockAddr;

struct Options {
  std::string role = "node";
  NodeId id = 1;
  std::optional<SockAddr> listen;
  std::optional<SockAddr> serve;
  int workers = 1;
  std::vector<std::pair<NodeId, SockAddr>> peers;
  NodeId ta_id = 9;
  std::uint64_t seed = 1;
  double duration_s = 0.0;  // 0 = run until SIGTERM/SIGINT
  int calib_pairs = 8;
  double calib_wait_high_s = 1.0;
  // client role
  std::optional<SockAddr> server;
  NodeId server_id = 1;
  int requests = 10;
  // observability
  std::optional<std::string> metrics_path;
  std::optional<std::string> trace_path;
  std::optional<std::string> prof_path;
  std::optional<std::string> prof_trace_path;
  bool prof_normalize = false;
  // live telemetry
  std::optional<SockAddr> telemetry;
  bool detectors = false;
  double detector_nominal_mhz = 0.0;
  bool help = false;
};

const char* usage() {
  return
      "usage: triad_timed [options]\n"
      "  --role node|ta|client   what to run (default node)\n"
      "  --id N                  this endpoint's wire identity\n"
      "  --listen ip:port        protocol endpoint (node, ta)\n"
      "  --serve ip:port         client-facing endpoint (node)\n"
      "  --workers N             SO_REUSEPORT serve workers (default 1)\n"
      "  --peer id=ip:port       protocol address book entry (repeat;\n"
      "                          the --ta-id entry is the TA, the rest\n"
      "                          become this node's peers)\n"
      "  --ta-id N               the TA's wire identity (default 9)\n"
      "  --seed N                protocol rng seed (default 1)\n"
      "  --duration S            run S seconds, then exit (default: until\n"
      "                          SIGTERM)\n"
      "  --calib-pairs N         calibration round-trip pairs (default 8)\n"
      "  --calib-wait-high S     calibration high wait (default 1.0)\n"
      "  --server ip:port        node serve endpoint to probe (client)\n"
      "  --server-id N           the probed node's identity (client)\n"
      "  --requests N            probes to issue (client, default 10)\n"
      "  --metrics PATH|-        Prometheus metrics dump on exit\n"
      "  --trace PATH|-          JSONL protocol trace on exit\n"
      "  --telemetry ip:port     read-only TCP telemetry listener serving\n"
      "                          /metrics, /trace, /prof (triad_mon scrapes\n"
      "                          it)\n"
      "  --detectors             run the online attack detectors on this\n"
      "                          daemon's live trace\n"
      "  --detector-nominal-mhz F  slope detector prior for the true TSC\n"
      "                          frequency (default: cluster-relative only)\n"
      "  --prof PATH|-           profiler scope table on exit\n"
      "  --prof-trace PATH|-     profiler chrome trace on exit\n"
      "  --prof-normalize        zero durations in profiler output\n"
      "  --help\n";
}

std::optional<Options> parse_args(int argc, char** argv, std::ostream& err) {
  Options options;
  const auto fail = [&err](const std::string& message) {
    err << "triad_timed: " << message << "\n";
    return std::nullopt;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    const auto addr_value = [&](const char* flag)
        -> std::optional<SockAddr> {
      const auto text = value();
      if (!text) return std::nullopt;
      auto addr = triad::runtime::parse_sockaddr(*text);
      if (!addr) {
        err << "triad_timed: bad " << flag << " '" << *text << "'\n";
      }
      return addr;
    };
    if (arg == "--help" || arg == "-h") {
      options.help = true;
      return options;
    } else if (arg == "--role") {
      const auto v = value();
      if (!v || (*v != "node" && *v != "ta" && *v != "client")) {
        return fail("--role must be node, ta, or client");
      }
      options.role = *v;
    } else if (arg == "--id") {
      const auto v = value();
      if (!v) return fail("--id needs a value");
      options.id = static_cast<NodeId>(std::stoul(*v));
    } else if (arg == "--listen") {
      options.listen = addr_value("--listen");
      if (!options.listen) return std::nullopt;
    } else if (arg == "--serve") {
      options.serve = addr_value("--serve");
      if (!options.serve) return std::nullopt;
    } else if (arg == "--server") {
      options.server = addr_value("--server");
      if (!options.server) return std::nullopt;
    } else if (arg == "--workers") {
      const auto v = value();
      if (!v) return fail("--workers needs a value");
      options.workers = std::stoi(*v);
    } else if (arg == "--peer") {
      const auto v = value();
      if (!v) return fail("--peer needs id=ip:port");
      const auto eq = v->find('=');
      if (eq == std::string::npos) return fail("--peer needs id=ip:port");
      const auto addr = triad::runtime::parse_sockaddr(v->substr(eq + 1));
      if (!addr) return fail("bad --peer address in '" + *v + "'");
      options.peers.emplace_back(
          static_cast<NodeId>(std::stoul(v->substr(0, eq))), *addr);
    } else if (arg == "--ta-id") {
      const auto v = value();
      if (!v) return fail("--ta-id needs a value");
      options.ta_id = static_cast<NodeId>(std::stoul(*v));
    } else if (arg == "--server-id") {
      const auto v = value();
      if (!v) return fail("--server-id needs a value");
      options.server_id = static_cast<NodeId>(std::stoul(*v));
    } else if (arg == "--seed") {
      const auto v = value();
      if (!v) return fail("--seed needs a value");
      options.seed = std::stoull(*v);
    } else if (arg == "--duration") {
      const auto v = value();
      if (!v) return fail("--duration needs seconds");
      options.duration_s = std::stod(*v);
    } else if (arg == "--calib-pairs") {
      const auto v = value();
      if (!v) return fail("--calib-pairs needs a value");
      options.calib_pairs = std::stoi(*v);
    } else if (arg == "--calib-wait-high") {
      const auto v = value();
      if (!v) return fail("--calib-wait-high needs seconds");
      options.calib_wait_high_s = std::stod(*v);
    } else if (arg == "--requests") {
      const auto v = value();
      if (!v) return fail("--requests needs a value");
      options.requests = std::stoi(*v);
    } else if (arg == "--metrics") {
      options.metrics_path = value();
      if (!options.metrics_path) return fail("--metrics needs a path");
    } else if (arg == "--trace") {
      options.trace_path = value();
      if (!options.trace_path) return fail("--trace needs a path");
    } else if (arg == "--prof") {
      options.prof_path = value();
      if (!options.prof_path) return fail("--prof needs a path");
    } else if (arg == "--prof-trace") {
      options.prof_trace_path = value();
      if (!options.prof_trace_path) return fail("--prof-trace needs a path");
    } else if (arg == "--prof-normalize") {
      options.prof_normalize = true;
    } else if (arg == "--telemetry") {
      options.telemetry = addr_value("--telemetry");
      if (!options.telemetry) return std::nullopt;
    } else if (arg == "--detectors") {
      options.detectors = true;
    } else if (arg == "--detector-nominal-mhz") {
      const auto v = value();
      if (!v) return fail("--detector-nominal-mhz needs a value");
      options.detector_nominal_mhz = std::stod(*v);
    } else {
      return fail("unknown flag '" + arg + "' (try --help)");
    }
  }
  int stdout_targets = 0;
  for (const auto& path : {options.metrics_path, options.trace_path,
                           options.prof_path, options.prof_trace_path}) {
    if (path && *path == "-") ++stdout_targets;
  }
  if (stdout_targets > 1) {
    return fail(
        "at most one of --metrics/--trace/--prof/--prof-trace may be '-'");
  }
  return options;
}

// The signal handler only touches this pointer and calls the
// async-signal-safe stop() (atomic stores + one eventfd write).
triad::timed::TimedService* g_service = nullptr;

void on_signal(int) {
  if (g_service != nullptr) g_service->stop();
}

int run_client(const Options& options, std::ostream& out,
               std::ostream& err) {
  if (!options.server.has_value()) {
    err << "triad_timed: --role client needs --server ip:port\n";
    return 2;
  }
  const triad::crypto::ClusterKeyring keyring(triad::Bytes(32, 0x42));
  triad::timed::BlockingProbe probe(options.id, options.server_id,
                                    *options.server, keyring);
  if (!probe.valid()) {
    err << "triad_timed: cannot open client socket\n";
    return 1;
  }
  triad::SimTime last = 0;
  int served = 0;
  for (int i = 0; i < options.requests; ++i) {
    const auto ts = probe.request();
    if (!ts.has_value()) {
      out << "request " << (i + 1) << ": unavailable\n";
      continue;
    }
    const bool monotone = ts->timestamp > last;
    last = ts->timestamp;
    ++served;
    out << "request " << (i + 1) << ": t=" << ts->timestamp
        << "ns bound=" << ts->error_bound << "ns from=" << ts->served_by
        << (monotone ? "" : " NON-MONOTONE") << "\n";
    if (!monotone) return 1;
  }
  out << "served " << served << "/" << options.requests
      << " bad_frames=" << probe.bad_frames()
      << " timeouts=" << probe.timeouts()
      << " tainted=" << probe.tainted_answers() << "\n";
  return served > 0 ? 0 : 1;
}

int run_service(const Options& options, std::ostream& out,
                std::ostream& err) {
  const auto targets_stdout = [](const std::optional<std::string>& path) {
    return path && *path == "-";
  };
  const bool machine_on_stdout = targets_stdout(options.metrics_path) ||
                                 targets_stdout(options.trace_path) ||
                                 targets_stdout(options.prof_path) ||
                                 targets_stdout(options.prof_trace_path);
  std::ostream& summary = machine_on_stdout ? err : out;

  const bool profiling =
      options.prof_path.has_value() || options.prof_trace_path.has_value();
  if (profiling) {
    triad::obs::Profiler::instance().reset();
    triad::obs::Profiler::instance().set_enabled(true);
  }

  triad::obs::Registry registry;

  triad::timed::ServiceConfig config;
  config.role = options.role == "ta" ? triad::timed::Role::kTa
                                     : triad::timed::Role::kNode;
  if (options.listen.has_value()) config.listen = *options.listen;
  if (options.serve.has_value()) config.serve = *options.serve;
  config.workers = options.workers;
  config.peers = options.peers;
  config.seed = options.seed;
  config.ta_id = options.ta_id;
  config.node.id = options.id;
  config.node.ta_address = options.ta_id;
  for (const auto& [id, addr] : options.peers) {
    if (id != options.ta_id && id != options.id) {
      config.node.peers.push_back(id);
    }
  }
  config.node.calib_pairs = options.calib_pairs;
  config.node.calib_wait_high =
      triad::from_seconds(options.calib_wait_high_s);

  // The service owns the trace ring: /trace, the exit dump, and the
  // detector bank all read the same recording.
  if (options.trace_path.has_value() || options.telemetry.has_value() ||
      options.detectors) {
    config.trace_capacity = std::size_t{1} << 18;
  }
  config.enable_detectors = options.detectors;
  config.detectors.ta_address = options.ta_id;
  if (options.detector_nominal_mhz > 0) {
    config.detectors.nominal_frequency_hz =
        options.detector_nominal_mhz * 1e6;
  }
  config.telemetry = options.telemetry;

  triad::runtime::ObsBinding obs;
  obs.metrics = &registry;
  triad::timed::TimedService service(std::move(config), obs);
  if (!service.valid()) {
    err << "triad_timed: " << service.error() << "\n";
    return 1;
  }

  g_service = &service;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  summary << "triad_timed: role=" << options.role << " id=" << options.id
          << " protocol=" << service.protocol_addr().to_string();
  if (options.role == "node") {
    summary << " serve=" << service.serve_addr().to_string()
            << " workers=" << std::max(1, options.workers);
  }
  if (options.telemetry.has_value()) {
    summary << " telemetry=" << service.telemetry_addr().to_string();
  }
  summary << "\n";
  summary.flush();

  service.start();
  if (options.duration_s > 0) {
    service.run_for(triad::from_seconds(options.duration_s));
    service.shutdown_workers();
  } else {
    service.run();  // until SIGTERM/SIGINT
  }
  g_service = nullptr;

  triad::obs::ProfTree prof_tree;
  if (profiling) {
    triad::obs::Profiler::instance().set_enabled(false);
    prof_tree = triad::obs::Profiler::instance().merge();
    triad::obs::Profiler::export_histograms(prof_tree, registry,
                                            options.prof_normalize);
  }

  // --- final summary + dumps (same shape as triad_sim's run_cli) ------
  if (triad::TriadNode* node = service.node(); node != nullptr) {
    summary << "node " << options.id
            << ": state=" << triad::to_string(node->state())
            << " F_calib=" << node->calibrated_frequency_hz() / 1e6
            << "MHz availability=" << node->availability() * 100.0
            << "% aex=" << node->stats().aex_count
            << " ta_refs=" << node->stats().ta_time_references << "\n";
    summary << "served " << service.total_responses()
            << " sealed responses, bad_frames="
            << service.total_bad_frames() << "\n";
  }
  if (triad::ta::TimeAuthority* ta = service.authority(); ta != nullptr) {
    summary << "ta " << options.id << ": served "
            << ta->stats().requests_served
            << " rejected_frames=" << ta->stats().rejected_frames << "\n";
  }
  if (const triad::obs::RingTraceSink* ring = service.trace_ring();
      ring != nullptr) {
    summary << "trace events: " << ring->total() << " (dropped "
            << ring->dropped() << ", high watermark "
            << ring->high_watermark() << ")\n";
  }
  if (const triad::obs::DetectorBank* bank = service.detectors();
      bank != nullptr) {
    summary << "detector alarms: " << bank->alarms().size();
    if (!bank->alarms().empty()) {
      summary << " (first at "
              << triad::to_seconds(bank->first_alarm_at()) << " s)";
    }
    summary << "\n";
  }
  if (const triad::timed::TelemetryServer* telemetry = service.telemetry();
      telemetry != nullptr) {
    summary << "telemetry scrapes: " << telemetry->scrapes() << "\n";
  }

  const auto write_output = [&](const std::string& path, const char* what,
                                auto&& writer) -> bool {
    if (path == "-") {
      writer(out);
      return true;
    }
    std::ofstream file(path);
    if (!file) {
      summary << "error: cannot open " << path << "\n";
      return false;
    }
    writer(file);
    summary << what << " written to " << path << "\n";
    return true;
  };
  if (options.metrics_path &&
      !write_output(*options.metrics_path, "metrics", [&](std::ostream& os) {
        registry.write_prometheus(os);
      })) {
    return 1;
  }
  if (options.trace_path &&
      !write_output(*options.trace_path, "trace", [&](std::ostream& os) {
        triad::obs::write_jsonl(*service.trace_ring(), os);
      })) {
    return 1;
  }
  if (options.prof_path &&
      !write_output(*options.prof_path, "profile", [&](std::ostream& os) {
        triad::obs::Profiler::write_text(prof_tree, os,
                                         options.prof_normalize);
      })) {
    return 1;
  }
  if (options.prof_trace_path &&
      !write_output(
          *options.prof_trace_path, "profile trace", [&](std::ostream& os) {
            triad::obs::Profiler::write_chrome_trace(
                prof_tree, os, options.prof_normalize);
          })) {
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parse_args(argc, argv, std::cerr);
  if (!options.has_value()) return 2;
  if (options->help) {
    std::cout << usage();
    return 0;
  }
  if (options->role == "client") {
    return run_client(*options, std::cout, std::cerr);
  }
  return run_service(*options, std::cout, std::cerr);
}
