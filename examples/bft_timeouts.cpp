// Domain example: BFT view-change timeouts on trusted time.
//
// The paper's introduction lists "resilience to timeout manipulation
// (e.g., BFT leader changes, procrastinating BFT leaders)" among the
// use-cases. This example models the timeout logic of a BFT replica set:
// each replica expects progress from the current leader within a timeout
// measured on ITS trusted clock; a replica whose clock runs fast (the F-
// attack) votes for view changes early, and if enough clocks are
// infected the group churns through leaders that did nothing wrong —
// a liveness attack mounted purely through time.
//
//   $ ./bft_timeouts
#include <cstdio>
#include <vector>

#include "exp/scenario.h"
#include "resilient/triad_plus.h"

namespace {

using namespace triad;

struct ChurnResult {
  int rounds = 0;
  int spurious_view_changes = 0;  // leader was on time, yet voted out
};

ChurnResult run(bool hardened) {
  exp::ScenarioConfig config;
  config.seed = 31337;
  if (hardened) {
    config.node_template = resilient::harden(config.node_template);
    config.policy_factory = [] {
      return resilient::make_triad_plus_policy();
    };
  }
  exp::Scenario cluster(std::move(config));
  attacks::DelayAttackConfig attack;
  attack.kind = attacks::AttackKind::kFMinus;
  attack.victim = cluster.node_address(2);
  attack.ta_address = cluster.ta_address();
  cluster.add_delay_attack(attack);
  cluster.start();
  cluster.run_until(minutes(1));  // calibration

  // BFT-ish round logic: the leader "sends" its proposal at real time
  // T; each replica records the proposal deadline T_deadline = its
  // trusted now() + timeout when the round opens, and votes "leader
  // slow" if the proposal has not arrived by then on its clock. The
  // honest leader always delivers after 300 ms real time; the timeout
  // is 350 ms — a correct leader, but with only 50 ms of margin.
  constexpr Duration kLeaderLatency = milliseconds(300);
  constexpr Duration kTimeout = milliseconds(350);

  ChurnResult result;
  auto& sim = cluster.simulation();
  // A round every 5 s for 10 minutes.
  for (SimTime round_start = minutes(1) + seconds(5);
       round_start < minutes(11); round_start += seconds(5)) {
    sim.run_until(round_start);
    std::vector<SimTime> deadlines(3, 0);
    std::vector<bool> armed(3, false);
    for (std::size_t i = 0; i < 3; ++i) {
      if (const auto now = cluster.node(i).serve_timestamp()) {
        deadlines[i] = *now + kTimeout;
        armed[i] = true;
      }
    }
    sim.run_until(round_start + kLeaderLatency);  // proposal delivered
    int votes_for_change = 0;
    for (std::size_t i = 0; i < 3; ++i) {
      if (!armed[i]) continue;
      const auto now = cluster.node(i).serve_timestamp();
      if (now && *now >= deadlines[i]) ++votes_for_change;
    }
    ++result.rounds;
    // 2-of-3 suffices to depose the leader in this toy quorum.
    if (votes_for_change >= 2) ++result.spurious_view_changes;
  }
  return result;
}

}  // namespace

int main() {
  std::printf(
      "=== BFT view-change timeouts under an F- time attack ===\n\n"
      "leader always delivers in 300 ms; replica timeout is 350 ms\n\n");

  const ChurnResult original = run(/*hardened=*/false);
  std::printf("original Triad : %d/%d rounds deposed a correct leader\n",
              original.spurious_view_changes, original.rounds);
  const ChurnResult hardened = run(/*hardened=*/true);
  std::printf("Triad+         : %d/%d rounds deposed a correct leader\n",
              hardened.spurious_view_changes, hardened.rounds);

  std::printf(
      "\nWith the cluster's clocks dragged ~11%% fast, a 350 ms timeout "
      "really compresses by ~11%% — and worse, forward time-jumps at untainting "
      "can swallow the whole margin at once, so correct leaders get "
      "voted out. The hardened protocol keeps timeouts honest.\n");
  return original.spurious_view_changes > hardened.spurious_view_changes
             ? 0
             : 1;
}
