// Section V end-to-end: nodes publish their true-chimer observations to
// a registry; the majority clique identifies the compromised node.
//
// A Triad+ cluster runs under an F- attack from node 3. Every time a
// node's true-chimer policy makes a quorate decision it reports which
// peers sat inside the majority interval; the registry keeps only
// mutually-confirmed edges and computes the majority clique — node 3
// never makes it in, so an auditor (or a blockchain contract, as the
// paper suggests) can flag it.
//
//   $ ./chimer_audit
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "exp/scenario.h"
#include "resilient/chimer_registry.h"
#include "resilient/triad_plus.h"

int main() {
  using namespace triad;
  std::printf("=== true-chimer audit of an F- attacked cluster ===\n\n");

  // Aggregate chimer observations by frequency: under attack the victim
  // is inconsistent *most* of the time (it only looks fine briefly after
  // each correction), so a peer is confirmed only when it appears in at
  // least 80 % of the reporter's quorate decisions.
  struct Tally {
    std::map<NodeId, int> seen;
    int reports = 0;
  };
  std::map<NodeId, Tally> tallies;

  exp::ScenarioConfig cfg;
  cfg.seed = 55;
  cfg.node_template = resilient::harden(cfg.node_template);

  // Each node's policy publishes its chimer set tagged with its own id.
  NodeId next_id = 1;
  cfg.policy_factory = [&tallies, &next_id] {
    const NodeId self = next_id++;
    resilient::TriadPlusOptions options;
    options.chimer.on_chimer_set =
        [&tallies, self](const std::vector<NodeId>& chimers) {
          Tally& tally = tallies[self];
          ++tally.reports;
          for (NodeId peer : chimers) ++tally.seen[peer];
        };
    return resilient::make_triad_plus_policy(options);
  };
  exp::Scenario cluster(std::move(cfg));

  attacks::DelayAttackConfig attack;
  attack.kind = attacks::AttackKind::kFMinus;
  attack.victim = cluster.node_address(2);
  attack.ta_address = cluster.ta_address();
  cluster.add_delay_attack(attack);

  cluster.start();
  cluster.run_until(minutes(10));

  resilient::ChimerRegistry registry;
  for (const auto& [reporter, tally] : tallies) {
    std::vector<NodeId> confirmed;
    for (const auto& [peer, count] : tally.seen) {
      if (tally.reports > 0 &&
          static_cast<double>(count) / tally.reports >= 0.8) {
        confirmed.push_back(peer);
      }
    }
    registry.report(reporter, confirmed);
    std::printf("node %u: %d quorate decisions; confirmed peers:",
                reporter, tally.reports);
    for (NodeId peer : confirmed) std::printf(" n%u", peer);
    for (const auto& [peer, count] : tally.seen) {
      std::printf("  (n%u in %.0f%%)", peer,
                  100.0 * count / std::max(tally.reports, 1));
    }
    std::printf("\n");
  }

  std::printf("\nmutual-confirmation matrix (1 = mutually confirmed):\n   ");
  for (std::size_t j = 0; j < 3; ++j) std::printf(" n%zu", j + 1);
  std::printf("\n");
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("n%zu ", i + 1);
    for (std::size_t j = 0; j < 3; ++j) {
      std::printf("  %c",
                  i == j ? '-'
                         : (registry.mutually_confirmed(
                                cluster.node_address(i),
                                cluster.node_address(j))
                                ? '1'
                                : '0'));
    }
    std::printf("\n");
  }

  const auto clique = registry.majority_clique(3);
  std::printf("\nmajority clique:");
  for (NodeId node : clique) std::printf(" node%u", node);
  std::printf("\n");

  bool victim_excluded = true;
  for (NodeId node : clique) {
    if (node == cluster.node_address(2)) victim_excluded = false;
  }
  std::printf("compromised node 3 excluded from the trusted core: %s\n",
              victim_excluded && !clique.empty() ? "yes" : "NO");
  return victim_excluded && !clique.empty() ? 0 : 1;
}
