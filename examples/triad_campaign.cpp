// triad_campaign — declarative multi-scenario sweeps with deterministic
// aggregation.
//
//   $ ./triad_campaign --seeds 1..32 --attack fminus --jobs 8 --json -
//   $ ./triad_campaign --nodes 1,2,3,5,7 --duration 30m --csv table.csv
//   $ ./triad_campaign --spec fig6.campaign --jobs 4 --metrics-dir runs/
//
// Each run owns a private simulation (SimEnv, metrics registry, RNG);
// the aggregate JSON/CSV report is ordered by grid index and
// byte-identical for a given spec regardless of --jobs. All logic lives
// in src/campaign/ (unit-tested); this is the thin entry point.
#include <iostream>

#include "campaign/cli.h"

int main(int argc, char** argv) {
  std::string error;
  const auto options =
      triad::campaign::parse_campaign_cli(argc, argv, &error);
  if (!options) {
    std::cerr << "triad_campaign: " << error << "\n\n"
              << triad::campaign::campaign_cli_usage();
    return 2;
  }
  return triad::campaign::run_campaign_cli(*options, std::cout, std::cerr);
}
