// Domain example: a TimeStamping Authority (RFC 3161-style) backed by
// Triad trusted time.
//
// A TSA binds a document digest to a trusted timestamp and MACs the
// token. Two properties matter: tokens must be monotonic (a later token
// never carries an earlier time) and timestamps must track real time
// closely enough for audit. This example runs a TSA on node 1, issuing
// tokens for a stream of documents, and audits both properties.
//
//   $ ./timestamping_authority
#include <cstdio>
#include <string>
#include <vector>

#include "apps/tsa.h"
#include "exp/scenario.h"
#include "util/hex.h"

namespace {

using namespace triad;
using apps::TimestampToken;
using apps::TimestampingAuthority;

}  // namespace

int main() {
  using namespace triad;
  std::printf("=== RFC 3161-style TSA on Triad trusted time ===\n\n");

  exp::ScenarioConfig config;
  config.seed = 404;
  exp::Scenario cluster(std::move(config));
  cluster.start();
  cluster.run_until(minutes(1));

  TimestampingAuthority tsa(
      [&cluster] { return cluster.node(0).serve_timestamp(); },
      Bytes(32, 0x17));

  std::vector<TimestampToken> tokens;
  int refused = 0, documents = 0;
  runtime::PeriodicTimer producer(cluster.env(), milliseconds(500), [&] {
    const std::string document =
        "invoice #" + std::to_string(++documents);
    const auto token =
        tsa.issue(Bytes(document.begin(), document.end()));
    if (token) {
      tokens.push_back(*token);
    } else {
      ++refused;
    }
  });

  cluster.run_until(minutes(30));

  // Audit 1: every token verifies; tampering is caught.
  int bad_macs = 0;
  for (const auto& token : tokens) {
    if (!tsa.verify(token)) ++bad_macs;
  }
  TimestampToken forged = tokens.front();
  forged.timestamp += seconds(3600);  // backdate/postdate attempt
  const bool forgery_caught = !tsa.verify(forged);

  // Audit 2: monotonicity and drift.
  int order_violations = 0;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    if (tokens[i].timestamp <= tokens[i - 1].timestamp) ++order_violations;
  }
  const double final_skew_ms = to_milliseconds(
      tokens.back().timestamp -
      (minutes(30) - milliseconds(500) * ((refused ? 1 : 0))));

  std::printf("issued %zu tokens (%d refused while node tainted)\n",
              tokens.size(), refused);
  std::printf("MAC failures: %d; forged token rejected: %s\n", bad_macs,
              forgery_caught ? "yes" : "NO");
  std::printf("timestamp order violations: %d\n", order_violations);
  std::printf("last token vs reference time: %+.1f ms\n", final_skew_ms);
  std::printf("sample token: digest=%s... t=%.3f s\n",
              to_hex(BytesView(tokens.back().document_digest.data(), 8))
                  .c_str(),
              to_seconds(tokens.back().timestamp));

  return (bad_macs == 0 && forgery_caught && order_violations == 0) ? 0 : 1;
}
