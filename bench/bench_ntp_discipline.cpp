// §V quantified: Triad's short-window calibration vs NTP-style
// discipline under the same attacker.
//
// Four rows, all on the same machine model:
//   Triad node, no attack        — ~110 ppm drift between TA resets
//   NTP client, no attack        — sub-ms offset, ppm-learned frequency
//   Triad node, F- delay attack  — unbounded silent skew (Fig. 6)
//   NTP client, delay attacks    — bounded by delay/2 (uniform) or
//                                  filtered entirely (selective)
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "exp/recorder.h"
#include "exp/scenario.h"
#include "ntp/ntp_client.h"
#include "ntp/ntp_server.h"
#include "runtime/cluster_harness.h"

namespace {

using namespace triad;

struct NtpOutcome {
  double final_offset_ms = 0;
  double freq_correction_ppm = 0;
  int tau = 0;
};

NtpOutcome run_ntp(int attack_mode /* 0 none, 1 uniform, 2 selective */) {
  runtime::ClusterConfig cluster;  // default delay = the paper testbed's
  cluster.seed = 4242;
  cluster.master_secret = Bytes(32, 8);
  runtime::ClusterHarness h(std::move(cluster));
  ntp::NtpServer server(h.env(), 100, h.keyring());
  tsc::Tsc tsc(h.simulation(), tsc::kPaperTscFrequencyHz);

  class DelayBox final : public net::Middlebox {
   public:
    explicit DelayBox(int mode) : mode_(mode) {}
    Action on_packet(const net::Packet& p, SimTime) override {
      if (p.src != 100 || mode_ == 0) return {};
      ++count_;
      const bool hit = mode_ == 1 || count_ % 4 != 0;
      return {.extra_delay = hit ? milliseconds(100) : Duration{0},
              .drop = false};
    }

   private:
    int mode_;
    int count_ = 0;
  } attack(attack_mode);
  h.network().add_middlebox(&attack);

  ntp::NtpClientConfig config;
  config.id = 1;
  config.servers = {100};
  // Start with a deliberately wrong nominal frequency (+100 ppm error)
  // so the frequency-learning loop has work to do.
  ntp::NtpClient client(h.env(), h.keyring(), tsc,
                        tsc::kPaperTscFrequencyHz * (1 + 100e-6), config);
  client.start();
  h.run_for(minutes(30));

  return {to_milliseconds(client.now() - h.now()),
          client.clock().frequency_correction_ppm(), client.current_tau()};
}

}  // namespace

int main() {
  using namespace triad;
  bench::print_header(
      "NTP-style discipline vs Triad calibration (§V, 30 min runs)",
      "same machine model, same attacker capabilities");

  // Triad rows reuse the standard scenario.
  auto run_triad = [](bool attacked) {
    exp::ScenarioConfig cfg;
    cfg.seed = 4242;
    exp::Scenario sc(std::move(cfg));
    if (attacked) {
      attacks::DelayAttackConfig a;
      a.kind = attacks::AttackKind::kFMinus;
      a.victim = sc.node_address(2);
      a.ta_address = sc.ta_address();
      sc.add_delay_attack(a);
    }
    exp::Recorder rec(sc);
    sc.start();
    sc.run_until(minutes(30));
    return std::max(std::abs(rec.drift_ms(0).max_value()),
                    std::abs(rec.drift_ms(0).min_value()));
  };

  std::printf("%-38s %16s %14s %6s\n", "configuration", "|error| (ms)",
              "freq corr ppm", "tau");
  std::printf("%-38s %16.2f %14s %6s\n", "Triad honest node, no attack",
              run_triad(false), "-", "-");
  const NtpOutcome clean = run_ntp(0);
  std::printf("%-38s %16.2f %14.1f %6d\n", "NTP client, no attack",
              std::abs(clean.final_offset_ms), clean.freq_correction_ppm,
              clean.tau);
  std::printf("%-38s %16.2f %14s %6s\n",
              "Triad honest node, F- on peer",
              run_triad(true), "-", "-");
  const NtpOutcome uniform = run_ntp(1);
  std::printf("%-38s %16.2f %14.1f %6d\n",
              "NTP client, +100 ms on all replies",
              std::abs(uniform.final_offset_ms), uniform.freq_correction_ppm,
              uniform.tau);
  const NtpOutcome selective = run_ntp(2);
  std::printf("%-38s %16.2f %14.1f %6d\n",
              "NTP client, +100 ms on 3/4 replies",
              std::abs(selective.final_offset_ms),
              selective.freq_correction_ppm, selective.tau);

  // Multi-server selection: 2 honest servers + 1 lying by +5 s.
  {
    runtime::ClusterConfig cluster;
    cluster.seed = 4243;
    cluster.master_secret = Bytes(32, 8);
    runtime::ClusterHarness h(std::move(cluster));
    ntp::NtpServer honest1(h.env(), 100, h.keyring());
    ntp::NtpServer honest2(h.env(), 101, h.keyring());
    ntp::NtpServer liar(h.env(), 102, h.keyring());
    liar.set_lie_offset(seconds(5));
    tsc::Tsc tsc(h.simulation(), tsc::kPaperTscFrequencyHz);
    ntp::NtpClientConfig config;
    config.id = 1;
    config.servers = {100, 101, 102};
    ntp::NtpClient client(h.env(), h.keyring(), tsc,
                          tsc::kPaperTscFrequencyHz, config);
    client.start();
    h.run_for(minutes(30));
    std::printf("%-38s %16.2f %14.1f %6d  (falsetickers rejected: %llu)\n",
                "NTP client, 1 of 3 servers lying +5s",
                std::abs(to_milliseconds(client.now() - h.now())),
                client.clock().frequency_correction_ppm(),
                client.current_tau(),
                static_cast<unsigned long long>(
                    client.stats().falsetickers_rejected));
  }

  std::printf("\n");
  bench::print_summary_row("honest accuracy",
                           "NTP far below Triad's ~110 ppm sawtooth",
                           "sub-ms vs tens of ms");
  bench::print_summary_row("uniform delaying",
                           "offset bias bounded by delay/2",
                           "<= ~50 ms, no compounding");
  bench::print_summary_row("selective delaying",
                           "min-delay filter discards attacked samples",
                           "ms-level error");
  bench::print_summary_row(
      "frequency learning", "starts 100 ppm wrong, learns the residual",
      "correction converges to ≈ +100 ppm");
  return 0;
}
