// Baseline comparison (paper §II-A): Triad vs T3E under the attacks each
// design is exposed to.
//
// Rows:
//   no attack            — availability and drift of both designs
//   time-source delaying — Triad: F+/F- silently skew the clock;
//                          T3E: throughput collapses (detectable stall)
//   time-source rate     — Triad: INC monitor catches TSC scaling;
//   manipulation           T3E: ±32.5 % TPM drift is invisible
// This is the quantitative version of the paper's qualitative related-
// work comparison; absolute values are model-dependent, the asymmetry of
// failure *modes* is the result.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "exp/recorder.h"
#include "exp/scenario.h"
#include "runtime/sim_env.h"
#include "t3e/t3e_node.h"
#include "t3e/tpm.h"

namespace {

using namespace triad;

struct T3eOutcome {
  double availability = 0;
  double final_drift_ms = 0;
};

T3eOutcome run_t3e(double tpm_rate, Duration attacker_delay) {
  sim::Simulation sim(99);
  runtime::SimEnv env(sim);
  t3e::Tpm tpm(env, t3e::TpmParams{.rate = tpm_rate},
               sim.rng().fork("tpm"));
  if (attacker_delay > 0) {
    // The attack begins after a healthy warm-up second.
    sim.schedule_at(seconds(1), [&tpm, attacker_delay] {
      tpm.set_response_delay_hook(
          [attacker_delay] { return attacker_delay; });
    });
  }
  t3e::T3eNode node(env, tpm, t3e::T3eConfig{});
  node.start();

  int served = 0, total = 0;
  double last_drift_ms = 0;
  sim::PeriodicTimer load(sim, milliseconds(10), [&] {
    ++total;
    if (const auto ts = node.serve_timestamp()) {
      ++served;
      last_drift_ms = to_milliseconds(*ts - sim.now());
    }
  });
  sim.run_until(minutes(10));
  return {static_cast<double>(served) / total, last_drift_ms};
}

struct TriadOutcome {
  double availability = 0;
  double worst_drift_ms = 0;
  std::uint64_t detections = 0;
};

TriadOutcome run_triad(int attack /* -1 none, 0 F+, 1 F- */,
                       double tsc_scale) {
  exp::ScenarioConfig cfg;
  cfg.seed = 99;
  exp::Scenario sc(std::move(cfg));
  if (attack >= 0) {
    attacks::DelayAttackConfig a;
    a.kind = attack == 0 ? attacks::AttackKind::kFPlus
                         : attacks::AttackKind::kFMinus;
    a.victim = sc.node_address(2);
    a.ta_address = sc.ta_address();
    sc.add_delay_attack(a);
  }
  exp::Recorder rec(sc);
  sc.start();
  if (tsc_scale != 1.0) {
    sc.simulation().schedule_at(minutes(2), [&sc, tsc_scale] {
      sc.node(2).tsc().hv_set_scale(tsc_scale);
    });
  }
  sc.run_until(minutes(10));
  TriadOutcome out;
  out.availability = sc.node(2).availability();
  out.worst_drift_ms = std::max(std::abs(rec.drift_ms(2).max_value()),
                                std::abs(rec.drift_ms(2).min_value()));
  out.detections = sc.node(2).stats().inc_check_failures;
  return out;
}

}  // namespace

int main() {
  using namespace triad;
  bench::print_header(
      "Baseline — Triad vs T3E failure modes (10 min each)",
      "availability / drift of the attacked node; detections where "
      "applicable");

  std::printf("%-34s %14s %16s %12s\n", "scenario", "availability",
              "|drift| (ms)", "detected");

  const TriadOutcome triad_clean = run_triad(-1, 1.0);
  std::printf("%-34s %13.2f%% %16.1f %12s\n", "Triad, no attack",
              triad_clean.availability * 100, triad_clean.worst_drift_ms,
              "-");
  const T3eOutcome t3e_clean = run_t3e(1.0, 0);
  std::printf("%-34s %13.2f%% %16.1f %12s\n", "T3E, no attack",
              t3e_clean.availability * 100,
              std::abs(t3e_clean.final_drift_ms), "-");

  const TriadOutcome triad_fminus = run_triad(1, 1.0);
  std::printf("%-34s %13.2f%% %16.1f %12s\n",
              "Triad, F- delay attack",
              triad_fminus.availability * 100, triad_fminus.worst_drift_ms,
              "NO (silent)");
  const T3eOutcome t3e_delay = run_t3e(1.0, milliseconds(300));
  std::printf("%-34s %13.2f%% %16.1f %12s\n",
              "T3E, 300 ms response delaying", t3e_delay.availability * 100,
              std::abs(t3e_delay.final_drift_ms), "bounded lag");
  const T3eOutcome t3e_block = run_t3e(1.0, hours(10));
  std::printf("%-34s %13.2f%% %16.1f %12s\n",
              "T3E, responses blocked", t3e_block.availability * 100,
              std::abs(t3e_block.final_drift_ms), "stall (loud)");

  const TriadOutcome triad_scale = run_triad(-1, 1.01);
  std::printf("%-34s %13.2f%% %16.1f %12s\n",
              "Triad, TSC scaled +1% at t=2min",
              triad_scale.availability * 100, triad_scale.worst_drift_ms,
              triad_scale.detections > 0 ? "INC monitor" : "NO");
  const T3eOutcome t3e_rate = run_t3e(1.325, 0);
  std::printf("%-34s %13.2f%% %16.1f %12s\n",
              "T3E, TPM rate configured +32.5%",
              t3e_rate.availability * 100, std::abs(t3e_rate.final_drift_ms),
              "NO (silent)");

  std::printf("\n");
  bench::print_summary_row(
      "Triad under delay attacks", "silent clock skew (paper Figs. 4-6)",
      "drift grows, availability intact");
  bench::print_summary_row(
      "T3E under delay attacks", "throughput drop, detectable (II-A)",
      "availability collapses, drift stays bounded");
  bench::print_summary_row(
      "rate manipulation", "Triad INC monitor catches TSC scaling; "
      "T3E blind to TPM config (±32.5%)",
      "as expected on both sides");
  return 0;
}
