#include "harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace triad::bench {

namespace {

// %.9g, matching the repo-wide pinned float precision (lint R3).
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

double percentile_nearest_rank(std::vector<double> sorted, double p) {
  // Nearest-rank on an already sorted sample, matching campaign
  // aggregate's Stat convention.
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace

MachineFingerprint MachineFingerprint::detect() {
  MachineFingerprint fp;
  fp.cpu = "unknown";
#if defined(__linux__)
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t start = colon + 1;
        while (start < line.size() && line[start] == ' ') ++start;
        fp.cpu = line.substr(start);
      }
      break;
    }
  }
#endif
  fp.cores = std::thread::hardware_concurrency();
#if defined(__clang__)
  fp.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  fp.compiler = std::string("gcc ") + __VERSION__;
#else
  fp.compiler = "unknown";
#endif
#if defined(TRIAD_BENCH_BUILD_FLAGS)
  fp.flags = TRIAD_BENCH_BUILD_FLAGS;
#else
  fp.flags = "";
#endif
  return fp;
}

void Harness::add(std::string name, BenchFn fn,
                  std::vector<std::int64_t> args) {
  if (args.empty()) {
    benches_.push_back({std::move(name), std::move(fn), 0});
    return;
  }
  for (std::int64_t arg : args) {
    benches_.push_back({name + "/" + std::to_string(arg), fn, arg});
  }
}

BenchResult Harness::measure(const std::string& name, const BenchFn& fn,
                             std::int64_t arg,
                             const HarnessOptions& options) const {
  const double min_time_ns = options.min_time_ms * 1e6;

  // Calibrate: double the iteration count until one repetition spends
  // at least min_time, so per-iteration numbers aren't timer noise.
  std::uint64_t iterations = 1;
  std::int64_t bytes_processed = 0;
  std::int64_t items_processed = 0;
  for (;;) {
    State state(iterations, arg);
    fn(state);
    bytes_processed = state.bytes_processed_;
    items_processed = state.items_processed_;
    if (static_cast<double>(state.elapsed_ns_) >= min_time_ns ||
        iterations >= (std::uint64_t{1} << 40)) {
      break;
    }
    // Jump proportionally when far below the floor, capped at 8x.
    const double elapsed = std::max(1.0, static_cast<double>(state.elapsed_ns_));
    const double factor =
        std::clamp(min_time_ns * 1.2 / elapsed, 2.0, 8.0);
    iterations = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(iterations) * factor));
  }

  for (std::uint32_t i = 0; i < options.warmup; ++i) {
    State state(iterations, arg);
    fn(state);
  }

  std::vector<double> per_iter_ns;
  per_iter_ns.reserve(options.repetitions);
  for (std::uint32_t i = 0; i < options.repetitions; ++i) {
    State state(iterations, arg);
    fn(state);
    per_iter_ns.push_back(static_cast<double>(state.elapsed_ns_) /
                          static_cast<double>(iterations));
    bytes_processed = state.bytes_processed_;
    items_processed = state.items_processed_;
  }
  std::sort(per_iter_ns.begin(), per_iter_ns.end());

  BenchResult result;
  result.name = name;
  result.iterations = iterations;
  result.repetitions = options.repetitions;
  result.min_ns = per_iter_ns.front();
  result.median_ns = percentile_nearest_rank(per_iter_ns, 0.50);
  result.p95_ns = percentile_nearest_rank(per_iter_ns, 0.95);
  double sum = 0.0;
  for (double v : per_iter_ns) sum += v;
  result.mean_ns = sum / static_cast<double>(per_iter_ns.size());
  double var = 0.0;
  for (double v : per_iter_ns) {
    var += (v - result.mean_ns) * (v - result.mean_ns);
  }
  result.stddev_ns =
      per_iter_ns.size() > 1
          ? std::sqrt(var / static_cast<double>(per_iter_ns.size() - 1))
          : 0.0;
  if (bytes_processed > 0 && result.median_ns > 0.0) {
    // bytes_processed covers iterations() iterations of one repetition.
    const double bytes_per_iter = static_cast<double>(bytes_processed) /
                                  static_cast<double>(iterations);
    result.bytes_per_second = bytes_per_iter / (result.median_ns / 1e9);
  }
  if (items_processed > 0 && result.median_ns > 0.0) {
    const double items_per_iter = static_cast<double>(items_processed) /
                                  static_cast<double>(iterations);
    result.items_per_second = items_per_iter / (result.median_ns / 1e9);
  }
  return result;
}

int Harness::run(int argc, char** argv) {
  HarnessOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "bench: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--json") {
      const char* v = value();
      if (v == nullptr) return 2;
      options.json_path = v;
    } else if (flag == "--filter") {
      const char* v = value();
      if (v == nullptr) return 2;
      options.filter = v;
    } else if (flag == "--repetitions") {
      const char* v = value();
      if (v == nullptr) return 2;
      options.repetitions = static_cast<std::uint32_t>(
          std::max(1L, std::strtol(v, nullptr, 10)));
    } else if (flag == "--min-time-ms") {
      const char* v = value();
      if (v == nullptr) return 2;
      options.min_time_ms = std::strtod(v, nullptr);
    } else if (flag == "--list") {
      options.list = true;
    } else if (flag == "--help") {
      std::cout << "usage: bench_" << suite_
                << " [--json PATH] [--filter SUBSTR] [--repetitions N]"
                   " [--min-time-ms N] [--list]\n";
      return 0;
    } else {
      std::cerr << "bench: unknown flag " << flag << "\n";
      return 2;
    }
  }

  if (options.list) {
    for (const Registered& bench : benches_) std::cout << bench.name << "\n";
    return 0;
  }

  std::vector<BenchResult> results;
  std::printf("%-34s %14s %12s %12s %12s\n", "benchmark", "iterations",
              "median_ns", "p95_ns", "stddev_ns");
  for (const Registered& bench : benches_) {
    if (!options.filter.empty() &&
        bench.name.find(options.filter) == std::string::npos) {
      continue;
    }
    BenchResult result = measure(bench.name, bench.fn, bench.arg, options);
    std::printf("%-34s %14llu %12.1f %12.1f %12.1f\n", result.name.c_str(),
                static_cast<unsigned long long>(result.iterations),
                result.median_ns, result.p95_ns, result.stddev_ns);
    std::fflush(stdout);
    results.push_back(std::move(result));
  }

  if (!options.json_path.empty()) {
    std::ofstream out(options.json_path);
    if (!out) {
      std::cerr << "bench: cannot write " << options.json_path << "\n";
      return 1;
    }
    write_bench_json(out, suite_, MachineFingerprint::detect(), results);
    std::cout << "wrote " << options.json_path << "\n";
  }
  return 0;
}

void write_bench_json(std::ostream& out, const std::string& suite,
                      const MachineFingerprint& fingerprint,
                      const std::vector<BenchResult>& results) {
  out << "{\n";
  out << "  \"schema\": \"triad-bench-v1\",\n";
  out << "  \"suite\": \"" << json_escape(suite) << "\",\n";
  out << "  \"fingerprint\": {\n";
  out << "    \"cpu\": \"" << json_escape(fingerprint.cpu) << "\",\n";
  out << "    \"cores\": " << fingerprint.cores << ",\n";
  out << "    \"compiler\": \"" << json_escape(fingerprint.compiler)
      << "\",\n";
  out << "    \"flags\": \"" << json_escape(fingerprint.flags) << "\"\n";
  out << "  },\n";
  out << "  \"benchmarks\": [";
  bool first = true;
  for (const BenchResult& r : results) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\n";
    out << "      \"name\": \"" << json_escape(r.name) << "\",\n";
    out << "      \"iterations\": " << r.iterations << ",\n";
    out << "      \"repetitions\": " << r.repetitions << ",\n";
    out << "      \"min_ns\": " << fmt(r.min_ns) << ",\n";
    out << "      \"median_ns\": " << fmt(r.median_ns) << ",\n";
    out << "      \"p95_ns\": " << fmt(r.p95_ns) << ",\n";
    out << "      \"mean_ns\": " << fmt(r.mean_ns) << ",\n";
    out << "      \"stddev_ns\": " << fmt(r.stddev_ns) << ",\n";
    out << "      \"bytes_per_second\": " << fmt(r.bytes_per_second) << ",\n";
    out << "      \"items_per_second\": " << fmt(r.items_per_second) << "\n";
    out << "    }";
  }
  out << "\n  ]\n";
  out << "}\n";
}

}  // namespace triad::bench
