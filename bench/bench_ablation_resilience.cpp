// Resilience ablation (§V, implemented): Triad vs hardened variants under
// no attack, F+, and F-.
//
// Variants:
//   original      — the paper's Triad (max-timestamp peer policy)
//   +deadline     — in-TCB refresh deadline only
//   +truechimer   — majority interval-intersection peer policy only
//   triad+        — deadline + true-chimer + long-window calibration
//
// For each (variant, attack) cell we report the honest nodes' worst
// absolute drift, the victim's worst drift, and TA load — quantifying how
// much each §V countermeasure buys.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "attacks/ramp_attack.h"
#include "bench_common.h"
#include "exp/recorder.h"
#include "exp/scenario.h"
#include "resilient/triad_plus.h"

namespace {

using namespace triad;

struct Variant {
  std::string name;
  std::function<void(exp::ScenarioConfig&)> apply;
};

struct Cell {
  double honest_worst_ms = 0;
  double victim_worst_ms = 0;
  std::uint64_t ta_requests = 0;
  double honest_avail = 0;
};

Cell run_cell(const Variant& variant, int attack /* -1 none, 0 F+, 1 F- */,
              std::uint64_t seed) {
  exp::ScenarioConfig cfg;
  cfg.seed = seed;
  variant.apply(cfg);
  exp::Scenario sc(std::move(cfg));
  if (attack >= 0) {
    attacks::DelayAttackConfig a;
    a.kind = attack == 0 ? attacks::AttackKind::kFPlus
                         : attacks::AttackKind::kFMinus;
    a.victim = sc.node_address(2);
    a.ta_address = sc.ta_address();
    sc.add_delay_attack(a);
  }
  exp::Recorder rec(sc);
  sc.start();
  sc.run_until(minutes(10));

  Cell cell;
  for (std::size_t i = 0; i < 2; ++i) {  // honest nodes
    cell.honest_worst_ms =
        std::max({cell.honest_worst_ms,
                  std::abs(rec.drift_ms(i).max_value()),
                  std::abs(rec.drift_ms(i).min_value())});
    cell.honest_avail += sc.node(i).availability() / 2.0;
  }
  cell.victim_worst_ms = std::max(std::abs(rec.drift_ms(2).max_value()),
                                  std::abs(rec.drift_ms(2).min_value()));
  cell.ta_requests = sc.time_authority().stats().requests_served;
  return cell;
}

}  // namespace

int main() {
  using namespace triad;
  bench::print_header(
      "Ablation — §V countermeasures vs F+/F- attacks (10 min per cell)",
      "honest-worst |drift|, victim-worst |drift|, TA load, honest "
      "availability");

  const Variant variants[] = {
      {"original", [](exp::ScenarioConfig&) {}},
      {"+deadline",
       [](exp::ScenarioConfig& cfg) {
         cfg.node_template.refresh_deadline = seconds(10);
       }},
      {"+truechimer",
       [](exp::ScenarioConfig& cfg) {
         cfg.policy_factory = [] {
           return resilient::make_true_chimer_policy();
         };
       }},
      {"triad+",
       [](exp::ScenarioConfig& cfg) {
         cfg.node_template = resilient::harden(cfg.node_template);
         cfg.policy_factory = [] {
           return resilient::make_triad_plus_policy();
         };
       }},
  };
  const char* attacks_names[] = {"none", "F+", "F-"};

  std::printf("%-12s %-6s %16s %16s %10s %8s\n", "variant", "attack",
              "honest|drift|ms", "victim|drift|ms", "ta_reqs", "avail%");
  for (const Variant& variant : variants) {
    for (int attack = -1; attack <= 1; ++attack) {
      const Cell cell = run_cell(variant, attack,
                                 1000 + static_cast<std::uint64_t>(attack));
      std::printf("%-12s %-6s %16.1f %16.1f %10llu %8.2f\n",
                  variant.name.c_str(), attacks_names[attack + 1],
                  cell.honest_worst_ms, cell.victim_worst_ms,
                  static_cast<unsigned long long>(cell.ta_requests),
                  cell.honest_avail * 100.0);
    }
  }

  // ------------------------------------------------------------------
  // Second table: the long-window revision guard's trade-off (beyond
  // the paper — its future-work direction). A ramping delay biases the
  // long-window frequency estimate by ramp-rate ppm; the guard rate-
  // limits revisions, which also slows the honest repair of an F-
  // poisoned initial calibration.
  std::printf("\n--- long-window revision guard vs ramp / F- (15 min) ---\n");
  std::printf("%-10s %-8s %22s %22s\n", "guard", "attack",
              "worst F_err (ppm)", "final F_err (ppm)");
  for (const double guard_ppm : {0.0, 1000.0}) {
    for (const int attack : {0 /*ramp*/, 1 /*F-*/}) {
      exp::ScenarioConfig cfg;
      cfg.seed = 4100;
      cfg.node_template = resilient::harden(cfg.node_template);
      cfg.node_template.long_window_max_revision_ppm = guard_ppm;
      cfg.policy_factory = [] {
        return resilient::make_triad_plus_policy();
      };
      exp::Scenario sc(std::move(cfg));

      std::unique_ptr<attacks::RampAttack> ramp;
      if (attack == 0) {
        attacks::RampAttackConfig rc;
        rc.victim = sc.node_address(2);
        rc.ta_address = sc.ta_address();
        ramp = std::make_unique<attacks::RampAttack>(rc);
        ramp->set_active(false);
        sc.network().add_middlebox(ramp.get());
        sc.simulation().schedule_at(minutes(2), [r = ramp.get()] {
          r->set_active(true);
        });
      } else {
        attacks::DelayAttackConfig a;
        a.kind = attacks::AttackKind::kFMinus;
        a.victim = sc.node_address(2);
        a.ta_address = sc.ta_address();
        sc.add_delay_attack(a);
      }

      sc.start();
      double worst_ppm = 0, final_ppm = 0;
      sim::PeriodicTimer sampler(sc.simulation(), seconds(10), [&] {
        const double f = sc.node(2).calibrated_frequency_hz();
        if (f <= 0) return;
        final_ppm = std::abs(f - tsc::kPaperTscFrequencyHz) /
                    tsc::kPaperTscFrequencyHz * 1e6;
        worst_ppm = std::max(worst_ppm, final_ppm);
      });
      sc.run_until(minutes(15));
      if (ramp) sc.network().remove_middlebox(ramp.get());
      std::printf("%-10s %-8s %22.0f %22.0f\n",
                  guard_ppm == 0 ? "off" : "1000ppm",
                  attack == 0 ? "ramp" : "F-", worst_ppm, final_ppm);
    }
  }

  std::printf("\n");
  bench::print_summary_row(
      "original under F-", "honest nodes infected (paper Fig. 6)",
      "honest drift ~ victim drift (large)");
  bench::print_summary_row(
      "triad+ under F-", "honest nodes isolated from the false-ticker",
      "honest drift stays ms-level");
  bench::print_summary_row(
      "revision guard trade-off",
      "caps ramp poisoning; slows honest F- repair",
      "see second table");
  return 0;
}
