// Figure 5 (§IV-B1): F+ attack on Node 3 with ALL nodes under Triad-like
// AEXs.
//
// Same attack as Figure 4, but the victim is interrupted every ~0.7 s on
// average, so after each AEX it picks up its peers' timestamps: its drift
// oscillates between the honest nodes' drift (upper envelope) and about
// −150 ms (its own slow clock over the longest 1.59 s AEX gap).
// Paper: F3=3191.210, F1=2898.751, F2=2900.836 MHz; bounds ≈ peers' drift
// and −150 ms.
#include <cstdio>

#include "bench_common.h"
#include "exp/recorder.h"
#include "exp/scenario.h"

int main() {
  using namespace triad;
  bench::print_header(
      "Figure 5 — F+ attack on Node 3 (all nodes Triad-like AEXs)",
      "frequent AEXs let the victim re-adopt honest peer time after every "
      "interruption");

  exp::ScenarioConfig cfg;
  cfg.seed = 5;
  exp::Scenario sc(std::move(cfg));
  attacks::DelayAttackConfig attack;
  attack.kind = attacks::AttackKind::kFPlus;
  attack.victim = sc.node_address(2);
  attack.ta_address = sc.ta_address();
  sc.add_delay_attack(attack);
  // Sample at 200 ms so the oscillation is visible.
  exp::Recorder fine(sc, milliseconds(200));
  sc.start();
  sc.run_until(minutes(10));

  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("\n--- node %zu clock drift (ms) ---\n", i + 1);
    bench::print_series(fine.drift_ms(i), 120);
  }

  std::printf("\n");
  char buf[128];
  std::snprintf(buf, sizeof buf, "%.3f MHz",
                sc.node(2).calibrated_frequency_hz() / 1e6);
  bench::print_summary_row("F3_calib (vs Fig. 4: ~4e-6 relative diff)",
                           "3191.210 MHz", buf);
  std::snprintf(buf, sizeof buf, "%.1f ms", fine.drift_ms(2).min_value());
  bench::print_summary_row("victim lower oscillation bound",
                           "about -150 ms", buf);
  std::snprintf(buf, sizeof buf, "%.1f ms", fine.drift_ms(2).max_value());
  bench::print_summary_row("victim upper bound (peers' drift)",
                           "honest nodes' drift", buf);
  std::snprintf(buf, sizeof buf, "%llu peer adoptions",
                static_cast<unsigned long long>(
                    sc.node(2).stats().peer_adoptions));
  bench::print_summary_row("victim re-adopts honest time after AEXs",
                           "oscillation mechanism", buf);
  return 0;
}
