// RQ A.1 (§IV-A1): TSC monitoring with TEE enclave INC-counters.
//
// Reproduces the paper's measurement: 10k runs counting INC instructions
// until the TSC advances 15e6 ticks (~5.17 ms at F_TSC = 2899.999 MHz),
// monitoring core pinned at 3500 MHz ("performance" governor).
// Paper: mean 632181 INC, stddev 109.5; after dropping two outliers
// (621448 from the cold first run and 630012): mean 632182, stddev 2.9,
// range 10 INC.
//
// The first run's deficit is a warm-up artefact (cold caches/branch
// predictors); we model it by injecting the paper's two outliers into an
// otherwise warm measurement stream.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sim/simulation.h"
#include "stats/summary.h"
#include "tsc/core.h"
#include "tsc/inc_monitor.h"
#include "tsc/tsc.h"

int main() {
  using namespace triad;
  bench::print_header(
      "RQ A.1 — INC-counter TSC monitoring statistics",
      "10k windows of 15e6 TSC ticks; core at 3500 MHz");

  sim::Simulation sim(4242);
  tsc::Tsc the_tsc(sim, tsc::kPaperTscFrequencyHz);
  tsc::Core core(tsc::CoreParams{}, sim.rng().fork("core"));
  tsc::IncMonitor monitor(the_tsc, core);

  constexpr int kRuns = 10'000;
  std::vector<double> measurements;
  measurements.reserve(kRuns);
  for (int i = 0; i < kRuns; ++i) {
    double inc = static_cast<double>(
        monitor.measure_window(tsc::kPaperWindowTicks));
    if (i == 0) inc -= 10'734.0;  // cold first run (paper: 621448)
    if (i == 4'999) inc -= 2'170.0;  // second outlier (paper: 630012)
    measurements.push_back(inc);
  }

  const stats::SummaryStats raw = stats::summarize(measurements);
  const auto kept = stats::drop_farthest_from_median(measurements, 2);
  const stats::SummaryStats clean = stats::summarize(kept);

  std::printf("raw:   n=%zu mean=%.1f stddev=%.1f min=%.0f max=%.0f\n",
              raw.count(), raw.mean(), raw.stddev(), raw.min(), raw.max());
  std::printf("clean: n=%zu mean=%.1f stddev=%.2f range=%.0f\n",
              clean.count(), clean.mean(), clean.stddev(), clean.range());

  char buf[96];
  std::snprintf(buf, sizeof buf, "%.0f INC", raw.mean());
  bench::print_summary_row("mean INC per 15e6-tick window (raw)",
                           "632181 INC", buf);
  std::snprintf(buf, sizeof buf, "%.1f INC", raw.stddev());
  bench::print_summary_row("stddev (raw, incl. outliers)", "109.5 INC", buf);
  std::snprintf(buf, sizeof buf, "%.1f INC", clean.stddev());
  bench::print_summary_row("stddev (2 outliers removed)", "2.9 INC", buf);
  std::snprintf(buf, sizeof buf, "%.0f INC", clean.range());
  bench::print_summary_row("range (2 outliers removed)", "10 INC", buf);

  // Detection capability: the property RQ A.1 concludes with.
  const tsc::IncCalibration cal =
      monitor.calibrate(tsc::kPaperWindowTicks, 256);
  the_tsc.hv_set_scale(1.0 + 100e-6);
  int caught = 0;
  for (int i = 0; i < 100; ++i) {
    if (!monitor.check(cal)) ++caught;
  }
  std::snprintf(buf, sizeof buf, "%d / 100 windows flagged", caught);
  bench::print_summary_row("detection of a 100 ppm TSC speedup",
                           "\"reliably detect\"", buf);

  the_tsc.hv_set_scale(1.0);
  monitor.reset_continuity();
  sim.run_for(seconds(1));
  the_tsc.hv_add_offset(-15'000'000);  // backward jump of one window
  const bool back_caught = !monitor.check_continuity(cal).consistent;
  bench::print_summary_row("detection of a backward TSC jump (5 ms)",
                           "\"forward and back in time\"",
                           back_caught ? "flagged" : "MISSED");

  monitor.reset_continuity();
  sim.run_for(seconds(1));
  the_tsc.hv_add_offset(+30'000'000);  // forward jump
  const bool fwd_caught = !monitor.check_continuity(cal).consistent;
  bench::print_summary_row("detection of a forward TSC jump (10 ms)",
                           "\"forward and back in time\"",
                           fwd_caught ? "flagged" : "MISSED");
  return 0;
}
