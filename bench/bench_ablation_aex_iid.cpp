// AEX-independence ablation (§IV's stated assumption made testable).
//
// The paper: "We do not have information on correlations that existed in
// their setup's successive delays between AEXs: we assume in this work
// that their successive delays were independent."
//
// Sweep the stickiness of a Markov variant of the Triad-like delay
// distribution (same marginal: {10, 532, 1590} ms each 1/3 in steady
// state; lag-1 autocorrelation grows with stickiness) and check whether
// any of the paper's headline numbers move: availability, TA load,
// fault-free drift, and the F- infection result.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "exp/recorder.h"
#include "exp/scenario.h"

namespace {

using namespace triad;

struct Row {
  double availability = 0;
  std::uint64_t ta_requests = 0;
  double max_drift_ms = 0;        // fault-free run
  double infected_drift_ms = 0;   // honest-node drift under F-
};

Row run(double stickiness) {
  Row row;
  for (const bool attacked : {false, true}) {
    exp::ScenarioConfig cfg;
    cfg.seed = 2026;
    cfg.aex_distribution_factory = [stickiness] {
      return std::make_unique<enclave::MarkovAexDistribution>(stickiness);
    };
    exp::Scenario sc(std::move(cfg));
    if (attacked) {
      attacks::DelayAttackConfig a;
      a.kind = attacks::AttackKind::kFMinus;
      a.victim = sc.node_address(2);
      a.ta_address = sc.ta_address();
      sc.add_delay_attack(a);
    }
    exp::Recorder rec(sc);
    sc.start();
    sc.run_until(minutes(20));

    if (!attacked) {
      for (std::size_t i = 0; i < 3; ++i) {
        row.availability += sc.node(i).availability() / 3.0;
        row.max_drift_ms = std::max({row.max_drift_ms,
                                     std::abs(rec.drift_ms(i).max_value()),
                                     std::abs(rec.drift_ms(i).min_value())});
      }
      row.ta_requests = sc.time_authority().stats().requests_served;
    } else {
      row.infected_drift_ms = std::max(
          std::abs(rec.drift_ms(0).max_value()),
          std::abs(rec.drift_ms(0).min_value()));
    }
  }
  return row;
}

}  // namespace

int main() {
  using namespace triad;
  bench::print_header(
      "AEX-independence ablation — does the paper's iid assumption matter?",
      "Markov Triad-like delays; stickiness 1/3 = iid; 20 min per cell");

  std::printf("%12s %14s %10s %16s %20s\n", "stickiness", "availability",
              "ta_reqs", "max|drift| (ms)", "F- honest drift (ms)");
  for (double stickiness : {1.0 / 3.0, 0.6, 0.8, 0.95}) {
    const Row row = run(stickiness);
    std::printf("%12.2f %13.2f%% %10llu %16.1f %20.0f\n", stickiness,
                row.availability * 100.0,
                static_cast<unsigned long long>(row.ta_requests),
                row.max_drift_ms, row.infected_drift_ms);
  }

  std::printf("\n");
  bench::print_summary_row(
      "fault-free behaviour vs AEX correlation",
      "assumption 'successive delays independent' (§IV)",
      "availability/drift barely move across the sweep");
  bench::print_summary_row(
      "F- infection vs AEX correlation",
      "propagation needs only *some* honest AEXs",
      "large honest drift at every stickiness");
  return 0;
}
