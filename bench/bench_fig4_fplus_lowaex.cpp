// Figure 4 (§IV-B1): F+ attack on Node 3, which sits in the low-AEX
// environment; Nodes 1 and 2 experience Triad-like AEXs.
//
// The attacker adds 100 ms to the TA's 1 s-sleep responses, steepening
// Node 3's calibration regression: F3_calib ≈ 3191 MHz, so its clock
// runs at 2900/3191 of real time -> −91 ms/s. With few AEXs, Node 3
// rarely refreshes and the negative drift grows for minutes at a time.
// Paper: F3=3191.224, F1=2900.223, F2=2900.595 MHz; Node 3 at −91 ms/s.
#include <cstdio>

#include "bench_common.h"
#include "exp/recorder.h"
#include "exp/scenario.h"

int main() {
  using namespace triad;
  bench::print_header(
      "Figure 4 — F+ attack on Node 3 (low-AEX victim)",
      "+100 ms on 1 s-sleep TA replies; victim refreshes only at "
      "machine-wide interrupts");

  exp::ScenarioConfig cfg;
  cfg.seed = 4;
  cfg.environments = {exp::AexEnvironment::kTriadLike,
                      exp::AexEnvironment::kTriadLike,
                      exp::AexEnvironment::kLowAex};
  exp::Scenario sc(std::move(cfg));
  attacks::DelayAttackConfig attack;
  attack.kind = attacks::AttackKind::kFPlus;
  attack.victim = sc.node_address(2);
  attack.ta_address = sc.ta_address();
  sc.add_delay_attack(attack);
  exp::Recorder rec(sc);
  sc.start();
  sc.run_until(minutes(30));

  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("\n--- node %zu clock drift (ms) ---\n", i + 1);
    bench::print_series(rec.drift_ms(i), 90);
  }

  // Drift rate of the victim between TA refreshes: steepest sustained
  // descent across adjacent samples.
  const auto& victim = rec.drift_ms(2).samples();
  double steepest = 0.0;
  for (std::size_t i = 1; i < victim.size(); ++i) {
    const double dv = victim[i].value - victim[i - 1].value;
    const double dt = to_seconds(victim[i].time - victim[i - 1].time);
    if (dt > 0 && dv / dt < steepest) steepest = dv / dt;
  }

  std::printf("\n");
  char buf[128];
  std::snprintf(buf, sizeof buf, "%.3f MHz",
                sc.node(2).calibrated_frequency_hz() / 1e6);
  bench::print_summary_row("F3_calib under F+ (+100 ms on 1 s probes)",
                           "3191.224 MHz", buf);
  std::snprintf(buf, sizeof buf, "%.1f ms/s", steepest);
  bench::print_summary_row("victim drift rate between refreshes",
                           "-91 ms/s", buf);
  std::snprintf(buf, sizeof buf, "%.1f ms", rec.drift_ms(2).min_value());
  bench::print_summary_row("victim peak negative drift",
                           "grows for minutes (unbounded)", buf);
  std::snprintf(buf, sizeof buf, "%.3f / %.3f MHz",
                sc.node(0).calibrated_frequency_hz() / 1e6,
                sc.node(1).calibrated_frequency_hz() / 1e6);
  bench::print_summary_row("honest F1/F2_calib",
                           "2900.223 / 2900.595 MHz", buf);
  const double honest_extreme =
      std::max(std::abs(rec.drift_ms(0).min_value()),
               std::abs(rec.drift_ms(0).max_value()));
  std::snprintf(buf, sizeof buf, "|drift| <= %.1f ms", honest_extreme);
  bench::print_summary_row("honest nodes unaffected by F+",
                           "ppm-level drift only", buf);
  std::snprintf(buf, sizeof buf, "%.2f %%", sc.node(2).availability() * 100);
  bench::print_summary_row("victim availability (low AEX rate helps it)",
                           "not degraded by the attack", buf);
  return 0;
}
