// Figure 1: cumulative distribution of delays between successive AEXs on
// the TSC-monitoring enclave thread.
//   (a) Triad-like simulated distribution {10 ms, 532 ms, 1.59 s} @ 1/3
//   (b) isolated monitoring core: residual machine interrupts, mode 5.4 min
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "enclave/aex_source.h"
#include "stats/histogram.h"
#include "util/rng.h"

namespace {

using namespace triad;

stats::EmpiricalCdf sample_cdf(enclave::AexDistribution& dist, Rng& rng,
                               int n) {
  stats::EmpiricalCdf cdf;
  for (int i = 0; i < n; ++i) {
    cdf.add(to_seconds(dist.next_delay(rng)));
  }
  return cdf;
}

void print_cdf(const stats::EmpiricalCdf& cdf, const char* name,
               std::size_t max_rows = 100) {
  const auto points = cdf.points();
  std::printf("# inter_aex_delay_s,cdf  (%s, %zu samples)\n", name,
              cdf.count());
  const std::size_t stride =
      points.size() <= max_rows ? 1 : points.size() / max_rows;
  for (std::size_t i = 0; i < points.size(); i += stride) {
    std::printf("%.4f,%.4f\n", points[i].value, points[i].cumulative);
  }
  if (!points.empty() && (points.size() - 1) % stride != 0) {
    std::printf("%.4f,%.4f\n", points.back().value,
                points.back().cumulative);
  }
}

}  // namespace

int main() {
  using namespace triad;
  bench::print_header(
      "Figure 1 — CDF of inter-AEX delays",
      "(a) Triad-like simulated interruptions; (b) isolated core");

  Rng rng(2025);
  const int n = 20000;

  enclave::TriadLikeAexDistribution triad_like;
  const auto cdf_a = sample_cdf(triad_like, rng, n);
  std::printf("\n--- Figure 1a: Triad-like ---\n");
  print_cdf(cdf_a, "triad-like");

  enclave::IsolatedCoreAexDistribution isolated;
  const auto cdf_b = sample_cdf(isolated, rng, n);
  std::printf("\n--- Figure 1b: isolated monitoring core ---\n");
  print_cdf(cdf_b, "low-AEX");

  std::printf("\n");
  char buf[128];
  std::snprintf(buf, sizeof buf, "%.3f / %.3f / %.3f",
                cdf_a.at(0.010), cdf_a.at(0.532), cdf_a.at(1.590));
  bench::print_summary_row("Fig1a CDF at 10ms / 532ms / 1.59s",
                           "0.333 / 0.667 / 1.000", buf);
  std::snprintf(buf, sizeof buf, "%.1f s",
                cdf_b.quantile(0.5));
  bench::print_summary_row("Fig1b median inter-AEX delay",
                           "~324 s (5.4 min)", buf);
  std::snprintf(buf, sizeof buf, "%.3f",
                cdf_b.at(330.0) - cdf_b.at(310.0));
  bench::print_summary_row("Fig1b mass near 5.4-min mode (310..330 s)",
                           "\"most AEXs\"", buf);
  return 0;
}
