// In-repo micro-benchmark harness (replaces google-benchmark for the
// bench_micro_* binaries).
//
// Why not keep google-benchmark: the perf gate needs a JSON schema we
// control (fixed key order, %.9g floats, machine fingerprint) so
// tools/bench_diff can compare files byte-for-byte-stably across
// library versions, and the whole measurement path has to flow through
// runtime::MonotonicTimer to keep triad_lint's R1 ambient-clock rule
// meaningful.
//
// Usage mirrors google-benchmark closely so the port is mechanical:
//
//   void bm_gcm_seal(bench::State& state) {
//     Aes256Gcm gcm(key);
//     for (auto _ : state) {
//       auto sealed = gcm.seal(iv, plaintext, aad);
//       bench::do_not_optimize(sealed);
//     }
//     state.set_bytes_processed(state.iterations() * state.range(0));
//   }
//   int main(int argc, char** argv) {
//     bench::Harness h("micro_crypto");
//     h.add("BM_GcmSeal", bm_gcm_seal, {32, 256, 1024, 8192});
//     return h.run(argc, argv);
//   }
//
// Protocol per benchmark: calibrate iteration count by doubling until
// one repetition runs >= min_time, then run `warmup` throwaway
// repetitions followed by `repetitions` timed ones; report per-iteration
// min / median / p95 / mean / stddev ns across the timed repetitions.
//
// CLI: --json PATH (write BENCH JSON), --filter SUBSTR, --repetitions N,
//      --min-time-ms N, --list.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/monotonic_timer.h"

namespace triad::bench {

/// The sanctioned wall-clock for bench code. Anything under bench/ that
/// needs elapsed wall time (e.g. bench_campaign_scaling) uses this, not
/// std::chrono directly — triad_lint R1 allowlists only the timer.
using Stopwatch = runtime::MonotonicTimer;

/// Compiler barrier: force `value` to be materialized.
template <typename T>
inline void do_not_optimize(const T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  static volatile const void* sink;
  sink = &value;
#endif
}

/// Per-run state handed to a benchmark function. Iterating it runs the
/// calibrated number of iterations; the timer spans exactly the loop.
class State {
 public:
  class Iterator {
   public:
    // Non-trivial destructor keeps `for (auto _ : state)` clear of
    // -Wunused-but-set-variable (GCC only warns for trivial types).
    struct Value {
      ~Value() {}  // NOLINT(modernize-use-equals-default)
    };
    Value operator*() const { return {}; }
    Iterator& operator++() {
      --remaining_;
      return *this;
    }
    bool operator!=(const Iterator&) {
      if (remaining_ > 0) return true;
      state_->finish_timing();
      return false;
    }

   private:
    friend class State;
    Iterator(State* state, std::uint64_t remaining)
        : state_(state), remaining_(remaining) {}
    State* state_;
    std::uint64_t remaining_;
  };

  Iterator begin() {
    timer_.restart();
    return Iterator(this, iterations_);
  }
  Iterator end() { return Iterator(this, 0); }

  /// The benchmark's argument (0 when registered without args).
  [[nodiscard]] std::int64_t range(std::size_t i = 0) const {
    return i == 0 ? arg_ : 0;
  }
  /// Iterations this run will execute (fixed before the loop starts).
  [[nodiscard]] std::int64_t iterations() const {
    return static_cast<std::int64_t>(iterations_);
  }
  /// Throughput annotations; carried into the JSON as
  /// bytes_per_second / items_per_second.
  void set_bytes_processed(std::int64_t bytes) { bytes_processed_ = bytes; }
  void set_items_processed(std::int64_t items) { items_processed_ = items; }

 private:
  friend class Harness;
  State(std::uint64_t iterations, std::int64_t arg)
      : iterations_(iterations), arg_(arg) {}
  void finish_timing() { elapsed_ns_ = timer_.elapsed_ns(); }

  Stopwatch timer_;
  std::uint64_t iterations_;
  std::int64_t arg_;
  std::uint64_t elapsed_ns_ = 0;
  std::int64_t bytes_processed_ = 0;
  std::int64_t items_processed_ = 0;
};

/// Host identity recorded in every BENCH JSON, so a diff across
/// machines is visibly apples-to-oranges.
struct MachineFingerprint {
  std::string cpu;       // /proc/cpuinfo model name (or "unknown")
  unsigned cores = 0;    // std::thread::hardware_concurrency()
  std::string compiler;  // e.g. "gcc 13.2.0"
  std::string flags;     // TRIAD_BENCH_BUILD_FLAGS compile definition
  [[nodiscard]] static MachineFingerprint detect();
};

/// One benchmark's measured result (per-iteration times, ns).
struct BenchResult {
  std::string name;  // registered name, "/arg"-suffixed when args given
  std::uint64_t iterations = 0;  // per timed repetition
  std::uint32_t repetitions = 0;
  double min_ns = 0.0;
  double median_ns = 0.0;
  double p95_ns = 0.0;
  double mean_ns = 0.0;
  double stddev_ns = 0.0;
  double bytes_per_second = 0.0;  // 0 when the bench set no byte count
  double items_per_second = 0.0;  // 0 when the bench set no item count
};

struct HarnessOptions {
  double min_time_ms = 20.0;  // calibration floor per repetition
  std::uint32_t repetitions = 5;
  std::uint32_t warmup = 1;
  std::string filter;     // substring match on the expanded name
  std::string json_path;  // empty = no JSON written
  bool list = false;
};

class Harness {
 public:
  using BenchFn = std::function<void(State&)>;

  /// `suite` names the JSON ("micro_crypto" -> BENCH_micro_crypto.json
  /// by convention; the actual path comes from --json).
  explicit Harness(std::string suite) : suite_(std::move(suite)) {}

  /// Registers `fn`, expanded once per entry of `args` as "name/arg"
  /// (or once, unexpanded, when `args` is empty).
  void add(std::string name, BenchFn fn, std::vector<std::int64_t> args = {});

  /// Parses CLI flags, runs every matching benchmark, prints a table to
  /// stdout, and writes the JSON when requested. Returns the process
  /// exit code (nonzero on bad flags or unwritable JSON path).
  int run(int argc, char** argv);

  /// Measurement core, exposed for tests: runs one registered function
  /// under the calibrate/warmup/repeat protocol.
  [[nodiscard]] BenchResult measure(const std::string& name,
                                    const BenchFn& fn, std::int64_t arg,
                                    const HarnessOptions& options) const;

 private:
  struct Registered {
    std::string name;  // expanded
    BenchFn fn;
    std::int64_t arg = 0;
  };
  std::string suite_;
  std::vector<Registered> benches_;
};

/// Writes the BENCH JSON document: schema "triad-bench-v1", fixed key
/// order, %.9g floats. Stable keys are the contract bench_diff parses;
/// values obviously vary run to run.
void write_bench_json(std::ostream& out, const std::string& suite,
                      const MachineFingerprint& fingerprint,
                      const std::vector<BenchResult>& results);

}  // namespace triad::bench
