// Loopback QPS/latency benchmark for the triad_timed serve path.
//
// Runs a real TA + node (runtime::RealEnv, UDP on 127.0.0.1) in-process,
// waits for calibration, then measures three phases:
//
//   * offered-load: N requests pre-sealed OUTSIDE the timed window are
//     pumped through a bounded-outstanding pipeline (sendmmsg bursts,
//     blocking drains); responses are stored raw and authenticated
//     post-hoc, also outside the window. The window therefore times the
//     server's full sealed path (recvmmsg -> open -> timestamp -> seal
//     -> send) plus client syscalls, not client-side crypto.
//     QPS = authenticated responses / window.
//   * telemetry offered-load: the same measurement against a fresh
//     cluster with the full telemetry plane on — trace ring, online
//     detectors, and a TCP listener being scraped concurrently — so the
//     BM_TriadLoopbackQpsTelemetry row prices the observability tax on
//     the hot path (acceptance: < 5% against the plain row).
//   * closed-loop: single outstanding request, seal/open inline,
//     per-round-trip wall latency -> p50/p95/p99.
//
// Client and server share the CI box's single core, so the reported QPS
// is a lower bound on what the server alone could sustain.
//
// Output: human table on stdout + triad-bench-v1 JSON via --json (the
// p99 rides in a separate BM_TriadLoopbackRtt_p99 row since the schema's
// fixed fields stop at p95). Exits 0 with a SKIPPED line when the
// sandbox has no loopback sockets.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "crypto/channel.h"
#include "harness.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "runtime/monotonic_timer.h"
#include "runtime/real_env.h"
#include "timed/service.h"
#include "triad/messages.h"
#include "util/types.h"

namespace {

using triad::Bytes;
using triad::NodeId;
using triad::SimTime;
using namespace triad::timed;
namespace rt = triad::runtime;

constexpr NodeId kTaId = 9;
constexpr NodeId kClientId = 100;
constexpr std::size_t kNodes = 3;  // acceptance shape: a 3-node cluster

struct Options {
  std::string json_path;
  std::size_t requests = 60000;
  std::size_t rtt_samples = 2000;
  // Max outstanding offered-load requests. Sized so the server's socket
  // backlog stays under the default rcvbuf (each small datagram costs a
  // ~1 KiB sk_buff in kernel accounting) — pushing harder just turns
  // into kernel-side drops, not throughput.
  std::size_t window = 128;
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// In-process TA + 3-node cluster. `skip` nonempty means bring-up failed
// (socketless sandbox) and the bench should SKIP, not fail.
struct Cluster {
  // Declared first: services unregister their series on destruction.
  std::vector<std::unique_ptr<triad::obs::Registry>> registries;
  std::unique_ptr<TimedService> ta;
  std::thread ta_thread;
  std::vector<std::unique_ptr<TimedService>> nodes;
  std::vector<std::thread> node_threads;
  std::string skip;

  void shutdown() {
    for (auto& node : nodes) node->stop();
    for (auto& thread : node_threads) thread.join();
    node_threads.clear();
    if (ta) ta->stop();
    if (ta_thread.joinable()) ta_thread.join();
  }
};

Cluster start_cluster(bool telemetry) {
  Cluster cluster;
  ServiceConfig ta_config;
  ta_config.role = Role::kTa;
  ta_config.ta_id = kTaId;
  ta_config.seed = 7;
  cluster.ta = std::make_unique<TimedService>(ta_config);
  if (!cluster.ta->valid()) {
    cluster.skip = cluster.ta->error();
    return cluster;
  }
  cluster.ta->start();
  cluster.ta_thread = std::thread([ta = cluster.ta.get()] { ta->run(); });

  for (std::size_t i = 0; i < kNodes; ++i) {
    ServiceConfig node_config;
    node_config.role = Role::kNode;
    node_config.workers = 1;  // one core: more workers only context-switch
    node_config.seed = 7 + i;
    node_config.node.id = static_cast<NodeId>(i + 1);
    node_config.node.ta_address = kTaId;
    node_config.node.calib_pairs = 2;
    node_config.node.calib_wait_high = triad::milliseconds(20);
    node_config.peers = {{kTaId, cluster.ta->protocol_addr()}};
    if (telemetry) {
      // The full PR-9 plane: recording ring + online detector bank on
      // the trace path, and a live scrape target for the Scraper below.
      node_config.trace_capacity = std::size_t{1} << 16;
      node_config.enable_detectors = true;
      node_config.detectors.ta_address = kTaId;
      node_config.telemetry = rt::kLoopbackAny;
    }
    rt::ObsBinding obs;
    if (telemetry) {
      // A per-node registry makes /metrics a real page (not a 404), so
      // the scraper's renders cost what production scrapes cost.
      cluster.registries.push_back(std::make_unique<triad::obs::Registry>());
      obs.metrics = cluster.registries.back().get();
    }
    cluster.nodes.push_back(
        std::make_unique<TimedService>(node_config, obs));
    if (!cluster.nodes.back()->valid()) {
      cluster.skip = cluster.nodes.back()->error();
      cluster.nodes.pop_back();
      cluster.shutdown();
      return cluster;
    }
    cluster.nodes.back()->start();
    cluster.node_threads.emplace_back(
        [node = cluster.nodes.back().get()] { node->run(); });
  }
  return cluster;
}

// Blocks until every node calibrates and serves; false = SKIP (reason
// stored in cluster.skip).
bool wait_ready(Cluster& cluster, const triad::crypto::ClusterKeyring& keyring) {
  for (std::size_t i = 0; i < kNodes; ++i) {
    const NodeId id = static_cast<NodeId>(i + 1);
    BlockingProbe probe(kClientId + 1, id, cluster.nodes[i]->serve_addr(),
                        keyring);
    bool up = false;
    const rt::MonotonicTimer waited;
    while (waited.elapsed_ms() < 10000.0) {
      if (probe.request(triad::milliseconds(100)).has_value()) {
        up = true;
        break;
      }
    }
    if (!up) {
      cluster.skip =
          "node " + std::to_string(id) + " did not become available";
      return false;
    }
  }
  return true;
}

// Background /metrics poller for the telemetry phase: keeps at least one
// scrape in flight every few milliseconds so the workers' scrape signal
// stays active and the listener shares the box with the serve path —
// the overhead we measure is the *scraped* daemon, not an idle listener.
class Scraper {
 public:
  explicit Scraper(const std::vector<std::unique_ptr<TimedService>>& nodes)
      : nodes_(nodes), thread_([this] { run(); }) {}
  ~Scraper() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }
  [[nodiscard]] std::size_t scrapes() const {
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  void run() {
    const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
    while (!stop_.load(std::memory_order_relaxed)) {
      for (const auto& node : nodes_) {
        rt::TcpConn conn =
            rt::TcpConn::dial(node->telemetry_addr(), /*timeout_ms=*/500);
        if (!conn.valid()) continue;
        if (!conn.write_all(triad::BytesView{
                reinterpret_cast<const std::uint8_t*>(request.data()),
                request.size()})) {
          continue;
        }
        conn.shutdown_write();
        std::uint8_t buf[4096];
        while (conn.read_some(buf, sizeof(buf)) > 0) {
        }
        scrapes_.fetch_add(1, std::memory_order_relaxed);
      }
      // ~20 sweeps/s over 3 nodes — an order of magnitude above any real
      // Prometheus cadence, while leaving the shared single core mostly
      // to the serve path being measured.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  const std::vector<std::unique_ptr<TimedService>>& nodes_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> scrapes_{0};
  std::thread thread_;
};

struct LoadResult {
  std::size_t sent = 0;
  std::size_t responses = 0;
  std::size_t authenticated = 0;
  std::size_t tainted = 0;
  std::size_t bad = 0;
  bool monotone = true;
  double window_ns = 0.0;
  double qps = 0.0;
  std::string skip;  // nonempty: client socket bind failed

  [[nodiscard]] bool clean() const {
    return bad == 0 && tainted == 0 && monotone && authenticated > 0;
  }
  [[nodiscard]] double ns_per_request() const {
    return window_ns /
           static_cast<double>(std::max<std::size_t>(1, authenticated));
  }
};

// Offered-load phase: pre-seal every request and pre-chunk into sendmmsg
// bursts, all outside the timed window. Bursts rotate round-robin across
// the three nodes, so the measured QPS is the cluster's aggregate.
LoadResult offered_load(Cluster& cluster, NodeId client_id,
                        const triad::crypto::ClusterKeyring& keyring,
                        const Options& options) {
  LoadResult result;
  triad::crypto::SecureChannel channel(client_id, keyring);
  const std::size_t n = options.requests;
  struct SendBurst {
    std::vector<Bytes> frames;
    rt::SockAddr to;
  };
  std::vector<SendBurst> bursts;
  for (std::size_t i = 0; i < n;) {
    const NodeId dst = static_cast<NodeId>(bursts.size() % kNodes + 1);
    const rt::SockAddr to = cluster.nodes[dst - 1]->serve_addr();
    const std::size_t burst = std::min(rt::kRecvBatch, n - i);
    std::vector<Bytes> chunk;
    chunk.reserve(burst);
    for (std::size_t j = 0; j < burst; ++j, ++i) {
      triad::proto::PeerTimeRequest request;
      request.request_id = i + 1;
      chunk.push_back(triad::net::wire::encode_frame(
          client_id, dst, channel.seal(dst, triad::proto::encode(request))));
    }
    bursts.push_back(SendBurst{std::move(chunk), to});
  }

  rt::UdpSocket socket = rt::UdpSocket::bind(rt::kLoopbackAny);
  if (!socket.valid()) {
    result.skip = "cannot bind client socket";
    return result;
  }
  socket.set_recv_timeout_ms(200);

  std::vector<Bytes> responses;
  responses.reserve(n);
  std::array<rt::RecvView, rt::kRecvBatch> views;
  std::size_t next_burst = 0;
  std::size_t timeouts = 0;

  const rt::MonotonicTimer window_timer;
  std::uint64_t window_end_ns = 0;  // stamped at the last response seen
  while (responses.size() < n) {
    while (next_burst < bursts.size() &&
           result.sent - responses.size() + bursts[next_burst].frames.size() <=
               options.window) {
      const SendBurst& b = bursts[next_burst];
      std::size_t pushed = socket.send_batch(b.to, b.frames, b.frames.size());
      // Partial sendmmsg (rare on loopback): finish the burst one
      // datagram at a time so request ids stay dense.
      while (pushed < b.frames.size() &&
             socket.send_to(b.to, b.frames[pushed])) {
        ++pushed;
      }
      result.sent += pushed;
      ++next_burst;
      if (pushed < b.frames.size()) break;  // back-pressure: drain first
    }
    const std::size_t got = socket.recv_batch(views);
    if (got == 0) {
      if (++timeouts >= 5) break;  // ~1 s of silence: give up
      continue;
    }
    timeouts = 0;
    for (std::size_t i = 0; i < got; ++i) {
      responses.emplace_back(views[i].data.begin(), views[i].data.end());
    }
    window_end_ns = window_timer.elapsed_ns();
  }
  // The window ends at the last response, not after the trailing recv
  // timeouts that confirm UDP-dropped stragglers are really gone.
  result.window_ns = static_cast<double>(window_end_ns);

  // Post-hoc (outside the window): authenticate every stored response,
  // check monotone timestamps, count sealed-path failures.
  // Monotonicity is a per-node contract: each node clamps its own serve
  // stream, but the three clocks are not mutually ordered.
  std::array<SimTime, kNodes> last_ts{};
  for (const Bytes& datagram : responses) {
    const auto frame = triad::net::wire::decode_frame(datagram);
    if (!frame.has_value()) {
      ++result.bad;
      continue;
    }
    const auto opened = channel.open(frame->payload);
    if (!opened.has_value() || opened->sender < 1 || opened->sender > kNodes) {
      ++result.bad;
      continue;
    }
    const auto message = triad::proto::decode(opened->plaintext);
    const auto* response =
        message.has_value()
            ? std::get_if<triad::proto::PeerTimeResponse>(&*message)
            : nullptr;
    if (response == nullptr) {
      ++result.bad;
      continue;
    }
    if (response->tainted) {
      ++result.tainted;
      continue;
    }
    SimTime& last = last_ts[opened->sender - 1];
    if (response->timestamp <= last) result.monotone = false;
    last = response->timestamp;
    ++result.authenticated;
  }
  result.responses = responses.size();
  result.qps = result.window_ns > 0
                   ? static_cast<double>(result.authenticated) * 1e9 /
                         result.window_ns
                   : 0.0;
  return result;
}

void print_load(const char* label, const LoadResult& load) {
  std::printf(
      "%s: %zu sent, %zu responses, %zu authenticated, "
      "%zu tainted, %zu bad, monotone=%s\n",
      label, load.sent, load.responses, load.authenticated, load.tainted,
      load.bad, load.monotone ? "yes" : "NO");
  std::printf("  QPS      %12.0f sealed requests/s (window %.3f s)\n",
              load.qps, load.window_ns / 1e9);
}

int run_bench(const Options& options) {
  const Bytes secret(32, 0x42);
  const triad::crypto::ClusterKeyring keyring(secret);

  // --- phase 1: plain cluster (offered load + closed-loop RTT) ----------
  Cluster plain = start_cluster(/*telemetry=*/false);
  if (!plain.skip.empty()) {
    std::cout << "SKIPPED: " << plain.skip << "\n";
    return 0;
  }
  if (!wait_ready(plain, keyring)) {
    std::cout << "SKIPPED: " << plain.skip << "\n";
    plain.shutdown();
    return 0;
  }
  const LoadResult base = offered_load(plain, kClientId, keyring, options);
  if (!base.skip.empty()) {
    std::cout << "SKIPPED: " << base.skip << "\n";
    plain.shutdown();
    return 0;
  }

  // --- closed-loop latency phase (still on the plain cluster) -----------
  std::vector<double> rtts_ns;
  rtts_ns.reserve(options.rtt_samples);
  {
    BlockingProbe probe(kClientId + 2, 1, plain.nodes[0]->serve_addr(),
                        keyring);
    for (std::size_t i = 0; i < options.rtt_samples; ++i) {
      const rt::MonotonicTimer rtt;
      if (probe.request(triad::milliseconds(100)).has_value()) {
        rtts_ns.push_back(static_cast<double>(rtt.elapsed_ns()));
      }
    }
  }
  plain.shutdown();

  // --- phase 2: telemetry cluster (ring + detectors + live scraper) -----
  Cluster observed = start_cluster(/*telemetry=*/true);
  if (!observed.skip.empty()) {
    std::cout << "SKIPPED: " << observed.skip << "\n";
    return 0;
  }
  if (!wait_ready(observed, keyring)) {
    std::cout << "SKIPPED: " << observed.skip << "\n";
    observed.shutdown();
    return 0;
  }
  LoadResult telem;
  std::size_t scrapes = 0;
  {
    Scraper scraper(observed.nodes);
    telem = offered_load(observed, kClientId + 3, keyring, options);
    scrapes = scraper.scrapes();
  }
  observed.shutdown();
  if (!telem.skip.empty()) {
    std::cout << "SKIPPED: " << telem.skip << "\n";
    return 0;
  }

  std::sort(rtts_ns.begin(), rtts_ns.end());
  const double p50 = percentile(rtts_ns, 0.50);
  const double p95 = percentile(rtts_ns, 0.95);
  const double p99 = percentile(rtts_ns, 0.99);
  double mean = 0.0;
  for (const double v : rtts_ns) mean += v;
  if (!rtts_ns.empty()) mean /= static_cast<double>(rtts_ns.size());
  double var = 0.0;
  for (const double v : rtts_ns) var += (v - mean) * (v - mean);
  const double stddev =
      rtts_ns.size() > 1
          ? std::sqrt(var / static_cast<double>(rtts_ns.size() - 1))
          : 0.0;

  print_load("offered-load", base);
  print_load("offered-load+telemetry", telem);
  // Overhead in per-request cost; negative = telemetry run came out
  // faster (both runs share one noisy core, so small negatives happen).
  const double overhead_pct =
      base.ns_per_request() > 0
          ? (telem.ns_per_request() - base.ns_per_request()) /
                base.ns_per_request() * 100.0
          : 0.0;
  std::printf("  overhead %+11.1f %% per request (%zu live scrapes)\n",
              overhead_pct, scrapes);
  std::printf("closed-loop: %zu/%zu round-trips\n", rtts_ns.size(),
              options.rtt_samples);
  std::printf("  p50      %12.1f us\n", p50 / 1e3);
  std::printf("  p95      %12.1f us\n", p95 / 1e3);
  std::printf("  p99      %12.1f us\n", p99 / 1e3);

  // Acceptance guards: every response authenticated (zero unsealed-path
  // fallbacks), timestamps monotone — in both phases — and the scraper
  // actually exercised the telemetry plane. The <5% overhead acceptance
  // rides in bench_diff against the committed BENCH_loopback.json
  // baseline (run_all.sh loopback perf tier), not as a hard exit here:
  // a single shared-core run is too noisy for a self-contained gate.
  if (!base.clean() || !telem.clean() || scrapes == 0) {
    std::printf(
        "FAILED: sealed-path violations (base bad=%zu tainted=%zu "
        "monotone=%s; telemetry bad=%zu tainted=%zu monotone=%s; "
        "scrapes=%zu)\n",
        base.bad, base.tainted, base.monotone ? "yes" : "no", telem.bad,
        telem.tainted, telem.monotone ? "yes" : "no", scrapes);
    return 1;
  }

  if (!options.json_path.empty()) {
    std::vector<triad::bench::BenchResult> results;
    triad::bench::BenchResult load;
    load.name = "BM_TriadLoopbackQps";
    load.iterations = base.authenticated;
    load.repetitions = 1;
    load.min_ns = load.median_ns = load.p95_ns = load.mean_ns =
        base.ns_per_request();
    load.items_per_second = base.qps;
    results.push_back(load);

    triad::bench::BenchResult observed_load;
    observed_load.name = "BM_TriadLoopbackQpsTelemetry";
    observed_load.iterations = telem.authenticated;
    observed_load.repetitions = 1;
    observed_load.min_ns = observed_load.median_ns = observed_load.p95_ns =
        observed_load.mean_ns = telem.ns_per_request();
    observed_load.items_per_second = telem.qps;
    results.push_back(observed_load);

    triad::bench::BenchResult rtt;
    rtt.name = "BM_TriadLoopbackRtt";
    rtt.iterations = rtts_ns.size();
    rtt.repetitions = 1;
    rtt.min_ns = rtts_ns.empty() ? 0.0 : rtts_ns.front();
    rtt.median_ns = p50;
    rtt.p95_ns = p95;
    rtt.mean_ns = mean;
    rtt.stddev_ns = stddev;
    rtt.items_per_second = mean > 0 ? 1e9 / mean : 0.0;
    results.push_back(rtt);

    triad::bench::BenchResult tail;
    tail.name = "BM_TriadLoopbackRtt_p99";
    tail.iterations = rtts_ns.size();
    tail.repetitions = 1;
    tail.min_ns = tail.median_ns = tail.p95_ns = tail.mean_ns = p99;
    results.push_back(tail);

    std::ofstream out(options.json_path);
    if (!out) {
      std::cerr << "cannot write " << options.json_path << "\n";
      return 1;
    }
    triad::bench::write_bench_json(out, "triad_loopback",
                                   triad::bench::MachineFingerprint::detect(),
                                   results);
    std::cout << "JSON written to " << options.json_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      options.json_path = argv[++i];
    } else if (arg == "--requests" && i + 1 < argc) {
      options.requests = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--rtt-samples" && i + 1 < argc) {
      options.rtt_samples = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--window" && i + 1 < argc) {
      options.window = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else {
      std::cerr << "usage: bench_triad_loopback [--json PATH] [--requests N]"
                   " [--rtt-samples N] [--window N]\n";
      return 2;
    }
  }
  return run_bench(options);
}
