// Campaign-engine scaling: wall-clock for a fixed 32-run sweep as the
// worker count grows, plus the determinism check that motivates the
// design — the aggregate report must be byte-identical at every job
// count (results are slotted by grid index, never by completion order).
//
// Per-run simulations are single-threaded and share no mutable state,
// so speedup should track min(jobs, cores); on a single-core CI box all
// job counts measure ~1x and only the determinism check is meaningful.
#include <cstdio>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "campaign/aggregate.h"
#include "campaign/runner.h"
#include "harness.h"

int main() {
  using namespace triad;
  bench::print_header(
      "Campaign scaling — 32-run F- sweep at jobs 1/2/4/8",
      "seeds 1..32, 2 min virtual each; byte-identical reports required "
      "at every job count");

  campaign::CampaignSpec spec;
  spec.seeds.clear();
  for (std::uint64_t seed = 1; seed <= 32; ++seed) spec.seeds.push_back(seed);
  spec.attacks = {"fminus"};
  spec.duration = minutes(2);

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("hardware_concurrency: %u\n\n", cores);
  std::printf("%8s %12s %10s %18s\n", "jobs", "wall_s", "speedup",
              "report_identical");

  std::string baseline_json;
  double baseline_wall_ms = 0.0;
  bool all_identical = true;
  double best_speedup = 1.0;
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    campaign::RunnerOptions options;
    options.jobs = jobs;
    campaign::CampaignRunner runner(options);
    // Wall time measured here with the sanctioned bench stopwatch, not
    // taken from the runner, so this bench times exactly what it frames:
    // the full run() call including worker spawn/join.
    bench::Stopwatch stopwatch;
    const campaign::CampaignResult result = runner.run(spec);
    const double wall_ms = stopwatch.elapsed_ms();
    const campaign::CampaignReport report =
        campaign::CampaignReport::aggregate(spec, result);
    std::ostringstream json;
    report.write_json(json);
    if (jobs == 1) {
      baseline_json = json.str();
      baseline_wall_ms = wall_ms;
    }
    const bool identical = json.str() == baseline_json;
    all_identical = all_identical && identical;
    const double speedup = baseline_wall_ms / wall_ms;
    if (jobs > 1) best_speedup = std::max(best_speedup, speedup);
    std::printf("%8zu %12.2f %9.2fx %18s\n", jobs, wall_ms / 1e3,
                speedup, jobs == 1 ? "(baseline)"
                                   : (identical ? "yes" : "NO"));
  }

  std::printf("\n");
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s",
                all_identical ? "byte-identical at jobs 1/2/4/8" : "DIVERGED");
  bench::print_summary_row("aggregate report determinism",
                           "independent of worker count", buf);
  std::snprintf(buf, sizeof buf, "%.2fx on %u core(s)", best_speedup, cores);
  bench::print_summary_row("best parallel speedup (32 runs)",
                           "~min(jobs, cores)", buf);
  return all_identical ? 0 : 1;
}
