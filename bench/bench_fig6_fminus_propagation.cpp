// Figure 6 (§IV-B2): F- attack on Node 3 — the headline result.
//
// The attacker adds 100 ms to the TA's immediate (0 s-sleep) responses,
// flattening Node 3's regression: F3_calib ≈ 2610 MHz, so its clock runs
// ~+113 ms/s fast. Nodes 1 and 2 start in the low-AEX environment (drift
// stays ppm-level), then switch to Triad-like AEXs at t = 104 s (dashed
// red line in the paper): from then on they ask peers after every AEX,
// receive Node 3's timestamps — larger than their own — and jump forward.
// The infection then self-propagates between the honest nodes.
//   (a) clock drift per node; (b) cumulative AEX count per node.
#include <cstdio>

#include "bench_common.h"
#include "exp/recorder.h"
#include "exp/scenario.h"

int main() {
  using namespace triad;
  bench::print_header(
      "Figure 6 — F- attack on Node 3: propagation to honest nodes",
      "+100 ms on 0 s-sleep TA replies; honest nodes switch from low-AEX "
      "to Triad-like at t = 104 s");

  exp::ScenarioConfig cfg;
  cfg.seed = 6;
  cfg.environments = {exp::AexEnvironment::kLowAex,
                      exp::AexEnvironment::kLowAex,
                      exp::AexEnvironment::kTriadLike};
  exp::Scenario sc(std::move(cfg));
  attacks::DelayAttackConfig attack;
  attack.kind = attacks::AttackKind::kFMinus;
  attack.victim = sc.node_address(2);
  attack.ta_address = sc.ta_address();
  sc.add_delay_attack(attack);
  const SimTime kSwitch = seconds(104);
  sc.switch_environment_at(0, exp::AexEnvironment::kTriadLike, kSwitch);
  sc.switch_environment_at(1, exp::AexEnvironment::kTriadLike, kSwitch);
  exp::Recorder rec(sc, milliseconds(500));
  sc.start();
  // A machine-wide residual interrupt shortly before the switch (as the
  // paper's timeline implies): all nodes taint together and re-reference
  // with the TA, so the victim's drift is small when the infection
  // window opens — that is what makes the paper's first jump ~35 ms
  // rather than the victim's full accumulated drift.
  sc.simulation().schedule_at(kSwitch - milliseconds(600), [&sc] {
    for (std::size_t i = 0; i < sc.node_count(); ++i) {
      sc.node(i).monitoring_thread().deliver_aex();
    }
  });
  sc.run_until(seconds(420));

  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("\n--- Figure 6a: node %zu clock drift (ms) ---\n", i + 1);
    bench::print_series(rec.drift_ms(i), 120);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("\n--- Figure 6b: node %zu cumulative AEX count ---\n",
                i + 1);
    bench::print_series(rec.aex_count(i), 60);
  }

  // First infection step: the first forward adoption by an honest node
  // sourced from the compromised node after the switch.
  double first_jump_ms = 0.0;
  SimTime first_jump_at = 0;
  for (const auto& ev : rec.adoptions()) {
    if (ev.at >= kSwitch && ev.node != 2 &&
        ev.source == sc.node_address(2) && ev.step() > 0) {
      first_jump_ms = to_milliseconds(ev.step());
      first_jump_at = ev.at;
      break;
    }
  }

  std::printf("\n");
  char buf[160];
  std::snprintf(buf, sizeof buf, "%.3f MHz",
                sc.node(2).calibrated_frequency_hz() / 1e6);
  bench::print_summary_row("F3_calib under F- (+100 ms on 0 s probes)",
                           "2609.951 MHz", buf);
  std::snprintf(buf, sizeof buf, "+%.0f ms/s (1/0.9 of real time)",
                (tsc::kPaperTscFrequencyHz /
                     sc.node(2).calibrated_frequency_hz() -
                 1.0) *
                    1000.0);
  bench::print_summary_row("victim clock speed", "+113 ms/s", buf);
  std::snprintf(buf, sizeof buf, "%.1f ms",
                rec.drift_ms(0).value_at(kSwitch));
  bench::print_summary_row("honest drift before the switch (t<104 s)",
                           "ppm-level", buf);
  std::snprintf(buf, sizeof buf, "+%.1f ms at t=%.1f s", first_jump_ms,
                to_seconds(first_jump_at));
  bench::print_summary_row("first forward jump onto the victim's clock",
                           "~+35 ms at t=104 s", buf);
  std::snprintf(buf, sizeof buf, "%.0f / %.0f ms",
                rec.drift_ms(0).max_value(), rec.drift_ms(1).max_value());
  bench::print_summary_row("honest nodes' peak drift after infection",
                           "ratchets upward (Fig. 6a)", buf);
  std::snprintf(buf, sizeof buf, "%.0f then %.0f AEX",
                rec.aex_count(0).value_at(kSwitch),
                rec.aex_count(0).value_at(seconds(420)));
  bench::print_summary_row("honest AEX count before/after switch (Fig. 6b)",
                           "~0 then linear increase", buf);
  return 0;
}
