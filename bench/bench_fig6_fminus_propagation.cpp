// Figure 6 (§IV-B2): F- attack on Node 3 — the headline result.
//
// The attacker adds 100 ms to the TA's immediate (0 s-sleep) responses,
// flattening Node 3's regression: F3_calib ≈ 2610 MHz, so its clock runs
// ~+113 ms/s fast. Nodes 1 and 2 start in the low-AEX environment (drift
// stays ppm-level), then switch to Triad-like AEXs at t = 104 s (dashed
// red line in the paper): from then on they ask peers after every AEX,
// receive Node 3's timestamps — larger than their own — and jump forward.
// The infection then self-propagates between the honest nodes.
//   (a) clock drift per node; (b) cumulative AEX count per node.
//
// The scenario grid (paper seed 6 plus three replicates) runs through
// the campaign engine: the per-node environment split, the t = 104 s
// switch, and the pre-switch machine-interrupt kick are installed via
// the configure/customize hooks, and the first-jump magnitude is pulled
// out per run via the inspect hook. Seed 6 reproduces the figure; the
// replicates show the infection is not a seed artefact.
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "campaign/runner.h"
#include "exp/recorder.h"
#include "exp/scenario.h"

namespace {

constexpr triad::SimTime kSwitch = triad::seconds(104);
constexpr std::uint64_t kPaperSeed = 6;

// Series and scalars copied out of the seed-6 run for the figure.
struct FigureCapture {
  std::vector<triad::stats::TimeSeries> drift;
  std::vector<triad::stats::TimeSeries> aex;
  double victim_freq_hz = 0.0;
  double honest_drift_at_switch_ms = 0.0;
  double peak_drift_node1_ms = 0.0;
  double peak_drift_node2_ms = 0.0;
  double aex_at_switch = 0.0;
  double aex_at_end = 0.0;
};

}  // namespace

int main() {
  using namespace triad;
  bench::print_header(
      "Figure 6 — F- attack on Node 3: propagation to honest nodes",
      "+100 ms on 0 s-sleep TA replies; honest nodes switch from low-AEX "
      "to Triad-like at t = 104 s; grid executed by the campaign engine");

  campaign::CampaignSpec spec;
  spec.seeds = {kPaperSeed, 16, 26, 36};
  spec.attacks = {"fminus"};
  spec.environments = {"low"};  // overridden per node below
  spec.node_counts = {3};
  spec.victim = 3;
  spec.duration = seconds(420);

  std::mutex capture_mutex;
  FigureCapture figure;

  campaign::RunnerOptions options;
  options.jobs = std::max(1u, std::thread::hardware_concurrency());
  options.run.sample_period = milliseconds(500);
  options.run.configure = [](const campaign::RunSpec&,
                             exp::ScenarioConfig& cfg) {
    cfg.environments = {exp::AexEnvironment::kLowAex,
                        exp::AexEnvironment::kLowAex,
                        exp::AexEnvironment::kTriadLike};
  };
  options.run.customize = [](const campaign::RunSpec&, exp::Scenario& sc) {
    sc.switch_environment_at(0, exp::AexEnvironment::kTriadLike, kSwitch);
    sc.switch_environment_at(1, exp::AexEnvironment::kTriadLike, kSwitch);
    // A machine-wide residual interrupt shortly before the switch (as
    // the paper's timeline implies): all nodes taint together and
    // re-reference with the TA, so the victim's drift is small when the
    // infection window opens — that is what makes the paper's first
    // jump ~35 ms rather than the victim's full accumulated drift.
    sc.simulation().schedule_at(kSwitch - milliseconds(600), [&sc] {
      for (std::size_t i = 0; i < sc.node_count(); ++i) {
        sc.node(i).monitoring_thread().deliver_aex();
      }
    });
  };
  options.run.inspect = [&capture_mutex, &figure](
                            const campaign::RunSpec& run, exp::Scenario& sc,
                            const exp::Recorder& rec,
                            campaign::RunResult& result) {
    // First infection step: the first forward adoption by an honest
    // node sourced from the compromised node after the switch.
    double first_jump_ms = 0.0;
    double first_jump_at_s = 0.0;
    for (const auto& ev : rec.adoptions()) {
      if (ev.at >= kSwitch && ev.node != 2 &&
          ev.source == sc.node_address(2) && ev.step() > 0) {
        first_jump_ms = to_milliseconds(ev.step());
        first_jump_at_s = to_seconds(ev.at);
        break;
      }
    }
    result.extra.emplace_back("first_jump_ms", first_jump_ms);
    result.extra.emplace_back("first_jump_at_s", first_jump_at_s);
    if (run.seed != kPaperSeed) return;
    const std::lock_guard<std::mutex> lock(capture_mutex);
    for (std::size_t i = 0; i < 3; ++i) {
      figure.drift.push_back(rec.drift_ms(i));
      figure.aex.push_back(rec.aex_count(i));
    }
    figure.victim_freq_hz = sc.node(2).calibrated_frequency_hz();
    figure.honest_drift_at_switch_ms = rec.drift_ms(0).value_at(kSwitch);
    figure.peak_drift_node1_ms = rec.drift_ms(0).max_value();
    figure.peak_drift_node2_ms = rec.drift_ms(1).max_value();
    figure.aex_at_switch = rec.aex_count(0).value_at(kSwitch);
    figure.aex_at_end = rec.aex_count(0).value_at(seconds(420));
  };

  campaign::CampaignRunner runner(options);
  const campaign::CampaignResult result = runner.run(spec);
  if (result.failures != 0 || figure.drift.size() != 3) {
    std::fprintf(stderr, "fig6 campaign failed (%zu failures)\n",
                 result.failures);
    return 1;
  }

  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("\n--- Figure 6a: node %zu clock drift (ms) ---\n", i + 1);
    bench::print_series(figure.drift[i], 120);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("\n--- Figure 6b: node %zu cumulative AEX count ---\n",
                i + 1);
    bench::print_series(figure.aex[i], 60);
  }

  // The figure numbers come from the paper's seed; the replicate seeds
  // bound how seed-dependent the infection is.
  const campaign::RunResult& paper_run = result.runs.front();
  double paper_first_jump_ms = 0.0;
  double paper_first_jump_at_s = 0.0;
  for (const auto& [key, value] : paper_run.extra) {
    if (key == "first_jump_ms") paper_first_jump_ms = value;
    if (key == "first_jump_at_s") paper_first_jump_at_s = value;
  }

  std::printf("\n--- infection across seeds (campaign grid) ---\n");
  std::printf("%8s %16s %16s %20s %14s\n", "seed", "first_jump_ms",
              "first_jump_at_s", "honest_peak_|drift|", "alarm_at_s");
  for (const campaign::RunResult& run : result.runs) {
    double jump = 0.0;
    double at = 0.0;
    for (const auto& [key, value] : run.extra) {
      if (key == "first_jump_ms") jump = value;
      if (key == "first_jump_at_s") at = value;
    }
    std::printf("%8llu %16.1f %16.1f %17.0f ms %14.1f\n",
                static_cast<unsigned long long>(run.seed), jump, at,
                run.honest_max_abs_drift_ms, run.detector_first_alarm_s);
  }

  std::printf("\n");
  char buf[160];
  std::snprintf(buf, sizeof buf, "%.3f MHz", figure.victim_freq_hz / 1e6);
  bench::print_summary_row("F3_calib under F- (+100 ms on 0 s probes)",
                           "2609.951 MHz", buf);
  std::snprintf(buf, sizeof buf, "+%.0f ms/s (1/0.9 of real time)",
                (tsc::kPaperTscFrequencyHz / figure.victim_freq_hz - 1.0) *
                    1000.0);
  bench::print_summary_row("victim clock speed", "+113 ms/s", buf);
  std::snprintf(buf, sizeof buf, "%.1f ms", figure.honest_drift_at_switch_ms);
  bench::print_summary_row("honest drift before the switch (t<104 s)",
                           "ppm-level", buf);
  std::snprintf(buf, sizeof buf, "+%.1f ms at t=%.1f s", paper_first_jump_ms,
                paper_first_jump_at_s);
  bench::print_summary_row("first forward jump onto the victim's clock",
                           "~+35 ms at t=104 s", buf);
  std::snprintf(buf, sizeof buf, "%.0f / %.0f ms", figure.peak_drift_node1_ms,
                figure.peak_drift_node2_ms);
  bench::print_summary_row("honest nodes' peak drift after infection",
                           "ratchets upward (Fig. 6a)", buf);
  std::snprintf(buf, sizeof buf, "%.0f then %.0f AEX", figure.aex_at_switch,
                figure.aex_at_end);
  bench::print_summary_row("honest AEX count before/after switch (Fig. 6b)",
                           "~0 then linear increase", buf);
  std::snprintf(buf, sizeof buf, "alarm at %.1f s, %+.1f s before the jump",
                paper_run.detector_first_alarm_s,
                paper_first_jump_at_s - paper_run.detector_first_alarm_s);
  bench::print_summary_row("online detection vs first infection jump",
                           "alarm precedes the jump", buf);
  return 0;
}
