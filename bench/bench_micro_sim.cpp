// Micro-benchmarks (google-benchmark): simulation engine and end-to-end
// scenario throughput — how many virtual protocol-hours per wall second.
#include <benchmark/benchmark.h>

#include "exp/scenario.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace {

using namespace triad;

void BM_ScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(i, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_TimerCascade(benchmark::State& state) {
  // Self-rescheduling events: the protocol's dominant pattern.
  for (auto _ : state) {
    sim::Simulation sim;
    std::function<void()> tick = [&] {
      if (sim.now() < seconds(100)) sim.schedule_after(milliseconds(1), tick);
    };
    sim.schedule_after(milliseconds(1), tick);
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
}
BENCHMARK(BM_TimerCascade);

void BM_NetworkSendDeliver(benchmark::State& state) {
  sim::Simulation sim;
  net::Network net(sim, std::make_unique<net::FixedDelay>(microseconds(100)));
  std::uint64_t received = 0;
  net.attach(2, [&](const net::Packet&) { ++received; });
  const Bytes payload(128, 7);
  for (auto _ : state) {
    net.send(1, 2, payload);
    sim.run();
  }
  benchmark::DoNotOptimize(received);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_FullScenarioVirtualMinute(benchmark::State& state) {
  // One virtual minute of a 3-node Triad cluster with Triad-like AEXs,
  // full crypto on every message.
  for (auto _ : state) {
    exp::ScenarioConfig cfg;
    cfg.seed = 77;
    exp::Scenario sc(std::move(cfg));
    sc.start();
    sc.run_until(minutes(1));
    benchmark::DoNotOptimize(sc.simulation().events_executed());
  }
}
BENCHMARK(BM_FullScenarioVirtualMinute)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
