// Micro-benchmarks (bench::Harness): simulation engine and end-to-end
// scenario throughput — how many virtual protocol-hours per wall second.
// Emits BENCH JSON via --json for the bench_diff perf gate.
#include "exp/scenario.h"
#include "harness.h"
#include "net/network.h"
#include "obs/prof.h"
#include "sim/simulation.h"

namespace {

using namespace triad;

void bm_schedule_and_run(bench::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(i, [] {});
    }
    sim.run();
    bench::do_not_optimize(sim.events_executed());
  }
  state.set_items_processed(state.iterations() * state.range(0));
}

void bm_timer_cascade(bench::State& state) {
  // Self-rescheduling events: the protocol's dominant pattern.
  for (auto _ : state) {
    sim::Simulation sim;
    std::function<void()> tick = [&] {
      if (sim.now() < seconds(100)) sim.schedule_after(milliseconds(1), tick);
    };
    sim.schedule_after(milliseconds(1), tick);
    sim.run();
    bench::do_not_optimize(sim.events_executed());
  }
}

void bm_network_send_deliver(bench::State& state) {
  sim::Simulation sim;
  net::Network net(sim, std::make_unique<net::FixedDelay>(microseconds(100)));
  std::uint64_t received = 0;
  net.attach(2, [&](const net::Packet&) { ++received; });
  const Bytes payload(128, 7);
  for (auto _ : state) {
    net.send(1, 2, payload);
    sim.run();
  }
  bench::do_not_optimize(received);
  state.set_items_processed(state.iterations());
}

void bm_full_scenario_virtual_minute(bench::State& state) {
  // One virtual minute of a 3-node Triad cluster with Triad-like AEXs,
  // full crypto on every message. The profiler-overhead acceptance
  // criterion (<5% compiled-in-but-disabled) is measured on this bench.
  for (auto _ : state) {
    exp::ScenarioConfig cfg;
    cfg.seed = 77;
    exp::Scenario sc(std::move(cfg));
    sc.start();
    sc.run_until(minutes(1));
    bench::do_not_optimize(sc.simulation().events_executed());
  }
}

// Same scenario with the profiler recording: the delta against the
// disabled run above is the enabled-overhead story, tracked in the same
// BENCH trajectory.
void bm_full_scenario_profiled(bench::State& state) {
  auto& profiler = obs::Profiler::instance();
  profiler.set_enabled(true);
  for (auto _ : state) {
    exp::ScenarioConfig cfg;
    cfg.seed = 77;
    exp::Scenario sc(std::move(cfg));
    sc.start();
    sc.run_until(minutes(1));
    bench::do_not_optimize(sc.simulation().events_executed());
  }
  profiler.set_enabled(false);
  profiler.reset();
}

}  // namespace

int main(int argc, char** argv) {
  triad::bench::Harness h("micro_sim");
  h.add("BM_ScheduleAndRun", bm_schedule_and_run, {1000, 100000});
  h.add("BM_TimerCascade", bm_timer_cascade);
  h.add("BM_NetworkSendDeliver", bm_network_send_deliver);
  h.add("BM_FullScenarioVirtualMinute", bm_full_scenario_virtual_minute);
  h.add("BM_FullScenarioProfiled", bm_full_scenario_profiled);
  return h.run(argc, argv);
}
