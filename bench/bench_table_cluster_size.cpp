// Cluster-size table (§III-B: "For shorter roundtrip delays and fewer
// requests to the TA, Triad nodes are organized in clusters").
//
// Sweeps the cluster size and reports availability, TA load per
// node-hour, and peer-untaint success rate: more peers means a tainted
// node almost always finds a fresh timestamp nearby, so the TA is
// contacted only on (rarer) fully-correlated interruptions.
#include <cstdio>

#include "bench_common.h"
#include "exp/scenario.h"

int main() {
  using namespace triad;
  bench::print_header(
      "Cluster-size sweep — why Triad clusters TEEs",
      "30 min, Triad-like AEXs everywhere, correlated machine interrupts");

  std::printf("%8s %14s %18s %20s %16s\n", "nodes", "availability",
              "ta_reqs/node/hour", "peer_untaint_rate", "events");
  for (std::size_t n : {1, 2, 3, 5, 7}) {
    exp::ScenarioConfig cfg;
    cfg.seed = 1234;
    cfg.node_count = n;
    exp::Scenario sc(std::move(cfg));
    sc.start();
    sc.run_until(minutes(30));

    double avail = 0;
    std::uint64_t rounds = 0, round_successes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& stats = sc.node(i).stats();
      avail += sc.node(i).availability() / static_cast<double>(n);
      rounds += stats.peer_rounds;
      round_successes += stats.peer_adoptions + stats.kept_local;
    }
    const double ta_per_node_hour =
        static_cast<double>(sc.time_authority().stats().requests_served) /
        static_cast<double>(n) * 2.0;  // 30 min -> per hour
    std::printf("%8zu %13.2f%% %18.1f %19.1f%% %16llu\n", n, avail * 100.0,
                ta_per_node_hour,
                rounds == 0 ? 0.0
                            : 100.0 * static_cast<double>(round_successes) /
                                  static_cast<double>(rounds),
                static_cast<unsigned long long>(
                    sc.simulation().events_executed()));
  }

  std::printf("\n");
  bench::print_summary_row("TA load vs cluster size",
                           "fewer TA requests with peers",
                           "drops sharply from n=1 to n>=2");
  bench::print_summary_row("availability vs cluster size",
                           "peers untaint faster than the TA",
                           "rises with n");
  return 0;
}
