// Cluster-size table (§III-B: "For shorter roundtrip delays and fewer
// requests to the TA, Triad nodes are organized in clusters").
//
// Sweeps the cluster size and reports availability, TA load per
// node-hour, and peer-untaint success rate: more peers means a tainted
// node almost always finds a fresh timestamp nearby, so the TA is
// contacted only on (rarer) fully-correlated interruptions.
//
// The grid runs through the campaign engine (one cell per cluster
// size, parallel workers) instead of a hand-rolled loop; the printed
// numbers come from the deterministic per-run results.
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "campaign/runner.h"

int main() {
  using namespace triad;
  bench::print_header(
      "Cluster-size sweep — why Triad clusters TEEs",
      "30 min, Triad-like AEXs everywhere, correlated machine interrupts; "
      "grid executed by the campaign engine");

  campaign::CampaignSpec spec;
  spec.seeds = {1234};
  spec.node_counts = {1, 2, 3, 5, 7};
  spec.duration = minutes(30);

  campaign::RunnerOptions options;
  options.jobs = std::max(1u, std::thread::hardware_concurrency());
  campaign::CampaignRunner runner(options);
  const campaign::CampaignResult result = runner.run(spec);

  std::printf("%8s %14s %18s %20s %16s\n", "nodes", "availability",
              "ta_reqs/node/hour", "peer_untaint_rate", "events");
  // One seed per cell, so runs are the cells, already in grid
  // (cluster-size) order.
  for (const campaign::RunResult& run : result.runs) {
    const auto n = spec.node_counts[run.cell];
    const double ta_per_node_hour =
        run.ta_requests / static_cast<double>(n) * 2.0;  // 30 min -> hour
    std::printf("%8zu %13.2f%% %18.1f %19.1f%% %16.0f\n", n,
                run.availability * 100.0, ta_per_node_hour,
                run.peer_untaint_rate * 100.0, run.events_executed);
  }

  std::printf("\n");
  bench::print_summary_row("TA load vs cluster size",
                           "fewer TA requests with peers",
                           "drops sharply from n=1 to n>=2");
  bench::print_summary_row("availability vs cluster size",
                           "peers untaint faster than the TA",
                           "rises with n");
  return 0;
}
