// Figure 3 (§IV-A2): long-term fault-free behaviour in the low-AEX
// environment (Fig. 1b), 8 hours.
//   (a) clock drift — the node that underestimates F_TSC the most leads;
//       peer untainting produces 50-70 ms forward jumps at partial
//       machine interrupts (paper: t = 1705 s, 2623 s, 2688 s)
//   (b) node-state timing diagram for the first hour: a single FullCalib
//       at the start, then OK with brief Tainted/RefCalib episodes.
// Paper: F1=2899.363, F2=2900.260, F3=2900.510 MHz; Node 1 drifts at
// ~210 ppm; availability rises to 99.9 %.
#include <cstdio>

#include "bench_common.h"
#include "exp/recorder.h"
#include "exp/scenario.h"

int main() {
  using namespace triad;
  bench::print_header(
      "Figure 3 — fault-free behaviour, low-AEX environment (8 h)",
      "only residual machine-wide interrupts (~5.4 min apart) hit the "
      "monitoring cores");

  exp::ScenarioConfig cfg;
  cfg.seed = 3;
  cfg.environments = {exp::AexEnvironment::kLowAex,
                      exp::AexEnvironment::kLowAex,
                      exp::AexEnvironment::kLowAex};
  exp::Scenario sc(std::move(cfg));
  exp::Recorder rec(sc);
  sc.start();
  sc.run_until(hours(8));

  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("\n--- Figure 3a: node %zu clock drift (ms) ---\n", i + 1);
    bench::print_series(rec.drift_ms(i), 90);
  }

  std::printf("\n--- Figure 3b: state timing diagram, first hour ---\n");
  std::printf("# time_s,node,state  (0=FullCalib 1=RefCalib 2=OK 3=Tainted)\n");
  for (const auto& ev : rec.state_changes()) {
    if (ev.at > hours(1)) break;
    std::printf("%.3f,%zu,%s\n", to_seconds(ev.at), ev.node + 1,
                to_string(ev.to));
  }

  std::printf("\n--- peer-untainting forward time jumps ---\n");
  std::printf("# time_s,node,source,step_ms\n");
  int jumps_50_70 = 0;
  for (const auto& ev : rec.adoptions()) {
    if (ev.source == sc.ta_address()) continue;  // only peer adoptions
    std::printf("%.1f,%zu,%u,%.1f\n", to_seconds(ev.at), ev.node + 1,
                ev.source, to_milliseconds(ev.step()));
    if (ev.step() > milliseconds(20) && ev.step() < milliseconds(120)) {
      ++jumps_50_70;
    }
  }

  std::printf("\n");
  char buf[160];
  for (std::size_t i = 0; i < 3; ++i) {
    std::snprintf(buf, sizeof buf, "%.3f MHz",
                  sc.node(i).calibrated_frequency_hz() / 1e6);
    const char* paper[] = {"2899.363 MHz", "2900.260 MHz", "2900.510 MHz"};
    bench::print_summary_row("F_calib node " + std::to_string(i + 1),
                             paper[i], buf);
  }
  std::snprintf(buf, sizeof buf, "%d jumps of 20-120 ms", jumps_50_70);
  bench::print_summary_row("peer-untaint time jumps (paper: 50-70 ms)",
                           "jumps at partial AEXs", buf);
  for (std::size_t i = 0; i < 3; ++i) {
    std::snprintf(buf, sizeof buf, "%.3f %%",
                  sc.node(i).availability() * 100.0);
    bench::print_summary_row(
        "availability node " + std::to_string(i + 1) + " over 8 h",
        "99.9 %", buf);
  }
  std::snprintf(buf, sizeof buf, "%llu / %llu / %llu",
                static_cast<unsigned long long>(
                    sc.node(0).stats().full_calibrations),
                static_cast<unsigned long long>(
                    sc.node(1).stats().full_calibrations),
                static_cast<unsigned long long>(
                    sc.node(2).stats().full_calibrations));
  bench::print_summary_row("full calibrations per node over 8 h",
                           "1 (single FullCalib)", buf);
  return 0;
}
