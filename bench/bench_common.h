// Shared output helpers for the figure-reproduction binaries.
//
// Each bench prints: (1) a header naming the paper artefact, (2) the
// plot-ready series (downsampled CSV), and (3) a PAPER-vs-MEASURED
// summary block — the rows EXPERIMENTS.md records.
#pragma once

#include <cstdio>
#include <string>

#include "stats/timeseries.h"
#include "util/types.h"

namespace triad::bench {

inline void print_header(const std::string& artefact,
                         const std::string& description) {
  std::printf("=============================================================\n");
  std::printf("%s\n", artefact.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("=============================================================\n");
}

/// Prints a (time, value) series downsampled to at most max_rows rows.
inline void print_series(const stats::TimeSeries& series,
                         std::size_t max_rows = 120) {
  const auto& samples = series.samples();
  if (samples.empty()) {
    std::printf("# %s: (empty)\n", series.name().c_str());
    return;
  }
  std::printf("# time_s,%s\n", series.name().c_str());
  const std::size_t stride =
      samples.size() <= max_rows ? 1 : samples.size() / max_rows;
  for (std::size_t i = 0; i < samples.size(); i += stride) {
    std::printf("%.3f,%.4f\n", to_seconds(samples[i].time),
                samples[i].value);
  }
  // Always include the final point.
  if ((samples.size() - 1) % stride != 0) {
    std::printf("%.3f,%.4f\n", to_seconds(samples.back().time),
                samples.back().value);
  }
}

inline void print_summary_row(const std::string& metric,
                              const std::string& paper,
                              const std::string& measured) {
  std::printf("SUMMARY | %-44s | paper: %-22s | measured: %s\n",
              metric.c_str(), paper.c_str(), measured.c_str());
}

}  // namespace triad::bench
