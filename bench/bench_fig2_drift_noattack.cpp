// Figure 2 (§IV-A2): long-term fault-free behaviour under the Triad-like
// AEX distribution (Fig. 1a) — 30 minutes, three nodes.
//   (a) clock drift per node over time (sawtooth: ppm-level rates reset
//       whenever correlated AEXs force a TA reference calibration)
//   (b) cumulative number of time references received from the TA
// Paper: F1=2900.089, F2=2900.113, F3=2899.653 MHz; effective drift
// ~110 ppm; availability > 98% including initial calibration.
#include <cstdio>

#include "bench_common.h"
#include "exp/recorder.h"
#include "exp/scenario.h"

int main() {
  using namespace triad;
  bench::print_header(
      "Figure 2 — fault-free drift & TA references (30 min, Triad-like AEXs)",
      "3 nodes + TA; correlated machine interrupts force periodic TA resets");

  exp::ScenarioConfig cfg;
  cfg.seed = 2;
  exp::Scenario sc(std::move(cfg));
  exp::Recorder rec(sc);
  sc.start();
  sc.run_until(minutes(30));

  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("\n--- Figure 2a: node %zu clock drift (ms) ---\n", i + 1);
    bench::print_series(rec.drift_ms(i), 90);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("\n--- Figure 2b: node %zu cumulative TA references ---\n",
                i + 1);
    bench::print_series(rec.ta_references(i), 40);
  }

  std::printf("\n");
  char buf[128];
  for (std::size_t i = 0; i < 3; ++i) {
    std::snprintf(buf, sizeof buf, "%.3f MHz",
                  sc.node(i).calibrated_frequency_hz() / 1e6);
    const char* paper[] = {"2900.089 MHz", "2900.113 MHz", "2899.653 MHz"};
    bench::print_summary_row(
        "F_calib node " + std::to_string(i + 1) + " (~±100s of ppm of F_TSC)",
        paper[i], buf);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    const double extreme =
        std::max(std::abs(rec.drift_ms(i).max_value()),
                 std::abs(rec.drift_ms(i).min_value()));
    // Drift accrues between TA resets (~5.4 min): ppm rate = extreme/324s.
    std::snprintf(buf, sizeof buf, "%.0f ppm (peak %.1f ms / ~324 s)",
                  extreme / 324.0 * 1000.0, extreme);
    bench::print_summary_row(
        "effective drift rate node " + std::to_string(i + 1),
        "~110 ppm", buf);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    std::snprintf(buf, sizeof buf, "%.2f %% (ta_refs=%llu, fullcalib=%llu)",
                  sc.node(i).availability() * 100.0,
                  static_cast<unsigned long long>(
                      sc.node(i).stats().ta_time_references),
                  static_cast<unsigned long long>(
                      sc.node(i).stats().full_calibrations));
    bench::print_summary_row(
        "availability node " + std::to_string(i + 1) +
            " (incl. initial calibration)",
        "> 98 %", buf);
  }
  return 0;
}
