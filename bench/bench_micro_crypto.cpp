// Micro-benchmarks (google-benchmark): the crypto substrate that seals
// every Triad protocol message.
#include <benchmark/benchmark.h>

#include "crypto/aes.h"
#include "crypto/channel.h"
#include "crypto/gcm.h"
#include "crypto/handshake.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "util/rng.h"

namespace {

using namespace triad;
using namespace triad::crypto;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

void BM_Aes256Block(benchmark::State& state) {
  Aes256 aes(random_bytes(32, 1));
  AesBlock block{};
  for (auto _ : state) {
    aes.encrypt_block(block.data(), block.data());
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes256Block);

void BM_Sha256(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto digest = sha256(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = random_bytes(32, 3);
  const Bytes data = random_bytes(256, 4);
  for (auto _ : state) {
    auto mac = hmac_sha256(key, data);
    benchmark::DoNotOptimize(mac);
  }
}
BENCHMARK(BM_HmacSha256);

void BM_HkdfDeriveChannelKey(benchmark::State& state) {
  const ClusterKeyring keyring(random_bytes(32, 5));
  NodeId peer = 1;
  for (auto _ : state) {
    auto key = keyring.direction_key(1, ++peer);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_HkdfDeriveChannelKey);

void BM_GcmSeal(benchmark::State& state) {
  Aes256Gcm gcm(random_bytes(32, 6));
  const Bytes plaintext =
      random_bytes(static_cast<std::size_t>(state.range(0)), 7);
  const Bytes aad = random_bytes(16, 8);
  GcmIv iv{};
  std::uint64_t counter = 0;
  for (auto _ : state) {
    iv[0] = static_cast<std::uint8_t>(++counter);
    auto sealed = gcm.seal(iv, plaintext, aad);
    benchmark::DoNotOptimize(sealed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GcmSeal)->Arg(32)->Arg(256)->Arg(1024)->Arg(8192);

void BM_GcmOpen(benchmark::State& state) {
  Aes256Gcm gcm(random_bytes(32, 9));
  const Bytes plaintext =
      random_bytes(static_cast<std::size_t>(state.range(0)), 10);
  const GcmIv iv{1, 2, 3};
  const auto sealed = gcm.seal(iv, plaintext, {});
  for (auto _ : state) {
    auto opened = gcm.open(iv, sealed.ciphertext, {}, sealed.tag);
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GcmOpen)->Arg(32)->Arg(1024);

void BM_X25519SharedSecret(benchmark::State& state) {
  Rng rng(13);
  X25519Key a{}, pub_b{};
  for (auto& byte : a) byte = static_cast<std::uint8_t>(rng.next_u64());
  X25519Key b{};
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next_u64());
  pub_b = x25519_public_key(b);
  for (auto _ : state) {
    X25519Key shared{};
    benchmark::DoNotOptimize(x25519_shared_secret(a, pub_b, &shared));
    benchmark::DoNotOptimize(shared);
  }
}
BENCHMARK(BM_X25519SharedSecret);

void BM_AttestedHandshake(benchmark::State& state) {
  const AttestationAuthority authority(random_bytes(32, 14));
  const Measurement measurement = sha256(random_bytes(64, 15));
  const HandshakeParty alice(authority, 1, measurement, 16);
  std::uint64_t seed = 100;
  for (auto _ : state) {
    const HandshakeParty bob(authority, 2, measurement, ++seed);
    auto result = alice.accept(bob.offer(), measurement);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AttestedHandshake);

void BM_SecureChannelRoundTrip(benchmark::State& state) {
  const ClusterKeyring keyring(random_bytes(32, 11));
  SecureChannel alice(1, keyring);
  SecureChannel bob(2, keyring);
  const Bytes message = random_bytes(64, 12);  // typical protocol message
  for (auto _ : state) {
    auto opened = bob.open(alice.seal(2, message));
    benchmark::DoNotOptimize(opened);
  }
}
BENCHMARK(BM_SecureChannelRoundTrip);

}  // namespace

BENCHMARK_MAIN();
