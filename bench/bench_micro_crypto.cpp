// Micro-benchmarks (bench::Harness): the crypto substrate that seals
// every Triad protocol message. Emits BENCH JSON via --json for the
// bench_diff perf gate (ROADMAP "Crypto off the critical path").
#include "crypto/aes.h"
#include "crypto/channel.h"
#include "crypto/gcm.h"
#include "crypto/handshake.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "harness.h"
#include "util/rng.h"

namespace {

using namespace triad;
using namespace triad::crypto;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

void bm_aes256_block(bench::State& state) {
  Aes256 aes(random_bytes(32, 1));
  AesBlock block{};
  for (auto _ : state) {
    aes.encrypt_block(block.data(), block.data());
    bench::do_not_optimize(block);
  }
  state.set_bytes_processed(state.iterations() * 16);
}

void bm_sha256(bench::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto digest = sha256(data);
    bench::do_not_optimize(digest);
  }
  state.set_bytes_processed(state.iterations() * state.range(0));
}

void bm_hmac_sha256(bench::State& state) {
  const Bytes key = random_bytes(32, 3);
  const Bytes data = random_bytes(256, 4);
  for (auto _ : state) {
    auto mac = hmac_sha256(key, data);
    bench::do_not_optimize(mac);
  }
}

void bm_hkdf_derive_channel_key(bench::State& state) {
  const ClusterKeyring keyring(random_bytes(32, 5));
  NodeId peer = 1;
  for (auto _ : state) {
    auto key = keyring.direction_key(1, ++peer);
    bench::do_not_optimize(key);
  }
}

void bm_gcm_seal(bench::State& state) {
  Aes256Gcm gcm(random_bytes(32, 6));
  const Bytes plaintext =
      random_bytes(static_cast<std::size_t>(state.range(0)), 7);
  const Bytes aad = random_bytes(16, 8);
  GcmIv iv{};
  std::uint64_t counter = 0;
  for (auto _ : state) {
    iv[0] = static_cast<std::uint8_t>(++counter);
    auto sealed = gcm.seal(iv, plaintext, aad);
    bench::do_not_optimize(sealed);
  }
  state.set_bytes_processed(state.iterations() * state.range(0));
}

void bm_gcm_open(bench::State& state) {
  Aes256Gcm gcm(random_bytes(32, 9));
  const Bytes plaintext =
      random_bytes(static_cast<std::size_t>(state.range(0)), 10);
  const GcmIv iv{1, 2, 3};
  const auto sealed = gcm.seal(iv, plaintext, {});
  for (auto _ : state) {
    auto opened = gcm.open(iv, sealed.ciphertext, {}, sealed.tag);
    bench::do_not_optimize(opened);
  }
  state.set_bytes_processed(state.iterations() * state.range(0));
}

void bm_x25519_shared_secret(bench::State& state) {
  Rng rng(13);
  X25519Key a{}, pub_b{};
  for (auto& byte : a) byte = static_cast<std::uint8_t>(rng.next_u64());
  X25519Key b{};
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next_u64());
  pub_b = x25519_public_key(b);
  for (auto _ : state) {
    X25519Key shared{};
    bench::do_not_optimize(x25519_shared_secret(a, pub_b, &shared));
    bench::do_not_optimize(shared);
  }
}

void bm_attested_handshake(bench::State& state) {
  const AttestationAuthority authority(random_bytes(32, 14));
  const Measurement measurement = sha256(random_bytes(64, 15));
  const HandshakeParty alice(authority, 1, measurement, 16);
  std::uint64_t seed = 100;
  for (auto _ : state) {
    const HandshakeParty bob(authority, 2, measurement, ++seed);
    auto result = alice.accept(bob.offer(), measurement);
    bench::do_not_optimize(result);
  }
}

void bm_secure_channel_round_trip(bench::State& state) {
  const ClusterKeyring keyring(random_bytes(32, 11));
  SecureChannel alice(1, keyring);
  SecureChannel bob(2, keyring);
  const Bytes message = random_bytes(64, 12);  // typical protocol message
  for (auto _ : state) {
    auto opened = bob.open(alice.seal(2, message));
    bench::do_not_optimize(opened);
  }
}

}  // namespace

int main(int argc, char** argv) {
  triad::bench::Harness h("micro_crypto");
  h.add("BM_Aes256Block", bm_aes256_block);
  h.add("BM_Sha256", bm_sha256, {64, 1024, 16384});
  h.add("BM_HmacSha256", bm_hmac_sha256);
  h.add("BM_HkdfDeriveChannelKey", bm_hkdf_derive_channel_key);
  h.add("BM_GcmSeal", bm_gcm_seal, {32, 256, 1024, 8192});
  h.add("BM_GcmOpen", bm_gcm_open, {32, 1024});
  h.add("BM_X25519SharedSecret", bm_x25519_shared_secret);
  h.add("BM_AttestedHandshake", bm_attested_handshake);
  h.add("BM_SecureChannelRoundTrip", bm_secure_channel_round_trip);
  return h.run(argc, argv);
}
