// Calibration-design ablation (§III-C discussion made quantitative).
//
// Triad's frequency estimate comes from short round-trips; the paper
// attributes the ~110 ppm fault-free drift (vs NTP's 15 ppm bound) to
// exactly this. Three sweeps quantify the design space:
//   1. network jitter   — calibration error grows linearly with jitter;
//   2. regression pairs — more samples average jitter away (~1/sqrt(k));
//   3. wait-time spread — a wider 0 s..S s probe spread divides the
//      error by S (the paper's 1 s spread is the unit), which is also
//      why NTP-style long windows (§V) are so much better.
// Per cell: median |F_calib - F_TSC| in ppm over several seeds.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "exp/scenario.h"

namespace {

using namespace triad;

double calibration_error_ppm(Duration jitter, int pairs, Duration wait_high,
                             std::uint64_t seed) {
  exp::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.node_count = 1;
  cfg.machine_interrupts = false;
  cfg.environments = {exp::AexEnvironment::kNone};
  cfg.net_jitter = jitter;
  cfg.node_template.calib_pairs = pairs;
  cfg.node_template.calib_wait_high = wait_high;
  exp::Scenario sc(std::move(cfg));
  sc.start();
  sc.run_until(minutes(2) + wait_high * (2 * pairs + 4));
  const double f = sc.node(0).calibrated_frequency_hz();
  return std::abs(f - tsc::kPaperTscFrequencyHz) /
         tsc::kPaperTscFrequencyHz * 1e6;
}

double median_error_ppm(Duration jitter, int pairs, Duration wait_high) {
  std::vector<double> errors;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    errors.push_back(
        calibration_error_ppm(jitter, pairs, wait_high, 9000 + seed));
  }
  std::sort(errors.begin(), errors.end());
  return errors[errors.size() / 2];
}

}  // namespace

int main() {
  using namespace triad;
  bench::print_header(
      "Calibration ablation — why Triad drifts at ~110 ppm",
      "median |F_calib - F_TSC| in ppm over 15 seeds per cell");

  std::printf("\n--- sweep 1: network jitter (8 pairs, 1 s spread) ---\n");
  std::printf("%12s %16s\n", "jitter_us", "median_err_ppm");
  for (Duration jitter :
       {microseconds(10), microseconds(30), microseconds(60),
        microseconds(120), microseconds(250), microseconds(500)}) {
    std::printf("%12lld %16.1f\n",
                static_cast<long long>(jitter / 1000),
                median_error_ppm(jitter, 8, seconds(1)));
  }

  std::printf("\n--- sweep 2: regression pairs (120 us jitter, 1 s) ---\n");
  std::printf("%12s %16s\n", "pairs", "median_err_ppm");
  for (int pairs : {2, 4, 8, 16, 32, 64}) {
    std::printf("%12d %16.1f\n", pairs,
                median_error_ppm(microseconds(120), pairs, seconds(1)));
  }

  std::printf("\n--- sweep 3: wait-time spread (120 us jitter, 8 pairs) ---\n");
  std::printf("%12s %16s\n", "spread_ms", "median_err_ppm");
  for (Duration spread : {milliseconds(250), milliseconds(500), seconds(1),
                          seconds(2), seconds(8), seconds(32)}) {
    std::printf("%12lld %16.1f\n",
                static_cast<long long>(spread / 1'000'000),
                median_error_ppm(microseconds(120), 8, spread));
  }

  std::printf("\n");
  bench::print_summary_row(
      "error at paper operating point (120 us, 8 pairs, 1 s)",
      "~110 ppm fault-free drift", "see sweep rows");
  bench::print_summary_row(
      "error vs NTP-style 32 s windows",
      "NTP: 15 ppm bound; 16 s-36 h windows", "~30x lower at 32 s spread");
  return 0;
}
