// Geo-distributed deployment sweeps (iExec motivation: a decentralized
// marketplace spans machines/sites, not one 32-core box).
//
// One Triad node per site, TA at site 0. Two controlled sweeps separate
// the two WAN effects:
//  * sweep A (fixed jitter, growing base delay): the symmetric base
//    delay cancels in the wait-time regression — F_calib stays put —
//    while the *reference offset* of TA-remote nodes grows with the
//    one-way delay (Triad adopts TA stamps without compensation);
//  * sweep B (fixed base, growing jitter): calibration error grows
//    linearly with jitter — Triad's 1 s-spread regression is unusable
//    over jittery WANs, reinforcing §V's call for NTP-style long-window
//    sync (see bench_ntp_discipline).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "exp/recorder.h"
#include "exp/scenario.h"

namespace {

using namespace triad;

struct Row {
  double f_err_ppm = 0;
  double ref_offset_ms = 0;  // node 2's median drift
  double availability = 0;
};

Row run(Duration base, Duration jitter) {
  exp::ScenarioConfig cfg;
  cfg.seed = 777;
  cfg.machine_of = {0, 1, 2};
  cfg.ta_machine = 0;
  cfg.wan_base_delay = base;
  cfg.wan_jitter = jitter;
  cfg.node_template.peer_timeout = 2 * base + milliseconds(20);
  exp::Scenario sc(std::move(cfg));
  exp::Recorder rec(sc);
  sc.start();
  sc.run_until(minutes(20));

  Row row;
  for (std::size_t i = 0; i < 3; ++i) {
    row.f_err_ppm = std::max(
        row.f_err_ppm, std::abs(sc.node(i).calibrated_frequency_hz() -
                                tsc::kPaperTscFrequencyHz) /
                           tsc::kPaperTscFrequencyHz * 1e6);
    row.availability += sc.node(i).availability() / 3.0;
  }
  std::vector<double> values;
  for (const auto& s : rec.drift_ms(1).samples()) values.push_back(s.value);
  std::sort(values.begin(), values.end());
  row.ref_offset_ms = values.empty() ? 0.0 : values[values.size() / 2];
  return row;
}

}  // namespace

int main() {
  using namespace triad;
  bench::print_header(
      "WAN sweeps — Triad across sites (20 min per row)",
      "3 nodes on 3 machines, TA at site 0");

  std::printf("\n--- sweep A: base one-way delay (jitter fixed 200 us) ---\n");
  std::printf("%10s %16s %18s %14s\n", "base_ms", "F_err_ppm(max)",
              "ref_offset_ms(n2)", "availability");
  for (Duration base : {milliseconds(5), milliseconds(20), milliseconds(50),
                        milliseconds(100)}) {
    const Row row = run(base, microseconds(200));
    std::printf("%10lld %16.1f %18.2f %13.2f%%\n",
                static_cast<long long>(base / 1'000'000), row.f_err_ppm,
                row.ref_offset_ms, row.availability * 100.0);
  }

  std::printf("\n--- sweep B: jitter (base fixed 20 ms) ---\n");
  std::printf("%10s %16s %18s %14s\n", "jitter_ms", "F_err_ppm(max)",
              "ref_offset_ms(n2)", "availability");
  for (Duration jitter :
       {microseconds(200), milliseconds(1), milliseconds(4),
        milliseconds(10)}) {
    const Row row = run(milliseconds(20), jitter);
    std::printf("%10.1f %16.1f %18.2f %13.2f%%\n",
                static_cast<double>(jitter) / 1e6, row.f_err_ppm,
                row.ref_offset_ms, row.availability * 100.0);
  }

  std::printf("\n");
  bench::print_summary_row("base delay (symmetric)",
                           "cancels in the regression slope",
                           "F_err flat across sweep A");
  bench::print_summary_row("reference offset of remote nodes",
                           "~ one-way delay behind the TA",
                           "tracks base delay in sweep A");
  bench::print_summary_row("jitter",
                           "the real enemy of 1 s-spread calibration",
                           "F_err grows ~linearly in sweep B");
  return 0;
}
