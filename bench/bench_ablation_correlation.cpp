// Interrupt-correlation ablation (§IV-A2's explanation of Fig. 2 vs 3).
//
// The paper attributes the bounded sawtooth of Fig. 2a to the residual
// machine-wide interrupts hitting ALL monitoring cores at once: only a
// fully-simultaneous taint forces the cluster back to the TA. "Without
// those correlated simultaneous AEXs [...] the node which underestimates
// the TSC frequency the most [leads] all other nodes to drift positively
// [...] arbitrarily long."
//
// Sweep: probability that a machine interrupt hits every core (vs
// sparing one). Expectation: TA resets and the drift ceiling fall as
// correlation drops; at 0 the cluster almost never consults the TA and
// rides its fastest clock unchecked.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "exp/recorder.h"
#include "exp/scenario.h"

int main() {
  using namespace triad;
  bench::print_header(
      "Correlation ablation — why the Fig. 2 sawtooth exists (60 min/row)",
      "machine-interrupt full-hit probability swept; Triad-like AEXs");

  std::printf("%12s %10s %14s %16s %16s\n", "full_hit_p", "ta_refs",
              "peer_jumps", "max|drift| (ms)", "drift@end (ms)");
  for (double p : {1.0, 0.8, 0.5, 0.2, 0.0}) {
    exp::ScenarioConfig cfg;
    cfg.seed = 99;
    cfg.machine_full_hit_probability = p;
    exp::Scenario sc(std::move(cfg));
    exp::Recorder rec(sc);
    sc.start();
    sc.run_until(minutes(60));

    std::uint64_t ta_refs = 0, jumps = 0;
    double max_drift = 0, end_drift = 0;
    for (std::size_t i = 0; i < 3; ++i) {
      ta_refs += sc.node(i).stats().ta_time_references;
      max_drift = std::max({max_drift,
                            std::abs(rec.drift_ms(i).max_value()),
                            std::abs(rec.drift_ms(i).min_value())});
      end_drift = std::max(end_drift,
                           std::abs(rec.drift_ms(i).value_at(minutes(60))));
    }
    for (const auto& adoption : rec.adoptions()) {
      if (adoption.source != sc.ta_address()) ++jumps;
    }
    std::printf("%12.1f %10llu %14llu %16.1f %16.1f\n", p,
                static_cast<unsigned long long>(ta_refs),
                static_cast<unsigned long long>(jumps), max_drift,
                end_drift);
  }

  std::printf("\n");
  bench::print_summary_row(
      "high correlation (paper's machine)",
      "frequent TA resets bound drift (Fig. 2 sawtooth)",
      "many ta_refs, small max drift");
  bench::print_summary_row(
      "no correlation",
      "cluster follows its fastest clock \"arbitrarily long\"",
      "few ta_refs, drift grows unchecked");
  return 0;
}
