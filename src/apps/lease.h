// Trusted leases on top of any trusted-time source (paper intro:
// "time-constrained resource allocation (e.g., resource leasing)",
// T-Lease-style).
//
// The manager is time-source-agnostic: it takes a callable returning the
// current trusted timestamp (or nullopt while the source is unavailable)
// so it runs on a TriadNode, a TrustedTimeClient, a T3eNode, or a test
// double alike. When the source is unavailable the manager refuses to
// grant or judge — guessing about time is how double-allocations happen.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/types.h"

namespace triad::apps {

struct Lease {
  std::uint64_t id = 0;
  std::string resource;
  SimTime granted_at = 0;
  SimTime expires_at = 0;
};

struct LeaseStats {
  std::uint64_t granted = 0;
  std::uint64_t denied_unavailable = 0;  // time source had no answer
  std::uint64_t denied_held = 0;         // resource currently leased
  std::uint64_t renewals = 0;
  std::uint64_t releases = 0;
};

class LeaseManager {
 public:
  using TimeSource = std::function<std::optional<SimTime>()>;

  LeaseManager(TimeSource time_source, Duration default_term);

  /// Grants a lease on `resource` if it is free (or its current lease
  /// has expired). nullopt when denied — stats say why.
  std::optional<Lease> grant(const std::string& resource);
  std::optional<Lease> grant(const std::string& resource, Duration term);

  /// Extends a held lease by its original term; fails for unknown ids,
  /// expired leases, or an unavailable time source.
  std::optional<Lease> renew(std::uint64_t lease_id);

  /// Releases early. False for unknown ids.
  bool release(std::uint64_t lease_id);

  /// Whether the lease is still valid *now*. nullopt when the time
  /// source cannot answer.
  [[nodiscard]] std::optional<bool> valid(std::uint64_t lease_id);

  [[nodiscard]] const LeaseStats& stats() const { return stats_; }

 private:
  TimeSource time_source_;
  Duration default_term_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Lease> active_;        // by lease id
  std::unordered_map<std::string, std::uint64_t> holder_;  // by resource
  LeaseStats stats_;
};

}  // namespace triad::apps
