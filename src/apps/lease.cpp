#include "apps/lease.h"

#include <stdexcept>

namespace triad::apps {

LeaseManager::LeaseManager(TimeSource time_source, Duration default_term)
    : time_source_(std::move(time_source)), default_term_(default_term) {
  if (!time_source_) {
    throw std::invalid_argument("LeaseManager: null time source");
  }
  if (default_term <= 0) {
    throw std::invalid_argument("LeaseManager: term must be positive");
  }
}

std::optional<Lease> LeaseManager::grant(const std::string& resource) {
  return grant(resource, default_term_);
}

std::optional<Lease> LeaseManager::grant(const std::string& resource,
                                         Duration term) {
  if (term <= 0) throw std::invalid_argument("LeaseManager: bad term");
  const auto now = time_source_();
  if (!now) {
    ++stats_.denied_unavailable;
    return std::nullopt;
  }
  const auto held = holder_.find(resource);
  if (held != holder_.end()) {
    const Lease& current = active_.at(held->second);
    if (current.expires_at > *now) {
      ++stats_.denied_held;
      return std::nullopt;
    }
    active_.erase(held->second);  // expired: evict
    holder_.erase(held);
  }
  Lease lease{next_id_++, resource, *now, *now + term};
  active_[lease.id] = lease;
  holder_[resource] = lease.id;
  ++stats_.granted;
  return lease;
}

std::optional<Lease> LeaseManager::renew(std::uint64_t lease_id) {
  const auto it = active_.find(lease_id);
  if (it == active_.end()) return std::nullopt;
  const auto now = time_source_();
  if (!now) {
    ++stats_.denied_unavailable;
    return std::nullopt;
  }
  Lease& lease = it->second;
  if (lease.expires_at <= *now) return std::nullopt;  // already expired
  const Duration term = lease.expires_at - lease.granted_at;
  lease.granted_at = *now;
  lease.expires_at = *now + term;
  ++stats_.renewals;
  return lease;
}

bool LeaseManager::release(std::uint64_t lease_id) {
  const auto it = active_.find(lease_id);
  if (it == active_.end()) return false;
  holder_.erase(it->second.resource);
  active_.erase(it);
  ++stats_.releases;
  return true;
}

std::optional<bool> LeaseManager::valid(std::uint64_t lease_id) {
  const auto it = active_.find(lease_id);
  if (it == active_.end()) return false;
  const auto now = time_source_();
  if (!now) {
    ++stats_.denied_unavailable;
    return std::nullopt;
  }
  return it->second.expires_at > *now;
}

}  // namespace triad::apps
