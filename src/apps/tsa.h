// TimeStamping Authority (RFC 3161-style) bound to a trusted-time
// source — the paper's first motivating use-case.
//
// A token binds a document digest to a trusted timestamp under an HMAC
// key (an analogue of the TSA's signature). Issuance refuses rather than
// guesses while the time source is unavailable, and issued timestamps
// are strictly monotonic: a later token never carries an earlier time.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/types.h"

namespace triad::apps {

struct TimestampToken {
  crypto::Sha256Digest document_digest{};
  SimTime timestamp = 0;
  std::uint64_t serial = 0;
  crypto::Sha256Digest mac{};
};

struct TsaStats {
  std::uint64_t issued = 0;
  std::uint64_t refused_unavailable = 0;
  std::uint64_t verified_ok = 0;
  std::uint64_t verified_bad = 0;
};

class TimestampingAuthority {
 public:
  using TimeSource = std::function<std::optional<SimTime>()>;

  TimestampingAuthority(TimeSource time_source, Bytes mac_key);

  /// Issues a token over the document; nullopt while the time source is
  /// unavailable.
  std::optional<TimestampToken> issue(BytesView document);

  /// Verifies a token's MAC (binding of digest, timestamp, serial).
  [[nodiscard]] bool verify(const TimestampToken& token);

  [[nodiscard]] const TsaStats& stats() const { return stats_; }

 private:
  [[nodiscard]] crypto::Sha256Digest mac_over(
      const TimestampToken& token) const;

  TimeSource time_source_;
  Bytes mac_key_;
  SimTime last_issued_ = 0;
  std::uint64_t next_serial_ = 1;
  TsaStats stats_;
};

}  // namespace triad::apps
