#include "apps/tsa.h"

#include <algorithm>
#include <stdexcept>

namespace triad::apps {

TimestampingAuthority::TimestampingAuthority(TimeSource time_source,
                                             Bytes mac_key)
    : time_source_(std::move(time_source)), mac_key_(std::move(mac_key)) {
  if (!time_source_) {
    throw std::invalid_argument("TimestampingAuthority: null time source");
  }
  if (mac_key_.size() < 16) {
    throw std::invalid_argument("TimestampingAuthority: key too short");
  }
}

crypto::Sha256Digest TimestampingAuthority::mac_over(
    const TimestampToken& token) const {
  ByteWriter w;
  w.put_string("triad-tsa-token-v1");
  w.put_bytes(BytesView(token.document_digest.data(),
                        token.document_digest.size()));
  w.put_i64(token.timestamp);
  w.put_u64(token.serial);
  return crypto::hmac_sha256(mac_key_, w.data());
}

std::optional<TimestampToken> TimestampingAuthority::issue(
    BytesView document) {
  const auto now = time_source_();
  if (!now) {
    ++stats_.refused_unavailable;
    return std::nullopt;
  }
  TimestampToken token;
  token.document_digest = crypto::sha256(document);
  token.timestamp = std::max(*now, last_issued_ + 1);  // strict monotonic
  last_issued_ = token.timestamp;
  token.serial = next_serial_++;
  token.mac = mac_over(token);
  ++stats_.issued;
  return token;
}

bool TimestampingAuthority::verify(const TimestampToken& token) {
  const crypto::Sha256Digest expected = mac_over(token);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    diff |= static_cast<std::uint8_t>(expected[i] ^ token.mac[i]);
  }
  if (diff == 0) {
    ++stats_.verified_ok;
    return true;
  }
  ++stats_.verified_bad;
  return false;
}

}  // namespace triad::apps
