#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace triad {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// FNV-1a over a string, for fork labels.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork(std::string_view label) {
  // Mix the label into fresh state drawn from this stream.
  std::uint64_t sm = next_u64() ^ fnv1a(label);
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1;
  do {
    u1 = next_double();
  } while (u1 == 0.0);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::size_t Rng::pick_weighted(const double* weights, std::size_t n) {
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] < 0) {
      throw std::invalid_argument("Rng::pick_weighted: negative weight");
    }
    total += weights[i];
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::pick_weighted: no positive weight");
  }
  double target = next_double() * total;
  for (std::size_t i = 0; i < n; ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return n - 1;  // numerical edge: fall to last bucket
}

}  // namespace triad
