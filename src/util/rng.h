// Deterministic random number generation.
//
// Every scenario owns a single root Rng; components derive child streams
// with fork(label) so adding a new consumer never perturbs the draws seen
// by existing ones. The generator is xoshiro256**, seeded via splitmix64.
//
// Thread-ownership rule (campaign engine): Rng holds no global state,
// but an *instance* is mutable and not synchronized — each campaign run
// owns its root Rng (inside its private Scenario) and never shares it
// or its forks across workers. Audited for parallel sweeps: there are
// no statics here, so concurrent runs with distinct instances are safe.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace triad {

/// splitmix64 step — used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic PRNG (xoshiro256**) with convenience distributions.
///
/// Not cryptographically secure: this drives *simulation* randomness
/// (network jitter, AEX schedules). Key material uses crypto::... instead.
class Rng {
 public:
  /// Seeds the generator from a 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream. The label is hashed into the
  /// seed so distinct consumers get decorrelated streams.
  Rng fork(std::string_view label);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Requires bound > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed (Box–Muller, cached spare value).
  double normal(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t pick_weighted(const double* weights, std::size_t n);

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace triad
