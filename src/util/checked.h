// Checked narrowing conversions, in the spirit of gsl::narrow.
#pragma once

#include <stdexcept>
#include <type_traits>

namespace triad {

/// Converts between arithmetic types, throwing std::range_error when the
/// value does not survive the round trip (C++ Core Guidelines ES.46).
template <typename To, typename From>
constexpr To narrow(From v) {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>);
  const To result = static_cast<To>(v);
  if (static_cast<From>(result) != v ||
      (std::is_signed_v<From> != std::is_signed_v<To> &&
       ((v < From{}) != (result < To{})))) {
    throw std::range_error("narrowing conversion lost information");
  }
  return result;
}

}  // namespace triad
