#include "util/log.h"

#include <cstdio>
#include <mutex>

namespace triad {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(std::string_view component, LogLevel level) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  for (auto& [name, lvl] : component_levels_) {
    if (name == component) {
      lvl = level;
      return;
    }
  }
  component_levels_.emplace_back(std::string(component), level);
  has_overrides_.store(true, std::memory_order_release);
}

void Logger::clear_component_levels() {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  component_levels_.clear();
  has_overrides_.store(false, std::memory_order_release);
}

LogLevel Logger::effective_level(std::string_view component) const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  const std::pair<std::string, LogLevel>* best = nullptr;
  for (const auto& entry : component_levels_) {
    const std::string& prefix = entry.first;
    // A match is the component itself or a dot-separated ancestor:
    // "triad.node" governs "triad.node.calib" but not "triad.nodex".
    const bool matches =
        component.size() >= prefix.size() &&
        component.substr(0, prefix.size()) == prefix &&
        (component.size() == prefix.size() ||
         component[prefix.size()] == '.');
    if (matches && (best == nullptr || prefix.size() > best->first.size())) {
      best = &entry;
    }
  }
  return best != nullptr ? best->second : level();
}

void Logger::set_time_source(std::function<SimTime()> source) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  time_source_ = std::move(source);
}

void Logger::clear_time_source() {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  time_source_ = nullptr;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view msg) {
  if (!enabled(level, component)) return;
  // Copy the hook out so the (possibly slow) call and fprintf run
  // without holding the lock; fprintf itself is atomic per call.
  std::function<SimTime()> time_source;
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    time_source = time_source_;
  }
  if (time_source) {
    std::fprintf(stderr, "[%12.6fs] %s %.*s: %.*s\n",
                 to_seconds(time_source()), level_name(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(msg.size()), msg.data());
  } else {
    std::fprintf(stderr, "[   real    ] %s %.*s: %.*s\n", level_name(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(msg.size()), msg.data());
  }
}

}  // namespace triad
