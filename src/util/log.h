// Minimal leveled logger.
//
// The simulator tags lines with virtual time when a clock hook is
// installed. Logging defaults to Warn so tests and benches stay quiet;
// examples turn on Info to narrate protocol behaviour.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "util/types.h"

namespace triad {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Installs a callback that reports current virtual time for log tags.
  void set_time_source(std::function<SimTime()> source);
  void clear_time_source();

  void write(LogLevel level, std::string_view component, std::string_view msg);

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
  std::function<SimTime()> time_source_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().write(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace triad

#define TRIAD_LOG(level, component)                         \
  if (!::triad::Logger::instance().enabled(level)) {        \
  } else                                                    \
    ::triad::detail::LogLine(level, component)

#define TRIAD_LOG_DEBUG(component) TRIAD_LOG(::triad::LogLevel::Debug, component)
#define TRIAD_LOG_INFO(component) TRIAD_LOG(::triad::LogLevel::Info, component)
#define TRIAD_LOG_WARN(component) TRIAD_LOG(::triad::LogLevel::Warn, component)
#define TRIAD_LOG_ERROR(component) TRIAD_LOG(::triad::LogLevel::Error, component)
