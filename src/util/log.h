// Minimal leveled logger.
//
// The simulator tags lines with virtual time when a clock hook is
// installed — the same timestamp the protocol trace (obs::TraceEvent.at)
// carries, so log lines and trace events line up. Logging defaults to
// Warn so tests and benches stay quiet; examples turn on Info to narrate
// protocol behaviour.
//
// Components are dotted paths ("triad.node", "triad.net"). A level can
// be overridden per component subtree: set_level("triad.node", Debug)
// applies to "triad.node" and "triad.node.calib" but not "triad.net";
// the longest matching dot-prefix wins, the global level is the
// fallback.
//
// The Logger is the one process-wide singleton, and campaign workers
// log concurrently: level reads/writes are thread-safe (atomics + a
// shared_mutex over the component map and time source). The time
// source is still process-global — parallel scenario runs must not
// install per-run ScopedLogTime hooks (see DESIGN.md §2.3).
#pragma once

#include <atomic>
#include <functional>
#include <shared_mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.h"

namespace triad {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }

  /// Overrides the level for one component subtree (longest-dot-prefix
  /// match). Setting the same component again replaces the override.
  void set_level(std::string_view component, LogLevel level);
  void clear_component_levels();

  /// The level governing `component` after prefix overrides.
  [[nodiscard]] LogLevel effective_level(std::string_view component) const;

  /// Installs a callback that reports current virtual time for log tags.
  void set_time_source(std::function<SimTime()> source);
  void clear_time_source();

  void write(LogLevel level, std::string_view component, std::string_view msg);

  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= this->level();
  }
  [[nodiscard]] bool enabled(LogLevel level, std::string_view component) const {
    // Fast path: no overrides installed (the common case on the sim hot
    // path) — skip the shared lock entirely.
    if (!has_overrides_.load(std::memory_order_acquire)) {
      return enabled(level);
    }
    return level >= effective_level(component);
  }

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::Warn};
  std::atomic<bool> has_overrides_{false};
  // Guards component_levels_ and time_source_ (hot-path readers vs the
  // occasional set_level / set_time_source writer).
  mutable std::shared_mutex mutex_;
  std::vector<std::pair<std::string, LogLevel>> component_levels_;
  std::function<SimTime()> time_source_;
};

/// RAII virtual-time tagging: installs a time source on construction and
/// clears it on destruction, so a scenario run can scope log timestamps
/// to its simulation clock.
class ScopedLogTime {
 public:
  explicit ScopedLogTime(std::function<SimTime()> source) {
    Logger::instance().set_time_source(std::move(source));
  }
  ~ScopedLogTime() { Logger::instance().clear_time_source(); }
  ScopedLogTime(const ScopedLogTime&) = delete;
  ScopedLogTime& operator=(const ScopedLogTime&) = delete;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().write(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

/// Swallows the LogLine chain so both arms of the TRIAD_LOG ternary have
/// type void. operator& binds looser than operator<<, so the whole
/// stream expression evaluates first.
struct Voidify {
  void operator&(const LogLine&) const {}
};

}  // namespace detail
}  // namespace triad

// Expands to a single expression (ternary), so the macro nests safely in
// unbraced if/else — an `if {} else` expansion would capture the caller's
// `else` (dangling-else). The stream arguments are only evaluated when
// the level is enabled for the component.
#define TRIAD_LOG(level, component)                            \
  (!::triad::Logger::instance().enabled(level, component))     \
      ? (void)0                                                \
      : ::triad::detail::Voidify() &                           \
            ::triad::detail::LogLine(level, component)

#define TRIAD_LOG_DEBUG(component) TRIAD_LOG(::triad::LogLevel::Debug, component)
#define TRIAD_LOG_INFO(component) TRIAD_LOG(::triad::LogLevel::Info, component)
#define TRIAD_LOG_WARN(component) TRIAD_LOG(::triad::LogLevel::Warn, component)
#define TRIAD_LOG_ERROR(component) TRIAD_LOG(::triad::LogLevel::Error, component)
