#include "util/bytes.h"

#include <bit>
#include <cstring>

namespace triad {

void ByteWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::put_u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::put_i64(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}

void ByteWriter::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::put_bytes(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::put_var_bytes(BytesView data) {
  put_u32(static_cast<std::uint32_t>(data.size()));
  put_bytes(data);
}

void ByteWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw DecodeError("truncated input: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  require(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::get_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::get_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int64_t ByteReader::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}

double ByteReader::get_f64() { return std::bit_cast<double>(get_u64()); }

Bytes ByteReader::get_bytes(std::size_t n) {
  require(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::get_var_bytes() {
  const std::uint32_t n = get_u32();
  return get_bytes(n);
}

std::string ByteReader::get_string() {
  const std::uint32_t n = get_u32();
  require(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

void ByteReader::expect_end() const {
  if (!empty()) {
    throw DecodeError("trailing bytes after message: " +
                      std::to_string(remaining()));
  }
}

}  // namespace triad
