// Hex encode/decode, mainly for test vectors and diagnostics.
#pragma once

#include <string>
#include <string_view>

#include "util/bytes.h"

namespace triad {

/// Lower-case hex encoding.
std::string to_hex(BytesView data);

/// Decodes a hex string (case-insensitive). Throws DecodeError on odd
/// length or non-hex characters.
Bytes from_hex(std::string_view hex);

}  // namespace triad
