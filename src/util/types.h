// Core scalar types shared by every module.
//
// All simulated time is an integer count of nanoseconds (SimTime). Using a
// single integral representation keeps event ordering exact and the whole
// simulation reproducible; floating point only appears at the edges
// (statistics, figure output).
#pragma once

#include <cstdint>
#include <limits>

namespace triad {

/// Virtual (reference) time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Duration in nanoseconds.
using Duration = std::int64_t;

/// TimeStamp Counter value (ticks). 64-bit like the hardware register.
using TscValue = std::uint64_t;

/// Identifies a node (Triad node, Time Authority, client...) in a scenario.
using NodeId = std::uint32_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

inline constexpr Duration nanoseconds(std::int64_t v) { return v; }
inline constexpr Duration microseconds(std::int64_t v) { return v * 1'000; }
inline constexpr Duration milliseconds(std::int64_t v) { return v * 1'000'000; }
inline constexpr Duration seconds(std::int64_t v) { return v * 1'000'000'000; }
inline constexpr Duration minutes(std::int64_t v) { return v * 60'000'000'000; }
inline constexpr Duration hours(std::int64_t v) { return v * 3'600'000'000'000; }

/// Seconds as a double, for statistics and figure output.
inline constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / 1e9;
}
inline constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d) / 1e6;
}

/// Converts a (possibly fractional) second count to nanoseconds, rounding
/// to nearest. Used where protocol parameters are given in seconds.
inline constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

}  // namespace triad
