// Bounds-checked binary serialization used for every wire message.
//
// Encoding is little-endian, fixed width. Readers never trust lengths:
// every get_* checks remaining bytes and throws DecodeError on truncation,
// which callers at trust boundaries (network input) catch and treat as a
// malformed datagram.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace triad {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Thrown by ByteReader when input is truncated or malformed.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends fixed-width little-endian values to a growing buffer.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_f64(double v);
  void put_bytes(BytesView data);
  /// Length-prefixed (u32) byte string.
  void put_var_bytes(BytesView data);
  /// Length-prefixed (u32) UTF-8 string.
  void put_string(std::string_view s);

  [[nodiscard]] const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consumes values from a byte span; throws DecodeError on underflow.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  double get_f64();
  Bytes get_bytes(std::size_t n);
  Bytes get_var_bytes();
  std::string get_string();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }
  /// Throws DecodeError unless the whole input was consumed.
  void expect_end() const;

 private:
  void require(std::size_t n) const;
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace triad
