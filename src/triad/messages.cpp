#include "triad/messages.h"

namespace triad::proto {
namespace {

enum class Tag : std::uint8_t {
  kTaRequest = 1,
  kTaResponse = 2,
  kPeerTimeRequest = 3,
  kPeerTimeResponse = 4,
};

}  // namespace

Bytes encode(const Message& message) {
  ByteWriter w;
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, TaRequest>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kTaRequest));
          w.put_u64(m.request_id);
          w.put_i64(m.wait);
          w.put_u32(m.span);
        } else if constexpr (std::is_same_v<T, TaResponse>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kTaResponse));
          w.put_u64(m.request_id);
          w.put_i64(m.ta_time);
          w.put_i64(m.requested_wait);
        } else if constexpr (std::is_same_v<T, PeerTimeRequest>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kPeerTimeRequest));
          w.put_u64(m.request_id);
          w.put_u32(m.span);
        } else if constexpr (std::is_same_v<T, PeerTimeResponse>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kPeerTimeResponse));
          w.put_u64(m.request_id);
          w.put_i64(m.timestamp);
          w.put_i64(m.error_bound);
          w.put_u8(m.tainted ? 1 : 0);
        }
      },
      message);
  return w.take();
}

std::optional<Message> decode(BytesView data) {
  try {
    ByteReader r(data);
    const auto tag = static_cast<Tag>(r.get_u8());
    switch (tag) {
      case Tag::kTaRequest: {
        TaRequest m;
        m.request_id = r.get_u64();
        m.wait = r.get_i64();
        m.span = r.get_u32();
        r.expect_end();
        if (m.wait < 0) return std::nullopt;
        return m;
      }
      case Tag::kTaResponse: {
        TaResponse m;
        m.request_id = r.get_u64();
        m.ta_time = r.get_i64();
        m.requested_wait = r.get_i64();
        r.expect_end();
        return m;
      }
      case Tag::kPeerTimeRequest: {
        PeerTimeRequest m;
        m.request_id = r.get_u64();
        m.span = r.get_u32();
        r.expect_end();
        return m;
      }
      case Tag::kPeerTimeResponse: {
        PeerTimeResponse m;
        m.request_id = r.get_u64();
        m.timestamp = r.get_i64();
        m.error_bound = r.get_i64();
        const std::uint8_t tainted = r.get_u8();
        r.expect_end();
        if (tainted > 1 || m.error_bound < 0) return std::nullopt;
        m.tainted = tainted == 1;
        return m;
      }
    }
    return std::nullopt;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace triad::proto
