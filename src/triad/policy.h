// Peer-timestamp handling policies.
//
// The original Triad rule — adopt any peer timestamp ahead of the local
// clock, never step back — is what lets a single fast (F- attacked)
// clock drag the whole cluster forward. Section V of the paper proposes
// interval-consistency ("true-chimer") checking instead; both are
// implemented behind this interface so experiments can swap them
// (original in this module, hardened ones in src/resilient/).
#pragma once

#include <memory>
#include <vector>

#include "util/types.h"

namespace triad::obs {
class Registry;
}  // namespace triad::obs

namespace triad {

/// One peer answer collected during an untaint round.
struct PeerSample {
  NodeId peer = 0;
  SimTime timestamp = 0;      // peer clock value when it answered
  Duration error_bound = 0;   // peer's self-reported clock error estimate
  SimTime received_at = 0;    // local receive time (reference frame: sim)
};

class UntaintPolicy {
 public:
  /// kFirstResponse: act on the first usable peer answer (original Triad).
  /// kCollectAll: wait for all peers (or timeout), then decide once.
  enum class Mode { kFirstResponse, kCollectAll };

  struct Decision {
    enum class Action {
      kAdopt,            // set the clock to adopted_time
      kKeepLocal,        // keep extrapolating the local clock
      kAskTimeAuthority  // no trustworthy peer evidence: go to the TA
    };
    Action action = Action::kKeepLocal;
    SimTime adopted_time = 0;
    NodeId source = 0;  // peer whose evidence was adopted (0 = none)
  };

  virtual ~UntaintPolicy() = default;

  /// Called once by the owning node so the policy can register its own
  /// decision metrics (labelled node="<node>"). Default: no metrics.
  /// The registry outlives the node and thus the policy; policies using
  /// callback series must unregister in their destructor.
  virtual void bind_obs(obs::Registry* registry, NodeId node) {
    (void)registry;
    (void)node;
  }

  [[nodiscard]] virtual Mode mode() const = 0;

  /// local_now: the node's extrapolated clock at decision time.
  /// local_error: the node's own error-bound estimate.
  [[nodiscard]] virtual Decision decide(
      SimTime local_now, Duration local_error,
      const std::vector<PeerSample>& samples) = 0;
};

/// The original Triad policy: first untainted response wins; if it is
/// ahead of the local clock, adopt it, otherwise keep the local clock
/// (bumped by the smallest increment — monotonic serving handles that).
class OriginalUntaintPolicy final : public UntaintPolicy {
 public:
  [[nodiscard]] Mode mode() const override { return Mode::kFirstResponse; }
  [[nodiscard]] Decision decide(
      SimTime local_now, Duration local_error,
      const std::vector<PeerSample>& samples) override;
};

std::unique_ptr<UntaintPolicy> make_original_policy();

}  // namespace triad
