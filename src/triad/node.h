// Triad node: the trusted-time state machine running inside one enclave.
//
// State machine (paper §III-B, Fig. 3b legend):
//   FullCalib --> Ok : TSC frequency regression + time reference acquired
//   Ok --> Tainted   : AEX severed time continuity
//   Tainted --> Ok   : peer untainting (original: first untainted peer,
//                      max policy) or TA reference calibration
//   * --> FullCalib  : INC monitor detected a TSC rate/offset discrepancy
//   Tainted --> RefCalib --> Ok : all peers tainted, fetch TA reference
//
// Time is served as ref_time + (tsc - ref_tsc) / F_calib, monotonicized.
// F_calib comes from a linear regression of TSC increments against the
// requested TA wait-times (0 s / 1 s) — the attackable step.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/channel.h"
#include "enclave/enclave_thread.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/env.h"
#include "stats/regression.h"
#include "triad/messages.h"
#include "triad/policy.h"
#include "tsc/core.h"
#include "tsc/inc_monitor.h"
#include "tsc/tsc.h"
#include "util/types.h"

namespace triad {

enum class NodeState : std::uint8_t {
  kFullCalib = 0,  // measuring TSC frequency + reference with the TA
  kRefCalib = 1,   // refreshing only the time reference with the TA
  kOk = 2,         // serving timestamps
  kTainted = 3,    // AEX happened; timestamp not trustworthy
};

[[nodiscard]] const char* to_string(NodeState state);

struct TriadConfig {
  NodeId id = 0;
  NodeId ta_address = 0;
  std::vector<NodeId> peers;

  // --- frequency calibration (the F+/F- attack surface) --------------
  /// Number of (low, high) wait round-trip pairs in the regression.
  int calib_pairs = 8;
  Duration calib_wait_low = 0;
  Duration calib_wait_high = seconds(1);
  /// Give up on a TA round-trip after this long and resend.
  Duration ta_timeout = seconds(3);

  // --- untainting ------------------------------------------------------
  /// How long to wait for peer answers before falling back to the TA.
  Duration peer_timeout = milliseconds(5);

  // --- INC-based TSC monitoring ---------------------------------------
  TscValue inc_window_ticks = tsc::kPaperWindowTicks;
  int inc_calib_runs = 64;
  double inc_tolerance_sigmas = 6.0;

  // --- clock error estimation (used by hardened policies) -------------
  /// Assumed worst-case own drift when estimating the error bound.
  double drift_bound_ppm = 500.0;
  /// Base error right after an external sync (≈ network delay bound).
  Duration base_sync_error = milliseconds(1);

  // --- Triad+ (Section V) extensions; defaults = original protocol ----
  /// In-TCB refresh deadline (0 = disabled). When enabled the node
  /// proactively re-checks its clock this often even with no AEX.
  Duration refresh_deadline = 0;
  /// NTP-style long-window frequency refinement: re-estimate F_calib
  /// from TA timestamps spanning at least long_window_min. Because both
  /// endpoints suffer (approximately) the same attacker delay, the
  /// estimate cancels the F+/F- bias that short-window regression cannot.
  bool long_window_calibration = false;
  Duration long_window_min = seconds(60);
  /// Maximum relative change (ppm) a single long-window refinement may
  /// apply; 0 (default) disables the guard. Trade-off: a ramping-delay
  /// attacker (attacks/ramp_attack.h) needs large per-window revisions,
  /// so a tight bound caps that attack's transient — but a large
  /// *honest* revision (repairing an F-/F+ poisoned initial regression)
  /// is locally indistinguishable and gets rate-limited too. Pick per
  /// threat model; the ablation bench quantifies both sides.
  double long_window_max_revision_ppm = 0.0;
};

struct NodeStats {
  std::uint64_t aex_count = 0;
  std::uint64_t full_calibrations = 0;
  std::uint64_t ta_time_references = 0;  // reference adoptions from the TA
  std::uint64_t calib_samples_rejected = 0;  // AEX hit mid-measurement
  std::uint64_t peer_rounds = 0;
  std::uint64_t peer_adoptions = 0;  // forward time jumps onto a peer clock
  std::uint64_t kept_local = 0;
  std::uint64_t ta_fallbacks = 0;  // peer round failed -> TA
  std::uint64_t proactive_checks = 0;  // Triad+ deadline firings
  std::uint64_t inc_check_failures = 0;
  std::uint64_t timestamps_served = 0;
  std::uint64_t serve_unavailable = 0;
  std::uint64_t bad_frames = 0;  // auth/decode failures on input
};

/// Observer hooks for experiment instrumentation (all optional).
struct NodeHooks {
  std::function<void(NodeState from, NodeState to)> on_state_change;
  /// Fired when the node steps its clock onto external evidence.
  /// `source` is the peer id, or the TA address for TA adoptions.
  std::function<void(SimTime local_before, SimTime adopted, NodeId source)>
      on_adoption;
};

class TriadNode {
 public:
  struct HardwareParams {
    double tsc_frequency_hz = tsc::kPaperTscFrequencyHz;
    TscValue tsc_initial = 0;
    tsc::CoreParams core;
  };

  TriadNode(runtime::Env env, const crypto::Keyring& keyring,
            TriadConfig config, HardwareParams hardware,
            std::unique_ptr<UntaintPolicy> policy = nullptr);
  ~TriadNode();
  TriadNode(const TriadNode&) = delete;
  TriadNode& operator=(const TriadNode&) = delete;

  /// Calibrates the INC monitor and starts the initial full calibration.
  void start();

  // --- public time API -------------------------------------------------

  /// Serves a monotonic trusted timestamp, or nullopt while the node is
  /// tainted or calibrating (unavailable).
  [[nodiscard]] std::optional<SimTime> serve_timestamp();

  /// The node's extrapolated clock (also defined while tainted; used for
  /// drift measurements and policy decisions).
  [[nodiscard]] SimTime current_time() const;

  /// Self-estimated clock error bound (grows with time since last sync).
  [[nodiscard]] Duration current_error_bound() const;

  /// TrueTime-style bounded timestamp (Spanner's TT.now(), cited in the
  /// paper's intro): the true reference time lies within
  /// [earliest, latest] as long as the node's real drift stays inside
  /// config().drift_bound_ppm. Monotonic in both endpoints across calls
  /// while the node stays available; nullopt while unavailable.
  struct TimeInterval {
    SimTime earliest = 0;
    SimTime latest = 0;
  };
  [[nodiscard]] std::optional<TimeInterval> now_interval();

  [[nodiscard]] NodeState state() const { return state_; }
  [[nodiscard]] bool available() const { return state_ == NodeState::kOk; }

  /// Calibrated TSC frequency estimate (ticks per reference second);
  /// 0 before the first full calibration finishes.
  [[nodiscard]] double calibrated_frequency_hz() const { return f_calib_hz_; }

  // --- environment access (scenario wiring, attacks, instrumentation) --
  [[nodiscard]] enclave::EnclaveThread& monitoring_thread() {
    return thread_;
  }
  [[nodiscard]] tsc::Tsc& tsc() { return tsc_; }
  [[nodiscard]] tsc::Core& core() { return core_; }
  [[nodiscard]] const TriadConfig& config() const { return config_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  void set_hooks(NodeHooks hooks) { hooks_ = std::move(hooks); }

  /// Cumulative time spent in each state (indexed by NodeState).
  [[nodiscard]] std::array<Duration, 4> state_durations() const;

  /// Fraction of elapsed time the node was available (Ok state).
  [[nodiscard]] double availability() const;

 private:
  // --- observability ---------------------------------------------------
  /// Exports NodeStats + state/frequency/availability gauges as
  /// triad_node_* series labelled node="<id>" (callback series, zero
  /// hot-path cost) and resolves the direct adoption counter/histogram.
  /// No-op when the Env carries no registry.
  void register_metrics();

  // --- state management ------------------------------------------------
  void set_state(NodeState next);

  // --- causal spans ----------------------------------------------------
  /// Opens a new causal span: every trace event and outgoing request
  /// until the next call is tagged with it. Called at episode starts —
  /// an AEX hitting an Ok node, a proactive peer round, and each full
  /// calibration (see obs/span.h for the episode taxonomy).
  obs::SpanId begin_span();

  // --- clock -----------------------------------------------------------
  void sync_clock_to(SimTime new_time, Duration new_error, NodeId source);

  // --- AEX handling ----------------------------------------------------
  void on_aex();

  // --- TA round-trips --------------------------------------------------
  void begin_full_calibration();
  void send_calibration_request();
  void begin_ref_calibration();
  void send_ta_request(Duration wait);
  void on_ta_response(const proto::TaResponse& response);
  void on_ta_timeout(std::uint64_t request_id);
  void maybe_refine_frequency(SimTime ta_time);

  // --- peer untainting ---------------------------------------------------
  void begin_peer_round(bool proactive);
  void finish_peer_round();
  void on_peer_response(NodeId peer, const proto::PeerTimeResponse& response);
  void answer_peer_request(NodeId peer, const proto::PeerTimeRequest& request);

  // --- networking --------------------------------------------------------
  void on_packet(const runtime::Packet& packet);
  void send_message(NodeId to, const proto::Message& message);

  runtime::Env env_;
  TriadConfig config_;
  crypto::SecureChannel channel_;
  enclave::EnclaveThread thread_;
  tsc::Tsc tsc_;
  tsc::Core core_;
  tsc::IncMonitor monitor_;
  std::unique_ptr<UntaintPolicy> policy_;
  NodeHooks hooks_;

  NodeState state_ = NodeState::kFullCalib;
  SimTime state_since_ = 0;
  std::array<Duration, 4> state_time_{};
  SimTime started_at_ = 0;
  bool started_ = false;

  // Clock: time = ref_time_ + (tsc - ref_tsc_) / f_calib_hz_.
  double f_calib_hz_ = 0.0;
  SimTime ref_time_ = 0;
  TscValue ref_tsc_ = 0;
  SimTime last_served_ = 0;
  SimTime last_sync_ = 0;
  Duration error_at_sync_ = 0;
  TimeInterval last_interval_{};

  // INC monitoring calibration.
  tsc::IncCalibration inc_calibration_{};

  // Long-window frequency refinement anchor (Triad+): last TA sync.
  bool have_ta_anchor_ = false;
  SimTime anchor_ta_time_ = 0;
  TscValue anchor_tsc_ = 0;

  // Frequency calibration round-trips.
  stats::LinearRegression calib_regression_;
  int calib_samples_low_ = 0;
  int calib_samples_high_ = 0;

  // Outstanding TA request (one at a time).
  struct OutstandingTa {
    std::uint64_t request_id = 0;
    Duration wait = 0;
    SimTime sent_at = 0;
    TscValue sent_tsc = 0;
    bool for_full_calibration = false;
    runtime::TimerId timeout{};
  };
  std::optional<OutstandingTa> outstanding_ta_;

  // Peer untainting round.
  struct PeerRound {
    std::uint64_t request_id = 0;
    bool proactive = false;
    std::vector<PeerSample> samples;
    std::size_t answers = 0;  // including tainted answers
    runtime::TimerId timeout{};
  };
  std::optional<PeerRound> peer_round_;

  // Triad+ in-TCB deadline timer.
  std::unique_ptr<runtime::PeriodicTimer> deadline_timer_;

  std::uint64_t next_request_id_ = 1;
  std::uint32_t span_seq_ = 0;       // per-node span sequence (obs/span.h)
  obs::SpanId current_span_ = 0;     // tags events until the next episode
  NodeStats stats_;
  obs::Counter adoptions_counter_;       // triad_node_adoptions_total
  obs::Histogram adoption_step_ms_;      // triad_node_adoption_step_ms
};

}  // namespace triad
