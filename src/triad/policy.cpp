#include "triad/policy.h"

namespace triad {

UntaintPolicy::Decision OriginalUntaintPolicy::decide(
    SimTime local_now, Duration /*local_error*/,
    const std::vector<PeerSample>& samples) {
  Decision decision;
  if (samples.empty()) {
    decision.action = Decision::Action::kAskTimeAuthority;
    return decision;
  }
  // kFirstResponse mode delivers exactly one sample here.
  const PeerSample& sample = samples.front();
  if (sample.timestamp > local_now) {
    decision.action = Decision::Action::kAdopt;
    decision.adopted_time = sample.timestamp;
    decision.source = sample.peer;
  } else {
    decision.action = Decision::Action::kKeepLocal;
  }
  return decision;
}

std::unique_ptr<UntaintPolicy> make_original_policy() {
  return std::make_unique<OriginalUntaintPolicy>();
}

}  // namespace triad
