// Triad wire messages.
//
// Four message types cover the whole protocol: calibration/reference
// round-trips with the Time Authority and peer time exchange inside the
// cluster. Messages travel as AES-256-GCM-sealed payloads (see
// crypto::SecureChannel); the encodings here are the plaintexts.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>

#include "obs/trace.h"
#include "util/bytes.h"
#include "util/types.h"

namespace triad::proto {

/// Asks the TA to wait `wait` before answering — the knob Triad's
/// frequency calibration sweeps (0 s and 1 s in the reference
/// implementation).
struct TaRequest {
  std::uint64_t request_id = 0;
  Duration wait = 0;
  /// Requester's causal span (obs/span.h); rides inside the sealed
  /// payload so the TA's kTaServe trace event lands in the same span as
  /// the node-side kTaRequest/kTaResponse pair. 0 when untraced.
  obs::SpanId span = 0;

  friend bool operator==(const TaRequest&, const TaRequest&) = default;
};

/// TA's reply, stamped with its reference clock at send time. The
/// requested wait is echoed so the node can bucket the sample without
/// extra bookkeeping (it is inside the sealed payload, invisible to the
/// network attacker — who must *infer* it from timing, the basis of the
/// F+/F- attacks).
struct TaResponse {
  std::uint64_t request_id = 0;
  SimTime ta_time = 0;
  Duration requested_wait = 0;

  friend bool operator==(const TaResponse&, const TaResponse&) = default;
};

/// Sent to every peer when a node resumes from an AEX with a tainted
/// timestamp.
struct PeerTimeRequest {
  std::uint64_t request_id = 0;
  /// Requester's causal span (see TaRequest::span).
  obs::SpanId span = 0;

  friend bool operator==(const PeerTimeRequest&,
                         const PeerTimeRequest&) = default;
};

/// Peer's answer. A tainted peer answers with tainted=true (and a
/// meaningless timestamp) so the requester can distinguish "no useful
/// peer" from packet loss. error_bound carries the peer's self-reported
/// clock error estimate — always 0 under the original protocol, used by
/// the Section-V true-chimer policy (Triad+).
struct PeerTimeResponse {
  std::uint64_t request_id = 0;
  SimTime timestamp = 0;
  Duration error_bound = 0;
  bool tainted = false;

  friend bool operator==(const PeerTimeResponse&,
                         const PeerTimeResponse&) = default;
};

using Message =
    std::variant<TaRequest, TaResponse, PeerTimeRequest, PeerTimeResponse>;

/// Serializes a message (1-byte type tag + fixed-width fields).
Bytes encode(const Message& message);

/// Parses a message; nullopt on malformed input (never throws on
/// attacker-controlled bytes).
std::optional<Message> decode(BytesView data);

}  // namespace triad::proto
