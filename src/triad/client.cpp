#include "triad/client.h"

#include <algorithm>
#include <stdexcept>

#include "util/log.h"

namespace triad {

TrustedTimeClient::TrustedTimeClient(runtime::Env env,
                                     const crypto::Keyring& keyring,
                                     ClientConfig config)
    : env_(env), config_(std::move(config)),
      channel_(config_.id, keyring) {
  if (config_.cluster.empty()) {
    throw std::invalid_argument("TrustedTimeClient: empty cluster");
  }
  if (config_.node_timeout <= 0) {
    throw std::invalid_argument("TrustedTimeClient: bad timeout");
  }
  if (config_.max_attempts == 0 ||
      config_.max_attempts > config_.cluster.size()) {
    config_.max_attempts = config_.cluster.size();
  }
  env_.transport().attach(
      config_.id, [this](const runtime::Packet& packet) { on_packet(packet); });
}

TrustedTimeClient::~TrustedTimeClient() {
  for (auto& pending : pending_) env_.cancel(pending.timeout);
  env_.transport().detach(config_.id);
}

void TrustedTimeClient::request_timestamp(Callback callback) {
  if (!callback) {
    throw std::invalid_argument("TrustedTimeClient: null callback");
  }
  ++stats_.requests;
  Pending pending;
  pending.request_id = next_request_id_++;
  pending.start_offset = rotation_++ % config_.cluster.size();
  pending.callback = std::move(callback);
  try_next(std::move(pending));
}

void TrustedTimeClient::try_next(Pending pending) {
  if (pending.attempt >= config_.max_attempts) {
    finish(pending, std::nullopt);
    return;
  }
  const NodeId target =
      config_.cluster[(pending.start_offset + pending.attempt) %
                      config_.cluster.size()];
  ++pending.attempt;

  proto::PeerTimeRequest request;
  request.request_id = pending.request_id;
  env_.transport().send(config_.id, target,
                        channel_.seal(target, proto::encode(request)));

  const std::uint64_t id = pending.request_id;
  pending.timeout = env_.schedule_after(config_.node_timeout, [this, id] {
    const auto it = std::find_if(
        pending_.begin(), pending_.end(),
        [id](const Pending& p) { return p.request_id == id; });
    if (it == pending_.end()) return;
    ++stats_.timeouts;
    Pending next = std::move(*it);
    pending_.erase(it);
    try_next(std::move(next));  // rotate to the next node
  });
  pending_.push_back(std::move(pending));
}

void TrustedTimeClient::finish(Pending& pending,
                               std::optional<TrustedTimestamp> result) {
  if (result) {
    ++stats_.successes;
  } else {
    ++stats_.failures;
  }
  // Move the callback out: it may re-enter request_timestamp().
  Callback callback = std::move(pending.callback);
  callback(result);
}

void TrustedTimeClient::on_packet(const runtime::Packet& packet) {
  const auto opened = channel_.open(packet.payload);
  if (!opened) {
    ++stats_.bad_frames;
    return;
  }
  const auto message = proto::decode(opened->plaintext);
  if (!message ||
      !std::holds_alternative<proto::PeerTimeResponse>(*message)) {
    ++stats_.bad_frames;
    return;
  }
  const auto& response = std::get<proto::PeerTimeResponse>(*message);

  const auto it = std::find_if(pending_.begin(), pending_.end(),
                               [&](const Pending& p) {
                                 return p.request_id == response.request_id;
                               });
  if (it == pending_.end()) return;  // stale answer after timeout rotation

  if (response.tainted) {
    ++stats_.tainted_answers;
    env_.cancel(it->timeout);
    Pending next = std::move(*it);
    pending_.erase(it);
    try_next(std::move(next));
    return;
  }

  env_.cancel(it->timeout);
  Pending done = std::move(*it);
  pending_.erase(it);
  finish(done, TrustedTimestamp{response.timestamp, response.error_bound,
                                opened->sender});
}

}  // namespace triad
