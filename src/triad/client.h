// Client-side access to a Triad cluster's trusted time.
//
// Applications are not always colocated with a Triad node: an iExec-style
// task may run on a different machine and fetch trusted timestamps over
// the (attacker-controlled) network. The client queries cluster nodes in
// rotation over the authenticated channel, skipping tainted nodes and
// timing out onto the next one — so a single unavailable or unreachable
// node does not stall the application.
//
// Wire format: the client reuses PeerTimeRequest/PeerTimeResponse; a
// node answers clients exactly as it answers peers (timestamp + tainted
// flag + self-reported error bound).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "crypto/channel.h"
#include "runtime/env.h"
#include "triad/messages.h"
#include "util/types.h"

namespace triad {

struct ClientConfig {
  NodeId id = 0;
  std::vector<NodeId> cluster;  // node addresses to query, in preference order
  /// Per-node timeout before trying the next node.
  Duration node_timeout = milliseconds(5);
  /// Maximum nodes tried per request (defaults to the whole cluster).
  std::size_t max_attempts = 0;
};

struct ClientStats {
  std::uint64_t requests = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;        // every node tainted/unreachable
  std::uint64_t tainted_answers = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t bad_frames = 0;
};

/// Result of one trusted-time request.
struct TrustedTimestamp {
  SimTime timestamp = 0;
  Duration error_bound = 0;  // the serving node's self-estimate
  NodeId served_by = 0;
};

class TrustedTimeClient {
 public:
  using Callback = std::function<void(std::optional<TrustedTimestamp>)>;

  TrustedTimeClient(runtime::Env env, const crypto::Keyring& keyring,
                    ClientConfig config);
  ~TrustedTimeClient();
  TrustedTimeClient(const TrustedTimeClient&) = delete;
  TrustedTimeClient& operator=(const TrustedTimeClient&) = delete;

  /// Requests a trusted timestamp; the callback fires exactly once, with
  /// nullopt if every attempted node was tainted or unreachable.
  /// Multiple requests may be in flight concurrently.
  void request_timestamp(Callback callback);

  [[nodiscard]] const ClientStats& stats() const { return stats_; }

 private:
  struct Pending {
    std::uint64_t request_id = 0;
    std::size_t attempt = 0;       // index into the rotation for this req
    std::size_t start_offset = 0;  // round-robin start position
    Callback callback;
    runtime::TimerId timeout{};
  };

  void try_next(Pending pending);
  void on_packet(const runtime::Packet& packet);
  void finish(Pending& pending, std::optional<TrustedTimestamp> result);

  runtime::Env env_;
  ClientConfig config_;
  crypto::SecureChannel channel_;
  std::deque<Pending> pending_;
  std::uint64_t next_request_id_ = 1;
  std::size_t rotation_ = 0;  // round-robin over cluster nodes
  ClientStats stats_;
};

}  // namespace triad
