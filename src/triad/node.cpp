#include "triad/node.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/log.h"

namespace triad {

const char* to_string(NodeState state) {
  switch (state) {
    case NodeState::kFullCalib: return "FullCalib";
    case NodeState::kRefCalib: return "RefCalib";
    case NodeState::kOk: return "OK";
    case NodeState::kTainted: return "Tainted";
  }
  return "?";
}

TriadNode::TriadNode(runtime::Env env, const crypto::Keyring& keyring,
                     TriadConfig config, HardwareParams hardware,
                     std::unique_ptr<UntaintPolicy> policy)
    : env_(env), config_(std::move(config)),
      channel_(config_.id, keyring), thread_(env_.clock()),
      tsc_(env_.clock(), hardware.tsc_frequency_hz, hardware.tsc_initial),
      core_(hardware.core,
            env_.fork_rng("core-" + std::to_string(config_.id))),
      monitor_(tsc_, core_),
      policy_(policy ? std::move(policy) : make_original_policy()) {
  if (config_.calib_pairs < 1) {
    throw std::invalid_argument("TriadConfig: calib_pairs must be >= 1");
  }
  if (config_.calib_wait_low >= config_.calib_wait_high) {
    throw std::invalid_argument(
        "TriadConfig: calib_wait_low must be < calib_wait_high");
  }
  if (config_.peer_timeout <= 0 || config_.ta_timeout <= 0) {
    throw std::invalid_argument("TriadConfig: timeouts must be positive");
  }
  env_.transport().attach(
      config_.id, [this](const runtime::Packet& packet) { on_packet(packet); });
  thread_.set_aex_handler([this] { on_aex(); });
  register_metrics();
  policy_->bind_obs(env_.metrics(), config_.id);
}

TriadNode::~TriadNode() {
  // Cancel every pending event that captures `this`.
  if (outstanding_ta_) env_.cancel(outstanding_ta_->timeout);
  if (peer_round_) env_.cancel(peer_round_->timeout);
  deadline_timer_.reset();
  env_.transport().detach(config_.id);
  if (env_.metrics() != nullptr) env_.metrics()->unregister(this);
}

void TriadNode::register_metrics() {
  obs::Registry* registry = env_.metrics();
  if (registry == nullptr) return;
  const obs::Labels labels{{"node", std::to_string(config_.id)}};
  const auto count = [&](const std::uint64_t NodeStats::* field,
                         const char* name, const char* help) {
    registry->set_help(name, help);
    registry->counter_fn(this, name, labels, [this, field] {
      return static_cast<double>(stats_.*field);
    });
  };
  count(&NodeStats::aex_count, "triad_node_aex_total",
        "Asynchronous enclave exits observed");
  count(&NodeStats::full_calibrations, "triad_node_full_calibrations_total",
        "Full frequency calibrations started");
  count(&NodeStats::ta_time_references, "triad_node_ta_references_total",
        "Time references adopted from the TA");
  count(&NodeStats::calib_samples_rejected,
        "triad_node_calib_samples_rejected_total",
        "Calibration round-trips invalidated by an AEX");
  count(&NodeStats::peer_rounds, "triad_node_peer_rounds_total",
        "Peer untainting rounds started");
  count(&NodeStats::peer_adoptions, "triad_node_peer_adoptions_total",
        "Peer clocks adopted (forward jumps)");
  count(&NodeStats::kept_local, "triad_node_kept_local_total",
        "Untaint rounds resolved by keeping the local clock");
  count(&NodeStats::ta_fallbacks, "triad_node_ta_fallbacks_total",
        "Untaint rounds that fell back to the TA");
  count(&NodeStats::proactive_checks, "triad_node_proactive_checks_total",
        "Triad+ refresh-deadline firings");
  count(&NodeStats::inc_check_failures, "triad_node_inc_failures_total",
        "INC monitor checks that detected a TSC discrepancy");
  count(&NodeStats::timestamps_served, "triad_node_timestamps_served_total",
        "Trusted timestamps served");
  count(&NodeStats::serve_unavailable, "triad_node_serve_unavailable_total",
        "Timestamp requests refused while not Ok");
  count(&NodeStats::bad_frames, "triad_node_bad_frames_total",
        "Undecodable or unauthenticated inbound frames");
  registry->set_help("triad_node_state",
                     "Current state (0=FullCalib 1=RefCalib 2=Ok 3=Tainted)");
  registry->gauge_fn(this, "triad_node_state", labels, [this] {
    return static_cast<double>(state_);
  });
  registry->set_help("triad_node_f_calib_hz",
                     "Calibrated TSC frequency estimate");
  registry->gauge_fn(this, "triad_node_f_calib_hz", labels,
                     [this] { return f_calib_hz_; });
  registry->set_help("triad_node_availability",
                     "Fraction of elapsed time spent serving (Ok)");
  registry->gauge_fn(this, "triad_node_availability", labels,
                     [this] { return availability(); });
  registry->set_help("triad_node_adoptions_total",
                     "Clock steps onto external evidence (peer or TA)");
  adoptions_counter_ = registry->counter("triad_node_adoptions_total", labels);
  registry->set_help("triad_node_adoption_step_ms",
                     "Absolute clock step size per adoption");
  adoption_step_ms_ = registry->histogram(
      "triad_node_adoption_step_ms",
      {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0}, labels);
}

void TriadNode::start() {
  if (started_) throw std::logic_error("TriadNode::start called twice");
  started_ = true;
  started_at_ = env_.now();
  state_since_ = env_.now();
  last_sync_ = env_.now();

  // Calibrate the INC monitor over uninterrupted windows (the paper's
  // §IV-A1 measurement, run at enclave start).
  inc_calibration_ =
      monitor_.calibrate(config_.inc_window_ticks, config_.inc_calib_runs);
  monitor_.reset_continuity();

  if (config_.refresh_deadline > 0) {
    deadline_timer_ = std::make_unique<runtime::PeriodicTimer>(
        env_, config_.refresh_deadline, [this] {
          if (state_ == NodeState::kOk) {
            ++stats_.proactive_checks;
            begin_peer_round(/*proactive=*/true);
          }
        });
  }

  begin_full_calibration();
}

// ---------------------------------------------------------------------
// Clock

SimTime TriadNode::current_time() const {
  if (f_calib_hz_ <= 0.0) return ref_time_;
  const double ticks =
      static_cast<double>(tsc_.read()) - static_cast<double>(ref_tsc_);
  return ref_time_ + static_cast<SimTime>(ticks / f_calib_hz_ * 1e9);
}

Duration TriadNode::current_error_bound() const {
  const double elapsed_s = to_seconds(env_.now() - last_sync_);
  return error_at_sync_ +
         static_cast<Duration>(config_.drift_bound_ppm * 1e-6 * elapsed_s *
                               1e9);
}

void TriadNode::sync_clock_to(SimTime new_time, Duration new_error,
                              NodeId source) {
  const SimTime before = current_time();
  ref_time_ = new_time;
  ref_tsc_ = tsc_.read();
  last_sync_ = env_.now();
  error_at_sync_ = new_error;
  adoptions_counter_.inc();
  adoption_step_ms_.observe(std::abs(to_milliseconds(new_time - before)));
  if (env_.tracing()) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kAdoption;
    event.node = config_.id;
    event.peer = source;
    event.span = current_span_;
    event.a = before;
    event.b = new_time;
    env_.emit(event);
  }
  if (hooks_.on_adoption) hooks_.on_adoption(before, new_time, source);
  TRIAD_LOG_DEBUG("triad.node") << "node " << config_.id << " clock set to "
                          << to_seconds(new_time) << "s (source " << source
                          << ", step "
                          << to_milliseconds(new_time - before) << "ms)";
}

std::optional<TriadNode::TimeInterval> TriadNode::now_interval() {
  if (state_ != NodeState::kOk) {
    ++stats_.serve_unavailable;
    return std::nullopt;
  }
  const SimTime now = current_time();
  const Duration error = current_error_bound();
  TimeInterval interval{now - error, now + error};
  // Monotonicity of both endpoints across calls: intervals may only
  // move forward (callers use earliest/latest for ordering decisions).
  interval.earliest = std::max(interval.earliest, last_interval_.earliest);
  interval.latest = std::max(interval.latest, last_interval_.latest);
  last_interval_ = interval;
  ++stats_.timestamps_served;
  return interval;
}

std::optional<SimTime> TriadNode::serve_timestamp() {
  if (state_ != NodeState::kOk) {
    ++stats_.serve_unavailable;
    return std::nullopt;
  }
  const SimTime ts = std::max(current_time(), last_served_ + 1);
  last_served_ = ts;
  ++stats_.timestamps_served;
  return ts;
}

// ---------------------------------------------------------------------
// State accounting

obs::SpanId TriadNode::begin_span() {
  current_span_ = obs::make_span_id(config_.id, ++span_seq_);
  return current_span_;
}

void TriadNode::set_state(NodeState next) {
  if (next == state_) return;
  state_time_[static_cast<std::size_t>(state_)] += env_.now() - state_since_;
  const NodeState prev = state_;
  state_ = next;
  state_since_ = env_.now();
  if (env_.tracing()) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kStateChange;
    event.node = config_.id;
    event.span = current_span_;
    event.a = static_cast<std::int64_t>(prev);
    event.b = static_cast<std::int64_t>(next);
    env_.emit(event);
  }
  if (hooks_.on_state_change) hooks_.on_state_change(prev, next);
  TRIAD_LOG_DEBUG("triad.node") << "node " << config_.id << " " << to_string(prev)
                          << " -> " << to_string(next);
}

std::array<Duration, 4> TriadNode::state_durations() const {
  std::array<Duration, 4> result = state_time_;
  result[static_cast<std::size_t>(state_)] += env_.now() - state_since_;
  return result;
}

double TriadNode::availability() const {
  const Duration total = env_.now() - started_at_;
  if (total <= 0) return 0.0;
  const auto durations = state_durations();
  return to_seconds(durations[static_cast<std::size_t>(NodeState::kOk)]) /
         to_seconds(total);
}

// ---------------------------------------------------------------------
// AEX handling

void TriadNode::on_aex() {
  if (!started_) return;
  ++stats_.aex_count;
  // An AEX hitting an Ok node opens a fresh taint episode; everything it
  // causes (INC checks, the peer round, the adoption or TA fallback)
  // shares the span. AEXes during an ongoing episode join it.
  if (state_ == NodeState::kOk) begin_span();
  if (env_.tracing()) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kAex;
    event.node = config_.id;
    event.span = current_span_;
    event.a = static_cast<std::int64_t>(stats_.aex_count);
    env_.emit(event);
  }

  // The monitoring thread re-validates the TSC whenever continuity
  // breaks: the most recent window checks for an ongoing rate mismatch,
  // and the whole uninterrupted interval checks for offset jumps. Either
  // discrepancy forces a full recalibration.
  if (inc_calibration_.window_ticks != 0) {
    const bool window_ok =
        monitor_.check(inc_calibration_, config_.inc_tolerance_sigmas);
    const bool interval_ok =
        monitor_.check_continuity(inc_calibration_).consistent;
    monitor_.reset_continuity();
    if (!window_ok || !interval_ok) {
      ++stats_.inc_check_failures;
      if (env_.tracing()) {
        obs::TraceEvent event;
        event.type = obs::TraceEventType::kIncAlarm;
        event.node = config_.id;
        event.span = current_span_;
        event.a = window_ok ? 0 : 1;
        event.b = interval_ok ? 0 : 1;
        env_.emit(event);
      }
      TRIAD_LOG_WARN("triad.node") << "node " << config_.id
                             << " INC monitor detected TSC manipulation ("
                             << (window_ok ? "interval" : "window") << ")";
      begin_full_calibration();
      return;
    }
  }

  switch (state_) {
    case NodeState::kOk:
      set_state(NodeState::kTainted);
      begin_peer_round(/*proactive=*/false);
      break;
    case NodeState::kTainted:
      // Already recovering (peer round or TA ref-calib in flight).
      break;
    case NodeState::kFullCalib:
    case NodeState::kRefCalib:
      // In-flight calibration samples are invalidated by the AEX
      // timestamp check when the response arrives; nothing to do now.
      break;
  }
}

// ---------------------------------------------------------------------
// TA round-trips

void TriadNode::begin_full_calibration() {
  ++stats_.full_calibrations;
  begin_span();  // a calibration is its own causal episode
  have_ta_anchor_ = false;  // a fresh regression invalidates the anchor
  if (started_ && stats_.full_calibrations > 1) {
    // Recalibrate the INC monitor against the (possibly manipulated)
    // current TSC rate: the monitor can only pin rate *stability*, never
    // absolute truth — the paper's key limitation of INC monitoring.
    inc_calibration_ =
        monitor_.calibrate(config_.inc_window_ticks, config_.inc_calib_runs);
    monitor_.reset_continuity();
  }
  if (outstanding_ta_) {
    env_.cancel(outstanding_ta_->timeout);
    outstanding_ta_.reset();
  }
  if (peer_round_) {
    env_.cancel(peer_round_->timeout);
    peer_round_.reset();
  }
  calib_regression_.clear();
  calib_samples_low_ = 0;
  calib_samples_high_ = 0;
  set_state(NodeState::kFullCalib);
  send_calibration_request();
}

void TriadNode::send_calibration_request() {
  // Alternate 0 s / 1 s probes until both clusters have calib_pairs
  // samples.
  const Duration wait = calib_samples_low_ <= calib_samples_high_
                            ? config_.calib_wait_low
                            : config_.calib_wait_high;
  send_ta_request(wait);
}

void TriadNode::begin_ref_calibration() {
  if (outstanding_ta_) {
    env_.cancel(outstanding_ta_->timeout);
    outstanding_ta_.reset();
  }
  set_state(NodeState::kRefCalib);
  send_ta_request(config_.calib_wait_low);
}

void TriadNode::send_ta_request(Duration wait) {
  OutstandingTa ota;
  ota.request_id = next_request_id_++;
  ota.wait = wait;
  ota.sent_at = env_.now();
  ota.sent_tsc = tsc_.read();
  ota.for_full_calibration = state_ == NodeState::kFullCalib;
  ota.timeout = env_.schedule_after(
      config_.ta_timeout + wait,
      [this, id = ota.request_id] { on_ta_timeout(id); });
  outstanding_ta_ = ota;
  if (env_.tracing()) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kTaRequest;
    event.node = config_.id;
    event.span = current_span_;
    event.a = static_cast<std::int64_t>(ota.request_id);
    event.x = to_seconds(wait);
    env_.emit(event);
  }

  proto::TaRequest request;
  request.request_id = ota.request_id;
  request.wait = wait;
  request.span = current_span_;
  send_message(config_.ta_address, request);
}

void TriadNode::on_ta_timeout(std::uint64_t request_id) {
  if (!outstanding_ta_ || outstanding_ta_->request_id != request_id) return;
  const Duration wait = outstanding_ta_->wait;
  outstanding_ta_.reset();
  TRIAD_LOG_DEBUG("triad.node") << "node " << config_.id << " TA request "
                          << request_id << " timed out; resending";
  send_ta_request(wait);
}

void TriadNode::on_ta_response(const proto::TaResponse& response) {
  if (!outstanding_ta_ ||
      outstanding_ta_->request_id != response.request_id) {
    return;  // stale or duplicate
  }
  const OutstandingTa ota = *outstanding_ta_;
  env_.cancel(ota.timeout);
  outstanding_ta_.reset();
  if (env_.tracing()) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kTaResponse;
    event.node = config_.id;
    event.span = current_span_;
    event.a = static_cast<std::int64_t>(response.request_id);
    event.b = response.ta_time;
    env_.emit(event);
  }

  if (ota.for_full_calibration && state_ == NodeState::kFullCalib) {
    // The measurement is only usable if the monitoring thread ran
    // uninterrupted across the whole round-trip (paper §III-C).
    if (thread_.last_aex_time() > ota.sent_at) {
      ++stats_.calib_samples_rejected;
      send_calibration_request();
      return;
    }
    const double ticks = static_cast<double>(tsc_.read()) -
                         static_cast<double>(ota.sent_tsc);
    calib_regression_.add(to_seconds(ota.wait), ticks);
    if (ota.wait == config_.calib_wait_low) {
      ++calib_samples_low_;
    } else {
      ++calib_samples_high_;
    }

    if (calib_samples_low_ >= config_.calib_pairs &&
        calib_samples_high_ >= config_.calib_pairs) {
      const stats::LinearFit fit = calib_regression_.fit();
      f_calib_hz_ = fit.slope;
      if (env_.tracing()) {
        obs::TraceEvent event;
        event.type = obs::TraceEventType::kCalibration;
        event.node = config_.id;
        event.span = current_span_;
        event.a = calib_samples_low_ + calib_samples_high_;
        event.x = fit.slope;
        event.y = fit.r_squared;
        env_.emit(event);
      }
      TRIAD_LOG_INFO("triad.node")
          << "node " << config_.id << " calibrated F = "
          << f_calib_hz_ / 1e6 << " MHz (r2 " << fit.r_squared << ")";
      ++stats_.ta_time_references;
      maybe_refine_frequency(response.ta_time);  // seeds the anchor
      sync_clock_to(response.ta_time, config_.base_sync_error,
                    config_.ta_address);
      set_state(NodeState::kOk);
    } else {
      send_calibration_request();
    }
    return;
  }

  if (state_ == NodeState::kRefCalib) {
    ++stats_.ta_time_references;
    maybe_refine_frequency(response.ta_time);
    sync_clock_to(response.ta_time, config_.base_sync_error,
                  config_.ta_address);
    set_state(NodeState::kOk);
  }
}

void TriadNode::maybe_refine_frequency(SimTime ta_time) {
  if (!config_.long_window_calibration) return;
  const TscValue tsc_now = tsc_.read();
  if (have_ta_anchor_) {
    const Duration window = ta_time - anchor_ta_time_;
    if (window >= config_.long_window_min) {
      // Two TA timestamps far apart share (roughly) the same one-way
      // delay and the same attacker-injected offset, so the ratio of TSC
      // ticks to TA seconds across the window isolates the true rate —
      // the NTP-style long-timeframe drift measurement of §V.
      const double ticks = static_cast<double>(tsc_now) -
                           static_cast<double>(anchor_tsc_);
      double refined = ticks / to_seconds(window);
      if (refined > 0) {
        if (config_.long_window_max_revision_ppm > 0 && f_calib_hz_ > 0) {
          // Clamp the revision: a ramping-delay attacker needs large
          // per-window jumps; honest refinements are small.
          const double bound =
              f_calib_hz_ * config_.long_window_max_revision_ppm * 1e-6;
          refined = std::clamp(refined, f_calib_hz_ - bound,
                               f_calib_hz_ + bound);
        }
        TRIAD_LOG_INFO("triad.node")
            << "node " << config_.id << " long-window refine F: "
            << f_calib_hz_ / 1e6 << " -> " << refined / 1e6 << " MHz over "
            << to_seconds(window) << "s";
        f_calib_hz_ = refined;
      }
    } else {
      return;  // keep the old anchor until the window is long enough
    }
  }
  have_ta_anchor_ = true;
  anchor_ta_time_ = ta_time;
  anchor_tsc_ = tsc_now;
}

// ---------------------------------------------------------------------
// Peer untainting

void TriadNode::begin_peer_round(bool proactive) {
  if (peer_round_) {
    env_.cancel(peer_round_->timeout);
    peer_round_.reset();
  }
  // Proactive rounds start their own episode; reactive rounds continue
  // the taint episode the triggering AEX opened.
  if (proactive) begin_span();
  if (config_.peers.empty()) {
    if (!proactive) {
      ++stats_.ta_fallbacks;
      if (env_.tracing()) {
        obs::TraceEvent event;
        event.type = obs::TraceEventType::kTaFallback;
        event.node = config_.id;
        event.span = current_span_;
        event.a = static_cast<std::int64_t>(stats_.ta_fallbacks);
        env_.emit(event);
      }
      begin_ref_calibration();
    }
    return;
  }
  ++stats_.peer_rounds;
  PeerRound round;
  round.request_id = next_request_id_++;
  round.proactive = proactive;
  round.timeout =
      env_.schedule_after(config_.peer_timeout, [this] { finish_peer_round(); });
  peer_round_ = std::move(round);
  if (env_.tracing()) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kPeerQuery;
    event.node = config_.id;
    event.span = current_span_;
    event.a = static_cast<std::int64_t>(peer_round_->request_id);
    event.b = proactive ? 1 : 0;
    env_.emit(event);
  }

  proto::PeerTimeRequest request;
  request.request_id = peer_round_->request_id;
  request.span = current_span_;
  for (NodeId peer : config_.peers) send_message(peer, request);
}

void TriadNode::on_peer_response(NodeId peer,
                                 const proto::PeerTimeResponse& response) {
  if (!peer_round_ || peer_round_->request_id != response.request_id) return;
  ++peer_round_->answers;
  if (env_.tracing()) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kPeerResponse;
    event.node = config_.id;
    event.peer = peer;
    event.span = current_span_;
    event.a = static_cast<std::int64_t>(response.request_id);
    event.b = response.tainted ? 1 : 0;
    env_.emit(event);
  }
  if (!response.tainted) {
    peer_round_->samples.push_back(PeerSample{peer, response.timestamp,
                                              response.error_bound,
                                              env_.now()});
  }

  const bool first_response_mode =
      policy_->mode() == UntaintPolicy::Mode::kFirstResponse;
  if (first_response_mode && !peer_round_->samples.empty()) {
    finish_peer_round();
    return;
  }
  if (peer_round_->answers >= config_.peers.size()) {
    finish_peer_round();
  }
}

void TriadNode::finish_peer_round() {
  if (!peer_round_) return;
  env_.cancel(peer_round_->timeout);
  const PeerRound round = std::move(*peer_round_);
  peer_round_.reset();

  const auto trace_outcome = [this, &round](std::int64_t outcome,
                                            NodeId source) {
    if (!env_.tracing()) return;
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kPeerOutcome;
    event.node = config_.id;
    event.peer = source;
    event.span = current_span_;
    event.a = static_cast<std::int64_t>(round.request_id);
    event.b = outcome;  // 0 adopt, 1 keep_local, 2 ta_fallback, 3 no_answers
    env_.emit(event);
  };
  const auto trace_ta_fallback = [this] {
    if (!env_.tracing()) return;
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kTaFallback;
    event.node = config_.id;
    event.span = current_span_;
    event.a = static_cast<std::int64_t>(stats_.ta_fallbacks);
    env_.emit(event);
  };

  if (round.samples.empty()) {
    trace_outcome(3, 0);
    if (round.proactive) return;  // stay Ok on our own clock
    ++stats_.ta_fallbacks;
    trace_ta_fallback();
    begin_ref_calibration();
    return;
  }

  const UntaintPolicy::Decision decision = policy_->decide(
      current_time(), current_error_bound(), round.samples);

  switch (decision.action) {
    case UntaintPolicy::Decision::Action::kAdopt: {
      ++stats_.peer_adoptions;
      trace_outcome(0, decision.source);
      Duration source_error = config_.base_sync_error;
      for (const PeerSample& s : round.samples) {
        if (s.peer == decision.source) {
          source_error += s.error_bound;
          break;
        }
      }
      sync_clock_to(decision.adopted_time, source_error, decision.source);
      if (!round.proactive) set_state(NodeState::kOk);
      break;
    }
    case UntaintPolicy::Decision::Action::kKeepLocal:
      // Original protocol: bump the local timestamp by the smallest
      // increment — serve_timestamp()'s monotonicity provides that.
      ++stats_.kept_local;
      trace_outcome(1, 0);
      if (!round.proactive) set_state(NodeState::kOk);
      break;
    case UntaintPolicy::Decision::Action::kAskTimeAuthority:
      ++stats_.ta_fallbacks;
      trace_outcome(2, 0);
      trace_ta_fallback();
      begin_ref_calibration();
      break;
  }
}

void TriadNode::answer_peer_request(NodeId peer,
                                    const proto::PeerTimeRequest& request) {
  proto::PeerTimeResponse response;
  response.request_id = request.request_id;
  response.tainted = state_ != NodeState::kOk;
  response.timestamp = current_time();
  response.error_bound = current_error_bound();
  send_message(peer, response);
}

// ---------------------------------------------------------------------
// Networking

void TriadNode::send_message(NodeId to, const proto::Message& message) {
  env_.transport().send(config_.id, to,
                        channel_.seal(to, proto::encode(message)));
}

void TriadNode::on_packet(const runtime::Packet& packet) {
  const auto bad_frame = [this](NodeId src) {
    ++stats_.bad_frames;
    if (env_.tracing()) {
      obs::TraceEvent event;
      event.type = obs::TraceEventType::kBadFrame;
      event.node = config_.id;
      event.peer = src;
      event.a = static_cast<std::int64_t>(stats_.bad_frames);
      env_.emit(event);
    }
  };
  const auto opened = channel_.open(packet.payload);
  if (!opened) {
    bad_frame(packet.src);
    return;
  }
  const auto message = proto::decode(opened->plaintext);
  if (!message) {
    bad_frame(packet.src);
    return;
  }
  std::visit(
      [this, sender = opened->sender, &bad_frame](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::TaResponse>) {
          if (sender == config_.ta_address) on_ta_response(m);
        } else if constexpr (std::is_same_v<T, proto::PeerTimeRequest>) {
          answer_peer_request(sender, m);
        } else if constexpr (std::is_same_v<T, proto::PeerTimeResponse>) {
          on_peer_response(sender, m);
        } else {
          // Nodes never serve TaRequest.
          bad_frame(sender);
        }
      },
      *message);
}

}  // namespace triad
