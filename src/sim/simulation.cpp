#include "sim/simulation.h"

#include <stdexcept>
#include <utility>

namespace triad::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

Simulation::~Simulation() = default;

EventId Simulation::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    throw std::logic_error("Simulation::schedule_at: time is in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Simulation::schedule_at: empty handler");
  }
  const std::uint64_t seq = next_seq_++;
  heap_.push(Event{t, seq, seq});
  handlers_.emplace(seq, std::move(fn));
  return EventId{seq};
}

EventId Simulation::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < 0) {
    throw std::logic_error("Simulation::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto it = handlers_.find(id.value);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

void Simulation::purge_cancelled_top() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool Simulation::step() {
  purge_cancelled_top();
  if (heap_.empty()) return false;
  const Event ev = heap_.top();
  heap_.pop();
  const auto it = handlers_.find(ev.id);
  if (it == handlers_.end()) {
    throw std::logic_error("Simulation: live event without handler");
  }
  // Move the handler out before invoking: the handler may schedule or
  // cancel other events (rehashing handlers_), or even re-enter step()
  // indirectly through helper objects.
  std::function<void()> fn = std::move(it->second);
  handlers_.erase(it);
  now_ = ev.time;
  ++events_executed_;
  fn();
  return true;
}

void Simulation::run_until(SimTime t) {
  if (t < now_) {
    throw std::logic_error("Simulation::run_until: time is in the past");
  }
  for (;;) {
    // Tombstones must be purged before peeking: a cancelled head with
    // time <= t must not let an event after t slip through step().
    purge_cancelled_top();
    if (heap_.empty() || heap_.top().time > t) break;
    step();
  }
  now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

PeriodicTimer::PeriodicTimer(Simulation& sim, Duration period,
                             std::function<void()> fn)
    : PeriodicTimer(sim, sim.now() + period, period, std::move(fn)) {}

PeriodicTimer::PeriodicTimer(Simulation& sim, SimTime first, Duration period,
                             std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  if (period_ <= 0) {
    throw std::invalid_argument("PeriodicTimer: period must be positive");
  }
  arm(first);
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::stop() {
  if (stopped_) return;
  stopped_ = true;
  sim_.cancel(pending_);
}

void PeriodicTimer::arm(SimTime t) {
  pending_ = sim_.schedule_at(t, [this] {
    if (stopped_) return;
    fn_();
    if (!stopped_) arm(sim_.now() + period_);
  });
}

}  // namespace triad::sim
