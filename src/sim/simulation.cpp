#include "sim/simulation.h"

#include <stdexcept>
#include <utility>

#include "obs/prof.h"

namespace triad::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

Simulation::~Simulation() {
  if (obs_registry_ != nullptr) obs_registry_->unregister(this);
}

void Simulation::bind_obs(obs::Registry* registry) {
  if (obs_registry_ != nullptr) obs_registry_->unregister(this);
  obs_registry_ = registry;
  if (registry == nullptr) {
    obs_scheduled_ = {};
    obs_fired_ = {};
    obs_cancelled_ = {};
    return;
  }
  registry->set_help("triad_sim_events_scheduled_total",
                     "Events accepted by schedule_at/schedule_after");
  registry->set_help("triad_sim_events_fired_total",
                     "Events whose handler actually ran");
  registry->set_help("triad_sim_events_cancelled_total",
                     "Pending events cancelled before firing");
  registry->set_help("triad_sim_queue_depth",
                     "Currently pending (non-cancelled) events");
  obs_scheduled_ = registry->counter("triad_sim_events_scheduled_total");
  obs_fired_ = registry->counter("triad_sim_events_fired_total");
  obs_cancelled_ = registry->counter("triad_sim_events_cancelled_total");
  registry->gauge_fn(this, "triad_sim_queue_depth", {}, [this] {
    return static_cast<double>(live_count_);
  });
}

std::uint32_t Simulation::acquire_slot(std::function<void()> fn) {
  std::uint32_t index;
  if (free_head_ != kNoFreeSlot) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.live = true;
  return index;
}

void Simulation::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = nullptr;
  slot.live = false;
  ++slot.generation;  // invalidates outstanding EventIds for this slot
  slot.next_free = free_head_;
  free_head_ = index;
}

EventId Simulation::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    throw std::logic_error("Simulation::schedule_at: time is in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Simulation::schedule_at: empty handler");
  }
  const std::uint32_t index = acquire_slot(std::move(fn));
  const std::uint64_t id =
      (static_cast<std::uint64_t>(slots_[index].generation) << 32) |
      (index + 1);
  heap_.push(Event{t, next_seq_++, id});
  ++live_count_;
  obs_scheduled_.inc();
  return EventId{id};
}

EventId Simulation::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < 0) {
    throw std::logic_error("Simulation::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t index = slot_of(id.value);
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (!slot.live || slot.generation != generation_of(id.value)) return false;
  // Drop the handler now (frees any captured state immediately); the
  // heap entry stays behind as a tombstone and recycles the slot when
  // it reaches the top.
  slot.fn = nullptr;
  slot.live = false;
  --live_count_;
  obs_cancelled_.inc();
  return true;
}

void Simulation::purge_dead_top() {
  while (!heap_.empty()) {
    const std::uint32_t index = slot_of(heap_.top().id);
    if (slots_[index].live) return;
    release_slot(index);
    heap_.pop();
  }
}

bool Simulation::step() {
  PROF_SCOPE("sim/dispatch");
  purge_dead_top();
  if (heap_.empty()) return false;
  const Event ev = heap_.top();
  heap_.pop();
  const std::uint32_t index = slot_of(ev.id);
  // Move the handler out before invoking: the handler may schedule new
  // events (growing or recycling the slab), or even re-enter step()
  // indirectly through helper objects.
  std::function<void()> fn = std::move(slots_[index].fn);
  release_slot(index);
  --live_count_;
  now_ = ev.time;
  ++events_executed_;
  obs_fired_.inc();
  fn();
  return true;
}

void Simulation::run_until(SimTime t) {
  if (t < now_) {
    throw std::logic_error("Simulation::run_until: time is in the past");
  }
  for (;;) {
    // Tombstones must be purged before peeking: a cancelled head with
    // time <= t must not let an event after t slip through step().
    purge_dead_top();
    if (heap_.empty() || heap_.top().time > t) break;
    step();
  }
  now_ = t;
}

void Simulation::run_for(Duration d) {
  if (d < 0) {
    throw std::logic_error("Simulation::run_for: negative duration");
  }
  run_until(now_ + d);
}

void Simulation::run() {
  while (step()) {
  }
}

PeriodicTimer::PeriodicTimer(Simulation& sim, Duration period,
                             std::function<void()> fn)
    : PeriodicTimer(sim, sim.now() + period, period, std::move(fn)) {}

PeriodicTimer::PeriodicTimer(Simulation& sim, SimTime first, Duration period,
                             std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  if (period_ <= 0) {
    throw std::invalid_argument("PeriodicTimer: period must be positive");
  }
  arm(first);
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::stop() {
  if (stopped_) return;
  stopped_ = true;
  sim_.cancel(pending_);
}

void PeriodicTimer::arm(SimTime t) {
  pending_ = sim_.schedule_at(t, [this] {
    if (stopped_) return;
    fn_();
    if (!stopped_) arm(sim_.now() + period_);
  });
}

}  // namespace triad::sim
