// Deterministic discrete-event simulation engine.
//
// All of the reproduction runs on virtual time: an "8 hour" experiment is
// a few hundred thousand events. Determinism rules:
//   * events at equal timestamps fire in scheduling order (FIFO);
//   * all randomness is drawn from Rng streams forked off the
//     simulation's root generator;
//   * handlers may schedule/cancel freely, including at the current time.
//
// Simulation implements runtime::Clock and runtime::Scheduler, so it can
// be handed to protocol components directly through runtime::SimEnv.
//
// Handlers live in a slab with an intrusive free list rather than an
// unordered_map: scheduling and cancelling are array indexing plus one
// std::function move, with no hashing and no per-event node allocation.
// Cancellation clears the slot in place; the heap entry remains as a
// tombstone and returns the slot to the free list when it surfaces.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "runtime/env.h"
#include "util/rng.h"
#include "util/types.h"

namespace triad::sim {

/// Token identifying a scheduled event; usable to cancel it. The scheme
/// is shared with the runtime layer: sim::EventId and runtime::TimerId
/// are the same type.
using EventId = runtime::TimerId;

class Simulation final : public runtime::Clock, public runtime::Scheduler {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation() override;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const override { return now_; }

  /// Root RNG; components should fork() their own streams.
  Rng& rng() { return rng_; }

  /// Schedules fn at absolute virtual time t (must be >= now()).
  EventId schedule_at(SimTime t, std::function<void()> fn) override;

  /// Schedules fn after a non-negative delay.
  EventId schedule_after(Duration delay, std::function<void()> fn) override;

  /// Cancels a pending event. Cancelling an already-fired or invalid id
  /// is a harmless no-op (returns false).
  bool cancel(EventId id) override;

  /// Runs the next event, if any. Returns false when the queue is empty.
  bool step();

  /// Runs all events with time <= t, then sets now() == t.
  void run_until(SimTime t);

  /// Runs all events within the next `d` of virtual time; equivalent to
  /// run_until(now() + d).
  void run_for(Duration d);

  /// Runs until the event queue drains. Use run_until for open systems
  /// (anything with periodic timers never drains).
  void run();

  /// Number of events executed so far (for micro-benchmarks/diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Exact number of currently pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending_events() const { return live_count_; }

  /// Registers the event loop's metrics with `registry` (null detaches):
  /// counters triad_sim_events_{scheduled,fired,cancelled}_total plus a
  /// triad_sim_queue_depth gauge read at snapshot time. The callback
  /// series is tagged with this Simulation and dropped in the destructor.
  void bind_obs(obs::Registry* registry);

 private:
  /// One handler slot in the slab. A slot is bound to exactly one heap
  /// entry at a time and is recycled (generation bumped) only when that
  /// entry pops, so an id's generation mismatching the slot's means the
  /// event already fired or was cancelled long ago.
  struct Slot {
    std::function<void()> fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = 0;
    bool live = false;  // scheduled and not (yet) cancelled or fired
  };

  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    std::uint64_t id;
    // Ordering for a min-heap via std::greater.
    friend bool operator>(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;
  static std::uint32_t slot_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t generation_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  std::uint32_t acquire_slot(std::function<void()> fn);
  void release_slot(std::uint32_t index);
  /// Pops tombstoned heap entries so heap_.top() (if any) is live.
  void purge_dead_top();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  std::size_t live_count_ = 0;
  obs::Registry* obs_registry_ = nullptr;
  obs::Counter obs_scheduled_;
  obs::Counter obs_fired_;
  obs::Counter obs_cancelled_;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;
};

/// Periodic callback helper built on Simulation; cancels itself on
/// destruction (RAII) so samplers cannot outlive their owners.
class PeriodicTimer {
 public:
  /// Fires fn every `period` starting at now()+period (or `first` if given).
  PeriodicTimer(Simulation& sim, Duration period, std::function<void()> fn);
  PeriodicTimer(Simulation& sim, SimTime first, Duration period,
                std::function<void()> fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();

 private:
  void arm(SimTime t);
  Simulation& sim_;
  Duration period_;
  std::function<void()> fn_;
  sim::EventId pending_{};
  bool stopped_ = false;
};

}  // namespace triad::sim
