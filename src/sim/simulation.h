// Deterministic discrete-event simulation engine.
//
// All of the reproduction runs on virtual time: an "8 hour" experiment is
// a few hundred thousand events. Determinism rules:
//   * events at equal timestamps fire in scheduling order (FIFO);
//   * all randomness is drawn from Rng streams forked off the
//     simulation's root generator;
//   * handlers may schedule/cancel freely, including at the current time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace triad::sim {

/// Token identifying a scheduled event; usable to cancel it.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Root RNG; components should fork() their own streams.
  Rng& rng() { return rng_; }

  /// Schedules fn at absolute virtual time t (must be >= now()).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules fn after a non-negative delay.
  EventId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or invalid id
  /// is a harmless no-op (returns false).
  bool cancel(EventId id);

  /// Runs the next event, if any. Returns false when the queue is empty.
  bool step();

  /// Runs all events with time <= t, then sets now() == t.
  void run_until(SimTime t);

  /// Runs until the event queue drains. Use run_until for open systems
  /// (anything with periodic timers never drains).
  void run();

  /// Number of events executed so far (for micro-benchmarks/diagnostics).
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of currently pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending_events() const {
    return heap_.size() - cancelled_.size();
  }

 private:
  void purge_cancelled_top();

  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    std::uint64_t id;
    // Ordering for a min-heap via std::greater.
    friend bool operator>(const Event& a, const Event& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  Rng rng_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  // Handlers live here so Event stays POD-ish and cancellation is O(1).
  std::unordered_map<std::uint64_t, std::function<void()>> handlers_;
  std::unordered_set<std::uint64_t> cancelled_;
};

/// Periodic callback helper built on Simulation; cancels itself on
/// destruction (RAII) so samplers cannot outlive their owners.
class PeriodicTimer {
 public:
  /// Fires fn every `period` starting at now()+period (or `first` if given).
  PeriodicTimer(Simulation& sim, Duration period, std::function<void()> fn);
  PeriodicTimer(Simulation& sim, SimTime first, Duration period,
                std::function<void()> fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();

 private:
  void arm(SimTime t);
  Simulation& sim_;
  Duration period_;
  std::function<void()> fn_;
  sim::EventId pending_{};
  bool stopped_ = false;
};

}  // namespace triad::sim
