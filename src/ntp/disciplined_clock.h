// A TSC-driven local clock disciplined by offset measurements.
//
// Simplified RFC 5905 clock discipline: offsets above the step threshold
// step the clock; smaller offsets are corrected by slewing (bounded rate)
// plus a frequency adjustment learned from consecutive offsets over long
// intervals (the "long drift measurement timeframes" §V points at).
#pragma once

#include "tsc/tsc.h"
#include "util/types.h"

namespace triad::ntp {

struct DisciplineConfig {
  /// Offsets at or above this are stepped immediately (NTP: 125 ms).
  Duration step_threshold = milliseconds(125);
  /// Maximum slew rate applied to smaller offsets (NTP: 500 ppm).
  double max_slew_ppm = 500.0;
  /// Loop gain for the frequency term (fraction of the measured
  /// rate error folded in per update).
  double frequency_gain = 0.5;
  /// Minimum spacing between samples used for frequency estimation.
  Duration min_frequency_interval = seconds(16);
};

class DisciplinedClock {
 public:
  /// nominal_frequency_hz: the assumed TSC rate (e.g. the boot-time
  /// measurement); the discipline learns the residual error.
  DisciplinedClock(const tsc::Tsc& tsc, double nominal_frequency_hz,
                   DisciplineConfig config = {});

  /// Current clock value. Monotonic except across explicit steps.
  [[nodiscard]] SimTime now() const;

  /// Feeds one measured offset (reference - local, at local time now()).
  /// Returns true if the clock stepped (vs slewed).
  bool apply_offset(Duration offset);

  /// Learned frequency correction in ppm (positive = TSC assumed slow).
  [[nodiscard]] double frequency_correction_ppm() const {
    return freq_correction_ppm_;
  }

  [[nodiscard]] std::uint64_t steps() const { return steps_; }

 private:
  /// Re-bases the linear segment at the current instant.
  void rebase(SimTime new_value);
  [[nodiscard]] double effective_rate() const;

  const tsc::Tsc& tsc_;
  double nominal_hz_;
  DisciplineConfig config_;

  // Piecewise linear: value = base_value_ + (tsc - base_tsc_) / rate,
  // where rate folds nominal frequency, learned correction, and a
  // bounded-duration slew (it ends once its target offset is absorbed —
  // a slew must never keep skewing the clock indefinitely).
  TscValue base_tsc_ = 0;
  SimTime base_value_ = 0;
  double freq_correction_ppm_ = 0.0;
  double slew_ppm_ = 0.0;
  double slew_duration_s_ = 0.0;  // nominal seconds the slew stays active

  // Frequency learning state: raw TSC ticks against estimated reference
  // time (local + offset). Using raw ticks keeps the estimate immune to
  // our own slew/correction feedback.
  bool have_anchor_ = false;
  SimTime anchor_reference_ = 0;
  double anchor_ticks_ = 0.0;

  std::uint64_t steps_ = 0;
};

}  // namespace triad::ntp
