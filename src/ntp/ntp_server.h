// NTP-style time server (stands in for the NTPsec servers §V proposes).
//
// Speaks the four-timestamp protocol over the same sealed datagram
// channels as everything else. The server's clock is the environment's
// reference time (root of trust).
#pragma once

#include <cstdint>

#include "crypto/channel.h"
#include "runtime/env.h"
#include "util/types.h"

namespace triad::ntp {

// Wire format (sealed payloads):
//   request:  u8 tag=1 | u64 id | i64 t1
//   response: u8 tag=2 | u64 id | i64 t1 | i64 t2 | i64 t3
inline constexpr std::uint8_t kNtpRequestTag = 1;
inline constexpr std::uint8_t kNtpResponseTag = 2;

struct NtpServerStats {
  std::uint64_t requests_served = 0;
  std::uint64_t rejected_frames = 0;
};

class NtpServer {
 public:
  /// processing_delay: server-side time between receive (t2) and
  /// transmit (t3); real servers are microseconds.
  NtpServer(runtime::Env env, NodeId address,
            const crypto::Keyring& keyring,
            Duration processing_delay = microseconds(5));
  ~NtpServer();
  NtpServer(const NtpServer&) = delete;
  NtpServer& operator=(const NtpServer&) = delete;

  [[nodiscard]] NodeId address() const { return address_; }
  [[nodiscard]] const NtpServerStats& stats() const { return stats_; }

  /// Test/experiment hook: a compromised server reporting a clock offset
  /// from the true reference (a "falseticker" for selection tests).
  void set_lie_offset(Duration offset) { lie_offset_ = offset; }

 private:
  void on_packet(const runtime::Packet& packet);

  runtime::Env env_;
  NodeId address_;
  crypto::SecureChannel channel_;
  Duration processing_delay_;
  Duration lie_offset_ = 0;
  NtpServerStats stats_;
};

}  // namespace triad::ntp
