// NTP-style client: polls a server, filters samples, disciplines a
// TSC-driven clock — the mature synchronization §V recommends over
// Triad's short-window regression.
//
// Defences relevant to the paper's attacker:
//  * minimum-delay sample selection (ClockFilter) discards exchanges an
//    attacker delayed — injected delay inflates the measured delay, and
//    the offset error is bounded by delay/2;
//  * poll intervals back off (2^tau), so frequency is measured over long
//    timeframes where per-message delay bias cancels.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/channel.h"
#include "ntp/disciplined_clock.h"
#include "ntp/sample.h"
#include "resilient/clock_filter.h"
#include "runtime/env.h"
#include "tsc/tsc.h"
#include "util/types.h"

namespace triad::ntp {

struct NtpClientConfig {
  NodeId id = 0;
  /// Time sources. With several servers the client runs one filter per
  /// server and combines their candidates with Marzullo's intersection —
  /// a majority of honest servers out-votes a lying one (RFC 5905's
  /// select/cluster stage, simplified).
  std::vector<NodeId> servers;
  /// Poll interval bounds: 2^tau seconds (RFC 5905 uses tau in [4,17];
  /// simulations default lower so convergence is visible in minutes).
  int min_tau = 2;
  int max_tau = 6;
  /// Applied offsets below this let tau back off (clock is stable).
  Duration stable_offset = milliseconds(2);
  /// Half-width of a server candidate's interval for the selection
  /// stage: offset ± (delay/2 + margin).
  Duration selection_margin = microseconds(500);
  DisciplineConfig discipline;
};

struct NtpClientStats {
  std::uint64_t polls = 0;
  std::uint64_t samples = 0;
  std::uint64_t implausible = 0;
  std::uint64_t applied = 0;
  std::uint64_t steps = 0;
  std::uint64_t falsetickers_rejected = 0;  // selection-stage exclusions
};

class NtpClient {
 public:
  NtpClient(runtime::Env env, const crypto::Keyring& keyring,
            const tsc::Tsc& tsc, double nominal_frequency_hz,
            NtpClientConfig config);
  ~NtpClient();
  NtpClient(const NtpClient&) = delete;
  NtpClient& operator=(const NtpClient&) = delete;

  void start();

  /// The disciplined clock's current value.
  [[nodiscard]] SimTime now() const { return clock_.now(); }

  [[nodiscard]] const DisciplinedClock& clock() const { return clock_; }
  [[nodiscard]] int current_tau() const { return tau_; }
  [[nodiscard]] const NtpClientStats& stats() const { return stats_; }

 private:
  void poll();
  void on_packet(const runtime::Packet& packet);

  /// Combines the per-server candidates; applies the result if fresh.
  void select_and_apply();

  struct Source {
    NodeId server = 0;
    resilient::ClockFilter filter{8, hours(2)};
    std::uint64_t outstanding_id = 0;
    SimTime outstanding_t1 = 0;
  };

  runtime::Env env_;
  NtpClientConfig config_;
  crypto::SecureChannel channel_;
  DisciplinedClock clock_;
  std::vector<Source> sources_;
  int tau_;
  std::uint64_t next_request_id_ = 1;
  SimTime last_applied_sample_at_ = -1;
  bool started_ = false;
  runtime::TimerId next_poll_{};
  NtpClientStats stats_;
};

}  // namespace triad::ntp
