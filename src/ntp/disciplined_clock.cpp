#include "ntp/disciplined_clock.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace triad::ntp {

DisciplinedClock::DisciplinedClock(const tsc::Tsc& tsc,
                                   double nominal_frequency_hz,
                                   DisciplineConfig config)
    : tsc_(tsc), nominal_hz_(nominal_frequency_hz), config_(config),
      base_tsc_(tsc.read()) {
  if (nominal_frequency_hz <= 0) {
    throw std::invalid_argument("DisciplinedClock: bad nominal frequency");
  }
  if (config_.step_threshold <= 0 || config_.max_slew_ppm <= 0 ||
      config_.frequency_gain <= 0 || config_.frequency_gain > 1 ||
      config_.min_frequency_interval <= 0) {
    throw std::invalid_argument("DisciplinedClock: bad config");
  }
}

double DisciplinedClock::effective_rate() const {
  return 1.0 + freq_correction_ppm_ * 1e-6;
}

SimTime DisciplinedClock::now() const {
  const double ticks = static_cast<double>(tsc_.read()) -
                       static_cast<double>(base_tsc_);
  const double elapsed_s = ticks / nominal_hz_;
  // The slew contributes only until its target offset is absorbed.
  const double slew_s = std::min(elapsed_s, slew_duration_s_);
  const double value_s =
      elapsed_s * effective_rate() + slew_s * slew_ppm_ * 1e-6;
  return base_value_ + static_cast<SimTime>(value_s * 1e9);
}

void DisciplinedClock::rebase(SimTime new_value) {
  base_value_ = new_value;
  base_tsc_ = tsc_.read();
}

bool DisciplinedClock::apply_offset(Duration offset) {
  const SimTime local_now = now();
  // Best available estimate of true reference time right now, paired
  // with the raw tick count: the basis for frequency learning. The raw
  // ticks are untouched by our own slew/correction, so the estimated
  // tick rate is not contaminated by the control loop.
  const SimTime reference_now = local_now + offset;
  const double ticks_now = static_cast<double>(tsc_.read());
  if (have_anchor_) {
    const Duration span = reference_now - anchor_reference_;
    if (span >= config_.min_frequency_interval) {
      const double measured_hz =
          (ticks_now - anchor_ticks_) / to_seconds(span);
      if (measured_hz > 0) {
        const double target_ppm =
            (nominal_hz_ / measured_hz - 1.0) * 1e6;
        freq_correction_ppm_ +=
            config_.frequency_gain * (target_ppm - freq_correction_ppm_);
      }
      anchor_reference_ = reference_now;
      anchor_ticks_ = ticks_now;
    }
  } else {
    have_anchor_ = true;
    anchor_reference_ = reference_now;
    anchor_ticks_ = ticks_now;
  }

  if (std::abs(offset) >= config_.step_threshold) {
    rebase(reference_now);
    slew_ppm_ = 0.0;
    slew_duration_s_ = 0.0;
    ++steps_;
    return true;
  }

  // Slew: absorb the offset at a bounded rate, for exactly as long as
  // it takes to absorb it.
  rebase(local_now);
  const double wanted_ppm =
      static_cast<double>(offset) /
      static_cast<double>(config_.min_frequency_interval) * 1e6;
  slew_ppm_ = std::clamp(wanted_ppm, -config_.max_slew_ppm,
                         config_.max_slew_ppm);
  slew_duration_s_ =
      slew_ppm_ == 0.0
          ? 0.0
          : static_cast<double>(offset) / (slew_ppm_ * 1e-6) / 1e9;
  return false;
}

}  // namespace triad::ntp
