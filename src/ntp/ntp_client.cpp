#include "ntp/ntp_client.h"

#include <cmath>
#include <stdexcept>

#include "ntp/ntp_server.h"  // wire-format tags
#include "obs/metrics.h"
#include "resilient/marzullo.h"
#include "util/bytes.h"
#include "util/log.h"

namespace triad::ntp {

NtpClient::NtpClient(runtime::Env env, const crypto::Keyring& keyring,
                     const tsc::Tsc& tsc, double nominal_frequency_hz,
                     NtpClientConfig config)
    : env_(env), config_(std::move(config)),
      channel_(config_.id, keyring),
      clock_(tsc, nominal_frequency_hz, config_.discipline),
      tau_(config_.min_tau) {
  if (config_.servers.empty()) {
    throw std::invalid_argument("NtpClientConfig: need at least one server");
  }
  if (config_.min_tau < 0 || config_.max_tau < config_.min_tau ||
      config_.max_tau > 17) {
    throw std::invalid_argument("NtpClientConfig: bad tau bounds");
  }
  if (config_.stable_offset <= 0 || config_.selection_margin < 0) {
    throw std::invalid_argument("NtpClientConfig: bad thresholds");
  }
  for (NodeId server : config_.servers) {
    sources_.push_back(Source{server});
  }
  env_.transport().attach(
      config_.id, [this](const runtime::Packet& packet) { on_packet(packet); });
  if (obs::Registry* registry = env_.metrics(); registry != nullptr) {
    const obs::Labels labels{{"node", std::to_string(config_.id)}};
    const auto count = [&](const std::uint64_t NtpClientStats::* field,
                           const char* name, const char* help) {
      registry->set_help(name, help);
      registry->counter_fn(this, name, labels, [this, field] {
        return static_cast<double>(stats_.*field);
      });
    };
    count(&NtpClientStats::polls, "triad_ntp_polls_total",
          "Poll rounds sent to the server set");
    count(&NtpClientStats::samples, "triad_ntp_samples_total",
          "Plausible round-trip samples accepted");
    count(&NtpClientStats::implausible, "triad_ntp_implausible_total",
          "Samples discarded by the plausibility check");
    count(&NtpClientStats::applied, "triad_ntp_applied_total",
          "Offsets applied to the disciplined clock");
    count(&NtpClientStats::steps, "triad_ntp_steps_total",
          "Applied offsets large enough to step the clock");
    count(&NtpClientStats::falsetickers_rejected,
          "triad_ntp_falsetickers_rejected_total",
          "Server candidates excluded by Marzullo selection");
    registry->set_help("triad_ntp_tau", "Current poll exponent (2^tau s)");
    registry->gauge_fn(this, "triad_ntp_tau", labels,
                       [this] { return static_cast<double>(tau_); });
  }
}

NtpClient::~NtpClient() {
  env_.cancel(next_poll_);
  env_.transport().detach(config_.id);
  if (env_.metrics() != nullptr) env_.metrics()->unregister(this);
}

void NtpClient::start() {
  if (started_) throw std::logic_error("NtpClient::start called twice");
  started_ = true;
  poll();
}

void NtpClient::poll() {
  ++stats_.polls;
  for (Source& source : sources_) {
    source.outstanding_id = next_request_id_++;
    source.outstanding_t1 = clock_.now();
    ByteWriter w;
    w.put_u8(kNtpRequestTag);
    w.put_u64(source.outstanding_id);
    w.put_i64(source.outstanding_t1);
    env_.transport().send(config_.id, source.server,
                          channel_.seal(source.server, w.data()));
  }

  // Next poll at 2^tau seconds regardless of whether answers arrive
  // (a lost datagram just means a missed sample).
  next_poll_ =
      env_.schedule_after(seconds(1) << tau_, [this] { poll(); });
}

void NtpClient::on_packet(const runtime::Packet& packet) {
  const auto opened = channel_.open(packet.payload);
  if (!opened) return;

  Source* source = nullptr;
  for (Source& candidate : sources_) {
    if (candidate.server == opened->sender) {
      source = &candidate;
      break;
    }
  }
  if (source == nullptr) return;

  NtpSample sample;
  std::uint64_t id = 0;
  try {
    ByteReader reader(opened->plaintext);
    if (reader.get_u8() != kNtpResponseTag) return;
    id = reader.get_u64();
    sample.t1 = reader.get_i64();
    sample.t2 = reader.get_i64();
    sample.t3 = reader.get_i64();
    reader.expect_end();
  } catch (const DecodeError&) {
    return;
  }
  if (id != source->outstanding_id || sample.t1 != source->outstanding_t1) {
    return;
  }
  source->outstanding_id = 0;
  sample.t4 = clock_.now();

  if (!sample.plausible()) {
    ++stats_.implausible;
    return;
  }
  ++stats_.samples;
  source->filter.add({sample.offset(), sample.delay(), sample.t4});
  select_and_apply();
}

void NtpClient::select_and_apply() {
  const SimTime local_now = clock_.now();
  const Duration horizon = 4 * (seconds(1) << tau_);

  // Stage 1: per-server candidate = its filter's min-delay fresh sample.
  struct Candidate {
    resilient::ClockSample sample;
  };
  std::vector<Candidate> candidates;
  std::vector<resilient::Interval> intervals;
  for (Source& source : sources_) {
    const auto best = source.filter.select(local_now, horizon);
    if (!best) continue;
    candidates.push_back({*best});
    const Duration e = best->delay / 2 + config_.selection_margin;
    intervals.push_back({best->offset - e, best->offset + e});
  }
  if (candidates.empty()) return;

  // Stage 2: Marzullo over candidate offset intervals; a server whose
  // interval misses the majority intersection is a falseticker. The
  // quorum is over the *configured* server set — otherwise whichever
  // (possibly lying) server answers first forms a majority of one.
  const auto best_overlap = resilient::marzullo(intervals);
  if (best_overlap.count * 2 <= config_.servers.size()) return;
  const auto chimers = resilient::overlapping(intervals, best_overlap.best);
  stats_.falsetickers_rejected += candidates.size() - chimers.size();

  // Stage 3: among true-chimers, the freshest minimum-delay candidate
  // drives the discipline — but only when it is genuinely new.
  const resilient::ClockSample* chosen = nullptr;
  for (std::size_t idx : chimers) {
    const auto& sample = candidates[idx].sample;
    if (chosen == nullptr || sample.delay < chosen->delay ||
        (sample.delay == chosen->delay && sample.at > chosen->at)) {
      chosen = &candidates[idx].sample;
    }
  }
  if (chosen == nullptr || chosen->at == last_applied_sample_at_ ||
      chosen->at != local_now) {
    return;  // nothing fresh to act on
  }
  last_applied_sample_at_ = chosen->at;
  ++stats_.applied;
  const bool stepped = clock_.apply_offset(chosen->offset);
  if (stepped) {
    ++stats_.steps;
    if (env_.tracing()) {
      obs::TraceEvent event;
      event.type = obs::TraceEventType::kClockStep;
      event.node = config_.id;
      event.a = chosen->offset;
      env_.emit(event);
    }
    // Retained samples were measured against the pre-step timescale;
    // mixing them with post-step ones would corrupt the selection.
    for (Source& source : sources_) source.filter.clear();
    last_applied_sample_at_ = -1;
  }

  // Poll-interval management.
  if (std::abs(chosen->offset) < config_.stable_offset && !stepped) {
    tau_ = std::min(tau_ + 1, config_.max_tau);
  } else {
    tau_ = std::max(tau_ - 1, config_.min_tau);
  }
  TRIAD_LOG_DEBUG("triad.ntp") << "client " << config_.id << " offset "
                         << to_milliseconds(chosen->offset) << "ms delay "
                         << to_milliseconds(chosen->delay) << "ms tau "
                         << tau_;
}

}  // namespace triad::ntp
