#include "ntp/sample.h"

namespace triad::ntp {

Duration NtpSample::offset() const {
  return ((t2 - t1) + (t3 - t4)) / 2;
}

Duration NtpSample::delay() const {
  return (t4 - t1) - (t3 - t2);
}

bool NtpSample::plausible() const {
  return t4 >= t1 && t3 >= t2 && delay() >= 0;
}

}  // namespace triad::ntp
