// NTP four-timestamp exchange arithmetic (RFC 5905 §8).
//
// Client sends at t1 (its clock), server receives at t2 and replies at
// t3 (server clock), client receives at t4 (its clock):
//   offset = ((t2 - t1) + (t3 - t4)) / 2      (server - client)
//   delay  = (t4 - t1) - (t3 - t2)            (round-trip, queues only)
// The offset error from asymmetric path delay is bounded by delay / 2 —
// which is why the clock filter prefers minimum-delay samples and why a
// message-delaying attacker is far weaker against NTP-style sync than
// against Triad's wait-time regression (paper §V).
#pragma once

#include "util/types.h"

namespace triad::ntp {

struct NtpSample {
  SimTime t1 = 0;  // client transmit (client clock)
  SimTime t2 = 0;  // server receive (server clock)
  SimTime t3 = 0;  // server transmit (server clock)
  SimTime t4 = 0;  // client receive (client clock)

  /// Estimated server-minus-client clock offset.
  [[nodiscard]] Duration offset() const;

  /// Round-trip network delay (excluding server processing time).
  [[nodiscard]] Duration delay() const;

  /// Sanity: t4 >= t1, t3 >= t2, and non-negative delay.
  [[nodiscard]] bool plausible() const;
};

}  // namespace triad::ntp
