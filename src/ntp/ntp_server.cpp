#include "ntp/ntp_server.h"

#include "obs/metrics.h"
#include "util/bytes.h"

namespace triad::ntp {

NtpServer::NtpServer(runtime::Env env, NodeId address,
                     const crypto::Keyring& keyring,
                     Duration processing_delay)
    : env_(env), address_(address), channel_(address, keyring),
      processing_delay_(processing_delay) {
  env_.transport().attach(
      address_, [this](const runtime::Packet& packet) { on_packet(packet); });
  if (obs::Registry* registry = env_.metrics(); registry != nullptr) {
    const obs::Labels labels{{"node", std::to_string(address_)}};
    registry->set_help("triad_ntp_server_requests_total",
                       "NTP requests answered");
    registry->counter_fn(this, "triad_ntp_server_requests_total", labels,
                         [this] {
                           return static_cast<double>(stats_.requests_served);
                         });
    registry->set_help("triad_ntp_server_rejected_frames_total",
                       "Unauthenticated/malformed NTP frames dropped");
    registry->counter_fn(this, "triad_ntp_server_rejected_frames_total",
                         labels, [this] {
                           return static_cast<double>(stats_.rejected_frames);
                         });
  }
}

NtpServer::~NtpServer() {
  env_.transport().detach(address_);
  if (env_.metrics() != nullptr) env_.metrics()->unregister(this);
}

void NtpServer::on_packet(const runtime::Packet& packet) {
  const auto opened = channel_.open(packet.payload);
  if (!opened) {
    ++stats_.rejected_frames;
    return;
  }
  std::uint64_t id = 0;
  SimTime t1 = 0;
  try {
    ByteReader reader(opened->plaintext);
    if (reader.get_u8() != kNtpRequestTag) {
      ++stats_.rejected_frames;
      return;
    }
    id = reader.get_u64();
    t1 = reader.get_i64();
    reader.expect_end();
  } catch (const DecodeError&) {
    ++stats_.rejected_frames;
    return;
  }

  const SimTime t2 = env_.now() + lie_offset_;
  const NodeId client = opened->sender;
  ++stats_.requests_served;
  env_.schedule_after(processing_delay_, [this, client, id, t1, t2] {
    ByteWriter w;
    w.put_u8(kNtpResponseTag);
    w.put_u64(id);
    w.put_i64(t1);
    w.put_i64(t2);
    w.put_i64(env_.now() + lie_offset_);  // t3
    env_.transport().send(address_, client, channel_.seal(client, w.data()));
  });
}

}  // namespace triad::ntp
