#include "obs/detect.h"

#include <algorithm>
#include <cmath>

namespace triad::obs {
namespace {

/// Median of a small value set. Deterministic (callers pass values in
/// NodeId order); even counts average the two middles.
double median_of(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

/// Latest calibrated slope per node, shared shape between the slope and
/// disagreement detectors. std::map: deterministic iteration.
using SlopeMap = std::map<NodeId, double>;

std::vector<double> slope_values(const SlopeMap& slopes) {
  std::vector<double> values;
  values.reserve(slopes.size());
  for (const auto& [node, slope] : slopes) values.push_back(slope);
  return values;
}

class SlopeDetector final : public Detector {
 public:
  explicit SlopeDetector(const DetectorConfig& config) : config_(config) {}

  DetectorKind kind() const override { return DetectorKind::kSlope; }

  void on_event(const TraceEvent& event, std::vector<Alarm>* out) override {
    if (event.type != TraceEventType::kCalibration || event.x <= 0.0) return;
    latest_[event.node] = event.x;

    double reference = 0.0;
    if (config_.nominal_frequency_hz > 0.0) {
      reference = config_.nominal_frequency_hz;
    } else if (latest_.size() >= config_.slope_quorum) {
      // Median including the node itself: with a single attacked node
      // the median sits on the honest consensus, so the victim's slope
      // shows its full ±10% deviation while honest nodes stay within
      // calibration noise.
      reference = median_of(slope_values(latest_));
    } else {
      return;  // no baseline yet
    }
    if (reference <= 0.0) return;
    const double deviation_ppm = (event.x - reference) / reference * 1e6;
    if (std::abs(deviation_ppm) <= config_.slope_tolerance_ppm) return;
    Alarm alarm;
    alarm.at = event.at;
    alarm.detector = DetectorKind::kSlope;
    alarm.node = event.node;
    alarm.span = event.span;
    alarm.value = deviation_ppm;  // sign carries the F−/F+ direction
    alarm.threshold = config_.slope_tolerance_ppm;
    out->push_back(alarm);
  }

 private:
  DetectorConfig config_;
  SlopeMap latest_;
};

class DisagreementDetector final : public Detector {
 public:
  explicit DisagreementDetector(const DetectorConfig& config)
      : config_(config) {}

  DetectorKind kind() const override { return DetectorKind::kDisagreement; }

  void on_event(const TraceEvent& event, std::vector<Alarm>* out) override {
    if (event.type != TraceEventType::kCalibration || event.x <= 0.0) return;
    latest_[event.node] = event.x;
    if (latest_.size() < 2) return;

    const std::vector<double> values = slope_values(latest_);
    const auto [min_it, max_it] =
        std::minmax_element(values.begin(), values.end());
    const double median = median_of(values);
    if (median <= 0.0) return;
    const double width_ppm = (*max_it - *min_it) / median * 1e6;
    if (width_ppm <= config_.disagreement_width_ppm) {
      active_ = false;  // spread healed; re-arm
      return;
    }
    if (active_) return;  // one alarm per excursion
    active_ = true;
    Alarm alarm;
    alarm.at = event.at;
    alarm.detector = DetectorKind::kDisagreement;
    alarm.node = farthest_from(median);
    alarm.span = event.span;
    alarm.value = width_ppm;
    alarm.threshold = config_.disagreement_width_ppm;
    out->push_back(alarm);
  }

 private:
  /// The node whose slope sits farthest from the consensus — the
  /// chimer Marzullo's algorithm would exclude. An exact tie (two
  /// slopes: both are equidistant from their midpoint) is
  /// unattributable and returns 0 rather than accusing either side.
  NodeId farthest_from(double median) const {
    NodeId worst = 0;
    double worst_distance = -1.0;
    bool tied = false;
    for (const auto& [node, slope] : latest_) {
      const double distance = std::abs(slope - median);
      if (distance > worst_distance) {
        worst_distance = distance;
        worst = node;
        tied = false;
      } else if (distance == worst_distance) {
        tied = true;
      }
    }
    return tied ? 0 : worst;
  }

  DetectorConfig config_;
  SlopeMap latest_;
  bool active_ = false;
};

class JumpDetector final : public Detector {
 public:
  explicit JumpDetector(const DetectorConfig& config) : config_(config) {}

  DetectorKind kind() const override { return DetectorKind::kJump; }

  void on_event(const TraceEvent& event, std::vector<Alarm>* out) override {
    if (event.type != TraceEventType::kAdoption) return;
    if (event.peer == 0 || event.peer == config_.ta_address) return;
    const double step_ms =
        static_cast<double>(event.b - event.a) / 1e6;
    if (step_ms <= 0.0) return;  // only forward jumps propagate attacks

    double threshold = config_.jump_floor_ms;
    if (!window_.empty()) {
      threshold = std::max(
          threshold, config_.jump_median_factor *
                         median_of({window_.begin(), window_.end()}));
    }
    if (step_ms > threshold) {
      Alarm alarm;
      alarm.at = event.at;
      alarm.detector = DetectorKind::kJump;
      alarm.node = event.node;
      alarm.source = event.peer;
      alarm.span = event.span;
      alarm.value = step_ms;
      alarm.threshold = threshold;
      out->push_back(alarm);
    }
    window_.push_back(step_ms);
    if (window_.size() > config_.jump_window) window_.pop_front();
  }

 private:
  DetectorConfig config_;
  std::deque<double> window_;
};

std::vector<std::unique_ptr<Detector>> standard_detectors(
    const DetectorConfig& config) {
  std::vector<std::unique_ptr<Detector>> detectors;
  detectors.push_back(make_slope_detector(config));
  detectors.push_back(make_disagreement_detector(config));
  detectors.push_back(make_jump_detector(config));
  return detectors;
}

}  // namespace

const char* to_string(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kSlope: return "slope";
    case DetectorKind::kDisagreement: return "disagreement";
    case DetectorKind::kJump: return "jump";
  }
  return "?";
}

std::unique_ptr<Detector> make_slope_detector(const DetectorConfig& config) {
  return std::make_unique<SlopeDetector>(config);
}

std::unique_ptr<Detector> make_disagreement_detector(
    const DetectorConfig& config) {
  return std::make_unique<DisagreementDetector>(config);
}

std::unique_ptr<Detector> make_jump_detector(const DetectorConfig& config) {
  return std::make_unique<JumpDetector>(config);
}

DetectorBank::DetectorBank(const DetectorConfig& config, Registry* registry,
                           TraceSink* alarm_sink)
    : DetectorBank(standard_detectors(config), registry, alarm_sink) {}

DetectorBank::DetectorBank(std::vector<std::unique_ptr<Detector>> detectors,
                           Registry* registry, TraceSink* alarm_sink)
    : detectors_(std::move(detectors)), alarm_sink_(alarm_sink) {
  register_metrics(registry);
}

void DetectorBank::register_metrics(Registry* registry) {
  if (registry == nullptr) return;
  registry->set_help("triad_detector_alarms_total",
                     "Attack-signature alarms raised, per detector");
  // All three series exist from the start so attack-free runs export
  // explicit zeros (the campaign smoke asserts on them). The label
  // values are spelled literally — they must match to_string(kind) —
  // so the R9 inventory (and the check_prom.awk required-series list
  // generated from it) sees the full detector set.
  alarm_counters_[static_cast<std::size_t>(DetectorKind::kSlope)] =
      registry->counter("triad_detector_alarms_total",
                        {{"detector", "slope"}});
  alarm_counters_[static_cast<std::size_t>(DetectorKind::kDisagreement)] =
      registry->counter("triad_detector_alarms_total",
                        {{"detector", "disagreement"}});
  alarm_counters_[static_cast<std::size_t>(DetectorKind::kJump)] =
      registry->counter("triad_detector_alarms_total",
                        {{"detector", "jump"}});
  registry->set_help("triad_detector_first_alarm_seconds",
                     "Virtual time of the first alarm (-1 = none)");
  first_alarm_gauge_ =
      registry->gauge("triad_detector_first_alarm_seconds", {});
  first_alarm_gauge_.set(-1.0);
}

void DetectorBank::emit(const TraceEvent& event) {
  // Never consume our own output: the alarm sink may be the same ring
  // this bank tees off, and offline replays feed alarms back in.
  if (event.type == TraceEventType::kDetectorAlarm) return;
  for (const std::unique_ptr<Detector>& detector : detectors_) {
    scratch_.clear();
    detector->on_event(event, &scratch_);
    for (const Alarm& alarm : scratch_) {
      alarms_.push_back(alarm);
      if (first_alarm_at_ < 0) {
        first_alarm_at_ = alarm.at;
        first_alarm_gauge_.set(to_seconds(alarm.at));
      }
      alarm_counters_[static_cast<std::size_t>(alarm.detector)].inc();
      if (alarm_sink_ != nullptr) {
        TraceEvent out;
        out.at = alarm.at;
        out.type = TraceEventType::kDetectorAlarm;
        out.node = alarm.node;
        out.peer = alarm.source;
        out.span = alarm.span;
        out.a = static_cast<std::int64_t>(alarm.detector);
        out.b = static_cast<std::int64_t>(alarms_.size());  // 1-based ordinal
        out.x = alarm.value;
        out.y = alarm.threshold;
        alarm_sink_->emit(out);
      }
    }
  }
}

}  // namespace triad::obs
