#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace triad::obs {
namespace {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin() { buf_ = "{"; }
  void end() {
    buf_ += '}';
    out_ << buf_;
  }

  void field(const char* key, std::int64_t value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRId64, sep(), key, value);
    buf_ += buf;
  }
  void field(const char* key, std::uint64_t value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, sep(), key, value);
    buf_ += buf;
  }
  void field(const char* key, double value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.10g", sep(), key, value);
    buf_ += buf;
  }
  void field(const char* key, const char* value) {
    buf_ += sep();
    buf_ += '"';
    buf_ += key;
    buf_ += "\":\"";
    buf_ += value;  // values are enum names: never need escaping
    buf_ += '"';
  }
  void field(const char* key, bool value) {
    buf_ += sep();
    buf_ += '"';
    buf_ += key;
    buf_ += value ? "\":true" : "\":false";
  }

 private:
  const char* sep() { return buf_.size() > 1 ? "," : ""; }
  std::ostream& out_;
  std::string buf_;
};

const char* drop_reason_name(std::int64_t reason) {
  switch (reason) {
    case 0: return "loss";
    case 1: return "middlebox";
    case 2: return "no_receiver";
  }
  return "?";
}

const char* outcome_name(std::int64_t outcome) {
  switch (outcome) {
    case 0: return "adopt";
    case 1: return "keep_local";
    case 2: return "ta_fallback";
    case 3: return "no_answers";
  }
  return "?";
}

}  // namespace

void write_prometheus(const Registry& registry, std::ostream& out) {
  registry.write_prometheus(out);
}

void write_csv(const Registry& registry, std::ostream& out) {
  registry.write_csv(out);
}

void write_json_line(const TraceEvent& event, std::ostream& out) {
  JsonWriter w(out);
  w.begin();
  w.field("t", static_cast<std::int64_t>(event.at));
  w.field("type", to_string(event.type));
  if (event.node != 0) w.field("node", static_cast<std::int64_t>(event.node));
  switch (event.type) {
    case TraceEventType::kStateChange:
      w.field("from", event.a);
      w.field("to", event.b);
      break;
    case TraceEventType::kAdoption:
      w.field("source", static_cast<std::int64_t>(event.peer));
      w.field("before", event.a);
      w.field("adopted", event.b);
      w.field("step_ns", event.b - event.a);
      break;
    case TraceEventType::kAex:
      w.field("count", event.a);
      break;
    case TraceEventType::kIncAlarm:
      w.field("window_failed", event.a != 0);
      w.field("continuity_failed", event.b != 0);
      break;
    case TraceEventType::kCalibration:
      w.field("f_hz", event.x);
      w.field("r2", event.y);
      w.field("samples", event.a);
      break;
    case TraceEventType::kPeerQuery:
      w.field("request", event.a);
      w.field("proactive", event.b != 0);
      break;
    case TraceEventType::kPeerResponse:
      w.field("peer", static_cast<std::int64_t>(event.peer));
      w.field("request", event.a);
      w.field("tainted", event.b != 0);
      break;
    case TraceEventType::kPeerOutcome:
      w.field("request", event.a);
      w.field("outcome", outcome_name(event.b));
      if (event.peer != 0) {
        w.field("source", static_cast<std::int64_t>(event.peer));
      }
      break;
    case TraceEventType::kTaRequest:
      w.field("request", event.a);
      w.field("wait_s", event.x);
      break;
    case TraceEventType::kTaResponse:
      w.field("request", event.a);
      w.field("ta_time", event.b);
      break;
    case TraceEventType::kTaFallback:
      w.field("count", event.a);
      break;
    case TraceEventType::kTaServe:
      w.field("client", static_cast<std::int64_t>(event.peer));
      w.field("request", event.a);
      w.field("wait_s", event.x);
      break;
    case TraceEventType::kPacketSend:
      w.field("dst", static_cast<std::int64_t>(event.peer));
      w.field("packet", event.a);
      w.field("bytes", event.b);
      break;
    case TraceEventType::kPacketDrop:
      w.field("dst", static_cast<std::int64_t>(event.peer));
      w.field("packet", event.a);
      w.field("reason", drop_reason_name(event.b));
      break;
    case TraceEventType::kPacketDeliver:
      w.field("src", static_cast<std::int64_t>(event.peer));
      w.field("packet", event.a);
      w.field("bytes", event.b);
      break;
    case TraceEventType::kHandshake:
      w.field("peer", static_cast<std::int64_t>(event.peer));
      w.field("ok", event.a != 0);
      break;
    case TraceEventType::kBadFrame:
      w.field("src", static_cast<std::int64_t>(event.peer));
      w.field("count", event.a);
      break;
    case TraceEventType::kClockStep:
      w.field("offset_ns", event.a);
      break;
  }
  w.end();
}

void write_jsonl(const RingTraceSink& sink, std::ostream& out) {
  sink.for_each([&out](const TraceEvent& event) {
    write_json_line(event, out);
    out << '\n';
  });
}

}  // namespace triad::obs
