#include "obs/export.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>

#include "obs/detect.h"
#include "obs/prof.h"

namespace triad::obs {
namespace {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  // Single-char form: GCC 12's -Wrestrict false-fires on the C-string
  // assign under -fsanitize=address,undefined at -O2.
  void begin() { buf_ = '{'; }
  void end() {
    buf_ += '}';
    out_ << buf_;
  }

  void field(const char* key, std::int64_t value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRId64, sep(), key, value);
    buf_ += buf;
  }
  void field(const char* key, std::uint64_t value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, sep(), key, value);
    buf_ += buf;
  }
  void field(const char* key, double value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.10g", sep(), key, value);
    buf_ += buf;
  }
  void field(const char* key, const char* value) {
    buf_ += sep();
    buf_ += '"';
    buf_ += key;
    buf_ += "\":\"";
    buf_ += value;  // values are enum names: never need escaping
    buf_ += '"';
  }
  void field(const char* key, bool value) {
    buf_ += sep();
    buf_ += '"';
    buf_ += key;
    buf_ += value ? "\":true" : "\":false";
  }

 private:
  const char* sep() { return buf_.size() > 1 ? "," : ""; }
  std::ostream& out_;
  std::string buf_;
};

const char* drop_reason_name(std::int64_t reason) {
  switch (reason) {
    case 0: return "loss";
    case 1: return "middlebox";
    case 2: return "no_receiver";
  }
  return "?";
}

const char* outcome_name(std::int64_t outcome) {
  switch (outcome) {
    case 0: return "adopt";
    case 1: return "keep_local";
    case 2: return "ta_fallback";
    case 3: return "no_answers";
  }
  return "?";
}

}  // namespace

void write_prometheus(const Registry& registry, std::ostream& out) {
  PROF_SCOPE("obs/export_prometheus");
  registry.write_prometheus(out);
}

void write_csv(const Registry& registry, std::ostream& out) {
  PROF_SCOPE("obs/export_csv");
  registry.write_csv(out);
}

void write_json_line(const TraceEvent& event, std::ostream& out) {
  JsonWriter w(out);
  w.begin();
  w.field("t", static_cast<std::int64_t>(event.at));
  w.field("type", to_string(event.type));
  if (event.node != 0) w.field("node", static_cast<std::int64_t>(event.node));
  if (event.span != 0) {
    w.field("span", static_cast<std::uint64_t>(event.span));
  }
  switch (event.type) {
    case TraceEventType::kStateChange:
      w.field("from", event.a);
      w.field("to", event.b);
      break;
    case TraceEventType::kAdoption:
      w.field("source", static_cast<std::int64_t>(event.peer));
      w.field("before", event.a);
      w.field("adopted", event.b);
      w.field("step_ns", event.b - event.a);
      break;
    case TraceEventType::kAex:
      w.field("count", event.a);
      break;
    case TraceEventType::kIncAlarm:
      w.field("window_failed", event.a != 0);
      w.field("continuity_failed", event.b != 0);
      break;
    case TraceEventType::kCalibration:
      w.field("f_hz", event.x);
      w.field("r2", event.y);
      w.field("samples", event.a);
      break;
    case TraceEventType::kPeerQuery:
      w.field("request", event.a);
      w.field("proactive", event.b != 0);
      break;
    case TraceEventType::kPeerResponse:
      w.field("peer", static_cast<std::int64_t>(event.peer));
      w.field("request", event.a);
      w.field("tainted", event.b != 0);
      break;
    case TraceEventType::kPeerOutcome:
      w.field("request", event.a);
      w.field("outcome", outcome_name(event.b));
      if (event.peer != 0) {
        w.field("source", static_cast<std::int64_t>(event.peer));
      }
      break;
    case TraceEventType::kTaRequest:
      w.field("request", event.a);
      w.field("wait_s", event.x);
      break;
    case TraceEventType::kTaResponse:
      w.field("request", event.a);
      w.field("ta_time", event.b);
      break;
    case TraceEventType::kTaFallback:
      w.field("count", event.a);
      break;
    case TraceEventType::kTaServe:
      w.field("client", static_cast<std::int64_t>(event.peer));
      w.field("request", event.a);
      w.field("wait_s", event.x);
      break;
    case TraceEventType::kPacketSend:
      w.field("dst", static_cast<std::int64_t>(event.peer));
      w.field("packet", event.a);
      w.field("bytes", event.b);
      break;
    case TraceEventType::kPacketDrop:
      w.field("dst", static_cast<std::int64_t>(event.peer));
      w.field("packet", event.a);
      w.field("reason", drop_reason_name(event.b));
      break;
    case TraceEventType::kPacketDeliver:
      w.field("src", static_cast<std::int64_t>(event.peer));
      w.field("packet", event.a);
      w.field("bytes", event.b);
      break;
    case TraceEventType::kHandshake:
      w.field("peer", static_cast<std::int64_t>(event.peer));
      w.field("ok", event.a != 0);
      break;
    case TraceEventType::kBadFrame:
      w.field("src", static_cast<std::int64_t>(event.peer));
      w.field("count", event.a);
      break;
    case TraceEventType::kClockStep:
      w.field("offset_ns", event.a);
      break;
    case TraceEventType::kDetectorAlarm:
      w.field("detector",
              to_string(static_cast<DetectorKind>(event.a)));
      w.field("n", event.b);
      if (event.peer != 0) {
        w.field("source", static_cast<std::int64_t>(event.peer));
      }
      w.field("value", event.x);
      w.field("threshold", event.y);
      break;
  }
  w.end();
}

void write_jsonl(const RingTraceSink& sink, std::ostream& out) {
  PROF_SCOPE("obs/export_jsonl");
  sink.for_each([&out](const TraceEvent& event) {
    write_json_line(event, out);
    out << '\n';
  });
}

namespace {

// --- parse_json_line ------------------------------------------------------
//
// The writer emits a flat object of number/string/bool fields with no
// escapes (string values are enum names), so a tiny hand scanner is
// enough — no JSON library needed, and strictness (nullopt on any
// surprise) keeps the two sides honest.

struct JsonScanner {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\r')) {
      ++pos;
    }
  }
  bool accept(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  char peek() {
    skip_ws();
    return pos < text.size() ? text[pos] : '\0';
  }
  /// Reads a quoted string (writer output never contains escapes).
  bool string_token(std::string_view* out) {
    if (!accept('"')) return false;
    const std::size_t start = pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') return false;
      ++pos;
    }
    if (pos >= text.size()) return false;
    *out = text.substr(start, pos - start);
    ++pos;  // closing quote
    return true;
  }
  /// Reads an unquoted value token (number, true, false).
  bool bare_token(std::string_view* out) {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() && text[pos] != ',' && text[pos] != '}' &&
           text[pos] != ' ') {
      ++pos;
    }
    *out = text.substr(start, pos - start);
    return !out->empty();
  }
};

bool parse_i64(std::string_view token, std::int64_t* out) {
  const std::string buf(token);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool parse_f64(std::string_view token, double* out) {
  const std::string buf(token);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool parse_bool(std::string_view token, std::int64_t* out) {
  if (token == "true") {
    *out = 1;
    return true;
  }
  if (token == "false") {
    *out = 0;
    return true;
  }
  return false;
}

std::optional<TraceEventType> type_from_name(std::string_view name) {
  for (int i = 0; i <= static_cast<int>(TraceEventType::kDetectorAlarm);
       ++i) {
    const auto type = static_cast<TraceEventType>(i);
    if (name == to_string(type)) return type;
  }
  return std::nullopt;
}

bool outcome_from_name(std::string_view name, std::int64_t* out) {
  for (std::int64_t v = 0; v <= 3; ++v) {
    if (name == outcome_name(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

bool drop_reason_from_name(std::string_view name, std::int64_t* out) {
  for (std::int64_t v = 0; v <= 2; ++v) {
    if (name == drop_reason_name(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

bool detector_from_name(std::string_view name, std::int64_t* out) {
  for (std::int64_t v = 0; v <= 2; ++v) {
    if (name == to_string(static_cast<DetectorKind>(v))) {
      *out = v;
      return true;
    }
  }
  return false;
}

/// Applies one key/value pair. The key→slot mapping is global: every
/// key the writer emits names the same TraceEvent slot regardless of
/// event type, so the parser needs no per-type dispatch.
bool apply_field(TraceEvent* event, std::string_view key,
                 std::string_view value, bool quoted) {
  std::int64_t i64 = 0;
  double f64 = 0.0;

  // Endpoint slots.
  if (key == "node" || key == "peer" || key == "source" || key == "dst" ||
      key == "src" || key == "client") {
    if (!parse_i64(value, &i64) || i64 < 0) return false;
    if (key == "node") {
      event->node = static_cast<NodeId>(i64);
    } else {
      event->peer = static_cast<NodeId>(i64);
    }
    return true;
  }
  if (key == "span") {
    if (!parse_i64(value, &i64) || i64 < 0) return false;
    event->span = static_cast<SpanId>(i64);
    return true;
  }
  if (key == "t") {
    if (!parse_i64(value, &i64)) return false;
    event->at = i64;
    return true;
  }

  // Integer a/b slots.
  if (key == "from" || key == "count" || key == "request" ||
      key == "packet" || key == "samples" || key == "offset_ns" ||
      key == "before") {
    if (!parse_i64(value, &i64)) return false;
    event->a = i64;
    return true;
  }
  if (key == "to" || key == "adopted" || key == "ta_time" ||
      key == "bytes" || key == "n") {
    if (!parse_i64(value, &i64)) return false;
    event->b = i64;
    return true;
  }
  if (key == "step_ns") {  // derived from before/adopted; ignore
    return parse_i64(value, &i64);
  }

  // Booleans.
  if (key == "window_failed" || key == "ok") {
    if (!parse_bool(value, &i64)) return false;
    event->a = i64;
    return true;
  }
  if (key == "continuity_failed" || key == "proactive" ||
      key == "tainted") {
    if (!parse_bool(value, &i64)) return false;
    event->b = i64;
    return true;
  }

  // Doubles.
  if (key == "f_hz" || key == "wait_s" || key == "value") {
    if (!parse_f64(value, &f64)) return false;
    event->x = f64;
    return true;
  }
  if (key == "r2" || key == "threshold") {
    if (!parse_f64(value, &f64)) return false;
    event->y = f64;
    return true;
  }

  // Enum names.
  if (key == "outcome") {
    if (!quoted || !outcome_from_name(value, &i64)) return false;
    event->b = i64;
    return true;
  }
  if (key == "reason") {
    if (!quoted || !drop_reason_from_name(value, &i64)) return false;
    event->b = i64;
    return true;
  }
  if (key == "detector") {
    if (!quoted || !detector_from_name(value, &i64)) return false;
    event->a = i64;
    return true;
  }
  return false;  // unknown key
}

}  // namespace

std::optional<TraceEvent> parse_json_line(std::string_view line) {
  JsonScanner scan{line};
  if (!scan.accept('{')) return std::nullopt;
  TraceEvent event;
  bool have_type = false;
  while (!scan.accept('}')) {
    std::string_view key;
    if (!scan.string_token(&key) || !scan.accept(':')) return std::nullopt;
    std::string_view value;
    const bool quoted = scan.peek() == '"';
    if (quoted ? !scan.string_token(&value) : !scan.bare_token(&value)) {
      return std::nullopt;
    }
    if (key == "type") {
      const auto type = quoted ? type_from_name(value) : std::nullopt;
      if (!type) return std::nullopt;
      event.type = *type;
      have_type = true;
    } else if (!apply_field(&event, key, value, quoted)) {
      return std::nullopt;
    }
    if (scan.peek() == ',') scan.accept(',');
  }
  scan.skip_ws();
  if (!have_type || scan.pos != line.size()) return std::nullopt;
  return event;
}

std::vector<TraceEvent> parse_jsonl(std::string_view text,
                                    std::size_t* rejected) {
  std::vector<TraceEvent> events;
  if (rejected != nullptr) *rejected = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t newline = text.find('\n', start);
    const std::string_view line = text.substr(
        start, newline == std::string_view::npos ? text.size() - start
                                                 : newline - start);
    if (!line.empty()) {
      if (const auto event = parse_json_line(line)) {
        events.push_back(*event);
      } else if (rejected != nullptr) {
        ++*rejected;
      }
    }
    if (newline == std::string_view::npos) break;
    start = newline + 1;
  }
  return events;
}

}  // namespace triad::obs
