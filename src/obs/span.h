// Causal spans over the protocol trace.
//
// A SpanId groups every trace event of one causal episode on one node:
// a taint episode (kAex → kPeerQuery → kPeerResponse* → kPeerOutcome →
// kAdoption | kTaFallback…) or a calibration (kTaRequest/kTaResponse
// round-trips → kCalibration → kAdoption). Nodes assign ids locally —
// the id composes the node address with a per-node sequence number, so
// ids are cluster-unique without coordination — and the id travels
// inside sealed requests (triad/messages.h) so the serving endpoint's
// events (kTaServe) carry the requester's span.
//
// SpanIndex rebuilds the per-episode spans from any recorded event
// stream (a RingTraceSink or a parsed JSONL dump) and links them
// causally *across* nodes: a span that adopted a peer's clock points at
// the span in which that peer last calibrated — the edge that turns an
// F− trace into a propagation chain (victim calibrates a poisoned
// frequency → honest node adopts the victim's clock → …).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.h"
#include "util/types.h"

namespace triad::obs {

/// Number of low bits holding the opening node's address. 10 bits =
/// 1023 addressable endpoints, leaving 22 bits (~4M episodes per node)
/// for the sequence — weeks of virtual time at protocol rates.
inline constexpr std::uint32_t kSpanNodeBits = 10;
inline constexpr std::uint32_t kSpanNodeMask = (1u << kSpanNodeBits) - 1;

/// Composes a span id. `seq` must be >= 1 (0 would collide with "no
/// span" for node 0).
[[nodiscard]] constexpr SpanId make_span_id(NodeId node, std::uint32_t seq) {
  return (seq << kSpanNodeBits) | (node & kSpanNodeMask);
}

[[nodiscard]] constexpr NodeId span_node(SpanId id) {
  return id & kSpanNodeMask;
}

[[nodiscard]] constexpr std::uint32_t span_seq(SpanId id) {
  return id >> kSpanNodeBits;
}

/// What kind of episode a reconstructed span covers.
enum class SpanKind : std::uint8_t {
  kCalibration,  // contains a completed frequency calibration
  kUntaint,      // AEX recovery / proactive peer round, no calibration
};

[[nodiscard]] const char* to_string(SpanKind kind);

/// One reconstructed causal episode.
struct Span {
  SpanId id = 0;
  NodeId node = 0;  // opening node (== span_node(id))
  SpanKind kind = SpanKind::kUntaint;
  SimTime start = 0;  // first event's timestamp
  SimTime end = 0;    // last event's timestamp
  /// Indices into SpanIndex::events(), in trace order.
  std::vector<std::size_t> events;

  /// Cross-node causal parent: the span in which the adoption source
  /// last calibrated its frequency (0 = none — TA-sourced adoptions and
  /// spans without an adoption have no parent).
  SpanId cause = 0;

  // Summary facts pulled out of the events for cheap downstream use.
  bool has_adoption = false;
  NodeId adoption_source = 0;       // peer or TA address
  SimTime adoption_at = 0;
  std::int64_t adoption_step_ns = 0;
  bool has_calibration = false;
  double calib_slope_hz = 0.0;  // last kCalibration in the span
  double calib_r2 = 0.0;
  SimTime calib_at = 0;
};

/// One node's recorded trace stream, as shipped by its telemetry
/// endpoint (/trace) or dumped at exit (--trace). `node` is the stream's
/// origin — the daemon that recorded it — not necessarily the subject of
/// every event in it (a TA stream carries kTaServe events whose span
/// belongs to a remote requester).
struct NodeStream {
  NodeId node = 0;
  std::vector<TraceEvent> events;
};

/// Total order on events used by the multi-stream merge tie-break:
/// lexicographic on every field (at, type, node, peer, span, a, b, x, y).
[[nodiscard]] bool trace_event_less(const TraceEvent& lhs,
                                    const TraceEvent& rhs);

/// The merge's stream order: origin node first, content as tie-break.
[[nodiscard]] bool node_stream_less(const NodeStream& lhs,
                                    const NodeStream& rhs);

/// Merges per-node trace streams into one deterministic cluster
/// timeline: streams are ordered by (origin node, then event content) and
/// concatenated, each stream keeping its internal order. Node-primary
/// ordering is deliberate — RealEnv timestamps are per-process epochs
/// (ns since daemon start), so cross-node `at` comparison is
/// meaningless; what must survive the merge is each node's event order,
/// which is what the detectors and SpanIndex consume. The result is
/// byte-identical regardless of the order streams are passed in
/// (merge(a,b) == merge(b,a)), the contract DESIGN.md §2.6 pins down.
[[nodiscard]] std::vector<TraceEvent> merge_node_streams(
    std::vector<NodeStream> streams);

/// Rebuilds spans from a recorded event stream. The index owns a copy of
/// the events; spans appear in order of their first event.
class SpanIndex {
 public:
  explicit SpanIndex(std::vector<TraceEvent> events);
  explicit SpanIndex(const RingTraceSink& sink);
  /// Index over a merged cluster timeline (see merge_node_streams). A
  /// span opened on one node and served on another (kTaServe carrying
  /// the requester's id) lands in one Span spanning both streams.
  explicit SpanIndex(std::vector<NodeStream> streams);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }

  /// Looks a span up by id; nullptr when the id never appeared.
  [[nodiscard]] const Span* find(SpanId id) const;

  /// Walks the cross-node cause chain starting at `id`: the span itself,
  /// then its cause, then that span's cause… Cycle-safe (each span is
  /// visited at most once); empty when `id` is unknown.
  [[nodiscard]] std::vector<const Span*> chain(SpanId id) const;

 private:
  void build();

  std::vector<TraceEvent> events_;
  std::vector<Span> spans_;
};

}  // namespace triad::obs
