#include "obs/trace.h"

#include <algorithm>
#include <stdexcept>

namespace triad::obs {

const char* to_string(TraceEventType type) {
  switch (type) {
    case TraceEventType::kStateChange: return "state_change";
    case TraceEventType::kAdoption: return "adoption";
    case TraceEventType::kAex: return "aex";
    case TraceEventType::kIncAlarm: return "inc_alarm";
    case TraceEventType::kCalibration: return "calibration";
    case TraceEventType::kPeerQuery: return "peer_query";
    case TraceEventType::kPeerResponse: return "peer_response";
    case TraceEventType::kPeerOutcome: return "peer_outcome";
    case TraceEventType::kTaRequest: return "ta_request";
    case TraceEventType::kTaResponse: return "ta_response";
    case TraceEventType::kTaFallback: return "ta_fallback";
    case TraceEventType::kTaServe: return "ta_serve";
    case TraceEventType::kPacketSend: return "packet_send";
    case TraceEventType::kPacketDrop: return "packet_drop";
    case TraceEventType::kPacketDeliver: return "packet_deliver";
    case TraceEventType::kHandshake: return "handshake";
    case TraceEventType::kBadFrame: return "bad_frame";
    case TraceEventType::kClockStep: return "clock_step";
    case TraceEventType::kDetectorAlarm: return "detector_alarm";
  }
  return "?";
}

RingTraceSink::RingTraceSink(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("RingTraceSink: capacity must be > 0");
  }
  ring_.reserve(capacity_);
}

void RingTraceSink::emit(const TraceEvent& event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[total_ % capacity_] = event;
  }
  ++total_;
}

std::size_t RingTraceSink::size() const { return ring_.size(); }

void RingTraceSink::for_each(
    const std::function<void(const TraceEvent&)>& fn) const {
  if (ring_.size() < capacity_) {
    for (const TraceEvent& event : ring_) fn(event);
    return;
  }
  const std::size_t start = total_ % capacity_;  // oldest retained event
  for (std::size_t i = 0; i < capacity_; ++i) {
    fn(ring_[(start + i) % capacity_]);
  }
}

std::vector<TraceEvent> RingTraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  for_each([&out](const TraceEvent& event) { out.push_back(event); });
  return out;
}

void RingTraceSink::clear() {
  ring_.clear();
  total_ = 0;
}

void TeeTraceSink::add(TraceSink* sink) {
  if (sink == nullptr) throw std::invalid_argument("TeeTraceSink: null sink");
  sinks_.push_back(sink);
}

void TeeTraceSink::remove(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void TeeTraceSink::emit(const TraceEvent& event) {
  for (TraceSink* sink : sinks_) sink->emit(event);
}

}  // namespace triad::obs
