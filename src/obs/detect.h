// Online attack detectors over the protocol trace.
//
// The F+/F− calibration attacks (attacks/delay_attack.h) leave three
// statistical fingerprints the paper's analysis reads off manually:
//   * a calibrated TSC frequency far from the cluster's consensus
//     (F− ≈ 0.9·F, F+ ≈ 1.1·F — §IV-B);
//   * cluster-wide disagreement between calibrated frequencies where
//     honest runs agree to ~100 ppm (the NTP "false chimer" signal,
//     Marzullo-style);
//   * honest nodes taking outsized forward jumps when they adopt the
//     fast clock (Fig. 6 infection steps, orders of magnitude above the
//     sub-ms drift-repair jumps of a healthy cluster).
// Each fingerprint gets a Detector. Detectors are pure trace consumers:
// fed from a TeeTraceSink next to the recording ring, they see exactly
// what a post-hoc reader sees, so the same objects run online inside a
// Scenario and offline inside the `triad_trace` forensic CLI — verdicts
// are identical by construction.
//
// DetectorBank owns a detector set, surfaces alarm counts/first-alarm
// time in the metrics Registry (triad_detector_* families), and appends
// kDetectorAlarm events to the trace so alarms land in causal context.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/types.h"

namespace triad::obs {

enum class DetectorKind : std::uint8_t {
  kSlope = 0,         // calibration slope vs cluster median (or nominal)
  kDisagreement = 1,  // width of the cluster's slope spread
  kJump = 2,          // per-adoption forward jump vs recent median
};

[[nodiscard]] const char* to_string(DetectorKind kind);

struct DetectorConfig {
  /// TA address: TA-sourced adoptions are ground truth and never count
  /// as suspicious jumps. 0 disables the exclusion.
  NodeId ta_address = 0;

  /// Slope detector: alarm when a node's calibrated frequency deviates
  /// more than this (ppm) from the cluster median — honest calibrations
  /// land within a few hundred ppm of each other; the paper's F+/F−
  /// poison by ±10% (±100000 ppm).
  double slope_tolerance_ppm = 10000.0;
  /// Optional prior for the true TSC frequency (Hz). When set, slopes
  /// are also checked against it (works from the first calibration, no
  /// quorum needed); 0 = cluster-relative only.
  double nominal_frequency_hz = 0.0;
  /// Cluster-relative checks need at least this many calibrated nodes
  /// (a median of fewer is dominated by the outlier itself).
  std::size_t slope_quorum = 3;

  /// Disagreement detector: alarm when (max−min)/median of the latest
  /// per-node slopes exceeds this width (ppm). Edge-triggered: one alarm
  /// per excursion above the threshold, re-armed when the spread heals.
  double disagreement_width_ppm = 10000.0;

  /// Jump detector: a peer-sourced forward step is suspicious when it
  /// exceeds max(jump_floor_ms, jump_median_factor × median of recent
  /// steps). The floor separates infection jumps (tens of ms and up,
  /// growing +~100 ms/s under the paper F−) from the sub-ms
  /// drift-repair steps of a healthy cluster.
  double jump_floor_ms = 5.0;
  double jump_median_factor = 8.0;
  /// How many recent steps feed the running median.
  std::size_t jump_window = 64;
};

/// One detector verdict.
struct Alarm {
  SimTime at = 0;
  DetectorKind detector = DetectorKind::kSlope;
  NodeId node = 0;    // implicated endpoint (jump: the node that jumped)
  NodeId source = 0;  // secondary endpoint (jump: adoption source)
  SpanId span = 0;    // causal span of the triggering event
  double value = 0.0;      // measured statistic (ppm or ms)
  double threshold = 0.0;  // limit it crossed
};

/// A pluggable trace analyzer. on_event appends any alarms the event
/// triggers; implementations must be deterministic functions of the
/// event sequence (the online/offline equivalence rests on it).
class Detector {
 public:
  virtual ~Detector() = default;
  [[nodiscard]] virtual DetectorKind kind() const = 0;
  virtual void on_event(const TraceEvent& event,
                        std::vector<Alarm>* out) = 0;
};

[[nodiscard]] std::unique_ptr<Detector> make_slope_detector(
    const DetectorConfig& config);
[[nodiscard]] std::unique_ptr<Detector> make_disagreement_detector(
    const DetectorConfig& config);
[[nodiscard]] std::unique_ptr<Detector> make_jump_detector(
    const DetectorConfig& config);

/// Owns a detector set and fans trace events through it.
///
/// Wire it as one leg of a TeeTraceSink (exp::Scenario does this when
/// ScenarioConfig::enable_detectors is set), or feed it a recorded event
/// stream directly for offline analysis. Alarms are collected in order,
/// counted per detector in `registry` (triad_detector_alarms_total,
/// triad_detector_first_alarm_seconds), and appended to `alarm_sink` as
/// kDetectorAlarm events stamped with the triggering event's time and
/// span. Both registry and alarm_sink may be null.
class DetectorBank final : public TraceSink {
 public:
  /// Bank with the three standard detectors.
  DetectorBank(const DetectorConfig& config, Registry* registry,
               TraceSink* alarm_sink);
  /// Bank with a custom detector set (tests, ablations).
  DetectorBank(std::vector<std::unique_ptr<Detector>> detectors,
               Registry* registry, TraceSink* alarm_sink);

  void emit(const TraceEvent& event) override;

  [[nodiscard]] const std::vector<Alarm>& alarms() const { return alarms_; }
  /// Timestamp of the first alarm; -1 while none fired.
  [[nodiscard]] SimTime first_alarm_at() const { return first_alarm_at_; }

 private:
  void register_metrics(Registry* registry);

  std::vector<std::unique_ptr<Detector>> detectors_;
  TraceSink* alarm_sink_;
  std::vector<Alarm> alarms_;
  std::vector<Alarm> scratch_;
  SimTime first_alarm_at_ = -1;
  Counter alarm_counters_[3];  // indexed by DetectorKind
  Gauge first_alarm_gauge_;
};

}  // namespace triad::obs
