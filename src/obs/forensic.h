// Offline forensics over a recorded protocol trace.
//
// Takes the event stream a Scenario recorded (or a JSONL dump parsed
// back with obs::parse_jsonl), replays it through the standard detector
// bank, rebuilds causal spans, and renders an attack-propagation report:
// which node calibrated a poisoned frequency, who adopted whose clock,
// how long detection lagged the first infection jump. The `triad_trace`
// CLI (examples/triad_trace.cpp) is a thin wrapper around this.
//
// Output is byte-deterministic for a given event stream: fixed number
// formatting, no timestamps or environment lookups.
#pragma once

#include <string>
#include <vector>

#include "obs/detect.h"
#include "obs/trace.h"

namespace triad::obs {

struct ForensicOptions {
  /// Render a JSON object instead of the human-readable text report.
  bool json = false;
  /// Forward adoption steps below this are drift repair, not infection;
  /// they stay out of the timeline (matches DetectorConfig::jump_floor_ms).
  double min_jump_ms = 5.0;
  /// Detector thresholds for the replay. ta_address 0 = infer it from
  /// the trace (the endpoint serving kTaServe events).
  DetectorConfig detector_config;
};

/// Replays `events` (trace order) and renders the forensic report.
[[nodiscard]] std::string forensic_report(std::vector<TraceEvent> events,
                                          const ForensicOptions& options = {});

}  // namespace triad::obs
