#include "obs/span.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>

namespace triad::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCalibration: return "calibration";
    case SpanKind::kUntaint: return "untaint";
  }
  return "?";
}

bool trace_event_less(const TraceEvent& lhs, const TraceEvent& rhs) {
  return std::tie(lhs.at, lhs.type, lhs.node, lhs.peer, lhs.span, lhs.a,
                  lhs.b, lhs.x, lhs.y) <
         std::tie(rhs.at, rhs.type, rhs.node, rhs.peer, rhs.span, rhs.a,
                  rhs.b, rhs.x, rhs.y);
}

// Streams sort by origin node; two streams claiming the same node (a
// re-shipped dump, a misconfigured id) fall back to content comparison
// so the merge stays a total order either way.
bool node_stream_less(const NodeStream& lhs, const NodeStream& rhs) {
  if (lhs.node != rhs.node) return lhs.node < rhs.node;
  const std::size_t n = std::min(lhs.events.size(), rhs.events.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (trace_event_less(lhs.events[i], rhs.events[i])) return true;
    if (trace_event_less(rhs.events[i], lhs.events[i])) return false;
  }
  return lhs.events.size() < rhs.events.size();
}

std::vector<TraceEvent> merge_node_streams(std::vector<NodeStream> streams) {
  std::sort(streams.begin(), streams.end(), node_stream_less);
  std::size_t total = 0;
  for (const NodeStream& stream : streams) total += stream.events.size();
  std::vector<TraceEvent> merged;
  merged.reserve(total);
  for (const NodeStream& stream : streams) {
    merged.insert(merged.end(), stream.events.begin(), stream.events.end());
  }
  return merged;
}

SpanIndex::SpanIndex(std::vector<TraceEvent> events)
    : events_(std::move(events)) {
  build();
}

SpanIndex::SpanIndex(std::vector<NodeStream> streams)
    : events_(merge_node_streams(std::move(streams))) {
  build();
}

SpanIndex::SpanIndex(const RingTraceSink& sink) : events_(sink.events()) {
  build();
}

void SpanIndex::build() {
  std::unordered_map<SpanId, std::size_t> index;  // id -> spans_ position
  // The span in which each node last completed a frequency calibration,
  // as of the current trace position. An adoption *from* that node is
  // causally downstream of it: the source's clock (rate and offset) is
  // whatever that calibration plus later adoptions made it.
  std::unordered_map<NodeId, SpanId> last_calibration;

  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& event = events_[i];
    if (event.span == 0) continue;
    auto [it, fresh] = index.try_emplace(event.span, spans_.size());
    if (fresh) {
      Span span;
      span.id = event.span;
      span.node = span_node(event.span);
      span.start = event.at;
      spans_.push_back(std::move(span));
    }
    Span& span = spans_[it->second];
    span.end = event.at;
    span.events.push_back(i);

    switch (event.type) {
      case TraceEventType::kCalibration:
        span.kind = SpanKind::kCalibration;
        span.has_calibration = true;
        span.calib_slope_hz = event.x;
        span.calib_r2 = event.y;
        span.calib_at = event.at;
        last_calibration[event.node] = event.span;
        break;
      case TraceEventType::kAdoption: {
        span.has_adoption = true;
        span.adoption_source = event.peer;
        span.adoption_at = event.at;
        span.adoption_step_ns = event.b - event.a;
        const auto calib = last_calibration.find(event.peer);
        // Peer-sourced adoptions point at the source's calibration span
        // (the TA never calibrates, so TA adoptions keep cause == 0).
        span.cause = calib != last_calibration.end() ? calib->second : 0;
        break;
      }
      default:
        break;
    }
  }
}

const Span* SpanIndex::find(SpanId id) const {
  for (const Span& span : spans_) {
    if (span.id == id) return &span;
  }
  return nullptr;
}

std::vector<const Span*> SpanIndex::chain(SpanId id) const {
  std::vector<const Span*> out;
  SpanId next = id;
  while (next != 0) {
    const Span* span = find(next);
    if (span == nullptr) break;
    bool seen = false;
    for (const Span* visited : out) seen |= visited == span;
    if (seen) break;  // defensive: malformed traces must not loop us
    out.push_back(span);
    next = span->cause;
  }
  return out;
}

}  // namespace triad::obs
