#include "obs/span.h"

#include <unordered_map>

namespace triad::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCalibration: return "calibration";
    case SpanKind::kUntaint: return "untaint";
  }
  return "?";
}

SpanIndex::SpanIndex(std::vector<TraceEvent> events)
    : events_(std::move(events)) {
  build();
}

SpanIndex::SpanIndex(const RingTraceSink& sink) : events_(sink.events()) {
  build();
}

void SpanIndex::build() {
  std::unordered_map<SpanId, std::size_t> index;  // id -> spans_ position
  // The span in which each node last completed a frequency calibration,
  // as of the current trace position. An adoption *from* that node is
  // causally downstream of it: the source's clock (rate and offset) is
  // whatever that calibration plus later adoptions made it.
  std::unordered_map<NodeId, SpanId> last_calibration;

  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& event = events_[i];
    if (event.span == 0) continue;
    auto [it, fresh] = index.try_emplace(event.span, spans_.size());
    if (fresh) {
      Span span;
      span.id = event.span;
      span.node = span_node(event.span);
      span.start = event.at;
      spans_.push_back(std::move(span));
    }
    Span& span = spans_[it->second];
    span.end = event.at;
    span.events.push_back(i);

    switch (event.type) {
      case TraceEventType::kCalibration:
        span.kind = SpanKind::kCalibration;
        span.has_calibration = true;
        span.calib_slope_hz = event.x;
        span.calib_r2 = event.y;
        span.calib_at = event.at;
        last_calibration[event.node] = event.span;
        break;
      case TraceEventType::kAdoption: {
        span.has_adoption = true;
        span.adoption_source = event.peer;
        span.adoption_at = event.at;
        span.adoption_step_ns = event.b - event.a;
        const auto calib = last_calibration.find(event.peer);
        // Peer-sourced adoptions point at the source's calibration span
        // (the TA never calibrates, so TA adoptions keep cause == 0).
        span.cause = calib != last_calibration.end() ? calib->second : 0;
        break;
      }
      default:
        break;
    }
  }
}

const Span* SpanIndex::find(SpanId id) const {
  for (const Span& span : spans_) {
    if (span.id == id) return &span;
  }
  return nullptr;
}

std::vector<const Span*> SpanIndex::chain(SpanId id) const {
  std::vector<const Span*> out;
  SpanId next = id;
  while (next != 0) {
    const Span* span = find(next);
    if (span == nullptr) break;
    bool seen = false;
    for (const Span* visited : out) seen |= visited == span;
    if (seen) break;  // defensive: malformed traces must not loop us
    out.push_back(span);
    next = span->cause;
  }
  return out;
}

}  // namespace triad::obs
