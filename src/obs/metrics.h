// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with a small label dimension (node=, component=).
//
// Two registration styles, both deterministic in iteration order
// (registration order, never hash order — exports must be byte-stable
// across identical runs):
//   * direct handles — counter()/gauge()/histogram() resolve the series
//     once and hand back a value-type handle whose hot-path operation is
//     a null check plus one store, with no map lookup and no allocation
//     per increment. A default-constructed handle is a no-op, so
//     components built without a registry pay a single predictable
//     branch.
//   * callback series — counter_fn()/gauge_fn() export an existing stats
//     struct field (NodeStats, NetworkStats, ...) by reading it at
//     snapshot time. Zero hot-path cost; the owner tag lets a component
//     unregister its callbacks on destruction.
//
// The registry must outlive every component bound to it (same lifetime
// rule as runtime::Env backends).
//
// Thread-ownership rule (campaign engine): a Registry and its handles
// are not synchronized — "one Registry per run". Each campaign worker's
// scenario owns a private Registry; registries are never shared across
// threads, and cross-run aggregation happens after the runs finish, on
// the RunResult scalars, never on live registries.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace triad::obs {

struct Label {
  std::string key;
  std::string value;
  friend bool operator==(const Label&, const Label&) = default;
};
using Labels = std::vector<Label>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricKind kind);

/// Monotonically increasing count. No-op when default-constructed.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) *cell_ += n;
  }
  [[nodiscard]] std::uint64_t value() const {
    return cell_ != nullptr ? *cell_ : 0;
  }
  [[nodiscard]] bool attached() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* cell) : cell_(cell) {}
  std::uint64_t* cell_ = nullptr;
};

/// Last-write-wins scalar. No-op when default-constructed.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (cell_ != nullptr) *cell_ = v;
  }
  void add(double v) {
    if (cell_ != nullptr) *cell_ += v;
  }
  [[nodiscard]] double value() const { return cell_ != nullptr ? *cell_ : 0.0; }
  [[nodiscard]] bool attached() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

/// Fixed upper bounds (ascending); the implicit +Inf bucket is counts
/// back(). observe() is a short linear scan — bucket lists stay small.
struct HistogramCell {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
  double sum = 0.0;
  std::uint64_t count = 0;
  void observe(double v);
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double v) {
    if (cell_ != nullptr) cell_->observe(v);
  }
  [[nodiscard]] bool attached() const { return cell_ != nullptr; }
  [[nodiscard]] const HistogramCell* cell() const { return cell_; }
  /// Bulk-fill access for offline importers (profiler tree export). The
  /// usual path is observe(); direct writes must keep counts/sum/count
  /// mutually consistent, since exporters trust the cell verbatim.
  [[nodiscard]] HistogramCell* mutable_cell() { return cell_; }

 private:
  friend class Registry;
  explicit Histogram(HistogramCell* cell) : cell_(cell) {}
  HistogramCell* cell_ = nullptr;
};

/// One series' exported state (see Registry::snapshot()).
struct SeriesSnapshot {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  // counter/gauge value; histogram sum
  std::uint64_t count = 0;  // histogram observation count
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // --- direct handles (pre-resolved; hot-path safe) --------------------
  /// Resolves (name, labels) to a cell, creating it on first use; the
  /// same pair always yields the same cell. Throws std::logic_error when
  /// `name` is already registered with a different kind.
  Counter counter(std::string_view name, Labels labels = {});
  Gauge gauge(std::string_view name, Labels labels = {});
  /// `bounds` must be strictly ascending; reuse of an existing series
  /// keeps the original bounds.
  Histogram histogram(std::string_view name, std::vector<double> bounds,
                      Labels labels = {});

  // --- callback series (zero hot-path cost) ----------------------------
  using ReadFn = std::function<double()>;
  /// Exports fn() as a counter/gauge series. `owner` tags the series so
  /// the registering component can unregister() it before it dies.
  void counter_fn(const void* owner, std::string_view name, Labels labels,
                  ReadFn fn);
  void gauge_fn(const void* owner, std::string_view name, Labels labels,
                ReadFn fn);
  /// Drops every callback series registered under `owner`.
  void unregister(const void* owner);

  /// Help text shown in the Prometheus export ("# HELP ..." line).
  void set_help(std::string_view name, std::string_view help);

  // --- reading ---------------------------------------------------------
  /// Every series in deterministic (registration) order.
  [[nodiscard]] std::vector<SeriesSnapshot> snapshot() const;
  /// Value of one series; nullopt when absent. Histograms report sum.
  [[nodiscard]] std::optional<double> value(std::string_view name,
                                            const Labels& labels = {}) const;
  /// Sum across all series of one family (e.g. a counter over all nodes).
  [[nodiscard]] double total(std::string_view name) const;
  [[nodiscard]] std::size_t series_count() const;

  void write_prometheus(std::ostream& out) const;
  void write_csv(std::ostream& out) const;

 private:
  struct Series {
    Labels labels;
    // Exactly one of these is set.
    std::uint64_t* counter = nullptr;
    double* gauge = nullptr;
    HistogramCell* histogram = nullptr;
    ReadFn read;
    const void* owner = nullptr;
    [[nodiscard]] double scalar_value() const;
  };
  struct Family {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    std::vector<Series> series;
  };

  Family& family(std::string_view name, MetricKind kind);
  static Series* find_series(Family& fam, const Labels& labels);

  std::vector<Family> families_;
  // Help text declared before the family's first series registers; moved
  // onto the Family at creation time.
  std::map<std::string, std::string, std::less<>> pending_help_;
  // Cells live in deques: stable addresses across growth, owned here.
  std::deque<std::uint64_t> counter_cells_;
  std::deque<double> gauge_cells_;
  std::deque<HistogramCell> histogram_cells_;
};

/// Handle helpers for optional registries: resolve when `registry` is
/// non-null, otherwise return a no-op handle.
inline Counter make_counter(Registry* registry, std::string_view name,
                            Labels labels = {}) {
  return registry != nullptr ? registry->counter(name, std::move(labels))
                             : Counter{};
}
inline Gauge make_gauge(Registry* registry, std::string_view name,
                        Labels labels = {}) {
  return registry != nullptr ? registry->gauge(name, std::move(labels))
                             : Gauge{};
}
inline Histogram make_histogram(Registry* registry, std::string_view name,
                                std::vector<double> bounds,
                                Labels labels = {}) {
  return registry != nullptr
             ? registry->histogram(name, std::move(bounds), std::move(labels))
             : Histogram{};
}

}  // namespace triad::obs
