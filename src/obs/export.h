// Exporters for the observability layer:
//   * Prometheus text exposition format for the metrics registry;
//   * JSON Lines (one object per line) for protocol traces;
//   * CSV snapshots of the registry.
//
// All exports are deterministic for identical inputs (registration-order
// iteration, fixed float formatting), so seeded runs produce
// byte-identical files — the property the determinism tests pin down.
#pragma once

#include <iosfwd>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace triad::obs {

/// Prometheus text format (# TYPE/# HELP comments + one sample per line;
/// histograms expand to _bucket/_sum/_count).
void write_prometheus(const Registry& registry, std::ostream& out);

/// Registry snapshot as "metric,kind,labels,value,count" rows.
void write_csv(const Registry& registry, std::ostream& out);

/// One event as a single-line JSON object (no trailing newline). The
/// generic a/b/x/y slots are rendered under per-type field names, e.g.
///   {"t":1500000000,"type":"adoption","node":3,"source":4,
///    "before":1499998000,"adopted":1500002000,"step_ns":4000}
void write_json_line(const TraceEvent& event, std::ostream& out);

/// Every retained event of the ring, oldest first, one line each.
void write_jsonl(const RingTraceSink& sink, std::ostream& out);

}  // namespace triad::obs
