// Exporters for the observability layer:
//   * Prometheus text exposition format for the metrics registry;
//   * JSON Lines (one object per line) for protocol traces;
//   * CSV snapshots of the registry.
//
// All exports are deterministic for identical inputs (registration-order
// iteration, fixed float formatting), so seeded runs produce
// byte-identical files — the property the determinism tests pin down.
#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace triad::obs {

/// Prometheus text format (# TYPE/# HELP comments + one sample per line;
/// histograms expand to _bucket/_sum/_count).
void write_prometheus(const Registry& registry, std::ostream& out);

/// Registry snapshot as "metric,kind,labels,value,count" rows.
void write_csv(const Registry& registry, std::ostream& out);

/// One event as a single-line JSON object (no trailing newline). The
/// generic a/b/x/y slots are rendered under per-type field names, e.g.
///   {"t":1500000000,"type":"adoption","node":3,"source":4,
///    "before":1499998000,"adopted":1500002000,"step_ns":4000}
void write_json_line(const TraceEvent& event, std::ostream& out);

/// Every retained event of the ring, oldest first, one line each.
void write_jsonl(const RingTraceSink& sink, std::ostream& out);

/// Inverse of write_json_line: parses one JSONL line back into an event.
/// Returns nullopt on malformed input, an unknown event type, or an
/// unknown key (strictness keeps writer and parser from drifting apart).
/// Derived fields (step_ns) are ignored; for every event
/// write(parse(write(e))) == write(e), which is what makes offline
/// analysis of a dumped trace deterministic.
std::optional<TraceEvent> parse_json_line(std::string_view line);

/// Parses a whole JSONL document (one event per line; blank lines are
/// skipped). Unparsable lines are counted into *rejected (when non-null)
/// and dropped — a trace dump may legitimately carry trailing garbage
/// from an interrupted run.
std::vector<TraceEvent> parse_jsonl(std::string_view text,
                                    std::size_t* rejected = nullptr);

}  // namespace triad::obs
