// Hierarchical wall-clock scope profiler.
//
// PROF_SCOPE("crypto/gcm_seal") opens an RAII scope on the calling
// thread; nested scopes build a per-thread call tree (name, call count,
// inclusive ns, and a fixed log-scale duration histogram per node).
// Scope names must be string literals (the profiler stores the pointer).
//
// Cost model: the profiler is always compiled in. Disabled (the
// default), a scope is one relaxed atomic load and a branch — the <5%
// budget on FullScenarioVirtualMinute. Enabled, it is two
// runtime::MonotonicTimer readings plus a short child scan, all on
// thread-private state: no locks, no allocation after a node's first
// visit, nothing the TSan campaign tier can race on.
//
// Threading: each thread owns a private tree, registered with the
// process-wide Profiler on first use. merge() folds every registered
// tree into one deterministic ProfTree — children sorted by name,
// counts and times summed — so the merged *structure* is independent of
// thread count and registration order; `normalize` additionally zeroes
// every duration, making the rendered tree byte-comparable across runs
// and across campaign --jobs counts. merge()/reset() require quiescence
// (no instrumented thread mid-scope): call them after worker pools have
// joined, the way src/campaign does.
//
// Render targets (see also DESIGN.md §2.5):
//   * write_text        — exclusive/inclusive table, indented by depth;
//   * write_chrome_trace — trace-event JSON for Perfetto or
//     chrome://tracing ("X" complete events; sibling scopes laid out
//     sequentially, so nesting mirrors the tree, not a real timeline);
//   * export_histograms — triad_prof_scope_seconds{path=...} into an
//     obs::Registry, one histogram series per tree path.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace triad::obs {

class Registry;

/// Per-scope duration bucket upper bounds, in nanoseconds (powers of
/// four from 256 ns to ~1.07 s; the implicit +Inf bucket is last).
inline constexpr std::array<std::uint64_t, 12> kProfBucketBoundsNs = {
    256,        1024,       4096,        16384,
    65536,      262144,     1048576,     4194304,
    16777216,   67108864,   268435456,   1073741824,
};

/// One node of the merged, deterministic profile tree.
struct ProfNode {
  std::string name;  // one path segment, e.g. "crypto/gcm_seal"
  std::uint64_t count = 0;
  std::uint64_t incl_ns = 0;
  std::array<std::uint64_t, kProfBucketBoundsNs.size() + 1> buckets{};
  std::vector<ProfNode> children;  // sorted by name

  /// Inclusive minus the children's inclusive time (never negative).
  [[nodiscard]] std::uint64_t excl_ns() const;
};

/// The merged profile: a synthetic root whose children are the
/// top-level scopes, plus the number of thread trees folded in.
struct ProfTree {
  ProfNode root;  // root.name is empty; root times are unused
  std::size_t threads = 0;

  [[nodiscard]] bool empty() const { return root.children.empty(); }
};

namespace prof_detail {

/// A thread's private call tree: an arena of nodes indexed by parent /
/// child links. Only the owning thread touches it while profiling.
class ThreadProfile {
 public:
  ThreadProfile();
  void enter(const char* name);
  void exit(std::uint64_t elapsed_ns);
  [[nodiscard]] const std::vector<struct ThreadNode>& nodes() const;

 private:
  std::vector<struct ThreadNode> nodes_;
  std::uint32_t current_ = 0;  // arena index of the open scope
};

struct ThreadNode {
  const char* name = nullptr;
  std::uint32_t parent = 0;
  std::uint64_t count = 0;
  std::uint64_t incl_ns = 0;
  std::array<std::uint64_t, kProfBucketBoundsNs.size() + 1> buckets{};
  std::vector<std::uint32_t> children;  // arena indices, visit order
};

}  // namespace prof_detail

/// Process-wide profiler registry. One instance per process; scopes are
/// cheap enough that per-run instances would buy nothing and cost a
/// pointer indirection on every scope.
class Profiler {
 public:
  static Profiler& instance();

  /// Hot-path gate, read by every PROF_SCOPE.
  [[nodiscard]] static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Folds every thread tree recorded so far (see header comment for
  /// the determinism guarantee). Requires quiescence.
  [[nodiscard]] ProfTree merge() const;

  /// Drops all recorded trees and detaches every thread's cached
  /// profile. Requires quiescence.
  void reset();

  /// The calling thread's profile, registering it on first use.
  prof_detail::ThreadProfile& thread_profile();

  // --- rendering (all deterministic given a deterministic tree) -------
  /// Indented exclusive/inclusive table. `normalize` zeroes durations.
  static void write_text(const ProfTree& tree, std::ostream& out,
                         bool normalize = false);
  /// Chrome trace-event JSON ({"traceEvents": [...]}); ts/dur in us.
  static void write_chrome_trace(const ProfTree& tree, std::ostream& out,
                                 bool normalize = false);
  /// One triad_prof_scope_seconds histogram series per tree path
  /// (label path="campaign/execute_run/sim_run").
  static void export_histograms(const ProfTree& tree, Registry& registry,
                                bool normalize = false);

 private:
  Profiler() = default;

  static std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> generation_{1};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<prof_detail::ThreadProfile>> profiles_;
};

/// RAII scope. `name` must be a string literal (or otherwise outlive
/// the profiler); use slash-separated segments: "layer/operation".
class ProfScope {
 public:
  explicit ProfScope(const char* name);
  ~ProfScope();
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

#define TRIAD_PROF_CONCAT2(a, b) a##b
#define TRIAD_PROF_CONCAT(a, b) TRIAD_PROF_CONCAT2(a, b)
/// Opens a profiler scope for the rest of the enclosing block.
#define PROF_SCOPE(name) \
  ::triad::obs::ProfScope TRIAD_PROF_CONCAT(triad_prof_scope_, __LINE__)(name)

}  // namespace triad::obs
