#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace triad::obs {
namespace {

/// Prometheus-compatible value formatting. Integral values print without
/// a decimal point (counters stay exact); everything else uses %.10g.
/// Deterministic for identical inputs, which the byte-stable export
/// guarantee rests on.
void append_value(std::string& out, double v) {
  char buf[64];
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  out += buf;
}

/// Renders {k="v",...} with minimal escaping (label values here are node
/// ids and component names; quotes/backslashes are escaped defensively).
std::string render_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const Label& label : labels) {
    if (!first) out += ',';
    first = false;
    out += label.key;
    out += "=\"";
    for (char c : label.value) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

/// Labels with one pair appended (for histogram le="...").
std::string render_labels_with(const Labels& labels, const Label& extra) {
  Labels all = labels;
  all.push_back(extra);
  return render_labels(all);
}

std::string format_bound(double bound) {
  std::string out;
  append_value(out, bound);
  return out;
}

}  // namespace

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

void HistogramCell::observe(double v) {
  std::size_t i = 0;
  while (i < bounds.size() && v > bounds[i]) ++i;
  ++counts[i];
  sum += v;
  ++count;
}

double Registry::Series::scalar_value() const {
  if (read) return read();
  if (counter != nullptr) return static_cast<double>(*counter);
  if (gauge != nullptr) return *gauge;
  if (histogram != nullptr) return histogram->sum;
  return 0.0;
}

Registry::Family& Registry::family(std::string_view name, MetricKind kind) {
  for (Family& fam : families_) {
    if (fam.name == name) {
      if (fam.kind != kind) {
        throw std::logic_error("obs::Registry: metric '" + fam.name +
                               "' re-registered as a different kind");
      }
      return fam;
    }
  }
  families_.push_back(Family{std::string(name), kind, {}, {}});
  Family& fam = families_.back();
  if (const auto it = pending_help_.find(fam.name);
      it != pending_help_.end()) {
    fam.help = it->second;
    pending_help_.erase(it);
  }
  return fam;
}

Registry::Series* Registry::find_series(Family& fam, const Labels& labels) {
  for (Series& series : fam.series) {
    if (series.labels == labels) return &series;
  }
  return nullptr;
}

Counter Registry::counter(std::string_view name, Labels labels) {
  Family& fam = family(name, MetricKind::kCounter);
  if (Series* existing = find_series(fam, labels)) {
    if (existing->counter == nullptr) {
      throw std::logic_error("obs::Registry: counter '" + fam.name +
                             "' already exported as a callback series");
    }
    return Counter(existing->counter);
  }
  counter_cells_.push_back(0);
  Series series;
  series.labels = std::move(labels);
  series.counter = &counter_cells_.back();
  fam.series.push_back(std::move(series));
  return Counter(fam.series.back().counter);
}

Gauge Registry::gauge(std::string_view name, Labels labels) {
  Family& fam = family(name, MetricKind::kGauge);
  if (Series* existing = find_series(fam, labels)) {
    if (existing->gauge == nullptr) {
      throw std::logic_error("obs::Registry: gauge '" + fam.name +
                             "' already exported as a callback series");
    }
    return Gauge(existing->gauge);
  }
  gauge_cells_.push_back(0.0);
  Series series;
  series.labels = std::move(labels);
  series.gauge = &gauge_cells_.back();
  fam.series.push_back(std::move(series));
  return Gauge(fam.series.back().gauge);
}

Histogram Registry::histogram(std::string_view name, std::vector<double> bounds,
                              Labels labels) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw std::invalid_argument(
        "obs::Registry: histogram bounds must be non-empty and strictly "
        "ascending");
  }
  Family& fam = family(name, MetricKind::kHistogram);
  if (Series* existing = find_series(fam, labels)) {
    return Histogram(existing->histogram);
  }
  HistogramCell cell;
  cell.counts.assign(bounds.size() + 1, 0);
  cell.bounds = std::move(bounds);
  histogram_cells_.push_back(std::move(cell));
  Series series;
  series.labels = std::move(labels);
  series.histogram = &histogram_cells_.back();
  fam.series.push_back(std::move(series));
  return Histogram(fam.series.back().histogram);
}

void Registry::counter_fn(const void* owner, std::string_view name,
                          Labels labels, ReadFn fn) {
  Family& fam = family(name, MetricKind::kCounter);
  if (find_series(fam, labels) != nullptr) {
    throw std::logic_error("obs::Registry: duplicate series for counter '" +
                           fam.name + "'");
  }
  Series series;
  series.labels = std::move(labels);
  series.read = std::move(fn);
  series.owner = owner;
  fam.series.push_back(std::move(series));
}

void Registry::gauge_fn(const void* owner, std::string_view name,
                        Labels labels, ReadFn fn) {
  Family& fam = family(name, MetricKind::kGauge);
  if (find_series(fam, labels) != nullptr) {
    throw std::logic_error("obs::Registry: duplicate series for gauge '" +
                           fam.name + "'");
  }
  Series series;
  series.labels = std::move(labels);
  series.read = std::move(fn);
  series.owner = owner;
  fam.series.push_back(std::move(series));
}

void Registry::unregister(const void* owner) {
  if (owner == nullptr) return;
  for (Family& fam : families_) {
    std::erase_if(fam.series,
                  [owner](const Series& s) { return s.owner == owner; });
  }
}

void Registry::set_help(std::string_view name, std::string_view help) {
  for (Family& fam : families_) {
    if (fam.name == name) {
      fam.help = std::string(help);
      return;
    }
  }
  // Help may be declared before the first series registers (components
  // set help alongside registration in either order); stash it.
  pending_help_[std::string(name)] = std::string(help);
}

std::vector<SeriesSnapshot> Registry::snapshot() const {
  std::vector<SeriesSnapshot> out;
  for (const Family& fam : families_) {
    for (const Series& series : fam.series) {
      SeriesSnapshot snap;
      snap.name = fam.name;
      snap.labels = series.labels;
      snap.kind = fam.kind;
      snap.value = series.scalar_value();
      if (series.histogram != nullptr) {
        snap.count = series.histogram->count;
        snap.bounds = series.histogram->bounds;
        snap.bucket_counts = series.histogram->counts;
      }
      out.push_back(std::move(snap));
    }
  }
  return out;
}

std::optional<double> Registry::value(std::string_view name,
                                      const Labels& labels) const {
  for (const Family& fam : families_) {
    if (fam.name != name) continue;
    for (const Series& series : fam.series) {
      if (series.labels == labels) return series.scalar_value();
    }
  }
  return std::nullopt;
}

double Registry::total(std::string_view name) const {
  double sum = 0.0;
  for (const Family& fam : families_) {
    if (fam.name != name) continue;
    for (const Series& series : fam.series) sum += series.scalar_value();
  }
  return sum;
}

std::size_t Registry::series_count() const {
  std::size_t n = 0;
  for (const Family& fam : families_) n += fam.series.size();
  return n;
}

void Registry::write_prometheus(std::ostream& out) const {
  std::string buf;
  for (const Family& fam : families_) {
    if (fam.series.empty()) continue;
    buf.clear();
    if (!fam.help.empty()) {
      buf += "# HELP " + fam.name + " " + fam.help + "\n";
    }
    buf += "# TYPE " + fam.name + " " + to_string(fam.kind) + "\n";
    for (const Series& series : fam.series) {
      if (series.histogram != nullptr) {
        const HistogramCell& cell = *series.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < cell.bounds.size(); ++i) {
          cumulative += cell.counts[i];
          buf += fam.name + "_bucket" +
                 render_labels_with(series.labels,
                                    {"le", format_bound(cell.bounds[i])});
          buf += ' ';
          append_value(buf, static_cast<double>(cumulative));
          buf += '\n';
        }
        cumulative += cell.counts.back();
        buf += fam.name + "_bucket" +
               render_labels_with(series.labels, {"le", "+Inf"});
        buf += ' ';
        append_value(buf, static_cast<double>(cumulative));
        buf += '\n';
        buf += fam.name + "_sum" + render_labels(series.labels) + ' ';
        append_value(buf, cell.sum);
        buf += '\n';
        buf += fam.name + "_count" + render_labels(series.labels) + ' ';
        append_value(buf, static_cast<double>(cell.count));
        buf += '\n';
      } else {
        buf += fam.name + render_labels(series.labels) + ' ';
        append_value(buf, series.scalar_value());
        buf += '\n';
      }
    }
    out << buf;
  }
}

void Registry::write_csv(std::ostream& out) const {
  out << "metric,kind,labels,value,count\n";
  std::string buf;
  for (const SeriesSnapshot& snap : snapshot()) {
    buf.clear();
    buf += snap.name;
    buf += ',';
    buf += to_string(snap.kind);
    buf += ',';
    // Labels as k=v pairs joined with ';'. A label value carrying a
    // comma, quote, or newline would break the row, so such cells get
    // RFC 4180 quoting (wrap in quotes, double inner quotes).
    std::string labels;
    bool first = true;
    for (const Label& label : snap.labels) {
      if (!first) labels += ';';
      first = false;
      labels += label.key + "=" + label.value;
    }
    if (labels.find_first_of(",\"\n\r") != std::string::npos) {
      buf += '"';
      for (const char c : labels) {
        if (c == '"') buf += '"';
        buf += c;
      }
      buf += '"';
    } else {
      buf += labels;
    }
    buf += ',';
    append_value(buf, snap.value);
    buf += ',';
    append_value(buf, static_cast<double>(snap.count));
    buf += '\n';
    out << buf;
  }
}

}  // namespace triad::obs
