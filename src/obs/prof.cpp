#include "obs/prof.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <utility>

#include "obs/metrics.h"
#include "runtime/monotonic_timer.h"

namespace triad::obs {

std::atomic<bool> Profiler::enabled_{false};

namespace prof_detail {

namespace {

// The calling thread's profile pointer, revalidated against the
// profiler generation so reset() invalidates every thread's cache.
struct ThreadSlot {
  ThreadProfile* profile = nullptr;
  std::uint64_t generation = 0;
};
thread_local ThreadSlot t_slot;

}  // namespace

ThreadProfile::ThreadProfile() {
  // Node 0 is the synthetic root ("no open scope"); current_ starts there.
  nodes_.emplace_back();
}

void ThreadProfile::enter(const char* name) {
  ThreadNode& parent = nodes_[current_];
  std::uint32_t child = 0;
  for (std::uint32_t idx : parent.children) {
    const ThreadNode& node = nodes_[idx];
    if (node.name == name || std::strcmp(node.name, name) == 0) {
      child = idx;
      break;
    }
  }
  if (child == 0) {
    child = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_.back().name = name;
    nodes_.back().parent = current_;
    nodes_[current_].children.push_back(child);
  }
  current_ = child;
}

void ThreadProfile::exit(std::uint64_t elapsed_ns) {
  ThreadNode& node = nodes_[current_];
  node.count += 1;
  node.incl_ns += elapsed_ns;
  std::size_t bucket = 0;
  while (bucket < kProfBucketBoundsNs.size() &&
         elapsed_ns > kProfBucketBoundsNs[bucket]) {
    ++bucket;
  }
  node.buckets[bucket] += 1;
  current_ = node.parent;
}

const std::vector<ThreadNode>& ThreadProfile::nodes() const { return nodes_; }

}  // namespace prof_detail

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

prof_detail::ThreadProfile& Profiler::thread_profile() {
  auto& slot = prof_detail::t_slot;
  const std::uint64_t generation = generation_.load(std::memory_order_acquire);
  if (slot.profile == nullptr || slot.generation != generation) {
    auto owned = std::make_unique<prof_detail::ThreadProfile>();
    slot.profile = owned.get();
    slot.generation = generation;
    const std::lock_guard<std::mutex> lock(mutex_);
    profiles_.push_back(std::move(owned));
  }
  return *slot.profile;
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  profiles_.clear();
}

namespace {

void merge_subtree(const std::vector<prof_detail::ThreadNode>& nodes,
                   std::uint32_t index, ProfNode& into) {
  const prof_detail::ThreadNode& from = nodes[index];
  into.count += from.count;
  into.incl_ns += from.incl_ns;
  for (std::size_t i = 0; i < from.buckets.size(); ++i) {
    into.buckets[i] += from.buckets[i];
  }
  for (std::uint32_t child_index : from.children) {
    const char* child_name = nodes[child_index].name;
    auto it = std::find_if(
        into.children.begin(), into.children.end(),
        [child_name](const ProfNode& n) { return n.name == child_name; });
    if (it == into.children.end()) {
      into.children.emplace_back();
      it = std::prev(into.children.end());
      it->name = child_name;
    }
    merge_subtree(nodes, child_index, *it);
  }
}

void sort_children(ProfNode& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const ProfNode& a, const ProfNode& b) { return a.name < b.name; });
  for (ProfNode& child : node.children) sort_children(child);
}

}  // namespace

ProfTree Profiler::merge() const {
  ProfTree tree;
  const std::lock_guard<std::mutex> lock(mutex_);
  tree.threads = profiles_.size();
  for (const auto& profile : profiles_) {
    merge_subtree(profile->nodes(), 0, tree.root);
  }
  // merge_subtree visits node 0 (the synthetic per-thread root) too;
  // scrub its meaningless count/time and order the result by name.
  tree.root.count = 0;
  tree.root.incl_ns = 0;
  tree.root.buckets = {};
  sort_children(tree.root);
  return tree;
}

std::uint64_t ProfNode::excl_ns() const {
  std::uint64_t child_ns = 0;
  for (const ProfNode& child : children) child_ns += child.incl_ns;
  return child_ns >= incl_ns ? 0 : incl_ns - child_ns;
}

namespace {

// All rendered durations go through one fixed-format helper so the
// normalize contract ("zero every duration, keep the shape") holds for
// each render target identically.
double ms_of(std::uint64_t ns, bool normalize) {
  return normalize ? 0.0 : static_cast<double>(ns) / 1e6;
}

void write_text_node(const ProfNode& node, std::ostream& out, int depth,
                     bool normalize) {
  char line[256];
  std::snprintf(line, sizeof(line), "%*s%-*s %10llu %12.3f %12.3f\n", depth * 2,
                "", 36 - depth * 2, node.name.c_str(),
                static_cast<unsigned long long>(node.count),
                ms_of(node.incl_ns, normalize), ms_of(node.excl_ns(), normalize));
  out << line;
  for (const ProfNode& child : node.children) {
    write_text_node(child, out, depth + 1, normalize);
  }
}

// Chrome trace "X" events. The tree has no timeline, so one is
// synthesized: each node spans [ts, ts+incl), children packed
// sequentially from the parent's ts — nesting is faithful, ordering
// within a level is alphabetical, not temporal.
void write_trace_node(const ProfNode& node, std::ostream& out,
                      std::uint64_t ts_ns, bool normalize, bool* first) {
  char event[512];
  std::snprintf(event, sizeof(event),
                "%s\n  {\"name\": \"%s\", \"ph\": \"X\", \"pid\": 0, \"tid\": 0, "
                "\"ts\": %.3f, \"dur\": %.3f, \"args\": {\"count\": %llu}}",
                *first ? "" : ",", node.name.c_str(),
                normalize ? 0.0 : static_cast<double>(ts_ns) / 1e3,
                normalize ? 0.0 : static_cast<double>(node.incl_ns) / 1e3,
                static_cast<unsigned long long>(node.count));
  out << event;
  *first = false;
  std::uint64_t child_ts = ts_ns;
  for (const ProfNode& child : node.children) {
    write_trace_node(child, out, child_ts, normalize, first);
    child_ts += child.incl_ns;
  }
}

void export_node(const ProfNode& node, Registry& registry,
                 const std::string& prefix, bool normalize) {
  const std::string path =
      prefix.empty() ? node.name : prefix + "/" + node.name;
  static const std::vector<double> kBoundsSeconds = [] {
    std::vector<double> bounds;
    bounds.reserve(kProfBucketBoundsNs.size());
    for (std::uint64_t ns : kProfBucketBoundsNs) {
      bounds.push_back(static_cast<double>(ns) / 1e9);
    }
    return bounds;
  }();
  Histogram histogram = registry.histogram(
      "triad_prof_scope_seconds", kBoundsSeconds, {{"path", path}});
  if (HistogramCell* cell = histogram.mutable_cell(); cell != nullptr) {
    // Bulk fill: the per-scope buckets were recorded live; sum is the
    // inclusive total, which keeps _sum consistent with _count.
    for (std::size_t i = 0; i < node.buckets.size(); ++i) {
      cell->counts[i] += normalize ? 0 : node.buckets[i];
    }
    cell->count += normalize ? 0 : node.count;
    cell->sum += normalize ? 0.0 : static_cast<double>(node.incl_ns) / 1e9;
  }
  for (const ProfNode& child : node.children) {
    export_node(child, registry, path, normalize);
  }
}

}  // namespace

void Profiler::write_text(const ProfTree& tree, std::ostream& out,
                          bool normalize) {
  // Normalized output is a byte-comparable structure artifact: the
  // thread-tree count varies with --jobs, so it only appears live.
  if (normalize) {
    out << "# triad profiler (normalized)\n";
  } else {
    out << "# triad profiler (" << tree.threads << " thread tree"
        << (tree.threads == 1 ? "" : "s") << " merged)\n";
  }
  char header[128];
  std::snprintf(header, sizeof(header), "%-36s %10s %12s %12s\n", "scope",
                "count", "incl_ms", "excl_ms");
  out << header;
  for (const ProfNode& child : tree.root.children) {
    write_text_node(child, out, 0, normalize);
  }
}

void Profiler::write_chrome_trace(const ProfTree& tree, std::ostream& out,
                                  bool normalize) {
  out << "{\"traceEvents\": [";
  bool first = true;
  std::uint64_t ts_ns = 0;
  for (const ProfNode& child : tree.root.children) {
    write_trace_node(child, out, ts_ns, normalize, &first);
    ts_ns += child.incl_ns;
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void Profiler::export_histograms(const ProfTree& tree, Registry& registry,
                                 bool normalize) {
  registry.set_help("triad_prof_scope_seconds",
                    "Wall-clock time per profiler scope (merged across "
                    "threads; path label is the scope tree path)");
  for (const ProfNode& child : tree.root.children) {
    export_node(child, registry, "", normalize);
  }
}

ProfScope::ProfScope(const char* name) {
  if (!Profiler::enabled()) return;
  active_ = true;
  Profiler::instance().thread_profile().enter(name);
  start_ns_ = runtime::MonotonicTimer::now_ns();
}

ProfScope::~ProfScope() {
  if (!active_) return;
  const std::uint64_t elapsed =
      runtime::MonotonicTimer::now_ns() - start_ns_;
  Profiler::instance().thread_profile().exit(elapsed);
}

}  // namespace triad::obs
