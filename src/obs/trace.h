// Structured protocol trace: a typed event record emitted through a
// TraceSink hung off runtime::Env, so every backend and component shares
// one emission path.
//
// TraceEvent is a fixed-size POD — emission never allocates, and with no
// sink attached the whole path is one pointer null check (see
// runtime::Env::emit). Field meaning is per-type (documented at the
// enum); the JSONL exporter (obs/export.h) maps the generic a/b/x/y
// slots to named fields.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/types.h"

namespace triad::obs {

/// Causal-span identifier. One span covers one causal episode on one
/// node — a taint episode (AEX → peer round → adoption/TA fallback) or a
/// calibration (TA round-trips → regression → reference adoption). 0
/// means "no span" (network-level and environment events). Ids compose
/// the opening node with a per-node sequence number (see obs/span.h) so
/// they are unique across the cluster without coordination.
using SpanId = std::uint32_t;

enum class TraceEventType : std::uint8_t {
  /// Node protocol-state transition. a=from, b=to (triad::NodeState).
  kStateChange = 0,
  /// Clock stepped onto external evidence. peer=source (peer id or TA
  /// address), a=local time before, b=adopted time.
  kAdoption,
  /// Asynchronous enclave exit severed time continuity. a=cumulative
  /// AEX count.
  kAex,
  /// INC monitor flagged a TSC rate/offset discrepancy. a=1 when the
  /// windowed check failed, b=1 when the continuity check failed.
  kIncAlarm,
  /// Frequency calibration regression completed. x=slope (F_calib Hz),
  /// y=r², a=sample count.
  kCalibration,
  /// Peer untaint round started. a=request id, b=1 when proactive.
  kPeerQuery,
  /// Peer answer received. peer=responder, a=request id, b=1 when the
  /// responder reported itself tainted.
  kPeerResponse,
  /// Peer round decided. a=request id, b=outcome (0 adopt, 1 keep-local,
  /// 2 TA fallback, 3 no usable answers), peer=adopted source (0 = none).
  kPeerOutcome,
  /// TA round-trip started. a=request id, x=requested wait (seconds).
  kTaRequest,
  /// TA answer accepted. a=request id, b=TA time.
  kTaResponse,
  /// Peer evidence unusable; node falls back to the TA. a=cumulative
  /// fallback count.
  kTaFallback,
  /// TA served a request. peer=client, a=request id, x=wait (seconds).
  kTaServe,
  /// Datagram handed to the transport. peer=destination, a=packet id,
  /// b=payload bytes.
  kPacketSend,
  /// Datagram dropped. peer=destination, a=packet id, b=reason
  /// (0 random loss, 1 middlebox, 2 no receiver).
  kPacketDrop,
  /// Datagram delivered. node=destination, peer=source, a=packet id,
  /// b=payload bytes.
  kPacketDeliver,
  /// Attestation handshake finished. peer=remote endpoint, a=1 on
  /// success, 0 on failure.
  kHandshake,
  /// Authenticated frame rejected (bad auth tag / decode). peer=claimed
  /// source address, a=cumulative bad-frame count.
  kBadFrame,
  /// Disciplined clock stepped (vs slewed). a=offset (ns).
  kClockStep,
  /// Online detector raised an alarm (obs/detect.h). a=detector kind
  /// (obs::DetectorKind), b=alarm ordinal, peer=implicated source
  /// (0 = none), x=measured value, y=threshold it crossed.
  kDetectorAlarm,
};

[[nodiscard]] const char* to_string(TraceEventType type);

struct TraceEvent {
  SimTime at = 0;
  TraceEventType type = TraceEventType::kStateChange;
  NodeId node = 0;  // subject endpoint (0 = environment-level event)
  NodeId peer = 0;  // other endpoint, when the type defines one
  SpanId span = 0;  // causal episode (0 = none); sits in what used to be
                    // struct padding, so emission cost is unchanged
  std::int64_t a = 0;
  std::int64_t b = 0;
  double x = 0.0;
  double y = 0.0;
};

/// Consumer of trace events. Implementations must not throw from emit.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
};

/// Bounded ring of events: keeps the most recent `capacity` events and
/// counts what it had to drop. Emission is an index increment plus one
/// fixed-size (sizeof(TraceEvent)) store — no allocation after
/// construction.
class RingTraceSink final : public TraceSink {
 public:
  explicit RingTraceSink(std::size_t capacity);

  void emit(const TraceEvent& event) override;

  /// Events currently retained (<= capacity()).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events ever emitted / overwritten because the ring was full.
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t dropped() const {
    return total_ - static_cast<std::uint64_t>(size());
  }
  /// Most events the ring ever held at once (== size() until the first
  /// wrap, then capacity()). Exported as a gauge so a ring sized "big
  /// enough" can prove how close to the edge a run actually came.
  [[nodiscard]] std::size_t high_watermark() const {
    return std::min(static_cast<std::uint64_t>(capacity_), total_);
  }

  /// Visits retained events oldest-to-newest.
  void for_each(const std::function<void(const TraceEvent&)>& fn) const;
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void clear();

 private:
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::uint64_t total_ = 0;
};

/// Fan-out sink: forwards each event to every registered sink (non-owning).
class TeeTraceSink final : public TraceSink {
 public:
  void add(TraceSink* sink);
  void remove(TraceSink* sink);
  void emit(const TraceEvent& event) override;

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace triad::obs
