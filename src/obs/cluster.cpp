#include "obs/cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "obs/detect.h"

namespace triad::obs {
namespace {

// All numbers go through fixed printf formats so the report is
// byte-deterministic for a given stream set.
void append(std::string* out, const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<std::size_t>(n, sizeof(buffer) - 1));
}

std::string span_str(SpanId id) {
  std::string s;
  append(&s, "%u:%u", span_node(id), span_seq(id));
  return s;
}

NodeId infer_ta(const std::vector<TraceEvent>& events) {
  for (const TraceEvent& event : events) {
    if (event.type == TraceEventType::kTaServe) return event.node;
  }
  return 0;
}

struct NodeFacts {
  NodeId node = 0;
  std::size_t events = 0;
  bool has_slope = false;
  double f_hz = 0.0;
  double ppm_vs_median = 0.0;
  std::vector<Alarm> alarms;
  SimTime first_alarm_at = -1;
};

struct JumpFact {
  const Span* span = nullptr;
  double step_ms = 0.0;
  std::vector<const Span*> chain;  // starts at `span`
};

struct ClusterFacts {
  NodeId ta_address = 0;  // merged-trace inference (cluster timeline)
  std::vector<NodeFacts> nodes;  // merge order (node-primary)
  double slope_median_hz = 0.0;
  std::size_t slope_count = 0;
  double width_ppm = 0.0;  // (max-min)/median, valid when slope_count >= 2
  std::size_t total_alarms = 0;
  std::vector<JumpFact> jumps;  // cross-node adoptions off the merged index
};

// `streams` must already be in merge order (node_stream_less) so the
// per-node table matches the merged timeline's node order.
ClusterFacts analyze(const std::vector<NodeStream>& streams,
                     const SpanIndex& merged,
                     const ClusterReportOptions& options) {
  ClusterFacts c;
  c.ta_address = options.forensic.detector_config.ta_address != 0
                     ? options.forensic.detector_config.ta_address
                     : infer_ta(merged.events());

  for (const NodeStream& stream : streams) {
    NodeFacts facts;
    facts.node = stream.node;
    facts.events = stream.events.size();

    // The same replay triad_trace runs on this node's file alone: same
    // detectors, same per-stream TA inference — per-node verdicts here
    // and there are identical by construction.
    DetectorConfig config = options.forensic.detector_config;
    if (config.ta_address == 0) config.ta_address = infer_ta(stream.events);
    DetectorBank bank(config, nullptr, nullptr);
    for (const TraceEvent& event : stream.events) bank.emit(event);
    facts.alarms = bank.alarms();
    facts.first_alarm_at = bank.first_alarm_at();
    c.total_alarms += facts.alarms.size();

    for (const TraceEvent& event : stream.events) {
      if (event.type == TraceEventType::kCalibration &&
          event.node == stream.node && event.x > 0.0) {
        facts.has_slope = true;
        facts.f_hz = event.x;
      }
    }
    c.nodes.push_back(std::move(facts));
  }

  std::vector<double> slopes;
  for (const NodeFacts& facts : c.nodes) {
    if (facts.has_slope) slopes.push_back(facts.f_hz);
  }
  c.slope_count = slopes.size();
  if (!slopes.empty()) {
    std::sort(slopes.begin(), slopes.end());
    const std::size_t mid = slopes.size() / 2;
    c.slope_median_hz = slopes.size() % 2 == 1
                            ? slopes[mid]
                            : 0.5 * (slopes[mid - 1] + slopes[mid]);
    for (NodeFacts& facts : c.nodes) {
      if (facts.has_slope) {
        facts.ppm_vs_median =
            (facts.f_hz - c.slope_median_hz) / c.slope_median_hz * 1e6;
      }
    }
    if (slopes.size() >= 2) {
      c.width_ppm =
          (slopes.back() - slopes.front()) / c.slope_median_hz * 1e6;
    }
  }

  // Infection timeline off the merged span index: a kTaServe in the
  // TA's stream and the requester's events merge into one span, so
  // chains cross stream boundaries here even though no single node's
  // file contains the whole story.
  for (const Span& span : merged.spans()) {
    if (!span.has_adoption || span.adoption_source == 0) continue;
    if (span.adoption_source == c.ta_address) continue;
    const double step_ms = static_cast<double>(span.adoption_step_ns) / 1e6;
    if (step_ms < options.forensic.min_jump_ms) continue;
    JumpFact jump;
    jump.span = &span;
    jump.step_ms = step_ms;
    jump.chain = merged.chain(span.id);
    c.jumps.push_back(std::move(jump));
  }
  return c;
}

std::string chain_suffix(const JumpFact& jump) {
  std::string out;
  append(&out, " <- adoption from node %u", jump.span->adoption_source);
  for (std::size_t i = 1; i < jump.chain.size(); ++i) {
    const Span* s = jump.chain[i];
    if (s->has_calibration) {
      append(&out, " <- node %u calibrated slope %.3f MHz (span %s)",
             s->node, s->calib_slope_hz / 1e6, span_str(s->id).c_str());
    } else {
      append(&out, " <- span %s on node %u", span_str(s->id).c_str(),
             s->node);
    }
  }
  return out;
}

std::string render_text(const SpanIndex& merged, const ClusterFacts& c,
                        const ClusterReportOptions& options) {
  std::string out;
  append(&out, "cluster: %zu nodes, %zu events, %zu spans\n",
         c.nodes.size(), merged.events().size(), merged.spans().size());
  if (c.ta_address != 0) {
    append(&out, "time authority: address %u\n", c.ta_address);
  }

  append(&out, "per-node (each stream replayed through the standard "
               "detectors):\n");
  for (const NodeFacts& facts : c.nodes) {
    append(&out, "  node %u%s: %zu events, ", facts.node,
           facts.node == c.ta_address ? " [ta]" : "", facts.events);
    if (facts.has_slope) {
      append(&out, "slope %.3f MHz (%+.1f ppm vs cluster median), ",
             facts.f_hz / 1e6, facts.ppm_vs_median);
    } else {
      append(&out, "no calibration, ");
    }
    append(&out, "alarms %zu", facts.alarms.size());
    if (facts.first_alarm_at >= 0) {
      append(&out, " (first at %.3f s)", to_seconds(facts.first_alarm_at));
    }
    append(&out, "\n");
    // Timestamps are each node's own epoch (ns since daemon start) —
    // comparable within a line, not across nodes.
    for (const Alarm& alarm : facts.alarms) {
      append(&out, "    t=%.3fs %s ", to_seconds(alarm.at),
             to_string(alarm.detector));
      if (alarm.node != 0) {
        append(&out, "node %u", alarm.node);
      } else {
        append(&out, "cluster-wide");
      }
      if (alarm.source != 0) append(&out, " (source node %u)", alarm.source);
      append(&out, " value=%.1f threshold=%.1f", alarm.value,
             alarm.threshold);
      if (alarm.span != 0) {
        append(&out, " span=%s", span_str(alarm.span).c_str());
      }
      append(&out, "\n");
    }
  }

  if (c.slope_count >= 2) {
    append(&out,
           "cluster disagreement: width %.1f ppm across %zu slopes "
           "(median %.3f MHz)\n",
           c.width_ppm, c.slope_count, c.slope_median_hz / 1e6);
  } else {
    append(&out, "cluster disagreement: fewer than 2 calibrated slopes\n");
  }

  if (c.jumps.empty()) {
    append(&out, "infection timeline: no cross-node jumps >= %.1f ms\n",
           options.forensic.min_jump_ms);
  } else {
    append(&out, "infection timeline (cross-node jumps >= %.1f ms):\n",
           options.forensic.min_jump_ms);
    for (const JumpFact& jump : c.jumps) {
      append(&out, "  t=%.3fs node %u jumped %+.1f ms%s\n",
             to_seconds(jump.span->adoption_at), jump.span->node,
             jump.step_ms, chain_suffix(jump).c_str());
    }
  }

  append(&out, "alarms total: %zu\n", c.total_alarms);
  return out;
}

void json_string(std::string* out, const char* key, const char* value,
                 bool* first) {
  append(out, "%s\"%s\":\"%s\"", *first ? "" : ",", key, value);
  *first = false;
}

void json_number(std::string* out, const char* key, double value,
                 bool* first) {
  append(out, "%s\"%s\":%.10g", *first ? "" : ",", key, value);
  *first = false;
}

void json_int(std::string* out, const char* key, std::int64_t value,
              bool* first) {
  append(out, "%s\"%s\":%lld", *first ? "" : ",", key,
         static_cast<long long>(value));
  *first = false;
}

void json_alarm(std::string* out, const Alarm& alarm, bool leading_comma) {
  bool f = true;
  *out += leading_comma ? ",{" : "{";
  json_number(out, "t", to_seconds(alarm.at), &f);
  json_string(out, "detector", to_string(alarm.detector), &f);
  json_int(out, "node", alarm.node, &f);
  if (alarm.source != 0) json_int(out, "source", alarm.source, &f);
  if (alarm.span != 0) json_int(out, "span", alarm.span, &f);
  json_number(out, "value", alarm.value, &f);
  json_number(out, "threshold", alarm.threshold, &f);
  *out += "}";
}

std::string render_json(const SpanIndex& merged, const ClusterFacts& c,
                        const ClusterReportOptions& options) {
  std::string out = "{";
  bool first = true;
  json_int(&out, "nodes", static_cast<std::int64_t>(c.nodes.size()), &first);
  json_int(&out, "events",
           static_cast<std::int64_t>(merged.events().size()), &first);
  json_int(&out, "spans", static_cast<std::int64_t>(merged.spans().size()),
           &first);
  json_int(&out, "ta", c.ta_address, &first);
  json_number(&out, "min_jump_ms", options.forensic.min_jump_ms, &first);

  out += ",\"per_node\":[";
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    const NodeFacts& facts = c.nodes[i];
    bool f = true;
    out += i == 0 ? "{" : ",{";
    json_int(&out, "node", facts.node, &f);
    json_int(&out, "events", static_cast<std::int64_t>(facts.events), &f);
    if (facts.has_slope) {
      json_number(&out, "f_hz", facts.f_hz, &f);
      json_number(&out, "ppm_vs_median", facts.ppm_vs_median, &f);
    }
    if (facts.first_alarm_at >= 0) {
      json_number(&out, "first_alarm_s", to_seconds(facts.first_alarm_at),
                  &f);
    }
    out += ",\"alarms\":[";
    for (std::size_t a = 0; a < facts.alarms.size(); ++a) {
      json_alarm(&out, facts.alarms[a], a != 0);
    }
    out += "]}";
  }
  out += "]";

  if (c.slope_count >= 2) {
    bool f = false;
    json_number(&out, "disagreement_width_ppm", c.width_ppm, &f);
    json_number(&out, "slope_median_hz", c.slope_median_hz, &f);
  }

  out += ",\"jumps\":[";
  for (std::size_t i = 0; i < c.jumps.size(); ++i) {
    const JumpFact& jump = c.jumps[i];
    bool f = true;
    out += i == 0 ? "{" : ",{";
    json_number(&out, "t", to_seconds(jump.span->adoption_at), &f);
    json_int(&out, "node", jump.span->node, &f);
    json_number(&out, "step_ms", jump.step_ms, &f);
    json_int(&out, "source", jump.span->adoption_source, &f);
    json_int(&out, "span", jump.span->id, &f);
    out += ",\"chain\":[";
    for (std::size_t ch = 1; ch < jump.chain.size(); ++ch) {
      const Span* s = jump.chain[ch];
      bool cf = true;
      out += ch == 1 ? "{" : ",{";
      json_int(&out, "span", s->id, &cf);
      json_int(&out, "node", s->node, &cf);
      json_string(&out, "kind", to_string(s->kind), &cf);
      if (s->has_calibration) json_number(&out, "f_hz", s->calib_slope_hz, &cf);
      out += "}";
    }
    out += "]}";
  }
  out += "]";

  bool f = false;
  json_int(&out, "alarms_total", static_cast<std::int64_t>(c.total_alarms),
           &f);
  out += "}\n";
  return out;
}

}  // namespace

std::string cluster_report(std::vector<NodeStream> streams,
                           const ClusterReportOptions& options) {
  std::sort(streams.begin(), streams.end(), node_stream_less);
  const SpanIndex merged(streams);  // copies; `streams` stays usable
  const ClusterFacts c = analyze(streams, merged, options);
  return options.json ? render_json(merged, c, options)
                      : render_text(merged, c, options);
}

}  // namespace triad::obs
