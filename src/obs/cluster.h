// Fleet-level forensics over multiple nodes' shipped traces.
//
// Input is one NodeStream per daemon — the JSONL its telemetry endpoint
// shipped (/trace) or its --trace exit dump, parsed back with
// obs::parse_jsonl. cluster_report merges the streams into the
// deterministic cluster timeline (merge_node_streams), replays each
// node's stream through the standard detector bank — the *same* replay
// `triad_trace` runs on that node's file alone, so per-node verdicts
// agree byte-for-byte with single-node forensics — and reads the
// cross-node propagation structure (who adopted whose clock, rooted in
// whose calibration) off the merged span index.
//
// Output is byte-deterministic for a given stream set, in any input
// order: fixed printf formats, std::map iteration only, and the merge's
// node-primary total order. The `triad_mon` CLI
// (examples/triad_mon.cpp) is a thin wrapper around this.
#pragma once

#include <string>
#include <vector>

#include "obs/forensic.h"
#include "obs/span.h"

namespace triad::obs {

struct ClusterReportOptions {
  /// Render a JSON object instead of the human-readable text report.
  bool json = false;
  /// Per-node replay thresholds + the timeline's minimum jump.
  /// detector_config.ta_address 0 = infer it per node from that node's
  /// own stream for the per-node replay (exactly the rule
  /// forensic_report applies, keeping per-node verdicts byte-identical
  /// with it), and from the merged trace for the cluster timeline.
  ForensicOptions forensic;
};

/// Renders the fleet report: per-node slope/alarm table, cluster
/// disagreement width, and the infection timeline with cross-node cause
/// chains.
[[nodiscard]] std::string cluster_report(
    std::vector<NodeStream> streams, const ClusterReportOptions& options = {});

}  // namespace triad::obs
