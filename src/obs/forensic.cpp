#include "obs/forensic.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "obs/span.h"

namespace triad::obs {
namespace {

// All numbers go through fixed printf formats so the report is
// byte-deterministic for a given event stream.
void append(std::string* out, const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) out->append(buffer, std::min<std::size_t>(n, sizeof(buffer) - 1));
}

std::string span_str(SpanId id) {
  std::string s;
  append(&s, "%u:%u", span_node(id), span_seq(id));
  return s;
}

struct SlopeFact {
  NodeId node = 0;
  double f_hz = 0.0;
  double ppm_vs_median = 0.0;
};

struct JumpFact {
  const Span* span = nullptr;
  double step_ms = 0.0;
  std::vector<const Span*> chain;  // starts at `span`
};

struct Analysis {
  NodeId ta_address = 0;
  std::vector<Alarm> alarms;
  SimTime first_alarm_at = -1;
  std::vector<SlopeFact> slopes;  // ordered by node address
  double slope_median_hz = 0.0;
  bool have_suspect = false;
  NodeId suspect = 0;
  double suspect_ppm = 0.0;
  std::vector<JumpFact> jumps;   // significant peer-sourced forward steps
  SimTime first_jump_at = -1;
};

Analysis analyze(const SpanIndex& index, const ForensicOptions& options) {
  Analysis a;
  const std::vector<TraceEvent>& events = index.events();

  DetectorConfig config = options.detector_config;
  if (config.ta_address == 0) {
    for (const TraceEvent& event : events) {
      if (event.type == TraceEventType::kTaServe) {
        config.ta_address = event.node;
        break;
      }
    }
  }
  a.ta_address = config.ta_address;

  // Replay through the same detectors the online path runs — verdicts
  // are identical by construction (detectors are pure trace functions).
  DetectorBank bank(config, nullptr, nullptr);
  for (const TraceEvent& event : events) bank.emit(event);
  a.alarms = bank.alarms();
  a.first_alarm_at = bank.first_alarm_at();

  // Latest calibrated slope per node, cluster median, worst outlier.
  std::map<NodeId, double> last_slope;
  for (const TraceEvent& event : events) {
    if (event.type == TraceEventType::kCalibration && event.x > 0.0) {
      last_slope[event.node] = event.x;
    }
  }
  if (!last_slope.empty()) {
    std::vector<double> values;
    values.reserve(last_slope.size());
    for (const auto& [node, f] : last_slope) values.push_back(f);
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    a.slope_median_hz = values.size() % 2 == 1
                            ? values[mid]
                            : 0.5 * (values[mid - 1] + values[mid]);
    for (const auto& [node, f] : last_slope) {
      SlopeFact fact;
      fact.node = node;
      fact.f_hz = f;
      fact.ppm_vs_median =
          (f - a.slope_median_hz) / a.slope_median_hz * 1e6;
      a.slopes.push_back(fact);
      if (last_slope.size() >= config.slope_quorum &&
          std::abs(fact.ppm_vs_median) > config.slope_tolerance_ppm &&
          (!a.have_suspect ||
           std::abs(fact.ppm_vs_median) > std::abs(a.suspect_ppm))) {
        a.have_suspect = true;
        a.suspect = node;
        a.suspect_ppm = fact.ppm_vs_median;
      }
    }
  }

  // Infection timeline: significant forward peer adoptions + their
  // cross-node cause chains.
  for (const Span& span : index.spans()) {
    if (!span.has_adoption || span.adoption_source == 0) continue;
    if (span.adoption_source == a.ta_address) continue;
    const double step_ms =
        static_cast<double>(span.adoption_step_ns) / 1e6;
    if (step_ms < options.min_jump_ms) continue;
    JumpFact jump;
    jump.span = &span;
    jump.step_ms = step_ms;
    jump.chain = index.chain(span.id);
    a.jumps.push_back(jump);
    if (a.first_jump_at < 0 || span.adoption_at < a.first_jump_at) {
      a.first_jump_at = span.adoption_at;
    }
  }
  return a;
}

std::string chain_suffix(const JumpFact& jump) {
  std::string out;
  append(&out, " <- adoption from node %u", jump.span->adoption_source);
  for (std::size_t i = 1; i < jump.chain.size(); ++i) {
    const Span* s = jump.chain[i];
    if (s->has_calibration) {
      append(&out, " <- node %u calibrated slope %.3f MHz (span %s)",
             s->node, s->calib_slope_hz / 1e6, span_str(s->id).c_str());
    } else {
      append(&out, " <- span %s on node %u", span_str(s->id).c_str(),
             s->node);
    }
  }
  return out;
}

std::string render_text(const SpanIndex& index, const Analysis& a,
                        const ForensicOptions& options) {
  std::string out;
  const std::vector<TraceEvent>& events = index.events();
  const SimTime t_end = events.empty() ? 0 : events.back().at;
  append(&out, "trace: %zu events, %zu spans, %.3f s of virtual time\n",
         events.size(), index.spans().size(), to_seconds(t_end));
  if (a.ta_address != 0) {
    append(&out, "time authority: address %u\n", a.ta_address);
  }

  if (!a.slopes.empty()) {
    append(&out, "calibrated slopes (latest per node):\n");
    for (const SlopeFact& fact : a.slopes) {
      append(&out, "  node %u: %.3f MHz (%+.1f ppm vs median)%s\n",
             fact.node, fact.f_hz / 1e6, fact.ppm_vs_median,
             a.have_suspect && fact.node == a.suspect ? "  ** outlier"
                                                      : "");
    }
  }

  if (a.alarms.empty()) {
    append(&out, "alarms: none\n");
  } else {
    append(&out, "alarms: %zu (first at %.3f s)\n", a.alarms.size(),
           to_seconds(a.first_alarm_at));
    for (const Alarm& alarm : a.alarms) {
      append(&out, "  t=%.3fs %s ", to_seconds(alarm.at),
             to_string(alarm.detector));
      if (alarm.node != 0) {
        append(&out, "node %u", alarm.node);
      } else {
        append(&out, "cluster-wide");
      }
      if (alarm.source != 0) append(&out, " (source node %u)", alarm.source);
      append(&out, " value=%.1f threshold=%.1f", alarm.value,
             alarm.threshold);
      if (alarm.span != 0) {
        append(&out, " span=%s", span_str(alarm.span).c_str());
      }
      append(&out, "\n");
    }
  }

  if (a.jumps.empty()) {
    append(&out, "infection timeline: no peer-sourced jumps >= %.1f ms\n",
           options.min_jump_ms);
  } else {
    append(&out, "infection timeline (jumps >= %.1f ms):\n",
           options.min_jump_ms);
    for (const JumpFact& jump : a.jumps) {
      append(&out, "  t=%.3fs node %u jumped %+.1f ms%s\n",
             to_seconds(jump.span->adoption_at), jump.span->node,
             jump.step_ms, chain_suffix(jump).c_str());
    }
  }

  if (a.have_suspect) {
    append(&out, "suspect: node %u (slope %+.1f ppm off cluster median)\n",
           a.suspect, a.suspect_ppm);
  } else {
    append(&out, "suspect: none\n");
  }

  if (a.first_alarm_at >= 0 && a.first_jump_at >= 0) {
    append(&out,
           "detection latency: %+.3f s (first alarm %.3f s, first "
           "significant jump %.3f s)\n",
           to_seconds(a.first_jump_at - a.first_alarm_at),
           to_seconds(a.first_alarm_at), to_seconds(a.first_jump_at));
  } else if (a.first_alarm_at >= 0) {
    append(&out, "detection latency: first alarm %.3f s, no jumps\n",
           to_seconds(a.first_alarm_at));
  }
  return out;
}

void json_string(std::string* out, const char* key, const char* value,
                 bool* first) {
  append(out, "%s\"%s\":\"%s\"", *first ? "" : ",", key, value);
  *first = false;
}

void json_number(std::string* out, const char* key, double value,
                 bool* first) {
  append(out, "%s\"%s\":%.10g", *first ? "" : ",", key, value);
  *first = false;
}

void json_int(std::string* out, const char* key, std::int64_t value,
              bool* first) {
  append(out, "%s\"%s\":%lld", *first ? "" : ",", key,
         static_cast<long long>(value));
  *first = false;
}

std::string render_json(const SpanIndex& index, const Analysis& a,
                        const ForensicOptions& options) {
  std::string out = "{";
  bool first = true;
  json_int(&out, "events", static_cast<std::int64_t>(index.events().size()),
           &first);
  json_int(&out, "spans", static_cast<std::int64_t>(index.spans().size()),
           &first);
  json_int(&out, "ta", a.ta_address, &first);
  json_number(&out, "min_jump_ms", options.min_jump_ms, &first);

  out += ",\"slopes\":[";
  for (std::size_t i = 0; i < a.slopes.size(); ++i) {
    const SlopeFact& fact = a.slopes[i];
    bool f = true;
    out += i == 0 ? "{" : ",{";
    json_int(&out, "node", fact.node, &f);
    json_number(&out, "f_hz", fact.f_hz, &f);
    json_number(&out, "ppm_vs_median", fact.ppm_vs_median, &f);
    out += "}";
  }
  out += "]";

  out += ",\"alarms\":[";
  for (std::size_t i = 0; i < a.alarms.size(); ++i) {
    const Alarm& alarm = a.alarms[i];
    bool f = true;
    out += i == 0 ? "{" : ",{";
    json_number(&out, "t", to_seconds(alarm.at), &f);
    json_string(&out, "detector", to_string(alarm.detector), &f);
    json_int(&out, "node", alarm.node, &f);
    if (alarm.source != 0) json_int(&out, "source", alarm.source, &f);
    if (alarm.span != 0) json_int(&out, "span", alarm.span, &f);
    json_number(&out, "value", alarm.value, &f);
    json_number(&out, "threshold", alarm.threshold, &f);
    out += "}";
  }
  out += "]";

  out += ",\"jumps\":[";
  for (std::size_t i = 0; i < a.jumps.size(); ++i) {
    const JumpFact& jump = a.jumps[i];
    bool f = true;
    out += i == 0 ? "{" : ",{";
    json_number(&out, "t", to_seconds(jump.span->adoption_at), &f);
    json_int(&out, "node", jump.span->node, &f);
    json_number(&out, "step_ms", jump.step_ms, &f);
    json_int(&out, "source", jump.span->adoption_source, &f);
    json_int(&out, "span", jump.span->id, &f);
    out += ",\"chain\":[";
    for (std::size_t c = 1; c < jump.chain.size(); ++c) {
      const Span* s = jump.chain[c];
      bool cf = true;
      out += c == 1 ? "{" : ",{";
      json_int(&out, "span", s->id, &cf);
      json_int(&out, "node", s->node, &cf);
      json_string(&out, "kind", to_string(s->kind), &cf);
      if (s->has_calibration) json_number(&out, "f_hz", s->calib_slope_hz, &cf);
      out += "}";
    }
    out += "]}";
  }
  out += "]";

  if (a.have_suspect) {
    out += ",\"suspect\":{";
    bool f = true;
    json_int(&out, "node", a.suspect, &f);
    json_number(&out, "ppm_vs_median", a.suspect_ppm, &f);
    out += "}";
  }
  bool f = false;
  if (a.first_alarm_at >= 0) {
    json_number(&out, "first_alarm_s", to_seconds(a.first_alarm_at), &f);
  }
  if (a.first_jump_at >= 0) {
    json_number(&out, "first_jump_s", to_seconds(a.first_jump_at), &f);
  }
  if (a.first_alarm_at >= 0 && a.first_jump_at >= 0) {
    json_number(&out, "detection_latency_s",
                to_seconds(a.first_jump_at - a.first_alarm_at), &f);
  }
  out += "}\n";
  return out;
}

}  // namespace

std::string forensic_report(std::vector<TraceEvent> events,
                            const ForensicOptions& options) {
  const SpanIndex index(std::move(events));
  const Analysis a = analyze(index, options);
  return options.json ? render_json(index, a, options)
                      : render_text(index, a, options);
}

}  // namespace triad::obs
