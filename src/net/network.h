// Simulated datagram network.
//
// Semantics mirror UDP: unordered, unreliable, unicast. Every packet
// passes through the registered middleboxes, which model the
// OS-/network-level attacker: they see source, destination, size, and
// timing (never plaintext — payloads are sealed by crypto::SecureChannel)
// and may add delay or drop the packet. This is exactly the paper's
// attacker interface for the F+/F- calibration attacks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/delay_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "util/bytes.h"
#include "util/types.h"

namespace triad::net {

/// A datagram in flight.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  Bytes payload;
  SimTime sent_at = 0;
  std::uint64_t id = 0;  // unique per network, for tracing
};

/// Attacker/observer hook on the wire. Middleboxes run in registration
/// order; extra delays accumulate and any drop wins.
class Middlebox {
 public:
  struct Action {
    Duration extra_delay = 0;
    bool drop = false;
  };

  virtual ~Middlebox() = default;
  virtual Action on_packet(const Packet& packet, SimTime now) = 0;
};

/// Counters for tests and experiment reports.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_by_middlebox = 0;
  std::uint64_t dropped_no_receiver = 0;
  std::uint64_t dropped_by_loss = 0;
  std::uint64_t bytes_sent = 0;       // payload bytes handed to send()
  std::uint64_t bytes_delivered = 0;  // payload bytes reaching a handler
};

class Network {
 public:
  using Handler = std::function<void(const Packet&)>;

  /// The default delay model applies to every link without an override.
  Network(sim::Simulation& sim, std::unique_ptr<DelayModel> default_delay);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the receive handler for an address. One handler per
  /// address; re-attaching replaces the previous handler.
  void attach(NodeId addr, Handler handler);
  void detach(NodeId addr);

  /// Overrides the delay model for the directed link src -> dst.
  void set_link_delay(NodeId src, NodeId dst,
                      std::unique_ptr<DelayModel> model);

  /// Random independent packet loss applied to every packet (default 0).
  void set_loss_probability(double p);

  /// Registers a middlebox (non-owning: caller keeps it alive as long as
  /// the network is in use).
  void add_middlebox(Middlebox* box);
  void remove_middlebox(Middlebox* box);

  /// Sends a datagram. Delivery (if any) is scheduled on the simulation.
  void send(NodeId src, NodeId dst, Bytes payload);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }

  /// Folds NetworkStats into `registry` as triad_net_* callback series
  /// (zero hot-path cost; unregistered in the destructor), registers the
  /// triad_net_delivery_delay_seconds histogram, and starts emitting
  /// packet_send/packet_drop/packet_deliver trace events to `trace`.
  /// Either pointer may be null; null detaches.
  void bind_obs(obs::Registry* registry, obs::TraceSink* trace);

 private:
  DelayModel& model_for(NodeId src, NodeId dst);
  void deliver(std::uint32_t slot);
  void trace_packet(obs::TraceEventType type, const Packet& packet,
                    std::int64_t b) const;

  sim::Simulation& sim_;
  Rng rng_;
  std::unique_ptr<DelayModel> default_delay_;
  std::unordered_map<std::uint64_t, std::unique_ptr<DelayModel>> link_delays_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::vector<Middlebox*> middleboxes_;
  double loss_probability_ = 0.0;
  std::uint64_t next_packet_id_ = 1;
  NetworkStats stats_;
  obs::Registry* obs_registry_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  obs::Histogram delivery_delay_;
  // Packets in flight live in a slab; the delivery closure captures only
  // (this, slot), which fits std::function's inline storage, so neither
  // the payload nor the closure is copied or heap-allocated per send.
  std::vector<Packet> in_flight_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace triad::net
