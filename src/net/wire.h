// Datagram wire framing shared by every real transport.
//
// The simulated network carries (src, dst) as struct fields; a real UDP
// socket only carries bytes, so the RealEnv transport prefixes each
// sealed payload with this fixed header. The header is deliberately
// minimal — src/dst logical addresses plus a magic/version word — because
// everything that needs integrity (sender, receiver, counter, payload)
// is *also* inside the AES-GCM-sealed SecureChannel frame; the wire
// header is routing metadata an attacker can already see and forge, and
// forging it buys nothing past the authenticated open().
//
// Layout (little-endian, 12 bytes):
//   offset 0  u32  magic+version ("TT" | version 1)
//   offset 4  u32  src NodeId
//   offset 8  u32  dst NodeId
//   offset 12 ...  payload (sealed SecureChannel frame)
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"
#include "util/types.h"

namespace triad::net::wire {

/// "TT" + 16-bit version 1. A different version bumps the whole word, so
/// old binaries drop new datagrams instead of misparsing them.
inline constexpr std::uint32_t kMagic = 0x54540001u;
inline constexpr std::size_t kHeaderSize = 12;
/// Largest UDP payload we ever emit (IPv4 65535 - 20 IP - 8 UDP).
inline constexpr std::size_t kMaxDatagram = 65507;

/// A decoded datagram. `payload` borrows from the input buffer: copy it
/// (e.g. by opening the sealed frame) before the buffer is reused.
struct Frame {
  NodeId src = 0;
  NodeId dst = 0;
  BytesView payload;
};

/// Serializes header + payload into one datagram buffer.
[[nodiscard]] Bytes encode_frame(NodeId src, NodeId dst, BytesView payload);

/// Writes header + payload into `out` (resized to kHeaderSize +
/// payload.size()). Allocation-free once `out` has capacity — the
/// batched send path reuses one buffer per slot.
void encode_frame_into(NodeId src, NodeId dst, BytesView payload, Bytes& out);

/// Parses one datagram. Returns nullopt on a short buffer, a wrong
/// magic/version, or an oversized length — never throws on
/// attacker-controlled bytes.
[[nodiscard]] std::optional<Frame> decode_frame(BytesView datagram);

}  // namespace triad::net::wire
