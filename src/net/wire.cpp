#include "net/wire.h"

#include <cstring>

namespace triad::net::wire {
namespace {

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void encode_frame_into(NodeId src, NodeId dst, BytesView payload, Bytes& out) {
  out.resize(kHeaderSize + payload.size());
  put_u32(out.data(), kMagic);
  put_u32(out.data() + 4, src);
  put_u32(out.data() + 8, dst);
  if (!payload.empty()) {
    std::memcpy(out.data() + kHeaderSize, payload.data(), payload.size());
  }
}

Bytes encode_frame(NodeId src, NodeId dst, BytesView payload) {
  Bytes out;
  encode_frame_into(src, dst, payload, out);
  return out;
}

std::optional<Frame> decode_frame(BytesView datagram) {
  if (datagram.size() < kHeaderSize || datagram.size() > kMaxDatagram) {
    return std::nullopt;
  }
  if (get_u32(datagram.data()) != kMagic) return std::nullopt;
  Frame frame;
  frame.src = get_u32(datagram.data() + 4);
  frame.dst = get_u32(datagram.data() + 8);
  frame.payload = datagram.subspan(kHeaderSize);
  return frame;
}

}  // namespace triad::net::wire
