#include "net/network.h"

#include <algorithm>
#include <stdexcept>

#include "obs/prof.h"
#include "util/log.h"

namespace triad::net {
namespace {

std::uint64_t link_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

}  // namespace

Network::Network(sim::Simulation& sim,
                 std::unique_ptr<DelayModel> default_delay)
    : sim_(sim), rng_(sim.rng().fork("network")),
      default_delay_(std::move(default_delay)) {
  if (!default_delay_) {
    throw std::invalid_argument("Network: null default delay model");
  }
}

Network::~Network() {
  if (obs_registry_ != nullptr) obs_registry_->unregister(this);
}

void Network::bind_obs(obs::Registry* registry, obs::TraceSink* trace) {
  if (obs_registry_ != nullptr) obs_registry_->unregister(this);
  obs_registry_ = registry;
  trace_ = trace;
  if (registry == nullptr) {
    delivery_delay_ = {};
    return;
  }
  const auto count = [this](const std::uint64_t NetworkStats::* field,
                            const char* name, const char* help) {
    obs_registry_->set_help(name, help);
    obs_registry_->counter_fn(this, name, {}, [this, field] {
      return static_cast<double>(stats_.*field);
    });
  };
  count(&NetworkStats::sent, "triad_net_packets_sent_total",
        "Datagrams handed to Network::send");
  count(&NetworkStats::delivered, "triad_net_packets_delivered_total",
        "Datagrams that reached a receive handler");
  count(&NetworkStats::dropped_by_loss, "triad_net_dropped_loss_total",
        "Datagrams dropped by random loss");
  count(&NetworkStats::dropped_by_middlebox,
        "triad_net_dropped_middlebox_total",
        "Datagrams dropped by a middlebox (attacker)");
  count(&NetworkStats::dropped_no_receiver,
        "triad_net_dropped_no_receiver_total",
        "Datagrams whose destination had no handler attached");
  count(&NetworkStats::bytes_sent, "triad_net_bytes_sent_total",
        "Payload bytes handed to Network::send");
  count(&NetworkStats::bytes_delivered, "triad_net_bytes_delivered_total",
        "Payload bytes that reached a receive handler");
  registry->set_help("triad_net_delivery_delay_seconds",
                     "Wire delay of delivered datagrams");
  delivery_delay_ = registry->histogram(
      "triad_net_delivery_delay_seconds",
      {0.0001, 0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0});
}

void Network::trace_packet(obs::TraceEventType type, const Packet& packet,
                           std::int64_t b) const {
  obs::TraceEvent event;
  event.at = sim_.now();
  event.type = type;
  if (type == obs::TraceEventType::kPacketDeliver) {
    event.node = packet.dst;
    event.peer = packet.src;
  } else {
    event.node = packet.src;
    event.peer = packet.dst;
  }
  event.a = static_cast<std::int64_t>(packet.id);
  event.b = b;
  trace_->emit(event);
}

void Network::attach(NodeId addr, Handler handler) {
  if (!handler) throw std::invalid_argument("Network::attach: null handler");
  handlers_[addr] = std::move(handler);
}

void Network::detach(NodeId addr) { handlers_.erase(addr); }

void Network::set_link_delay(NodeId src, NodeId dst,
                             std::unique_ptr<DelayModel> model) {
  if (!model) throw std::invalid_argument("Network: null link delay model");
  link_delays_[link_key(src, dst)] = std::move(model);
}

void Network::set_loss_probability(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Network: loss probability out of [0,1]");
  }
  loss_probability_ = p;
}

void Network::add_middlebox(Middlebox* box) {
  if (box == nullptr) throw std::invalid_argument("Network: null middlebox");
  middleboxes_.push_back(box);
}

void Network::remove_middlebox(Middlebox* box) {
  middleboxes_.erase(
      std::remove(middleboxes_.begin(), middleboxes_.end(), box),
      middleboxes_.end());
}

DelayModel& Network::model_for(NodeId src, NodeId dst) {
  const auto it = link_delays_.find(link_key(src, dst));
  return it != link_delays_.end() ? *it->second : *default_delay_;
}

void Network::send(NodeId src, NodeId dst, Bytes payload) {
  PROF_SCOPE("net/send");
  ++stats_.sent;
  stats_.bytes_sent += payload.size();
  Packet packet{src, dst, std::move(payload), sim_.now(), next_packet_id_++};
  if (trace_ != nullptr) {
    trace_packet(obs::TraceEventType::kPacketSend, packet,
                 static_cast<std::int64_t>(packet.payload.size()));
  }

  if (loss_probability_ > 0.0 && rng_.chance(loss_probability_)) {
    ++stats_.dropped_by_loss;
    if (trace_ != nullptr) {
      trace_packet(obs::TraceEventType::kPacketDrop, packet, 0);
    }
    return;
  }

  Duration delay = model_for(src, dst).sample(rng_);
  for (Middlebox* box : middleboxes_) {
    const Middlebox::Action action = box->on_packet(packet, sim_.now());
    if (action.drop) {
      ++stats_.dropped_by_middlebox;
      if (trace_ != nullptr) {
        trace_packet(obs::TraceEventType::kPacketDrop, packet, 1);
      }
      TRIAD_LOG_DEBUG("triad.net") << "packet " << packet.id << " " << src << "->"
                             << dst << " dropped by middlebox";
      return;
    }
    if (action.extra_delay < 0) {
      throw std::logic_error("Middlebox returned negative extra delay");
    }
    delay += action.extra_delay;
  }

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    in_flight_[slot] = std::move(packet);
  } else {
    slot = static_cast<std::uint32_t>(in_flight_.size());
    in_flight_.push_back(std::move(packet));
  }
  sim_.schedule_after(delay, [this, slot] { deliver(slot); });
}

void Network::deliver(std::uint32_t slot) {
  PROF_SCOPE("net/deliver");
  // Move the packet out first: the handler may send more packets and
  // reallocate or recycle the slab.
  Packet packet = std::move(in_flight_[slot]);
  free_slots_.push_back(slot);
  const auto it = handlers_.find(packet.dst);
  if (it == handlers_.end()) {
    ++stats_.dropped_no_receiver;
    if (trace_ != nullptr) {
      trace_packet(obs::TraceEventType::kPacketDrop, packet, 2);
    }
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += packet.payload.size();
  delivery_delay_.observe(to_seconds(sim_.now() - packet.sent_at));
  if (trace_ != nullptr) {
    trace_packet(obs::TraceEventType::kPacketDeliver, packet,
                 static_cast<std::int64_t>(packet.payload.size()));
  }
  it->second(packet);
}

}  // namespace triad::net
