#include "net/network.h"

#include <algorithm>
#include <stdexcept>

#include "util/log.h"

namespace triad::net {
namespace {

std::uint64_t link_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

}  // namespace

Network::Network(sim::Simulation& sim,
                 std::unique_ptr<DelayModel> default_delay)
    : sim_(sim), rng_(sim.rng().fork("network")),
      default_delay_(std::move(default_delay)) {
  if (!default_delay_) {
    throw std::invalid_argument("Network: null default delay model");
  }
}

void Network::attach(NodeId addr, Handler handler) {
  if (!handler) throw std::invalid_argument("Network::attach: null handler");
  handlers_[addr] = std::move(handler);
}

void Network::detach(NodeId addr) { handlers_.erase(addr); }

void Network::set_link_delay(NodeId src, NodeId dst,
                             std::unique_ptr<DelayModel> model) {
  if (!model) throw std::invalid_argument("Network: null link delay model");
  link_delays_[link_key(src, dst)] = std::move(model);
}

void Network::set_loss_probability(double p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("Network: loss probability out of [0,1]");
  }
  loss_probability_ = p;
}

void Network::add_middlebox(Middlebox* box) {
  if (box == nullptr) throw std::invalid_argument("Network: null middlebox");
  middleboxes_.push_back(box);
}

void Network::remove_middlebox(Middlebox* box) {
  middleboxes_.erase(
      std::remove(middleboxes_.begin(), middleboxes_.end(), box),
      middleboxes_.end());
}

DelayModel& Network::model_for(NodeId src, NodeId dst) {
  const auto it = link_delays_.find(link_key(src, dst));
  return it != link_delays_.end() ? *it->second : *default_delay_;
}

void Network::send(NodeId src, NodeId dst, Bytes payload) {
  ++stats_.sent;
  stats_.bytes_sent += payload.size();
  Packet packet{src, dst, std::move(payload), sim_.now(), next_packet_id_++};

  if (loss_probability_ > 0.0 && rng_.chance(loss_probability_)) {
    ++stats_.dropped_by_loss;
    return;
  }

  Duration delay = model_for(src, dst).sample(rng_);
  for (Middlebox* box : middleboxes_) {
    const Middlebox::Action action = box->on_packet(packet, sim_.now());
    if (action.drop) {
      ++stats_.dropped_by_middlebox;
      TRIAD_LOG_DEBUG("net") << "packet " << packet.id << " " << src << "->"
                             << dst << " dropped by middlebox";
      return;
    }
    if (action.extra_delay < 0) {
      throw std::logic_error("Middlebox returned negative extra delay");
    }
    delay += action.extra_delay;
  }

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    in_flight_[slot] = std::move(packet);
  } else {
    slot = static_cast<std::uint32_t>(in_flight_.size());
    in_flight_.push_back(std::move(packet));
  }
  sim_.schedule_after(delay, [this, slot] { deliver(slot); });
}

void Network::deliver(std::uint32_t slot) {
  // Move the packet out first: the handler may send more packets and
  // reallocate or recycle the slab.
  Packet packet = std::move(in_flight_[slot]);
  free_slots_.push_back(slot);
  const auto it = handlers_.find(packet.dst);
  if (it == handlers_.end()) {
    ++stats_.dropped_no_receiver;
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += packet.payload.size();
  it->second(packet);
}

}  // namespace triad::net
