// One-way network delay models.
//
// The paper's testbed keeps the three Triad nodes and the TA on one
// machine (loopback-ish delays with OS jitter). Jitter is what limits
// Triad's calibration quality — ~100 µs of asymmetric noise across the
// 0 s / 1 s round-trip classes yields the ~110 ppm fault-free drift the
// paper measures — so the default model is base + truncated-normal jitter.
#pragma once

#include <memory>

#include "util/rng.h"
#include "util/types.h"

namespace triad::net {

/// Samples a one-way packet delay. Implementations must return >= 0.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual Duration sample(Rng& rng) = 0;
};

/// Constant delay (tests, idealized links).
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(Duration delay);
  Duration sample(Rng& rng) override;

 private:
  Duration delay_;
};

/// base + |N(0, jitter)| truncated below at min_delay.
class JitterDelay final : public DelayModel {
 public:
  JitterDelay(Duration base, Duration jitter_stddev, Duration min_delay = 0);
  Duration sample(Rng& rng) override;

 private:
  Duration base_;
  Duration jitter_stddev_;
  Duration min_delay_;
};

/// Exponentially distributed queueing tail on top of a base delay:
/// base + Exp(mean_tail). Models congested links in ablation studies.
class ExponentialTailDelay final : public DelayModel {
 public:
  ExponentialTailDelay(Duration base, Duration mean_tail);
  Duration sample(Rng& rng) override;

 private:
  Duration base_;
  Duration mean_tail_;
};

/// Default LAN-ish model used by the experiment scenarios: 150 µs base,
/// 50 µs jitter, floor 20 µs.
std::unique_ptr<DelayModel> make_default_lan_delay();

}  // namespace triad::net
