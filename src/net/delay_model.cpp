#include "net/delay_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace triad::net {

FixedDelay::FixedDelay(Duration delay) : delay_(delay) {
  if (delay < 0) throw std::invalid_argument("FixedDelay: negative delay");
}

Duration FixedDelay::sample(Rng& /*rng*/) { return delay_; }

JitterDelay::JitterDelay(Duration base, Duration jitter_stddev,
                         Duration min_delay)
    : base_(base), jitter_stddev_(jitter_stddev), min_delay_(min_delay) {
  if (base < 0 || jitter_stddev < 0 || min_delay < 0) {
    throw std::invalid_argument("JitterDelay: negative parameter");
  }
}

Duration JitterDelay::sample(Rng& rng) {
  const double jitter =
      std::abs(rng.normal(0.0, static_cast<double>(jitter_stddev_)));
  const auto delay = base_ + static_cast<Duration>(jitter);
  return std::max(delay, min_delay_);
}

ExponentialTailDelay::ExponentialTailDelay(Duration base, Duration mean_tail)
    : base_(base), mean_tail_(mean_tail) {
  if (base < 0 || mean_tail <= 0) {
    throw std::invalid_argument("ExponentialTailDelay: bad parameter");
  }
}

Duration ExponentialTailDelay::sample(Rng& rng) {
  return base_ + static_cast<Duration>(
                     rng.exponential(static_cast<double>(mean_tail_)));
}

std::unique_ptr<DelayModel> make_default_lan_delay() {
  return std::make_unique<JitterDelay>(microseconds(150), microseconds(50),
                                       microseconds(20));
}

}  // namespace triad::net
