#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace triad::stats {

void EmpiricalCdf::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
}

std::vector<CdfPoint> EmpiricalCdf::points() const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> out;
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    // Collapse runs of equal values into the final (highest) step.
    if (i + 1 < sorted.size() && sorted[i + 1] == sorted[i]) continue;
    out.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) throw std::logic_error("EmpiricalCdf::at: empty");
  std::size_t cnt = 0;
  for (double s : samples_) {
    if (s <= x) ++cnt;
  }
  return static_cast<double>(cnt) / static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error("EmpiricalCdf::quantile: empty");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("EmpiricalCdf::quantile: bad p");
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(idx == 0 ? 0 : idx - 1, sorted.size() - 1)];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: bad range or bin count");
  }
}

void Histogram::add(double x) {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / bin_width_);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::size_t max_count = 1;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        counts_[i] * width / max_count;
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace triad::stats
