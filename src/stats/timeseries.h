// Time series recording for figure reproduction.
//
// Every bench binary records (virtual time, value) series — clock drift,
// cumulative TA references, AEX counts, node states — and dumps them in a
// plot-ready column format.
#pragma once

#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.h"

namespace triad::stats {

struct Sample {
  SimTime time;
  double value;
};

/// A named (time, value) series.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void record(SimTime t, double value) { samples_.push_back({t, value}); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Last value at or before t; throws if the series is empty or starts
  /// after t.
  [[nodiscard]] double value_at(SimTime t) const;

  /// min/max of the value column. Requires non-empty.
  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

/// A collection of series sharing one figure; writes CSV with a time
/// column in seconds and one column per series (values step-held between
/// samples so differently-sampled series align).
class SeriesSet {
 public:
  /// Returned references stay valid across later add() calls.
  TimeSeries& add(std::string name);
  [[nodiscard]] const std::deque<TimeSeries>& series() const {
    return series_;
  }

  /// Writes "time_s,<name>,<name>..." rows at each distinct sample time.
  void write_csv(std::ostream& out) const;

 private:
  std::deque<TimeSeries> series_;  // deque: stable references on growth
};

}  // namespace triad::stats
