// Empirical distributions: histogram and CDF, used by the Figure 1
// inter-AEX-delay reproductions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace triad::stats {

/// One point of an empirical CDF: P(X <= value) = cumulative.
struct CdfPoint {
  double value;
  double cumulative;  // in (0, 1]
};

/// Empirical CDF over all added samples (exact, not binned).
class EmpiricalCdf {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// Full step-function CDF (one point per distinct sample value).
  [[nodiscard]] std::vector<CdfPoint> points() const;

  /// CDF evaluated at x: fraction of samples <= x.
  [[nodiscard]] double at(double x) const;

  /// Value below which fraction p of samples fall (inverse CDF).
  [[nodiscard]] double quantile(double p) const;

 private:
  std::vector<double> samples_;
};

/// Fixed-width binned histogram over [lo, hi); out-of-range samples are
/// clamped into the edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t count() const { return total_; }
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }

  /// Renders a compact ASCII bar chart (for bench/ binaries).
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace triad::stats
