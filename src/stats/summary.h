// Online summary statistics (Welford) plus outlier-robust helpers.
//
// RQ A.1 reports INC-count statistics before and after removing outliers;
// SummaryStats supports both the streaming form and an exact recompute on
// retained samples.
#pragma once

#include <cstddef>
#include <vector>

namespace triad::stats {

/// Streaming mean / variance / min / max (Welford's algorithm).
class SummaryStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator). Requires count() >= 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double range() const { return max() - min(); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary over an explicit sample vector.
SummaryStats summarize(const std::vector<double>& xs);

/// Removes the k samples farthest from the median (the paper drops two
/// outliers from the INC experiment). Returns the retained samples.
std::vector<double> drop_farthest_from_median(std::vector<double> xs,
                                              std::size_t k);

/// Exact p-quantile (linear interpolation between order statistics).
/// Requires a non-empty sample and p in [0, 1].
double quantile(std::vector<double> xs, double p);

/// Sample autocorrelation at the given lag (Pearson correlation of the
/// series with itself shifted by `lag`). Requires xs.size() > lag + 1
/// and non-zero variance. Used to probe the paper's independence
/// assumption on successive inter-AEX delays (§IV: "we assume in this
/// work that their successive delays were independent").
double autocorrelation(const std::vector<double>& xs, std::size_t lag);

}  // namespace triad::stats
