#include "stats/timeseries.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <stdexcept>

namespace triad::stats {

double TimeSeries::value_at(SimTime t) const {
  if (samples_.empty() || samples_.front().time > t) {
    throw std::logic_error("TimeSeries::value_at: no sample at or before t");
  }
  // Samples are recorded in time order by construction.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](SimTime lhs, const Sample& s) { return lhs < s.time; });
  return std::prev(it)->value;
}

double TimeSeries::min_value() const {
  if (samples_.empty()) throw std::logic_error("TimeSeries: empty");
  return std::min_element(samples_.begin(), samples_.end(),
                          [](const Sample& a, const Sample& b) {
                            return a.value < b.value;
                          })
      ->value;
}

double TimeSeries::max_value() const {
  if (samples_.empty()) throw std::logic_error("TimeSeries: empty");
  return std::max_element(samples_.begin(), samples_.end(),
                          [](const Sample& a, const Sample& b) {
                            return a.value < b.value;
                          })
      ->value;
}

TimeSeries& SeriesSet::add(std::string name) {
  series_.emplace_back(std::move(name));
  return series_.back();
}

void SeriesSet::write_csv(std::ostream& out) const {
  out << "time_s";
  for (const auto& s : series_) out << "," << s.name();
  out << "\n";

  std::set<SimTime> times;
  for (const auto& s : series_) {
    for (const auto& sample : s.samples()) times.insert(sample.time);
  }
  for (SimTime t : times) {
    out << to_seconds(t);
    for (const auto& s : series_) {
      out << ",";
      if (!s.empty() && s.samples().front().time <= t) {
        out << s.value_at(t);
      }
    }
    out << "\n";
  }
}

}  // namespace triad::stats
