#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace triad::stats {

void SummaryStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::mean() const {
  if (n_ == 0) throw std::logic_error("SummaryStats::mean: no samples");
  return mean_;
}

double SummaryStats::variance() const {
  if (n_ < 2) throw std::logic_error("SummaryStats::variance: need >= 2");
  return m2_ / static_cast<double>(n_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

double SummaryStats::min() const {
  if (n_ == 0) throw std::logic_error("SummaryStats::min: no samples");
  return min_;
}

double SummaryStats::max() const {
  if (n_ == 0) throw std::logic_error("SummaryStats::max: no samples");
  return max_;
}

SummaryStats summarize(const std::vector<double>& xs) {
  SummaryStats s;
  for (double x : xs) s.add(x);
  return s;
}

std::vector<double> drop_farthest_from_median(std::vector<double> xs,
                                              std::size_t k) {
  if (k >= xs.size()) return {};
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted.size() % 2 == 1
                            ? sorted[sorted.size() / 2]
                            : 0.5 * (sorted[sorted.size() / 2 - 1] +
                                     sorted[sorted.size() / 2]);
  std::stable_sort(xs.begin(), xs.end(), [median](double a, double b) {
    return std::abs(a - median) < std::abs(b - median);
  });
  xs.resize(xs.size() - k);
  return xs;
}

double autocorrelation(const std::vector<double>& xs, std::size_t lag) {
  if (xs.size() <= lag + 1) {
    throw std::invalid_argument("autocorrelation: series too short");
  }
  const auto n = xs.size();
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  if (var <= 0) {
    throw std::invalid_argument("autocorrelation: zero variance");
  }
  double cov = 0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    cov += (xs[i] - mean) * (xs[i + lag] - mean);
  }
  return cov / var;
}

double quantile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("quantile: bad p");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

}  // namespace triad::stats
