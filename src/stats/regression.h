// Ordinary least squares linear regression.
//
// Triad's calibration fits TSC increments against requested TA wait-times;
// the slope is the calibrated TSC frequency. The F+/F- attacks work by
// biasing this regression, so its numerical behaviour is central.
#pragma once

#include <cstddef>
#include <vector>

namespace triad::stats {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // 1.0 when the fit is exact or variance is zero
  std::size_t n = 0;
};

/// Accumulates (x, y) points and fits y = slope * x + intercept.
class LinearRegression {
 public:
  void add(double x, double y);
  void clear();

  [[nodiscard]] std::size_t count() const { return n_; }

  /// Requires at least two points with distinct x values.
  [[nodiscard]] LinearFit fit() const;

 private:
  std::size_t n_ = 0;
  double sum_x_ = 0.0, sum_y_ = 0.0, sum_xx_ = 0.0, sum_xy_ = 0.0,
         sum_yy_ = 0.0;
};

/// Convenience: fit over explicit vectors (must be same, >= 2, length).
LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys);

}  // namespace triad::stats
