#include "stats/regression.h"

#include <cmath>
#include <stdexcept>

namespace triad::stats {

void LinearRegression::add(double x, double y) {
  ++n_;
  sum_x_ += x;
  sum_y_ += y;
  sum_xx_ += x * x;
  sum_xy_ += x * y;
  sum_yy_ += y * y;
}

void LinearRegression::clear() { *this = LinearRegression{}; }

LinearFit LinearRegression::fit() const {
  if (n_ < 2) {
    throw std::logic_error("LinearRegression::fit: need >= 2 points");
  }
  const auto n = static_cast<double>(n_);
  const double sxx = sum_xx_ - sum_x_ * sum_x_ / n;
  const double sxy = sum_xy_ - sum_x_ * sum_y_ / n;
  const double syy = sum_yy_ - sum_y_ * sum_y_ / n;
  if (sxx <= 0.0) {
    throw std::logic_error("LinearRegression::fit: x values are constant");
  }
  LinearFit f;
  f.n = n_;
  f.slope = sxy / sxx;
  f.intercept = (sum_y_ - f.slope * sum_x_) / n;
  f.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return f;
}

LinearFit fit_line(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("fit_line: size mismatch");
  }
  LinearRegression reg;
  for (std::size_t i = 0; i < xs.size(); ++i) reg.add(xs[i], ys[i]);
  return reg.fit();
}

}  // namespace triad::stats
