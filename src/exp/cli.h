// Command-line scenario runner (backs the `triad_sim` tool).
//
// Parses flags into a runnable experiment description and executes it,
// printing a per-node summary and (optionally) plot-ready CSV series.
// Kept in the library so the parser is unit-testable.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.h"

namespace triad::exp {

struct CliOptions {
  std::uint64_t seed = 1;
  /// True when --seed was given explicitly (to reject --seed + --seeds).
  bool seed_set = false;
  /// --seeds A..B: inclusive seed range; the run becomes a campaign
  /// sweep (one scenario per seed) instead of a single scenario.
  std::optional<std::pair<std::uint64_t, std::uint64_t>> seed_range;
  /// --repeat N: shorthand for --seeds seed..seed+N-1.
  std::size_t repeat = 1;
  /// Worker threads for sweep mode (ignored for a single run).
  std::size_t jobs = 1;
  std::size_t nodes = 3;
  Duration duration = minutes(10);
  /// "none" | "fplus" | "fminus"
  std::string attack = "none";
  /// 1-based node index the attack targets.
  std::size_t victim = 3;
  Duration attack_delay = milliseconds(100);
  /// "original" | "triadplus"
  std::string policy = "original";
  /// Per-node environments: "triad" | "low" | "none" (repeatable flag;
  /// missing entries default to "triad").
  std::vector<std::string> environments;
  bool machine_interrupts = true;
  /// Machine index per node (repeatable flag, geo-distribution).
  std::vector<std::size_t> machines;
  Duration wan_delay = milliseconds(20);
  /// Derive channel keys from attestation handshakes.
  bool attested = false;
  /// Write the recorded series as CSV to this path ("-" = stdout).
  std::optional<std::string> csv_path;
  /// Write the final metrics registry in Prometheus text format ("-" =
  /// stdout).
  std::optional<std::string> metrics_path;
  /// Write the protocol trace as JSON Lines ("-" = stdout).
  std::optional<std::string> trace_path;
  /// Profiler outputs (obs/prof.h): text scope table and Chrome trace
  /// JSON ("-" = stdout, counted against the one-stdout-target rule).
  /// Enabling either also exports triad_prof_scope_seconds histograms
  /// into the scenario registry, so --metrics picks them up.
  std::optional<std::string> prof_path;
  std::optional<std::string> prof_trace_path;
  /// Zero every profiler duration: the rendered scope tree becomes a
  /// pure call-structure artifact, byte-comparable across runs.
  bool prof_normalize = false;
  bool help = false;
};

/// Parses argv. On error returns nullopt and writes a message to `error`.
std::optional<CliOptions> parse_cli(int argc, const char* const* argv,
                                    std::string* error);

/// True when the options describe a multi-run sweep (--seeds / --repeat)
/// that should be handed to the campaign runner rather than run_cli.
[[nodiscard]] bool is_sweep(const CliOptions& options);

/// The inclusive seed list a sweep expands to ({seed} for a single run).
[[nodiscard]] std::vector<std::uint64_t> sweep_seeds(const CliOptions& options);

// Shared flag/spec-file scalar parsers (also used by triad_campaign).
/// Parses a non-negative integer; the whole string must be consumed.
bool parse_u64(std::string_view text, std::uint64_t* out);
/// Parses "<n>ms" | "<n>s" | "<n>m" | "<n>h" into nanoseconds.
bool parse_duration(std::string_view text, Duration* out);
/// Parses "A..B" (inclusive, A <= B) or a single "A" into [*lo, *hi].
bool parse_seed_range(std::string_view text, std::uint64_t* lo,
                      std::uint64_t* hi);

/// One-line-per-flag usage text.
std::string cli_usage();

/// Runs the described experiment. Machine-readable output (CSV /
/// Prometheus metrics / JSONL trace) requested with path "-" goes to
/// `out`; the human summary then moves to `err` so the streams never
/// interleave. With no stdout machine output the summary stays on `out`.
/// At most one output may target stdout. Returns a process exit code.
int run_cli(const CliOptions& options, std::ostream& out, std::ostream& err);

/// Convenience overload: `err` = std::cerr.
int run_cli(const CliOptions& options, std::ostream& out);

}  // namespace triad::exp
