#include "exp/cli.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "exp/recorder.h"
#include "exp/scenario.h"
#include "obs/export.h"
#include "obs/prof.h"
#include "resilient/triad_plus.h"
#include "util/log.h"

namespace triad::exp {

bool parse_u64(std::string_view text, std::uint64_t* out) {
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return result.ec == std::errc{} &&
         result.ptr == text.data() + text.size();
}

/// Durations accept "<n>s", "<n>ms", "<n>m", "<n>h".
bool parse_duration(std::string_view text, Duration* out) {
  std::uint64_t value = 0;
  std::string_view unit;
  std::size_t split = 0;
  while (split < text.size() &&
         text[split] >= '0' && text[split] <= '9') {
    ++split;
  }
  if (split == 0 || !parse_u64(text.substr(0, split), &value)) return false;
  unit = text.substr(split);
  const auto v = static_cast<std::int64_t>(value);
  if (unit == "ms") {
    *out = milliseconds(v);
  } else if (unit == "s") {
    *out = seconds(v);
  } else if (unit == "m") {
    *out = minutes(v);
  } else if (unit == "h") {
    *out = hours(v);
  } else {
    return false;
  }
  return true;
}

bool parse_seed_range(std::string_view text, std::uint64_t* lo,
                      std::uint64_t* hi) {
  const std::size_t dots = text.find("..");
  if (dots == std::string_view::npos) {
    if (!parse_u64(text, lo)) return false;
    *hi = *lo;
    return true;
  }
  return parse_u64(text.substr(0, dots), lo) &&
         parse_u64(text.substr(dots + 2), hi) && *lo <= *hi;
}

namespace {

std::optional<AexEnvironment> parse_environment(std::string_view text) {
  if (text == "triad") return AexEnvironment::kTriadLike;
  if (text == "low") return AexEnvironment::kLowAex;
  if (text == "none") return AexEnvironment::kNone;
  return std::nullopt;
}

}  // namespace

std::string cli_usage() {
  return
      "triad_sim — run a Triad trusted-time scenario\n"
      "  --seed N           RNG seed (default 1)\n"
      "  --seeds A..B       seed sweep (inclusive): runs one scenario per\n"
      "                     seed via the campaign engine and prints the\n"
      "                     aggregate report; excludes --seed\n"
      "  --repeat N         shorthand for --seeds seed..seed+N-1\n"
      "  --jobs N           worker threads for a sweep (default 1)\n"
      "  --nodes N          cluster size (default 3)\n"
      "  --duration D       virtual time, e.g. 30m, 8h, 90s (default 10m)\n"
      "  --attack KIND      none | fplus | fminus (default none)\n"
      "  --victim N         1-based attacked node (default 3)\n"
      "  --attack-delay D   injected delay (default 100ms)\n"
      "  --policy P         original | triadplus (default original)\n"
      "  --env E            per-node AEX env: triad | low | none\n"
      "                     (repeat per node; missing default to triad)\n"
      "  --no-machine-interrupts   disable correlated residual interrupts\n"
      "  --machine M        machine index for the next node (repeat per\n"
      "                     node; geo-distributed deployments)\n"
      "  --wan-delay D      one-way delay between machines (default 20ms)\n"
      "  --attested         derive channel keys from X25519 attestation\n"
      "                     handshakes instead of a provisioned secret\n"
      "  --csv PATH         dump recorded series as CSV ('-' = stdout)\n"
      "  --metrics PATH     dump final metrics as Prometheus text\n"
      "                     ('-' = stdout)\n"
      "  --trace PATH       dump the protocol trace as JSON Lines\n"
      "                     ('-' = stdout)\n"
      "  --prof PATH        wall-clock scope profile table ('-' = stdout)\n"
      "  --prof-trace PATH  profile as Chrome trace JSON for Perfetto /\n"
      "                     chrome://tracing ('-' = stdout)\n"
      "  --prof-normalize   zero profile durations (deterministic tree)\n"
      "  --help             this text\n";
}

std::optional<CliOptions> parse_cli(int argc, const char* const* argv,
                                    std::string* error) {
  CliOptions options;
  auto fail = [error](std::string message) -> std::optional<CliOptions> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> std::optional<std::string_view> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string_view(argv[++i]);
    };

    if (arg == "--help" || arg == "-h") {
      options.help = true;
      return options;
    }
    if (arg == "--no-machine-interrupts") {
      options.machine_interrupts = false;
      continue;
    }
    if (arg == "--attested") {
      options.attested = true;
      continue;
    }
    if (arg == "--prof-normalize") {
      options.prof_normalize = true;
      continue;
    }
    static constexpr std::string_view kValueFlags[] = {
        "--seed",    "--nodes",        "--duration",  "--attack",
        "--victim",  "--policy",       "--env",       "--csv",
        "--machine", "--attack-delay", "--wan-delay", "--metrics",
        "--trace",   "--seeds",        "--repeat",    "--jobs",
        "--prof",    "--prof-trace"};
    const bool known =
        std::find(std::begin(kValueFlags), std::end(kValueFlags), arg) !=
        std::end(kValueFlags);
    if (!known) return fail("unknown flag " + std::string(arg));

    const auto v = value();
    if (!v) return fail("missing value for " + std::string(arg));

    if (arg == "--seed") {
      if (!parse_u64(*v, &options.seed)) return fail("bad --seed");
      options.seed_set = true;
    } else if (arg == "--seeds") {
      std::uint64_t lo = 0, hi = 0;
      if (!parse_seed_range(*v, &lo, &hi)) {
        return fail("bad --seeds (use A..B with A <= B, e.g. 1..32)");
      }
      options.seed_range = {lo, hi};
    } else if (arg == "--repeat") {
      std::uint64_t n = 0;
      if (!parse_u64(*v, &n) || n == 0) return fail("bad --repeat");
      options.repeat = n;
    } else if (arg == "--jobs") {
      std::uint64_t n = 0;
      if (!parse_u64(*v, &n) || n == 0) return fail("bad --jobs");
      options.jobs = n;
    } else if (arg == "--nodes") {
      std::uint64_t n = 0;
      if (!parse_u64(*v, &n) || n == 0) return fail("bad --nodes");
      options.nodes = n;
    } else if (arg == "--duration") {
      if (!parse_duration(*v, &options.duration) || options.duration <= 0) {
        return fail("bad --duration (use e.g. 90s, 30m, 8h)");
      }
    } else if (arg == "--attack") {
      if (*v != "none" && *v != "fplus" && *v != "fminus") {
        return fail("bad --attack (none|fplus|fminus)");
      }
      options.attack = std::string(*v);
    } else if (arg == "--victim") {
      std::uint64_t n = 0;
      if (!parse_u64(*v, &n) || n == 0) return fail("bad --victim");
      options.victim = n;
    } else if (arg == "--attack-delay") {
      if (!parse_duration(*v, &options.attack_delay)) {
        return fail("bad --attack-delay");
      }
    } else if (arg == "--policy") {
      if (*v != "original" && *v != "triadplus") {
        return fail("bad --policy (original|triadplus)");
      }
      options.policy = std::string(*v);
    } else if (arg == "--env") {
      if (!parse_environment(*v)) return fail("bad --env (triad|low|none)");
      options.environments.emplace_back(*v);
    } else if (arg == "--machine") {
      std::uint64_t m = 0;
      if (!parse_u64(*v, &m)) return fail("bad --machine");
      options.machines.push_back(m);
    } else if (arg == "--wan-delay") {
      if (!parse_duration(*v, &options.wan_delay) ||
          options.wan_delay <= 0) {
        return fail("bad --wan-delay");
      }
    } else if (arg == "--csv") {
      options.csv_path = std::string(*v);
    } else if (arg == "--metrics") {
      options.metrics_path = std::string(*v);
    } else if (arg == "--trace") {
      options.trace_path = std::string(*v);
    } else if (arg == "--prof") {
      options.prof_path = std::string(*v);
    } else if (arg == "--prof-trace") {
      options.prof_trace_path = std::string(*v);
    }
  }

  if (options.victim > options.nodes) {
    return fail("--victim exceeds --nodes");
  }
  if (options.seed_set && options.seed_range) {
    return fail(
        "--seed and --seeds are mutually exclusive: use --seed N for one "
        "run or --seeds A..B for a sweep");
  }
  if (options.seed_range && options.repeat > 1) {
    return fail("--repeat and --seeds are mutually exclusive");
  }
  if ((options.seed_range || options.repeat > 1) &&
      (options.metrics_path || options.trace_path)) {
    return fail(
        "--metrics/--trace are per-run outputs; for sweeps use "
        "triad_campaign --metrics-dir");
  }
  if (options.environments.size() > options.nodes) {
    return fail("more --env entries than nodes");
  }
  if (options.machines.size() > options.nodes) {
    return fail("more --machine entries than nodes");
  }
  int stdout_targets = 0;
  for (const auto& path :
       {options.csv_path, options.metrics_path, options.trace_path,
        options.prof_path, options.prof_trace_path}) {
    if (path && *path == "-") ++stdout_targets;
  }
  if (stdout_targets > 1) {
    return fail(
        "at most one of --csv/--metrics/--trace/--prof/--prof-trace may "
        "be '-'");
  }
  return options;
}

bool is_sweep(const CliOptions& options) {
  return options.seed_range.has_value() || options.repeat > 1;
}

std::vector<std::uint64_t> sweep_seeds(const CliOptions& options) {
  std::uint64_t lo = options.seed;
  std::uint64_t hi = options.seed + (options.repeat - 1);
  if (options.seed_range) {
    lo = options.seed_range->first;
    hi = options.seed_range->second;
  }
  std::vector<std::uint64_t> seeds;
  seeds.reserve(hi - lo + 1);
  for (std::uint64_t s = lo; s <= hi; ++s) seeds.push_back(s);
  return seeds;
}

int run_cli(const CliOptions& options, std::ostream& out) {
  return run_cli(options, out, std::cerr);
}

int run_cli(const CliOptions& options, std::ostream& out,
            std::ostream& err) {
  if (options.help) {
    out << cli_usage();
    return 0;
  }

  // When a machine-readable output goes to stdout, the human summary
  // moves to the error stream so consumers can pipe stdout directly.
  const auto targets_stdout = [](const std::optional<std::string>& path) {
    return path && *path == "-";
  };
  const bool machine_on_stdout = targets_stdout(options.csv_path) ||
                                 targets_stdout(options.metrics_path) ||
                                 targets_stdout(options.trace_path) ||
                                 targets_stdout(options.prof_path) ||
                                 targets_stdout(options.prof_trace_path);
  std::ostream& summary = machine_on_stdout ? err : out;

  const bool profiling = options.prof_path || options.prof_trace_path;
  if (profiling) {
    obs::Profiler::instance().reset();
    obs::Profiler::instance().set_enabled(true);
  }

  ScenarioConfig cfg;
  cfg.seed = options.seed;
  cfg.node_count = options.nodes;
  cfg.machine_interrupts = options.machine_interrupts;
  cfg.machine_of = options.machines;
  cfg.wan_base_delay = options.wan_delay;
  cfg.wan_jitter = std::max<Duration>(options.wan_delay / 10, 1);
  cfg.attested_keys = options.attested;
  for (const std::string& env : options.environments) {
    cfg.environments.push_back(*parse_environment(env));
  }
  if (options.policy == "triadplus") {
    cfg.node_template = resilient::harden(cfg.node_template);
    cfg.policy_factory = [] { return resilient::make_triad_plus_policy(); };
  }
  // Metrics are cheap (callback series + pre-resolved handles), so the
  // CLI always records them — and the detectors ride the same budget;
  // the trace ring only exists when asked for.
  cfg.enable_metrics = true;
  cfg.enable_detectors = true;
  if (options.trace_path) cfg.trace_capacity = std::size_t{1} << 18;

  Scenario scenario(std::move(cfg));
  // Log lines carry the same virtual-time tag the trace events do.
  const runtime::Env env = scenario.env();
  const ScopedLogTime log_time([env] { return env.now(); });
  if (options.attack != "none") {
    attacks::DelayAttackConfig attack;
    attack.kind = options.attack == "fplus" ? attacks::AttackKind::kFPlus
                                            : attacks::AttackKind::kFMinus;
    attack.victim = scenario.node_address(options.victim - 1);
    attack.ta_address = scenario.ta_address();
    attack.added_delay = options.attack_delay;
    scenario.add_delay_attack(attack);
  }

  Recorder recorder(scenario);
  scenario.start();
  scenario.run_until(options.duration);

  obs::ProfTree prof_tree;
  if (profiling) {
    obs::Profiler::instance().set_enabled(false);
    prof_tree = obs::Profiler::instance().merge();
    // Surface the scope timings as registry histograms too, so a
    // combined --prof + --metrics run carries them in the Prometheus
    // dump (triad_prof_scope_seconds{path=...}).
    if (scenario.metrics() != nullptr) {
      obs::Profiler::export_histograms(prof_tree, *scenario.metrics(),
                                       options.prof_normalize);
    }
  }

  summary << "scenario: nodes=" << options.nodes << " seed=" << options.seed
          << " duration=" << to_seconds(options.duration) << "s attack="
          << options.attack << " policy=" << options.policy << "\n";
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    TriadNode& node = scenario.node(i);
    std::ostringstream drift;
    if (!recorder.drift_ms(i).empty()) {
      drift << recorder.drift_ms(i).min_value() << ".."
            << recorder.drift_ms(i).max_value();
    } else {
      drift << "n/a";
    }
    summary << "node " << (i + 1) << ": state=" << to_string(node.state())
            << " F_calib=" << node.calibrated_frequency_hz() / 1e6
            << "MHz availability=" << node.availability() * 100.0
            << "% aex=" << node.stats().aex_count
            << " ta_refs=" << node.stats().ta_time_references
            << " drift_ms=[" << drift.str() << "]\n";
  }
  summary << "ta requests served: "
          << scenario.time_authority().stats().requests_served << "\n";
  summary << "adoption events: " << recorder.adoptions().size() << "\n";
  if (scenario.trace() != nullptr) {
    summary << "trace events: " << scenario.trace()->total() << " (dropped "
            << scenario.trace()->dropped() << ")\n";
  }
  if (const obs::DetectorBank* bank = scenario.detectors();
      bank != nullptr) {
    summary << "detector alarms: " << bank->alarms().size();
    if (!bank->alarms().empty()) {
      summary << " (first at " << to_seconds(bank->first_alarm_at())
              << "s)";
    }
    summary << "\n";
  }

  // Writes `what` to the flagged path: stdout when "-", a file otherwise.
  const auto write_output = [&](const std::string& path, const char* what,
                                auto&& writer) -> bool {
    if (path == "-") {
      writer(out);
      return true;
    }
    std::ofstream file(path);
    if (!file) {
      summary << "error: cannot open " << path << "\n";
      return false;
    }
    writer(file);
    summary << what << " written to " << path << "\n";
    return true;
  };

  if (options.csv_path &&
      !write_output(*options.csv_path, "series", [&](std::ostream& os) {
        recorder.series().write_csv(os);
      })) {
    return 1;
  }
  if (options.metrics_path &&
      !write_output(*options.metrics_path, "metrics", [&](std::ostream& os) {
        scenario.metrics()->write_prometheus(os);
      })) {
    return 1;
  }
  if (options.trace_path &&
      !write_output(*options.trace_path, "trace", [&](std::ostream& os) {
        obs::write_jsonl(*scenario.trace(), os);
      })) {
    return 1;
  }
  if (options.prof_path &&
      !write_output(*options.prof_path, "profile", [&](std::ostream& os) {
        obs::Profiler::write_text(prof_tree, os, options.prof_normalize);
      })) {
    return 1;
  }
  if (options.prof_trace_path &&
      !write_output(
          *options.prof_trace_path, "profile trace", [&](std::ostream& os) {
            obs::Profiler::write_chrome_trace(prof_tree, os,
                                              options.prof_normalize);
          })) {
    return 1;
  }
  return 0;
}

}  // namespace triad::exp
