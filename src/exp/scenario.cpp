#include "exp/scenario.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace triad::exp {
namespace {

Bytes demo_master_secret() {
  // The cluster master secret stands in for SGX attested key exchange;
  // see crypto/channel.h. Fixed value: the attacker modelled here is the
  // OS/network, which never learns enclave secrets.
  return Bytes(32, 0x42);
}

/// Detector thresholds with the TA address defaulted to the scenario's
/// addressing scheme (node_count + 1) so TA adoptions are never flagged.
obs::DetectorConfig detector_config_for(const ScenarioConfig& config) {
  obs::DetectorConfig dc = config.detector_config;
  if (dc.ta_address == 0) {
    dc.ta_address = static_cast<NodeId>(config.node_count + 1);
  }
  return dc;
}

}  // namespace

std::unique_ptr<enclave::AexDistribution> make_distribution(
    AexEnvironment environment) {
  switch (environment) {
    case AexEnvironment::kTriadLike:
      return std::make_unique<enclave::TriadLikeAexDistribution>();
    case AexEnvironment::kLowAex:
      return std::make_unique<enclave::IsolatedCoreAexDistribution>();
    case AexEnvironment::kNone:
      return nullptr;
  }
  return nullptr;
}

runtime::ClusterConfig Scenario::make_cluster_config(
    const ScenarioConfig& config, runtime::ObsBinding obs) {
  if (config.node_count == 0) {
    throw std::invalid_argument("Scenario: need at least one node");
  }
  runtime::ClusterConfig cluster;
  cluster.seed = config.seed;
  cluster.node_count = config.node_count;
  cluster.delay = std::make_unique<net::JitterDelay>(
      config.net_base_delay, config.net_jitter, microseconds(10));
  cluster.master_secret = demo_master_secret();
  cluster.obs = obs;
  return cluster;
}

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)),
      metrics_(config_.enable_metrics ? std::make_unique<obs::Registry>()
                                      : nullptr),
      trace_(config_.trace_capacity > 0
                 ? std::make_unique<obs::RingTraceSink>(config_.trace_capacity)
                 : nullptr),
      detectors_(config_.enable_detectors
                     ? std::make_unique<obs::DetectorBank>(
                           detector_config_for(config_), metrics_.get(),
                           trace_.get())
                     : nullptr),
      trace_tee_(trace_ && detectors_ ? std::make_unique<obs::TeeTraceSink>()
                                      : nullptr),
      harness_(make_cluster_config(
          config_,
          runtime::ObsBinding{
              metrics_.get(),
              trace_tee_ ? static_cast<obs::TraceSink*>(trace_tee_.get())
              : detectors_ ? static_cast<obs::TraceSink*>(detectors_.get())
                           : static_cast<obs::TraceSink*>(trace_.get())})) {
  if (trace_tee_) {
    // Ring first so a detector alarm lands *after* its triggering event.
    trace_tee_->add(trace_.get());
    trace_tee_->add(detectors_.get());
  }
  if (metrics_ && trace_) {
    metrics_->set_help("obs_trace_dropped_total",
                       "Trace events overwritten after the ring filled");
    metrics_->counter_fn(this, "obs_trace_dropped_total", {}, [this] {
      return static_cast<double>(trace_->dropped());
    });
  }
  config_.environments.resize(config_.node_count,
                              AexEnvironment::kTriadLike);
  config_.machine_of.resize(config_.node_count, 0);
  for (std::size_t machine : config_.machine_of) {
    machine_count_ = std::max(machine_count_, machine + 1);
  }
  machine_count_ = std::max(machine_count_, config_.ta_machine + 1);

  if (config_.attested_keys) {
    // Production path: every endpoint (nodes + TA) attests its X25519
    // key, pairwise handshakes derive the session secrets the channels
    // run on. Handshake message flow happens "at deployment time" —
    // before the simulated experiment starts.
    const crypto::AttestationAuthority authority{Bytes(32, 0x7e)};
    const crypto::Measurement measurement =
        crypto::sha256(Bytes{'t', 'r', 'i', 'a', 'd'});
    std::vector<NodeId> endpoints;
    for (std::size_t i = 0; i < config_.node_count; ++i) {
      endpoints.push_back(node_address(i));
    }
    endpoints.push_back(ta_address());
    std::vector<crypto::HandshakeParty> parties;
    parties.reserve(endpoints.size());
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      parties.emplace_back(authority, endpoints[i], measurement,
                           config_.seed * 131 + i);
    }
    session_keyrings_.resize(endpoints.size());
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      session_keyrings_[i].set_self(endpoints[i]);
      for (std::size_t j = 0; j < endpoints.size(); ++j) {
        if (i == j) continue;
        auto result = parties[i].accept(parties[j].offer(), measurement);
        if (trace_) {
          obs::TraceEvent event;
          event.type = obs::TraceEventType::kHandshake;
          event.node = endpoints[i];
          event.peer = endpoints[j];
          event.a = result ? 1 : 0;
          trace_->emit(event);  // deployment time: at stays 0
        }
        if (!result) {
          throw std::logic_error("Scenario: attestation handshake failed");
        }
        session_keyrings_[i].install(endpoints[j],
                                     std::move(result->session_secret));
      }
    }
  }

  // The TA caps the server-side sleep it will honour; keep it above the
  // configured calibration probe so wait-spread experiments work.
  const Duration ta_max_wait =
      std::max(seconds(2), config_.node_template.calib_wait_high + seconds(1));
  harness_.make_time_authority(ta_max_wait, &keyring_for(ta_address()));

  if (config_.machine_interrupts) {
    for (std::size_t machine = 0; machine < machine_count_; ++machine) {
      hubs_.push_back(std::make_unique<enclave::MachineInterruptHub>(
          harness_.simulation(),
          std::make_unique<enclave::IsolatedCoreAexDistribution>(),
          harness_.simulation().rng().fork("machine-hub-" +
                                           std::to_string(machine)),
          config_.machine_full_hit_probability));
    }
  }

  for (std::size_t i = 0; i < config_.node_count; ++i) {
    TriadNode::HardwareParams hardware;  // paper machine defaults
    auto policy = config_.policy_factory ? config_.policy_factory() : nullptr;
    TriadNode& node =
        harness_.add_node(config_.node_template, hardware, std::move(policy),
                          &keyring_for(node_address(i)));

    // Every node gets a per-core AEX driver; it only runs in the
    // Triad-like environment (low-AEX cores see just the machine hub).
    auto distribution =
        config_.aex_distribution_factory
            ? config_.aex_distribution_factory()
            : std::make_unique<enclave::TriadLikeAexDistribution>();
    drivers_.push_back(std::make_unique<enclave::AexDriver>(
        harness_.simulation(), node.monitoring_thread(),
        std::move(distribution),
        harness_.simulation().rng().fork("aex-" + std::to_string(i))));

    if (!hubs_.empty() && config_.environments[i] != AexEnvironment::kNone) {
      hubs_[config_.machine_of[i]]->register_thread(
          &node.monitoring_thread());
    }
  }

  // WAN delays between endpoints on different machines (both ways).
  auto endpoint_machine = [this](NodeId address) {
    return address == ta_address() ? config_.ta_machine
                                   : config_.machine_of[address - 1];
  };
  std::vector<NodeId> endpoints;
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    endpoints.push_back(node_address(i));
  }
  endpoints.push_back(ta_address());
  for (NodeId a : endpoints) {
    for (NodeId b : endpoints) {
      if (a != b && endpoint_machine(a) != endpoint_machine(b)) {
        harness_.network().set_link_delay(
            a, b,
            std::make_unique<net::JitterDelay>(config_.wan_base_delay,
                                               config_.wan_jitter,
                                               microseconds(100)));
      }
    }
  }
}

Scenario::~Scenario() {
  // Drivers and the hub hold references into the nodes' threads; stop
  // them first, then drop attacks registered with the network.
  for (auto& driver : drivers_) driver->stop();
  for (auto& hub : hubs_) hub->stop();
  for (auto& attack : attacks_) {
    harness_.network().remove_middlebox(attack.get());
  }
  if (metrics_) metrics_->unregister(this);
}

const crypto::Keyring& Scenario::keyring_for(NodeId address) const {
  if (!config_.attested_keys) return harness_.keyring();
  // Endpoint addresses are 1..node_count for nodes, node_count+1 for the
  // TA — exactly the session_keyrings_ indices shifted by one.
  return session_keyrings_.at(address - 1);
}

NodeId Scenario::node_address(std::size_t i) const {
  return harness_.node_address(i);
}

NodeId Scenario::ta_address() const { return harness_.ta_address(); }

void Scenario::start() {
  if (started_) throw std::logic_error("Scenario::start called twice");
  started_ = true;
  harness_.start();
  for (std::size_t i = 0; i < drivers_.size(); ++i) {
    if (config_.environments[i] == AexEnvironment::kTriadLike) {
      drivers_[i]->start();
    }
  }
  for (auto& hub : hubs_) hub->start();
}

attacks::DelayAttack& Scenario::add_delay_attack(
    attacks::DelayAttackConfig config) {
  attacks_.push_back(std::make_unique<attacks::DelayAttack>(config));
  harness_.network().add_middlebox(attacks_.back().get());
  return *attacks_.back();
}

void Scenario::switch_environment_at(std::size_t i,
                                     AexEnvironment environment,
                                     SimTime t) {
  if (i >= harness_.node_count()) {
    throw std::out_of_range("Scenario: node index out of range");
  }
  harness_.simulation().schedule_at(t, [this, i, environment] {
    switch (environment) {
      case AexEnvironment::kTriadLike:
        drivers_[i]->set_distribution(
            std::make_unique<enclave::TriadLikeAexDistribution>());
        drivers_[i]->start();
        break;
      case AexEnvironment::kLowAex:
      case AexEnvironment::kNone:
        drivers_[i]->stop();
        break;
    }
  });
}

}  // namespace triad::exp
