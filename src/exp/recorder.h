// Instrumentation for figure reproduction.
//
// Attaches to a Scenario and records, per node:
//   * clock drift vs the TA reference (ms)                -> Figs 2a/3a/4/5/6a
//   * cumulative TA time references                        -> Fig 2b
//   * cumulative AEX count                                 -> Fig 6b
//   * protocol state (timing diagram)                      -> Fig 3b
// plus cluster-wide network traffic (bytes on the wire) and the
// discrete clock-adoption (time-jump) events.
//
// When the scenario has a metrics registry (enable_metrics), the
// Recorder is a *consumer* of the obs series: per-node counters and
// network byte counts are read back through the registry instead of the
// raw stats structs, and the sampled drift is mirrored into the
// triad_drift_ms gauge so the Prometheus export carries it too.
#pragma once

#include <memory>
#include <vector>

#include "exp/scenario.h"
#include "stats/timeseries.h"

namespace triad::exp {

struct AdoptionEvent {
  SimTime at = 0;
  std::size_t node = 0;       // 0-based scenario index
  SimTime local_before = 0;
  SimTime adopted = 0;
  NodeId source = 0;          // peer address or TA address
  [[nodiscard]] Duration step() const { return adopted - local_before; }
};

struct StateChangeEvent {
  SimTime at = 0;
  std::size_t node = 0;
  NodeState from{};
  NodeState to{};
};

class Recorder {
 public:
  /// Attaches hooks immediately; sampling starts at the first period.
  /// At most one Recorder per scenario (it owns the nodes' hooks).
  explicit Recorder(Scenario& scenario, Duration sample_period = seconds(1));

  [[nodiscard]] const stats::TimeSeries& drift_ms(std::size_t node) const;
  [[nodiscard]] const stats::TimeSeries& ta_references(std::size_t node) const;
  [[nodiscard]] const stats::TimeSeries& aex_count(std::size_t node) const;
  [[nodiscard]] const stats::TimeSeries& state(std::size_t node) const;

  [[nodiscard]] const std::vector<AdoptionEvent>& adoptions() const {
    return adoptions_;
  }
  [[nodiscard]] const std::vector<StateChangeEvent>& state_changes() const {
    return state_changes_;
  }

  /// Average drift rate of a node over [from, to], in ms per second,
  /// from the recorded drift series (linear fit).
  [[nodiscard]] double drift_rate_ms_per_s(std::size_t node, SimTime from,
                                           SimTime to) const;

  /// Cluster-wide network traffic (from net::NetworkStats).
  [[nodiscard]] const stats::TimeSeries& net_bytes_sent() const {
    return *net_bytes_sent_;
  }
  [[nodiscard]] const stats::TimeSeries& net_bytes_delivered() const {
    return *net_bytes_delivered_;
  }

  /// All recorded series, for CSV export.
  [[nodiscard]] const stats::SeriesSet& series() const { return series_; }

 private:
  void sample();

  Scenario& scenario_;
  stats::SeriesSet series_;
  std::vector<stats::TimeSeries*> drift_;
  std::vector<stats::TimeSeries*> ta_refs_;
  std::vector<stats::TimeSeries*> aex_;
  std::vector<stats::TimeSeries*> state_;
  stats::TimeSeries* net_bytes_sent_ = nullptr;
  stats::TimeSeries* net_bytes_delivered_ = nullptr;
  std::vector<obs::Gauge> drift_gauges_;  // triad_drift_ms{node=}; no-op
                                          // without a registry
  std::vector<AdoptionEvent> adoptions_;
  std::vector<StateChangeEvent> state_changes_;
  std::unique_ptr<runtime::PeriodicTimer> timer_;
};

}  // namespace triad::exp
