// Experiment scenario builder: one simulated machine hosting N Triad
// nodes and the Time Authority — the paper's testbed (§IV: three nodes +
// TA on a 32-core SGX2 machine).
//
// Per-node AEX environments (Figure 1) and a machine-wide interrupt hub
// model the interruption landscape; middlebox attacks and environment
// switches can be layered on top. All benches, examples, and integration
// tests build on this harness.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "attacks/delay_attack.h"
#include "crypto/channel.h"
#include "crypto/handshake.h"
#include "enclave/aex_source.h"
#include "obs/detect.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/cluster_harness.h"

namespace triad::exp {

/// Per-node interruption environment (paper Figure 1).
enum class AexEnvironment {
  kTriadLike,  // Fig. 1a: {10, 532, 1590} ms each w.p. 1/3
  kLowAex,     // Fig. 1b: isolated core; only machine-wide interrupts
  kNone,       // no interrupts at all (attacker fully isolates the core)
};

/// Creates the per-environment AEX distribution (kLowAex and kNone have
/// no per-node distribution — machine-wide interrupts still apply).
std::unique_ptr<enclave::AexDistribution> make_distribution(
    AexEnvironment environment);

struct ScenarioConfig {
  std::uint64_t seed = 1;
  std::size_t node_count = 3;
  /// Environment per node; missing entries default to kTriadLike.
  std::vector<AexEnvironment> environments;

  /// Machine-wide residual interrupts (Fig. 1b distribution) hitting all
  /// (usually) cores of one machine at once.
  bool machine_interrupts = true;
  double machine_full_hit_probability = 0.8;

  /// Machine placement: machine index per node (missing entries default
  /// to machine 0 — the paper's single-machine testbed). Nodes on
  /// different machines get WAN link delays and independent interrupt
  /// hubs; the iExec-style geo-distributed deployment.
  std::vector<std::size_t> machine_of;
  std::size_t ta_machine = 0;
  Duration wan_base_delay = milliseconds(20);
  Duration wan_jitter = milliseconds(2);

  /// Network delay: base + jitter (see net::JitterDelay). The jitter is
  /// what limits Triad's short-window calibration quality; 120 µs puts
  /// the fault-free calibration error near the paper's ~110 ppm.
  Duration net_base_delay = microseconds(150);
  Duration net_jitter = microseconds(120);

  /// Template for every node's protocol config (id/ta/peers filled in).
  TriadConfig node_template;

  /// Policy factory; null -> original Triad untainting policy.
  std::function<std::unique_ptr<UntaintPolicy>()> policy_factory;

  /// Per-node AEX distribution factory for kTriadLike environments;
  /// null -> the paper's iid TriadLikeAexDistribution. Used by the
  /// correlation ablation (MarkovAexDistribution).
  std::function<std::unique_ptr<enclave::AexDistribution>()>
      aex_distribution_factory;

  /// Derive channel keys from attestation-style X25519 handshakes
  /// between every pair of endpoints (the production path) instead of
  /// the provisioned cluster secret. External endpoints attached via
  /// keyring() are not supported in this mode (they hold no sessions).
  bool attested_keys = false;

  /// Observability: when true the scenario owns an obs::Registry that
  /// every component (sim, network, nodes, TA) registers into; read it
  /// via Scenario::metrics(). Off by default — an unobserved scenario
  /// pays nothing on the hot path.
  bool enable_metrics = false;
  /// When > 0, the scenario owns a bounded RingTraceSink holding the
  /// last `trace_capacity` protocol trace events (Scenario::trace()).
  std::size_t trace_capacity = 0;
  /// When true the scenario owns an obs::DetectorBank (the three
  /// standard F+/F− detectors) fed live from the trace stream; read
  /// verdicts via Scenario::detectors(). Alarm events land in the trace
  /// ring (when one exists) and alarm counters in the registry (when
  /// metrics are enabled).
  bool enable_detectors = false;
  /// Detector thresholds; ta_address is filled in automatically when
  /// left 0 (TA adoptions are ground truth, not suspicious jumps).
  obs::DetectorConfig detector_config;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);
  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Starts the TA (already live), nodes, and AEX machinery.
  void start();

  void run_until(SimTime t) { harness_.run_until(t); }
  void run_for(Duration d) { harness_.run_for(d); }

  /// The cluster's runtime environment (clock + scheduler + transport).
  [[nodiscard]] runtime::Env env() const { return harness_.env(); }
  [[nodiscard]] runtime::ClusterHarness& harness() { return harness_; }
  [[nodiscard]] sim::Simulation& simulation() { return harness_.simulation(); }
  [[nodiscard]] net::Network& network() { return harness_.network(); }
  /// The cluster keyring (for attaching clients / extra endpoints).
  [[nodiscard]] const crypto::Keyring& keyring() const {
    return harness_.keyring();
  }
  [[nodiscard]] ta::TimeAuthority& time_authority() {
    return harness_.time_authority();
  }
  [[nodiscard]] std::size_t node_count() const {
    return harness_.node_count();
  }
  [[nodiscard]] TriadNode& node(std::size_t i) { return harness_.node(i); }
  /// Hub of machine 0 (nullptr when machine interrupts are disabled).
  [[nodiscard]] enclave::MachineInterruptHub* machine_hub() {
    return hubs_.empty() ? nullptr : hubs_.front().get();
  }
  [[nodiscard]] std::size_t machine_count() const { return machine_count_; }
  [[nodiscard]] std::size_t machine_of(std::size_t i) const {
    return config_.machine_of.at(i);
  }

  /// The scenario-owned metrics registry (null unless enable_metrics).
  [[nodiscard]] obs::Registry* metrics() { return metrics_.get(); }
  /// The scenario-owned trace ring (null unless trace_capacity > 0).
  [[nodiscard]] obs::RingTraceSink* trace() { return trace_.get(); }
  /// The scenario-owned detector bank (null unless enable_detectors).
  [[nodiscard]] obs::DetectorBank* detectors() { return detectors_.get(); }

  /// Node addressing: node i (0-based) lives at address i+1; the TA at
  /// node_count()+1.
  [[nodiscard]] NodeId node_address(std::size_t i) const;
  [[nodiscard]] NodeId ta_address() const;

  /// Installs an F+/F- middlebox attack; the scenario owns it.
  attacks::DelayAttack& add_delay_attack(attacks::DelayAttackConfig config);

  /// Schedules an AEX-environment switch for node i at virtual time t
  /// (Fig. 6: honest nodes go Triad-like at t = 104 s).
  void switch_environment_at(std::size_t i, AexEnvironment environment,
                             SimTime t);

 private:
  /// Keyring for endpoint `address` — the shared cluster keyring, or
  /// that endpoint's handshake-derived session keyring in attested mode.
  [[nodiscard]] const crypto::Keyring& keyring_for(NodeId address) const;

  /// Builds the harness config (and validates node_count) so harness_
  /// can live in the initializer list.
  static runtime::ClusterConfig make_cluster_config(
      const ScenarioConfig& config, runtime::ObsBinding obs);

  ScenarioConfig config_;
  // Declared before harness_: every component registers into these at
  // construction and unregisters at destruction, so they must outlive it.
  std::unique_ptr<obs::Registry> metrics_;
  std::unique_ptr<obs::RingTraceSink> trace_;
  std::unique_ptr<obs::DetectorBank> detectors_;
  std::unique_ptr<obs::TeeTraceSink> trace_tee_;  // ring + detector bank
  runtime::ClusterHarness harness_;
  std::vector<crypto::SessionKeyring> session_keyrings_;  // attested mode
  std::vector<std::unique_ptr<enclave::AexDriver>> drivers_;
  std::vector<std::unique_ptr<enclave::MachineInterruptHub>> hubs_;
  std::vector<std::unique_ptr<attacks::DelayAttack>> attacks_;
  std::size_t machine_count_ = 1;
  bool started_ = false;
};

}  // namespace triad::exp
