#include "exp/recorder.h"

#include <string>

#include "stats/regression.h"

namespace triad::exp {

Recorder::Recorder(Scenario& scenario, Duration sample_period)
    : scenario_(scenario) {
  const std::size_t n = scenario.node_count();
  for (std::size_t i = 0; i < n; ++i) {
    const std::string suffix = "_node" + std::to_string(i + 1);
    drift_.push_back(&series_.add("drift_ms" + suffix));
    ta_refs_.push_back(&series_.add("ta_refs" + suffix));
    aex_.push_back(&series_.add("aex" + suffix));
    state_.push_back(&series_.add("state" + suffix));
  }
  net_bytes_sent_ = &series_.add("net_bytes_sent");
  net_bytes_delivered_ = &series_.add("net_bytes_delivered");

  if (obs::Registry* registry = scenario_.metrics(); registry != nullptr) {
    registry->set_help("triad_drift_ms",
                       "Clock drift vs the TA reference (Recorder sample)");
    for (std::size_t i = 0; i < n; ++i) {
      drift_gauges_.push_back(registry->gauge(
          "triad_drift_ms",
          {{"node", std::to_string(scenario.node_address(i))}}));
    }
  } else {
    drift_gauges_.resize(n);  // no-op handles
  }

  for (std::size_t i = 0; i < n; ++i) {
    NodeHooks hooks;
    hooks.on_adoption = [this, i](SimTime before, SimTime adopted,
                                  NodeId source) {
      adoptions_.push_back(AdoptionEvent{scenario_.simulation().now(), i,
                                         before, adopted, source});
    };
    hooks.on_state_change = [this, i](NodeState from, NodeState to) {
      state_changes_.push_back(
          StateChangeEvent{scenario_.simulation().now(), i, from, to});
      state_[i]->record(scenario_.simulation().now(),
                        static_cast<double>(to));
    };
    scenario_.node(i).set_hooks(std::move(hooks));
  }

  timer_ = std::make_unique<runtime::PeriodicTimer>(
      scenario_.env(), sample_period, [this] { sample(); });
}

void Recorder::sample() {
  const SimTime now = scenario_.simulation().now();
  obs::Registry* registry = scenario_.metrics();
  for (std::size_t i = 0; i < scenario_.node_count(); ++i) {
    TriadNode& node = scenario_.node(i);
    if (node.calibrated_frequency_hz() > 0) {
      const double drift = to_milliseconds(node.current_time() - now);
      drift_[i]->record(now, drift);
      drift_gauges_[i].set(drift);
    }
    // With a registry attached, read back the exported series (the
    // Recorder consumes the same numbers any scraper would see);
    // otherwise fall back to the raw stats struct.
    double ta_refs = 0.0;
    double aex = 0.0;
    if (registry != nullptr) {
      const obs::Labels labels{
          {"node", std::to_string(scenario_.node_address(i))}};
      ta_refs =
          registry->value("triad_node_ta_references_total", labels).value_or(0);
      aex = registry->value("triad_node_aex_total", labels).value_or(0);
    } else {
      ta_refs = static_cast<double>(node.stats().ta_time_references);
      aex = static_cast<double>(node.stats().aex_count);
    }
    ta_refs_[i]->record(now, ta_refs);
    aex_[i]->record(now, aex);
  }
  if (registry != nullptr) {
    net_bytes_sent_->record(
        now, registry->value("triad_net_bytes_sent_total").value_or(0));
    net_bytes_delivered_->record(
        now, registry->value("triad_net_bytes_delivered_total").value_or(0));
  } else {
    const net::NetworkStats& net = scenario_.network().stats();
    net_bytes_sent_->record(now, static_cast<double>(net.bytes_sent));
    net_bytes_delivered_->record(now,
                                 static_cast<double>(net.bytes_delivered));
  }
}

const stats::TimeSeries& Recorder::drift_ms(std::size_t node) const {
  return *drift_.at(node);
}
const stats::TimeSeries& Recorder::ta_references(std::size_t node) const {
  return *ta_refs_.at(node);
}
const stats::TimeSeries& Recorder::aex_count(std::size_t node) const {
  return *aex_.at(node);
}
const stats::TimeSeries& Recorder::state(std::size_t node) const {
  return *state_.at(node);
}

double Recorder::drift_rate_ms_per_s(std::size_t node, SimTime from,
                                     SimTime to) const {
  stats::LinearRegression reg;
  for (const auto& sample : drift_.at(node)->samples()) {
    if (sample.time >= from && sample.time <= to) {
      reg.add(to_seconds(sample.time), sample.value);
    }
  }
  return reg.fit().slope;
}

}  // namespace triad::exp
