// CPU core model for the TSC monitoring thread.
//
// The monitoring loop executes INC instructions and polls the TSC. The
// number of INCs per unit real time depends on the core's clock frequency
// (set by the frequency-scaling governor) and the loop's cycle cost.
// Parameters are fitted to the paper's measurement: at 3500 MHz
// ("performance" governor) the thread retires ~632182 INCs while the
// 2899.999 MHz TSC advances 15e6 ticks (~5.17 ms), with a ~2.9 INC
// standard deviation once warm.
#pragma once

#include "util/rng.h"
#include "util/types.h"

namespace triad::tsc {

/// Paper's monitoring core at the "performance" governor setting.
inline constexpr double kPaperCoreFrequencyHz = 3500.0e6;

/// Loop cost fitted so that 5.172 ms of real time yields ~632182 INCs.
inline constexpr double kPaperCyclesPerIteration = 28.6365;

struct CoreParams {
  double frequency_hz = kPaperCoreFrequencyHz;
  double cycles_per_iteration = kPaperCyclesPerIteration;
  /// Per-measurement jitter (instruction-level noise), in INC units.
  double inc_noise_stddev = 2.05;
};

class Core {
 public:
  Core(CoreParams params, Rng rng);

  /// INC instructions a busy loop retires in `dt` of real time, with
  /// measurement noise. dt must be non-negative.
  [[nodiscard]] std::uint64_t inc_count(Duration dt);

  /// Noise-free expected INC count for `dt` of real time.
  [[nodiscard]] double expected_inc_count(Duration dt) const;

  /// Intel cores switch between discrete P-state frequencies; the
  /// governor (OS-controlled, i.e. attacker-controlled) picks one.
  void set_frequency_hz(double hz);
  [[nodiscard]] double frequency_hz() const { return params_.frequency_hz; }

  [[nodiscard]] const CoreParams& params() const { return params_; }

 private:
  CoreParams params_;
  Rng rng_;
};

}  // namespace triad::tsc
