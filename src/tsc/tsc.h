// TimeStamp Counter model.
//
// The TSC ticks at a fixed hardware frequency relative to reference
// (simulation) time. A malicious hypervisor may virtualize it with an
// offset and a scaling factor — the manipulation surface Section III-A of
// the paper grants the attacker. Reads are whole ticks and are strictly
// non-decreasing as long as the hypervisor does not apply a negative
// offset (time-jump attacks do exactly that, and the INC monitor is what
// should catch them).
#pragma once

#include <cstdint>

#include "runtime/env.h"
#include "util/types.h"

namespace triad::tsc {

/// Paper's machine: F_TSC = 2899.999 MHz as measured by the OS at boot.
inline constexpr double kPaperTscFrequencyHz = 2899.999e6;

class Tsc {
 public:
  /// initial_value lets scenarios start the counter at a non-zero point,
  /// as a real machine would after boot.
  Tsc(const runtime::Clock& clock, double frequency_hz,
      TscValue initial_value = 0);

  /// Guest-visible TSC value at the current reference time.
  [[nodiscard]] TscValue read() const;

  /// The true hardware tick rate (ticks per reference second).
  [[nodiscard]] double true_frequency_hz() const { return frequency_hz_; }

  /// Guest-visible tick rate = true frequency * hypervisor scale.
  [[nodiscard]] double effective_frequency_hz() const {
    return frequency_hz_ * scale_;
  }

  // --- Hypervisor attack surface -------------------------------------

  /// Jumps the guest-visible TSC by `ticks` (may be negative: back in
  /// time — architecturally possible for a malicious VMM on SGX1/SGX2).
  void hv_add_offset(std::int64_t ticks);

  /// Changes the guest-visible tick rate. The value stays continuous at
  /// the switch instant (as TSC-scaling virtualization behaves).
  void hv_set_scale(double scale);

  [[nodiscard]] double scale() const { return scale_; }

  [[nodiscard]] const runtime::Clock& clock() const { return clock_; }

 private:
  [[nodiscard]] double raw_value_at_now() const;

  const runtime::Clock& clock_;
  double frequency_hz_;
  double scale_ = 1.0;
  // Piecewise-linear segments: value_base_ at time segment_start_.
  SimTime segment_start_ = 0;
  double value_base_ = 0.0;
};

}  // namespace triad::tsc
