#include "tsc/tsc.h"

#include <cmath>
#include <stdexcept>

namespace triad::tsc {

Tsc::Tsc(const runtime::Clock& clock, double frequency_hz,
         TscValue initial_value)
    : clock_(clock), frequency_hz_(frequency_hz),
      segment_start_(clock.now()),
      value_base_(static_cast<double>(initial_value)) {
  if (frequency_hz <= 0) {
    throw std::invalid_argument("Tsc: frequency must be positive");
  }
}

double Tsc::raw_value_at_now() const {
  const double elapsed_s = to_seconds(clock_.now() - segment_start_);
  return value_base_ + elapsed_s * frequency_hz_ * scale_;
}

TscValue Tsc::read() const {
  const double v = raw_value_at_now();
  // A manipulated counter can in principle go negative; clamp at zero as
  // the register is unsigned.
  if (v <= 0.0) return 0;
  return static_cast<TscValue>(v);
}

void Tsc::hv_add_offset(std::int64_t ticks) {
  value_base_ = raw_value_at_now() + static_cast<double>(ticks);
  segment_start_ = clock_.now();
}

void Tsc::hv_set_scale(double scale) {
  if (scale <= 0) throw std::invalid_argument("Tsc: scale must be positive");
  // Close the current segment so the value is continuous at the switch.
  value_base_ = raw_value_at_now();
  segment_start_ = clock_.now();
  scale_ = scale;
}

}  // namespace triad::tsc
