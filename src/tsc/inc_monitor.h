// Enclave-thread INC-instruction TSC monitor (paper §IV-A1, RQ A.1).
//
// The monitoring thread busy-loops, counting INC instructions until the
// TSC advances by a fixed window. With a fixed core frequency the INC
// count per window is extremely stable (the paper measures a range of 10
// INCs over 10k runs once warm), so deviations expose TSC manipulation:
//  * hypervisor scaling: window completes in the wrong real time;
//  * offset jumps: window completes almost instantly or very late.
// The catch — the paper's central observation — is that this mechanism
// only ties TSC ticks to *core cycles*, not to true seconds; an attacker
// who biases the TA calibration (F+/F-) never trips it.
#pragma once

#include <cstdint>

#include "tsc/core.h"
#include "tsc/tsc.h"

namespace triad::tsc {

/// Paper's measurement window: 15e6 TSC ticks (~5.17 ms at 2.9 GHz).
inline constexpr TscValue kPaperWindowTicks = 15'000'000;

struct IncCalibration {
  TscValue window_ticks = 0;
  double mean_inc = 0.0;
  double stddev_inc = 0.0;
  std::size_t runs = 0;
};

class IncMonitor {
 public:
  /// The monitor reads the guest-visible TSC and runs on `core`.
  IncMonitor(const Tsc& tsc, Core& core);

  /// Simulates one uninterrupted measurement: INCs retired while the
  /// guest TSC advances `window_ticks`.
  [[nodiscard]] std::uint64_t measure_window(TscValue window_ticks);

  /// Runs `runs` uninterrupted measurements and summarizes them.
  [[nodiscard]] IncCalibration calibrate(TscValue window_ticks, int runs);

  /// Takes one measurement and compares it with the calibration.
  /// Tolerance is max(tolerance_sigmas * stddev, min_tolerance_inc).
  /// Returns true when the measurement is consistent (no manipulation
  /// detected). Catches an *ongoing* rate mismatch between the TSC and
  /// the core (hypervisor scaling, governor change).
  [[nodiscard]] bool check(const IncCalibration& calibration,
                           double tolerance_sigmas = 6.0,
                           double min_tolerance_inc = 8.0);

  // --- continuity tracking --------------------------------------------
  // The monitoring thread runs windows back-to-back while uninterrupted;
  // the INC counts accumulated over an interval predict how many ticks
  // the TSC must have advanced. An offset jump (forward or backward)
  // breaks that prediction even if the rate is untouched.

  /// (Re)starts continuity tracking from the current instant — called at
  /// monitor start and after every handled AEX.
  void reset_continuity();

  struct ContinuityCheck {
    double observed_ticks = 0.0;  // actual TSC advance over the interval
    double expected_ticks = 0.0;  // advance predicted from INC counting
    bool consistent = false;
  };

  /// Compares the TSC's advance since the last reset against the
  /// INC-predicted advance. Tolerance: max(min_tolerance_ticks,
  /// rate_tolerance_ppm * expected).
  [[nodiscard]] ContinuityCheck check_continuity(
      const IncCalibration& calibration, double rate_tolerance_ppm = 50.0,
      double min_tolerance_ticks = 1.0e6);

 private:
  const Tsc& tsc_;
  Core& core_;
  bool tracking_ = false;
  TscValue continuity_tsc_ = 0;
  SimTime continuity_time_ = 0;
};

}  // namespace triad::tsc
