#include "tsc/core.h"

#include <cmath>
#include <stdexcept>

namespace triad::tsc {

Core::Core(CoreParams params, Rng rng) : params_(params), rng_(rng) {
  if (params_.frequency_hz <= 0 || params_.cycles_per_iteration <= 0 ||
      params_.inc_noise_stddev < 0) {
    throw std::invalid_argument("Core: invalid parameters");
  }
}

double Core::expected_inc_count(Duration dt) const {
  if (dt < 0) throw std::invalid_argument("Core: negative duration");
  return params_.frequency_hz * to_seconds(dt) /
         params_.cycles_per_iteration;
}

std::uint64_t Core::inc_count(Duration dt) {
  const double expected = expected_inc_count(dt);
  const double noisy =
      expected + rng_.normal(0.0, params_.inc_noise_stddev);
  return noisy <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(noisy));
}

void Core::set_frequency_hz(double hz) {
  if (hz <= 0) throw std::invalid_argument("Core: frequency must be positive");
  params_.frequency_hz = hz;
}

}  // namespace triad::tsc
