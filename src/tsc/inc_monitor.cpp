#include "tsc/inc_monitor.h"

#include <cmath>
#include <stdexcept>

namespace triad::tsc {

IncMonitor::IncMonitor(const Tsc& tsc, Core& core) : tsc_(tsc), core_(core) {}

std::uint64_t IncMonitor::measure_window(TscValue window_ticks) {
  if (window_ticks == 0) {
    throw std::invalid_argument("IncMonitor: zero window");
  }
  // Real time needed for the guest TSC to advance window_ticks at its
  // current effective (possibly hypervisor-scaled) rate.
  const double dt_s =
      static_cast<double>(window_ticks) / tsc_.effective_frequency_hz();
  return core_.inc_count(from_seconds(dt_s));
}

IncCalibration IncMonitor::calibrate(TscValue window_ticks, int runs) {
  if (runs < 2) throw std::invalid_argument("IncMonitor: need >= 2 runs");
  IncCalibration cal;
  cal.window_ticks = window_ticks;
  cal.runs = static_cast<std::size_t>(runs);
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < runs; ++i) {
    const auto inc = static_cast<double>(measure_window(window_ticks));
    sum += inc;
    sum_sq += inc * inc;
  }
  const auto n = static_cast<double>(runs);
  cal.mean_inc = sum / n;
  const double var = (sum_sq - sum * sum / n) / (n - 1);
  cal.stddev_inc = var > 0 ? std::sqrt(var) : 0.0;
  return cal;
}

bool IncMonitor::check(const IncCalibration& calibration,
                       double tolerance_sigmas, double min_tolerance_inc) {
  if (calibration.window_ticks == 0) {
    throw std::invalid_argument("IncMonitor::check: uncalibrated");
  }
  const auto measured =
      static_cast<double>(measure_window(calibration.window_ticks));
  const double tolerance = std::max(
      tolerance_sigmas * calibration.stddev_inc, min_tolerance_inc);
  return std::abs(measured - calibration.mean_inc) <= tolerance;
}

void IncMonitor::reset_continuity() {
  tracking_ = true;
  continuity_tsc_ = tsc_.read();
  continuity_time_ = tsc_.clock().now();
}

IncMonitor::ContinuityCheck IncMonitor::check_continuity(
    const IncCalibration& calibration, double rate_tolerance_ppm,
    double min_tolerance_ticks) {
  if (calibration.window_ticks == 0 || calibration.mean_inc <= 0) {
    throw std::invalid_argument("IncMonitor::check_continuity: uncalibrated");
  }
  if (!tracking_) {
    throw std::logic_error(
        "IncMonitor::check_continuity: reset_continuity not called");
  }
  ContinuityCheck result;
  const SimTime now = tsc_.clock().now();
  const Duration dt = now - continuity_time_;

  result.observed_ticks = static_cast<double>(tsc_.read()) -
                          static_cast<double>(continuity_tsc_);
  // INCs the loop retired over the uninterrupted interval, converted to
  // ticks through the calibrated INC-per-window ratio.
  const double ticks_per_inc =
      static_cast<double>(calibration.window_ticks) / calibration.mean_inc;
  result.expected_ticks =
      static_cast<double>(core_.inc_count(dt)) * ticks_per_inc;

  const double tolerance = std::max(
      min_tolerance_ticks, rate_tolerance_ppm * 1e-6 * result.expected_ticks);
  result.consistent =
      std::abs(result.observed_ticks - result.expected_ticks) <= tolerance;
  return result;
}

}  // namespace triad::tsc
