#include "t3e/t3e_node.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace triad::t3e {

T3eNode::T3eNode(runtime::Env env, Tpm& tpm, T3eConfig config)
    : env_(env), tpm_(tpm), config_(config) {
  if (config_.refresh_period <= 0 || config_.max_uses == 0) {
    throw std::invalid_argument("T3eConfig: invalid parameters");
  }
  if (obs::Registry* registry = env_.metrics(); registry != nullptr) {
    const auto count = [&](const std::uint64_t T3eStats::* field,
                           const char* name, const char* help) {
      registry->set_help(name, help);
      registry->counter_fn(this, name, {}, [this, field] {
        return static_cast<double>(stats_.*field);
      });
    };
    count(&T3eStats::tpm_reads, "triad_t3e_tpm_reads_total",
          "TPM clock fetches requested");
    count(&T3eStats::served, "triad_t3e_served_total",
          "Timestamps served from the current reading");
    count(&T3eStats::stalled, "triad_t3e_stalled_total",
          "Requests refused: reading depleted or missing");
  }
}

T3eNode::~T3eNode() {
  if (env_.metrics() != nullptr) env_.metrics()->unregister(this);
}

void T3eNode::start() {
  if (started_) throw std::logic_error("T3eNode::start called twice");
  started_ = true;
  refresh();  // immediate first read
  refresh_timer_ = std::make_unique<runtime::PeriodicTimer>(
      env_, config_.refresh_period, [this] { refresh(); });
}

void T3eNode::refresh() {
  ++stats_.tpm_reads;
  tpm_.read_clock([this](SimTime tpm_time) {
    // Stale responses (attacker reordering long-delayed ones) must not
    // roll the reading backwards.
    if (have_reading_ && tpm_time <= reading_tpm_time_) return;
    have_reading_ = true;
    reading_tpm_time_ = tpm_time;
    uses_left_ = config_.max_uses;
  });
}

bool T3eNode::available() const { return have_reading_ && uses_left_ > 0; }

std::optional<SimTime> T3eNode::serve_timestamp() {
  if (!available()) {
    ++stats_.stalled;
    return std::nullopt;
  }
  --uses_left_;
  ++stats_.served;
  // The raw TPM reading, monotonicized. No interpolation: the enclave
  // has no trusted local timer to interpolate with — that is the whole
  // reason for the use-quota design.
  const SimTime ts = std::max(reading_tpm_time_, last_served_ + 1);
  last_served_ = ts;
  return ts;
}

}  // namespace triad::t3e
