// Trusted Platform Module clock model (baseline substrate, paper §II-A).
//
// T3E uses a TPM colocated with the TEE as its time source. Relevant
// properties from the paper's discussion:
//  * TPM commands travel through the OS-controlled stack, so responses
//    can be delayed arbitrarily by the attacker (but not forged — the
//    TPM signs/sessions its responses; we model authenticity as given);
//  * command latency is milliseconds even when honest;
//  * the TPM's clock itself may be configured by its owner with up to a
//    ±32.5 % drift rate relative to real time (TPM 2.0 library spec).
#pragma once

#include <cstdint>
#include <functional>

#include "runtime/env.h"
#include "util/rng.h"
#include "util/types.h"

namespace triad::t3e {

struct TpmParams {
  /// TPM clock rate relative to real time (1.0 = nominal). The TPM
  /// owner (the attacker, for a hostile host) may configure this within
  /// TPM2 spec limits of ±32.5 %.
  double rate = 1.0;
  /// Honest base latency of a ReadClock command round-trip.
  Duration command_latency = milliseconds(3);
  /// Latency jitter (truncated normal).
  Duration latency_jitter = microseconds(300);
};

class Tpm {
 public:
  Tpm(runtime::Env env, TpmParams params, Rng rng);

  /// Issues an asynchronous ReadClock. The callback receives the TPM's
  /// clock value (ns of *TPM time*) as sampled when the command executes
  /// inside the TPM; delivery is after command latency plus any
  /// attacker-injected delay.
  using ReadCallback = std::function<void(SimTime tpm_time)>;
  void read_clock(ReadCallback callback);

  /// The attacker owns the host: it may delay each response by the
  /// duration this hook returns (called once per command).
  void set_response_delay_hook(std::function<Duration()> hook);

  /// TPM owner configuration (attack surface): change the clock rate.
  /// Throws outside the TPM2 spec envelope [0.675, 1.325].
  void configure_rate(double rate);

  /// Current TPM clock value (continuous across rate changes).
  [[nodiscard]] SimTime clock_now() const;

  [[nodiscard]] std::uint64_t commands_served() const { return commands_; }

 private:
  runtime::Env env_;
  TpmParams params_;
  Rng rng_;
  std::function<Duration()> delay_hook_;
  // Piecewise-linear clock (rate changes keep continuity).
  SimTime segment_start_ = 0;
  double clock_base_ns_ = 0.0;
  std::uint64_t commands_ = 0;
};

}  // namespace triad::t3e
