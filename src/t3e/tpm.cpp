#include "t3e/tpm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace triad::t3e {

Tpm::Tpm(runtime::Env env, TpmParams params, Rng rng)
    : env_(env), params_(params), rng_(rng),
      segment_start_(env.now()) {
  if (params_.rate < 0.675 || params_.rate > 1.325) {
    throw std::invalid_argument("Tpm: rate outside TPM2 spec envelope");
  }
  if (params_.command_latency < 0 || params_.latency_jitter < 0) {
    throw std::invalid_argument("Tpm: negative latency");
  }
}

SimTime Tpm::clock_now() const {
  const double elapsed =
      static_cast<double>(env_.now() - segment_start_);
  return static_cast<SimTime>(clock_base_ns_ + elapsed * params_.rate);
}

void Tpm::configure_rate(double rate) {
  if (rate < 0.675 || rate > 1.325) {
    throw std::invalid_argument("Tpm: rate outside TPM2 spec envelope");
  }
  clock_base_ns_ = static_cast<double>(clock_now());
  segment_start_ = env_.now();
  params_.rate = rate;
}

void Tpm::set_response_delay_hook(std::function<Duration()> hook) {
  delay_hook_ = std::move(hook);
}

void Tpm::read_clock(ReadCallback callback) {
  if (!callback) throw std::invalid_argument("Tpm: null callback");
  ++commands_;
  // Command executes inside the TPM after half the honest latency; the
  // response then travels back through the OS, where the attacker can
  // sit on it.
  const Duration jitter = static_cast<Duration>(std::abs(
      rng_.normal(0.0, static_cast<double>(params_.latency_jitter))));
  const Duration to_tpm = (params_.command_latency + jitter) / 2;
  env_.schedule_after(to_tpm, [this, callback = std::move(callback),
                               jitter]() mutable {
    const SimTime sampled = clock_now();
    Duration back = (params_.command_latency + jitter) / 2;
    if (delay_hook_) back += std::max<Duration>(0, delay_hook_());
    env_.schedule_after(back, [callback = std::move(callback), sampled] {
      callback(sampled);
    });
  });
}

}  // namespace triad::t3e
