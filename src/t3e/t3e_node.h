// T3E-style trusted-time node (Hamidy, Philippaerts, Joosen — NSS'23),
// as characterized in the paper's related work (§II-A): the baseline
// Triad is compared against.
//
// Mechanism: the enclave periodically reads the colocated TPM's clock
// and serves the *raw TPM timestamp* (monotonicized) to applications.
// Crucially the enclave has no other trustworthy timer, so it cannot
// measure how stale a reading is; instead each fetched timestamp may be
// used to answer at most `max_uses` requests. When uses are depleted
// before a fresh TPM reading arrives, the enclave STALLS. An attacker
// who blocks or slows TPM responses to stretch one timestamp therefore
// collapses the application's throughput (loud) instead of silently
// shifting time; an attacker merely delaying every response by D shifts
// served time back by at most ~D (bounded, unlike Triad's F- skew).
// The flip sides, per the paper: `max_uses` is workload-dependent, and a
// TPM owner can configure up to ±32.5 % clock drift T3E cannot see.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "runtime/env.h"
#include "t3e/tpm.h"
#include "util/types.h"

namespace triad::t3e {

struct T3eConfig {
  /// How often the enclave requests a fresh TPM timestamp.
  Duration refresh_period = milliseconds(50);
  /// Application requests servable per fetched TPM timestamp.
  std::uint32_t max_uses = 100;
};

struct T3eStats {
  std::uint64_t tpm_reads = 0;
  std::uint64_t served = 0;
  std::uint64_t stalled = 0;  // refusals: no usable reading
};

class T3eNode {
 public:
  T3eNode(runtime::Env env, Tpm& tpm, T3eConfig config);
  ~T3eNode();
  T3eNode(const T3eNode&) = delete;
  T3eNode& operator=(const T3eNode&) = delete;

  void start();

  /// Serves a trusted timestamp, or nullopt while stalled.
  [[nodiscard]] std::optional<SimTime> serve_timestamp();

  /// True when a request right now would be served.
  [[nodiscard]] bool available() const;

  [[nodiscard]] const T3eStats& stats() const { return stats_; }

 private:
  void refresh();

  runtime::Env env_;
  Tpm& tpm_;
  T3eConfig config_;
  std::unique_ptr<runtime::PeriodicTimer> refresh_timer_;
  bool started_ = false;

  // Last accepted TPM reading.
  bool have_reading_ = false;
  SimTime reading_tpm_time_ = 0;
  std::uint32_t uses_left_ = 0;
  SimTime last_served_ = 0;
  T3eStats stats_;
};

}  // namespace triad::t3e
