// Binds the deterministic simulator to the runtime interfaces.
//
// This is the ONLY place where sim::Simulation / net::Network meet the
// protocol stack: Simulation already implements runtime::Clock and
// runtime::Scheduler; SimEnv adds the Transport adapter over net::Network
// and hands out the Env aggregate that components are built on.
#pragma once

#include <optional>

#include "net/network.h"
#include "runtime/env.h"
#include "sim/simulation.h"

namespace triad::runtime {

/// Transport over the simulated UDP network. net::Packet (owning) is
/// exposed to handlers as runtime::Packet (borrowing view).
class SimTransport final : public Transport {
 public:
  explicit SimTransport(net::Network& network) : network_(network) {}

  void attach(NodeId addr, PacketHandler handler) override;
  void detach(NodeId addr) override { network_.detach(addr); }
  void send(NodeId src, NodeId dst, Bytes payload) override {
    network_.send(src, dst, std::move(payload));
  }

 private:
  net::Network& network_;
};

/// One simulated environment: Simulation for clock+scheduler+rng, and an
/// optional Network for transport. Components receive env() by value;
/// SimEnv must outlive every component built on it.
///
/// An ObsBinding given here is threaded everywhere: into the Env handed
/// to protocol components AND into the backends themselves (Simulation
/// registers its event-loop metrics, Network its packet metrics + trace
/// events), so one attachment observes the whole environment.
class SimEnv {
 public:
  /// Environment without a network (Env::transport() throws).
  explicit SimEnv(sim::Simulation& sim, ObsBinding obs = {})
      : env_(sim, sim, nullptr, sim.rng(), obs) {
    sim.bind_obs(obs.metrics);
  }

  SimEnv(sim::Simulation& sim, net::Network& network, ObsBinding obs = {})
      : transport_(std::in_place, network),
        env_(sim, sim, &transport_.value(), sim.rng(), obs) {
    sim.bind_obs(obs.metrics);
    network.bind_obs(obs.metrics, obs.trace);
  }

  [[nodiscard]] Env env() const { return env_; }
  operator Env() const { return env_; }  // NOLINT(google-explicit-constructor)

 private:
  std::optional<SimTransport> transport_;
  Env env_;
};

}  // namespace triad::runtime
