// Real-transport backend for the runtime interfaces: wall-clock time,
// an epoll-driven timer loop, and UDP sockets.
//
// This is the second binding of Clock/Scheduler/Transport (the first is
// SimEnv): the same protocol components — triad::Node, ta::TimeAuthority,
// TrustedTimeClient — run unmodified against real sockets. What carries
// over from the determinism contract (DESIGN.md, "Runtime layer"):
//   * one event loop per environment totally orders callbacks; timers
//     with equal deadlines fire in scheduling order (FIFO);
//   * packet delivery runs through the same loop as timers;
//   * all protocol randomness still flows from Env::fork_rng streams.
// What obviously does not: now() is wall time, so runs are not
// replayable — RealEnv is the deployment backend, SimEnv remains the
// deterministic twin for tests (same trace-event sequence, different
// timestamps; tests/real_env_test.cpp pins the cross-check).
//
// Layering note for triad_lint R1: every ambient-IO syscall
// (epoll_create1/epoll_wait/recvmmsg/sendmmsg and the socket setup
// around them) lives in real_env.cpp, each a named allowlist entry.
// Everything else — the triad_timed service, benches, tests — goes
// through the UdpSocket/EpollLoop/RealEnv wrappers declared here.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/env.h"
#include "runtime/monotonic_timer.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/types.h"

namespace triad::runtime {

/// Wall clock for a real environment: nanoseconds since construction, so
/// SimTime stays a small positive int64 and logs/traces read like the
/// simulator's. Each process has its own epoch — cross-machine offsets
/// are exactly what the protocol calibrates away via the TA.
class RealClock final : public Clock {
 public:
  RealClock() = default;
  [[nodiscard]] SimTime now() const override {
    return static_cast<SimTime>(timer_.elapsed_ns());
  }

 private:
  MonotonicTimer timer_;
};

/// An IPv4 UDP endpoint. Kept as a plain value type so the address book
/// and CLI parsing stay free of <netinet/in.h> outside real_env.cpp.
struct SockAddr {
  std::uint32_t ip = 0;  // host byte order; 127.0.0.1 = 0x7f000001
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(SockAddr, SockAddr) = default;
};

/// Parses "a.b.c.d:port". Returns nullopt on malformed input.
[[nodiscard]] std::optional<SockAddr> parse_sockaddr(std::string_view text);

inline constexpr SockAddr kLoopbackAny{0x7f000001u, 0};

/// Batch sizes for the mmsg paths. 32 datagrams per syscall amortizes
/// the syscall to ~30 ns/packet while keeping the per-socket buffers
/// (32 * 2 KiB) small enough to live on every worker.
inline constexpr std::size_t kRecvBatch = 32;
inline constexpr std::size_t kDatagramBufSize = 2048;

/// One received datagram inside a RecvBatch (view into the batch's
/// buffers; valid until the next receive call).
struct RecvView {
  BytesView data;
  SockAddr from;
};

/// RAII non-blocking UDP socket with batched (recvmmsg/sendmmsg) IO.
/// Move-only; the fd closes on destruction.
class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Binds a UDP socket on `addr` (port 0 = ephemeral). With `reuse_port`
  /// several sockets may bind the same address and the kernel shards
  /// senders across them by flow hash — the triad_timed worker model.
  /// Returns an unbound (invalid) socket on failure and, when `error` is
  /// non-null, stores the errno message.
  [[nodiscard]] static UdpSocket bind(SockAddr addr, bool reuse_port = false,
                                      std::string* error = nullptr);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// The actually bound address (resolves port 0 to the kernel's pick).
  [[nodiscard]] SockAddr local_addr() const;

  /// Blocking receive timeout; 0 restores non-blocking mode.
  void set_recv_timeout_ms(int ms);

  /// Sends one datagram. Returns false on a (transient) send failure —
  /// UDP semantics, the caller treats it like a dropped packet.
  bool send_to(SockAddr to, BytesView datagram);

  /// Receives up to kRecvBatch datagrams in one recvmmsg call. Returns
  /// the number received (0 on timeout/EAGAIN). Views stay valid until
  /// the next recv_batch on this socket.
  std::size_t recv_batch(std::array<RecvView, kRecvBatch>& out);

  /// Sends `count` datagrams from `bufs` to `to` in one sendmmsg call.
  /// Returns the number actually handed to the kernel.
  std::size_t send_batch(SockAddr to, const std::vector<Bytes>& bufs,
                         std::size_t count);

  [[nodiscard]] int fd() const { return fd_; }

 private:
  explicit UdpSocket(int fd);
  struct BatchBuffers;  // recvmmsg scratch (iovecs, msghdrs, addresses)
  void ensure_buffers();

  int fd_ = -1;
  std::unique_ptr<BatchBuffers> buffers_;
};

/// RAII TCP connection (the telemetry scrape path). Move-only; blocking
/// IO with send/receive timeouts, so a stalled scraper can delay the
/// owning loop by at most the timeout — acceptable for the read-only
/// telemetry plane, which serves operators, not the protocol. Created by
/// TcpListener::accept_client (server side) or TcpConn::dial (client).
class TcpConn {
 public:
  TcpConn() = default;
  ~TcpConn();
  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Blocking client connect with `timeout_ms` applied to the connect
  /// itself and to subsequent reads/writes. Invalid conn on failure
  /// (errno message in *error when non-null).
  [[nodiscard]] static TcpConn dial(SockAddr addr, int timeout_ms = 2000,
                                    std::string* error = nullptr);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Reads up to `max` bytes. Returns the count read; 0 on orderly EOF,
  /// timeout, or error (the caller closes either way).
  std::size_t read_some(std::uint8_t* buf, std::size_t max);
  /// Writes the whole buffer; false on any failure, or once the *total*
  /// elapsed time exceeds the connection timeout. SO_SNDTIMEO only
  /// bounds each individual write(), so without the cumulative deadline
  /// a reader draining one byte per interval (slow loris) could stall
  /// the caller indefinitely.
  bool write_all(BytesView data);
  /// Half-close: signals EOF to the peer while reads stay open.
  void shutdown_write();
  void close_now();

 private:
  friend class TcpListener;
  explicit TcpConn(int fd, int timeout_ms = 0)
      : fd_(fd), timeout_ms_(timeout_ms) {}
  int fd_ = -1;
  int timeout_ms_ = 0;  // 0 = no cumulative write deadline
};

/// RAII listening TCP socket for the telemetry endpoints. The listener
/// itself is non-blocking (epoll-registered); accepted connections come
/// back as blocking TcpConns with timeouts (see TcpConn).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on `addr` (port 0 = ephemeral). Invalid listener
  /// on failure (errno message in *error when non-null).
  [[nodiscard]] static TcpListener open(SockAddr addr,
                                        std::string* error = nullptr);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  /// The actually bound address (resolves port 0 to the kernel's pick).
  [[nodiscard]] SockAddr local_addr() const;

  /// Accepts one pending connection; invalid TcpConn when none is
  /// pending (the listener is non-blocking) or on accept failure.
  [[nodiscard]] TcpConn accept_client(int timeout_ms = 2000);

 private:
  explicit TcpListener(int fd) : fd_(fd) {}
  int fd_ = -1;
};

class RealScheduler;

/// Level-triggered epoll loop owning the environment's thread of
/// control: fd readability callbacks and the scheduler's due timers all
/// run here, which is what totally orders callbacks like the simulator
/// does. stop() is safe from other threads and from signal handlers
/// (one eventfd write).
class EpollLoop {
 public:
  EpollLoop();
  ~EpollLoop();
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  [[nodiscard]] bool valid() const { return epoll_fd_ >= 0; }

  /// Registers a readability callback for `fd`. One callback per fd.
  void add_fd(int fd, std::function<void()> on_readable);
  void remove_fd(int fd);

  /// Runs until stop(): waits for fd events or the next timer deadline,
  /// dispatches both. `scheduler` provides the deadlines.
  void run(RealScheduler& scheduler, const Clock& clock);
  /// Runs until `deadline` (clock time) passes or stop() is called.
  void run_until(RealScheduler& scheduler, const Clock& clock,
                 SimTime deadline);

  /// Requests the loop to exit its next iteration. Async-signal-safe.
  void stop();
  [[nodiscard]] bool stopped() const {
    return stop_requested_.load(std::memory_order_acquire);
  }
  /// Re-arms a stopped loop (tests run the loop repeatedly).
  void reset_stop() { stop_requested_.store(false, std::memory_order_release); }

 private:
  /// One pass: wait up to `timeout_ms`, dispatch fds, fire due timers.
  void poll_once(RealScheduler& scheduler, const Clock& clock,
                 int timeout_ms);
  void drain_wakeup() const;

  struct FdHandler {
    int fd = -1;
    std::function<void()> on_readable;
  };

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;  // eventfd: stop() and cross-thread nudges
  std::vector<FdHandler> handlers_;
  std::atomic<bool> stop_requested_{false};
};

/// Timer min-heap with the simulator's FIFO-at-equal-deadline ordering
/// and slab-style cancellable ids. Driven by EpollLoop; single-threaded
/// (loop thread only), like every other Scheduler binding.
class RealScheduler final : public Scheduler {
 public:
  explicit RealScheduler(const Clock& clock) : clock_(clock) {}

  TimerId schedule_at(SimTime t, std::function<void()> fn) override;
  TimerId schedule_after(Duration delay, std::function<void()> fn) override;
  bool cancel(TimerId id) override;

  /// Next pending deadline, or nullopt when idle.
  [[nodiscard]] std::optional<SimTime> next_deadline();
  /// Fires every timer with deadline <= now, in (time, FIFO) order.
  void fire_due(SimTime now);
  [[nodiscard]] std::size_t pending() const { return live_count_; }

 private:
  struct Slot {
    std::function<void()> fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = 0;
    bool live = false;
  };
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
  };
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;
  static std::uint32_t slot_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t generation_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  void purge_dead_top();

  const Clock& clock_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
  std::vector<Entry> heap_;  // min-heap via std::push_heap/pop_heap
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;
};

/// Statistics mirroring net::NetworkStats for the real transport.
struct UdpTransportStats {
  std::uint64_t sent = 0;
  std::uint64_t send_failures = 0;     // sendto errors (treated as drops)
  std::uint64_t delivered = 0;
  std::uint64_t decode_errors = 0;     // short/garbage/wrong-magic datagrams
  std::uint64_t dropped_no_receiver = 0;
  std::uint64_t dropped_unknown_peer = 0;  // send() to an unmapped NodeId
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
};

/// runtime::Transport over one UDP socket + a NodeId -> SockAddr address
/// book. Several local NodeIds may attach (a node and a colocated client
/// share the socket); the wire-frame dst field selects the handler.
/// Malformed datagrams are counted and dropped, never fatal — sealed-
/// frame auth failures are the attached component's to count, exactly as
/// on the sim path.
class UdpTransport final : public Transport {
 public:
  /// Binds `listen` (port 0 = ephemeral) and registers with `loop`.
  /// Check valid() afterwards; a failed bind leaves an inert transport.
  UdpTransport(EpollLoop& loop, const Clock& clock, SockAddr listen,
               bool reuse_port = false);
  ~UdpTransport() override;

  [[nodiscard]] bool valid() const { return socket_.valid(); }
  [[nodiscard]] SockAddr local_addr() const { return socket_.local_addr(); }
  [[nodiscard]] const std::string& bind_error() const { return bind_error_; }

  /// Maps a peer NodeId to its UDP endpoint (send() destinations).
  void set_peer(NodeId peer, SockAddr addr);

  /// When on (the default), the source endpoint of each valid incoming
  /// frame is recorded in the address book, so servers can answer
  /// clients that never appeared in static config. A spoofed src id can
  /// redirect *future* replies to the spoofer — which only withholds
  /// sealed (useless-to-them) frames, a capability the network attacker
  /// already has by dropping datagrams.
  void set_learn_peers(bool on) { learn_peers_ = on; }

  void attach(NodeId addr, PacketHandler handler) override;
  void detach(NodeId addr) override;
  void send(NodeId src, NodeId dst, Bytes payload) override;

  [[nodiscard]] const UdpTransportStats& stats() const { return stats_; }

  /// Folds the stats into `registry` as triad_real_* callback series and
  /// starts emitting packet trace events (same event shapes as
  /// net::Network). Null pointers detach.
  void bind_obs(obs::Registry* registry, obs::TraceSink* trace);

 private:
  void on_readable();
  void trace_packet(obs::TraceEventType type, NodeId src, NodeId dst,
                    std::uint64_t id, std::int64_t b) const;

  EpollLoop& loop_;
  const Clock& clock_;
  // bind_error_ must be declared (constructed) before socket_: the
  // initializer list hands &bind_error_ to UdpSocket::bind.
  std::string bind_error_;
  UdpSocket socket_;
  std::vector<std::pair<NodeId, SockAddr>> peers_;  // small, linear scan
  bool learn_peers_ = true;
  std::vector<std::pair<NodeId, PacketHandler>> handlers_;
  std::uint64_t next_packet_id_ = 1;
  UdpTransportStats stats_;
  obs::Registry* obs_registry_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  Bytes send_buf_;  // reused frame buffer (allocation-lean send path)
};

/// Configuration for one real environment.
struct RealEnvConfig {
  /// Seed for the environment's root Rng (protocol randomness: AEX
  /// modelling, jitter). Wall time is nondeterministic anyway, but a
  /// fixed seed keeps the *protocol's* random choices reproducible.
  std::uint64_t seed = 1;
  /// UDP endpoint to bind; nullopt = no transport (timers only).
  std::optional<SockAddr> listen;
  bool reuse_port = false;
  bool learn_peers = true;  // see UdpTransport::set_learn_peers
  /// Initial address book (extendable later via transport().set_peer).
  std::vector<std::pair<NodeId, SockAddr>> peers;
  ObsBinding obs{};
};

/// One real environment: wall clock + epoll loop + timer heap + optional
/// UDP transport, bundled behind the same Env aggregate SimEnv hands
/// out. Components receive env() by value; RealEnv must outlive them.
/// The loop runs on whichever thread calls run()/run_for(); stop() may
/// be called from any thread or signal handler.
class RealEnv {
 public:
  explicit RealEnv(RealEnvConfig config);

  /// False when the transport failed to bind (port in use, no sockets in
  /// this sandbox, ...); bind_error() says why.
  [[nodiscard]] bool valid() const;
  [[nodiscard]] std::string bind_error() const;

  [[nodiscard]] Env env() const { return env_; }
  operator Env() const { return env_; }  // NOLINT(google-explicit-constructor)

  [[nodiscard]] UdpTransport* transport() {
    return transport_ ? &*transport_ : nullptr;
  }
  [[nodiscard]] EpollLoop& loop() { return loop_; }

  /// Runs the loop until stop().
  void run();
  /// Runs the loop for `d` of wall time (or until stop()).
  void run_for(Duration d);
  /// Requests the loop to exit. Async-signal-safe, any thread.
  void stop() { loop_.stop(); }

 private:
  RealClock clock_;
  EpollLoop loop_;
  RealScheduler scheduler_;
  std::optional<UdpTransport> transport_;
  Rng rng_;
  Env env_;
};

}  // namespace triad::runtime
