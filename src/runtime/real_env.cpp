// The only translation unit in the tree allowed to touch ambient IO
// syscalls (triad_lint R1 names each token below in its allowlist).
// Everything socket/epoll-shaped funnels through the wrappers defined
// here so the rest of the repo stays inside the determinism contract.

#include "runtime/real_env.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstring>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace triad::runtime {
namespace {

sockaddr_in to_native(SockAddr addr) {
  sockaddr_in native{};
  native.sin_family = AF_INET;
  native.sin_addr.s_addr = htonl(addr.ip);
  native.sin_port = htons(addr.port);
  return native;
}

SockAddr from_native(const sockaddr_in& native) {
  return SockAddr{ntohl(native.sin_addr.s_addr), ntohs(native.sin_port)};
}

std::string errno_string(const char* what) {
  std::string msg = what;
  msg += ": ";
  msg += std::strerror(errno);
  return msg;
}

}  // namespace

// --- SockAddr ----------------------------------------------------------

std::string SockAddr::to_string() const {
  std::string out;
  out.reserve(21);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((ip >> shift) & 0xffu);
    out += shift == 0 ? ':' : '.';
  }
  out += std::to_string(port);
  return out;
}

std::optional<SockAddr> parse_sockaddr(std::string_view text) {
  const auto colon = text.rfind(':');
  if (colon == std::string_view::npos) return std::nullopt;
  std::string_view host = text.substr(0, colon);
  std::string_view port_str = text.substr(colon + 1);

  SockAddr addr;
  std::uint32_t ip = 0;
  for (int octet = 0; octet < 4; ++octet) {
    const auto dot = host.find('.');
    std::string_view part =
        octet == 3 ? host : host.substr(0, dot);
    if (octet < 3) {
      if (dot == std::string_view::npos) return std::nullopt;
      host = host.substr(dot + 1);
    } else if (host.find('.') != std::string_view::npos) {
      return std::nullopt;
    }
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), value);
    if (ec != std::errc{} || ptr != part.data() + part.size() || value > 255) {
      return std::nullopt;
    }
    ip = (ip << 8) | value;
  }
  addr.ip = ip;

  unsigned port = 0;
  const auto [ptr, ec] = std::from_chars(
      port_str.data(), port_str.data() + port_str.size(), port);
  if (ec != std::errc{} || ptr != port_str.data() + port_str.size() ||
      port > 65535) {
    return std::nullopt;
  }
  addr.port = static_cast<std::uint16_t>(port);
  return addr;
}

// --- UdpSocket ---------------------------------------------------------

struct UdpSocket::BatchBuffers {
  std::array<std::array<std::uint8_t, kDatagramBufSize>, kRecvBatch> data;
  std::array<sockaddr_in, kRecvBatch> addrs;
  std::array<iovec, kRecvBatch> iovs;
  std::array<mmsghdr, kRecvBatch> msgs;
};

UdpSocket::UdpSocket(int fd) : fd_(fd) {}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffers_(std::move(other.buffers_)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffers_ = std::move(other.buffers_);
  }
  return *this;
}

UdpSocket UdpSocket::bind(SockAddr addr, bool reuse_port, std::string* error) {
  const int fd =
      ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_string("socket");
    return UdpSocket{};
  }
  if (reuse_port) {
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      if (error != nullptr) *error = errno_string("setsockopt(SO_REUSEPORT)");
      ::close(fd);
      return UdpSocket{};
    }
  }
  sockaddr_in native = to_native(addr);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&native),
             sizeof(native)) != 0) {
    if (error != nullptr) *error = errno_string("bind");
    ::close(fd);
    return UdpSocket{};
  }
  return UdpSocket{fd};
}

SockAddr UdpSocket::local_addr() const {
  sockaddr_in native{};
  socklen_t len = sizeof(native);
  if (fd_ < 0 || ::getsockname(fd_, reinterpret_cast<sockaddr*>(&native),
                               &len) != 0) {
    return SockAddr{};
  }
  return from_native(native);
}

void UdpSocket::set_recv_timeout_ms(int ms) {
  if (fd_ < 0) return;
  const int flags = ::fcntl(fd_, F_GETFL);
  if (ms > 0) {
    ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK);
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    (void)::setsockopt(fd_, SOL_SOCKET,  // best-effort: a failed timeout
                       SO_RCVTIMEO, &tv, sizeof(tv));  // just blocks longer
  } else {
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    timeval tv{};
    (void)::setsockopt(fd_, SOL_SOCKET,  // best-effort: fd stays usable
                       SO_RCVTIMEO, &tv, sizeof(tv));
  }
}

bool UdpSocket::send_to(SockAddr to, BytesView datagram) {
  if (fd_ < 0) return false;
  const sockaddr_in native = to_native(to);
  const ssize_t n =
      ::sendto(fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&native), sizeof(native));
  return n == static_cast<ssize_t>(datagram.size());
}

void UdpSocket::ensure_buffers() {
  if (!buffers_) buffers_ = std::make_unique<BatchBuffers>();
}

std::size_t UdpSocket::recv_batch(std::array<RecvView, kRecvBatch>& out) {
  if (fd_ < 0) return 0;
  ensure_buffers();
  BatchBuffers& b = *buffers_;
  for (std::size_t i = 0; i < kRecvBatch; ++i) {
    b.iovs[i] = {b.data[i].data(), b.data[i].size()};
    mmsghdr& m = b.msgs[i];
    std::memset(&m, 0, sizeof(m));
    m.msg_hdr.msg_name = &b.addrs[i];
    m.msg_hdr.msg_namelen = sizeof(b.addrs[i]);
    m.msg_hdr.msg_iov = &b.iovs[i];
    m.msg_hdr.msg_iovlen = 1;
  }
  // MSG_WAITFORONE: on a blocking socket, wait for the first datagram
  // only and drain the rest non-blocking — without it recvmmsg would sit
  // out the whole SO_RCVTIMEO hoping to fill the batch. No effect on the
  // non-blocking worker sockets.
  const int n = ::recvmmsg(fd_, b.msgs.data(),
                           static_cast<unsigned>(kRecvBatch), MSG_WAITFORONE,
                           nullptr);
  if (n <= 0) return 0;
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = RecvView{
        BytesView{b.data[static_cast<std::size_t>(i)].data(),
                  b.msgs[static_cast<std::size_t>(i)].msg_len},
        from_native(b.addrs[static_cast<std::size_t>(i)])};
  }
  return static_cast<std::size_t>(n);
}

std::size_t UdpSocket::send_batch(SockAddr to, const std::vector<Bytes>& bufs,
                                  std::size_t count) {
  if (fd_ < 0 || count == 0) return 0;
  ensure_buffers();
  BatchBuffers& b = *buffers_;
  const sockaddr_in native = to_native(to);
  std::size_t sent = 0;
  while (sent < count) {
    const std::size_t batch = std::min(count - sent, kRecvBatch);
    for (std::size_t i = 0; i < batch; ++i) {
      const Bytes& buf = bufs[sent + i];
      b.iovs[i] = {const_cast<std::uint8_t*>(buf.data()), buf.size()};
      mmsghdr& m = b.msgs[i];
      std::memset(&m, 0, sizeof(m));
      b.addrs[i] = native;
      m.msg_hdr.msg_name = &b.addrs[i];
      m.msg_hdr.msg_namelen = sizeof(b.addrs[i]);
      m.msg_hdr.msg_iov = &b.iovs[i];
      m.msg_hdr.msg_iovlen = 1;
    }
    const int n = ::sendmmsg(fd_, b.msgs.data(),
                             static_cast<unsigned>(batch), 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
    if (static_cast<std::size_t>(n) < batch) break;
  }
  return sent;
}

// --- TcpConn / TcpListener ---------------------------------------------
// The TCP plane exists solely for read-only telemetry (timed::
// TelemetryServer, triad_mon). Like every other raw syscall, listen/
// accept4/connect live only here, each a named R1 allow entry.

namespace {

void set_io_timeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  // Best-effort both ways: a connection without timeouts still works,
  // it just loses slow-loris protection to the sweep timer instead.
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));  // see above
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));  // see above
}

}  // namespace

TcpConn::~TcpConn() {
  if (fd_ >= 0) ::close(fd_);
}

TcpConn::TcpConn(TcpConn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      timeout_ms_(std::exchange(other.timeout_ms_, 0)) {}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    timeout_ms_ = std::exchange(other.timeout_ms_, 0);
  }
  return *this;
}

TcpConn TcpConn::dial(SockAddr addr, int timeout_ms, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_string("socket");
    return TcpConn{};
  }
  // SO_SNDTIMEO bounds the blocking connect as well as later writes.
  set_io_timeouts(fd, timeout_ms);
  const sockaddr_in native = to_native(addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&native),
                sizeof(native)) != 0) {
    if (error != nullptr) *error = errno_string("connect");
    ::close(fd);
    return TcpConn{};
  }
  return TcpConn{fd, timeout_ms};
}

std::size_t TcpConn::read_some(std::uint8_t* buf, std::size_t max) {
  if (fd_ < 0 || max == 0) return 0;
  const ssize_t n = ::read(fd_, buf, max);
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

bool TcpConn::write_all(BytesView data) {
  if (fd_ < 0) return false;
  // SO_SNDTIMEO bounds each write() call, not the loop: a reader that
  // drains its socket one byte per interval keeps every partial write
  // under the per-call timeout. The cumulative deadline holds the
  // documented guarantee — a stalled peer costs at most ~one timeout.
  const MonotonicTimer elapsed;
  const std::uint64_t deadline_ns =
      static_cast<std::uint64_t>(timeout_ms_) * 1'000'000u;
  std::size_t off = 0;
  while (off < data.size()) {
    if (timeout_ms_ > 0 && elapsed.elapsed_ns() > deadline_ns) return false;
    const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void TcpConn::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpConn::close_now() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpListener TcpListener::open(SockAddr addr, std::string* error) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_string("socket");
    return TcpListener{};
  }
  // Daemon restarts must re-bind the telemetry port without waiting out
  // TIME_WAIT conns left by scrapers.
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR,  // best-effort: if it
                     &one, sizeof(one));  // fails, bind reports the error
  sockaddr_in native = to_native(addr);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&native),
             sizeof(native)) != 0) {
    if (error != nullptr) *error = errno_string("bind");
    ::close(fd);
    return TcpListener{};
  }
  if (::listen(fd, 16) != 0) {
    if (error != nullptr) *error = errno_string("listen");
    ::close(fd);
    return TcpListener{};
  }
  return TcpListener{fd};
}

SockAddr TcpListener::local_addr() const {
  sockaddr_in native{};
  socklen_t len = sizeof(native);
  if (fd_ < 0 || ::getsockname(fd_, reinterpret_cast<sockaddr*>(&native),
                               &len) != 0) {
    return SockAddr{};
  }
  return from_native(native);
}

TcpConn TcpListener::accept_client(int timeout_ms) {
  if (fd_ < 0) return TcpConn{};
  const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return TcpConn{};
  set_io_timeouts(fd, timeout_ms);
  return TcpConn{fd, timeout_ms};
}

// --- EpollLoop ---------------------------------------------------------

EpollLoop::EpollLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return;
  wakeup_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakeup_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
    // A loop that cannot be woken is worse than no loop: report invalid
    // rather than hanging the owner's stop() forever.
    ::close(wakeup_fd_);
    ::close(epoll_fd_);
    wakeup_fd_ = -1;
    epoll_fd_ = -1;
  }
}

EpollLoop::~EpollLoop() {
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EpollLoop::add_fd(int fd, std::function<void()> on_readable) {
  remove_fd(fd);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    // Registering the handler anyway would desynchronize handlers_ from
    // the epoll set; the fd's owner sees no readable callbacks either way.
    return;
  }
  handlers_.push_back(FdHandler{fd, std::move(on_readable)});
}

void EpollLoop::remove_fd(int fd) {
  const auto it = std::find_if(
      handlers_.begin(), handlers_.end(),
      [fd](const FdHandler& h) { return h.fd == fd; });
  if (it == handlers_.end()) return;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL,  // a closed fd is already
                    fd, nullptr);              // gone from the epoll set
  handlers_.erase(it);
}

void EpollLoop::drain_wakeup() const {
  std::uint64_t value = 0;
  // Non-blocking eventfd: one read clears the whole count.
  [[maybe_unused]] const ssize_t n =
      ::read(wakeup_fd_, &value, sizeof(value));
}

void EpollLoop::stop() {
  stop_requested_.store(true, std::memory_order_release);
  // eventfd write is async-signal-safe; this is the SIGTERM path.
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wakeup_fd_, &one, sizeof(one));
}

void EpollLoop::poll_once(RealScheduler& scheduler, const Clock& clock,
                          int timeout_ms) {
  std::array<epoll_event, 64> events{};
  const int n = ::epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()), timeout_ms);
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    if (fd == wakeup_fd_) {
      drain_wakeup();
      continue;
    }
    // Look the handler up per event: a previous handler may have removed
    // this fd, and handlers_ may have reallocated.
    const auto it = std::find_if(
        handlers_.begin(), handlers_.end(),
        [fd](const FdHandler& h) { return h.fd == fd; });
    if (it != handlers_.end() && it->on_readable) {
      // Invoke a copy: the callback may remove_fd(fd) (or add_fd,
      // reallocating handlers_), which would destroy the std::function
      // mid-call if invoked in place.
      const std::function<void()> handler = it->on_readable;
      handler();
    }
  }
  scheduler.fire_due(clock.now());
}

namespace {

int timeout_until(std::optional<SimTime> deadline, SimTime now) {
  if (!deadline.has_value()) return -1;  // idle: sleep until an fd event
  if (*deadline <= now) return 0;
  const std::int64_t ns = *deadline - now;
  const std::int64_t ms = (ns + 999'999) / 1'000'000;  // round up
  return static_cast<int>(
      std::min<std::int64_t>(ms, std::numeric_limits<int>::max()));
}

}  // namespace

void EpollLoop::run(RealScheduler& scheduler, const Clock& clock) {
  while (!stopped()) {
    poll_once(scheduler, clock,
              timeout_until(scheduler.next_deadline(), clock.now()));
  }
}

void EpollLoop::run_until(RealScheduler& scheduler, const Clock& clock,
                          SimTime deadline) {
  while (!stopped() && clock.now() < deadline) {
    std::optional<SimTime> next = scheduler.next_deadline();
    if (!next.has_value() || *next > deadline) next = deadline;
    poll_once(scheduler, clock, timeout_until(next, clock.now()));
  }
}

// --- RealScheduler -----------------------------------------------------
// Min-heap on (time, seq): std::push_heap builds a max-heap under the
// comparator, so "later entry sorts first" ordering puts the earliest
// (time, seq) on top — the simulator's FIFO-at-equal-deadline rule.

TimerId RealScheduler::schedule_at(SimTime t, std::function<void()> fn) {
  std::uint32_t slot;
  if (free_head_ != kNoFreeSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  const std::uint64_t id =
      (static_cast<std::uint64_t>(s.generation) << 32) |
      (static_cast<std::uint64_t>(slot) + 1);
  heap_.push_back(Entry{t, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), [](const Entry& a,
                                                const Entry& b) {
    return a.time > b.time || (a.time == b.time && a.seq > b.seq);
  });
  ++live_count_;
  return TimerId{id};
}

TimerId RealScheduler::schedule_after(Duration delay,
                                      std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return schedule_at(clock_.now() + delay, std::move(fn));
}

bool RealScheduler::cancel(TimerId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = slot_of(id.value);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || s.generation != generation_of(id.value)) return false;
  s.live = false;
  s.fn = nullptr;
  ++s.generation;  // stale heap entries stop matching
  s.next_free = free_head_;
  free_head_ = slot;
  --live_count_;
  return true;
}

void RealScheduler::purge_dead_top() {
  const auto entry_after = [](const Entry& a, const Entry& b) {
    return a.time > b.time || (a.time == b.time && a.seq > b.seq);
  };
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    const std::uint32_t slot = slot_of(top.id);
    if (slot < slots_.size() && slots_[slot].live &&
        slots_[slot].generation == generation_of(top.id)) {
      return;
    }
    std::pop_heap(heap_.begin(), heap_.end(), entry_after);
    heap_.pop_back();
  }
}

std::optional<SimTime> RealScheduler::next_deadline() {
  purge_dead_top();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().time;
}

void RealScheduler::fire_due(SimTime now) {
  const auto entry_after = [](const Entry& a, const Entry& b) {
    return a.time > b.time || (a.time == b.time && a.seq > b.seq);
  };
  for (;;) {
    purge_dead_top();
    if (heap_.empty() || heap_.front().time > now) return;
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), entry_after);
    heap_.pop_back();
    const std::uint32_t slot = slot_of(top.id);
    Slot& s = slots_[slot];
    std::function<void()> fn = std::move(s.fn);
    s.fn = nullptr;
    s.live = false;
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = slot;
    --live_count_;
    fn();  // may schedule/cancel; heap_ and slots_ are consistent here
  }
}

// --- UdpTransport ------------------------------------------------------

UdpTransport::UdpTransport(EpollLoop& loop, const Clock& clock,
                           SockAddr listen, bool reuse_port)
    : loop_(loop),
      clock_(clock),
      socket_(UdpSocket::bind(listen, reuse_port, &bind_error_)) {
  if (socket_.valid()) {
    loop_.add_fd(socket_.fd(), [this] { on_readable(); });
  }
}

UdpTransport::~UdpTransport() {
  if (socket_.valid()) loop_.remove_fd(socket_.fd());
  if (obs_registry_ != nullptr) obs_registry_->unregister(this);
}

void UdpTransport::set_peer(NodeId peer, SockAddr addr) {
  for (auto& [id, existing] : peers_) {
    if (id == peer) {
      existing = addr;
      return;
    }
  }
  peers_.emplace_back(peer, addr);
}

void UdpTransport::attach(NodeId addr, PacketHandler handler) {
  for (auto& [id, existing] : handlers_) {
    if (id == addr) {
      existing = std::move(handler);
      return;
    }
  }
  handlers_.emplace_back(addr, std::move(handler));
}

void UdpTransport::detach(NodeId addr) {
  std::erase_if(handlers_,
                [addr](const auto& entry) { return entry.first == addr; });
}

void UdpTransport::trace_packet(obs::TraceEventType type, NodeId src,
                                NodeId dst, std::uint64_t id,
                                std::int64_t b) const {
  if (trace_ == nullptr) return;
  obs::TraceEvent event;
  event.at = clock_.now();
  event.type = type;
  // Same field conventions as net::Network: send/drop are viewed from
  // the source, deliver from the destination.
  if (type == obs::TraceEventType::kPacketDeliver) {
    event.node = dst;
    event.peer = src;
  } else {
    event.node = src;
    event.peer = dst;
  }
  event.a = static_cast<std::int64_t>(id);
  event.b = b;
  trace_->emit(event);
}

void UdpTransport::send(NodeId src, NodeId dst, Bytes payload) {
  const std::uint64_t id = next_packet_id_++;
  const SockAddr* to = nullptr;
  for (const auto& [peer, addr] : peers_) {
    if (peer == dst) {
      to = &addr;
      break;
    }
  }
  if (to == nullptr) {
    ++stats_.dropped_unknown_peer;
    trace_packet(obs::TraceEventType::kPacketDrop, src, dst, id,
                 /*b=no receiver*/ 2);
    return;
  }
  net::wire::encode_frame_into(src, dst, payload, send_buf_);
  if (!socket_.send_to(*to, send_buf_)) {
    ++stats_.send_failures;
    trace_packet(obs::TraceEventType::kPacketDrop, src, dst, id,
                 /*b=random loss*/ 0);
    return;
  }
  ++stats_.sent;
  stats_.bytes_sent += payload.size();
  trace_packet(obs::TraceEventType::kPacketSend, src, dst, id,
               static_cast<std::int64_t>(payload.size()));
}

void UdpTransport::on_readable() {
  std::array<RecvView, kRecvBatch> views;
  // Bounded drain: at most a few batches per readiness callback so a
  // datagram flood cannot starve the timer heap; level-triggered epoll
  // re-reports whatever is left.
  for (int round = 0; round < 4; ++round) {
    const std::size_t n = socket_.recv_batch(views);
    if (n == 0) return;
    for (std::size_t i = 0; i < n; ++i) {
      const auto frame = net::wire::decode_frame(views[i].data);
      if (!frame.has_value()) {
        ++stats_.decode_errors;
        continue;
      }
      if (learn_peers_) set_peer(frame->src, views[i].from);
      PacketHandler* handler = nullptr;
      for (auto& [id, h] : handlers_) {
        if (id == frame->dst) {
          handler = &h;
          break;
        }
      }
      const std::uint64_t packet_id = next_packet_id_++;
      if (handler == nullptr) {
        ++stats_.dropped_no_receiver;
        trace_packet(obs::TraceEventType::kPacketDrop, frame->src, frame->dst,
                     packet_id, /*b=no receiver*/ 2);
        continue;
      }
      ++stats_.delivered;
      stats_.bytes_delivered += frame->payload.size();
      trace_packet(obs::TraceEventType::kPacketDeliver, frame->src,
                   frame->dst, packet_id,
                   static_cast<std::int64_t>(frame->payload.size()));
      Packet packet;
      packet.src = frame->src;
      packet.dst = frame->dst;
      packet.payload = frame->payload;
      packet.sent_at = clock_.now();  // real wire carries no send stamp
      packet.id = packet_id;
      (*handler)(packet);
    }
    if (n < kRecvBatch) return;
  }
}

void UdpTransport::bind_obs(obs::Registry* registry, obs::TraceSink* trace) {
  if (obs_registry_ != nullptr && obs_registry_ != registry) {
    obs_registry_->unregister(this);
  }
  obs_registry_ = registry;
  trace_ = trace;
  if (registry == nullptr) return;
  const auto count = [](const std::uint64_t& cell) {
    return [&cell] { return static_cast<double>(cell); };
  };
  registry->counter_fn(this, "triad_real_packets_sent_total", {},
                       count(stats_.sent));
  registry->counter_fn(this, "triad_real_packets_delivered_total", {},
                       count(stats_.delivered));
  registry->counter_fn(this, "triad_real_send_failures_total", {},
                       count(stats_.send_failures));
  registry->counter_fn(this, "triad_real_decode_errors_total", {},
                       count(stats_.decode_errors));
  registry->counter_fn(this, "triad_real_dropped_no_receiver_total", {},
                       count(stats_.dropped_no_receiver));
  registry->counter_fn(this, "triad_real_dropped_unknown_peer_total", {},
                       count(stats_.dropped_unknown_peer));
  registry->counter_fn(this, "triad_real_bytes_sent_total", {},
                       count(stats_.bytes_sent));
  registry->counter_fn(this, "triad_real_bytes_delivered_total", {},
                       count(stats_.bytes_delivered));
}

// --- RealEnv -----------------------------------------------------------

RealEnv::RealEnv(RealEnvConfig config)
    : scheduler_(clock_),
      rng_(config.seed),
      env_(clock_, scheduler_, nullptr, rng_, config.obs) {
  if (config.listen.has_value()) {
    transport_.emplace(loop_, clock_, *config.listen, config.reuse_port);
    transport_->set_learn_peers(config.learn_peers);
    if (transport_->valid()) {
      for (const auto& [peer, addr] : config.peers) {
        transport_->set_peer(peer, addr);
      }
      transport_->bind_obs(config.obs.metrics, config.obs.trace);
    }
    env_ = Env(clock_, scheduler_, &*transport_, rng_, config.obs);
  }
}

bool RealEnv::valid() const {
  if (!loop_.valid()) return false;
  return !transport_.has_value() || transport_->valid();
}

std::string RealEnv::bind_error() const {
  if (!loop_.valid()) return "epoll_create1 failed";
  if (transport_.has_value() && !transport_->valid()) {
    return transport_->bind_error();
  }
  return {};
}

void RealEnv::run() { loop_.run(scheduler_, clock_); }

void RealEnv::run_for(Duration d) {
  loop_.run_until(scheduler_, clock_, clock_.now() + d);
}

}  // namespace triad::runtime
