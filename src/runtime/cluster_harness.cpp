#include "runtime/cluster_harness.h"

#include <stdexcept>
#include <utility>

namespace triad::runtime {
namespace {

std::unique_ptr<net::DelayModel> delay_or_default(
    std::unique_ptr<net::DelayModel> delay) {
  if (delay) return delay;
  // Paper testbed: ~150 us one-way with 120 us jitter; the jitter is
  // what limits Triad's short-window calibration quality.
  return std::make_unique<net::JitterDelay>(microseconds(150),
                                            microseconds(120),
                                            microseconds(10));
}

}  // namespace

ClusterHarness::ClusterHarness(ClusterConfig config)
    : configured_node_count_(config.node_count),
      ta_address_(config.ta_address != 0
                      ? config.ta_address
                      : static_cast<NodeId>(config.node_count + 1)),
      sim_(config.seed),
      network_(std::make_unique<net::Network>(
          sim_, delay_or_default(std::move(config.delay)))),
      sim_env_(sim_, *network_, config.obs),
      keyring_(std::move(config.master_secret)) {}

NodeId ClusterHarness::node_address(std::size_t i) const {
  if (i >= configured_node_count_) {
    throw std::out_of_range("ClusterHarness: node index out of range");
  }
  return static_cast<NodeId>(i + 1);
}

NodeId ClusterHarness::ta_address() const { return ta_address_; }

ta::TimeAuthority& ClusterHarness::make_time_authority(
    Duration max_wait, const crypto::Keyring* keyring) {
  if (ta_) {
    throw std::logic_error("ClusterHarness: time authority already exists");
  }
  ta_ = std::make_unique<ta::TimeAuthority>(
      env(), ta_address(), keyring ? *keyring : keyring_, max_wait);
  return *ta_;
}

TriadNode& ClusterHarness::add_node(const TriadConfig& node_template,
                                    TriadNode::HardwareParams hardware,
                                    std::unique_ptr<UntaintPolicy> policy,
                                    const crypto::Keyring* keyring) {
  const std::size_t i = nodes_.size();
  if (i >= configured_node_count_) {
    throw std::logic_error("ClusterHarness: all configured nodes added");
  }
  TriadConfig config = node_template;
  config.id = node_address(i);
  config.ta_address = ta_address();
  config.peers.clear();
  for (std::size_t j = 0; j < configured_node_count_; ++j) {
    if (j != i) config.peers.push_back(static_cast<NodeId>(j + 1));
  }
  nodes_.push_back(std::make_unique<TriadNode>(env(),
                                               keyring ? *keyring : keyring_,
                                               std::move(config), hardware,
                                               std::move(policy)));
  return *nodes_.back();
}

void ClusterHarness::start() {
  for (auto& node : nodes_) node->start();
}

}  // namespace triad::runtime
