// The repo's single sanctioned wall-clock source.
//
// Everything inside the determinism contract reads time from
// runtime::Clock (virtual time). Wall time exists only for measurement —
// profiler scopes (obs/prof.h), the bench harness (bench/harness.h), and
// campaign wall/queue timings — and all of it flows through this type,
// so triad_lint's R1 ambient-clock rule can allowlist exactly one file
// instead of exempting whole directories. Do not reach for
// std::chrono::steady_clock directly; wrap a MonotonicTimer.
//
// Header-only on purpose: obs/prof.cpp sits below triad_runtime in the
// link order and must not pull in a runtime object file.
#pragma once

#include <chrono>
#include <cstdint>

namespace triad::runtime {

/// Monotonic stopwatch. Construction starts it; restart() re-arms it.
/// Readings are wall time and therefore *never* part of byte-stable
/// output — aggregate reports exclude every value derived from one.
class MonotonicTimer {
 public:
  MonotonicTimer() : start_(now_ns()) {}

  void restart() { start_ = now_ns(); }

  /// Nanoseconds since construction / the last restart().
  [[nodiscard]] std::uint64_t elapsed_ns() const { return now_ns() - start_; }

  [[nodiscard]] double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) / 1e6;
  }

  /// Raw monotonic reading (ns since an arbitrary epoch). For interval
  /// math only; the epoch is meaningless across processes.
  [[nodiscard]] static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  std::uint64_t start_;
};

}  // namespace triad::runtime
