#include "runtime/sim_env.h"

#include <stdexcept>
#include <utility>

namespace triad::runtime {

void SimTransport::attach(NodeId addr, PacketHandler handler) {
  if (!handler) {
    throw std::invalid_argument("SimTransport::attach: null handler");
  }
  network_.attach(addr, [handler = std::move(handler)](const net::Packet& p) {
    handler(Packet{p.src, p.dst, BytesView(p.payload), p.sent_at, p.id});
  });
}

}  // namespace triad::runtime
