#include "runtime/env.h"

#include <stdexcept>
#include <utility>

namespace triad::runtime {

Transport& Env::transport() const {
  if (transport_ == nullptr) {
    throw std::logic_error("runtime::Env: no transport in this environment");
  }
  return *transport_;
}

PeriodicTimer::PeriodicTimer(const Env& env, Duration period,
                             std::function<void()> fn)
    : PeriodicTimer(env, env.now() + period, period, std::move(fn)) {}

PeriodicTimer::PeriodicTimer(const Env& env, SimTime first, Duration period,
                             std::function<void()> fn)
    : env_(env), period_(period), fn_(std::move(fn)) {
  if (period_ <= 0) {
    throw std::invalid_argument("PeriodicTimer: period must be positive");
  }
  arm(first);
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::stop() {
  if (stopped_) return;
  stopped_ = true;
  env_.cancel(pending_);
}

void PeriodicTimer::arm(SimTime t) {
  pending_ = env_.schedule_at(t, [this] {
    if (stopped_) return;
    fn_();
    if (!stopped_) arm(env_.now() + period_);
  });
}

}  // namespace triad::runtime
