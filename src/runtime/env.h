// Abstract execution environment for protocol components.
//
// Protocol logic (src/triad, src/ta, src/ntp, src/t3e, src/apps) is
// written against three small pure-virtual interfaces — Clock, Scheduler,
// Transport — plus the Env aggregate that bundles them. The deterministic
// simulator binds them through runtime::SimEnv (sim_env.h); a
// socket-backed SocketEnv can be added later without touching protocol
// code.
//
// Determinism contract every backend must preserve (see DESIGN.md,
// "Runtime layer"):
//   * callbacks scheduled for equal times fire in scheduling order;
//   * all randomness flows from Env::fork_rng(label) streams;
//   * Transport delivery runs through the same Scheduler, so one event
//     loop totally orders every callback.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "obs/trace.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/types.h"

namespace triad::obs {
class Registry;
}  // namespace triad::obs

namespace triad::runtime {

/// Observability attachment shared by every component of one environment.
/// Both pointers are optional and non-owning; with `trace == nullptr`
/// emission is a single null check and with `metrics == nullptr`
/// components skip registration and use no-op handles, so an unobserved
/// environment pays (almost) nothing. Whoever owns the Registry/TraceSink
/// must keep them alive as long as the components bound to them.
struct ObsBinding {
  obs::Registry* metrics = nullptr;
  obs::TraceSink* trace = nullptr;
};

/// Token identifying a scheduled callback; usable to cancel it.
struct TimerId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  friend bool operator==(TimerId, TimerId) = default;
};

/// Source of the environment's reference time.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual SimTime now() const = 0;
};

/// Deferred-callback execution. Implementations must fire callbacks with
/// equal deadlines in scheduling order (FIFO).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Schedules fn at absolute time t (must be >= the clock's now()).
  virtual TimerId schedule_at(SimTime t, std::function<void()> fn) = 0;

  /// Schedules fn after a non-negative delay.
  virtual TimerId schedule_after(Duration delay, std::function<void()> fn) = 0;

  /// Cancels a pending callback. Cancelling an already-fired or invalid
  /// id is a harmless no-op (returns false).
  virtual bool cancel(TimerId id) = 0;
};

/// A received datagram, viewed without owning the payload. The payload
/// bytes are only valid for the duration of the handler call; copy them
/// (e.g. by decoding) before returning if they must outlive it.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  BytesView payload;
  SimTime sent_at = 0;
  std::uint64_t id = 0;  // unique per transport, for tracing
};

using PacketHandler = std::function<void(const Packet&)>;

/// Unreliable, unordered datagram transport (UDP semantics).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers the receive handler for an address. One handler per
  /// address; re-attaching replaces the previous handler.
  virtual void attach(NodeId addr, PacketHandler handler) = 0;
  virtual void detach(NodeId addr) = 0;

  /// Sends a datagram. Delivery (if any) is asynchronous.
  virtual void send(NodeId src, NodeId dst, Bytes payload) = 0;
};

/// The environment handed to protocol components: non-owning pointers to
/// one backend's clock/scheduler/transport plus the root Rng. Copyable
/// value — components store it by value and every copy refers to the
/// same backend.
class Env {
 public:
  /// `transport` may be null for components that never touch the network
  /// (accessing transport() then throws std::logic_error).
  Env(Clock& clock, Scheduler& scheduler, Transport* transport, Rng& rng,
      ObsBinding obs = {})
      : clock_(&clock), scheduler_(&scheduler), transport_(transport),
        rng_(&rng), obs_(obs) {}

  [[nodiscard]] Clock& clock() const { return *clock_; }
  [[nodiscard]] Scheduler& scheduler() const { return *scheduler_; }
  [[nodiscard]] bool has_transport() const { return transport_ != nullptr; }
  [[nodiscard]] Transport& transport() const;

  // Convenience forwarding, so call sites read like the old concrete API.
  [[nodiscard]] SimTime now() const { return clock_->now(); }
  TimerId schedule_at(SimTime t, std::function<void()> fn) const {
    return scheduler_->schedule_at(t, std::move(fn));
  }
  TimerId schedule_after(Duration delay, std::function<void()> fn) const {
    return scheduler_->schedule_after(delay, std::move(fn));
  }
  bool cancel(TimerId id) const { return scheduler_->cancel(id); }

  /// Derives a deterministic child Rng stream from the backend's root.
  [[nodiscard]] Rng fork_rng(std::string_view label) const {
    return rng_->fork(label);
  }

  // --- observability ---------------------------------------------------
  /// Metrics registry, or null when the environment is unobserved.
  [[nodiscard]] obs::Registry* metrics() const { return obs_.metrics; }
  [[nodiscard]] obs::TraceSink* trace_sink() const { return obs_.trace; }
  /// Guard for emit(): true only when a trace sink is attached. Call
  /// sites wrap event construction in `if (env.tracing())` so building
  /// the event costs nothing when tracing is off.
  [[nodiscard]] bool tracing() const { return obs_.trace != nullptr; }
  /// Stamps `event.at` with the environment clock and emits it. No-op
  /// (one null check) without a sink.
  void emit(obs::TraceEvent event) const {
    if (obs_.trace == nullptr) return;
    event.at = clock_->now();
    obs_.trace->emit(event);
  }

 private:
  Clock* clock_;
  Scheduler* scheduler_;
  Transport* transport_;
  Rng* rng_;
  ObsBinding obs_;
};

/// Periodic callback helper built on Env; cancels itself on destruction
/// (RAII) so samplers cannot outlive their owners.
class PeriodicTimer {
 public:
  /// Fires fn every `period` starting at now()+period (or `first` if given).
  PeriodicTimer(const Env& env, Duration period, std::function<void()> fn);
  PeriodicTimer(const Env& env, SimTime first, Duration period,
                std::function<void()> fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();

 private:
  void arm(SimTime t);
  Env env_;
  Duration period_;
  std::function<void()> fn_;
  TimerId pending_{};
  bool stopped_ = false;
};

}  // namespace triad::runtime
