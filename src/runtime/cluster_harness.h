// Shared wiring for simulated Triad clusters: one Simulation, one
// Network, a SimEnv binding them to the runtime interfaces, a cluster
// keyring, and the canonical addressing scheme (node i at address i+1,
// the TA right after the last node).
//
// exp::Scenario, integration tests, benches, and examples all build on
// this instead of repeating the sim/network/keyring/TA boilerplate.
// Endpoints that need per-endpoint keyrings (attested mode) pass an
// override to add_node()/make_time_authority().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/channel.h"
#include "net/network.h"
#include "runtime/env.h"
#include "runtime/sim_env.h"
#include "sim/simulation.h"
#include "ta/time_authority.h"
#include "triad/node.h"

namespace triad::runtime {

struct ClusterConfig {
  std::uint64_t seed = 1;
  /// Number of Triad nodes the cluster will hold. Fixes the addressing:
  /// add_node() fills ids 1..node_count and peers; ta_address() is
  /// node_count + 1 unless overridden below.
  std::size_t node_count = 0;
  /// Explicit TA address; 0 means "right after the last node".
  NodeId ta_address = 0;
  /// Delay model for the network; null -> the paper testbed's
  /// JitterDelay(150 us base, 120 us jitter, 10 us floor).
  std::unique_ptr<net::DelayModel> delay;
  /// Cluster master secret standing in for SGX attested key exchange.
  Bytes master_secret = Bytes(32, 0x42);
  /// Observability attachment, threaded into every component's Env and
  /// bound to the Simulation/Network backends (see SimEnv). The owner of
  /// the Registry/TraceSink must outlive the harness. Default: unobserved.
  ObsBinding obs{};
};

/// Owns the simulated world a cluster runs in. Move- and copy-disabled:
/// every component holds an Env pointing into this object.
class ClusterHarness {
 public:
  explicit ClusterHarness(ClusterConfig config = {});
  ClusterHarness(const ClusterHarness&) = delete;
  ClusterHarness& operator=(const ClusterHarness&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  /// The environment every component of this cluster is built on.
  [[nodiscard]] Env env() const { return sim_env_.env(); }
  /// The shared cluster keyring (for attaching clients / extra endpoints).
  [[nodiscard]] const crypto::ClusterKeyring& keyring() const {
    return keyring_;
  }

  /// Node addressing: node i (0-based) lives at address i+1.
  [[nodiscard]] NodeId node_address(std::size_t i) const;
  [[nodiscard]] NodeId ta_address() const;

  /// Creates the Time Authority at ta_address(). `keyring` overrides the
  /// shared cluster keyring (attested/session mode). Call at most once.
  ta::TimeAuthority& make_time_authority(
      Duration max_wait = seconds(2),
      const crypto::Keyring* keyring = nullptr);

  /// Creates the next Triad node from `node_template`, filling in its
  /// address, the TA address, and the full-mesh peer list. Throws once
  /// node_count nodes exist.
  TriadNode& add_node(const TriadConfig& node_template,
                      TriadNode::HardwareParams hardware = {},
                      std::unique_ptr<UntaintPolicy> policy = nullptr,
                      const crypto::Keyring* keyring = nullptr);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] TriadNode& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] ta::TimeAuthority& time_authority() { return *ta_; }
  [[nodiscard]] bool has_time_authority() const { return ta_ != nullptr; }

  /// Starts every node (the TA is live from construction).
  void start();

  void run_until(SimTime t) { sim_.run_until(t); }
  void run_for(Duration d) { sim_.run_for(d); }
  [[nodiscard]] SimTime now() const { return sim_.now(); }

 private:
  std::size_t configured_node_count_;
  NodeId ta_address_;
  sim::Simulation sim_;
  std::unique_ptr<net::Network> network_;
  SimEnv sim_env_;
  crypto::ClusterKeyring keyring_;
  std::unique_ptr<ta::TimeAuthority> ta_;
  std::vector<std::unique_ptr<TriadNode>> nodes_;
};

}  // namespace triad::runtime
