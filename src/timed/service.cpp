#include "timed/service.h"

#include <sstream>
#include <utility>

#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "triad/messages.h"

namespace triad::timed {

// --- ServeWorker -------------------------------------------------------

ServeWorker::ServeWorker(runtime::SockAddr serve, NodeId node_id,
                         const crypto::Keyring& keyring,
                         const SnapshotBoard& board)
    : socket_(runtime::UdpSocket::bind(serve, /*reuse_port=*/true,
                                       &bind_error_)),
      channel_(node_id, keyring),
      board_(board) {
  if (socket_.valid()) {
    loop_.add_fd(socket_.fd(), [this] { on_readable(); });
  }
}

void ServeWorker::start() {
  thread_ = std::thread([this] { run(); });
}

void ServeWorker::stop() { loop_.stop(); }

void ServeWorker::join() {
  if (thread_.joinable()) thread_.join();
}

void ServeWorker::run() { loop_.run(scheduler_, clock_); }

void ServeWorker::on_readable() {
  PROF_SCOPE("timed/serve_batch");
  std::array<runtime::RecvView, runtime::kRecvBatch> views;
  for (int round = 0; round < 4; ++round) {
    const std::size_t n = socket_.recv_batch(views);
    if (n == 0) return;
    // One snapshot per batch: every request in the batch is answered
    // from the same extrapolation anchor, then clamped monotone.
    const ClockSnapshot snap = board_.read();
    const std::uint64_t now_ns = runtime::MonotonicTimer::now_ns();
    SimTime now = snap.time;
    if (snap.mono_ns != 0 && now_ns > snap.mono_ns) {
      now += static_cast<SimTime>(now_ns - snap.mono_ns);
    }
    // The telemetry plane's entire hot-path cost: one relaxed load, and
    // a queue-depth sample only while somebody is actually scraping.
    // The first unscraped batch after a sampled one stores a 0 so the
    // gauge never reports a stale depth as live.
    if (scrape_signal_ != nullptr &&
        scrape_signal_->load(std::memory_order_relaxed) != 0) {
      stats_.batch_depth.store(n, std::memory_order_relaxed);
      batch_depth_sampled_ = true;
    } else if (batch_depth_sampled_) {
      stats_.batch_depth.store(0, std::memory_order_relaxed);
      batch_depth_sampled_ = false;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto frame = net::wire::decode_frame(views[i].data);
      if (!frame.has_value()) {
        stats_.decode_errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const auto opened = channel_.open(frame->payload);
      if (!opened.has_value() || opened->sender != frame->src) {
        stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const auto message = proto::decode(opened->plaintext);
      const auto* request =
          message.has_value()
              ? std::get_if<proto::PeerTimeRequest>(&*message)
              : nullptr;
      if (request == nullptr) {
        stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      stats_.requests.fetch_add(1, std::memory_order_relaxed);

      proto::PeerTimeResponse response;
      response.request_id = request->request_id;
      response.tainted = !snap.available;
      if (snap.available) {
        if (now <= last_served_) now = last_served_ + 1;
        last_served_ = now;
        response.timestamp = now;
        response.error_bound = snap.error_bound;
      } else {
        stats_.unavailable.fetch_add(1, std::memory_order_relaxed);
      }
      const Bytes sealed =
          channel_.seal(frame->src, proto::encode(response));
      net::wire::encode_frame_into(frame->dst, frame->src, sealed,
                                   reply_buf_);
      if (socket_.send_to(views[i].from, reply_buf_)) {
        stats_.responses.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_.send_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (n < runtime::kRecvBatch) return;
  }
}

// --- TimedService ------------------------------------------------------

TimedService::TimedService(ServiceConfig config, runtime::ObsBinding obs)
    : config_(std::move(config)), keyring_(config_.master_secret) {
  runtime::RealEnvConfig env_config;
  env_config.seed = config_.seed;
  env_config.listen = config_.listen;
  env_config.peers = config_.peers;
  env_config.obs = obs;
  env_config.obs.trace = build_trace_chain(obs.trace, obs.metrics);
  registry_ = obs.metrics;
  env_ = std::make_unique<runtime::RealEnv>(std::move(env_config));
  if (!env_->valid()) {
    error_ = "protocol endpoint: " + env_->bind_error();
    return;
  }

  if (config_.telemetry.has_value()) {
    TelemetryServer::Sources sources;
    sources.registry = obs.metrics;
    sources.trace = ring_.has_value() ? &*ring_ : nullptr;
    sources.prof = [] {
      std::ostringstream os;
      obs::Profiler::write_text(obs::Profiler::instance().merge(), os,
                                /*normalize=*/false);
      return os.str();
    };
    sources.trace_tail = config_.telemetry_trace_tail;
    sources.max_pending = config_.telemetry_max_pending;
    sources.request_deadline = config_.telemetry_request_deadline;
    // Runs on the node thread; the workers' gauges are atomics, so the
    // cross-thread store is safe while they serve.
    sources.on_scrapers_idle = [this] {
      for (const auto& worker : workers_) worker->clear_batch_depth();
    };
    telemetry_ = std::make_unique<TelemetryServer>(
        env_->loop(), env_->env(), *config_.telemetry, std::move(sources));
    if (!telemetry_->valid()) {
      error_ = "telemetry endpoint: " + telemetry_->error();
      return;
    }
  }

  if (config_.role == Role::kTa) {
    authority_ = std::make_unique<ta::TimeAuthority>(
        env_->env(), config_.ta_id, keyring_, config_.ta_max_wait);
    return;
  }

  node_ = std::make_unique<TriadNode>(env_->env(), keyring_, config_.node,
                                      TriadNode::HardwareParams{});
  const int workers = std::max(1, config_.workers);
  for (int i = 0; i < workers; ++i) {
    // Every worker after the first must land on the first one's
    // resolved port — with serve.port == 0 each bind(0) would get a
    // *different* ephemeral port and the REUSEPORT group would never
    // form.
    runtime::SockAddr serve = config_.serve;
    if (i > 0) serve = workers_.front()->local_addr();
    auto worker = std::make_unique<ServeWorker>(serve, config_.node.id,
                                               keyring_, board_);
    if (!worker->valid()) {
      error_ = "serve endpoint: " + worker->bind_error();
      return;
    }
    if (telemetry_ != nullptr) {
      worker->set_scrape_signal(&telemetry_->active_conns());
    }
    workers_.push_back(std::move(worker));
  }
  register_worker_metrics(obs.metrics);
}

TimedService::~TimedService() {
  stop();
  shutdown_workers();
  if (registry_ != nullptr) registry_->unregister(this);
}

bool TimedService::valid() const { return error_.empty(); }

std::string TimedService::error() const { return error_; }

runtime::SockAddr TimedService::protocol_addr() const {
  return env_->transport() != nullptr ? env_->transport()->local_addr()
                                      : runtime::SockAddr{};
}

runtime::SockAddr TimedService::serve_addr() const {
  return workers_.empty() ? runtime::SockAddr{}
                          : workers_.front()->local_addr();
}

void TimedService::start() {
  if (started_.exchange(true)) return;
  if (node_ != nullptr) {
    node_->start();
    // Publish the first snapshot immediately (workers would otherwise
    // serve tainted until the first period elapses), then periodically.
    const auto publish = [this] {
      ClockSnapshot snap;
      snap.available = node_->available();
      snap.time = node_->current_time();
      snap.mono_ns = runtime::MonotonicTimer::now_ns();
      snap.error_bound = node_->current_error_bound();
      board_.publish(snap);
    };
    publish();
    publisher_ = std::make_unique<runtime::PeriodicTimer>(
        env_->env(), config_.snapshot_period, publish);
  }
  for (auto& worker : workers_) worker->start();
}

void TimedService::run() {
  env_->run();
  shutdown_workers();
}

void TimedService::run_for(Duration d) { env_->run_for(d); }

void TimedService::stop() {
  env_->stop();
  // Plain loads: workers_ stops mutating once start() has run, and the
  // signal handler path only reaches here afterwards.
  for (auto& worker : workers_) worker->stop();
}

void TimedService::shutdown_workers() {
  for (auto& worker : workers_) {
    worker->stop();
    worker->join();
  }
  publisher_.reset();
}

std::uint64_t TimedService::total_responses() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->stats().responses.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t TimedService::total_bad_frames() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->stats().bad_frames.load(std::memory_order_relaxed);
  }
  return total;
}

obs::TraceSink* TimedService::build_trace_chain(obs::TraceSink* external,
                                                obs::Registry* registry) {
  if (config_.trace_capacity > 0) {
    ring_.emplace(config_.trace_capacity);
    if (registry != nullptr) {
      registry->set_help("obs_trace_dropped_total",
                         "Trace events overwritten after the ring filled");
      registry->counter_fn(this, "obs_trace_dropped_total", {}, [this] {
        return static_cast<double>(ring_->dropped());
      });
      registry->set_help("obs_trace_ring_high_watermark",
                         "Most events the trace ring ever held at once");
      registry->gauge_fn(this, "obs_trace_ring_high_watermark", {}, [this] {
        return static_cast<double>(ring_->high_watermark());
      });
    }
  }

  // Recording legs: the caller's external sink plus the internal ring.
  obs::TraceSink* record = external;
  if (ring_.has_value()) {
    if (record != nullptr) {
      record_tee_ = std::make_unique<obs::TeeTraceSink>();
      record_tee_->add(record);
      record_tee_->add(&*ring_);
      record = record_tee_.get();
    } else {
      record = &*ring_;
    }
  }
  if (!config_.enable_detectors) return record;

  // Alarms feed back into the *recording* legs only — never the bank
  // itself — so every kDetectorAlarm lands right after its triggering
  // event and replaying the shipped trace offline reproduces the same
  // alarm sequence (the offline==online invariant).
  bank_ = std::make_unique<obs::DetectorBank>(config_.detectors, registry,
                                              record);
  if (record == nullptr) return bank_.get();
  env_tee_ = std::make_unique<obs::TeeTraceSink>();
  env_tee_->add(record);
  env_tee_->add(bank_.get());
  return env_tee_.get();
}

void TimedService::register_worker_metrics(obs::Registry* registry) {
  if (registry == nullptr) return;
  const auto read = [](const std::atomic<std::uint64_t>& cell) {
    return [&cell] {
      return static_cast<double>(cell.load(std::memory_order_relaxed));
    };
  };
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const obs::Labels labels = {{"worker", std::to_string(i)}};
    const WorkerStats& stats = workers_[i]->stats();
    registry->counter_fn(this, "triad_timed_requests_total", labels,
                         read(stats.requests));
    registry->counter_fn(this, "triad_timed_responses_total", labels,
                         read(stats.responses));
    registry->counter_fn(this, "triad_timed_unavailable_total", labels,
                         read(stats.unavailable));
    registry->counter_fn(this, "triad_timed_bad_frames_total", labels,
                         read(stats.bad_frames));
    registry->counter_fn(this, "triad_timed_decode_errors_total", labels,
                         read(stats.decode_errors));
    registry->counter_fn(this, "triad_timed_send_failures_total", labels,
                         read(stats.send_failures));
    registry->gauge_fn(this, "triad_timed_batch_depth", labels,
                       read(stats.batch_depth));
  }
  if (!workers_.empty()) {
    registry->set_help("triad_timed_batch_depth",
                       "Last receive-batch size while a scraper is "
                       "connected; 0 when nobody is scraping");
  }
}

// --- BlockingProbe -----------------------------------------------------

BlockingProbe::BlockingProbe(NodeId self, NodeId server,
                             runtime::SockAddr server_addr,
                             const crypto::Keyring& keyring)
    : self_(self),
      server_(server),
      server_addr_(server_addr),
      socket_(runtime::UdpSocket::bind(runtime::kLoopbackAny)),
      channel_(self, keyring) {}

std::optional<TrustedTimestamp> BlockingProbe::request(Duration timeout) {
  if (!socket_.valid()) return std::nullopt;
  proto::PeerTimeRequest request;
  request.request_id = next_request_id_++;
  const Bytes sealed = channel_.seal(server_, proto::encode(request));
  const Bytes datagram = net::wire::encode_frame(self_, server_, sealed);
  if (!socket_.send_to(server_addr_, datagram)) return std::nullopt;

  socket_.set_recv_timeout_ms(
      std::max(1, static_cast<int>(timeout / 1'000'000)));
  std::array<runtime::RecvView, runtime::kRecvBatch> views;
  // A stale response (from an earlier timed-out request) may arrive
  // first; keep reading until the id matches or the timeout hits.
  runtime::MonotonicTimer waited;
  while (static_cast<Duration>(waited.elapsed_ns()) < timeout) {
    const std::size_t n = socket_.recv_batch(views);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      const auto frame = net::wire::decode_frame(views[i].data);
      if (!frame.has_value() || frame->dst != self_) continue;
      const auto opened = channel_.open(frame->payload);
      if (!opened.has_value()) {
        ++bad_frames_;
        continue;
      }
      const auto message = proto::decode(opened->plaintext);
      const auto* response =
          message.has_value()
              ? std::get_if<proto::PeerTimeResponse>(&*message)
              : nullptr;
      if (response == nullptr) {
        ++bad_frames_;
        continue;
      }
      if (response->request_id != request.request_id) continue;
      if (response->tainted) {
        ++tainted_answers_;
        return std::nullopt;
      }
      TrustedTimestamp result;
      result.timestamp = response->timestamp;
      result.error_bound = response->error_bound;
      result.served_by = opened->sender;
      return result;
    }
  }
  ++timeouts_;
  return std::nullopt;
}

}  // namespace triad::timed
