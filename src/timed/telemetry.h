// Read-only plain-TCP telemetry endpoints for triad_timed.
//
// The server lives on the *node thread's* epoll loop: accepts, request
// parsing, rendering, and replies all run between protocol callbacks on
// that one thread, so the metrics Registry and the trace ring — both
// node-thread state, per the one-Registry-per-run rule — are read
// without any locking. The serve workers never touch the telemetry
// plane; their only cost is one relaxed atomic load per receive batch
// (see active_conns), paid to sample queue depth only while a scraper
// is actually connected.
//
// Endpoints (HTTP/1.0, Connection: close, GET only):
//   /metrics   Prometheus text exposition (obs::write_prometheus) —
//              byte-identical families to the exit dump, values live;
//   /trace     bounded tail of the trace ring as JSONL (obs schema,
//              parse_jsonl-compatible) — ships the node's protocol
//              trace for triad_mon's cluster merge;
//   /prof      profiler scope table (obs::Profiler), empty tree when
//              profiling is off. Exact only while instrumented worker
//              threads are quiescent (merge()'s standing caveat).
// Anything else answers 404. The plane is deliberately plain TCP with
// no auth: it is read-only and belongs on an operator network, exactly
// like a Prometheus scrape target. What "unauthenticated" still must
// not allow is resource pinning: at most `max_pending` connections are
// held (oldest evicted), and a connection that has not completed a
// request line within `request_deadline` is swept by a periodic timer,
// so idle or half-open clients cannot exhaust fds or keep
// active_conns() nonzero forever.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/env.h"
#include "runtime/real_env.h"
#include "util/types.h"

namespace triad::timed {

class TelemetryServer {
 public:
  /// What the endpoints render. All pointers are non-owning and must
  /// outlive the server; null disables the endpoint (404).
  struct Sources {
    const obs::Registry* registry = nullptr;
    const obs::RingTraceSink* trace = nullptr;
    /// Renders /prof; empty function disables the endpoint.
    std::function<std::string()> prof;
    /// Most events one /trace answer ships (tail of the ring).
    std::size_t trace_tail = std::size_t{1} << 16;
    /// Most simultaneous pending connections; accepting past the cap
    /// evicts the oldest, so stalled clients cannot exhaust fds.
    std::size_t max_pending = 32;
    /// Connections that have not completed a request line within this
    /// deadline are closed by a periodic sweep (0 disables the sweep).
    Duration request_deadline = seconds(5);
    /// Invoked (on the node thread) whenever the last open scraper
    /// connection closes — the active_conns() 1 -> 0 edge. TimedService
    /// uses it to zero the workers' batch-depth gauges so a disconnected
    /// scraper's last sample does not linger as a live-looking reading.
    std::function<void()> on_scrapers_idle;
  };

  /// Binds `addr` and registers with `loop`. `env` must be the
  /// environment driving `loop` (its scheduler runs the idle-connection
  /// sweep). Check valid() afterwards.
  TelemetryServer(runtime::EpollLoop& loop, runtime::Env env,
                  runtime::SockAddr addr, Sources sources);
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  [[nodiscard]] bool valid() const { return listener_.valid(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] runtime::SockAddr local_addr() const {
    return listener_.local_addr();
  }

  /// Requests answered (any status), for the final summary.
  [[nodiscard]] std::uint64_t scrapes() const { return scrapes_; }

  /// Open scraper connections. Written on the node thread, read with
  /// memory_order_relaxed by the serve workers' hot path — the single
  /// check that keeps telemetry free when nobody is scraping.
  [[nodiscard]] const std::atomic<std::uint32_t>& active_conns() const {
    return active_conns_;
  }

 private:
  struct PendingConn {
    runtime::TcpConn conn;
    std::string request;
    std::uint64_t accepted_ns = 0;  // MonotonicTimer::now_ns() at accept
  };

  void on_accept();
  void on_conn_readable(int fd);
  void close_conn(int fd);
  void sweep_stale_conns();
  void respond(PendingConn& pending);
  [[nodiscard]] std::string render(std::string_view path, int* status) const;

  runtime::EpollLoop& loop_;
  runtime::Env env_;
  Sources sources_;
  // error_ must be declared (constructed) before listener_: the
  // initializer list hands &error_ to TcpListener::open.
  std::string error_;
  runtime::TcpListener listener_;
  std::vector<std::unique_ptr<PendingConn>> conns_;
  std::unique_ptr<runtime::PeriodicTimer> sweeper_;
  std::uint64_t scrapes_ = 0;
  std::atomic<std::uint32_t> active_conns_{0};
};

}  // namespace triad::timed
