#include "timed/telemetry.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/export.h"

namespace triad::timed {

namespace {

// A scraper's request line fits in one segment; anything larger is not a
// telemetry client.
constexpr std::size_t kMaxRequestBytes = 4096;

std::string http_response(int status, std::string_view content_type,
                          std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += status == 200 ? "HTTP/1.0 200 OK\r\n" : "HTTP/1.0 404 Not Found\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

TelemetryServer::TelemetryServer(runtime::EpollLoop& loop, runtime::Env env,
                                 runtime::SockAddr addr, Sources sources)
    : loop_(loop),
      env_(env),
      sources_(std::move(sources)),
      listener_(runtime::TcpListener::open(addr, &error_)) {
  if (!listener_.valid()) return;
  loop_.add_fd(listener_.fd(), [this] { on_accept(); });
  if (sources_.request_deadline > 0) {
    // Half the deadline keeps worst-case lingering under 1.5x the
    // configured value without waking the loop often.
    const Duration period =
        std::max<Duration>(sources_.request_deadline / 2, milliseconds(10));
    sweeper_ = std::make_unique<runtime::PeriodicTimer>(
        env_, period, [this] { sweep_stale_conns(); });
  }
}

TelemetryServer::~TelemetryServer() {
  for (const auto& pending : conns_) loop_.remove_fd(pending->conn.fd());
  if (listener_.valid()) loop_.remove_fd(listener_.fd());
}

void TelemetryServer::on_accept() {
  // Drain every pending connection: level-triggered epoll would re-report
  // anyway, but one pass keeps scrape latency flat under bursts.
  for (;;) {
    runtime::TcpConn conn = listener_.accept_client();
    if (!conn.valid()) return;
    // Oldest-first eviction past the cap: a client that stalls before
    // finishing its request line loses its slot to the next scraper
    // instead of exhausting fds.
    while (conns_.size() >= sources_.max_pending && !conns_.empty()) {
      close_conn(conns_.front()->conn.fd());
    }
    const int fd = conn.fd();
    auto pending = std::make_unique<PendingConn>();
    pending->conn = std::move(conn);
    pending->accepted_ns = runtime::MonotonicTimer::now_ns();
    conns_.push_back(std::move(pending));
    active_conns_.store(static_cast<std::uint32_t>(conns_.size()),
                        std::memory_order_relaxed);
    loop_.add_fd(fd, [this, fd] { on_conn_readable(fd); });
  }
}

void TelemetryServer::on_conn_readable(int fd) {
  PendingConn* pending = nullptr;
  for (const auto& entry : conns_) {
    if (entry->conn.fd() == fd) {
      pending = entry.get();
      break;
    }
  }
  if (pending == nullptr) return;

  std::uint8_t buf[1024];
  const std::size_t n = pending->conn.read_some(buf, sizeof(buf));
  if (n == 0) {  // EOF or error before a full request line
    close_conn(fd);
    return;
  }
  pending->request.append(reinterpret_cast<const char*>(buf), n);
  if (pending->request.size() > kMaxRequestBytes) {
    close_conn(fd);
    return;
  }
  // A bare "GET /x\r\n" (no headers) is answered too: /dev/tcp scrapers
  // and netcat one-liners do not always send the empty header block.
  if (pending->request.find("\r\n") == std::string::npos) return;
  respond(*pending);
  close_conn(fd);
}

void TelemetryServer::close_conn(int fd) {
  loop_.remove_fd(fd);
  std::erase_if(conns_, [fd](const std::unique_ptr<PendingConn>& entry) {
    return entry->conn.fd() == fd;
  });
  active_conns_.store(static_cast<std::uint32_t>(conns_.size()),
                      std::memory_order_relaxed);
  if (conns_.empty() && sources_.on_scrapers_idle) sources_.on_scrapers_idle();
}

void TelemetryServer::sweep_stale_conns() {
  if (conns_.empty() || sources_.request_deadline <= 0) return;
  const std::uint64_t now_ns = runtime::MonotonicTimer::now_ns();
  const auto deadline_ns =
      static_cast<std::uint64_t>(sources_.request_deadline);
  std::vector<int> stale;
  for (const auto& entry : conns_) {
    if (now_ns - entry->accepted_ns > deadline_ns) {
      stale.push_back(entry->conn.fd());
    }
  }
  for (const int fd : stale) close_conn(fd);
}

void TelemetryServer::respond(PendingConn& pending) {
  ++scrapes_;
  // Request line: "GET <path> [HTTP/1.x]".
  std::string_view line = pending.request;
  line = line.substr(0, line.find("\r\n"));
  std::string_view path;
  int status = 404;
  if (line.substr(0, 4) == "GET ") {
    path = line.substr(4);
    const auto space = path.find(' ');
    if (space != std::string_view::npos) path = path.substr(0, space);
  }
  const std::string body = render(path, &status);
  const std::string_view content_type =
      path == "/metrics" ? "text/plain; version=0.0.4" : "text/plain";
  const std::string response = http_response(status, content_type, body);
  if (pending.conn.write_all(
          BytesView{reinterpret_cast<const std::uint8_t*>(response.data()),
                    response.size()})) {
    pending.conn.shutdown_write();
  }
}

std::string TelemetryServer::render(std::string_view path,
                                    int* status) const {
  *status = 200;
  if (path == "/metrics" && sources_.registry != nullptr) {
    std::ostringstream os;
    obs::write_prometheus(*sources_.registry, os);
    return os.str();
  }
  if (path == "/trace" && sources_.trace != nullptr) {
    const std::vector<obs::TraceEvent> events = sources_.trace->events();
    const std::size_t tail = std::min(events.size(), sources_.trace_tail);
    std::ostringstream os;
    for (std::size_t i = events.size() - tail; i < events.size(); ++i) {
      obs::write_json_line(events[i], os);
      os << '\n';
    }
    return os.str();
  }
  if (path == "/prof" && sources_.prof) {
    return sources_.prof();
  }
  *status = 404;
  return "not found\n";
}

}  // namespace triad::timed
