// triad_timed service layer: a triad::Node (or ta::TimeAuthority) bound
// to real sockets through runtime::RealEnv, serving sealed timestamp
// requests to external clients.
//
// Thread model (the part RealEnv alone does not give you):
//   * the *node thread* runs the RealEnv loop — all protocol traffic
//     (TA calibration round-trips, peer untainting) and the TriadNode
//     state machine live there, single-threaded, exactly as under
//     SimEnv;
//   * N *serve workers* each own an epoll loop plus a UDP socket bound
//     to the serve address with SO_REUSEPORT. The kernel's flow hash
//     pins every client to one worker, so each worker's SecureChannel
//     (send counters, replay windows) sees a consistent per-client
//     stream — sharding the crypto state instead of locking it;
//   * the node thread publishes a clock snapshot (time, monotonic
//     anchor, error bound, availability) a few times per millisecond;
//     workers answer requests by extrapolating the snapshot at rate 1,
//     clamped per-worker monotone. TriadNode itself is never touched
//     off the node thread.
//
// Registry access stays single-threaded: all series are registered on
// the construction thread, worker counters are std::atomic fields read
// through counter_fn callbacks, and snapshots are only taken after the
// workers have joined (final dump) — the same one-Registry-per-run rule
// the campaign engine follows.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "crypto/channel.h"
#include "obs/detect.h"
#include "obs/trace.h"
#include "runtime/real_env.h"
#include "ta/time_authority.h"
#include "timed/telemetry.h"
#include "triad/client.h"
#include "triad/node.h"
#include "util/types.h"

namespace triad::timed {

/// Node-clock snapshot shared from the node thread to the serve workers.
struct ClockSnapshot {
  SimTime time = 0;            // node clock at publish
  std::uint64_t mono_ns = 0;   // MonotonicTimer::now_ns() at publish
  Duration error_bound = 0;
  bool available = false;
};

/// Mutex-guarded single-slot publish/read board. The serve path takes
/// the lock once per *batch*, not per request.
class SnapshotBoard {
 public:
  void publish(const ClockSnapshot& snap) {
    const std::lock_guard<std::mutex> lock(mutex_);
    snap_ = snap;
  }
  [[nodiscard]] ClockSnapshot read() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return snap_;
  }

 private:
  mutable std::mutex mutex_;
  ClockSnapshot snap_;
};

/// Per-worker counters (atomics: written by the worker thread, read by
/// registry callbacks and the final summary).
struct WorkerStats {
  std::atomic<std::uint64_t> requests{0};      // authenticated requests
  std::atomic<std::uint64_t> responses{0};     // sealed answers sent
  std::atomic<std::uint64_t> unavailable{0};   // answered tainted=true
  std::atomic<std::uint64_t> bad_frames{0};    // auth/replay/proto failures
  std::atomic<std::uint64_t> decode_errors{0};  // wire-header garbage
  std::atomic<std::uint64_t> send_failures{0};
  /// Last receive-batch size, sampled only while a telemetry scraper is
  /// connected (see ServeWorker::set_scrape_signal) — a live queue-depth
  /// gauge that costs the hot path one relaxed load when nobody scrapes.
  /// Zeroed when the last scraper disconnects (TelemetryServer's
  /// on_scrapers_idle) and on the first unscraped batch after a sampled
  /// one, so a stale depth never lingers as a live-looking reading.
  std::atomic<std::uint64_t> batch_depth{0};
};

/// One SO_REUSEPORT serve worker: epoll loop + socket + SecureChannel.
/// Constructed and started by TimedService; public only so tests can
/// exercise the serve path without a full daemon.
class ServeWorker {
 public:
  ServeWorker(runtime::SockAddr serve, NodeId node_id,
              const crypto::Keyring& keyring, const SnapshotBoard& board);

  [[nodiscard]] bool valid() const { return socket_.valid(); }
  [[nodiscard]] const std::string& bind_error() const { return bind_error_; }
  [[nodiscard]] runtime::SockAddr local_addr() const {
    return socket_.local_addr();
  }
  [[nodiscard]] const WorkerStats& stats() const { return stats_; }

  void start();  // spawns the worker thread
  void stop();   // async-signal-safe (epoll eventfd write)
  void join();

  /// Points the worker at the telemetry server's open-connection count;
  /// batch depth is sampled into stats only while it is nonzero. Call
  /// before start() (the worker thread reads it unsynchronized).
  void set_scrape_signal(const std::atomic<std::uint32_t>* conns) {
    scrape_signal_ = conns;
  }

  /// Resets the batch-depth gauge to 0. Called from the node thread when
  /// the last scraper disconnects (atomic store; safe while running).
  void clear_batch_depth() {
    stats_.batch_depth.store(0, std::memory_order_relaxed);
  }

 private:
  void run();
  void on_readable();

  // bind_error_ must be declared (constructed) before socket_: the
  // initializer list hands &bind_error_ to UdpSocket::bind.
  std::string bind_error_;
  runtime::UdpSocket socket_;
  runtime::EpollLoop loop_;
  runtime::RealClock clock_;
  runtime::RealScheduler scheduler_{clock_};
  crypto::SecureChannel channel_;
  const SnapshotBoard& board_;
  const std::atomic<std::uint32_t>* scrape_signal_ = nullptr;
  bool batch_depth_sampled_ = false;  // worker thread only
  WorkerStats stats_;
  SimTime last_served_ = 0;  // per-worker monotonicity clamp
  Bytes reply_buf_;
  std::thread thread_;
};

/// What the daemon runs as.
enum class Role : std::uint8_t {
  kNode,  // triad::Node + serve workers
  kTa,    // ta::TimeAuthority (reference clock root of trust)
};

struct ServiceConfig {
  Role role = Role::kNode;
  /// Protocol endpoint (TA round-trips, peer untainting). Port 0 picks
  /// an ephemeral port — fine for tests, not for a static cluster.
  runtime::SockAddr listen{runtime::kLoopbackAny};
  /// Client-facing endpoint (node role only; port 0 = ephemeral).
  runtime::SockAddr serve{runtime::kLoopbackAny};
  int workers = 1;
  /// Static protocol address book: peers + TA. Unlisted peers are
  /// learned from incoming frames (see UdpTransport::set_learn_peers).
  std::vector<std::pair<NodeId, runtime::SockAddr>> peers;
  /// Cluster master secret (stand-in for remote attestation; must match
  /// across the cluster and its clients).
  Bytes master_secret = Bytes(32, 0x42);
  std::uint64_t seed = 1;
  /// Node protocol parameters (node role). config.node.id is the
  /// service's wire identity; for the TA role `ta_id` is.
  TriadConfig node;
  NodeId ta_id = 0;
  Duration ta_max_wait = seconds(2);
  /// Snapshot publish period (node thread -> serve workers).
  Duration snapshot_period = milliseconds(1);

  // --- live telemetry (PR 9) -------------------------------------------
  /// Internal trace ring capacity (0 = none). The ring records the
  /// node's protocol trace for the /trace endpoint, the final dump
  /// (trace_ring()), and the detector bank's causal context. An external
  /// ObsBinding.trace sink keeps working alongside it (tee).
  std::size_t trace_capacity = 0;
  /// Online detectors (slope/disagreement/jump) teeing off the trace
  /// path after the recording sinks — alarms fire live and land in the
  /// ring *after* their triggering event, so replaying the shipped
  /// JSONL offline reproduces them (the offline==online invariant).
  bool enable_detectors = false;
  obs::DetectorConfig detectors;
  /// Telemetry listener (plain TCP, read-only; nullopt = none).
  std::optional<runtime::SockAddr> telemetry;
  /// Most events one /trace answer ships (tail of the ring).
  std::size_t telemetry_trace_tail = std::size_t{1} << 16;
  /// Most simultaneous pending telemetry connections (oldest evicted).
  std::size_t telemetry_max_pending = 32;
  /// Telemetry connections that have not completed a request line within
  /// this deadline are closed (0 disables the sweep).
  Duration telemetry_request_deadline = seconds(5);
};

/// The triad_timed daemon core (also driven in-process by tests and the
/// loopback bench). Construct, check valid(), start(), run()/run_for(),
/// stop() from a signal handler, then read stats after run() returns.
class TimedService {
 public:
  TimedService(ServiceConfig config, runtime::ObsBinding obs = {});
  ~TimedService();
  TimedService(const TimedService&) = delete;
  TimedService& operator=(const TimedService&) = delete;

  [[nodiscard]] bool valid() const;
  [[nodiscard]] std::string error() const;

  /// Starts protocol components and serve workers (node role).
  void start();
  /// Runs the node-thread loop until stop(). start() must have run.
  void run();
  void run_for(Duration d);
  /// Async-signal-safe: stops the node loop and every worker loop.
  void stop();
  /// Stops workers and joins their threads (run() does this on exit;
  /// exposed for run_for()-driven tests).
  void shutdown_workers();

  [[nodiscard]] runtime::SockAddr protocol_addr() const;
  /// Resolved serve endpoint (all workers share it via SO_REUSEPORT).
  [[nodiscard]] runtime::SockAddr serve_addr() const;

  [[nodiscard]] TriadNode* node() { return node_ ? node_.get() : nullptr; }
  [[nodiscard]] ta::TimeAuthority* authority() {
    return authority_ ? authority_.get() : nullptr;
  }
  [[nodiscard]] runtime::RealEnv& env() { return *env_; }
  [[nodiscard]] const std::vector<std::unique_ptr<ServeWorker>>& serve_workers()
      const {
    return workers_;
  }
  [[nodiscard]] std::uint64_t total_responses() const;
  [[nodiscard]] std::uint64_t total_bad_frames() const;

  /// Internal trace ring (null unless config.trace_capacity > 0).
  [[nodiscard]] const obs::RingTraceSink* trace_ring() const {
    return ring_.has_value() ? &*ring_ : nullptr;
  }
  /// Online detector bank (null unless config.enable_detectors).
  [[nodiscard]] const obs::DetectorBank* detectors() const {
    return bank_.get();
  }
  /// Telemetry server (null unless config.telemetry was set).
  [[nodiscard]] const TelemetryServer* telemetry() const {
    return telemetry_.get();
  }
  /// Resolved telemetry endpoint ({} when no listener).
  [[nodiscard]] runtime::SockAddr telemetry_addr() const {
    return telemetry_ ? telemetry_->local_addr() : runtime::SockAddr{};
  }

 private:
  void register_worker_metrics(obs::Registry* registry);
  [[nodiscard]] obs::TraceSink* build_trace_chain(
      obs::TraceSink* external, obs::Registry* registry);

  ServiceConfig config_;
  crypto::ClusterKeyring keyring_;
  std::optional<obs::RingTraceSink> ring_;
  std::unique_ptr<obs::DetectorBank> bank_;
  std::unique_ptr<obs::TeeTraceSink> record_tee_;  // external + ring
  std::unique_ptr<obs::TeeTraceSink> env_tee_;     // recorders + bank
  obs::Registry* registry_ = nullptr;
  std::unique_ptr<runtime::RealEnv> env_;
  std::unique_ptr<TriadNode> node_;
  std::unique_ptr<ta::TimeAuthority> authority_;
  SnapshotBoard board_;
  std::unique_ptr<runtime::PeriodicTimer> publisher_;
  std::vector<std::unique_ptr<ServeWorker>> workers_;
  std::unique_ptr<TelemetryServer> telemetry_;
  std::string error_;
  std::atomic<bool> started_{false};
};

/// Synchronous sealed-timestamp probe: one UDP socket, one request at a
/// time, blocking with a timeout. Used by `triad_timed --role client`,
/// the realenv smoke tier, and tests. (The loopback bench pipelines
/// instead; see bench/bench_triad_loopback.cpp.)
class BlockingProbe {
 public:
  BlockingProbe(NodeId self, NodeId server, runtime::SockAddr server_addr,
                const crypto::Keyring& keyring);

  [[nodiscard]] bool valid() const { return socket_.valid(); }

  /// One sealed PeerTimeRequest/PeerTimeResponse round-trip. Returns
  /// nullopt on timeout, auth failure, or a tainted answer.
  [[nodiscard]] std::optional<TrustedTimestamp> request(
      Duration timeout = milliseconds(200));

  [[nodiscard]] std::uint64_t bad_frames() const { return bad_frames_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t tainted_answers() const {
    return tainted_answers_;
  }

 private:
  NodeId self_;
  NodeId server_;
  runtime::SockAddr server_addr_;
  runtime::UdpSocket socket_;
  crypto::SecureChannel channel_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t bad_frames_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t tainted_answers_ = 0;
};

}  // namespace triad::timed
