// True-chimer registry and majority-clique computation (paper §V).
//
// "Nodes may publish, e.g., on a blockchain, or simply to other nodes,
//  their list of true-chimers. [...] a majority clique of true-chimers
//  may be used to maintain clock consistency and rely less often on the
//  TA."
//
// Each node reports which peers it currently considers true-chimers
// (mutually consistent clocks). The registry builds an undirected graph
// with an edge (a, b) when *both* a reports b and b reports a — one-sided
// claims are free for a liar to make, mutual confirmation is not — and
// finds the maximum clique. If that clique covers a majority of the
// cluster, its members form the trusted core.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "util/types.h"

namespace triad::resilient {

class ChimerRegistry {
 public:
  /// Replaces `reporter`'s current view: the peers it deems consistent
  /// with its own clock. Self-entries are ignored.
  void report(NodeId reporter, const std::vector<NodeId>& chimers);

  /// Nodes that have reported at least once.
  [[nodiscard]] std::vector<NodeId> participants() const;

  /// True when both endpoints currently confirm each other.
  [[nodiscard]] bool mutually_confirmed(NodeId a, NodeId b) const;

  /// The largest set of nodes that all mutually confirm each other
  /// (maximum clique; ties broken toward lexicographically smallest).
  /// Exact search — cluster sizes here are single digits.
  [[nodiscard]] std::vector<NodeId> maximum_clique() const;

  /// The maximum clique if it covers a strict majority of
  /// `cluster_size` nodes; empty otherwise.
  [[nodiscard]] std::vector<NodeId> majority_clique(
      std::size_t cluster_size) const;

 private:
  std::map<NodeId, std::set<NodeId>> reported_;  // reporter -> claimed set
};

}  // namespace triad::resilient
