#include "resilient/chimer_registry.h"

#include <algorithm>

namespace triad::resilient {

void ChimerRegistry::report(NodeId reporter,
                            const std::vector<NodeId>& chimers) {
  std::set<NodeId>& entry = reported_[reporter];
  entry.clear();
  for (NodeId peer : chimers) {
    if (peer != reporter) entry.insert(peer);
  }
}

std::vector<NodeId> ChimerRegistry::participants() const {
  std::vector<NodeId> out;
  out.reserve(reported_.size());
  for (const auto& [reporter, chimers] : reported_) out.push_back(reporter);
  return out;
}

bool ChimerRegistry::mutually_confirmed(NodeId a, NodeId b) const {
  if (a == b) return false;
  const auto ita = reported_.find(a);
  const auto itb = reported_.find(b);
  return ita != reported_.end() && itb != reported_.end() &&
         ita->second.contains(b) && itb->second.contains(a);
}

std::vector<NodeId> ChimerRegistry::maximum_clique() const {
  const std::vector<NodeId> nodes = participants();
  std::vector<NodeId> best;
  std::vector<NodeId> current;

  // Exact branch-and-bound over the (tiny) participant set. Nodes are
  // visited in ascending id order, giving lexicographically-smallest
  // tie-breaking among equal-size cliques.
  auto extend = [&](auto&& self, std::size_t start) -> void {
    if (current.size() > best.size()) best = current;
    for (std::size_t i = start; i < nodes.size(); ++i) {
      if (current.size() + (nodes.size() - i) <= best.size()) break;
      const NodeId candidate = nodes[i];
      const bool compatible = std::all_of(
          current.begin(), current.end(), [&](NodeId member) {
            return mutually_confirmed(member, candidate);
          });
      if (compatible) {
        current.push_back(candidate);
        self(self, i + 1);
        current.pop_back();
      }
    }
  };
  extend(extend, 0);
  return best;
}

std::vector<NodeId> ChimerRegistry::majority_clique(
    std::size_t cluster_size) const {
  std::vector<NodeId> clique = maximum_clique();
  if (clique.size() * 2 <= cluster_size) return {};
  return clique;
}

}  // namespace triad::resilient
