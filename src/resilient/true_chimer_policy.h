// True-chimer untaint policy (paper §V).
//
// Instead of blindly following the fastest peer clock, the node collects
// every peer answer, forms intervals t_i ± e_i (including its own clock),
// and runs Marzullo's intersection. Only when a majority of clocks agree
// does it trust the result:
//   * own clock inside the majority interval  -> keep local;
//   * own clock outside, majority exists      -> adopt the midpoint;
//   * no majority                              -> fall back to the TA.
// An F- attacked peer races ahead of everyone else, lands outside the
// majority interval, and is simply out-voted instead of being followed.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "triad/policy.h"

namespace triad::resilient {

struct TrueChimerConfig {
  /// Extra slack added to every interval for network/processing delay.
  Duration margin = milliseconds(2);
  /// Minimum fraction of clocks (peers + self) that must agree.
  /// 0.5 means strict majority (floor(n/2)+1).
  double quorum_fraction = 0.5;
  /// When the node's own error bound exceeds this, it resynchronizes
  /// with the TA instead of trusting interval votes — wide own intervals
  /// would otherwise let a tight-but-false clock drag the intersection
  /// (§V: "a node may now check if its clock is consistent with the TA").
  Duration max_local_error = milliseconds(50);
  /// Peer evidence is only *adopted* (clock stepped) when every clock in
  /// the majority clique reports an error bound at most this tight.
  /// A clique containing a wide honest interval can be captured by a
  /// tight false-ticker; stepping onto it would import the attack, so
  /// the node asks the TA instead.
  Duration adopt_error_ceiling = milliseconds(10);
  /// Called after every quorate decision with the peers found in the
  /// majority interval — the node's current true-chimer set, feedable to
  /// a ChimerRegistry (§V: nodes publish their true-chimer lists).
  std::function<void(const std::vector<NodeId>&)> on_chimer_set;
};

class TrueChimerPolicy final : public UntaintPolicy {
 public:
  explicit TrueChimerPolicy(TrueChimerConfig config = {});

  /// Registers triad_policy_decisions_total{node=,outcome=} plus
  /// triad_policy_quorum_failures_total{node=} (direct counters;
  /// incremented inside decide(), no-op without a registry).
  void bind_obs(obs::Registry* registry, NodeId node) override;

  [[nodiscard]] Mode mode() const override { return Mode::kCollectAll; }
  [[nodiscard]] Decision decide(
      SimTime local_now, Duration local_error,
      const std::vector<PeerSample>& samples) override;

 private:
  TrueChimerConfig config_;
  obs::Counter decide_keep_local_;
  obs::Counter decide_adopt_;
  obs::Counter decide_ask_ta_;
  obs::Counter quorum_failures_;
};

std::unique_ptr<UntaintPolicy> make_true_chimer_policy(
    TrueChimerConfig config = {});

}  // namespace triad::resilient
