#include "resilient/clock_filter.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace triad::resilient {

ClockFilter::ClockFilter(std::size_t window, Duration max_age)
    : window_(window), max_age_(max_age) {
  if (window == 0 || max_age <= 0) {
    throw std::invalid_argument("ClockFilter: bad parameters");
  }
}

void ClockFilter::add(ClockSample sample) {
  if (sample.delay < 0) {
    throw std::invalid_argument("ClockFilter: negative delay");
  }
  samples_.push_back(sample);
  while (samples_.size() > window_) samples_.pop_front();
}

std::optional<ClockSample> ClockFilter::select(
    SimTime now, Duration max_age_override) const {
  const Duration horizon =
      max_age_override > 0 ? std::min(max_age_override, max_age_) : max_age_;
  std::optional<ClockSample> best;
  for (const ClockSample& s : samples_) {
    if (now - s.at > horizon) continue;
    if (!best || s.delay < best->delay ||
        (s.delay == best->delay && s.at > best->at)) {
      best = s;
    }
  }
  return best;
}

Duration ClockFilter::dispersion(SimTime now) const {
  const auto best = select(now);
  if (!best) return 0;
  // Weighted offset spread, newer-sample-dominant (1/2^i weights over
  // samples sorted by delay, as in NTP's peer dispersion).
  std::vector<const ClockSample*> live;
  for (const ClockSample& s : samples_) {
    if (now - s.at <= max_age_) live.push_back(&s);
  }
  std::sort(live.begin(), live.end(),
            [](const ClockSample* a, const ClockSample* b) {
              return a->delay < b->delay;
            });
  double disp = 0.0;
  double weight = 0.5;
  for (const ClockSample* s : live) {
    disp += weight *
            std::abs(static_cast<double>(s->offset - best->offset));
    weight *= 0.5;
  }
  return static_cast<Duration>(disp);
}

}  // namespace triad::resilient
