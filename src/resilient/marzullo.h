// Marzullo's algorithm (Marzullo & Owicki 1983, cited in paper §V).
//
// Given clock readings as intervals [t_i - e_i, t_i + e_i], finds the
// interval consistent with the largest number of clocks. Clocks whose
// interval overlaps that intersection are the "true-chimers"; the rest
// are false-tickers and get ignored by the hardened untaint policy.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.h"

namespace triad::resilient {

struct Interval {
  SimTime lo = 0;
  SimTime hi = 0;  // must be >= lo
  friend bool operator==(const Interval&, const Interval&) = default;
};

struct MarzulloResult {
  Interval best{};          // intersection satisfied by `count` intervals
  std::size_t count = 0;    // how many source intervals overlap it
  [[nodiscard]] SimTime midpoint() const {
    return best.lo + (best.hi - best.lo) / 2;
  }
};

/// Computes the best intersection. Empty input yields count == 0.
/// Throws std::invalid_argument on an interval with hi < lo.
MarzulloResult marzullo(const std::vector<Interval>& intervals);

/// Indices of intervals overlapping `window` (the true-chimer set).
std::vector<std::size_t> overlapping(const std::vector<Interval>& intervals,
                                     const Interval& window);

}  // namespace triad::resilient
