// NTP-style clock filter (RFC 5905 §10-flavoured, simplified).
//
// Keeps the last N (offset, delay) samples from one time source and
// selects the sample with the lowest round-trip delay — low-delay
// samples carry the least asymmetric-queueing error, which is precisely
// the error a message-delaying attacker injects. Dispersion grows as
// samples age. Section V proposes replacing Triad's raw short-window
// measurements with this kind of mature filtering.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "util/types.h"

namespace triad::resilient {

struct ClockSample {
  Duration offset = 0;  // remote - local at the sample instant
  Duration delay = 0;   // round-trip delay observed for the exchange
  SimTime at = 0;       // local time the sample was taken
};

class ClockFilter {
 public:
  /// window: number of retained samples (NTP uses 8).
  /// max_age: samples older than this are expired at selection time.
  explicit ClockFilter(std::size_t window = 8,
                       Duration max_age = minutes(30));

  void add(ClockSample sample);

  /// Best (minimum-delay) current sample, or nullopt if empty/expired.
  /// Ties prefer the newest sample. max_age_override (>0) narrows the
  /// freshness horizon for this call (e.g. to a few poll intervals).
  [[nodiscard]] std::optional<ClockSample> select(
      SimTime now, Duration max_age_override = 0) const;

  /// Peer dispersion: weighted spread of retained offsets around the
  /// selected one — a quality estimate for the source.
  [[nodiscard]] Duration dispersion(SimTime now) const;

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  void clear() { samples_.clear(); }

 private:
  std::size_t window_;
  Duration max_age_;
  std::deque<ClockSample> samples_;
};

}  // namespace triad::resilient
