// "Triad+": the paper's §V hardening proposals bundled as a preset.
//
//   1. In-TCB refresh deadline — the enclave re-checks its clock on its
//      own schedule, so an attacker suppressing AEXs can no longer let a
//      miscalibrated clock run unchecked forever.
//   2. True-chimer peer policy — majority interval intersection instead
//      of follow-the-fastest (see true_chimer_policy.h).
//   3. NTP-style long-window frequency refinement — re-estimates F_calib
//      across TA timestamps minutes apart, cancelling the per-message
//      delay bias that the F+/F- attacks inject into the short-window
//      regression.
#pragma once

#include <memory>

#include "resilient/true_chimer_policy.h"
#include "triad/node.h"

namespace triad::resilient {

struct TriadPlusOptions {
  Duration refresh_deadline = seconds(10);
  bool long_window_calibration = true;
  Duration long_window_min = seconds(60);
  TrueChimerConfig chimer;
};

/// Applies the Triad+ hardening knobs to a base node config.
TriadConfig harden(TriadConfig base, const TriadPlusOptions& options = {});

/// Policy factory matching the hardened config.
std::unique_ptr<UntaintPolicy> make_triad_plus_policy(
    const TriadPlusOptions& options = {});

}  // namespace triad::resilient
