#include "resilient/marzullo.h"

#include <algorithm>
#include <stdexcept>

namespace triad::resilient {

MarzulloResult marzullo(const std::vector<Interval>& intervals) {
  MarzulloResult result;
  if (intervals.empty()) return result;

  // Sweep events: +1 at interval start, -1 past interval end. Starts
  // sort before ends at equal offsets so touching intervals count as
  // overlapping (closed intervals).
  struct Event {
    SimTime at;
    int delta;  // +1 start, -1 end
  };
  std::vector<Event> events;
  events.reserve(intervals.size() * 2);
  for (const Interval& iv : intervals) {
    if (iv.hi < iv.lo) {
      throw std::invalid_argument("marzullo: interval with hi < lo");
    }
    events.push_back({iv.lo, +1});
    events.push_back({iv.hi, -1});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.delta > b.delta;  // starts before ends
  });

  std::size_t current = 0;
  SimTime best_lo = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].delta > 0) {
      ++current;
      if (current > result.count) {
        result.count = current;
        best_lo = events[i].at;
      }
    } else {
      --current;
    }
  }

  // Second pass: find the end of the maximal overlap that starts at
  // best_lo (the first end event at or after best_lo while the count is
  // maximal).
  current = 0;
  bool in_best = false;
  for (const Event& ev : events) {
    if (ev.delta > 0) {
      ++current;
      if (current == result.count && ev.at == best_lo) in_best = true;
    } else {
      if (in_best) {
        result.best = {best_lo, ev.at};
        return result;
      }
      --current;
    }
  }
  // All intervals are points at the same place (count events degenerate).
  result.best = {best_lo, best_lo};
  return result;
}

std::vector<std::size_t> overlapping(const std::vector<Interval>& intervals,
                                     const Interval& window) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (intervals[i].hi >= window.lo && intervals[i].lo <= window.hi) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace triad::resilient
