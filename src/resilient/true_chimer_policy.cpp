#include "resilient/true_chimer_policy.h"

#include <algorithm>
#include <stdexcept>

#include "resilient/marzullo.h"

namespace triad::resilient {

TrueChimerPolicy::TrueChimerPolicy(TrueChimerConfig config)
    : config_(config) {
  if (config_.margin < 0 || config_.quorum_fraction <= 0.0 ||
      config_.quorum_fraction >= 1.0 || config_.max_local_error <= 0 ||
      config_.adopt_error_ceiling <= 0) {
    throw std::invalid_argument("TrueChimerConfig: bad parameters");
  }
}

void TrueChimerPolicy::bind_obs(obs::Registry* registry, NodeId node) {
  if (registry == nullptr) return;
  const std::string id = std::to_string(node);
  registry->set_help("triad_policy_decisions_total",
                     "True-chimer untaint decisions by outcome");
  decide_keep_local_ = registry->counter(
      "triad_policy_decisions_total",
      {{"node", id}, {"outcome", "keep_local"}});
  decide_adopt_ = registry->counter("triad_policy_decisions_total",
                                    {{"node", id}, {"outcome", "adopt"}});
  decide_ask_ta_ = registry->counter("triad_policy_decisions_total",
                                     {{"node", id}, {"outcome", "ask_ta"}});
  registry->set_help("triad_policy_quorum_failures_total",
                     "Decisions where no majority clique of clocks agreed");
  quorum_failures_ =
      registry->counter("triad_policy_quorum_failures_total", {{"node", id}});
}

UntaintPolicy::Decision TrueChimerPolicy::decide(
    SimTime local_now, Duration local_error,
    const std::vector<PeerSample>& samples) {
  Decision decision;
  if (samples.empty() || local_error > config_.max_local_error) {
    decision.action = Decision::Action::kAskTimeAuthority;
    decide_ask_ta_.inc();
    return decision;
  }

  // Intervals: index 0 is the local clock, then one per peer sample.
  std::vector<Interval> intervals;
  intervals.reserve(samples.size() + 1);
  const Duration own_e = local_error + config_.margin;
  intervals.push_back({local_now - own_e, local_now + own_e});
  for (const PeerSample& s : samples) {
    const Duration e = s.error_bound + config_.margin;
    intervals.push_back({s.timestamp - e, s.timestamp + e});
  }

  const MarzulloResult best = marzullo(intervals);
  const auto total = intervals.size();
  const auto quorum = static_cast<std::size_t>(
                          config_.quorum_fraction *
                          static_cast<double>(total)) +
                      1;
  if (best.count < quorum) {
    // No majority clique of true-chimers: do not guess, ask the root of
    // trust.
    decision.action = Decision::Action::kAskTimeAuthority;
    quorum_failures_.inc();
    decide_ask_ta_.inc();
    return decision;
  }

  // The true-chimer criterion: a clock whose *interval* overlaps the
  // majority intersection is a chimer. If our own clock is one, we keep
  // it — stepping onto the intersection midpoint here would let a tight
  // but false peer interval ratchet the whole cluster.
  const auto chimers = overlapping(intervals, best.best);
  if (config_.on_chimer_set) {
    std::vector<NodeId> peer_chimers;
    for (std::size_t idx : chimers) {
      if (idx != 0) peer_chimers.push_back(samples[idx - 1].peer);
    }
    config_.on_chimer_set(peer_chimers);
  }
  const bool own_consistent =
      std::find(chimers.begin(), chimers.end(), 0u) != chimers.end();
  if (own_consistent) {
    decision.action = Decision::Action::kKeepLocal;
    decide_keep_local_.inc();
    return decision;
  }

  // Own clock is a false-ticker. Step onto the majority interval only if
  // the whole clique is high-quality; a wide honest interval would let a
  // tight attacker capture the intersection, so prefer the TA then.
  Duration widest = 0;
  for (std::size_t idx : chimers) {
    if (idx == 0) continue;  // self
    widest = std::max(widest, samples[idx - 1].error_bound);
  }
  if (widest > config_.adopt_error_ceiling) {
    decision.action = Decision::Action::kAskTimeAuthority;
    decide_ask_ta_.inc();
    return decision;
  }

  decision.action = Decision::Action::kAdopt;
  decide_adopt_.inc();
  decision.adopted_time = best.midpoint();
  Duration best_error = kSimTimeMax;
  for (std::size_t idx : chimers) {
    if (idx == 0) continue;  // self
    const PeerSample& s = samples[idx - 1];
    if (s.error_bound < best_error) {
      best_error = s.error_bound;
      decision.source = s.peer;
    }
  }
  return decision;
}

std::unique_ptr<UntaintPolicy> make_true_chimer_policy(
    TrueChimerConfig config) {
  return std::make_unique<TrueChimerPolicy>(config);
}

}  // namespace triad::resilient
