#include "resilient/triad_plus.h"

namespace triad::resilient {

TriadConfig harden(TriadConfig base, const TriadPlusOptions& options) {
  base.refresh_deadline = options.refresh_deadline;
  base.long_window_calibration = options.long_window_calibration;
  base.long_window_min = options.long_window_min;
  return base;
}

std::unique_ptr<UntaintPolicy> make_triad_plus_policy(
    const TriadPlusOptions& options) {
  return make_true_chimer_policy(options.chimer);
}

}  // namespace triad::resilient
