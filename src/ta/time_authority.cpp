#include "ta/time_authority.h"

#include "obs/metrics.h"
#include "util/log.h"

namespace triad::ta {

TimeAuthority::TimeAuthority(runtime::Env env, NodeId address,
                             const crypto::Keyring& keyring,
                             Duration max_wait)
    : env_(env), address_(address), channel_(address, keyring),
      max_wait_(max_wait) {
  env_.transport().attach(
      address_, [this](const runtime::Packet& packet) { on_packet(packet); });
  if (obs::Registry* registry = env_.metrics(); registry != nullptr) {
    const auto count = [&](const std::uint64_t TimeAuthorityStats::* field,
                           const char* name, const char* help) {
      registry->set_help(name, help);
      registry->counter_fn(this, name, {}, [this, field] {
        return static_cast<double>(stats_.*field);
      });
    };
    count(&TimeAuthorityStats::requests_served, "triad_ta_requests_total",
          "Authenticated wait-then-timestamp requests served");
    count(&TimeAuthorityStats::rejected_frames, "triad_ta_rejected_frames_total",
          "Unauthenticated/malformed frames dropped");
    count(&TimeAuthorityStats::rejected_waits, "triad_ta_rejected_waits_total",
          "Requests rejected for exceeding the wait bound");
  }
}

TimeAuthority::~TimeAuthority() {
  env_.transport().detach(address_);
  if (env_.metrics() != nullptr) env_.metrics()->unregister(this);
}

SimTime TimeAuthority::reference_now() const { return env_.now(); }

void TimeAuthority::on_packet(const runtime::Packet& packet) {
  const auto opened = channel_.open(packet.payload);
  if (!opened) {
    ++stats_.rejected_frames;
    return;
  }
  const auto message = proto::decode(opened->plaintext);
  if (!message || !std::holds_alternative<proto::TaRequest>(*message)) {
    ++stats_.rejected_frames;
    return;
  }
  const auto& request = std::get<proto::TaRequest>(*message);
  if (request.wait > max_wait_) {
    ++stats_.rejected_waits;
    return;
  }

  const NodeId client = opened->sender;
  const std::uint64_t request_id = request.request_id;
  const Duration wait = request.wait;
  ++stats_.requests_served;
  if (env_.tracing()) {
    obs::TraceEvent event;
    event.type = obs::TraceEventType::kTaServe;
    event.node = address_;
    event.peer = client;
    event.span = request.span;  // requester's causal episode
    event.a = static_cast<std::int64_t>(request_id);
    event.x = to_seconds(wait);
    env_.emit(event);
  }

  env_.schedule_after(wait, [this, client, request_id, wait] {
    proto::TaResponse response;
    response.request_id = request_id;
    response.ta_time = reference_now();
    response.requested_wait = wait;
    TRIAD_LOG_DEBUG("triad.ta") << "reply to node " << client << " req "
                          << request_id << " wait " << to_seconds(wait)
                          << "s";
    env_.transport().send(address_, client,
                          channel_.seal(client, proto::encode(response)));
  });
}

}  // namespace triad::ta
