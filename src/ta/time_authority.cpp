#include "ta/time_authority.h"

#include "util/log.h"

namespace triad::ta {

TimeAuthority::TimeAuthority(net::Network& network, NodeId address,
                             const crypto::Keyring& keyring,
                             Duration max_wait)
    : network_(network), address_(address), channel_(address, keyring),
      max_wait_(max_wait) {
  network_.attach(address_,
                  [this](const net::Packet& packet) { on_packet(packet); });
}

TimeAuthority::~TimeAuthority() { network_.detach(address_); }

SimTime TimeAuthority::reference_now() const {
  return network_.simulation().now();
}

void TimeAuthority::on_packet(const net::Packet& packet) {
  const auto opened = channel_.open(packet.payload);
  if (!opened) {
    ++stats_.rejected_frames;
    return;
  }
  const auto message = proto::decode(opened->plaintext);
  if (!message || !std::holds_alternative<proto::TaRequest>(*message)) {
    ++stats_.rejected_frames;
    return;
  }
  const auto& request = std::get<proto::TaRequest>(*message);
  if (request.wait > max_wait_) {
    ++stats_.rejected_waits;
    return;
  }

  const NodeId client = opened->sender;
  const std::uint64_t request_id = request.request_id;
  const Duration wait = request.wait;
  ++stats_.requests_served;

  network_.simulation().schedule_after(wait, [this, client, request_id,
                                              wait] {
    proto::TaResponse response;
    response.request_id = request_id;
    response.ta_time = reference_now();
    response.requested_wait = wait;
    TRIAD_LOG_DEBUG("ta") << "reply to node " << client << " req "
                          << request_id << " wait " << to_seconds(wait)
                          << "s";
    network_.send(address_, client,
                  channel_.seal(client, proto::encode(response)));
  });
}

}  // namespace triad::ta
