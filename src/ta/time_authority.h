// Time Authority: the protocol's root of trust (an NTP-server stand-in).
//
// The TA owns the reference clock. On a request asking for wait time s it
// sleeps s, then replies with its current reference time. Requests are
// authenticated/decrypted through the cluster's secure channels; garbage
// or unauthenticated datagrams are counted and dropped.
#pragma once

#include <cstdint>

#include "crypto/channel.h"
#include "runtime/env.h"
#include "triad/messages.h"
#include "util/types.h"

namespace triad::ta {

struct TimeAuthorityStats {
  std::uint64_t requests_served = 0;
  std::uint64_t rejected_frames = 0;   // auth/replay/malformed failures
  std::uint64_t rejected_waits = 0;    // wait above the allowed maximum
};

class TimeAuthority {
 public:
  /// max_wait bounds the server-side sleep a client may request (defends
  /// the TA against resource-holding; 2 s covers Triad's 0 s/1 s probes).
  TimeAuthority(runtime::Env env, NodeId address,
                const crypto::Keyring& keyring,
                Duration max_wait = seconds(2));
  ~TimeAuthority();
  TimeAuthority(const TimeAuthority&) = delete;
  TimeAuthority& operator=(const TimeAuthority&) = delete;

  [[nodiscard]] NodeId address() const { return address_; }

  /// Reference time. The TA *is* the root of trust, so this is the
  /// environment's reference clock itself.
  [[nodiscard]] SimTime reference_now() const;

  [[nodiscard]] const TimeAuthorityStats& stats() const { return stats_; }

 private:
  void on_packet(const runtime::Packet& packet);

  runtime::Env env_;
  NodeId address_;
  crypto::SecureChannel channel_;
  Duration max_wait_;
  TimeAuthorityStats stats_;
};

}  // namespace triad::ta
