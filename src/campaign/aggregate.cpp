#include "campaign/aggregate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <stdexcept>

namespace triad::campaign {
namespace {

struct BuiltinMetric {
  const char* name;
  double (*get)(const RunResult&);
};

constexpr BuiltinMetric kBuiltins[] = {
    {"availability", [](const RunResult& r) { return r.availability; }},
    {"honest_max_abs_drift_ms",
     [](const RunResult& r) { return r.honest_max_abs_drift_ms; }},
    {"honest_max_jump_ms",
     [](const RunResult& r) { return r.honest_max_jump_ms; }},
    {"victim_final_drift_ms",
     [](const RunResult& r) { return r.victim_final_drift_ms; }},
    {"victim_freq_mhz", [](const RunResult& r) { return r.victim_freq_mhz; }},
    {"peer_untaint_rate",
     [](const RunResult& r) { return r.peer_untaint_rate; }},
    {"adoptions", [](const RunResult& r) { return r.adoptions; }},
    {"ta_requests", [](const RunResult& r) { return r.ta_requests; }},
    {"aex_total", [](const RunResult& r) { return r.aex_total; }},
    {"events_executed",
     [](const RunResult& r) { return r.events_executed; }},
    {"detector_alarms",
     [](const RunResult& r) { return r.detector_alarms; }},
    {"detector_first_alarm_s",
     [](const RunResult& r) { return r.detector_first_alarm_s; }},
    {"detector_false_alarms",
     [](const RunResult& r) { return r.detector_false_alarms; }},
};

/// Fixed float formatting: identical doubles always print identically,
/// which is what makes the reports byte-stable.
std::string fmt(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.9g", v);
  return buffer;
}

double percentile(const std::vector<double>& sorted, double q) {
  const std::size_t n = sorted.size();
  const auto rank = static_cast<std::size_t>(std::ceil(q * n));
  return sorted[std::min(n - 1, rank == 0 ? 0 : rank - 1)];
}

void write_stat_json(std::ostream& out, const Stat& stat) {
  out << "{\"mean\": " << fmt(stat.mean) << ", \"min\": " << fmt(stat.min)
      << ", \"max\": " << fmt(stat.max) << ", \"p50\": " << fmt(stat.p50)
      << ", \"p95\": " << fmt(stat.p95) << ", \"n\": " << stat.n << "}";
}

}  // namespace

const std::vector<std::string>& builtin_metric_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const BuiltinMetric& metric : kBuiltins) {
      out.emplace_back(metric.name);
    }
    return out;
  }();
  return names;
}

Stat Stat::of(std::vector<double> values) {
  Stat stat;
  stat.n = values.size();
  if (values.empty()) return stat;
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (const double v : values) sum += v;
  stat.mean = sum / static_cast<double>(values.size());
  stat.min = values.front();
  stat.max = values.back();
  stat.p50 = percentile(values, 0.50);
  stat.p95 = percentile(values, 0.95);
  return stat;
}

CampaignReport CampaignReport::aggregate(const CampaignSpec& spec,
                                         const CampaignResult& result) {
  if (std::string message = spec.validate(); !message.empty()) {
    throw std::invalid_argument("invalid campaign spec: " + message);
  }
  // Re-expand to recover each cell's axis labels; expansion is
  // deterministic so cell indices line up with the executed runs.
  const std::vector<RunSpec> runs = spec.expand();
  if (runs.size() != result.runs.size()) {
    throw std::invalid_argument("result count does not match spec grid");
  }

  CampaignReport report;
  report.runs = result.runs.size();
  report.failures = result.failures;
  report.cells.resize(spec.cell_count());

  const std::size_t seeds = spec.seeds.size();
  for (std::size_t cell = 0; cell < report.cells.size(); ++cell) {
    CellReport& out = report.cells[cell];
    const RunSpec& first = runs[cell * seeds];
    out.cell = cell;
    out.nodes = first.nodes;
    out.environment = first.environment;
    out.policy = first.policy;
    out.attack = first.attack;
    out.runs = seeds;

    std::vector<const RunResult*> ok;
    ok.reserve(seeds);
    for (std::size_t s = 0; s < seeds; ++s) {
      const RunResult& run = result.runs[cell * seeds + s];
      if (run.failed) {
        ++out.failures;
      } else {
        ok.push_back(&run);
      }
    }

    for (const BuiltinMetric& metric : kBuiltins) {
      std::vector<double> values;
      values.reserve(ok.size());
      for (const RunResult* run : ok) values.push_back(metric.get(*run));
      out.metrics.push_back({metric.name, Stat::of(std::move(values))});
    }
    // Extras: union of keys over the cell's runs, sorted for stable
    // report order (std::map iterates in key order).
    std::map<std::string, std::vector<double>> extras;
    for (const RunResult* run : ok) {
      for (const auto& [key, value] : run->extra) {
        extras[key].push_back(value);
      }
    }
    for (auto& [key, values] : extras) {
      out.metrics.push_back({key, Stat::of(std::move(values))});
    }
  }
  return report;
}

void CampaignReport::write_json(std::ostream& out) const {
  out << "{\n  \"runs\": " << runs << ",\n  \"failures\": " << failures
      << ",\n  \"cells\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellReport& cell = cells[i];
    out << (i == 0 ? "" : ",") << "\n    {\n"
        << "      \"cell\": " << cell.cell << ",\n"
        << "      \"nodes\": " << cell.nodes << ",\n"
        << "      \"environment\": \"" << cell.environment << "\",\n"
        << "      \"policy\": \"" << cell.policy << "\",\n"
        << "      \"attack\": \"" << cell.attack << "\",\n"
        << "      \"runs\": " << cell.runs << ",\n"
        << "      \"failures\": " << cell.failures << ",\n"
        << "      \"metrics\": {";
    for (std::size_t m = 0; m < cell.metrics.size(); ++m) {
      out << (m == 0 ? "" : ",") << "\n        \"" << cell.metrics[m].name
          << "\": ";
      write_stat_json(out, cell.metrics[m].stat);
    }
    out << "\n      }\n    }";
  }
  out << "\n  ]\n}\n";
}

CampaignTiming CampaignTiming::of(const CampaignResult& result) {
  CampaignTiming timing;
  std::map<std::size_t, std::pair<std::vector<double>, std::vector<double>>>
      by_cell;
  std::vector<double> all_wall;
  std::vector<double> all_queue;
  for (const RunResult& run : result.runs) {
    if (run.failed) continue;
    by_cell[run.cell].first.push_back(run.wall_ms);
    by_cell[run.cell].second.push_back(run.queue_ms);
    all_wall.push_back(run.wall_ms);
    all_queue.push_back(run.queue_ms);
  }
  for (auto& [cell, values] : by_cell) {
    CellTiming cell_timing;
    cell_timing.cell = cell;
    cell_timing.wall_ms = Stat::of(std::move(values.first));
    cell_timing.queue_ms = Stat::of(std::move(values.second));
    timing.cells.push_back(std::move(cell_timing));
  }
  timing.wall_ms = Stat::of(std::move(all_wall));
  timing.queue_ms = Stat::of(std::move(all_queue));
  return timing;
}

void CampaignTiming::write_summary(std::ostream& out) const {
  char line[160];
  std::snprintf(line, sizeof line, "%6s %6s %12s %12s %12s %12s\n", "cell",
                "n", "wall_mean", "wall_p95", "queue_mean", "queue_p95");
  out << line;
  for (const CellTiming& cell : cells) {
    std::snprintf(line, sizeof line, "%6zu %6zu %12.1f %12.1f %12.1f %12.1f\n",
                  cell.cell, cell.wall_ms.n, cell.wall_ms.mean,
                  cell.wall_ms.p95, cell.queue_ms.mean, cell.queue_ms.p95);
    out << line;
  }
  std::snprintf(line, sizeof line,
                "all cells: wall mean %.1f ms p95 %.1f ms, queue mean %.1f "
                "ms p95 %.1f ms (n=%zu)\n",
                wall_ms.mean, wall_ms.p95, queue_ms.mean, queue_ms.p95,
                wall_ms.n);
  out << line;
}

void CampaignReport::write_csv(std::ostream& out) const {
  out << "cell,nodes,environment,policy,attack,runs,failures";
  // All cells share the built-in metric set; extras may differ, so the
  // header uses the first cell's metric list (uniform for grid sweeps,
  // where every cell runs the same inspect hook).
  const std::vector<MetricStat>* header =
      cells.empty() ? nullptr : &cells.front().metrics;
  if (header != nullptr) {
    for (const MetricStat& metric : *header) {
      for (const char* suffix : {"mean", "min", "max", "p50", "p95"}) {
        out << ',' << metric.name << '_' << suffix;
      }
    }
  }
  out << '\n';
  for (const CellReport& cell : cells) {
    out << cell.cell << ',' << cell.nodes << ',' << cell.environment << ','
        << cell.policy << ',' << cell.attack << ',' << cell.runs << ','
        << cell.failures;
    for (const MetricStat& metric : cell.metrics) {
      out << ',' << fmt(metric.stat.mean) << ',' << fmt(metric.stat.min)
          << ',' << fmt(metric.stat.max) << ',' << fmt(metric.stat.p50)
          << ',' << fmt(metric.stat.p95);
    }
    out << '\n';
  }
}

}  // namespace triad::campaign
