#include "campaign/cli.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "campaign/aggregate.h"
#include "campaign/runner.h"
#include "exp/cli.h"
#include "obs/prof.h"

namespace triad::campaign {
namespace {

std::vector<std::string> split_csv(std::string_view text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string_view item = text.substr(
        start, comma == std::string_view::npos ? text.size() - start
                                               : comma - start);
    if (!item.empty()) items.emplace_back(item);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return items;
}

}  // namespace

std::string campaign_cli_usage() {
  return
      "triad_campaign — run a grid of Triad scenarios and aggregate them\n"
      "  --spec FILE        key=value spec file (see below); flags given\n"
      "                     after --spec override its values\n"
      "  --seeds LIST       seed axis; items are N or A..B ranges,\n"
      "                     e.g. 1..32 or 1,2,7 (default 1)\n"
      "  --attack LIST      none | fplus | fminus (default none)\n"
      "  --policy LIST      original | triadplus (default original)\n"
      "  --env LIST         cluster-wide AEX env: triad | low | none\n"
      "                     (default triad)\n"
      "  --nodes LIST       cluster sizes, e.g. 3 or 1,3,5,7 (default 3)\n"
      "  --duration D       virtual time per run (default 2m)\n"
      "  --attack-delay D   injected delay (default 100ms)\n"
      "  --victim N         1-based attacked node; 0 = last (default 0)\n"
      "  --no-machine-interrupts   disable correlated residual interrupts\n"
      "  --jobs N           worker threads (default 1)\n"
      "  --json PATH        aggregate JSON report ('-' = stdout)\n"
      "  --csv PATH         aggregate CSV report ('-' = stdout)\n"
      "  --metrics-dir DIR  per-run Prometheus dumps (run_<i>.prom) plus\n"
      "                     an index.json grid manifest\n"
      "  --prof PATH        merged profiler scope table ('-' = stdout)\n"
      "  --prof-trace PATH  profiler Chrome trace JSON ('-' = stdout)\n"
      "  --prof-normalize   zero profiler durations (deterministic tree)\n"
      "  --verbose          per-run progress on stderr\n"
      "  --help             this text\n"
      "\n"
      "Spec file keys: seeds, attacks, policies, environments, nodes,\n"
      "duration, attack_delay, victim, machine_interrupts (on|off).\n"
      "Example:\n"
      "  seeds = 1..32\n"
      "  attacks = none, fminus\n"
      "  duration = 5m\n";
}

std::optional<CampaignCliOptions> parse_campaign_cli(int argc,
                                                     const char* const* argv,
                                                     std::string* error) {
  CampaignCliOptions options;
  auto fail = [error](std::string message) -> std::optional<CampaignCliOptions> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> std::optional<std::string_view> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string_view(argv[++i]);
    };

    if (arg == "--help" || arg == "-h") {
      options.help = true;
      return options;
    }
    if (arg == "--no-machine-interrupts") {
      options.spec.machine_interrupts = false;
      continue;
    }
    if (arg == "--verbose") {
      options.verbose = true;
      continue;
    }
    if (arg == "--prof-normalize") {
      options.prof_normalize = true;
      continue;
    }
    static constexpr std::string_view kValueFlags[] = {
        "--spec",   "--seeds",        "--attack", "--policy",
        "--env",    "--nodes",        "--duration", "--attack-delay",
        "--victim", "--jobs",         "--json",   "--csv",
        "--metrics-dir", "--prof", "--prof-trace"};
    const bool known =
        std::find(std::begin(kValueFlags), std::end(kValueFlags), arg) !=
        std::end(kValueFlags);
    if (!known) return fail("unknown flag " + std::string(arg));

    const auto v = value();
    if (!v) return fail("missing value for " + std::string(arg));

    if (arg == "--spec") {
      std::string spec_error;
      // Scalars already set by earlier flags are overwritten by the
      // file — documented: put --spec first, overrides after.
      auto spec = parse_spec_file(std::string(*v), &spec_error);
      if (!spec) return fail(std::move(spec_error));
      options.spec = std::move(*spec);
    } else if (arg == "--seeds") {
      options.spec.seeds.clear();
      for (const std::string& item : split_csv(*v)) {
        std::uint64_t lo = 0, hi = 0;
        if (!exp::parse_seed_range(item, &lo, &hi)) {
          return fail("bad --seeds (use N, A..B, or a comma list)");
        }
        for (std::uint64_t s = lo; s <= hi; ++s) {
          options.spec.seeds.push_back(s);
        }
      }
      if (options.spec.seeds.empty()) return fail("bad --seeds (empty)");
    } else if (arg == "--attack") {
      options.spec.attacks = split_csv(*v);
    } else if (arg == "--policy") {
      options.spec.policies = split_csv(*v);
    } else if (arg == "--env") {
      options.spec.environments = split_csv(*v);
    } else if (arg == "--nodes") {
      options.spec.node_counts.clear();
      for (const std::string& item : split_csv(*v)) {
        std::uint64_t n = 0;
        if (!exp::parse_u64(item, &n) || n == 0) {
          return fail("bad --nodes");
        }
        options.spec.node_counts.push_back(n);
      }
      if (options.spec.node_counts.empty()) return fail("bad --nodes");
    } else if (arg == "--duration") {
      if (!exp::parse_duration(*v, &options.spec.duration) ||
          options.spec.duration <= 0) {
        return fail("bad --duration (use e.g. 90s, 30m, 8h)");
      }
    } else if (arg == "--attack-delay") {
      if (!exp::parse_duration(*v, &options.spec.attack_delay)) {
        return fail("bad --attack-delay");
      }
    } else if (arg == "--victim") {
      std::uint64_t n = 0;
      if (!exp::parse_u64(*v, &n)) return fail("bad --victim");
      options.spec.victim = n;
    } else if (arg == "--jobs") {
      std::uint64_t n = 0;
      if (!exp::parse_u64(*v, &n) || n == 0) return fail("bad --jobs");
      options.jobs = n;
    } else if (arg == "--json") {
      options.json_path = std::string(*v);
    } else if (arg == "--csv") {
      options.csv_path = std::string(*v);
    } else if (arg == "--metrics-dir") {
      options.metrics_dir = std::string(*v);
    } else if (arg == "--prof") {
      options.prof_path = std::string(*v);
    } else if (arg == "--prof-trace") {
      options.prof_trace_path = std::string(*v);
    }
  }

  if (std::string message = options.spec.validate(); !message.empty()) {
    return fail(std::move(message));
  }
  int stdout_targets = 0;
  for (const auto& path : {options.json_path, options.csv_path,
                           options.prof_path, options.prof_trace_path}) {
    if (path && *path == "-") ++stdout_targets;
  }
  if (stdout_targets > 1) {
    return fail("at most one of --json/--csv/--prof/--prof-trace may be '-'");
  }
  return options;
}

int run_campaign_cli(const CampaignCliOptions& options, std::ostream& out,
                     std::ostream& err) {
  if (options.help) {
    out << campaign_cli_usage();
    return 0;
  }

  CampaignCliOptions resolved = options;
  if (!resolved.json_path && !resolved.csv_path) resolved.json_path = "-";
  const auto targets_stdout = [](const std::optional<std::string>& path) {
    return path && *path == "-";
  };
  const bool machine_on_stdout =
      targets_stdout(resolved.json_path) || targets_stdout(resolved.csv_path) ||
      targets_stdout(resolved.prof_path) ||
      targets_stdout(resolved.prof_trace_path);
  std::ostream& summary = machine_on_stdout ? err : out;

  const bool profiling = resolved.prof_path || resolved.prof_trace_path;
  if (profiling) {
    obs::Profiler::instance().reset();
    obs::Profiler::instance().set_enabled(true);
  }

  const std::size_t total = resolved.spec.run_count();
  RunnerOptions runner_options;
  runner_options.jobs = resolved.jobs;
  runner_options.run.metrics_dir = resolved.metrics_dir;
  std::size_t done = 0;
  if (resolved.verbose) {
    runner_options.on_complete = [&err, &done, total](const RunResult& run) {
      err << "[" << ++done << "/" << total << "] run " << run.index
          << " seed=" << run.seed
          << (run.failed ? " FAILED: " + run.error : " ok") << " ("
          << run.wall_ms << " ms)\n";
    };
  }

  CampaignRunner runner(std::move(runner_options));
  const CampaignResult result = runner.run(resolved.spec);
  // Workers have joined: the profiler is quiescent, safe to merge.
  obs::ProfTree prof_tree;
  if (profiling) {
    obs::Profiler::instance().set_enabled(false);
    prof_tree = obs::Profiler::instance().merge();
  }
  const CampaignReport report =
      CampaignReport::aggregate(resolved.spec, result);

  summary << "campaign: cells=" << resolved.spec.cell_count()
          << " runs=" << result.runs.size() << " failures="
          << result.failures << " jobs=" << resolved.jobs << " wall="
          << result.wall_ms / 1000.0 << "s\n";
  // Wall/queue timing is real time: summary stream only, never in the
  // byte-stable reports.
  CampaignTiming::of(result).write_summary(summary);

  const auto write_output = [&](const std::string& path, const char* what,
                                auto&& writer) -> bool {
    if (path == "-") {
      writer(out);
      return true;
    }
    std::ofstream file(path);
    if (!file) {
      summary << "error: cannot open " << path << "\n";
      return false;
    }
    writer(file);
    summary << what << " written to " << path << "\n";
    return true;
  };

  if (resolved.json_path &&
      !write_output(*resolved.json_path, "json report",
                    [&](std::ostream& os) { report.write_json(os); })) {
    return 1;
  }
  if (resolved.csv_path &&
      !write_output(*resolved.csv_path, "csv report",
                    [&](std::ostream& os) { report.write_csv(os); })) {
    return 1;
  }
  if (resolved.prof_path &&
      !write_output(*resolved.prof_path, "profile", [&](std::ostream& os) {
        obs::Profiler::write_text(prof_tree, os, resolved.prof_normalize);
      })) {
    return 1;
  }
  if (resolved.prof_trace_path &&
      !write_output(
          *resolved.prof_trace_path, "profile trace", [&](std::ostream& os) {
            obs::Profiler::write_chrome_trace(prof_tree, os,
                                              resolved.prof_normalize);
          })) {
    return 1;
  }
  return result.failures == 0 ? 0 : 1;
}

}  // namespace triad::campaign
