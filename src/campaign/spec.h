// Campaign specification: a declarative grid of scenario runs.
//
// The paper's empirical results (Figs. 2-6, the cluster-size and WAN
// tables) are grids of scenario executions — seeds x attack x policy x
// AEX environment x cluster size. A CampaignSpec names each axis once;
// expand() flattens the cartesian product into RunSpecs in a fixed
// deterministic order:
//
//   cell  = (nodes, environment, policy, attack)   [nodes outermost]
//   run   = cell x seed                            [seeds innermost]
//   index = cell_index * seeds.size() + seed_ordinal
//
// The seed axis is the replication dimension: the Aggregator folds all
// seeds of one cell into cross-run statistics keyed by cell index, so
// the aggregate report order never depends on worker count or
// completion order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace triad::campaign {

/// One fully-resolved run: a point in the campaign grid.
struct RunSpec {
  std::size_t index = 0;  // flattened grid index (see header comment)
  std::size_t cell = 0;   // index / seeds-per-cell

  // Cell axes.
  std::size_t nodes = 3;
  std::string environment = "triad";  // "triad" | "low" | "none"
  std::string policy = "original";    // "original" | "triadplus"
  std::string attack = "none";        // "none" | "fplus" | "fminus"

  // Replication axis.
  std::uint64_t seed = 1;

  // Shared scalars (not swept).
  Duration duration = minutes(2);
  Duration attack_delay = milliseconds(100);
  std::size_t victim = 0;  // 1-based; 0 = last node of the cluster
  bool machine_interrupts = true;

  /// 0-based index of the attacked node after resolving victim = 0.
  [[nodiscard]] std::size_t victim_index() const {
    return victim == 0 ? nodes - 1 : victim - 1;
  }
};

/// The declarative sweep. Every axis must be non-empty; single-valued
/// axes are how a campaign pins a dimension.
struct CampaignSpec {
  std::vector<std::uint64_t> seeds{1};
  std::vector<std::string> attacks{"none"};
  std::vector<std::string> policies{"original"};
  std::vector<std::string> environments{"triad"};
  std::vector<std::size_t> node_counts{3};

  Duration duration = minutes(2);
  Duration attack_delay = milliseconds(100);
  std::size_t victim = 0;  // 1-based; 0 = last node
  bool machine_interrupts = true;

  [[nodiscard]] std::size_t cell_count() const;
  [[nodiscard]] std::size_t run_count() const;

  /// Empty string when the spec is well-formed, else a message naming
  /// the offending axis/value.
  [[nodiscard]] std::string validate() const;

  /// Flattens the grid (see header comment for the order). Requires
  /// validate().empty().
  [[nodiscard]] std::vector<RunSpec> expand() const;
};

/// Parses a "key = value" spec (one pair per line, '#' comments, blank
/// lines ignored). Lists are comma-separated; the seeds value also
/// accepts "A..B" inclusive ranges, e.g. "seeds = 1..32". Keys:
///   seeds, attacks, policies, environments, nodes,
///   duration, attack_delay, victim, machine_interrupts (on|off)
/// Unknown keys are an error. On failure returns nullopt and writes a
/// message to `error`.
std::optional<CampaignSpec> parse_spec(std::string_view text,
                                       std::string* error);

/// parse_spec over the contents of `path`.
std::optional<CampaignSpec> parse_spec_file(const std::string& path,
                                            std::string* error);

}  // namespace triad::campaign
