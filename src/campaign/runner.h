// Campaign execution: a fixed-size worker pool running one simulation
// per grid point.
//
// Each run is hermetic: the worker constructs a private exp::Scenario
// (its own SimEnv, obs::Registry, trace ring, and root Rng) from the
// RunSpec, runs it to the configured virtual duration, and reduces the
// recorded series into a RunResult of deterministic scalars. Simulations
// are single-threaded and share no mutable state, so the sweep is
// embarrassingly parallel; results land in a slot indexed by
// RunSpec::index, which makes the result vector — and everything the
// Aggregator derives from it — independent of worker count and
// completion order.
//
// Determinism rules (also see DESIGN.md §2.3):
//   * one obs::Registry and one root Rng per run, never shared;
//   * workers must not touch process-global state (in particular no
//     ScopedLogTime — the Logger's time source is process-wide);
//   * RunResult carries virtual-time-derived values only, except
//     wall_ms, which is real time and excluded from aggregate reports.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/spec.h"

namespace triad::exp {
class Scenario;
class Recorder;
struct ScenarioConfig;
}  // namespace triad::exp

namespace triad::campaign {

/// Deterministic scalar summary of one run (the Aggregator's input).
struct RunResult {
  std::size_t index = 0;
  std::size_t cell = 0;
  std::uint64_t seed = 0;
  bool failed = false;
  std::string error;  // non-empty iff failed

  /// Mean availability over all nodes, in [0, 1].
  double availability = 0.0;
  /// Max |drift| (ms) any honest node shows at any sample. Honest =
  /// every node except the victim when an attack is active, else all.
  double honest_max_abs_drift_ms = 0.0;
  /// Largest forward clock jump (ms) an honest node takes from a *peer*
  /// (TA adoptions are ground truth and excluded) — the F- infection
  /// magnitude of Fig. 6.
  double honest_max_jump_ms = 0.0;
  /// Victim-node drift (ms) at the last sample.
  double victim_final_drift_ms = 0.0;
  /// Victim's calibrated TSC frequency (MHz); ~2610 under the paper F-.
  double victim_freq_mhz = 0.0;
  /// Share of peer untaint rounds that avoided a TA fallback, in [0, 1].
  double peer_untaint_rate = 0.0;
  double adoptions = 0.0;
  double ta_requests = 0.0;
  double aex_total = 0.0;
  double events_executed = 0.0;

  /// Online detector verdicts (obs/detect.h; detectors run in every
  /// campaign scenario). Alarm count, virtual time of the first alarm
  /// (-1 when none fired), and false positives — alarms implicating a
  /// node other than the victim, or any alarm in an attack-free run.
  double detector_alarms = 0.0;
  double detector_first_alarm_s = -1.0;
  double detector_false_alarms = 0.0;

  /// Named bench-specific values captured by RunOptions::inspect;
  /// aggregated per key (sorted) alongside the built-in metrics.
  std::vector<std::pair<std::string, double>> extra;

  /// Real execution time. Never part of the aggregate report (it would
  /// break byte-identical output across job counts).
  double wall_ms = 0.0;
  /// Real time this run waited from campaign start until a worker
  /// picked it up. Same rule as wall_ms: summary display only.
  double queue_ms = 0.0;
};

/// Hooks and knobs for executing one RunSpec.
struct RunOptions {
  /// Recorder sampling period inside each run.
  Duration sample_period = seconds(1);
  /// Mutates the derived ScenarioConfig before the Scenario is built
  /// (e.g. per-node environments, WAN placement, attested keys).
  std::function<void(const RunSpec&, exp::ScenarioConfig&)> configure;
  /// Runs after construction, before start(): install extra attacks,
  /// environment switches, scheduled events.
  std::function<void(const RunSpec&, exp::Scenario&)> customize;
  /// Runs after the simulation finished, before teardown: read series /
  /// nodes and record bench-specific numbers into RunResult::extra.
  /// Called from worker threads — synchronize any captured state.
  std::function<void(const RunSpec&, exp::Scenario&, const exp::Recorder&,
                     RunResult&)>
      inspect;
  /// When non-empty, each run dumps its final metrics registry as
  /// Prometheus text to <metrics_dir>/run_<index>.prom and its protocol
  /// trace as JSON Lines to <metrics_dir>/run_<index>.jsonl (readable by
  /// the triad_trace forensic CLI).
  std::string metrics_dir;
  /// Ring capacity for the per-run trace dumps above.
  std::size_t trace_capacity = std::size_t{1} << 18;
};

/// Builds, runs, and reduces one scenario. Throws on invalid specs or
/// scenario failures; CampaignRunner turns throws into failed results.
RunResult execute_run(const RunSpec& spec, const RunOptions& options = {});

struct RunnerOptions {
  /// Worker threads (>= 1). jobs == 1 runs inline on the caller thread.
  std::size_t jobs = 1;
  RunOptions run;
  /// Replaces execute_run (tests: fault injection, stub runs).
  std::function<RunResult(const RunSpec&)> run_fn;
  /// Progress callback, invoked serially (under an internal mutex) as
  /// runs finish — completion order, not grid order.
  std::function<void(const RunResult&)> on_complete;
};

struct CampaignResult {
  std::vector<RunResult> runs;  // ordered by RunSpec::index
  std::size_t failures = 0;
  double wall_ms = 0.0;  // whole-campaign real time
};

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions options = {});

  /// Expands and executes the whole spec. Requires validate().empty().
  CampaignResult run(const CampaignSpec& spec);
  /// Executes an explicit run list (entries keep their index/cell).
  CampaignResult run(const std::vector<RunSpec>& runs);

 private:
  /// Writes <metrics_dir>/index.json: every run's grid coordinates and
  /// which per-run artifacts (run_<i>.prom / .jsonl) exist, in grid
  /// order, so forensic tooling can locate a cell without re-deriving
  /// the grid. Skipped when run_fn substitutes execute_run (stub runs
  /// dump no artifacts).
  void write_metrics_index(const std::vector<RunSpec>& runs,
                           const CampaignResult& result) const;

  RunnerOptions options_;
};

}  // namespace triad::campaign
