// Command-line campaign runner (backs the `triad_campaign` tool).
//
// Builds a CampaignSpec from flags and/or a key=value spec file, runs
// the sweep on a worker pool, and writes the deterministic aggregate
// report (JSON and/or CSV). Kept in the library so the parser and
// runner are unit-testable.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "campaign/spec.h"

namespace triad::campaign {

struct CampaignCliOptions {
  CampaignSpec spec;
  std::size_t jobs = 1;
  /// Aggregate report paths ("-" = stdout; at most one may be stdout).
  /// With neither given, the JSON report goes to stdout.
  std::optional<std::string> json_path;
  std::optional<std::string> csv_path;
  /// Per-run Prometheus dumps land in this directory when set.
  std::string metrics_dir;
  /// Profiler outputs (see obs/prof.h). prof_path gets the text table,
  /// prof_trace_path the Chrome trace JSON; either may be "-" (counted
  /// against the one-stdout-target rule). prof_normalize zeroes every
  /// duration so the scope tree byte-compares across runs/job counts.
  std::optional<std::string> prof_path;
  std::optional<std::string> prof_trace_path;
  bool prof_normalize = false;
  /// Per-run progress lines on the error stream.
  bool verbose = false;
  bool help = false;
};

/// Parses argv (a --spec file loads first, explicit flags override it).
/// On error returns nullopt and writes a message to `error`.
std::optional<CampaignCliOptions> parse_campaign_cli(int argc,
                                                     const char* const* argv,
                                                     std::string* error);

std::string campaign_cli_usage();

/// Runs the campaign. Report output targeting stdout goes to `out`; the
/// human summary then moves to `err` (mirroring triad_sim's stream
/// rules). Returns a process exit code; a completed campaign with
/// failed runs exits 1.
int run_campaign_cli(const CampaignCliOptions& options, std::ostream& out,
                     std::ostream& err);

}  // namespace triad::campaign
