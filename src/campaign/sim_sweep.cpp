#include "campaign/sim_sweep.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "campaign/aggregate.h"
#include "campaign/runner.h"
#include "exp/scenario.h"
#include "obs/prof.h"

namespace triad::campaign {
namespace {

exp::AexEnvironment parse_environment(const std::string& text) {
  if (text == "triad") return exp::AexEnvironment::kTriadLike;
  if (text == "low") return exp::AexEnvironment::kLowAex;
  if (text == "none") return exp::AexEnvironment::kNone;
  throw std::invalid_argument("bad environment '" + text + "'");
}

}  // namespace

int run_sim_sweep(const exp::CliOptions& options, std::ostream& out,
                  std::ostream& err) {
  CampaignSpec spec;
  spec.seeds = exp::sweep_seeds(options);
  spec.attacks = {options.attack};
  spec.policies = {options.policy};
  spec.node_counts = {options.nodes};
  spec.duration = options.duration;
  spec.attack_delay = options.attack_delay;
  spec.victim = options.victim;
  spec.machine_interrupts = options.machine_interrupts;

  RunnerOptions runner_options;
  runner_options.jobs = options.jobs;
  // execute_run covers attack/policy/uniform environments; the
  // remaining triad_sim knobs apply identically to every seed here.
  runner_options.run.configure = [&options](const RunSpec&,
                                            exp::ScenarioConfig& cfg) {
    cfg.environments.clear();
    for (const std::string& env : options.environments) {
      cfg.environments.push_back(parse_environment(env));
    }
    cfg.machine_of = options.machines;
    cfg.wan_base_delay = options.wan_delay;
    cfg.wan_jitter = std::max<Duration>(options.wan_delay / 10, 1);
    cfg.attested_keys = options.attested;
  };

  std::ostream& summary = err;

  const bool profiling = options.prof_path || options.prof_trace_path;
  if (profiling) {
    obs::Profiler::instance().reset();
    obs::Profiler::instance().set_enabled(true);
  }
  CampaignRunner runner(std::move(runner_options));
  const CampaignResult result = runner.run(spec);
  obs::ProfTree prof_tree;
  if (profiling) {
    // Workers joined inside run(): quiescent, safe to merge.
    obs::Profiler::instance().set_enabled(false);
    prof_tree = obs::Profiler::instance().merge();
  }
  const CampaignReport report = CampaignReport::aggregate(spec, result);

  summary << "sweep: seeds=" << spec.seeds.front() << ".."
          << spec.seeds.back() << " runs=" << result.runs.size()
          << " failures=" << result.failures << " jobs=" << options.jobs
          << " attack=" << options.attack << " policy=" << options.policy
          << " wall=" << result.wall_ms / 1000.0 << "s\n";
  CampaignTiming::of(result).write_summary(summary);
  // In sweep mode --csv selects the *aggregate* CSV report (there is no
  // single recorded series). '-' replaces the stdout JSON; a file path
  // gets the CSV alongside the JSON on stdout.
  if (options.csv_path && *options.csv_path == "-") {
    report.write_csv(out);
  } else {
    if (options.csv_path) {
      std::ofstream file(*options.csv_path);
      if (!file) {
        summary << "error: cannot open " << *options.csv_path << "\n";
        return 1;
      }
      report.write_csv(file);
      summary << "csv report written to " << *options.csv_path << "\n";
    }
    report.write_json(out);
  }
  const auto write_prof = [&](const std::optional<std::string>& path,
                              const char* what, auto&& writer) -> bool {
    if (!path) return true;
    if (*path == "-") {
      // Aggregate JSON owns stdout in sweep mode; '-' would interleave.
      summary << "error: " << what << " cannot target stdout in a sweep\n";
      return false;
    }
    std::ofstream file(*path);
    if (!file) {
      summary << "error: cannot open " << *path << "\n";
      return false;
    }
    writer(file);
    summary << what << " written to " << *path << "\n";
    return true;
  };
  if (!write_prof(options.prof_path, "profile", [&](std::ostream& os) {
        obs::Profiler::write_text(prof_tree, os, options.prof_normalize);
      })) {
    return 1;
  }
  if (!write_prof(options.prof_trace_path, "profile trace",
                  [&](std::ostream& os) {
                    obs::Profiler::write_chrome_trace(prof_tree, os,
                                                      options.prof_normalize);
                  })) {
    return 1;
  }
  return result.failures == 0 ? 0 : 1;
}

}  // namespace triad::campaign
