// Deterministic cross-run aggregation.
//
// Folds the RunResults of a campaign into per-cell statistics (one cell
// = one combination of the non-seed axes; the seed axis is the sample
// dimension). Cells appear in grid order and every float is printed
// with fixed formatting, so the JSON/CSV reports are byte-identical for
// a given spec no matter how many workers executed it or in which order
// runs completed. Failed runs are excluded from the statistics and
// surface as per-cell / campaign failure counts instead.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/runner.h"
#include "campaign/spec.h"

namespace triad::campaign {

/// Order statistics over the non-failed runs of one cell.
/// Percentiles use the nearest-rank method on the sorted sample.
struct Stat {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  std::size_t n = 0;  // samples (non-failed runs)

  static Stat of(std::vector<double> values);
};

struct MetricStat {
  std::string name;
  Stat stat;
};

struct CellReport {
  std::size_t cell = 0;
  std::size_t nodes = 0;
  std::string environment;
  std::string policy;
  std::string attack;
  std::size_t runs = 0;
  std::size_t failures = 0;
  /// Built-in metrics in fixed order, then RunResult::extra keys in
  /// sorted order (a key missing from some runs aggregates over the
  /// runs that have it).
  std::vector<MetricStat> metrics;
};

struct CampaignReport {
  std::vector<CellReport> cells;  // grid (cell-index) order
  std::size_t runs = 0;
  std::size_t failures = 0;

  /// Groups `result` by cell. The spec provides the axis labels; it
  /// must be the spec the runs were expanded from.
  static CampaignReport aggregate(const CampaignSpec& spec,
                                  const CampaignResult& result);

  /// Single JSON object, 2-space indented, "%.9g" floats.
  void write_json(std::ostream& out) const;
  /// One row per cell; stat columns are <metric>_mean/min/max/p50/p95.
  void write_csv(std::ostream& out) const;
};

/// The names of the built-in RunResult metrics, in report order.
const std::vector<std::string>& builtin_metric_names();

/// Per-cell wall-clock timing: how long runs took (wall_ms) and how
/// long they queued before a worker picked them up (queue_ms).
///
/// Real time, so by the determinism contract it NEVER enters
/// write_json/write_csv — it renders only on the human summary stream
/// (triad_campaign stderr summary, bench_campaign_scaling stdout).
struct CellTiming {
  std::size_t cell = 0;
  Stat wall_ms;
  Stat queue_ms;
};

struct CampaignTiming {
  std::vector<CellTiming> cells;  // grid (cell-index) order
  Stat wall_ms;                   // across every non-failed run
  Stat queue_ms;

  static CampaignTiming of(const CampaignResult& result);

  /// Human-readable per-cell table plus campaign totals.
  void write_summary(std::ostream& out) const;
};

}  // namespace triad::campaign
