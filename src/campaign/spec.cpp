#include "campaign/spec.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "exp/cli.h"

namespace triad::campaign {
namespace {

bool is_one_of(const std::string& value,
               std::initializer_list<std::string_view> allowed) {
  return std::find(allowed.begin(), allowed.end(), value) != allowed.end();
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Splits a comma-separated list into trimmed, non-empty items.
std::vector<std::string> split_list(std::string_view text) {
  std::vector<std::string> items;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    const std::string_view item =
        trim(comma == std::string_view::npos ? text : text.substr(0, comma));
    if (!item.empty()) items.emplace_back(item);
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
  }
  return items;
}

}  // namespace

std::size_t CampaignSpec::cell_count() const {
  return node_counts.size() * environments.size() * policies.size() *
         attacks.size();
}

std::size_t CampaignSpec::run_count() const {
  return cell_count() * seeds.size();
}

std::string CampaignSpec::validate() const {
  if (seeds.empty()) return "spec has no seeds";
  if (attacks.empty()) return "spec has no attacks";
  if (policies.empty()) return "spec has no policies";
  if (environments.empty()) return "spec has no environments";
  if (node_counts.empty()) return "spec has no node counts";
  for (const std::string& a : attacks) {
    if (!is_one_of(a, {"none", "fplus", "fminus"})) {
      return "bad attack '" + a + "' (none|fplus|fminus)";
    }
  }
  for (const std::string& p : policies) {
    if (!is_one_of(p, {"original", "triadplus"})) {
      return "bad policy '" + p + "' (original|triadplus)";
    }
  }
  for (const std::string& e : environments) {
    if (!is_one_of(e, {"triad", "low", "none"})) {
      return "bad environment '" + e + "' (triad|low|none)";
    }
  }
  for (const std::size_t n : node_counts) {
    if (n == 0) return "bad node count 0";
    if (victim > n) {
      return "victim " + std::to_string(victim) + " exceeds cluster size " +
             std::to_string(n);
    }
  }
  if (duration <= 0) return "bad duration";
  return {};
}

std::vector<RunSpec> CampaignSpec::expand() const {
  std::vector<RunSpec> runs;
  runs.reserve(run_count());
  std::size_t cell = 0;
  for (const std::size_t nodes : node_counts) {
    for (const std::string& environment : environments) {
      for (const std::string& policy : policies) {
        for (const std::string& attack : attacks) {
          for (const std::uint64_t seed : seeds) {
            RunSpec run;
            run.index = runs.size();
            run.cell = cell;
            run.nodes = nodes;
            run.environment = environment;
            run.policy = policy;
            run.attack = attack;
            run.seed = seed;
            run.duration = duration;
            run.attack_delay = attack_delay;
            run.victim = victim;
            run.machine_interrupts = machine_interrupts;
            runs.push_back(std::move(run));
          }
          ++cell;
        }
      }
    }
  }
  return runs;
}

std::optional<CampaignSpec> parse_spec(std::string_view text,
                                       std::string* error) {
  CampaignSpec spec;
  auto fail = [error](std::string message) -> std::optional<CampaignSpec> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t newline = text.find('\n');
    std::string_view line =
        newline == std::string_view::npos ? text : text.substr(0, newline);
    text.remove_prefix(newline == std::string_view::npos ? text.size()
                                                         : newline + 1);
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return fail("spec line " + std::to_string(line_no) +
                  ": expected key = value");
    }
    const std::string key{trim(line.substr(0, eq))};
    const std::string_view value = trim(line.substr(eq + 1));
    auto bad = [&](std::string_view what) {
      return "spec line " + std::to_string(line_no) + ": bad " +
             std::string(what) + " '" + std::string(value) + "'";
    };

    if (key == "seeds") {
      spec.seeds.clear();
      for (const std::string& item : split_list(value)) {
        std::uint64_t lo = 0, hi = 0;
        if (!exp::parse_seed_range(item, &lo, &hi)) return fail(bad("seeds"));
        for (std::uint64_t s = lo; s <= hi; ++s) spec.seeds.push_back(s);
      }
      if (spec.seeds.empty()) return fail(bad("seeds"));
    } else if (key == "attacks") {
      spec.attacks = split_list(value);
    } else if (key == "policies") {
      spec.policies = split_list(value);
    } else if (key == "environments") {
      spec.environments = split_list(value);
    } else if (key == "nodes") {
      spec.node_counts.clear();
      for (const std::string& item : split_list(value)) {
        std::uint64_t n = 0;
        if (!exp::parse_u64(item, &n) || n == 0) return fail(bad("nodes"));
        spec.node_counts.push_back(n);
      }
      if (spec.node_counts.empty()) return fail(bad("nodes"));
    } else if (key == "duration") {
      if (!exp::parse_duration(value, &spec.duration) || spec.duration <= 0) {
        return fail(bad("duration"));
      }
    } else if (key == "attack_delay") {
      if (!exp::parse_duration(value, &spec.attack_delay)) {
        return fail(bad("attack_delay"));
      }
    } else if (key == "victim") {
      std::uint64_t v = 0;
      if (!exp::parse_u64(value, &v)) return fail(bad("victim"));
      spec.victim = v;
    } else if (key == "machine_interrupts") {
      if (value == "on") {
        spec.machine_interrupts = true;
      } else if (value == "off") {
        spec.machine_interrupts = false;
      } else {
        return fail(bad("machine_interrupts (on|off)"));
      }
    } else {
      return fail("spec line " + std::to_string(line_no) +
                  ": unknown key '" + key + "'");
    }
  }

  if (std::string message = spec.validate(); !message.empty()) {
    return fail(std::move(message));
  }
  return spec;
}

std::optional<CampaignSpec> parse_spec_file(const std::string& path,
                                            std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open spec file " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_spec(buffer.str(), error);
}

}  // namespace triad::campaign
