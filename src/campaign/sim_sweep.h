// triad_sim's sweep mode: --seeds A..B / --repeat N hand a
// one-dimensional seed sweep to the campaign runner.
//
// The full CliOptions scenario shape (per-node environments, machine
// placement, WAN delay, attestation) is applied to every run via the
// campaign configure hook; only the seed varies. The aggregate JSON
// report goes to stdout (or the CSV report to --csv), with the human
// summary on the error stream — the same stream rules as run_cli.
#pragma once

#include <iosfwd>

#include "exp/cli.h"

namespace triad::campaign {

/// Runs the sweep described by `options` (requires exp::is_sweep).
/// Returns a process exit code.
int run_sim_sweep(const exp::CliOptions& options, std::ostream& out,
                  std::ostream& err);

}  // namespace triad::campaign
