#include "campaign/runner.h"

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "attacks/delay_attack.h"
#include "exp/recorder.h"
#include "exp/scenario.h"
#include "obs/export.h"
#include "obs/prof.h"
#include "resilient/triad_plus.h"
#include "runtime/monotonic_timer.h"

namespace triad::campaign {
namespace {

exp::AexEnvironment to_environment(const std::string& name) {
  if (name == "triad") return exp::AexEnvironment::kTriadLike;
  if (name == "low") return exp::AexEnvironment::kLowAex;
  if (name == "none") return exp::AexEnvironment::kNone;
  throw std::invalid_argument("bad environment '" + name + "'");
}

}  // namespace

RunResult execute_run(const RunSpec& spec, const RunOptions& options) {
  PROF_SCOPE("campaign/execute_run");
  const runtime::MonotonicTimer timer;
  if (spec.nodes == 0) throw std::invalid_argument("run has zero nodes");
  if (spec.victim > spec.nodes) {
    throw std::invalid_argument("victim exceeds cluster size");
  }

  std::optional<exp::Scenario> scenario_slot;
  {
    PROF_SCOPE("campaign/scenario_build");
    exp::ScenarioConfig cfg;
    cfg.seed = spec.seed;
    cfg.node_count = spec.nodes;
    cfg.machine_interrupts = spec.machine_interrupts;
    cfg.environments.assign(spec.nodes, to_environment(spec.environment));
    if (spec.policy == "triadplus") {
      cfg.node_template = resilient::harden(cfg.node_template);
      cfg.policy_factory = [] { return resilient::make_triad_plus_policy(); };
    } else if (spec.policy != "original") {
      throw std::invalid_argument("bad policy '" + spec.policy + "'");
    }
    cfg.enable_metrics = true;
    cfg.enable_detectors = true;
    if (!options.metrics_dir.empty()) {
      cfg.trace_capacity = options.trace_capacity;
    }
    if (options.configure) options.configure(spec, cfg);
    scenario_slot.emplace(std::move(cfg));
  }
  exp::Scenario& scenario = *scenario_slot;
  const std::size_t victim_index = spec.victim_index();
  if (spec.attack != "none") {
    attacks::DelayAttackConfig attack;
    if (spec.attack == "fplus") {
      attack.kind = attacks::AttackKind::kFPlus;
    } else if (spec.attack == "fminus") {
      attack.kind = attacks::AttackKind::kFMinus;
    } else {
      throw std::invalid_argument("bad attack '" + spec.attack + "'");
    }
    attack.victim = scenario.node_address(victim_index);
    attack.ta_address = scenario.ta_address();
    attack.added_delay = spec.attack_delay;
    scenario.add_delay_attack(attack);
  }
  if (options.customize) options.customize(spec, scenario);

  exp::Recorder recorder(scenario, options.sample_period);
  {
    PROF_SCOPE("campaign/sim_run");
    scenario.start();
    scenario.run_until(spec.duration);
  }

  RunResult result;
  result.index = spec.index;
  result.cell = spec.cell;
  result.seed = spec.seed;
  // Covers the rest of the run: series reduction plus (when enabled)
  // the metrics dump, which nests its own scope under this one.
  PROF_SCOPE("campaign/reduce");

  const bool attacked = spec.attack != "none";
  std::uint64_t peer_rounds = 0;
  std::uint64_t peer_successes = 0;
  std::uint64_t aex = 0;
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    const TriadNode& node = scenario.node(i);
    result.availability +=
        node.availability() / static_cast<double>(scenario.node_count());
    peer_rounds += node.stats().peer_rounds;
    peer_successes += node.stats().peer_adoptions + node.stats().kept_local;
    aex += node.stats().aex_count;
    const bool honest = !attacked || i != victim_index;
    const stats::TimeSeries& drift = recorder.drift_ms(i);
    if (honest && !drift.empty()) {
      result.honest_max_abs_drift_ms =
          std::max({result.honest_max_abs_drift_ms,
                    std::abs(drift.min_value()), std::abs(drift.max_value())});
    }
  }
  result.peer_untaint_rate =
      peer_rounds == 0 ? 0.0
                       : static_cast<double>(peer_successes) /
                             static_cast<double>(peer_rounds);
  result.aex_total = static_cast<double>(aex);
  const stats::TimeSeries& victim_drift = recorder.drift_ms(victim_index);
  if (!victim_drift.empty()) {
    result.victim_final_drift_ms = victim_drift.samples().back().value;
  }
  result.victim_freq_mhz =
      scenario.node(victim_index).calibrated_frequency_hz() / 1e6;
  for (const exp::AdoptionEvent& event : recorder.adoptions()) {
    const bool honest = !attacked || event.node != victim_index;
    if (honest && event.source != scenario.ta_address() && event.step() > 0) {
      result.honest_max_jump_ms =
          std::max(result.honest_max_jump_ms, to_milliseconds(event.step()));
    }
  }
  result.adoptions = static_cast<double>(recorder.adoptions().size());
  result.ta_requests = static_cast<double>(
      scenario.time_authority().stats().requests_served);
  result.events_executed =
      static_cast<double>(scenario.simulation().events_executed());
  if (const obs::DetectorBank* bank = scenario.detectors();
      bank != nullptr) {
    result.detector_alarms = static_cast<double>(bank->alarms().size());
    result.detector_first_alarm_s =
        bank->first_alarm_at() < 0 ? -1.0
                                   : to_seconds(bank->first_alarm_at());
    const NodeId victim_address = scenario.node_address(victim_index);
    for (const obs::Alarm& alarm : bank->alarms()) {
      // With no attack there is nothing to detect: every alarm is
      // false. Under attack an alarm is false when it points at a
      // wrong node — true positives implicate the victim directly
      // (slope, disagreement) or as the adoption source (jump), or
      // stay unattributed (disagreement before three nodes calibrated).
      const bool accuses_honest =
          (alarm.node != 0 || alarm.source != 0) &&
          alarm.node != victim_address && alarm.source != victim_address;
      if (!attacked || accuses_honest) {
        result.detector_false_alarms += 1.0;
      }
    }
  }
  if (options.inspect) options.inspect(spec, scenario, recorder, result);

  if (!options.metrics_dir.empty()) {
    PROF_SCOPE("campaign/metrics_dump");
    std::filesystem::create_directories(options.metrics_dir);
    const std::filesystem::path base =
        std::filesystem::path(options.metrics_dir) /
        ("run_" + std::to_string(spec.index));
    const std::filesystem::path path =
        std::filesystem::path(base).concat(".prom");
    std::ofstream file(path);
    if (!file) {
      throw std::runtime_error("cannot open " + path.string());
    }
    scenario.metrics()->write_prometheus(file);
    if (scenario.trace() != nullptr) {
      const std::filesystem::path trace_path =
          std::filesystem::path(base).concat(".jsonl");
      std::ofstream trace_file(trace_path);
      if (!trace_file) {
        throw std::runtime_error("cannot open " + trace_path.string());
      }
      obs::write_jsonl(*scenario.trace(), trace_file);
    }
  }

  result.wall_ms = timer.elapsed_ms();
  return result;
}

CampaignRunner::CampaignRunner(RunnerOptions options)
    : options_(std::move(options)) {
  if (options_.jobs == 0) options_.jobs = 1;
}

CampaignResult CampaignRunner::run(const CampaignSpec& spec) {
  if (std::string message = spec.validate(); !message.empty()) {
    throw std::invalid_argument("invalid campaign spec: " + message);
  }
  return run(spec.expand());
}

CampaignResult CampaignRunner::run(const std::vector<RunSpec>& runs) {
  const runtime::MonotonicTimer campaign_timer;
  CampaignResult result;
  result.runs.resize(runs.size());

  const auto run_one = [this](const RunSpec& spec) {
    return options_.run_fn ? options_.run_fn(spec)
                           : execute_run(spec, options_.run);
  };

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> failures{0};
  std::mutex complete_mutex;
  const auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < runs.size();
         i = next.fetch_add(1)) {
      // How long this run sat in the queue before a worker picked it
      // up — the --jobs scaling signal (summary-stream only, like
      // wall_ms).
      const double queue_ms = campaign_timer.elapsed_ms();
      RunResult run_result;
      try {
        run_result = run_one(runs[i]);
      } catch (const std::exception& e) {
        run_result = RunResult{};
        run_result.failed = true;
        run_result.error = e.what();
      }
      run_result.queue_ms = queue_ms;
      // A failed run keeps its grid coordinates so the Aggregator can
      // attribute the failure to the right cell.
      run_result.index = runs[i].index;
      run_result.cell = runs[i].cell;
      run_result.seed = runs[i].seed;
      if (run_result.failed) failures.fetch_add(1);
      // Slot by position in the run list: deterministic regardless of
      // which worker finished first.
      result.runs[i] = std::move(run_result);
      if (options_.on_complete) {
        const std::lock_guard<std::mutex> lock(complete_mutex);
        options_.on_complete(result.runs[i]);
      }
    }
  };

  const std::size_t jobs = std::min(options_.jobs, std::max<std::size_t>(
                                                       runs.size(), 1));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) threads.emplace_back(worker);
    for (std::thread& thread : threads) thread.join();
  }

  result.failures = failures.load();
  result.wall_ms = campaign_timer.elapsed_ms();

  if (!options_.run.metrics_dir.empty() && !options_.run_fn) {
    write_metrics_index(runs, result);
  }
  return result;
}

void CampaignRunner::write_metrics_index(const std::vector<RunSpec>& runs,
                                         const CampaignResult& result) const {
  namespace fs = std::filesystem;
  const fs::path dir(options_.run.metrics_dir);
  std::ofstream out(dir / "index.json");
  if (!out) {
    throw std::runtime_error("cannot open " + (dir / "index.json").string());
  }
  // Grid order (== run-list order), so the manifest is byte-identical
  // at every job count. Artifact names are listed only when the run
  // actually produced them (failed runs dump nothing; traces depend on
  // the scenario's ring being enabled).
  out << "{\n  \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunSpec& spec = runs[i];
    const std::string stem = "run_" + std::to_string(spec.index);
    const bool failed = result.runs[i].failed;
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"index\": " << spec.index << ", \"cell\": " << spec.cell
        << ", \"seed\": " << spec.seed << ", \"nodes\": " << spec.nodes
        << ", \"environment\": \"" << spec.environment << "\", \"policy\": \""
        << spec.policy << "\", \"attack\": \"" << spec.attack
        << "\", \"failed\": " << (failed ? "true" : "false");
    if (!failed && fs::exists(dir / (stem + ".prom"))) {
      out << ", \"prom\": \"" << stem << ".prom\"";
    }
    if (!failed && fs::exists(dir / (stem + ".jsonl"))) {
      out << ", \"trace\": \"" << stem << ".jsonl\"";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace triad::campaign
