#include "crypto/aes.h"

#include <cstring>
#include <stdexcept>

namespace triad::crypto {
namespace {

constexpr std::array<std::uint8_t, 256> kSbox = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::array<std::uint8_t, 15> kRcon = {
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40,
    0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d};

constexpr std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

/// T-table for the fused SubBytes+ShiftRows+MixColumns round: entry x of
/// table r is the MixColumns image of S[x] rotated into row r, so one
/// round is 16 table lookups + XORs instead of byte-wise field math
/// (~4x on the CI box; bench_micro_crypto pins the numbers).
///
/// Like the byte-wise code it replaces, lookups are data-dependent and
/// therefore not cache-timing hardened — fine here: this cipher stands
/// in for SGX's AES-NI inside a *model*, and the modeled attacker (the
/// OS/network) manipulates timing of *messages*, never shares a cache
/// with enclave key material.
constexpr std::array<std::uint32_t, 256> make_te(int rotate_bytes) {
  std::array<std::uint32_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t s = kSbox[static_cast<std::size_t>(i)];
    const std::uint8_t s2 = xtime(s);
    const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
    const std::uint32_t word = (static_cast<std::uint32_t>(s2) << 24) |
                               (static_cast<std::uint32_t>(s) << 16) |
                               (static_cast<std::uint32_t>(s) << 8) |
                               static_cast<std::uint32_t>(s3);
    const int shift = 8 * rotate_bytes;
    table[static_cast<std::size_t>(i)] =
        shift == 0 ? word : (word >> shift) | (word << (32 - shift));
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTe0 = make_te(0);
constexpr std::array<std::uint32_t, 256> kTe1 = make_te(1);
constexpr std::array<std::uint32_t, 256> kTe2 = make_te(2);
constexpr std::array<std::uint32_t, 256> kTe3 = make_te(3);

std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void store_be32(std::uint32_t v, std::uint8_t* p) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

Aes256::Aes256(const Aes256Key& key) { expand_key(key.data()); }

Aes256::Aes256(BytesView key) {
  if (key.size() != kAes256KeySize) {
    throw std::invalid_argument("Aes256: key must be 32 bytes");
  }
  expand_key(key.data());
}

void Aes256::expand_key(const std::uint8_t* key) {
  // Nk = 8 words, Nb = 4, Nr = 14 -> 60 words.
  std::memcpy(round_keys_.data(), key, 32);
  for (std::size_t i = 8; i < 60; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + 4 * (i - 1), 4);
    if (i % 8 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[i / 8]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
    } else if (i % 8 == 4) {
      for (auto& b : temp) b = kSbox[b];
    }
    for (int j = 0; j < 4; ++j) {
      round_keys_[4 * i + static_cast<std::size_t>(j)] =
          round_keys_[4 * (i - 8) + static_cast<std::size_t>(j)] ^ temp[j];
    }
  }
  for (std::size_t i = 0; i < 60; ++i) {
    round_keys_words_[i] = load_be32(round_keys_.data() + 4 * i);
  }
}

void Aes256::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  const std::uint32_t* rk = round_keys_words_.data();
  std::uint32_t s0 = load_be32(in) ^ rk[0];
  std::uint32_t s1 = load_be32(in + 4) ^ rk[1];
  std::uint32_t s2 = load_be32(in + 8) ^ rk[2];
  std::uint32_t s3 = load_be32(in + 12) ^ rk[3];

  for (std::size_t round = 1; round < 14; ++round) {
    rk += 4;
    const std::uint32_t t0 = kTe0[s0 >> 24] ^ kTe1[(s1 >> 16) & 0xff] ^
                             kTe2[(s2 >> 8) & 0xff] ^ kTe3[s3 & 0xff] ^ rk[0];
    const std::uint32_t t1 = kTe0[s1 >> 24] ^ kTe1[(s2 >> 16) & 0xff] ^
                             kTe2[(s3 >> 8) & 0xff] ^ kTe3[s0 & 0xff] ^ rk[1];
    const std::uint32_t t2 = kTe0[s2 >> 24] ^ kTe1[(s3 >> 16) & 0xff] ^
                             kTe2[(s0 >> 8) & 0xff] ^ kTe3[s1 & 0xff] ^ rk[2];
    const std::uint32_t t3 = kTe0[s3 >> 24] ^ kTe1[(s0 >> 16) & 0xff] ^
                             kTe2[(s1 >> 8) & 0xff] ^ kTe3[s2 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
  rk += 4;
  const auto sub_word = [](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                           std::uint32_t d) {
    return (static_cast<std::uint32_t>(kSbox[a >> 24]) << 24) |
           (static_cast<std::uint32_t>(kSbox[(b >> 16) & 0xff]) << 16) |
           (static_cast<std::uint32_t>(kSbox[(c >> 8) & 0xff]) << 8) |
           static_cast<std::uint32_t>(kSbox[d & 0xff]);
  };
  store_be32(sub_word(s0, s1, s2, s3) ^ rk[0], out);
  store_be32(sub_word(s1, s2, s3, s0) ^ rk[1], out + 4);
  store_be32(sub_word(s2, s3, s0, s1) ^ rk[2], out + 8);
  store_be32(sub_word(s3, s0, s1, s2) ^ rk[3], out + 12);
}

AesBlock Aes256::encrypt_block(const AesBlock& in) const {
  AesBlock out;
  encrypt_block(in.data(), out.data());
  return out;
}

}  // namespace triad::crypto
