#include "crypto/gcm.h"

#include <cstring>

#include "obs/prof.h"

namespace triad::crypto {
namespace {

using Block128 = std::array<std::uint64_t, 2>;

Block128 load_block(const std::uint8_t* p) {
  Block128 b{};
  for (int i = 0; i < 8; ++i) {
    b[0] = (b[0] << 8) | p[i];
    b[1] = (b[1] << 8) | p[8 + i];
  }
  return b;
}

void store_block(const Block128& b, std::uint8_t* p) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(b[0] >> (56 - 8 * i));
    p[8 + i] = static_cast<std::uint8_t>(b[1] >> (56 - 8 * i));
  }
}

/// Multiplies a field element by x (one right shift in the bit-reflected
/// representation NIST specifies, reducing by the GCM polynomial).
Block128 mul_by_x(const Block128& v) {
  Block128 r;
  const bool lsb = (v[1] & 1) != 0;
  r[1] = (v[1] >> 1) | (v[0] << 63);
  r[0] = v[0] >> 1;
  if (lsb) r[0] ^= 0xe100000000000000ULL;
  return r;
}

/// Reduction constants for a 4-bit right shift (Shoup's method): entry n
/// is what XORs into the top 16 bits of the 128-bit value when the
/// nibble n falls off the low end — the image of n·x^128 under the GCM
/// polynomial, accumulated across the four single-bit shifts.
constexpr std::array<std::uint16_t, 16> kShiftReduction = {
    0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
    0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0,
};

/// GF(2^128) multiply by H via its 4-bit Shoup table: Horner over the 32
/// nibbles of x, highest-degree nibble first. ~4x fewer iterations and
/// no data-dependent branches compared to the bit-serial loop this
/// replaced.
Block128 gf_mul(const Block128& x, const std::array<Block128, 16>& table) {
  Block128 z{0, 0};
  for (int half = 1; half >= 0; --half) {
    std::uint64_t word = x[half];
    for (int nibble = 0; nibble < 16; ++nibble) {
      const std::uint64_t out = z[1] & 0xf;
      z[1] = (z[1] >> 4) | (z[0] << 60);
      z[0] = (z[0] >> 4) ^
             (static_cast<std::uint64_t>(kShiftReduction[out]) << 48);
      const Block128& add = table[word & 0xf];
      z[0] ^= add[0];
      z[1] ^= add[1];
      word >>= 4;
    }
  }
  return z;
}

void increment32(std::uint8_t* counter_block) {
  for (int i = 15; i >= 12; --i) {
    if (++counter_block[i] != 0) break;
  }
}

bool constant_time_equal(const std::uint8_t* a, const std::uint8_t* b,
                         std::size_t n) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < n; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace

Aes256Gcm::Aes256Gcm(BytesView key) : aes_(key) {
  AesBlock zero{};
  const AesBlock h_bytes = aes_.encrypt_block(zero);
  const Block128 h = load_block(h_bytes.data());
  // Shoup table: powers of x at the single-bit indices (bit 3 of the
  // index is the x^0 coefficient — see gf_mul), XOR combinations at the
  // rest.
  h_table_[8] = h;
  h_table_[4] = mul_by_x(h_table_[8]);
  h_table_[2] = mul_by_x(h_table_[4]);
  h_table_[1] = mul_by_x(h_table_[2]);
  for (int base = 2; base < 16; base *= 2) {
    for (int add = 1; add < base; ++add) {
      h_table_[base + add] = {h_table_[base][0] ^ h_table_[add][0],
                              h_table_[base][1] ^ h_table_[add][1]};
    }
  }
}

Aes256Gcm::Block128 Aes256Gcm::ghash(BytesView aad,
                                     BytesView ciphertext) const {
  Block128 y{0, 0};
  auto absorb = [&](BytesView data) {
    std::size_t offset = 0;
    while (offset + 16 <= data.size()) {
      const Block128 x = load_block(data.data() + offset);
      y[0] ^= x[0];
      y[1] ^= x[1];
      y = gf_mul(y, h_table_);
      offset += 16;
    }
    if (offset < data.size()) {
      std::uint8_t block[16] = {};
      std::memcpy(block, data.data() + offset, data.size() - offset);
      const Block128 x = load_block(block);
      y[0] ^= x[0];
      y[1] ^= x[1];
      y = gf_mul(y, h_table_);
    }
  };
  absorb(aad);
  absorb(ciphertext);
  // Length block: 64-bit bit-lengths of AAD and ciphertext.
  Block128 lens{static_cast<std::uint64_t>(aad.size()) * 8,
                static_cast<std::uint64_t>(ciphertext.size()) * 8};
  y[0] ^= lens[0];
  y[1] ^= lens[1];
  return gf_mul(y, h_table_);
}

void Aes256Gcm::ctr_crypt(const GcmIv& iv, BytesView in, Bytes& out) const {
  std::uint8_t counter[16] = {};
  std::memcpy(counter, iv.data(), kGcmIvSize);
  counter[15] = 1;  // J0 for 96-bit IV

  out.resize(in.size());
  std::size_t offset = 0;
  while (offset < in.size()) {
    increment32(counter);
    std::uint8_t keystream[16];
    aes_.encrypt_block(counter, keystream);
    const std::size_t take = std::min<std::size_t>(16, in.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      out[offset + i] = in[offset + i] ^ keystream[i];
    }
    offset += take;
  }
}

GcmTag Aes256Gcm::compute_tag(const GcmIv& iv, BytesView aad,
                              BytesView ciphertext) const {
  const Block128 s = ghash(aad, ciphertext);
  std::uint8_t j0[16] = {};
  std::memcpy(j0, iv.data(), kGcmIvSize);
  j0[15] = 1;
  std::uint8_t ekj0[16];
  aes_.encrypt_block(j0, ekj0);
  std::uint8_t s_bytes[16];
  store_block(s, s_bytes);
  GcmTag tag;
  for (std::size_t i = 0; i < kGcmTagSize; ++i) tag[i] = ekj0[i] ^ s_bytes[i];
  return tag;
}

GcmSealed Aes256Gcm::seal(const GcmIv& iv, BytesView plaintext,
                          BytesView aad) const {
  PROF_SCOPE("crypto/gcm_seal");
  GcmSealed sealed;
  ctr_crypt(iv, plaintext, sealed.ciphertext);
  sealed.tag = compute_tag(iv, aad, sealed.ciphertext);
  return sealed;
}

std::optional<Bytes> Aes256Gcm::open(const GcmIv& iv, BytesView ciphertext,
                                     BytesView aad, const GcmTag& tag) const {
  PROF_SCOPE("crypto/gcm_open");
  const GcmTag expected = compute_tag(iv, aad, ciphertext);
  if (!constant_time_equal(expected.data(), tag.data(), kGcmTagSize)) {
    return std::nullopt;
  }
  Bytes plaintext;
  ctr_crypt(iv, ciphertext, plaintext);
  return plaintext;
}

}  // namespace triad::crypto
