#include "crypto/x25519.h"

#include <cstring>

namespace triad::crypto {
namespace {

// Field element: 5 limbs of 51 bits, value = sum(limb[i] * 2^(51*i))
// modulo p = 2^255 - 19.
struct Fe {
  std::uint64_t v[5];
};

constexpr std::uint64_t kMask51 = (1ULL << 51) - 1;

Fe fe_zero() { return {{0, 0, 0, 0, 0}}; }
Fe fe_one() { return {{1, 0, 0, 0, 0}}; }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

/// a - b, with a bias of 2p added to keep limbs non-negative.
Fe fe_sub(const Fe& a, const Fe& b) {
  // 2p in radix 2^51.
  static constexpr std::uint64_t k2p[5] = {
      0xfffffffffffda, 0xffffffffffffe, 0xffffffffffffe, 0xffffffffffffe,
      0xffffffffffffe};
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + k2p[i] - b.v[i];
  return r;
}

/// Weak reduction: brings limbs back under ~2^52.
void fe_carry(Fe& a) {
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t carry = a.v[i] >> 51;
      a.v[i] &= kMask51;
      a.v[i + 1] += carry;
    }
    const std::uint64_t carry = a.v[4] >> 51;
    a.v[4] &= kMask51;
    a.v[0] += carry * 19;
  }
}

Fe fe_mul(const Fe& a, const Fe& b) {
  using u128 = unsigned __int128;
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3],
                      a4 = a.v[4];
  const std::uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3],
                      b4 = b.v[4];
  const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19,
                      b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 +
            (u128)a3 * b0 + (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 +
            (u128)a3 * b1 + (u128)a4 * b0;

  Fe r;
  std::uint64_t carry;
  r.v[0] = (std::uint64_t)t0 & kMask51;
  carry = (std::uint64_t)(t0 >> 51);
  t1 += carry;
  r.v[1] = (std::uint64_t)t1 & kMask51;
  carry = (std::uint64_t)(t1 >> 51);
  t2 += carry;
  r.v[2] = (std::uint64_t)t2 & kMask51;
  carry = (std::uint64_t)(t2 >> 51);
  t3 += carry;
  r.v[3] = (std::uint64_t)t3 & kMask51;
  carry = (std::uint64_t)(t3 >> 51);
  t4 += carry;
  r.v[4] = (std::uint64_t)t4 & kMask51;
  carry = (std::uint64_t)(t4 >> 51);
  r.v[0] += carry * 19;
  carry = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += carry;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

/// Multiplication by a small constant (121666 in the ladder).
Fe fe_mul_small(const Fe& a, std::uint64_t c) {
  using u128 = unsigned __int128;
  Fe r;
  u128 t[5];
  for (int i = 0; i < 5; ++i) t[i] = (u128)a.v[i] * c;
  std::uint64_t carry = 0;
  for (int i = 0; i < 5; ++i) {
    t[i] += carry;
    r.v[i] = (std::uint64_t)t[i] & kMask51;
    carry = (std::uint64_t)(t[i] >> 51);
  }
  r.v[0] += carry * 19;
  carry = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += carry;
  return r;
}

/// a^(p-2) = a^-1 mod p.
Fe fe_invert(const Fe& a) {
  // Addition chain from the curve25519 reference implementation.
  Fe z2 = fe_sq(a);                       // 2
  Fe z8 = fe_sq(fe_sq(z2));               // 8
  Fe z9 = fe_mul(z8, a);                  // 9
  Fe z11 = fe_mul(z9, z2);                // 11
  Fe z22 = fe_sq(z11);                    // 22
  Fe z_5_0 = fe_mul(z22, z9);             // 2^5 - 2^0
  Fe t = fe_sq(z_5_0);
  for (int i = 1; i < 5; ++i) t = fe_sq(t);
  Fe z_10_0 = fe_mul(t, z_5_0);           // 2^10 - 2^0
  t = fe_sq(z_10_0);
  for (int i = 1; i < 10; ++i) t = fe_sq(t);
  Fe z_20_0 = fe_mul(t, z_10_0);          // 2^20 - 2^0
  t = fe_sq(z_20_0);
  for (int i = 1; i < 20; ++i) t = fe_sq(t);
  Fe z_40_0 = fe_mul(t, z_20_0);          // 2^40 - 2^0
  t = fe_sq(z_40_0);
  for (int i = 1; i < 10; ++i) t = fe_sq(t);
  Fe z_50_0 = fe_mul(t, z_10_0);          // 2^50 - 2^0
  t = fe_sq(z_50_0);
  for (int i = 1; i < 50; ++i) t = fe_sq(t);
  Fe z_100_0 = fe_mul(t, z_50_0);         // 2^100 - 2^0
  t = fe_sq(z_100_0);
  for (int i = 1; i < 100; ++i) t = fe_sq(t);
  Fe z_200_0 = fe_mul(t, z_100_0);        // 2^200 - 2^0
  t = fe_sq(z_200_0);
  for (int i = 1; i < 50; ++i) t = fe_sq(t);
  Fe z_250_0 = fe_mul(t, z_50_0);         // 2^250 - 2^0
  t = fe_sq(z_250_0);
  for (int i = 1; i < 5; ++i) t = fe_sq(t);
  return fe_mul(t, z11);                  // 2^255 - 21
}

Fe fe_from_bytes(const std::uint8_t* s) {
  auto load64 = [](const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= (std::uint64_t)p[i] << (8 * i);
    return v;
  };
  Fe r;
  r.v[0] = load64(s) & kMask51;
  r.v[1] = (load64(s + 6) >> 3) & kMask51;
  r.v[2] = (load64(s + 12) >> 6) & kMask51;
  r.v[3] = (load64(s + 19) >> 1) & kMask51;
  // The 51-bit mask keeps bits 204..254, dropping bit 255 as RFC 7748
  // requires.
  r.v[4] = (load64(s + 24) >> 12) & kMask51;
  return r;
}

void fe_to_bytes(std::uint8_t* out, Fe a) {
  fe_carry(a);
  // Full reduction: subtract p if the value is >= p.
  // First propagate once more precisely.
  std::uint64_t q = (a.v[0] + 19) >> 51;
  q = (a.v[1] + q) >> 51;
  q = (a.v[2] + q) >> 51;
  q = (a.v[3] + q) >> 51;
  q = (a.v[4] + q) >> 51;
  a.v[0] += 19 * q;
  std::uint64_t carry = a.v[0] >> 51;
  a.v[0] &= kMask51;
  a.v[1] += carry;
  carry = a.v[1] >> 51;
  a.v[1] &= kMask51;
  a.v[2] += carry;
  carry = a.v[2] >> 51;
  a.v[2] &= kMask51;
  a.v[3] += carry;
  carry = a.v[3] >> 51;
  a.v[3] &= kMask51;
  a.v[4] += carry;
  a.v[4] &= kMask51;

  const std::uint64_t limbs[4] = {
      a.v[0] | (a.v[1] << 51),
      (a.v[1] >> 13) | (a.v[2] << 38),
      (a.v[2] >> 26) | (a.v[3] << 25),
      (a.v[3] >> 39) | (a.v[4] << 12),
  };
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = (std::uint8_t)(limbs[i] >> (8 * j));
    }
  }
}

void fe_cswap(Fe& a, Fe& b, std::uint64_t swap) {
  const std::uint64_t mask = 0 - swap;  // all-ones when swap == 1
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

X25519Key clamp(const X25519Key& scalar) {
  X25519Key k = scalar;
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;
  return k;
}

}  // namespace

X25519Key x25519(const X25519Key& scalar, const X25519Key& u_bytes) {
  const X25519Key k = clamp(scalar);
  const Fe x1 = fe_from_bytes(u_bytes.data());

  // Montgomery ladder (RFC 7748 §5).
  Fe x2 = fe_one();
  Fe z2 = fe_zero();
  Fe x3 = x1;
  Fe z3 = fe_one();
  std::uint64_t swap = 0;

  for (int t = 254; t >= 0; --t) {
    const std::uint64_t k_t = (k[static_cast<std::size_t>(t / 8)] >>
                               (t % 8)) &
                              1;
    swap ^= k_t;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = k_t;

    Fe a = fe_add(x2, z2);
    Fe aa = fe_sq(a);
    Fe b = fe_sub(x2, z2);
    Fe bb = fe_sq(b);
    Fe e = fe_sub(aa, bb);
    Fe c = fe_add(x3, z3);
    Fe d = fe_sub(x3, z3);
    Fe da = fe_mul(d, a);
    Fe cb = fe_mul(c, b);
    Fe t0 = fe_add(da, cb);
    x3 = fe_sq(t0);
    Fe t1 = fe_sub(da, cb);
    z3 = fe_mul(x1, fe_sq(t1));
    x2 = fe_mul(aa, bb);
    Fe t2 = fe_mul_small(e, 121665);
    z2 = fe_mul(e, fe_add(aa, t2));
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  const Fe result = fe_mul(x2, fe_invert(z2));
  X25519Key out{};
  fe_to_bytes(out.data(), result);
  return out;
}

X25519Key x25519_public_key(const X25519Key& private_key) {
  X25519Key base{};
  base[0] = 9;
  return x25519(private_key, base);
}

bool x25519_shared_secret(const X25519Key& private_key,
                          const X25519Key& peer_public, X25519Key* out) {
  *out = x25519(private_key, peer_public);
  std::uint8_t acc = 0;
  for (std::uint8_t b : *out) acc |= b;
  if (acc == 0) {
    out->fill(0);
    return false;
  }
  return true;
}

}  // namespace triad::crypto
