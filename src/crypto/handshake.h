// Attestation-style authenticated key exchange.
//
// Real Triad deployments derive their channel keys from SGX remote
// attestation: each enclave proves (via a quote signed by the platform's
// quoting infrastructure) that a given key-exchange public key belongs
// to an enclave with an expected measurement. We model the attestation
// root as a symmetric provisioning secret held by the (trusted) quoting
// infrastructure: a quote is an HMAC over (measurement, node id, X25519
// public key). The OS/network attacker can observe and delay handshake
// messages but holds neither the attestation root nor any enclave's
// private scalar, so it can neither impersonate an enclave nor learn
// session keys — and a binary with the wrong measurement is rejected.
//
// Session keys then come from X25519 ECDH + HKDF, and plug into
// SecureChannel through the SessionKeyring.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "crypto/channel.h"
#include "crypto/sha256.h"
#include "crypto/x25519.h"
#include "util/bytes.h"
#include "util/types.h"

namespace triad::crypto {

/// Enclave code identity (MRENCLAVE stand-in).
using Measurement = Sha256Digest;

/// A quote binds (node, measurement, DH public key) under the
/// attestation root.
struct Quote {
  NodeId node = 0;
  Measurement measurement{};
  X25519Key dh_public{};
  Sha256Digest mac{};

  /// Serialized form for embedding in handshake messages.
  [[nodiscard]] Bytes encode() const;
  static std::optional<Quote> decode(BytesView data);
};

/// The platform quoting infrastructure (trusted): issues and verifies
/// quotes under the attestation root secret.
class AttestationAuthority {
 public:
  explicit AttestationAuthority(Bytes root_secret);

  [[nodiscard]] Quote issue(NodeId node, const Measurement& measurement,
                            const X25519Key& dh_public) const;

  [[nodiscard]] bool verify(const Quote& quote) const;

 private:
  [[nodiscard]] Sha256Digest mac_over(const Quote& quote) const;
  Bytes root_secret_;
};

/// One side of the handshake. Usage:
///   HandshakeParty alice(aa, 1, measurement, seed);
///   HandshakeParty bob(aa, 2, measurement, seed);
///   Bytes offer = alice.offer();                 // -> bob
///   auto bob_result = bob.accept(offer);         // verify + derive
///   Bytes answer = bob.offer();                  // -> alice
///   auto alice_result = alice.accept(answer);
/// Both sides end with the same session_secret iff both quotes verify
/// and both expected measurements match.
class HandshakeParty {
 public:
  /// The private scalar is derived deterministically from `seed` (the
  /// simulation's randomness stands in for RDRAND inside the enclave).
  HandshakeParty(const AttestationAuthority& authority, NodeId self,
                 Measurement measurement, std::uint64_t seed);

  /// The quote-carrying handshake message for the peer.
  [[nodiscard]] Bytes offer() const;

  struct Result {
    NodeId peer = 0;
    Bytes session_secret;  // 32 bytes, HKDF output
  };

  /// Verifies the peer's offer (quote authenticity + measurement match)
  /// and derives the session secret. nullopt on any failure.
  [[nodiscard]] std::optional<Result> accept(
      BytesView peer_offer, const Measurement& expected_measurement) const;

 private:
  const AttestationAuthority& authority_;
  NodeId self_;
  Measurement measurement_;
  X25519Key private_key_{};
  Quote quote_{};
};

/// Keyring backed by handshake-derived pairwise session secrets; a
/// drop-in for ClusterKeyring when building SecureChannels.
class SessionKeyring : public Keyring {
 public:
  /// Installs the session secret shared with `peer`.
  void install(NodeId peer, Bytes session_secret);

  [[nodiscard]] bool has_session(NodeId peer) const;

  /// Directional key derived from the pairwise session secret; throws
  /// std::out_of_range if no session with the remote endpoint exists.
  [[nodiscard]] Bytes direction_key(NodeId sender,
                                    NodeId receiver) const override;

  /// The keyring's owner (one end of every session).
  void set_self(NodeId self) { self_ = self; }

 private:
  NodeId self_ = 0;
  std::map<NodeId, Bytes> sessions_;
};

}  // namespace triad::crypto
