// SHA-256 (FIPS 180-4). Used by HMAC/HKDF for channel key derivation.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace triad::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  /// Finalizes and returns the digest; the object must not be reused.
  Sha256Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

/// One-shot convenience.
Sha256Digest sha256(BytesView data);

}  // namespace triad::crypto
