// AES-256 block cipher (FIPS 197). Only encryption is exposed: GCM uses
// the forward cipher for both directions.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace triad::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAes256KeySize = 32;

using AesBlock = std::array<std::uint8_t, kAesBlockSize>;
using Aes256Key = std::array<std::uint8_t, kAes256KeySize>;

/// AES-256 with a precomputed key schedule.
class Aes256 {
 public:
  explicit Aes256(const Aes256Key& key);
  /// Accepts any 32-byte view; throws std::invalid_argument otherwise.
  explicit Aes256(BytesView key);

  /// Encrypts one 16-byte block (in may alias out).
  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  [[nodiscard]] AesBlock encrypt_block(const AesBlock& in) const;

 private:
  void expand_key(const std::uint8_t* key);
  // 15 round keys of 16 bytes (Nr = 14).
  std::array<std::uint8_t, 16 * 15> round_keys_{};
  // The same schedule as big-endian words, for the T-table round
  // function (one word per state column).
  std::array<std::uint32_t, 60> round_keys_words_{};
};

}  // namespace triad::crypto
