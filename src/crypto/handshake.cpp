#include "crypto/handshake.h"

#include <stdexcept>

#include "crypto/hmac.h"
#include "util/rng.h"

namespace triad::crypto {
namespace {

constexpr char kQuoteContext[] = "triad-attestation-quote-v1";
constexpr char kSessionContext[] = "triad-session-v1";

Bytes quote_signing_input(const Quote& quote) {
  ByteWriter w;
  w.put_string(kQuoteContext);
  w.put_u32(quote.node);
  w.put_bytes(BytesView(quote.measurement.data(), quote.measurement.size()));
  w.put_bytes(BytesView(quote.dh_public.data(), quote.dh_public.size()));
  return w.take();
}

}  // namespace

Bytes Quote::encode() const {
  ByteWriter w;
  w.put_u32(node);
  w.put_bytes(BytesView(measurement.data(), measurement.size()));
  w.put_bytes(BytesView(dh_public.data(), dh_public.size()));
  w.put_bytes(BytesView(mac.data(), mac.size()));
  return w.take();
}

std::optional<Quote> Quote::decode(BytesView data) {
  try {
    ByteReader reader(data);
    Quote quote;
    quote.node = reader.get_u32();
    const Bytes measurement = reader.get_bytes(kSha256DigestSize);
    std::copy(measurement.begin(), measurement.end(),
              quote.measurement.begin());
    const Bytes dh = reader.get_bytes(kX25519KeySize);
    std::copy(dh.begin(), dh.end(), quote.dh_public.begin());
    const Bytes mac = reader.get_bytes(kSha256DigestSize);
    std::copy(mac.begin(), mac.end(), quote.mac.begin());
    reader.expect_end();
    return quote;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

AttestationAuthority::AttestationAuthority(Bytes root_secret)
    : root_secret_(std::move(root_secret)) {
  if (root_secret_.size() < 16) {
    throw std::invalid_argument("AttestationAuthority: secret too short");
  }
}

Sha256Digest AttestationAuthority::mac_over(const Quote& quote) const {
  return hmac_sha256(root_secret_, quote_signing_input(quote));
}

Quote AttestationAuthority::issue(NodeId node,
                                  const Measurement& measurement,
                                  const X25519Key& dh_public) const {
  Quote quote;
  quote.node = node;
  quote.measurement = measurement;
  quote.dh_public = dh_public;
  quote.mac = mac_over(quote);
  return quote;
}

bool AttestationAuthority::verify(const Quote& quote) const {
  const Sha256Digest expected = mac_over(quote);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    diff |= static_cast<std::uint8_t>(expected[i] ^ quote.mac[i]);
  }
  return diff == 0;
}

HandshakeParty::HandshakeParty(const AttestationAuthority& authority,
                               NodeId self, Measurement measurement,
                               std::uint64_t seed)
    : authority_(authority), self_(self), measurement_(measurement) {
  // Deterministic scalar from the seed (enclave-internal randomness).
  Rng rng(seed);
  for (auto& byte : private_key_) {
    byte = static_cast<std::uint8_t>(rng.next_u64());
  }
  quote_ = authority_.issue(self_, measurement_,
                            x25519_public_key(private_key_));
}

Bytes HandshakeParty::offer() const { return quote_.encode(); }

std::optional<HandshakeParty::Result> HandshakeParty::accept(
    BytesView peer_offer, const Measurement& expected_measurement) const {
  const auto quote = Quote::decode(peer_offer);
  if (!quote) return std::nullopt;
  if (!authority_.verify(*quote)) return std::nullopt;       // forged
  if (quote->measurement != expected_measurement) return std::nullopt;
  if (quote->node == self_) return std::nullopt;             // reflection

  X25519Key shared{};
  if (!x25519_shared_secret(private_key_, quote->dh_public, &shared)) {
    return std::nullopt;  // low-order point
  }

  // Both parties derive the same secret: the info binds the unordered
  // pair of identities so a transcript cannot be replayed across pairs.
  const NodeId lo = std::min(self_, quote->node);
  const NodeId hi = std::max(self_, quote->node);
  ByteWriter info;
  info.put_string(kSessionContext);
  info.put_u32(lo);
  info.put_u32(hi);
  Result result;
  result.peer = quote->node;
  result.session_secret =
      hkdf({}, BytesView(shared.data(), shared.size()), info.data(), 32);
  return result;
}

void SessionKeyring::install(NodeId peer, Bytes session_secret) {
  if (session_secret.size() < 16) {
    throw std::invalid_argument("SessionKeyring: secret too short");
  }
  sessions_[peer] = std::move(session_secret);
}

bool SessionKeyring::has_session(NodeId peer) const {
  return sessions_.contains(peer);
}

Bytes SessionKeyring::direction_key(NodeId sender, NodeId receiver) const {
  const NodeId remote = sender == self_ ? receiver : sender;
  const auto it = sessions_.find(remote);
  if (it == sessions_.end()) {
    throw std::out_of_range("SessionKeyring: no session with peer " +
                            std::to_string(remote));
  }
  ByteWriter info;
  info.put_string("triad-channel-v1");
  info.put_u32(sender);
  info.put_u32(receiver);
  static constexpr std::uint8_t kSalt[] = "triad-trusted-time";
  return hkdf(BytesView(kSalt, sizeof(kSalt) - 1), it->second, info.data(),
              kAes256KeySize);
}

}  // namespace triad::crypto
