// X25519 Diffie-Hellman (RFC 7748), implemented from scratch.
//
// Used by the attestation-style handshake (crypto/handshake.h) to
// establish per-session channel keys, modelling how a real SGX
// deployment derives its AES-GCM keys from remote attestation instead
// of pre-provisioned secrets.
//
// Field arithmetic over GF(2^255 - 19) in radix-2^51 (5 limbs, 64-bit,
// products via __int128); Montgomery ladder with constant-time
// conditional swaps.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace triad::crypto {

inline constexpr std::size_t kX25519KeySize = 32;
using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// Scalar multiplication: X25519(scalar, u-coordinate).
/// The scalar is clamped per RFC 7748.
X25519Key x25519(const X25519Key& scalar, const X25519Key& u);

/// Public key for a (clamped) private scalar: X25519(scalar, 9).
X25519Key x25519_public_key(const X25519Key& private_key);

/// Shared secret: X25519(private, peer_public). Returns false (and a
/// zeroed output) when the result is all-zero — a contributory-behaviour
/// check against low-order peer points.
bool x25519_shared_secret(const X25519Key& private_key,
                          const X25519Key& peer_public, X25519Key* out);

}  // namespace triad::crypto
