#include "crypto/channel.h"

#include <cstring>

#include "crypto/hmac.h"
#include "obs/prof.h"
#include "util/bytes.h"

namespace triad::crypto {
namespace {

// Frame layout (all fixed width, little-endian):
//   sender   u32
//   receiver u32
//   counter  u64
//   ct_len   u32
//   ct       ct_len bytes
//   tag      16 bytes
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4;

GcmIv make_iv(NodeId sender, std::uint64_t counter) {
  GcmIv iv{};
  for (int i = 0; i < 4; ++i) {
    iv[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sender >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    iv[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(counter >> (8 * i));
  }
  return iv;
}

std::uint64_t pair_key(NodeId sender, NodeId receiver) {
  return (static_cast<std::uint64_t>(sender) << 32) | receiver;
}

}  // namespace

ClusterKeyring::ClusterKeyring(BytesView master_secret)
    : master_secret_(master_secret.begin(), master_secret.end()) {}

Bytes ClusterKeyring::direction_key(NodeId sender, NodeId receiver) const {
  ByteWriter info;
  info.put_string("triad-channel-v1");
  info.put_u32(sender);
  info.put_u32(receiver);
  static constexpr std::uint8_t kSalt[] = "triad-trusted-time";
  return hkdf(BytesView(kSalt, sizeof(kSalt) - 1), master_secret_,
              info.data(), kAes256KeySize);
}

SecureChannel::SecureChannel(NodeId self, const Keyring& keyring)
    : self_(self), keyring_(keyring) {}

const Aes256Gcm& SecureChannel::cipher_for(NodeId sender, NodeId receiver) {
  const std::uint64_t key = pair_key(sender, receiver);
  auto it = ciphers_.find(key);
  if (it == ciphers_.end()) {
    it = ciphers_.emplace(key, Aes256Gcm(keyring_.direction_key(sender,
                                                                receiver)))
             .first;
  }
  return it->second;
}

Bytes SecureChannel::seal(NodeId receiver, BytesView plaintext) {
  PROF_SCOPE("crypto/channel_seal");
  const std::uint64_t counter = ++send_counters_[receiver];
  const GcmIv iv = make_iv(self_, counter);

  ByteWriter aad;
  aad.put_u32(self_);
  aad.put_u32(receiver);
  aad.put_u64(counter);

  const GcmSealed sealed =
      cipher_for(self_, receiver).seal(iv, plaintext, aad.data());

  ByteWriter frame;
  frame.put_u32(self_);
  frame.put_u32(receiver);
  frame.put_u64(counter);
  frame.put_u32(static_cast<std::uint32_t>(sealed.ciphertext.size()));
  frame.put_bytes(sealed.ciphertext);
  frame.put_bytes(BytesView(sealed.tag.data(), sealed.tag.size()));
  return frame.take();
}

std::optional<SecureChannel::Opened> SecureChannel::open(BytesView frame,
                                                         OpenError* error) {
  PROF_SCOPE("crypto/channel_open");
  auto fail = [&](OpenError e) -> std::optional<Opened> {
    if (error != nullptr) *error = e;
    return std::nullopt;
  };

  NodeId sender = 0;
  NodeId receiver = 0;
  std::uint64_t counter = 0;
  Bytes ciphertext;
  GcmTag tag;
  try {
    ByteReader reader(frame);
    sender = reader.get_u32();
    receiver = reader.get_u32();
    counter = reader.get_u64();
    const std::uint32_t ct_len = reader.get_u32();
    ciphertext = reader.get_bytes(ct_len);
    const Bytes tag_bytes = reader.get_bytes(kGcmTagSize);
    std::memcpy(tag.data(), tag_bytes.data(), kGcmTagSize);
    reader.expect_end();
  } catch (const DecodeError&) {
    return fail(OpenError::kMalformed);
  }
  (void)kHeaderSize;

  if (receiver != self_) return fail(OpenError::kWrongReceiver);

  ByteWriter aad;
  aad.put_u32(sender);
  aad.put_u32(receiver);
  aad.put_u64(counter);

  const GcmIv iv = make_iv(sender, counter);
  auto plaintext =
      cipher_for(sender, receiver).open(iv, ciphertext, aad.data(), tag);
  if (!plaintext) return fail(OpenError::kAuthFailed);

  // Replay check happens only after authentication so an attacker cannot
  // advance the window with forged counters.
  if (!replay_windows_[sender].accept(counter)) {
    return fail(OpenError::kReplayed);
  }

  return Opened{sender, std::move(*plaintext)};
}

bool SecureChannel::ReplayWindow::accept(std::uint64_t counter) {
  if (counter == 0) return false;  // counters start at 1
  if (counter > highest) {
    const std::uint64_t shift = counter - highest;
    bitmap = shift >= 64 ? 0 : bitmap << shift;
    bitmap |= 1;  // bit 0 == `counter` itself
    highest = counter;
    return true;
  }
  const std::uint64_t age = highest - counter;
  if (age >= 64) return false;  // older than the window: refuse
  const std::uint64_t bit = 1ULL << age;
  if (bitmap & bit) return false;  // already seen: replay
  bitmap |= bit;
  return true;
}

}  // namespace triad::crypto
