// AES-256-GCM authenticated encryption (NIST SP 800-38D).
//
// All Triad protocol traffic is sealed with this AEAD, as in the paper's
// implementation (which uses the SGX-AES-256 library). 96-bit IVs only;
// 128-bit tags.
#pragma once

#include <array>
#include <optional>

#include "crypto/aes.h"
#include "util/bytes.h"

namespace triad::crypto {

inline constexpr std::size_t kGcmIvSize = 12;
inline constexpr std::size_t kGcmTagSize = 16;

using GcmIv = std::array<std::uint8_t, kGcmIvSize>;
using GcmTag = std::array<std::uint8_t, kGcmTagSize>;

struct GcmSealed {
  Bytes ciphertext;  // same length as plaintext
  GcmTag tag;
};

/// AES-256-GCM with a fixed key; IVs are supplied per call and must never
/// repeat for the same key (the SecureChannel enforces this with counter
/// nonces).
class Aes256Gcm {
 public:
  explicit Aes256Gcm(BytesView key);

  /// Encrypts and authenticates plaintext with associated data.
  [[nodiscard]] GcmSealed seal(const GcmIv& iv, BytesView plaintext,
                               BytesView aad) const;

  /// Verifies tag then decrypts; nullopt on authentication failure.
  [[nodiscard]] std::optional<Bytes> open(const GcmIv& iv,
                                          BytesView ciphertext,
                                          BytesView aad,
                                          const GcmTag& tag) const;

 private:
  using Block128 = std::array<std::uint64_t, 2>;  // big-endian hi/lo halves

  [[nodiscard]] Block128 ghash(BytesView aad, BytesView ciphertext) const;
  void ctr_crypt(const GcmIv& iv, BytesView in, Bytes& out) const;
  [[nodiscard]] GcmTag compute_tag(const GcmIv& iv, BytesView aad,
                                   BytesView ciphertext) const;

  Aes256 aes_;
  /// Shoup 4-bit table for the GHASH subkey H = E_K(0^128): entry n is
  /// (bit3(n) + bit2(n)·x + bit1(n)·x² + bit0(n)·x³)·H, letting ghash()
  /// multiply by H in 32 table lookups per block instead of a
  /// 128-iteration bit-serial loop (the portable-crypto hotspot; see
  /// bench_micro_crypto). 256 bytes per cipher instance, built once at
  /// key setup.
  std::array<Block128, 16> h_table_{};
};

}  // namespace triad::crypto
