#include "crypto/hmac.h"

#include <algorithm>
#include <stdexcept>

namespace triad::crypto {

Sha256Digest hmac_sha256(BytesView key, BytesView message) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const Sha256Digest hashed = sha256(key);
    std::copy(hashed.begin(), hashed.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(BytesView(ipad.data(), ipad.size()));
  inner.update(message);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(BytesView(opad.data(), opad.size()));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

Sha256Digest hkdf_extract(BytesView salt, BytesView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length) {
  if (length > 255 * kSha256DigestSize) {
    throw std::invalid_argument("hkdf_expand: output too long");
  }
  Bytes out;
  out.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes input = t;
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter++);
    const Sha256Digest digest = hmac_sha256(prk, input);
    t.assign(digest.begin(), digest.end());
    const std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return out;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length) {
  const Sha256Digest prk = hkdf_extract(salt, ikm);
  return hkdf_expand(BytesView(prk.data(), prk.size()), info, length);
}

}  // namespace triad::crypto
