// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869), used to derive the
// pairwise channel keys of a Triad cluster from a provisioned master
// secret (standing in for the attested key exchange SGX would provide).
#pragma once

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace triad::crypto {

Sha256Digest hmac_sha256(BytesView key, BytesView message);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256Digest hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand to `length` bytes (length <= 255 * 32).
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length);

/// Extract-then-expand convenience.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length);

}  // namespace triad::crypto
