// Authenticated point-to-point channels for Triad protocol traffic.
//
// The paper's implementation encrypts all UDP traffic with AES-256-GCM;
// keys come from SGX remote attestation, which we model as a provisioned
// cluster master secret (the trust bootstrap is orthogonal to the timing
// attacks studied here — the attacker is the OS/network, which never
// learns enclave keys). Each ordered (sender -> receiver) direction gets
// its own HKDF-derived key, and nonces are strictly-increasing counters,
// giving confidentiality, integrity, and replay protection. The attacker
// can still observe sizes and timing, and can delay/drop/reorder — which
// is exactly the capability the F+/F- attacks need.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "crypto/gcm.h"
#include "util/bytes.h"
#include "util/types.h"

namespace triad::crypto {

/// Source of per-direction AES-256 channel keys. Implementations:
/// ClusterKeyring (provisioned master secret) and crypto::SessionKeyring
/// (attestation-handshake-derived, see handshake.h).
class Keyring {
 public:
  virtual ~Keyring() = default;
  /// Key for messages sent by `sender` to `receiver`.
  [[nodiscard]] virtual Bytes direction_key(NodeId sender,
                                            NodeId receiver) const = 0;
};

/// Derives per-direction AES-256 keys from a cluster master secret.
class ClusterKeyring final : public Keyring {
 public:
  explicit ClusterKeyring(BytesView master_secret);

  [[nodiscard]] Bytes direction_key(NodeId sender,
                                    NodeId receiver) const override;

 private:
  Bytes master_secret_;
};

/// Result of opening a sealed frame.
enum class OpenError {
  kMalformed,       // frame too short / bad structure
  kWrongReceiver,   // frame addressed to someone else
  kAuthFailed,      // GCM tag mismatch (tampering or wrong key)
  kReplayed,        // nonce counter did not increase
};

/// Sealing/opening endpoint owned by one node. Maintains a send counter
/// per peer and, per sender, an anti-replay sliding window (64 frames,
/// DTLS/IPsec style): datagrams may arrive reordered, but no frame is
/// ever accepted twice and frames older than the window are dropped.
class SecureChannel {
 public:
  SecureChannel(NodeId self, const Keyring& keyring);

  /// Seals plaintext for `receiver`. The frame embeds sender, receiver,
  /// and counter in the clear (authenticated as AAD).
  [[nodiscard]] Bytes seal(NodeId receiver, BytesView plaintext);

  struct Opened {
    NodeId sender;
    Bytes plaintext;
  };

  /// Opens a frame addressed to this node.
  [[nodiscard]] std::optional<Opened> open(BytesView frame,
                                           OpenError* error = nullptr);

 private:
  [[nodiscard]] const Aes256Gcm& cipher_for(NodeId sender, NodeId receiver);

  /// Sliding-window anti-replay state for one sender.
  struct ReplayWindow {
    std::uint64_t highest = 0;   // highest counter accepted so far
    std::uint64_t bitmap = 0;    // bit i => (highest - i) was accepted
    /// Returns true (and records the counter) if the frame is fresh.
    bool accept(std::uint64_t counter);
  };

  NodeId self_;
  const Keyring& keyring_;
  std::unordered_map<std::uint64_t, Aes256Gcm> ciphers_;  // (s,r) -> cipher
  std::unordered_map<NodeId, std::uint64_t> send_counters_;
  std::unordered_map<NodeId, ReplayWindow> replay_windows_;
};

}  // namespace triad::crypto
