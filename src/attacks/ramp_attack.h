// Ramping delay attack against long-window frequency refinement.
//
// Triad+'s long-window calibration (§V-style) estimates frequency from
// two TA timestamps minutes apart, cancelling any *constant* attacker
// delay. The obvious counter-move for the attacker: make the delay grow
// linearly. If the injected delay rises by ΔD over a window of length W,
// both anchors shift unequally and the estimate is biased by ΔD/W —
// e.g. +0.5 s of ramp over a 60 s window fakes an 8300 ppm slow-down.
//
// The attack is inherently self-limiting: the delay must keep growing
// forever to sustain the bias (and eventually becomes implausible or
// trips timeouts), but the transient can still poison the refinement.
// TriadConfig::long_window_max_revision_ppm is the corresponding §V-era
// defence: bound how far a single refinement may move the frequency —
// the INC monitor already pins rate *stability*, so honest refinements
// are small.
#pragma once

#include "net/network.h"
#include "util/types.h"

namespace triad::attacks {

struct RampAttackConfig {
  NodeId victim = 0;
  NodeId ta_address = 0;
  /// Delay growth rate applied to TA->victim responses.
  double ramp_per_second = 5e-3;  // +5 ms of delay per second
  /// The ramp saturates here (an OS can't sit on packets forever
  /// without tripping resend timeouts).
  Duration max_delay = seconds(1);
};

class RampAttack final : public net::Middlebox {
 public:
  explicit RampAttack(RampAttackConfig config);

  Action on_packet(const net::Packet& packet, SimTime now) override;

  void set_active(bool active) { active_ = active; }
  [[nodiscard]] Duration current_delay(SimTime now) const;

 private:
  RampAttackConfig config_;
  bool active_ = true;
  SimTime started_at_ = -1;
};

}  // namespace triad::attacks
