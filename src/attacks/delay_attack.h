// F+ / F- calibration delay attacks (paper §III-C).
//
// The attacker controls the victim's OS/network stack. It cannot read the
// sealed payloads — in particular not the requested wait-time s — but it
// observes every packet's endpoints and timing, so it classifies each TA
// response by the elapsed time since the victim's request: a response
// arriving ~1 s later belongs to a 1 s-sleep probe, an immediate one to a
// 0 s-sleep probe.
//
//   F+ : delay long-sleep (high s) responses  -> regression slope up
//        -> F_calib > F_TSC -> victim's clock runs SLOW.
//   F- : delay short-sleep (low s) responses  -> regression slope down
//        -> F_calib < F_TSC -> victim's clock runs FAST, and the
//        max-timestamp peer policy propagates it to honest nodes.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/network.h"
#include "util/types.h"

namespace triad::attacks {

enum class AttackKind {
  kFPlus,   // delay high-s responses: slow the victim's perceived time
  kFMinus,  // delay low-s responses: quicken the victim's perceived time
};

struct DelayAttackConfig {
  AttackKind kind = AttackKind::kFMinus;
  NodeId victim = 0;
  NodeId ta_address = 0;
  /// Extra delay injected into classified responses (paper: 100 ms).
  Duration added_delay = milliseconds(100);
  /// Responses whose request->response elapsed time exceeds this are
  /// classified as high-s probes (midpoint of Triad's 0 s / 1 s sweep).
  Duration classification_threshold = milliseconds(500);
};

/// Middlebox mounting an F+ or F- attack on one victim's TA traffic.
class DelayAttack final : public net::Middlebox {
 public:
  explicit DelayAttack(DelayAttackConfig config);

  Action on_packet(const net::Packet& packet, SimTime now) override;

  /// Enables/disables the attack at runtime (scenarios switching the
  /// attack on mid-experiment).
  void set_active(bool active) { active_ = active; }
  [[nodiscard]] bool active() const { return active_; }

  struct Stats {
    std::uint64_t requests_observed = 0;
    std::uint64_t responses_observed = 0;
    std::uint64_t responses_delayed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  DelayAttackConfig config_;
  bool active_ = true;
  /// Send time of the victim's most recent TA request. Triad keeps at
  /// most one TA round-trip outstanding, so a single slot suffices.
  std::optional<SimTime> last_request_time_;
  Stats stats_;
};

}  // namespace triad::attacks
