#include "attacks/ramp_attack.h"

#include <algorithm>
#include <stdexcept>

namespace triad::attacks {

RampAttack::RampAttack(RampAttackConfig config) : config_(config) {
  if (config_.victim == config_.ta_address) {
    throw std::invalid_argument("RampAttack: victim must differ from TA");
  }
  if (config_.ramp_per_second <= 0 || config_.max_delay <= 0) {
    throw std::invalid_argument("RampAttack: invalid ramp");
  }
}

Duration RampAttack::current_delay(SimTime now) const {
  if (started_at_ < 0) return 0;
  const double ramped =
      to_seconds(now - started_at_) * config_.ramp_per_second * 1e9;
  return std::min(static_cast<Duration>(ramped), config_.max_delay);
}

net::Middlebox::Action RampAttack::on_packet(const net::Packet& packet,
                                             SimTime now) {
  if (!active_) return {};
  if (packet.src != config_.ta_address || packet.dst != config_.victim) {
    return {};
  }
  if (started_at_ < 0) started_at_ = now;
  return {.extra_delay = current_delay(now), .drop = false};
}

}  // namespace triad::attacks
