#include "attacks/delay_attack.h"

#include <stdexcept>

namespace triad::attacks {

DelayAttack::DelayAttack(DelayAttackConfig config) : config_(config) {
  if (config_.victim == config_.ta_address) {
    throw std::invalid_argument("DelayAttack: victim must differ from TA");
  }
  if (config_.added_delay < 0 || config_.classification_threshold <= 0) {
    throw std::invalid_argument("DelayAttack: invalid delays");
  }
}

net::Middlebox::Action DelayAttack::on_packet(const net::Packet& packet,
                                              SimTime now) {
  if (!active_) return {};

  if (packet.src == config_.victim && packet.dst == config_.ta_address) {
    // Victim -> TA: remember when the probe left; payload is opaque.
    ++stats_.requests_observed;
    last_request_time_ = now;
    return {};
  }

  if (packet.src == config_.ta_address && packet.dst == config_.victim) {
    ++stats_.responses_observed;
    if (!last_request_time_) return {};  // unsolicited; nothing to infer
    const Duration elapsed = now - *last_request_time_;
    const bool high_s = elapsed >= config_.classification_threshold;
    const bool target = config_.kind == AttackKind::kFPlus ? high_s : !high_s;
    if (target) {
      ++stats_.responses_delayed;
      return {.extra_delay = config_.added_delay, .drop = false};
    }
  }
  return {};
}

}  // namespace triad::attacks
