// Enclave thread with AEX-Notify semantics.
//
// An Asynchronous Enclave Exit (AEX) preempts the enclave; with
// AEX-Notify the enclave runs a registered handler when it resumes.
// Everything Triad does is driven from this hook: the monitoring thread
// knows its time-continuity was severed exactly when the handler fires.
#pragma once

#include <cstdint>
#include <functional>

#include "runtime/env.h"
#include "util/types.h"

namespace triad::enclave {

class EnclaveThread {
 public:
  explicit EnclaveThread(const runtime::Clock& clock);

  /// AEX-Notify handler, invoked on resume after each AEX. The simulated
  /// preemption is instantaneous (resume time == exit time); what the
  /// protocol cares about is that continuity was broken, plus any message
  /// delays the attacker adds around it.
  using AexHandler = std::function<void()>;
  void set_aex_handler(AexHandler handler);

  /// Delivers one AEX to this thread (called by AEX sources or directly
  /// by an attacker injecting interrupts).
  void deliver_aex();

  /// Time of the most recent AEX, or the thread start time if none yet.
  [[nodiscard]] SimTime last_aex_time() const { return last_aex_; }

  /// How long the thread has been running uninterrupted.
  [[nodiscard]] Duration uninterrupted_duration() const {
    return clock_.now() - last_aex_;
  }

  [[nodiscard]] std::uint64_t aex_count() const { return aex_count_; }

 private:
  const runtime::Clock& clock_;
  AexHandler handler_;
  SimTime last_aex_;
  std::uint64_t aex_count_ = 0;
};

}  // namespace triad::enclave
