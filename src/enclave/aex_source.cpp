#include "enclave/aex_source.h"

#include <algorithm>
#include <stdexcept>

namespace triad::enclave {

Duration TriadLikeAexDistribution::next_delay(Rng& rng) {
  static constexpr Duration kDelays[] = {milliseconds(10), milliseconds(532),
                                         milliseconds(1590)};
  return kDelays[rng.next_below(3)];
}

Duration IsolatedCoreAexDistribution::next_delay(Rng& rng) {
  // Mixture fitted to Figure 1b's CDF: the bulk of gaps cluster at
  // ~5.4 min; a minority of shorter gaps fill the lower tail.
  const double u = rng.next_double();
  double delay_s;
  if (u < 0.80) {
    delay_s = rng.normal(324.0, 4.0);  // 5.4 min mode
  } else if (u < 0.95) {
    delay_s = rng.uniform(60.0, 324.0);
  } else {
    delay_s = rng.uniform(1.0, 60.0);
  }
  return std::max(from_seconds(delay_s), milliseconds(1));
}

namespace {
constexpr Duration kTriadDelays[] = {milliseconds(10), milliseconds(532),
                                     milliseconds(1590)};
}  // namespace

MarkovAexDistribution::MarkovAexDistribution(double stickiness)
    : stickiness_(stickiness) {
  if (stickiness < 0.0 || stickiness > 1.0) {
    throw std::invalid_argument(
        "MarkovAexDistribution: stickiness out of [0,1]");
  }
}

Duration MarkovAexDistribution::next_delay(Rng& rng) {
  if (last_index_ < 0 || !rng.chance(stickiness_)) {
    // Fresh draw; when leaving a sticky state, pick one of the others.
    if (last_index_ < 0) {
      last_index_ = static_cast<int>(rng.next_below(3));
    } else {
      const auto other = static_cast<int>(rng.next_below(2));
      last_index_ = (last_index_ + 1 + other) % 3;
    }
  }
  return kTriadDelays[last_index_];
}

FixedAexDistribution::FixedAexDistribution(Duration period) : period_(period) {
  if (period <= 0) {
    throw std::invalid_argument("FixedAexDistribution: period must be > 0");
  }
}

Duration FixedAexDistribution::next_delay(Rng& /*rng*/) { return period_; }

AexDriver::AexDriver(sim::Simulation& sim, EnclaveThread& thread,
                     std::unique_ptr<AexDistribution> distribution, Rng rng)
    : sim_(sim), thread_(thread), distribution_(std::move(distribution)),
      rng_(rng) {
  if (!distribution_) {
    throw std::invalid_argument("AexDriver: null distribution");
  }
}

AexDriver::~AexDriver() { stop(); }

void AexDriver::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void AexDriver::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = {};
}

void AexDriver::set_distribution(
    std::unique_ptr<AexDistribution> distribution) {
  if (!distribution) {
    throw std::invalid_argument("AexDriver: null distribution");
  }
  distribution_ = std::move(distribution);
}

void AexDriver::arm() {
  pending_ = sim_.schedule_after(distribution_->next_delay(rng_), [this] {
    if (!running_) return;
    thread_.deliver_aex();
    if (running_) arm();  // the handler may have stopped us
  });
}

MachineInterruptHub::MachineInterruptHub(
    sim::Simulation& sim, std::unique_ptr<AexDistribution> distribution,
    Rng rng, double full_hit_probability)
    : sim_(sim), distribution_(std::move(distribution)), rng_(rng),
      full_hit_probability_(full_hit_probability) {
  if (!distribution_) {
    throw std::invalid_argument("MachineInterruptHub: null distribution");
  }
  if (full_hit_probability < 0.0 || full_hit_probability > 1.0) {
    throw std::invalid_argument(
        "MachineInterruptHub: probability out of [0,1]");
  }
}

MachineInterruptHub::~MachineInterruptHub() { stop(); }

void MachineInterruptHub::register_thread(EnclaveThread* thread) {
  if (thread == nullptr) {
    throw std::invalid_argument("MachineInterruptHub: null thread");
  }
  threads_.push_back(thread);
}

void MachineInterruptHub::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void MachineInterruptHub::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
  pending_ = {};
}

void MachineInterruptHub::arm() {
  pending_ = sim_.schedule_after(distribution_->next_delay(rng_), [this] {
    if (!running_) return;
    ++fired_;
    if (rng_.chance(full_hit_probability_)) {
      // All cores take the interrupt in the same instant — the
      // correlated taint that forces whole-cluster TA fallback.
      for (EnclaveThread* thread : threads_) thread->deliver_aex();
    } else if (!threads_.empty()) {
      // Partial hit: a random non-empty strict-ish subset of cores.
      const std::size_t spared = rng_.next_below(threads_.size());
      for (std::size_t i = 0; i < threads_.size(); ++i) {
        if (i != spared) threads_[i]->deliver_aex();
      }
    }
    if (running_) arm();
  });
}

}  // namespace triad::enclave
