#include "enclave/enclave_thread.h"

namespace triad::enclave {

EnclaveThread::EnclaveThread(sim::Simulation& sim)
    : sim_(sim), last_aex_(sim.now()) {}

void EnclaveThread::set_aex_handler(AexHandler handler) {
  handler_ = std::move(handler);
}

void EnclaveThread::deliver_aex() {
  last_aex_ = sim_.now();
  ++aex_count_;
  if (handler_) handler_();
}

}  // namespace triad::enclave
