#include "enclave/enclave_thread.h"

namespace triad::enclave {

EnclaveThread::EnclaveThread(const runtime::Clock& clock)
    : clock_(clock), last_aex_(clock.now()) {}

void EnclaveThread::set_aex_handler(AexHandler handler) {
  handler_ = std::move(handler);
}

void EnclaveThread::deliver_aex() {
  last_aex_ = clock_.now();
  ++aex_count_;
  if (handler_) handler_();
}

}  // namespace triad::enclave
