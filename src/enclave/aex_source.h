// AEX event generation.
//
// Two environments from the paper (Figure 1):
//  * Figure 1a "Triad-like": simulated AEXs with inter-arrival delays of
//    10 ms, 532 ms, or 1.59 s, each with probability 1/3, independent —
//    reproducing the original Triad testbed's interruption profile.
//  * Figure 1b "low-AEX": a monitoring core isolated from most OS
//    interruptions; the residual machine-wide interrupts arrive roughly
//    every 5.4 minutes. In the paper's setup these residual interrupts
//    hit ALL cores at once, which is what the MachineInterruptHub models
//    — it is the reason all three nodes sometimes taint simultaneously
//    and must fall back to the Time Authority (the sawtooth of Fig. 2a).
#pragma once

#include <memory>
#include <vector>

#include "enclave/enclave_thread.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/types.h"

namespace triad::enclave {

/// Distribution of delays between successive AEXs.
class AexDistribution {
 public:
  virtual ~AexDistribution() = default;
  virtual Duration next_delay(Rng& rng) = 0;
};

/// Figure 1a: {10 ms, 532 ms, 1.59 s} each with probability 1/3, iid
/// (the paper assumes independence of successive delays).
class TriadLikeAexDistribution final : public AexDistribution {
 public:
  Duration next_delay(Rng& rng) override;
};

/// Figure 1b: residual interrupts on an isolated core. Most arrive about
/// every 5.4 minutes, with a minority tail of shorter gaps.
class IsolatedCoreAexDistribution final : public AexDistribution {
 public:
  Duration next_delay(Rng& rng) override;
};

/// Triad-like delays with *correlated* successive draws: with
/// probability `stickiness` the next delay repeats the previous one,
/// otherwise it is drawn uniformly from the other two. stickiness = 1/3
/// reduces to the iid distribution. The paper assumes the original
/// testbed's successive delays were independent because the real
/// correlation was unknown — this class lets the ablation bench check
/// whether that assumption is load-bearing.
class MarkovAexDistribution final : public AexDistribution {
 public:
  explicit MarkovAexDistribution(double stickiness);
  Duration next_delay(Rng& rng) override;

 private:
  double stickiness_;
  int last_index_ = -1;
};

/// Fixed-period AEXs (tests and controlled experiments).
class FixedAexDistribution final : public AexDistribution {
 public:
  explicit FixedAexDistribution(Duration period);
  Duration next_delay(Rng& rng) override;

 private:
  Duration period_;
};

/// Drives per-thread AEXs from a distribution. The attacker controls the
/// OS scheduler, so it can stop() the driver entirely ("removing
/// interruptions", §III-A) or start() it with any distribution.
class AexDriver {
 public:
  AexDriver(sim::Simulation& sim, EnclaveThread& thread,
            std::unique_ptr<AexDistribution> distribution, Rng rng);
  ~AexDriver();
  AexDriver(const AexDriver&) = delete;
  AexDriver& operator=(const AexDriver&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Swaps the distribution (takes effect from the next AEX). Used by
  /// the Fig. 6 scenario where honest nodes move from low-AEX to
  /// Triad-like at t = 104 s.
  void set_distribution(std::unique_ptr<AexDistribution> distribution);

 private:
  void arm();

  sim::Simulation& sim_;
  EnclaveThread& thread_;
  std::unique_ptr<AexDistribution> distribution_;
  Rng rng_;
  sim::EventId pending_{};
  bool running_ = false;
};

/// Machine-wide interrupts hitting every registered thread at once
/// (correlated AEXs across nodes sharing the machine).
///
/// full_hit_probability < 1 reproduces the paper's observation that the
/// residual OS interrupts *usually* hit all cores simultaneously but
/// occasionally only some — the partial hits are what allow the
/// non-tainted nodes to serve peer timestamps (the 50–70 ms jumps of
/// Fig. 3a).
class MachineInterruptHub {
 public:
  MachineInterruptHub(sim::Simulation& sim,
                      std::unique_ptr<AexDistribution> distribution, Rng rng,
                      double full_hit_probability = 1.0);
  ~MachineInterruptHub();
  MachineInterruptHub(const MachineInterruptHub&) = delete;
  MachineInterruptHub& operator=(const MachineInterruptHub&) = delete;

  /// Non-owning; threads must outlive the hub or be removed first.
  void register_thread(EnclaveThread* thread);

  void start();
  void stop();

  [[nodiscard]] std::uint64_t interrupts_fired() const { return fired_; }

 private:
  void arm();

  sim::Simulation& sim_;
  std::unique_ptr<AexDistribution> distribution_;
  Rng rng_;
  double full_hit_probability_;
  std::vector<EnclaveThread*> threads_;
  sim::EventId pending_{};
  bool running_ = false;
  std::uint64_t fired_ = 0;
};

}  // namespace triad::enclave
