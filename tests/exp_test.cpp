// Experiment harness: Scenario wiring and Recorder instrumentation.
#include <gtest/gtest.h>

#include "exp/recorder.h"
#include "exp/scenario.h"

namespace triad::exp {
namespace {

TEST(Scenario, AddressingIsStable) {
  ScenarioConfig cfg;
  cfg.seed = 1;
  cfg.node_count = 4;
  Scenario sc(std::move(cfg));
  EXPECT_EQ(sc.node_address(0), 1u);
  EXPECT_EQ(sc.node_address(3), 4u);
  EXPECT_EQ(sc.ta_address(), 5u);
  EXPECT_EQ(sc.node_count(), 4u);
}

TEST(Scenario, NodesGetFullPeerLists) {
  ScenarioConfig cfg;
  cfg.seed = 1;
  cfg.node_count = 3;
  Scenario sc(std::move(cfg));
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& config = sc.node(i).config();
    EXPECT_EQ(config.peers.size(), 2u);
    EXPECT_EQ(config.ta_address, sc.ta_address());
    for (NodeId peer : config.peers) {
      EXPECT_NE(peer, config.id);
    }
  }
}

TEST(Scenario, MakeDistributionCoversEnvironments) {
  EXPECT_NE(make_distribution(AexEnvironment::kTriadLike), nullptr);
  EXPECT_NE(make_distribution(AexEnvironment::kLowAex), nullptr);
  EXPECT_EQ(make_distribution(AexEnvironment::kNone), nullptr);
}

TEST(Scenario, NoneEnvironmentSeesNoAex) {
  ScenarioConfig cfg;
  cfg.seed = 2;
  cfg.machine_interrupts = false;
  cfg.environments = {AexEnvironment::kNone, AexEnvironment::kNone,
                      AexEnvironment::kNone};
  Scenario sc(std::move(cfg));
  sc.start();
  sc.run_until(minutes(30));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sc.node(i).stats().aex_count, 0u);
  }
}

TEST(Scenario, TriadLikeEnvironmentProducesExpectedAexRate) {
  ScenarioConfig cfg;
  cfg.seed = 3;
  cfg.machine_interrupts = false;
  Scenario sc(std::move(cfg));
  sc.start();
  sc.run_until(minutes(10));
  // Mean inter-AEX gap = (10+532+1590)/3 ms ≈ 710 ms -> ~845 per 10 min.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(static_cast<double>(sc.node(i).stats().aex_count), 845.0,
                120.0);
  }
}

TEST(Scenario, EnvironmentSwitchChangesAexRate) {
  ScenarioConfig cfg;
  cfg.seed = 4;
  cfg.machine_interrupts = false;
  cfg.environments = {AexEnvironment::kNone, AexEnvironment::kNone,
                      AexEnvironment::kNone};
  Scenario sc(std::move(cfg));
  sc.switch_environment_at(0, AexEnvironment::kTriadLike, minutes(5));
  sc.start();
  sc.run_until(minutes(5));
  EXPECT_EQ(sc.node(0).stats().aex_count, 0u);
  sc.run_until(minutes(10));
  EXPECT_GT(sc.node(0).stats().aex_count, 300u);
  EXPECT_EQ(sc.node(1).stats().aex_count, 0u);  // others untouched
}

TEST(Scenario, MachineInterruptsHitMultipleNodesTogether) {
  ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.machine_full_hit_probability = 1.0;
  cfg.environments = {AexEnvironment::kLowAex, AexEnvironment::kLowAex,
                      AexEnvironment::kLowAex};
  Scenario sc(std::move(cfg));
  sc.start();
  sc.run_until(hours(1));
  ASSERT_NE(sc.machine_hub(), nullptr);
  EXPECT_GT(sc.machine_hub()->interrupts_fired(), 5u);
  // All nodes saw exactly the hub's interrupts.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sc.node(i).stats().aex_count,
              sc.machine_hub()->interrupts_fired());
  }
}

TEST(Scenario, MachinesGetIndependentInterruptHubs) {
  ScenarioConfig cfg;
  cfg.seed = 10;
  cfg.machine_full_hit_probability = 1.0;
  cfg.environments = {AexEnvironment::kLowAex, AexEnvironment::kLowAex,
                      AexEnvironment::kLowAex};
  cfg.machine_of = {0, 0, 1};  // node 3 on its own machine
  Scenario sc(std::move(cfg));
  EXPECT_EQ(sc.machine_count(), 2u);
  sc.start();
  sc.run_until(hours(2));
  // Nodes 1 and 2 share every interrupt; node 3's are independent.
  EXPECT_EQ(sc.node(0).stats().aex_count, sc.node(1).stats().aex_count);
  EXPECT_EQ(sc.node(0).monitoring_thread().last_aex_time(),
            sc.node(1).monitoring_thread().last_aex_time());
  EXPECT_NE(sc.node(2).monitoring_thread().last_aex_time(),
            sc.node(0).monitoring_thread().last_aex_time());
}

TEST(Scenario, WanLinksApplyBetweenMachinesOnly) {
  ScenarioConfig cfg;
  cfg.seed = 11;
  cfg.machine_interrupts = false;
  cfg.machine_of = {0, 0, 1};
  cfg.ta_machine = 0;
  cfg.wan_base_delay = milliseconds(50);
  cfg.wan_jitter = microseconds(100);
  Scenario sc(std::move(cfg));

  // Round-trip probe node1 <-> node2 (same machine) vs node1 <-> node3.
  SimTime local_arrival = -1, wan_arrival = -1;
  sc.network().attach(90, [&](const net::Packet& p) {
    (void)p;
  });
  // Measure one-way delays directly via raw sends to the nodes; the
  // nodes will drop unauthenticated junk but the delivery time is what
  // the middlebox-free network decides. Attach probes instead:
  sc.network().attach(91, [&](const net::Packet&) {
    local_arrival = sc.simulation().now();
  });
  sc.network().attach(92, [&](const net::Packet&) {
    wan_arrival = sc.simulation().now();
  });
  // 91/92 are extra endpoints on no particular machine; use node
  // addresses as sources to exercise the per-link override.
  sc.network().send(sc.node_address(0), 91, Bytes{1});  // default delay
  sc.simulation().run_until(seconds(1));
  // node1 -> node3 crosses machines.
  SimTime n3_arrival = -1;
  sc.network().detach(sc.node_address(2));
  sc.network().attach(sc.node_address(2), [&](const net::Packet&) {
    n3_arrival = sc.simulation().now();
  });
  const SimTime sent_at = sc.simulation().now();
  sc.network().send(sc.node_address(0), sc.node_address(2), Bytes{1});
  sc.run_for(seconds(1));
  EXPECT_GE(n3_arrival - sent_at, milliseconds(50));
  EXPECT_LT(n3_arrival - sent_at, milliseconds(60));
  // The probe through the default path was LAN-fast.
  EXPECT_GE(local_arrival, 0);
  EXPECT_LT(local_arrival, milliseconds(5));
}

TEST(Scenario, GeoDistributedClusterStillCalibrates) {
  ScenarioConfig cfg;
  cfg.seed = 12;
  cfg.machine_of = {0, 1, 2};  // one node per site
  cfg.ta_machine = 0;
  Scenario sc(std::move(cfg));
  sc.start();
  sc.run_until(minutes(10));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sc.node(i).state(), NodeState::kOk);
    // Symmetric WAN delay cancels in the slope: F_calib stays accurate.
    EXPECT_NEAR(sc.node(i).calibrated_frequency_hz(),
                tsc::kPaperTscFrequencyHz, 1.5e6);
  }
  // Reference offset of a TA-remote node ≈ one-way WAN delay (~20 ms
  // behind), visible as negative drift right after calibration.
  EXPECT_LT(sc.node(1).current_time() - sc.simulation().now(),
            -milliseconds(5));
}

TEST(Scenario, AttestedKeysRunTheFullProtocol) {
  // Production path: channel keys come from X25519 attestation
  // handshakes instead of a provisioned secret; the protocol must behave
  // identically.
  ScenarioConfig cfg;
  cfg.seed = 13;
  cfg.attested_keys = true;
  Scenario sc(std::move(cfg));
  sc.start();
  sc.run_until(minutes(5));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sc.node(i).state(), NodeState::kOk);
    EXPECT_NEAR(sc.node(i).calibrated_frequency_hz(),
                tsc::kPaperTscFrequencyHz, 0.6e6);
    EXPECT_EQ(sc.node(i).stats().bad_frames, 0u);
  }
  EXPECT_EQ(sc.time_authority().stats().rejected_frames, 0u);
}

TEST(Recorder, SeriesNamesAndSampling) {
  ScenarioConfig cfg;
  cfg.seed = 6;
  Scenario sc(std::move(cfg));
  Recorder rec(sc, seconds(2));
  sc.start();
  sc.run_until(minutes(2));

  EXPECT_EQ(rec.drift_ms(0).name(), "drift_ms_node1");
  EXPECT_EQ(rec.ta_references(2).name(), "ta_refs_node3");
  // 2 s sampling over 120 s -> 60 samples for counters; drift starts
  // only after calibration completes.
  EXPECT_EQ(rec.aex_count(0).samples().size(), 60u);
  EXPECT_GT(rec.drift_ms(0).samples().size(), 30u);
  EXPECT_LT(rec.drift_ms(0).samples().size(), 61u);
}

TEST(Recorder, StateChangesRecorded) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  Scenario sc(std::move(cfg));
  Recorder rec(sc);
  sc.start();
  sc.run_until(minutes(2));
  // Every node at least went FullCalib -> Ok.
  bool saw_calib_to_ok = false;
  for (const auto& ev : rec.state_changes()) {
    if (ev.from == NodeState::kFullCalib && ev.to == NodeState::kOk) {
      saw_calib_to_ok = true;
    }
  }
  EXPECT_TRUE(saw_calib_to_ok);
  // State series mirror the change log.
  EXPECT_FALSE(rec.state(0).empty());
}

TEST(Recorder, AdoptionsCarrySourceAndStep) {
  ScenarioConfig cfg;
  cfg.seed = 8;
  Scenario sc(std::move(cfg));
  Recorder rec(sc);
  sc.start();
  sc.run_until(minutes(5));
  ASSERT_FALSE(rec.adoptions().empty());
  for (const auto& adoption : rec.adoptions()) {
    EXPECT_LT(adoption.node, 3u);
    EXPECT_NE(adoption.source, 0u);
    EXPECT_GT(adoption.at, 0);
  }
}

TEST(Recorder, DriftRateOfCleanNodeIsSmall) {
  ScenarioConfig cfg;
  cfg.seed = 9;
  cfg.machine_interrupts = false;
  cfg.environments = {AexEnvironment::kNone, AexEnvironment::kNone,
                      AexEnvironment::kNone};
  Scenario sc(std::move(cfg));
  Recorder rec(sc);
  sc.start();
  sc.run_until(minutes(10));
  // Pure extrapolation at the calibrated frequency: |rate| < 1 ms/s.
  EXPECT_LT(std::abs(rec.drift_rate_ms_per_s(0, minutes(1), minutes(10))),
            1.0);
}

}  // namespace
}  // namespace triad::exp
