// Attestation handshake: quote issuance/verification, session agreement,
// impersonation/measurement rejection, and end-to-end "handshake keys
// drive a real Triad cluster" integration.
#include <gtest/gtest.h>

#include "crypto/handshake.h"
#include "net/network.h"
#include "runtime/sim_env.h"
#include "sim/simulation.h"
#include "ta/time_authority.h"
#include "triad/node.h"

namespace triad::crypto {
namespace {

Measurement enclave_measurement() {
  return sha256(Bytes{'t', 'r', 'i', 'a', 'd', '-', 'v', '1'});
}

struct HandshakeFixture {
  AttestationAuthority authority{Bytes(32, 0x7e)};
  Measurement measurement = enclave_measurement();
  HandshakeParty alice{authority, 1, measurement, 1001};
  HandshakeParty bob{authority, 2, measurement, 1002};
};

TEST(Quote, EncodeDecodeRoundTrip) {
  HandshakeFixture f;
  const auto decoded = Quote::decode(f.alice.offer());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->node, 1u);
  EXPECT_EQ(decoded->measurement, f.measurement);
  EXPECT_TRUE(f.authority.verify(*decoded));
}

TEST(Quote, TruncatedRejected) {
  HandshakeFixture f;
  Bytes offer = f.alice.offer();
  for (std::size_t len = 0; len < offer.size(); len += 7) {
    EXPECT_FALSE(Quote::decode(BytesView(offer.data(), len)).has_value());
  }
}

TEST(AttestationAuthority, ForgedQuoteRejected) {
  HandshakeFixture f;
  auto quote = *Quote::decode(f.alice.offer());
  quote.node = 9;  // claim a different identity
  EXPECT_FALSE(f.authority.verify(quote));
  auto quote2 = *Quote::decode(f.alice.offer());
  quote2.dh_public[0] ^= 1;  // swap in another key
  EXPECT_FALSE(f.authority.verify(quote2));
}

TEST(AttestationAuthority, DifferentRootRejects) {
  HandshakeFixture f;
  AttestationAuthority other{Bytes(32, 0x11)};
  EXPECT_FALSE(other.verify(*Quote::decode(f.alice.offer())));
  EXPECT_THROW(AttestationAuthority(Bytes(8, 1)), std::invalid_argument);
}

TEST(Handshake, BothSidesDeriveTheSameSecret) {
  HandshakeFixture f;
  const auto at_bob = f.bob.accept(f.alice.offer(), f.measurement);
  const auto at_alice = f.alice.accept(f.bob.offer(), f.measurement);
  ASSERT_TRUE(at_bob.has_value());
  ASSERT_TRUE(at_alice.has_value());
  EXPECT_EQ(at_bob->peer, 1u);
  EXPECT_EQ(at_alice->peer, 2u);
  EXPECT_EQ(at_bob->session_secret, at_alice->session_secret);
  EXPECT_EQ(at_bob->session_secret.size(), 32u);
}

TEST(Handshake, DistinctPairsGetDistinctSecrets) {
  HandshakeFixture f;
  HandshakeParty carol{f.authority, 3, f.measurement, 1003};
  const auto ab = f.alice.accept(f.bob.offer(), f.measurement);
  const auto ac = f.alice.accept(carol.offer(), f.measurement);
  ASSERT_TRUE(ab && ac);
  EXPECT_NE(ab->session_secret, ac->session_secret);
}

TEST(Handshake, WrongMeasurementRejected) {
  HandshakeFixture f;
  // Bob runs modified code: his quote carries a different measurement.
  const Measurement evil = sha256(Bytes{'e', 'v', 'i', 'l'});
  HandshakeParty mallory{f.authority, 2, evil, 1002};
  EXPECT_FALSE(f.alice.accept(mallory.offer(), f.measurement).has_value());
}

TEST(Handshake, UnattestedKeyRejected) {
  // The OS attacker substitutes its own DH key in a captured quote: the
  // MAC no longer verifies.
  HandshakeFixture f;
  auto quote = *Quote::decode(f.bob.offer());
  quote.dh_public[5] ^= 0x40;
  EXPECT_FALSE(f.alice.accept(quote.encode(), f.measurement).has_value());
}

TEST(Handshake, ReflectionRejected) {
  HandshakeFixture f;
  // Alice's own offer replayed back at her.
  EXPECT_FALSE(f.alice.accept(f.alice.offer(), f.measurement).has_value());
}

TEST(Handshake, GarbageRejected) {
  HandshakeFixture f;
  EXPECT_FALSE(f.alice.accept(Bytes{1, 2, 3}, f.measurement).has_value());
  EXPECT_FALSE(f.alice.accept(Bytes{}, f.measurement).has_value());
}

TEST(SessionKeyring, DirectionalKeysFromSessions) {
  HandshakeFixture f;
  const auto ab = f.alice.accept(f.bob.offer(), f.measurement);
  ASSERT_TRUE(ab.has_value());

  SessionKeyring alice_ring;
  alice_ring.set_self(1);
  alice_ring.install(2, ab->session_secret);
  SessionKeyring bob_ring;
  bob_ring.set_self(2);
  bob_ring.install(1, f.bob.accept(f.alice.offer(), f.measurement)
                          ->session_secret);

  // Both ends derive the same directional keys.
  EXPECT_EQ(alice_ring.direction_key(1, 2), bob_ring.direction_key(1, 2));
  EXPECT_EQ(alice_ring.direction_key(2, 1), bob_ring.direction_key(2, 1));
  EXPECT_NE(alice_ring.direction_key(1, 2), alice_ring.direction_key(2, 1));
  EXPECT_TRUE(alice_ring.has_session(2));
  EXPECT_FALSE(alice_ring.has_session(3));
  EXPECT_THROW((void)alice_ring.direction_key(1, 3), std::out_of_range);
}

TEST(SessionKeyring, DrivesSecureChannel) {
  HandshakeFixture f;
  SessionKeyring alice_ring, bob_ring;
  alice_ring.set_self(1);
  bob_ring.set_self(2);
  alice_ring.install(2,
                     f.alice.accept(f.bob.offer(), f.measurement)
                         ->session_secret);
  bob_ring.install(1, f.bob.accept(f.alice.offer(), f.measurement)
                          ->session_secret);

  SecureChannel alice(1, alice_ring);
  SecureChannel bob(2, bob_ring);
  const Bytes message = {42, 43, 44};
  const auto opened = bob.open(alice.seal(2, message));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->plaintext, message);
}

TEST(HandshakeIntegration, TriadClusterOnHandshakeDerivedKeys) {
  // Full path: 3 enclaves + the TA each attest, pairwise handshakes
  // populate SessionKeyrings, and the Triad protocol runs on those keys.
  AttestationAuthority authority{Bytes(32, 0x7e)};
  const Measurement measurement = enclave_measurement();

  constexpr NodeId kTa = 4;
  std::vector<NodeId> ids = {1, 2, 3, kTa};
  std::vector<std::unique_ptr<HandshakeParty>> parties;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    parties.push_back(std::make_unique<HandshakeParty>(
        authority, ids[i], measurement, 2000 + i));
  }
  std::vector<SessionKeyring> rings(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    rings[i].set_self(ids[i]);
    for (std::size_t j = 0; j < ids.size(); ++j) {
      if (i == j) continue;
      const auto result =
          parties[i]->accept(parties[j]->offer(), measurement);
      ASSERT_TRUE(result.has_value());
      rings[i].install(ids[j], result->session_secret);
    }
  }

  sim::Simulation sim(777);
  net::Network net(sim, std::make_unique<net::FixedDelay>(microseconds(200)));
  runtime::SimEnv env(sim, net);
  ta::TimeAuthority time_authority(env, kTa, rings[3]);

  std::vector<std::unique_ptr<TriadNode>> nodes;
  for (std::size_t i = 0; i < 3; ++i) {
    TriadConfig config;
    config.id = ids[i];
    config.ta_address = kTa;
    for (std::size_t j = 0; j < 3; ++j) {
      if (j != i) config.peers.push_back(ids[j]);
    }
    nodes.push_back(std::make_unique<TriadNode>(
        env, rings[i], config, TriadNode::HardwareParams{}));
  }
  for (auto& node : nodes) node->start();
  sim.run_until(minutes(2));

  for (auto& node : nodes) {
    EXPECT_EQ(node->state(), NodeState::kOk);
    EXPECT_NEAR(node->calibrated_frequency_hz(), tsc::kPaperTscFrequencyHz,
                1e4);
    EXPECT_TRUE(node->serve_timestamp().has_value());
  }
}

}  // namespace
}  // namespace triad::crypto
