// T3E baseline: TPM clock model (drift envelope, command latency,
// attacker delays) and the T3E node's quota/stall semantics.
#include <gtest/gtest.h>

#include "runtime/sim_env.h"
#include "sim/simulation.h"
#include "t3e/t3e_node.h"
#include "t3e/tpm.h"

namespace triad::t3e {
namespace {

struct TpmFixture {
  sim::Simulation sim{42};
  runtime::SimEnv env{sim};
  Tpm tpm{env, TpmParams{}, Rng(7)};
};

TEST(Tpm, ClockAdvancesAtConfiguredRate) {
  sim::Simulation sim;
  runtime::SimEnv env{sim};
  Tpm tpm(env, TpmParams{.rate = 1.0}, Rng(1));
  sim.run_until(seconds(10));
  EXPECT_NEAR(static_cast<double>(tpm.clock_now()),
              static_cast<double>(seconds(10)), 2.0);
}

TEST(Tpm, MisconfiguredRateDrifts) {
  sim::Simulation sim;
  runtime::SimEnv env{sim};
  Tpm tpm(env, TpmParams{.rate = 1.325}, Rng(1));  // spec maximum
  sim.run_until(seconds(100));
  EXPECT_NEAR(to_seconds(tpm.clock_now()), 132.5, 0.01);
}

TEST(Tpm, RateChangeKeepsClockContinuous) {
  sim::Simulation sim;
  runtime::SimEnv env{sim};
  Tpm tpm(env, TpmParams{}, Rng(1));
  sim.run_until(seconds(5));
  const SimTime before = tpm.clock_now();
  tpm.configure_rate(0.675);
  EXPECT_NEAR(static_cast<double>(tpm.clock_now()),
              static_cast<double>(before), 2.0);
  sim.run_until(seconds(15));
  EXPECT_NEAR(to_seconds(tpm.clock_now()), 5.0 + 10.0 * 0.675, 0.01);
}

TEST(Tpm, RateOutsideSpecEnvelopeThrows) {
  sim::Simulation sim;
  runtime::SimEnv env{sim};
  EXPECT_THROW(Tpm(env, TpmParams{.rate = 0.5}, Rng(1)),
               std::invalid_argument);
  Tpm tpm(env, TpmParams{}, Rng(1));
  EXPECT_THROW(tpm.configure_rate(1.4), std::invalid_argument);
  EXPECT_THROW(tpm.configure_rate(0.6), std::invalid_argument);
}

TEST(Tpm, ReadClockDeliversAfterLatency) {
  TpmFixture f;
  SimTime delivered_at = -1;
  SimTime value = -1;
  f.tpm.read_clock([&](SimTime t) {
    delivered_at = f.sim.now();
    value = t;
  });
  f.sim.run();
  EXPECT_GE(delivered_at, milliseconds(3));
  EXPECT_LT(delivered_at, milliseconds(5));
  // Sampled mid-flight, before the response travelled back.
  EXPECT_LT(value, delivered_at);
  EXPECT_EQ(f.tpm.commands_served(), 1u);
}

TEST(Tpm, AttackerDelayHookPostponesDelivery) {
  TpmFixture f;
  f.tpm.set_response_delay_hook([] { return seconds(1); });
  SimTime delivered_at = -1;
  SimTime value = -1;
  f.tpm.read_clock([&](SimTime t) {
    delivered_at = f.sim.now();
    value = t;
  });
  f.sim.run();
  EXPECT_GE(delivered_at, seconds(1));
  // The sampled value is from before the delay: the timestamp is stale
  // by ~1 s on arrival — exactly what T3E's quotas defend against.
  EXPECT_LT(value, milliseconds(10));
}

TEST(Tpm, NullCallbackThrows) {
  TpmFixture f;
  EXPECT_THROW(f.tpm.read_clock(nullptr), std::invalid_argument);
}

struct T3eFixture {
  T3eFixture() { node.start(); }
  sim::Simulation sim{42};
  runtime::SimEnv env{sim};
  Tpm tpm{env, TpmParams{}, Rng(7)};
  T3eConfig config{};
  T3eNode node{env, tpm, config};
};

TEST(T3eNode, ServesAfterFirstRead) {
  T3eFixture f;
  EXPECT_FALSE(f.node.serve_timestamp().has_value());  // nothing yet
  f.sim.run_until(milliseconds(10));
  const auto ts = f.node.serve_timestamp();
  ASSERT_TRUE(ts.has_value());
  // TPM honest: served time within refresh-period + latency of truth.
  EXPECT_LT(std::abs(*ts - f.sim.now()), milliseconds(10));
}

TEST(T3eNode, TimestampsMonotonic) {
  T3eFixture f;
  f.sim.run_until(milliseconds(10));
  SimTime prev = 0;
  for (int i = 0; i < 50; ++i) {
    f.sim.run_for(milliseconds(1));
    if (const auto ts = f.node.serve_timestamp()) {
      EXPECT_GT(*ts, prev);
      prev = *ts;
    }
  }
}

TEST(T3eNode, HonestStalenessBoundedByRefreshPeriod) {
  T3eFixture f;
  f.sim.run_until(seconds(10));
  const auto ts = f.node.serve_timestamp();
  ASSERT_TRUE(ts.has_value());
  // Raw reading: behind truth by at most refresh period + latency.
  EXPECT_LT(f.sim.now() - *ts,
            f.config.refresh_period + milliseconds(10));
  EXPECT_GE(f.sim.now() - *ts, 0);
}

TEST(T3eNode, UseQuotaStallsServing) {
  sim::Simulation sim(1);
  runtime::SimEnv env{sim};
  Tpm tpm(env, TpmParams{}, Rng(2));
  T3eConfig config;
  config.max_uses = 5;
  config.refresh_period = seconds(10);  // no refresh within the test
  T3eNode node(env, tpm, config);
  node.start();
  sim.run_until(milliseconds(10));

  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(node.serve_timestamp().has_value()) << i;
  }
  EXPECT_FALSE(node.available());
  EXPECT_FALSE(node.serve_timestamp().has_value());
  EXPECT_EQ(node.stats().stalled, 1u);
}

TEST(T3eNode, QuotaReplenishedByFreshReading) {
  sim::Simulation sim(1);
  runtime::SimEnv env{sim};
  Tpm tpm(env, TpmParams{}, Rng(2));
  T3eConfig config;
  config.max_uses = 2;
  config.refresh_period = milliseconds(20);
  T3eNode node(env, tpm, config);
  node.start();
  sim.run_until(milliseconds(10));
  EXPECT_TRUE(node.serve_timestamp().has_value());
  EXPECT_TRUE(node.serve_timestamp().has_value());
  EXPECT_FALSE(node.serve_timestamp().has_value());
  sim.run_until(milliseconds(40));  // next refresh landed
  EXPECT_TRUE(node.serve_timestamp().has_value());
}

TEST(T3eNode, BlockingTpmResponsesCausesStallNotSilentStretch) {
  // The §II-A contrast with Triad: to stretch one timestamp forever the
  // attacker must block fresh readings — then the quota depletes and the
  // node goes loudly unavailable instead of serving stretched time.
  sim::Simulation sim(1);
  runtime::SimEnv env{sim};
  Tpm tpm(env, TpmParams{}, Rng(2));
  T3eConfig config;
  config.max_uses = 10;
  config.refresh_period = milliseconds(50);
  T3eNode node(env, tpm, config);
  node.start();
  sim.run_until(seconds(1));  // healthy warm-up

  tpm.set_response_delay_hook([] { return hours(10); });  // blockade
  int served = 0, refused = 0;
  sim::PeriodicTimer load(sim, milliseconds(5), [&] {
    if (node.serve_timestamp()) {
      ++served;
    } else {
      ++refused;
    }
  });
  sim.run_until(seconds(11));
  // At most one quota's worth of answers after the blockade begins.
  EXPECT_LE(served, 10 + 1);
  EXPECT_GT(refused, 1900);
}

TEST(T3eNode, SteadyDelayShiftsTimeBoundedByDelay) {
  // Uniform 300 ms response delaying: served time lags truth by ~300 ms
  // plus the refresh period — bounded, unlike Triad's compounding F-.
  sim::Simulation sim(1);
  runtime::SimEnv env{sim};
  Tpm tpm(env, TpmParams{}, Rng(2));
  tpm.set_response_delay_hook([] { return milliseconds(300); });
  T3eNode node(env, tpm, T3eConfig{});
  node.start();
  sim.run_until(seconds(10));
  const auto ts = node.serve_timestamp();
  ASSERT_TRUE(ts.has_value());
  const Duration lag = sim.now() - *ts;
  EXPECT_GT(lag, milliseconds(280));
  EXPECT_LT(lag, milliseconds(400));
}

TEST(T3eNode, TpmRateAttackIsInvisibleToT3e) {
  // ±32.5 % TPM drift: the node keeps serving happily while its notion
  // of time races ahead — T3E has no cross-check (unlike Triad's INC
  // monitor + peers).
  sim::Simulation sim(1);
  runtime::SimEnv env{sim};
  Tpm tpm(env, TpmParams{.rate = 1.325}, Rng(2));
  T3eNode node(env, tpm, T3eConfig{});
  node.start();
  sim.run_until(seconds(100));
  const auto ts = node.serve_timestamp();
  ASSERT_TRUE(ts.has_value());
  // ~32.5 s of silent forward drift after 100 s.
  EXPECT_GT(*ts - sim.now(), seconds(30));
  EXPECT_EQ(node.stats().stalled, 0u);
}

TEST(T3eNode, StaleReorderedReadingIgnored) {
  sim::Simulation sim(1);
  runtime::SimEnv env{sim};
  Tpm tpm(env, TpmParams{}, Rng(2));
  // First response delayed 500 ms, later ones fast: the late (older)
  // response must not overwrite a newer reading.
  int call = 0;
  tpm.set_response_delay_hook([&call]() -> Duration {
    return ++call == 1 ? milliseconds(500) : 0;
  });
  T3eConfig config;
  config.refresh_period = milliseconds(50);
  T3eNode node(env, tpm, config);
  node.start();
  sim.run_until(seconds(2));
  const auto ts = node.serve_timestamp();
  ASSERT_TRUE(ts.has_value());
  EXPECT_LT(std::abs(*ts - sim.now()), milliseconds(60));
}

TEST(T3eNode, InvalidConfigThrows) {
  sim::Simulation sim(1);
  runtime::SimEnv env{sim};
  Tpm tpm(env, TpmParams{}, Rng(2));
  T3eConfig bad;
  bad.max_uses = 0;
  EXPECT_THROW(T3eNode(env, tpm, bad), std::invalid_argument);
  bad = {};
  bad.refresh_period = 0;
  EXPECT_THROW(T3eNode(env, tpm, bad), std::invalid_argument);
}

TEST(T3eNode, StartTwiceThrows) {
  T3eFixture f;
  EXPECT_THROW(f.node.start(), std::logic_error);
}

}  // namespace
}  // namespace triad::t3e
