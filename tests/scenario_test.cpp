// Integration tests on full scenarios: the paper's fault-free behaviour
// (RQ A.2), the F+/F- attacks (RQ B), and the Triad+ hardening. These are
// the executable versions of the claims in EXPERIMENTS.md, at shorter
// durations so the suite stays fast.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "exp/recorder.h"
#include "attacks/ramp_attack.h"
#include "exp/scenario.h"
#include "obs/export.h"
#include "resilient/triad_plus.h"

namespace triad::exp {
namespace {

ScenarioConfig base_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  return cfg;
}

TEST(ScenarioIntegration, FaultFreeClusterReachesAndKeepsOk) {
  Scenario sc(base_config(21));
  sc.start();
  sc.run_until(minutes(10));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sc.node(i).stats().full_calibrations, 1u)
        << "paper: full calibration happens exactly once without attacks";
    // Over 10 min the initial calibration (repeatedly interrupted by
    // Triad-like AEXs) still weighs in; the 30-min run below matches the
    // paper's > 98%.
    EXPECT_GT(sc.node(i).availability(), 0.92);
    // Calibrated within ~200 ppm of the true frequency.
    EXPECT_NEAR(sc.node(i).calibrated_frequency_hz(),
                tsc::kPaperTscFrequencyHz, 0.6e6);
  }
}

TEST(ScenarioIntegration, FaultFreeDriftBoundedBySawtooth) {
  Scenario sc(base_config(22));
  Recorder rec(sc);
  sc.start();
  sc.run_until(minutes(30));
  for (std::size_t i = 0; i < 3; ++i) {
    // Drift stays within ±150 ms: ppm-level rates reset by TA contacts.
    EXPECT_LT(std::abs(rec.drift_ms(i).max_value()), 150.0);
    EXPECT_LT(std::abs(rec.drift_ms(i).min_value()), 150.0);
    // And TA references do occur (the sawtooth resets, Fig. 2b).
    EXPECT_GE(rec.ta_references(i).max_value(), 1.0);
  }
}

TEST(ScenarioIntegration, ClusterFollowsFastestClock) {
  // RQ A.2: the node with the lowest F_calib (fastest clock) leads; it
  // adopts peer timestamps rarely, the others often.
  Scenario sc(base_config(23));
  sc.start();
  sc.run_until(minutes(20));
  std::size_t fastest = 0;
  for (std::size_t i = 1; i < 3; ++i) {
    if (sc.node(i).calibrated_frequency_hz() <
        sc.node(fastest).calibrated_frequency_hz()) {
      fastest = i;
    }
  }
  for (std::size_t i = 0; i < 3; ++i) {
    if (i == fastest) continue;
    EXPECT_GT(sc.node(i).stats().peer_adoptions,
              sc.node(fastest).stats().peer_adoptions);
  }
}

TEST(ScenarioIntegration, TimestampsMonotonicThroughoutScenario) {
  Scenario sc(base_config(24));
  sc.start();
  // Sample timestamps from node 1 every 100 ms for 5 minutes.
  SimTime prev = 0;
  bool violated = false;
  sim::PeriodicTimer sampler(sc.simulation(), milliseconds(100), [&] {
    const auto ts = sc.node(0).serve_timestamp();
    if (ts) {
      if (*ts <= prev) violated = true;
      prev = *ts;
    }
  });
  sc.run_until(minutes(5));
  EXPECT_FALSE(violated);
  EXPECT_GT(sc.node(0).stats().timestamps_served, 1000u);
}

TEST(ScenarioIntegration, FPlusAttackSlowsVictimClock) {
  // Fig. 4/5: +100 ms on 1 s-sleep responses -> F_calib ≈ 1.1 * F_TSC,
  // victim drifts at ≈ -91 ms/s between refreshes.
  ScenarioConfig cfg = base_config(25);
  Scenario sc(std::move(cfg));
  attacks::DelayAttackConfig attack;
  attack.kind = attacks::AttackKind::kFPlus;
  attack.victim = sc.node_address(2);
  attack.ta_address = sc.ta_address();
  sc.add_delay_attack(attack);
  Recorder rec(sc);
  sc.start();
  sc.run_until(minutes(10));

  EXPECT_NEAR(sc.node(2).calibrated_frequency_hz(), 3190.0e6, 3e6)
      << "paper Fig. 5: F3_calib ≈ 3191 MHz";
  // Victim oscillates down to about -150 ms (Triad-like AEXs; Fig. 5).
  EXPECT_LT(rec.drift_ms(2).min_value(), -80.0);
  // Honest nodes remain unaffected (their drift stays ppm-scale).
  EXPECT_LT(std::abs(rec.drift_ms(0).min_value()), 60.0);
  EXPECT_LT(std::abs(rec.drift_ms(1).min_value()), 60.0);
  EXPECT_NEAR(sc.node(0).calibrated_frequency_hz(),
              tsc::kPaperTscFrequencyHz, 0.6e6);
}

TEST(ScenarioIntegration, FMinusAttackInfectsHonestNodes) {
  // Fig. 6: +100 ms on 0 s-sleep responses -> F_calib ≈ 0.9 * F_TSC, the
  // victim's clock runs ~ +113 ms/s and honest nodes jump forward onto it.
  ScenarioConfig cfg = base_config(26);
  Scenario sc(std::move(cfg));
  attacks::DelayAttackConfig attack;
  attack.kind = attacks::AttackKind::kFMinus;
  attack.victim = sc.node_address(2);
  attack.ta_address = sc.ta_address();
  sc.add_delay_attack(attack);
  Recorder rec(sc);
  sc.start();
  sc.run_until(minutes(5));

  EXPECT_NEAR(sc.node(2).calibrated_frequency_hz(), 2610.0e6, 3e6)
      << "paper Fig. 6: F3_calib ≈ 2610 MHz";
  // Honest nodes acquire large positive drift: the infection.
  EXPECT_GT(rec.drift_ms(0).max_value(), 500.0);
  EXPECT_GT(rec.drift_ms(1).max_value(), 500.0);
  // And they adopt timestamps from the compromised node.
  bool adopted_from_victim = false;
  for (const auto& ev : rec.adoptions()) {
    if (ev.node != 2 && ev.source == sc.node_address(2) && ev.step() > 0) {
      adopted_from_victim = true;
    }
  }
  EXPECT_TRUE(adopted_from_victim);
}

TEST(ScenarioIntegration, FMinusHonestNodesSafeWhileLowAex) {
  // Fig. 6 structure: honest nodes in the low-AEX environment stay clean
  // (they never ask peers), and get infected only after switching to
  // Triad-like AEXs.
  ScenarioConfig cfg = base_config(27);
  cfg.environments = {AexEnvironment::kLowAex, AexEnvironment::kLowAex,
                      AexEnvironment::kTriadLike};
  cfg.machine_interrupts = false;  // isolate the propagation mechanism
  Scenario sc(std::move(cfg));
  attacks::DelayAttackConfig attack;
  attack.kind = attacks::AttackKind::kFMinus;
  attack.victim = sc.node_address(2);
  attack.ta_address = sc.ta_address();
  sc.add_delay_attack(attack);
  const SimTime switch_at = seconds(104);
  sc.switch_environment_at(0, AexEnvironment::kTriadLike, switch_at);
  sc.switch_environment_at(1, AexEnvironment::kTriadLike, switch_at);
  Recorder rec(sc);
  sc.start();
  sc.run_until(seconds(300));

  // Before the switch: honest drift is ppm-scale.
  const double drift_before = rec.drift_ms(0).value_at(switch_at);
  EXPECT_LT(std::abs(drift_before), 10.0);
  // After: infection ratchets the drift far beyond the clean level.
  EXPECT_GT(rec.drift_ms(0).value_at(seconds(300)), 100.0);
  EXPECT_GT(rec.drift_ms(1).value_at(seconds(300)), 100.0);
  // AEX counts confirm the environment switch (Fig. 6b shape).
  EXPECT_LT(rec.aex_count(0).value_at(switch_at), 5.0);
  EXPECT_GT(rec.aex_count(0).value_at(seconds(300)), 100.0);
}

TEST(ScenarioIntegration, TriadPlusResistsFMinusInfection) {
  // Section V: with the true-chimer policy the honest majority out-votes
  // the compromised fast clock instead of following it.
  ScenarioConfig cfg = base_config(28);
  cfg.node_template = resilient::harden(cfg.node_template);
  cfg.policy_factory = [] { return resilient::make_triad_plus_policy(); };
  Scenario sc(std::move(cfg));
  attacks::DelayAttackConfig attack;
  attack.kind = attacks::AttackKind::kFMinus;
  attack.victim = sc.node_address(2);
  attack.ta_address = sc.ta_address();
  sc.add_delay_attack(attack);
  Recorder rec(sc);
  sc.start();
  sc.run_until(minutes(5));

  // Honest nodes stay close to reference despite the attacked peer.
  EXPECT_LT(rec.drift_ms(0).max_value(), 100.0);
  EXPECT_LT(rec.drift_ms(1).max_value(), 100.0);
}

TEST(ScenarioIntegration, TriadPlusLongWindowRepairsVictimFrequency) {
  // The in-TCB deadline plus long-window refinement pull even the
  // *attacked* node's frequency back toward truth over time.
  ScenarioConfig cfg = base_config(29);
  cfg.node_template = resilient::harden(cfg.node_template);
  cfg.policy_factory = [] { return resilient::make_triad_plus_policy(); };
  Scenario sc(std::move(cfg));
  attacks::DelayAttackConfig attack;
  attack.kind = attacks::AttackKind::kFMinus;
  attack.victim = sc.node_address(2);
  attack.ta_address = sc.ta_address();
  sc.add_delay_attack(attack);
  sc.start();
  sc.run_until(minutes(20));

  // Initially miscalibrated to ~2610 MHz; long-window refinement repairs
  // it to within ~100 ppm.
  EXPECT_NEAR(sc.node(2).calibrated_frequency_hz(),
              tsc::kPaperTscFrequencyHz, 0.3e6);
}

TEST(ScenarioIntegration, RampAttackPoisonsLongWindowRefinement) {
  // Beyond the paper (its future-work direction): a linearly-growing
  // delay biases Triad+'s long-window frequency estimate by ramp-rate
  // ppm per window — constant delays cancel, growing ones don't.
  auto run = [](double guard_ppm) {
    exp::ScenarioConfig cfg;
    cfg.seed = 41;
    cfg.node_template = resilient::harden(cfg.node_template);
    cfg.node_template.long_window_max_revision_ppm = guard_ppm;
    cfg.policy_factory = [] { return resilient::make_triad_plus_policy(); };
    auto sc = std::make_unique<exp::Scenario>(std::move(cfg));

    attacks::RampAttackConfig ramp;
    ramp.victim = sc->node_address(2);
    ramp.ta_address = sc->ta_address();
    ramp.ramp_per_second = 5e-3;  // 5 ms/s -> ~5000 ppm window bias
    ramp.max_delay = seconds(1);
    auto attack = std::make_unique<attacks::RampAttack>(ramp);
    attack->set_active(false);
    sc->network().add_middlebox(attack.get());
    sc->simulation().schedule_at(minutes(2), [a = attack.get()] {
      a->set_active(true);  // after initial calibration
    });

    sc->start();
    double worst_f_err_ppm = 0;
    sim::PeriodicTimer sampler(sc->simulation(), seconds(10), [&] {
      const double f = sc->node(2).calibrated_frequency_hz();
      if (f > 0) {
        worst_f_err_ppm =
            std::max(worst_f_err_ppm,
                     std::abs(f - tsc::kPaperTscFrequencyHz) /
                         tsc::kPaperTscFrequencyHz * 1e6);
      }
    });
    sc->run_until(minutes(15));
    sc->network().remove_middlebox(attack.get());
    return worst_f_err_ppm;
  };

  const double unguarded = run(0.0);
  const double guarded = run(1000.0);
  // Without the revision guard the ramp fakes thousands of ppm...
  EXPECT_GT(unguarded, 2500.0);
  // ...with it, each refinement is rate-limited. (Slightly above the
  // nominal 1000 ppm cap because successive clamped revisions compound
  // while the ramp lasts.)
  EXPECT_LT(guarded, 2200.0);
  EXPECT_LT(guarded, unguarded / 2);
}

TEST(ScenarioIntegration, DeterministicAcrossRuns) {
  auto fingerprint = [](std::uint64_t seed) {
    Scenario sc(base_config(seed));
    sc.start();
    sc.run_until(minutes(5));
    double acc = 0;
    for (std::size_t i = 0; i < 3; ++i) {
      acc += sc.node(i).calibrated_frequency_hz() +
             static_cast<double>(sc.node(i).stats().aex_count) * 1e3 +
             static_cast<double>(sc.node(i).current_time() % 1'000'000'007);
    }
    return acc;
  };
  EXPECT_EQ(fingerprint(31), fingerprint(31));
  EXPECT_NE(fingerprint(31), fingerprint(32));
}

TEST(ScenarioIntegration, ByteIdenticalTracesThroughSimEnv) {
  // The runtime refactor must not perturb determinism: two scenarios
  // built from the same seed, run through the same SimEnv-backed stack,
  // must produce byte-identical adoption and state-change traces — and,
  // with observability on, byte-identical metric and trace exports.
  auto trace = [](std::uint64_t seed) {
    ScenarioConfig cfg = base_config(seed);
    cfg.enable_metrics = true;
    cfg.trace_capacity = 1 << 16;
    Scenario sc(std::move(cfg));
    Recorder rec(sc);
    sc.start();
    sc.run_until(minutes(5));
    std::string out;
    for (const auto& a : rec.adoptions()) {
      out += std::to_string(a.at) + ':' + std::to_string(a.node) + ':' +
             std::to_string(a.local_before) + ':' +
             std::to_string(a.adopted) + ':' + std::to_string(a.source) +
             '\n';
    }
    for (const auto& c : rec.state_changes()) {
      out += std::to_string(c.at) + ':' + std::to_string(c.node) + ':' +
             std::to_string(static_cast<int>(c.from)) + "->" +
             std::to_string(static_cast<int>(c.to)) + '\n';
    }
    out += std::to_string(sc.simulation().events_executed()) + '/' +
           std::to_string(sc.network().stats().bytes_delivered);
    std::ostringstream obs_bytes;
    sc.metrics()->write_prometheus(obs_bytes);
    obs::write_jsonl(*sc.trace(), obs_bytes);
    out += obs_bytes.str();
    return out;
  };
  const std::string first = trace(77);
  const std::string second = trace(77);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  EXPECT_NE(first, trace(78));
}

TEST(ScenarioIntegration, ScenarioValidatesInputs) {
  ScenarioConfig cfg;
  cfg.node_count = 0;
  EXPECT_THROW(Scenario{std::move(cfg)}, std::invalid_argument);

  Scenario sc(base_config(33));
  EXPECT_THROW((void)sc.node_address(99), std::out_of_range);
  EXPECT_THROW(sc.switch_environment_at(99, AexEnvironment::kNone, 0),
               std::out_of_range);
  sc.start();
  EXPECT_THROW(sc.start(), std::logic_error);
}

}  // namespace
}  // namespace triad::exp
