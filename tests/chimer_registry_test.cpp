// ChimerRegistry: mutual confirmation, maximum clique, majority cliques
// (paper §V: published true-chimer lists / majority clique of chimers) —
// including property checks against a brute-force clique search.
#include <gtest/gtest.h>

#include <algorithm>

#include "resilient/chimer_registry.h"
#include "util/rng.h"

namespace triad::resilient {
namespace {

TEST(ChimerRegistry, EmptyRegistryHasNoClique) {
  ChimerRegistry reg;
  EXPECT_TRUE(reg.participants().empty());
  EXPECT_TRUE(reg.maximum_clique().empty());
  EXPECT_TRUE(reg.majority_clique(3).empty());
}

TEST(ChimerRegistry, MutualConfirmationRequiresBothSides) {
  ChimerRegistry reg;
  reg.report(1, {2});
  EXPECT_FALSE(reg.mutually_confirmed(1, 2));  // 2 has not confirmed 1
  reg.report(2, {1});
  EXPECT_TRUE(reg.mutually_confirmed(1, 2));
  EXPECT_TRUE(reg.mutually_confirmed(2, 1));
  EXPECT_FALSE(reg.mutually_confirmed(1, 1));  // no self edges
}

TEST(ChimerRegistry, OneSidedClaimsByLiarDoNotCount) {
  // A compromised node claims everyone is consistent with it; nobody
  // confirms back -> the liar stays out of the clique.
  ChimerRegistry reg;
  reg.report(1, {2});
  reg.report(2, {1});
  reg.report(3, {1, 2});  // liar claims both
  const auto clique = reg.maximum_clique();
  EXPECT_EQ(clique, (std::vector<NodeId>{1, 2}));
}

TEST(ChimerRegistry, ReportReplacesPreviousView) {
  ChimerRegistry reg;
  reg.report(1, {2});
  reg.report(2, {1});
  ASSERT_TRUE(reg.mutually_confirmed(1, 2));
  reg.report(1, {});  // 1 now distrusts 2
  EXPECT_FALSE(reg.mutually_confirmed(1, 2));
}

TEST(ChimerRegistry, SelfEntriesIgnored) {
  ChimerRegistry reg;
  reg.report(1, {1, 2});
  reg.report(2, {2, 1});
  EXPECT_TRUE(reg.mutually_confirmed(1, 2));
  EXPECT_EQ(reg.maximum_clique(), (std::vector<NodeId>{1, 2}));
}

TEST(ChimerRegistry, ThreeNodeFullAgreement) {
  ChimerRegistry reg;
  reg.report(1, {2, 3});
  reg.report(2, {1, 3});
  reg.report(3, {1, 2});
  EXPECT_EQ(reg.maximum_clique(), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(reg.majority_clique(3), (std::vector<NodeId>{1, 2, 3}));
}

TEST(ChimerRegistry, FMinusVictimExcludedFromMajorityClique) {
  // The Fig. 6 situation through §V's lens: nodes 1 and 2 see each other
  // as chimers; the fast node 3 is consistent with nobody.
  ChimerRegistry reg;
  reg.report(1, {2});
  reg.report(2, {1});
  reg.report(3, {});
  EXPECT_EQ(reg.majority_clique(3), (std::vector<NodeId>{1, 2}));
}

TEST(ChimerRegistry, MajorityRequiresStrictMajority) {
  ChimerRegistry reg;
  reg.report(1, {2});
  reg.report(2, {1});
  // 2 of 4 is not a strict majority.
  EXPECT_TRUE(reg.majority_clique(4).empty());
  EXPECT_EQ(reg.majority_clique(3), (std::vector<NodeId>{1, 2}));
}

TEST(ChimerRegistry, TwoCompetingCliquesPicksLarger) {
  ChimerRegistry reg;
  // Clique A: {1,2}; clique B: {3,4,5}.
  reg.report(1, {2});
  reg.report(2, {1});
  reg.report(3, {4, 5});
  reg.report(4, {3, 5});
  reg.report(5, {3, 4});
  EXPECT_EQ(reg.maximum_clique(), (std::vector<NodeId>{3, 4, 5}));
  EXPECT_EQ(reg.majority_clique(5), (std::vector<NodeId>{3, 4, 5}));
}

// Property: exact search agrees with brute force over random graphs.
class CliqueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CliqueProperty, MatchesBruteForceMaximumCliqueSize) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.next_below(7);  // 2..8 participants
  ChimerRegistry reg;
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      adj[i][j] = adj[j][i] = rng.chance(0.5);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<NodeId> claims;
    for (std::size_t j = 0; j < n; ++j) {
      if (adj[i][j]) claims.push_back(static_cast<NodeId>(j + 1));
    }
    reg.report(static_cast<NodeId>(i + 1), claims);
  }

  // Brute force: enumerate all subsets.
  std::size_t best = 0;
  for (std::size_t mask = 1; mask < (1u << n); ++mask) {
    bool clique = true;
    std::size_t size = 0;
    for (std::size_t i = 0; i < n && clique; ++i) {
      if (!(mask & (1u << i))) continue;
      ++size;
      for (std::size_t j = i + 1; j < n; ++j) {
        if ((mask & (1u << j)) && !adj[i][j]) {
          clique = false;
          break;
        }
      }
    }
    if (clique) best = std::max(best, size);
  }

  const auto found = reg.maximum_clique();
  EXPECT_EQ(found.size(), best);
  // And the returned set is actually a clique.
  for (std::size_t a = 0; a < found.size(); ++a) {
    for (std::size_t b = a + 1; b < found.size(); ++b) {
      EXPECT_TRUE(reg.mutually_confirmed(found[a], found[b]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CliqueProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace triad::resilient
