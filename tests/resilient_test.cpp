// Resilient (Section V / Triad+) building blocks: Marzullo intersection,
// NTP-style clock filter, true-chimer policy, and the hardened preset.
#include <gtest/gtest.h>

#include "resilient/clock_filter.h"
#include "resilient/marzullo.h"
#include "resilient/triad_plus.h"
#include "resilient/true_chimer_policy.h"

namespace triad::resilient {
namespace {

TEST(Marzullo, EmptyInput) {
  const auto r = marzullo({});
  EXPECT_EQ(r.count, 0u);
}

TEST(Marzullo, SingleInterval) {
  const auto r = marzullo({{10, 20}});
  EXPECT_EQ(r.count, 1u);
  EXPECT_EQ(r.best, (Interval{10, 20}));
  EXPECT_EQ(r.midpoint(), 15);
}

TEST(Marzullo, FullOverlap) {
  const auto r = marzullo({{0, 100}, {10, 50}, {20, 40}});
  EXPECT_EQ(r.count, 3u);
  EXPECT_EQ(r.best, (Interval{20, 40}));
}

TEST(Marzullo, MajorityAgainstOutlier) {
  // Three honest clocks around 100, one false-ticker far ahead.
  const auto r = marzullo({{95, 105}, {98, 108}, {96, 104}, {500, 520}});
  EXPECT_EQ(r.count, 3u);
  EXPECT_GE(r.best.lo, 95);
  EXPECT_LE(r.best.hi, 108);
}

TEST(Marzullo, DisjointIntervalsPickFirstBest) {
  const auto r = marzullo({{0, 10}, {20, 30}});
  EXPECT_EQ(r.count, 1u);
}

TEST(Marzullo, TouchingIntervalsCountAsOverlap) {
  const auto r = marzullo({{0, 10}, {10, 20}});
  EXPECT_EQ(r.count, 2u);
  EXPECT_EQ(r.best, (Interval{10, 10}));
}

TEST(Marzullo, TwoClustersPicksLarger) {
  const auto r =
      marzullo({{0, 10}, {1, 11}, {100, 110}, {101, 111}, {102, 112}});
  EXPECT_EQ(r.count, 3u);
  EXPECT_EQ(r.best, (Interval{102, 110}));
}

TEST(Marzullo, InvalidIntervalThrows) {
  EXPECT_THROW(marzullo({{10, 5}}), std::invalid_argument);
}

TEST(Marzullo, OverlappingIndexHelper) {
  const std::vector<Interval> ivs = {{0, 10}, {5, 15}, {20, 30}};
  const auto idx = overlapping(ivs, {8, 12});
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 1}));
}

TEST(ClockFilter, SelectsMinimumDelaySample) {
  ClockFilter filter(8);
  filter.add({milliseconds(5), milliseconds(10), seconds(1)});
  filter.add({milliseconds(3), milliseconds(2), seconds(2)});   // min delay
  filter.add({milliseconds(9), milliseconds(50), seconds(3)});
  const auto best = filter.select(seconds(4));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->offset, milliseconds(3));
}

TEST(ClockFilter, WindowEvictsOldest) {
  ClockFilter filter(2);
  filter.add({1, milliseconds(1), seconds(1)});  // will be evicted
  filter.add({2, milliseconds(5), seconds(2)});
  filter.add({3, milliseconds(9), seconds(3)});
  EXPECT_EQ(filter.size(), 2u);
  const auto best = filter.select(seconds(3));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->offset, 2);  // sample 1 (delay 1ms) is gone
}

TEST(ClockFilter, ExpiredSamplesIgnored) {
  ClockFilter filter(8, minutes(1));
  filter.add({5, milliseconds(1), 0});
  EXPECT_FALSE(filter.select(minutes(2)).has_value());
  filter.add({7, milliseconds(2), minutes(2)});
  const auto best = filter.select(minutes(2));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->offset, 7);
}

TEST(ClockFilter, DelaySpikeDoesNotPoisonSelection) {
  // An attacker adding delay to some exchanges inflates their measured
  // offset — min-delay selection routes around them.
  ClockFilter filter(8);
  filter.add({microseconds(100), microseconds(300), seconds(1)});  // honest
  for (int i = 2; i <= 6; ++i) {
    filter.add({milliseconds(100), milliseconds(101),  // delayed exchanges
                seconds(i)});
  }
  const auto best = filter.select(seconds(7));
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->offset, microseconds(100));
}

TEST(ClockFilter, DispersionReflectsSpread) {
  ClockFilter tight(8), loose(8);
  for (int i = 0; i < 4; ++i) {
    tight.add({microseconds(10), milliseconds(1) + i, seconds(i + 1)});
    loose.add({milliseconds(50) * (i % 2 == 0 ? 1 : -1),
               milliseconds(1) + i, seconds(i + 1)});
  }
  EXPECT_LT(tight.dispersion(seconds(5)), loose.dispersion(seconds(5)));
}

TEST(ClockFilter, InvalidParametersThrow) {
  EXPECT_THROW(ClockFilter(0), std::invalid_argument);
  EXPECT_THROW(ClockFilter(8, 0), std::invalid_argument);
  ClockFilter f(8);
  EXPECT_THROW(f.add({0, -1, 0}), std::invalid_argument);
}

PeerSample sample(NodeId peer, SimTime ts, Duration err) {
  return PeerSample{peer, ts, err, 0};
}

TEST(TrueChimerPolicy, NoSamplesAsksTa) {
  TrueChimerPolicy policy;
  const auto d = policy.decide(seconds(100), milliseconds(1), {});
  EXPECT_EQ(d.action, UntaintPolicy::Decision::Action::kAskTimeAuthority);
}

TEST(TrueChimerPolicy, ConsistentClusterKeepsLocal) {
  TrueChimerPolicy policy;
  const SimTime now = seconds(100);
  const auto d = policy.decide(
      now, milliseconds(1),
      {sample(2, now + milliseconds(1), milliseconds(2)),
       sample(3, now - milliseconds(1), milliseconds(2))});
  EXPECT_EQ(d.action, UntaintPolicy::Decision::Action::kKeepLocal);
}

TEST(TrueChimerPolicy, FastOutlierPeerIsOutvoted) {
  // The F- attack signature: one peer a full second ahead. The original
  // policy would jump onto it; the true-chimer policy must not.
  TrueChimerPolicy policy;
  const SimTime now = seconds(100);
  const auto d = policy.decide(
      now, milliseconds(1),
      {sample(2, now + milliseconds(1), milliseconds(2)),
       sample(3, now + seconds(1), milliseconds(2))});
  EXPECT_EQ(d.action, UntaintPolicy::Decision::Action::kKeepLocal);
}

TEST(TrueChimerPolicy, OwnClockOutlierAdoptsMajority) {
  TrueChimerPolicy policy;
  const SimTime now = seconds(100);
  const SimTime truth = now - seconds(1);  // we are 1 s fast
  const auto d = policy.decide(
      now, milliseconds(1),
      {sample(2, truth + milliseconds(1), milliseconds(2)),
       sample(3, truth - milliseconds(1), milliseconds(2))});
  ASSERT_EQ(d.action, UntaintPolicy::Decision::Action::kAdopt);
  EXPECT_LT(std::abs(d.adopted_time - truth), milliseconds(5));
  EXPECT_TRUE(d.source == 2 || d.source == 3);
}

TEST(TrueChimerPolicy, NoMajorityAsksTa) {
  // Everyone disagrees wildly: 3 clocks, all pairwise inconsistent.
  TrueChimerPolicy policy;
  const SimTime now = seconds(100);
  const auto d = policy.decide(
      now, milliseconds(1),
      {sample(2, now + seconds(10), milliseconds(1)),
       sample(3, now - seconds(10), milliseconds(1))});
  EXPECT_EQ(d.action, UntaintPolicy::Decision::Action::kAskTimeAuthority);
}

TEST(TrueChimerPolicy, WideErrorBoundsForgiveSkew) {
  TrueChimerPolicy policy;
  const SimTime now = seconds(100);
  // Peer is 50 ms ahead but admits a 100 ms error bound: consistent.
  const auto d = policy.decide(
      now, milliseconds(1),
      {sample(2, now + milliseconds(50), milliseconds(100)),
       sample(3, now, milliseconds(2))});
  EXPECT_EQ(d.action, UntaintPolicy::Decision::Action::kKeepLocal);
}

TEST(TrueChimerPolicy, SourceIsTightestErrorChimer) {
  TrueChimerPolicy policy;
  const SimTime now = seconds(100);
  const SimTime truth = now + seconds(1);  // we are 1 s slow
  const auto d = policy.decide(
      now, milliseconds(1),
      {sample(2, truth, milliseconds(8)),
       sample(3, truth + milliseconds(1), milliseconds(2))});
  ASSERT_EQ(d.action, UntaintPolicy::Decision::Action::kAdopt);
  EXPECT_EQ(d.source, 3u);  // tighter bound wins attribution
}

TEST(TrueChimerPolicy, WideCliqueRefusesAdoptionAndAsksTa) {
  // A tight false-ticker plus a wide honest interval form a majority
  // that excludes us; stepping onto that intersection would import the
  // attack, so the node must go to the root of trust instead.
  TrueChimerConfig cfg;
  cfg.adopt_error_ceiling = milliseconds(10);
  TrueChimerPolicy policy(cfg);
  const SimTime now = seconds(100);
  const auto d = policy.decide(
      now, milliseconds(1),
      {sample(2, now - milliseconds(120), milliseconds(3)),   // tight liar
       sample(3, now - milliseconds(60), milliseconds(80))});  // wide honest
  EXPECT_EQ(d.action, UntaintPolicy::Decision::Action::kAskTimeAuthority);
}

TEST(TrueChimerPolicy, ExcessiveOwnErrorForcesTaResync) {
  // A node whose own uncertainty ballooned must not arbitrate via
  // interval votes — a tight false-ticker could capture the vote.
  TrueChimerConfig cfg;
  cfg.max_local_error = milliseconds(50);
  TrueChimerPolicy policy(cfg);
  const SimTime now = seconds(100);
  const auto d = policy.decide(
      now, milliseconds(200),
      {sample(2, now, milliseconds(1)), sample(3, now, milliseconds(1))});
  EXPECT_EQ(d.action, UntaintPolicy::Decision::Action::kAskTimeAuthority);
}

TEST(TrueChimerPolicy, OwnIntervalOverlapKeepsLocalEvenIfPointOutside) {
  // Own point estimate outside the intersection but own interval
  // overlapping it: we are a true-chimer and must not step (anti-ratchet).
  TrueChimerPolicy policy;
  const SimTime now = seconds(100);
  const auto d = policy.decide(
      now, milliseconds(30),
      {sample(2, now + milliseconds(20), milliseconds(2)),
       sample(3, now + milliseconds(21), milliseconds(2))});
  EXPECT_EQ(d.action, UntaintPolicy::Decision::Action::kKeepLocal);
}

TEST(TrueChimerPolicy, InvalidConfigThrows) {
  auto with = [](auto&& mutate) {
    TrueChimerConfig cfg;
    mutate(cfg);
    return cfg;
  };
  EXPECT_THROW(TrueChimerPolicy(with([](auto& c) { c.margin = -1; })),
               std::invalid_argument);
  EXPECT_THROW(
      TrueChimerPolicy(with([](auto& c) { c.quorum_fraction = 0.0; })),
      std::invalid_argument);
  EXPECT_THROW(
      TrueChimerPolicy(with([](auto& c) { c.quorum_fraction = 1.0; })),
      std::invalid_argument);
  EXPECT_THROW(
      TrueChimerPolicy(with([](auto& c) { c.max_local_error = 0; })),
      std::invalid_argument);
  EXPECT_THROW(
      TrueChimerPolicy(with([](auto& c) { c.adopt_error_ceiling = 0; })),
      std::invalid_argument);
}

TEST(TriadPlus, HardenSetsAllKnobs) {
  TriadConfig base;
  const TriadConfig hardened = harden(base);
  EXPECT_GT(hardened.refresh_deadline, 0);
  EXPECT_TRUE(hardened.long_window_calibration);
  EXPECT_GT(hardened.long_window_min, 0);
  // Untouched protocol parameters survive.
  EXPECT_EQ(hardened.calib_pairs, base.calib_pairs);
}

TEST(TriadPlus, PolicyFactoryProducesCollectAllPolicy) {
  const auto policy = make_triad_plus_policy();
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->mode(), UntaintPolicy::Mode::kCollectAll);
}

}  // namespace
}  // namespace triad::resilient
