// Network substrate: delivery, delays, loss, middleboxes, link overrides.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "sim/simulation.h"

namespace triad::net {
namespace {

struct Fixture {
  sim::Simulation sim{99};
  Network net{sim, std::make_unique<FixedDelay>(milliseconds(1))};
};

TEST(DelayModels, FixedDelayIsConstant) {
  Rng rng(1);
  FixedDelay d(microseconds(123));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), microseconds(123));
  EXPECT_THROW(FixedDelay(-1), std::invalid_argument);
}

TEST(DelayModels, JitterDelayRespectsFloorAndVaries) {
  Rng rng(2);
  JitterDelay d(microseconds(150), microseconds(50), microseconds(100));
  Duration lo = kSimTimeMax, hi = 0;
  for (int i = 0; i < 1000; ++i) {
    const Duration s = d.sample(rng);
    EXPECT_GE(s, microseconds(100));
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_GT(hi, lo);  // actually jitters
  EXPECT_LT(hi, microseconds(600));
}

TEST(DelayModels, ExponentialTailMeanApprox) {
  Rng rng(3);
  ExponentialTailDelay d(microseconds(100), microseconds(200));
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(d.sample(rng));
  EXPECT_NEAR(sum / n, 300e3, 15e3);
}

TEST(Network, DeliversWithConfiguredDelay) {
  Fixture f;
  std::vector<SimTime> arrivals;
  f.net.attach(2, [&](const Packet& p) {
    arrivals.push_back(f.sim.now());
    EXPECT_EQ(p.src, 1u);
    EXPECT_EQ(p.payload, Bytes({7, 8}));
  });
  f.net.send(1, 2, {7, 8});
  f.sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], milliseconds(1));
  EXPECT_EQ(f.net.stats().delivered, 1u);
  EXPECT_EQ(f.net.stats().bytes_sent, 2u);
  EXPECT_EQ(f.net.stats().bytes_delivered, 2u);
}

TEST(Network, NoReceiverCountsAsDrop) {
  Fixture f;
  f.net.send(1, 9, {1});
  f.sim.run();
  EXPECT_EQ(f.net.stats().dropped_no_receiver, 1u);
  EXPECT_EQ(f.net.stats().delivered, 0u);
  // Byte accounting: sent counts the attempt, delivered does not.
  EXPECT_EQ(f.net.stats().bytes_sent, 1u);
  EXPECT_EQ(f.net.stats().bytes_delivered, 0u);
}

TEST(Network, DetachStopsDelivery) {
  Fixture f;
  int received = 0;
  f.net.attach(2, [&](const Packet&) { ++received; });
  f.net.send(1, 2, {1});
  f.sim.run();
  f.net.detach(2);
  f.net.send(1, 2, {2});
  f.sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, LinkDelayOverridesDefault) {
  Fixture f;
  f.net.set_link_delay(1, 2, std::make_unique<FixedDelay>(seconds(1)));
  SimTime a_to_b = -1, b_to_a = -1;
  f.net.attach(2, [&](const Packet&) { a_to_b = f.sim.now(); });
  f.net.attach(1, [&](const Packet&) { b_to_a = f.sim.now(); });
  f.net.send(1, 2, {1});
  f.net.send(2, 1, {2});
  f.sim.run();
  EXPECT_EQ(a_to_b, seconds(1));        // overridden direction
  EXPECT_EQ(b_to_a, milliseconds(1));   // reverse keeps default
}

TEST(Network, LossDropsApproximatelyTheConfiguredFraction) {
  sim::Simulation sim(5);
  Network net(sim, std::make_unique<FixedDelay>(0));
  net.set_loss_probability(0.3);
  int received = 0;
  net.attach(2, [&](const Packet&) { ++received; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) net.send(1, 2, {1});
  sim.run();
  EXPECT_NEAR(received / static_cast<double>(n), 0.7, 0.03);
  EXPECT_EQ(net.stats().dropped_by_loss + net.stats().delivered,
            static_cast<std::uint64_t>(n));
}

TEST(Network, InvalidParametersThrow) {
  sim::Simulation sim;
  EXPECT_THROW(Network(sim, nullptr), std::invalid_argument);
  Network net(sim, std::make_unique<FixedDelay>(0));
  EXPECT_THROW(net.attach(1, nullptr), std::invalid_argument);
  EXPECT_THROW(net.set_loss_probability(1.5), std::invalid_argument);
  EXPECT_THROW(net.set_link_delay(1, 2, nullptr), std::invalid_argument);
  EXPECT_THROW(net.add_middlebox(nullptr), std::invalid_argument);
}

class DelayBox final : public Middlebox {
 public:
  explicit DelayBox(Duration d) : delay_(d) {}
  Action on_packet(const Packet& p, SimTime) override {
    seen.push_back(p.id);
    return {.extra_delay = delay_, .drop = false};
  }
  std::vector<std::uint64_t> seen;

 private:
  Duration delay_;
};

class DropBox final : public Middlebox {
 public:
  Action on_packet(const Packet&, SimTime) override {
    return {.extra_delay = 0, .drop = true};
  }
};

TEST(Network, MiddleboxDelayAccumulates) {
  Fixture f;
  DelayBox box1(milliseconds(10));
  DelayBox box2(milliseconds(5));
  f.net.add_middlebox(&box1);
  f.net.add_middlebox(&box2);
  SimTime arrival = -1;
  f.net.attach(2, [&](const Packet&) { arrival = f.sim.now(); });
  f.net.send(1, 2, {1});
  f.sim.run();
  EXPECT_EQ(arrival, milliseconds(16));  // 1 base + 10 + 5
  EXPECT_EQ(box1.seen.size(), 1u);
  EXPECT_EQ(box2.seen.size(), 1u);
}

TEST(Network, MiddleboxDropWins) {
  Fixture f;
  DropBox box;
  f.net.add_middlebox(&box);
  int received = 0;
  f.net.attach(2, [&](const Packet&) { ++received; });
  f.net.send(1, 2, {1});
  f.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.stats().dropped_by_middlebox, 1u);
}

TEST(Network, RemoveMiddleboxRestoresTraffic) {
  Fixture f;
  DropBox box;
  f.net.add_middlebox(&box);
  f.net.remove_middlebox(&box);
  int received = 0;
  f.net.attach(2, [&](const Packet&) { ++received; });
  f.net.send(1, 2, {1});
  f.sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, MiddleboxSeesMetadataNotJustDelivered) {
  Fixture f;
  DelayBox box(0);
  f.net.add_middlebox(&box);
  f.net.send(3, 4, {9});  // no receiver attached: still observed on wire
  f.sim.run();
  EXPECT_EQ(box.seen.size(), 1u);
}

TEST(Network, PacketIdsAreUnique) {
  Fixture f;
  DelayBox box(0);
  f.net.add_middlebox(&box);
  for (int i = 0; i < 10; ++i) f.net.send(1, 2, {1});
  f.sim.run();
  std::sort(box.seen.begin(), box.seen.end());
  EXPECT_EQ(std::adjacent_find(box.seen.begin(), box.seen.end()),
            box.seen.end());
}

}  // namespace
}  // namespace triad::net
