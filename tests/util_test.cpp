// Unit tests for util: RNG determinism and distributions, byte
// serialization round-trips and bounds checking, hex codec, narrowing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bytes.h"
#include "util/checked.h"
#include "util/hex.h"
#include "util/rng.h"
#include "util/types.h"

namespace triad {
namespace {

TEST(TimeUnits, ConversionsAreExact) {
  EXPECT_EQ(microseconds(1), 1'000);
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000);
  EXPECT_EQ(minutes(2), seconds(120));
  EXPECT_EQ(hours(1), minutes(60));
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_milliseconds(microseconds(2500)), 2.5);
  EXPECT_EQ(from_seconds(1.5), milliseconds(1500));
  EXPECT_EQ(from_seconds(-0.25), -milliseconds(250));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDecorrelatesByLabel) {
  Rng root1(7);
  Rng root2(7);
  Rng a = root1.fork("alpha");
  Rng b = root2.fork("beta");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkSameLabelReproducible) {
  Rng root1(7);
  Rng root2(7);
  Rng a = root1.fork("net");
  Rng b = root2.fork("net");
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, PickWeightedRespectsZeroWeights) {
  Rng rng(19);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.pick_weighted(weights, 3), 1u);
  }
}

TEST(Rng, PickWeightedApproximatesProportions) {
  Rng rng(23);
  const double weights[] = {1.0, 1.0, 2.0};
  int counts[3] = {};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.pick_weighted(weights, 3)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.50, 0.02);
}

TEST(Rng, PickWeightedAllZeroThrows) {
  Rng rng(29);
  const double weights[] = {0.0, 0.0};
  EXPECT_THROW(rng.pick_weighted(weights, 2), std::invalid_argument);
}

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i64(-42);
  w.put_f64(3.14159);
  w.put_string("hello");
  const Bytes blob = {1, 2, 3};
  w.put_var_bytes(blob);

  ByteReader r(w.data());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_var_bytes(), blob);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.put_u32(5);
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u16(), 5);
  EXPECT_THROW(r.get_u32(), DecodeError);
}

TEST(Bytes, VarBytesWithLyingLengthThrows) {
  ByteWriter w;
  w.put_u32(1000);  // claims 1000 bytes follow
  w.put_u8(1);
  ByteReader r(w.data());
  EXPECT_THROW(r.get_var_bytes(), DecodeError);
}

TEST(Bytes, ExpectEndThrowsOnTrailingData) {
  ByteWriter w;
  w.put_u8(1);
  w.put_u8(2);
  ByteReader r(w.data());
  r.get_u8();
  EXPECT_THROW(r.expect_end(), DecodeError);
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x7f, 0x80, 0xff, 0x12};
  EXPECT_EQ(to_hex(data), "007f80ff12");
  EXPECT_EQ(from_hex("007f80ff12"), data);
  EXPECT_EQ(from_hex("007F80FF12"), data);  // case-insensitive
}

TEST(Hex, InvalidInputThrows) {
  EXPECT_THROW(from_hex("abc"), DecodeError);   // odd length
  EXPECT_THROW(from_hex("zz"), DecodeError);    // bad chars
}

TEST(Narrow, PreservingConversionsPass) {
  EXPECT_EQ(narrow<std::uint8_t>(255), 255);
  EXPECT_EQ(narrow<std::int32_t>(std::int64_t{-5}), -5);
}

TEST(Narrow, LossyConversionsThrow) {
  EXPECT_THROW(narrow<std::uint8_t>(256), std::range_error);
  EXPECT_THROW(narrow<std::uint32_t>(-1), std::range_error);
}

}  // namespace
}  // namespace triad
