// Application-layer components (trusted leases, RFC 3161-style TSA) on a
// controllable fake time source, plus integration against a live Triad
// cluster.
#include <gtest/gtest.h>

#include "apps/lease.h"
#include "apps/tsa.h"
#include "exp/scenario.h"

namespace triad::apps {
namespace {

/// Manually driven time source: set the time, or go unavailable.
struct FakeClock {
  std::optional<SimTime> now = SimTime{0};
  LeaseManager::TimeSource source() {
    return [this] { return now; };
  }
};

TEST(LeaseManager, GrantAndExpiry) {
  FakeClock clock;
  LeaseManager mgr(clock.source(), seconds(5));

  const auto lease = mgr.grant("gpu-0");
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->resource, "gpu-0");
  EXPECT_EQ(lease->expires_at, seconds(5));

  clock.now = seconds(3);
  EXPECT_EQ(mgr.valid(lease->id), std::optional<bool>(true));
  clock.now = seconds(5);
  EXPECT_EQ(mgr.valid(lease->id), std::optional<bool>(false));
}

TEST(LeaseManager, HeldResourceDenied) {
  FakeClock clock;
  LeaseManager mgr(clock.source(), seconds(5));
  ASSERT_TRUE(mgr.grant("gpu-0").has_value());
  EXPECT_FALSE(mgr.grant("gpu-0").has_value());  // still held
  EXPECT_EQ(mgr.stats().denied_held, 1u);
  EXPECT_TRUE(mgr.grant("gpu-1").has_value());   // other resource fine
}

TEST(LeaseManager, ExpiredResourceRegrantable) {
  FakeClock clock;
  LeaseManager mgr(clock.source(), seconds(5));
  const auto first = mgr.grant("gpu-0");
  ASSERT_TRUE(first.has_value());
  clock.now = seconds(6);
  const auto second = mgr.grant("gpu-0");
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->id, first->id);
  // The evicted lease is gone.
  EXPECT_EQ(mgr.valid(first->id), std::optional<bool>(false));
}

TEST(LeaseManager, RenewExtendsHeldLease) {
  FakeClock clock;
  LeaseManager mgr(clock.source(), seconds(5));
  const auto lease = mgr.grant("disk");
  ASSERT_TRUE(lease.has_value());
  clock.now = seconds(4);
  const auto renewed = mgr.renew(lease->id);
  ASSERT_TRUE(renewed.has_value());
  EXPECT_EQ(renewed->expires_at, seconds(9));
  // Renewing an expired lease fails.
  clock.now = seconds(20);
  EXPECT_FALSE(mgr.renew(lease->id).has_value());
}

TEST(LeaseManager, ReleaseFreesResource) {
  FakeClock clock;
  LeaseManager mgr(clock.source(), seconds(5));
  const auto lease = mgr.grant("net");
  ASSERT_TRUE(lease.has_value());
  EXPECT_TRUE(mgr.release(lease->id));
  EXPECT_FALSE(mgr.release(lease->id));  // idempotence: already gone
  EXPECT_TRUE(mgr.grant("net").has_value());
}

TEST(LeaseManager, UnavailableTimeSourceRefusesEverything) {
  FakeClock clock;
  LeaseManager mgr(clock.source(), seconds(5));
  const auto lease = mgr.grant("x");
  ASSERT_TRUE(lease.has_value());
  clock.now = std::nullopt;  // tainted node
  EXPECT_FALSE(mgr.grant("y").has_value());
  EXPECT_FALSE(mgr.renew(lease->id).has_value());
  EXPECT_FALSE(mgr.valid(lease->id).has_value());
  EXPECT_EQ(mgr.stats().denied_unavailable, 3u);
}

TEST(LeaseManager, InvalidConstructionThrows) {
  FakeClock clock;
  EXPECT_THROW(LeaseManager(nullptr, seconds(1)), std::invalid_argument);
  EXPECT_THROW(LeaseManager(clock.source(), 0), std::invalid_argument);
  LeaseManager mgr(clock.source(), seconds(1));
  EXPECT_THROW((void)mgr.grant("r", -seconds(1)), std::invalid_argument);
}

TEST(Tsa, IssueVerifyRoundTrip) {
  FakeClock clock;
  clock.now = seconds(100);
  TimestampingAuthority tsa(clock.source(), Bytes(32, 1));
  const Bytes doc = {1, 2, 3};
  const auto token = tsa.issue(doc);
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(token->timestamp, seconds(100));
  EXPECT_EQ(token->serial, 1u);
  EXPECT_TRUE(tsa.verify(*token));
}

TEST(Tsa, TamperedTokensRejected) {
  FakeClock clock;
  TimestampingAuthority tsa(clock.source(), Bytes(32, 1));
  const auto token = tsa.issue(Bytes{5});
  ASSERT_TRUE(token.has_value());

  auto backdated = *token;
  backdated.timestamp -= seconds(3600);
  EXPECT_FALSE(tsa.verify(backdated));

  auto redocumented = *token;
  redocumented.document_digest[0] ^= 1;
  EXPECT_FALSE(tsa.verify(redocumented));

  auto reserialed = *token;
  reserialed.serial = 999;
  EXPECT_FALSE(tsa.verify(reserialed));
  EXPECT_EQ(tsa.stats().verified_bad, 3u);
}

TEST(Tsa, TimestampsStrictlyMonotonicEvenIfClockStalls) {
  FakeClock clock;
  clock.now = seconds(10);
  TimestampingAuthority tsa(clock.source(), Bytes(32, 1));
  const auto first = tsa.issue(Bytes{1});
  const auto second = tsa.issue(Bytes{2});  // clock unchanged
  ASSERT_TRUE(first && second);
  EXPECT_GT(second->timestamp, first->timestamp);
  EXPECT_EQ(second->serial, first->serial + 1);
}

TEST(Tsa, RefusesWhileUnavailable) {
  FakeClock clock;
  clock.now = std::nullopt;
  TimestampingAuthority tsa(clock.source(), Bytes(32, 1));
  EXPECT_FALSE(tsa.issue(Bytes{1}).has_value());
  EXPECT_EQ(tsa.stats().refused_unavailable, 1u);
}

TEST(Tsa, InvalidConstructionThrows) {
  FakeClock clock;
  EXPECT_THROW(TimestampingAuthority(nullptr, Bytes(32, 1)),
               std::invalid_argument);
  EXPECT_THROW(TimestampingAuthority(clock.source(), Bytes(8, 1)),
               std::invalid_argument);
}

TEST(AppsIntegration, LeaseManagerOnLiveTriadNode) {
  exp::ScenarioConfig cfg;
  cfg.seed = 61;
  exp::Scenario sc(std::move(cfg));
  sc.start();
  sc.run_until(minutes(1));

  LeaseManager mgr(
      [&sc] { return sc.node(0).serve_timestamp(); }, seconds(5));
  const auto lease = mgr.grant("task-42");
  ASSERT_TRUE(lease.has_value());
  sc.run_for(seconds(3));
  EXPECT_EQ(mgr.valid(lease->id), std::optional<bool>(true));
  sc.run_for(seconds(3));
  EXPECT_EQ(mgr.valid(lease->id), std::optional<bool>(false));
}

}  // namespace
}  // namespace triad::apps
