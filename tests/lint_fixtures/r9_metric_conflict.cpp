// Known-bad fixture for R9 (metric-family inventory). Linted under a
// synthetic src/-relative path so the harvest sees it. Two defects: a
// family registered as both counter and gauge (Prometheus TYPE lines
// and check_prom.awk assume one kind per family), and an orphan
// set_help for a family that is never registered.
namespace fixture {

struct Counter {
  void inc();
};
struct Gauge {
  void set(double value);
};

struct Registry {
  Counter counter(const char* name);
  Gauge gauge(const char* name);
  void set_help(const char* name, const char* help);
};

inline void register_all(Registry* registry) {
  registry->counter("triad_fixture_widgets_total");
  registry->gauge("triad_fixture_widgets_total");  // LINT:R9
  registry->set_help("triad_fixture_ghost_gauge", "renamed away");  // LINT:R9
  registry->gauge("triad_fixture_queue_depth");
}

}  // namespace fixture
