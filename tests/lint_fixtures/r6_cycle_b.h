// Known-bad fixture for R6 (include cycle), part 2 of 2. Linted under
// the synthetic path src/sim/r6_cycle_b.h; the include below closes
// the a -> b -> a loop and is the DFS back edge where the cycle is
// reported.
#pragma once

#include "sim/r6_cycle_a.h"  // LINT:R6

namespace fixture {

inline int cycle_half_b() { return 0; }

}  // namespace fixture
