// Known-bad fixture for R6 (include-graph layering). Linted by
// tests/lint_test.cpp under the synthetic path src/net/r6_layering.h —
// layer 2 in the R6 map — so the include below points UP the layer
// order into a timed composition-root header (layer 5). Real headers
// must invert such a dependency or carry a named [allow] entry.
#pragma once

#include "timed/r6_upper.h"  // LINT:R6

namespace fixture {

inline int mechanism_reaching_into_app_layer() { return 0; }

}  // namespace fixture
