// Known-bad fixture for triad_lint rule R4: raw allocation and
// std::function construction in a designated hot-path file. Never
// compiled; linted by tests/lint_test.cpp.
#include <cstdlib>
#include <functional>

int* hot_new() {
  return new int(42);  // LINT:R4
}

void* hot_malloc(unsigned n) {
  return std::malloc(n);  // LINT:R4
}

std::function<int()> hot_erasure() {  // LINT:R4
  return [] { return 7; };
}
