// Known-bad fixture for triad_lint rule R2: iteration over unordered
// containers in a byte-stable export path. Never compiled; linted by
// tests/lint_test.cpp.
#include <map>
#include <unordered_map>
#include <unordered_set>

int sum_exported(const std::unordered_map<int, int>& cells) {
  int total = 0;
  for (const auto& [key, value] : cells) {  // LINT:R2
    total += key + value;
  }
  return total;
}

int count_iter(const std::unordered_set<int>& seen) {
  int total = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // LINT:R2
    total += *it;
  }
  return total;
}

// Ordered containers are the sanctioned path: must NOT fire. (Named
// differently from the unordered params above — the declared-name pass
// is file-wide by design.)
int sum_ordered(const std::map<int, int>& rows) {
  int total = 0;
  for (const auto& [key, value] : rows) total += key + value;
  return total;
}
