// Known-bad fixture for R8 (unchecked syscall returns). The test opts
// this file into [R8] and gives it R1 [allow] entries for close /
// shutdown (deliberately not R1-banned tokens, so only R8 fires here):
// every watched call must consume its return value — assign it, compare
// it, or (void)-cast it with a same-line comment naming why best-effort
// is correct. The bare-(void)-cast-without-comment case is tested
// inline in lint_test.cpp: a marker comment on that line would itself
// be the named reason that legalizes the cast.
extern "C" int close(int fd);
extern "C" int shutdown(int fd, int how);

namespace fixture {

inline void teardown(int fd, bool linger) {
  ::close(fd);  // LINT:R8
  if (linger) ::shutdown(fd, 2);  // LINT:R8
  const int rc = ::close(fd);
  if (::shutdown(fd, 2) != 0) {
    (void)::close(fd);  // best-effort: the socket is going away anyway
  }
  static_cast<void>(rc);
}

}  // namespace fixture
