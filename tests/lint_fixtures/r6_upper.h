// Companion header for the R6 layering fixture. Linted under the
// synthetic path src/timed/r6_upper.h (layer 5, a composition root);
// clean on its own — the violation is r6_layering.h including *this*
// file from layer 2.
#pragma once

namespace fixture {

struct UpperPlane {
  int depth = 0;
};

}  // namespace fixture
