// Known-bad R1 fixture: raw ambient-I/O syscalls outside
// src/runtime/real_env.cpp. RealEnv is the sole named allowlist site for
// socket/epoll bindings; every marked line below must fire when the same
// tokens appear anywhere else in the tree.

#include <cstdint>

struct Event {
  std::uint32_t events;
};

int harvest(int fd) {
  Event evs[16];
  int epfd = epoll_create1(0);               // LINT:R1
  epoll_ctl(epfd, 1, fd, nullptr);           // LINT:R1
  int n = ::epoll_wait(epfd, evs, 16, -1);   // LINT:R1
  return n;
}

int open_channel() {
  int fd = ::socket(2, 2, 0);                // LINT:R1
  int one = 1;
  setsockopt(fd, 1, 2, &one, sizeof(one));   // LINT:R1
  int wake = eventfd(0, 0);                  // LINT:R1
  (void)wake;
  return fd;
}

long drain(int fd, void* ts) {
  long total = recvmmsg(fd, nullptr, 0, 0, nullptr);  // LINT:R1
  total += sendmmsg(fd, nullptr, 0, 0);               // LINT:R1
  clock_gettime(0, ts);                               // LINT:R1
  return total;
}

// Negative cases: call_only means data members and locals named `socket`
// stay legal, as do member calls and distinct identifiers.
struct Transport {
  int socket;
  int epoll_wait_count;
};

int shims(Transport& t) {
  int socket = t.socket;
  t.socket = socket + 1;
  return t.epoll_wait_count;
}
