// Known-bad fixture for R6 (include cycle), part 1 of 2. Linted under
// the synthetic path src/sim/r6_cycle_a.h; includes part 2, which
// includes this file back. The lint DFS visits this file first (it is
// earlier in the scan order), so the back edge — and the diagnostic —
// lands on part 2's include line, not here.
#pragma once

#include "sim/r6_cycle_b.h"

namespace fixture {

inline int cycle_half_a() { return 0; }

}  // namespace fixture
