// Known-bad fixture for triad_lint rule R3: float printf conversions
// without an explicit precision in an exporter file. Never compiled;
// linted by tests/lint_test.cpp.
#include <cstdio>

void export_row(double value) {
  std::printf("value=%f\n", value);       // LINT:R3
  std::printf("slope=%+g ppm\n", value);  // LINT:R3
  std::printf("wide=%12e\n", value);      // LINT:R3
}

void export_row_pinned(double value) {
  // The sanctioned forms: explicit precision everywhere. Must NOT fire.
  std::printf("value=%.9g\n", value);
  std::printf("pct=%5.1f%%\n", value);
  std::printf("count=%d scale=%u\n", 1, 2u);
}
