// Known-bad fixture for R7 (constructor init-list order). Seeded
// reproduction of the PR 9 TelemetryServer bug: `listener_` is declared
// before `error_`, so the init list hands `&error_` to the listener's
// constructor while `error_` is still raw memory. -Wreorder is silent —
// the init-list *order* matches the declaration order; the bug is the
// dependency direction, which only the cross-file member harvest sees.
namespace fixture {

struct Address {
  int port = 0;
};

class Listener {
 public:
  Listener(Address addr, int* error_out);
};

class TelemetryServerFixture {
 public:
  explicit TelemetryServerFixture(Address addr)
      : listener_(addr, &error_),  // LINT:R7
        backlog_(0) {}

 private:
  Listener listener_;  // constructed first...
  int backlog_;
  int error_ = 0;  // ...but handed out above before it exists
};

// The out-of-line form: same bug class, ctor body in a .cpp far from
// the member declarations.
class WorkerFixture {
 public:
  WorkerFixture();

 private:
  int socket_fd_;
  int bind_status_ = 0;
};

inline WorkerFixture::WorkerFixture()
    : socket_fd_(bind_status_),  // LINT:R7
      bind_status_(0) {}

// Reading an *earlier* member is legal — it is already constructed —
// and must not fire.
class OrderedFixture {
 public:
  OrderedFixture() : base_(1), derived_(base_ + 1) {}

 private:
  int base_;
  int derived_;
};

}  // namespace fixture
