// Known-bad fixture for triad_lint rule R5: asserts the folklore
// TraceEvent size (48 bytes, from pre-span PR notes) instead of the real
// 56-byte layout. tests/lint_test.cpp compiles this with -fsyntax-only
// and requires the compile to FAIL — proving layout drift is caught at
// build time, not review time.
#include "obs/trace.h"

static_assert(sizeof(triad::obs::TraceEvent) == 48,  // LINT:R5
              "folklore layout: the span field moved node/peer and the "
              "record is 56 bytes");

int main() { return 0; }
