// Known-bad fixture for triad_lint rule R1: wall-clock / ambient
// randomness access outside src/runtime/ and src/util/. Never compiled;
// linted by tests/lint_test.cpp, which reads the LINT rule markers as
// the expected diagnostic lines.
#include <chrono>
#include <cstdlib>
#include <ctime>

long long bad_now_ms() {
  using clock = std::chrono::steady_clock;  // LINT:R1
  return clock::now().time_since_epoch().count();
}

long long bad_epoch() {
  return static_cast<long long>(std::time(nullptr));  // LINT:R1
}

int bad_random() {
  return std::rand();  // LINT:R1
}

const char* bad_env() {
  return std::getenv("TRIAD_UNDOCUMENTED");  // LINT:R1
}

// Call-only identifiers must NOT fire outside call form: a member or
// variable named `time` / `rand` is legal.
struct Sample {
  long long time = 0;
  int rand = 0;
};
long long ok_member(const Sample& s) { return s.time + s.rand; }
