// TrustedTimeClient: remote applications fetching trusted time from a
// Triad cluster — rotation across nodes, tainted-node skipping, timeout
// failover, and end-to-end behaviour against a real cluster.
#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "triad/client.h"

namespace triad {
namespace {

struct ClientFixture {
  ClientFixture() : scenario(make_config()) {
    ClientConfig config;
    config.id = 50;
    for (std::size_t i = 0; i < scenario.node_count(); ++i) {
      config.cluster.push_back(scenario.node_address(i));
    }
    client = std::make_unique<TrustedTimeClient>(scenario.env(),
                                                 scenario.keyring(), config);
  }

  static exp::ScenarioConfig make_config() {
    exp::ScenarioConfig cfg;
    cfg.seed = 77;
    cfg.machine_interrupts = false;  // keep taint timing controlled
    return cfg;
  }

  exp::Scenario scenario;
  std::unique_ptr<TrustedTimeClient> client;
};

TEST(TrustedTimeClient, FetchesTimestampFromCalibratedCluster) {
  ClientFixture f;
  f.scenario.start();
  f.scenario.run_until(minutes(1));

  std::optional<TrustedTimestamp> result;
  f.client->request_timestamp([&](auto r) { result = r; });
  f.scenario.run_for(milliseconds(50));

  ASSERT_TRUE(result.has_value());
  // Timestamp within a few ms of reference (one-way delays + drift).
  EXPECT_LT(std::abs(result->timestamp - f.scenario.simulation().now()),
            milliseconds(50));
  EXPECT_GT(result->served_by, 0u);
  EXPECT_EQ(f.client->stats().successes, 1u);
}

TEST(TrustedTimeClient, SkipsTaintedNodeAndUsesNext) {
  ClientFixture f;
  f.scenario.start();
  f.scenario.run_until(minutes(1));

  // Taint node 1 and immediately ask: the client's first pick (round
  // robin starts at node 1) answers tainted; the client must fail over.
  f.scenario.node(0).monitoring_thread().deliver_aex();
  ASSERT_EQ(f.scenario.node(0).state(), NodeState::kTainted);

  std::optional<TrustedTimestamp> result;
  f.client->request_timestamp([&](auto r) { result = r; });
  f.scenario.run_for(milliseconds(50));

  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->served_by, f.scenario.node_address(0));
  EXPECT_GE(f.client->stats().tainted_answers, 1u);
}

TEST(TrustedTimeClient, AllNodesTaintedReportsFailure) {
  ClientFixture f;
  f.scenario.start();
  f.scenario.run_until(minutes(1));
  // Tainted nodes recover fast via their own protocol, so use an
  // extremely short client budget: taint everyone, ask immediately, and
  // block recovery by dropping peer/TA traffic with total loss.
  f.scenario.network().set_loss_probability(1.0);
  for (std::size_t i = 0; i < 3; ++i) {
    f.scenario.node(i).monitoring_thread().deliver_aex();
  }
  std::optional<std::optional<TrustedTimestamp>> outcome;
  f.client->request_timestamp([&](auto r) { outcome = r; });
  f.scenario.run_for(seconds(1));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->has_value());
  EXPECT_EQ(f.client->stats().failures, 1u);
  f.scenario.network().set_loss_probability(0.0);
}

TEST(TrustedTimeClient, TimeoutRotatesToNextNode) {
  ClientFixture f;
  f.scenario.start();
  f.scenario.run_until(minutes(1));

  // Drop all traffic to/from node 1 only.
  class NodeBlackhole final : public net::Middlebox {
   public:
    explicit NodeBlackhole(NodeId node) : node_(node) {}
    Action on_packet(const net::Packet& p, SimTime) override {
      return {.extra_delay = 0,
              .drop = p.src == node_ || p.dst == node_};
    }

   private:
    NodeId node_;
  } blackhole(f.scenario.node_address(0));
  f.scenario.network().add_middlebox(&blackhole);

  std::optional<TrustedTimestamp> result;
  f.client->request_timestamp([&](auto r) { result = r; });
  f.scenario.run_for(milliseconds(100));

  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->served_by, f.scenario.node_address(0));
  EXPECT_GE(f.client->stats().timeouts, 1u);
  f.scenario.network().remove_middlebox(&blackhole);
}

TEST(TrustedTimeClient, ManyConcurrentRequests) {
  ClientFixture f;
  f.scenario.start();
  f.scenario.run_until(minutes(1));

  int done = 0;
  for (int i = 0; i < 50; ++i) {
    f.client->request_timestamp([&](auto r) {
      EXPECT_TRUE(r.has_value());
      ++done;
    });
  }
  f.scenario.run_for(seconds(1));
  EXPECT_EQ(done, 50);
  EXPECT_EQ(f.client->stats().successes, 50u);
}

TEST(TrustedTimeClient, RoundRobinSpreadsLoad) {
  ClientFixture f;
  f.scenario.start();
  f.scenario.run_until(minutes(1));

  std::map<NodeId, int> served;
  for (int i = 0; i < 30; ++i) {
    f.client->request_timestamp([&](auto r) {
      if (r) ++served[r->served_by];
    });
    f.scenario.run_for(milliseconds(10));
  }
  EXPECT_EQ(served.size(), 3u);  // all nodes took a share
  for (const auto& [node, count] : served) EXPECT_EQ(count, 10);
}

TEST(TrustedTimeClient, CallbackMayReissueRequests) {
  ClientFixture f;
  f.scenario.start();
  f.scenario.run_until(minutes(1));

  int chain = 0;
  std::function<void(std::optional<TrustedTimestamp>)> next =
      [&](std::optional<TrustedTimestamp> r) {
        ASSERT_TRUE(r.has_value());
        if (++chain < 5) f.client->request_timestamp(next);
      };
  f.client->request_timestamp(next);
  f.scenario.run_for(seconds(1));
  EXPECT_EQ(chain, 5);
}

TEST(TrustedTimeClient, InvalidConfigThrows) {
  ClientFixture f;
  ClientConfig bad;
  bad.id = 60;
  EXPECT_THROW(
      TrustedTimeClient(f.scenario.env(), f.scenario.keyring(), bad),
      std::invalid_argument);
  bad.cluster = {1};
  bad.node_timeout = 0;
  EXPECT_THROW(
      TrustedTimeClient(f.scenario.env(), f.scenario.keyring(), bad),
      std::invalid_argument);
}

TEST(TrustedTimeClient, NullCallbackThrows) {
  ClientFixture f;
  EXPECT_THROW(f.client->request_timestamp(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace triad
