// Logger: level gating and virtual-time tagging.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/simulation.h"
#include "util/log.h"

namespace triad {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Logger::instance().set_level(LogLevel::Warn);  // restore default
    Logger::instance().clear_component_levels();
    Logger::instance().clear_time_source();
  }
};

TEST_F(LogTest, LevelGatingEnablesAndDisables) {
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::Info);
  EXPECT_TRUE(logger.enabled(LogLevel::Info));
  EXPECT_TRUE(logger.enabled(LogLevel::Error));
  EXPECT_FALSE(logger.enabled(LogLevel::Debug));
  logger.set_level(LogLevel::Off);
  EXPECT_FALSE(logger.enabled(LogLevel::Error));
}

TEST_F(LogTest, MacroShortCircuitsWhenDisabled) {
  Logger::instance().set_level(LogLevel::Error);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "expensive";
  };
  TRIAD_LOG_DEBUG("test") << expensive();
  EXPECT_EQ(evaluations, 0);  // stream expression never evaluated
  Logger::instance().set_level(LogLevel::Debug);
  Logger::instance().set_level(LogLevel::Off);  // silence actual output
  TRIAD_LOG_ERROR("test") << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LogTest, ComponentOverridesUseLongestDotPrefix) {
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::Warn);
  logger.set_level("triad.node", LogLevel::Debug);
  EXPECT_TRUE(logger.enabled(LogLevel::Debug, "triad.node"));
  EXPECT_TRUE(logger.enabled(LogLevel::Debug, "triad.node.calib"));
  EXPECT_FALSE(logger.enabled(LogLevel::Debug, "triad.nodex"));  // not a
  EXPECT_FALSE(logger.enabled(LogLevel::Debug, "triad.net"));    // subtree
  // Longest matching prefix wins over a shorter ancestor override.
  logger.set_level("triad", LogLevel::Error);
  EXPECT_TRUE(logger.enabled(LogLevel::Debug, "triad.node"));
  EXPECT_FALSE(logger.enabled(LogLevel::Warn, "triad.net"));
  EXPECT_EQ(logger.effective_level("triad.ta"), LogLevel::Error);
  EXPECT_EQ(logger.effective_level("other"), LogLevel::Warn);
  // Re-setting a component replaces its override.
  logger.set_level("triad.node", LogLevel::Off);
  EXPECT_FALSE(logger.enabled(LogLevel::Error, "triad.node"));
  logger.clear_component_levels();
  EXPECT_FALSE(logger.enabled(LogLevel::Debug, "triad.node"));
  EXPECT_TRUE(logger.enabled(LogLevel::Warn, "triad.node"));
}

TEST_F(LogTest, MacroHonoursComponentOverrides) {
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::Error);
  logger.set_level("quiet", LogLevel::Off);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "expensive";
  };
  TRIAD_LOG_ERROR("quiet") << expensive();  // component override gates it
  EXPECT_EQ(evaluations, 0);
  TRIAD_LOG_WARN("loud") << expensive();  // below the global Error level
  EXPECT_EQ(evaluations, 0);
}

// Regression: TRIAD_LOG must expand to a single expression so it nests
// in unbraced if/else without capturing the caller's `else` (the
// dangling-else hazard of `if {} else`-style logging macros). This test
// fails to compile (or binds the wrong branch) with such an expansion.
TEST_F(LogTest, MacroIsDanglingElseSafe) {
  Logger::instance().set_level(LogLevel::Off);
  bool took_else = false;
  const bool condition = false;
  if (condition)
    TRIAD_LOG_INFO("test") << "then-branch";
  else
    took_else = true;
  EXPECT_TRUE(took_else);

  // And the symmetric shape: macro in the if-branch of a taken branch.
  bool reached_tail = false;
  if (!condition)
    TRIAD_LOG_INFO("test") << "quiet";
  else
    ADD_FAILURE() << "else bound to the macro's internals";
  reached_tail = true;
  EXPECT_TRUE(reached_tail);
}

// Regression for the campaign engine: set_level(component, ...) mutates
// the component->level map while worker threads evaluate TRIAD_LOG's
// enabled() check concurrently. Before the Logger grew its shared_mutex
// this was a data race (vector growth under a concurrent scan) that
// ASan/TSan flag and that could crash; now writers and readers
// serialize. The test hammers both sides from several threads.
TEST_F(LogTest, ConcurrentSetLevelAndGatingIsSafe) {
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::Off);  // keep stderr quiet
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&logger, &stop, &reads, t] {
      const std::string component =
          "triad.worker" + std::to_string(t) + ".calib";
      while (!stop.load(std::memory_order_relaxed)) {
        // The exact macro hot path: gate, then (rarely) write.
        if (logger.enabled(LogLevel::Debug, component)) {
          logger.write(LogLevel::Debug, component, "tick");
        }
        (void)logger.effective_level(component);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int round = 0; round < 200; ++round) {
    const std::string component =
        "triad.worker" + std::to_string(round % 4);
    logger.set_level(component,
                     round % 2 == 0 ? LogLevel::Off : LogLevel::Error);
    if (round % 50 == 49) logger.clear_component_levels();
  }
  // Keep mutating until every reader has demonstrably overlapped with
  // at least one write (a single-core box may not schedule the readers
  // until the writer loop above has already finished).
  for (int round = 0; reads.load() < 100; ++round) {
    logger.set_level("triad.worker" + std::to_string(round % 4),
                     LogLevel::Error);
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& thread : readers) thread.join();

  EXPECT_GT(reads.load(), 0u);
  // Writers' final state is intact and readable.
  logger.set_level("triad.worker0", LogLevel::Debug);
  EXPECT_EQ(logger.effective_level("triad.worker0.calib"), LogLevel::Debug);
}

TEST_F(LogTest, ScopedLogTimeInstallsAndClears) {
  sim::Simulation sim;
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::Off);
  {
    ScopedLogTime scoped([&sim] { return sim.now(); });
    sim.run_until(seconds(3));
    logger.write(LogLevel::Error, "test", "tagged");  // must not crash
  }
  // Source cleared on scope exit; writing afterwards must not touch it.
  logger.write(LogLevel::Error, "test", "untagged");
}

TEST_F(LogTest, TimeSourceInstallAndClear) {
  sim::Simulation sim;
  Logger& logger = Logger::instance();
  logger.set_time_source([&sim] { return sim.now(); });
  logger.set_level(LogLevel::Off);
  // Writing with a time source installed must not crash even as the
  // simulation advances and the logger is silenced.
  sim.run_until(seconds(5));
  logger.write(LogLevel::Error, "test", "msg");
  logger.clear_time_source();
  logger.write(LogLevel::Error, "test", "msg");
}

}  // namespace
}  // namespace triad
