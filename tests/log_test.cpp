// Logger: level gating and virtual-time tagging.
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "util/log.h"

namespace triad {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Logger::instance().set_level(LogLevel::Warn);  // restore default
    Logger::instance().clear_time_source();
  }
};

TEST_F(LogTest, LevelGatingEnablesAndDisables) {
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::Info);
  EXPECT_TRUE(logger.enabled(LogLevel::Info));
  EXPECT_TRUE(logger.enabled(LogLevel::Error));
  EXPECT_FALSE(logger.enabled(LogLevel::Debug));
  logger.set_level(LogLevel::Off);
  EXPECT_FALSE(logger.enabled(LogLevel::Error));
}

TEST_F(LogTest, MacroShortCircuitsWhenDisabled) {
  Logger::instance().set_level(LogLevel::Error);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "expensive";
  };
  TRIAD_LOG_DEBUG("test") << expensive();
  EXPECT_EQ(evaluations, 0);  // stream expression never evaluated
  Logger::instance().set_level(LogLevel::Debug);
  Logger::instance().set_level(LogLevel::Off);  // silence actual output
  TRIAD_LOG_ERROR("test") << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LogTest, TimeSourceInstallAndClear) {
  sim::Simulation sim;
  Logger& logger = Logger::instance();
  logger.set_time_source([&sim] { return sim.now(); });
  logger.set_level(LogLevel::Off);
  // Writing with a time source installed must not crash even as the
  // simulation advances and the logger is silenced.
  sim.run_until(seconds(5));
  logger.write(LogLevel::Error, "test", "msg");
  logger.clear_time_source();
  logger.write(LogLevel::Error, "test", "msg");
}

}  // namespace
}  // namespace triad
