// X25519 against RFC 7748 test vectors plus Diffie-Hellman properties.
#include <gtest/gtest.h>

#include "crypto/x25519.h"
#include "util/hex.h"
#include "util/rng.h"

namespace triad::crypto {
namespace {

X25519Key key(const std::string& hex_str) {
  const Bytes raw = from_hex(hex_str);
  X25519Key k{};
  std::copy(raw.begin(), raw.end(), k.begin());
  return k;
}

std::string hex(const X25519Key& k) {
  return to_hex(BytesView(k.data(), k.size()));
}

// RFC 7748 §5.2 test vector 1.
TEST(X25519, Rfc7748Vector1) {
  const auto out = x25519(
      key("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4"),
      key("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c"));
  EXPECT_EQ(hex(out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

// RFC 7748 §5.2 test vector 2 (u with high bit set — must be masked).
TEST(X25519, Rfc7748Vector2) {
  const auto out = x25519(
      key("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d"),
      key("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493"));
  EXPECT_EQ(hex(out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

// RFC 7748 §5.2 iterated test, 1 iteration.
TEST(X25519, Rfc7748IteratedOnce) {
  X25519Key k{};
  k[0] = 9;
  const auto out = x25519(k, k);
  EXPECT_EQ(hex(out),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079");
}

// RFC 7748 §5.2 iterated test, 1000 iterations.
TEST(X25519, Rfc7748Iterated1000) {
  X25519Key k{};
  k[0] = 9;
  X25519Key u = k;
  for (int i = 0; i < 1000; ++i) {
    const X25519Key next = x25519(k, u);
    u = k;
    k = next;
  }
  EXPECT_EQ(hex(k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51");
}

// RFC 7748 §6.1 Diffie-Hellman example.
TEST(X25519, Rfc7748DiffieHellman) {
  const auto alice_private =
      key("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const auto bob_private =
      key("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  const auto alice_public = x25519_public_key(alice_private);
  const auto bob_public = x25519_public_key(bob_private);
  EXPECT_EQ(hex(alice_public),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(hex(bob_public),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  X25519Key shared_a{}, shared_b{};
  ASSERT_TRUE(x25519_shared_secret(alice_private, bob_public, &shared_a));
  ASSERT_TRUE(x25519_shared_secret(bob_private, alice_public, &shared_b));
  EXPECT_EQ(shared_a, shared_b);
  EXPECT_EQ(hex(shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, LowOrderPointRejected) {
  const auto private_key =
      key("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  X25519Key zero_point{};  // low-order: result is all-zero
  X25519Key out{};
  EXPECT_FALSE(x25519_shared_secret(private_key, zero_point, &out));
  for (std::uint8_t b : out) EXPECT_EQ(b, 0);
}

// Property: DH agreement holds for random key pairs.
class X25519Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(X25519Property, RandomPairsAgree) {
  Rng rng(GetParam());
  X25519Key a{}, b{};
  for (auto& byte : a) byte = static_cast<std::uint8_t>(rng.next_u64());
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next_u64());
  const auto pub_a = x25519_public_key(a);
  const auto pub_b = x25519_public_key(b);
  EXPECT_NE(pub_a, pub_b);
  X25519Key s1{}, s2{};
  ASSERT_TRUE(x25519_shared_secret(a, pub_b, &s1));
  ASSERT_TRUE(x25519_shared_secret(b, pub_a, &s2));
  EXPECT_EQ(s1, s2);
  // Different third party disagrees.
  X25519Key c{};
  for (auto& byte : c) byte = static_cast<std::uint8_t>(rng.next_u64());
  X25519Key s3{};
  ASSERT_TRUE(x25519_shared_secret(c, pub_b, &s3));
  EXPECT_NE(s3, s1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, X25519Property,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace triad::crypto
