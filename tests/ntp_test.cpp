// NTP substrate: sample arithmetic, the disciplined clock, and the
// client/server loop — convergence, attack resistance, poll adaptation.
#include <gtest/gtest.h>

#include <cmath>

#include "net/network.h"
#include "ntp/disciplined_clock.h"
#include "ntp/ntp_client.h"
#include "ntp/ntp_server.h"
#include "runtime/sim_env.h"
#include "ntp/sample.h"
#include "sim/simulation.h"
#include "tsc/tsc.h"

namespace triad::ntp {
namespace {

TEST(NtpSample, OffsetAndDelayFormulas) {
  // Client 10 ms behind server; 4 ms symmetric path; 1 ms processing.
  NtpSample s;
  s.t1 = milliseconds(100);            // client clock
  s.t2 = milliseconds(112);            // server clock = client + 10 + 2
  s.t3 = milliseconds(113);            // +1 ms processing
  s.t4 = milliseconds(105);            // client: t1 + 2 + 1 + 2
  EXPECT_EQ(s.offset(), milliseconds(10));
  EXPECT_EQ(s.delay(), milliseconds(4));
  EXPECT_TRUE(s.plausible());
}

TEST(NtpSample, AsymmetricDelayBiasBoundedByHalfDelay) {
  // All delay on the return path (worst case for the estimate).
  NtpSample s;
  s.t1 = 0;
  s.t2 = milliseconds(10);  // clocks actually aligned; 10ms up... none
  s.t3 = milliseconds(10);
  s.t4 = milliseconds(30);  // 20 ms back
  // True offset 10? Construct precisely: clocks equal, up-delay 10,
  // back-delay 20 -> measured offset = (10 + (10-30))/2 = -5 ms,
  // |error| = 5 = (30-0-0)/2 - 10 ... bounded by delay/2 = 15.
  EXPECT_EQ(s.offset(), -milliseconds(5));
  EXPECT_LE(std::abs(s.offset()), s.delay() / 2);
}

TEST(NtpSample, ImplausibleDetected) {
  NtpSample s;
  s.t1 = milliseconds(10);
  s.t2 = milliseconds(5);
  s.t3 = milliseconds(4);  // t3 < t2
  s.t4 = milliseconds(3);  // t4 < t1
  EXPECT_FALSE(s.plausible());
}

struct ClockFixture {
  sim::Simulation sim{11};
  tsc::Tsc tsc{sim, tsc::kPaperTscFrequencyHz};
};

TEST(DisciplinedClock, TracksNominalRateInitially) {
  ClockFixture f;
  DisciplinedClock clock(f.tsc, tsc::kPaperTscFrequencyHz);
  f.sim.run_until(seconds(100));
  EXPECT_LT(std::abs(clock.now() - f.sim.now()), microseconds(10));
}

TEST(DisciplinedClock, LargeOffsetSteps) {
  ClockFixture f;
  DisciplinedClock clock(f.tsc, tsc::kPaperTscFrequencyHz);
  f.sim.run_until(seconds(1));
  EXPECT_TRUE(clock.apply_offset(seconds(2)));
  EXPECT_EQ(clock.steps(), 1u);
  EXPECT_NEAR(static_cast<double>(clock.now() - f.sim.now()),
              static_cast<double>(seconds(2)), 1e3);
}

TEST(DisciplinedClock, SmallOffsetSlewsWithoutStepping) {
  ClockFixture f;
  DisciplinedClock clock(f.tsc, tsc::kPaperTscFrequencyHz);
  f.sim.run_until(seconds(1));
  EXPECT_FALSE(clock.apply_offset(milliseconds(5)));
  EXPECT_EQ(clock.steps(), 0u);
  // Slew is bounded: after 1 s at most 500 us were absorbed.
  f.sim.run_until(seconds(2));
  const Duration gained = clock.now() - f.sim.now();
  EXPECT_GT(gained, 0);
  EXPECT_LE(gained, microseconds(600));
}

TEST(DisciplinedClock, LearnsFrequencyError) {
  // Clock built with a nominal frequency 100 ppm below the TSC's true
  // rate: it runs fast. Feed offsets every 32 s; the discipline must
  // learn a negative correction close to -100 ppm.
  ClockFixture f;
  DisciplinedClock clock(f.tsc, tsc::kPaperTscFrequencyHz * (1 - 100e-6));
  for (int i = 0; i < 40; ++i) {
    f.sim.run_for(seconds(32));
    clock.apply_offset(f.sim.now() - clock.now());
  }
  EXPECT_NEAR(clock.frequency_correction_ppm(), -100.0, 20.0);
  // And the residual drift over a quiet minute is now small.
  const Duration before = clock.now() - f.sim.now();
  f.sim.run_for(seconds(60));
  const Duration after = clock.now() - f.sim.now();
  EXPECT_LT(std::abs(after - before), milliseconds(3));
}

TEST(DisciplinedClock, InvalidConfigThrows) {
  ClockFixture f;
  EXPECT_THROW(DisciplinedClock(f.tsc, 0.0), std::invalid_argument);
  DisciplineConfig bad;
  bad.max_slew_ppm = 0;
  EXPECT_THROW(DisciplinedClock(f.tsc, 1e9, bad), std::invalid_argument);
}

struct NtpFixture {
  NtpFixture() {
    NtpClientConfig config;
    config.id = 1;
    config.servers = {100};
    client = std::make_unique<NtpClient>(env, keyring, tsc,
                                         tsc::kPaperTscFrequencyHz, config);
  }

  sim::Simulation sim{22};
  net::Network net{sim, std::make_unique<net::JitterDelay>(
                            microseconds(150), microseconds(120),
                            microseconds(10))};
  runtime::SimEnv env{sim, net};
  crypto::ClusterKeyring keyring{Bytes(32, 3)};
  NtpServer server{env, 100, keyring};
  tsc::Tsc tsc{sim, tsc::kPaperTscFrequencyHz};
  std::unique_ptr<NtpClient> client;
};

TEST(NtpClient, ConvergesToSubMillisecondOffset) {
  NtpFixture f;
  f.client->start();
  f.sim.run_until(minutes(10));
  EXPECT_GT(f.client->stats().samples, 10u);
  EXPECT_LT(std::abs(f.client->now() - f.sim.now()), milliseconds(1));
}

TEST(NtpClient, PollIntervalBacksOffWhenStable) {
  NtpFixture f;
  f.client->start();
  f.sim.run_until(minutes(20));
  EXPECT_GT(f.client->current_tau(), 2);  // backed off from min_tau
}

TEST(NtpClient, InitialOffsetIsStepped) {
  NtpFixture f;
  // Hypervisor jumps the TSC 10 s forward after the clock is built: the
  // client's clock is suddenly far in the "future".
  f.tsc.hv_add_offset(
      static_cast<std::int64_t>(10 * tsc::kPaperTscFrequencyHz));
  f.client->start();
  f.sim.run_until(minutes(1));
  EXPECT_GE(f.client->stats().steps, 1u);
  EXPECT_LT(std::abs(f.client->now() - f.sim.now()), milliseconds(5));
}

TEST(NtpClient, UniformDelayAttackBoundedByHalfDelay) {
  // Attacker adds 100 ms to EVERY server response: measured offsets are
  // biased by at most delay/2; the clock ends up <= ~50 ms behind —
  // contrast with Triad's unbounded F- skew.
  NtpFixture f;
  class UniformDelay final : public net::Middlebox {
   public:
    Action on_packet(const net::Packet& p, SimTime) override {
      return {.extra_delay = p.src == 100 ? milliseconds(100) : 0,
              .drop = false};
    }
  } attack;
  f.net.add_middlebox(&attack);
  f.client->start();
  f.sim.run_until(minutes(10));
  const Duration error = f.client->now() - f.sim.now();
  EXPECT_LT(std::abs(error), milliseconds(60));
  f.net.remove_middlebox(&attack);
}

TEST(NtpClient, SelectiveDelayAttackFilteredOut) {
  // Attacker delays 3 of every 4 responses: the min-delay filter keeps
  // choosing honest exchanges, so accuracy is barely affected.
  NtpFixture f;
  class SelectiveDelay final : public net::Middlebox {
   public:
    Action on_packet(const net::Packet& p, SimTime) override {
      if (p.src != 100) return {};
      ++count_;
      return {.extra_delay =
                  count_ % 4 == 0 ? Duration{0} : milliseconds(100),
              .drop = false};
    }

   private:
    int count_ = 0;
  } attack;
  f.net.add_middlebox(&attack);
  f.client->start();
  f.sim.run_until(minutes(10));
  EXPECT_LT(std::abs(f.client->now() - f.sim.now()), milliseconds(2));
  f.net.remove_middlebox(&attack);
}

TEST(NtpClient, SurvivesPacketLoss) {
  NtpFixture f;
  f.net.set_loss_probability(0.3);
  f.client->start();
  f.sim.run_until(minutes(20));
  EXPECT_GT(f.client->stats().samples, 5u);
  EXPECT_LT(std::abs(f.client->now() - f.sim.now()), milliseconds(2));
}

TEST(NtpClient, HonestMajorityOutvotesLyingServer) {
  // Three servers, one compromised by +5 s: the Marzullo selection stage
  // must exclude the falseticker, and the client tracks the honest pair.
  sim::Simulation sim{33};
  net::Network net{sim, std::make_unique<net::JitterDelay>(
                            microseconds(150), microseconds(120),
                            microseconds(10))};
  runtime::SimEnv env{sim, net};
  crypto::ClusterKeyring keyring{Bytes(32, 3)};
  NtpServer honest1{env, 100, keyring};
  NtpServer honest2{env, 101, keyring};
  NtpServer liar{env, 102, keyring};
  liar.set_lie_offset(seconds(5));
  tsc::Tsc tsc{sim, tsc::kPaperTscFrequencyHz};

  NtpClientConfig config;
  config.id = 1;
  config.servers = {100, 101, 102};
  NtpClient client(env, keyring, tsc, tsc::kPaperTscFrequencyHz, config);
  client.start();
  sim.run_until(minutes(10));

  EXPECT_LT(std::abs(client.now() - sim.now()), milliseconds(2));
  EXPECT_GT(client.stats().falsetickers_rejected, 10u);
}

TEST(NtpClient, SingleLyingServerIsFollowedWithoutQuorum) {
  // Contrast case: with only the lying server configured there is no
  // majority to save the client — it steps onto the lie. (This is why
  // multiple sources matter.)
  sim::Simulation sim{34};
  net::Network net{sim, std::make_unique<net::FixedDelay>(microseconds(200))};
  runtime::SimEnv env{sim, net};
  crypto::ClusterKeyring keyring{Bytes(32, 3)};
  NtpServer liar{env, 100, keyring};
  liar.set_lie_offset(seconds(5));
  tsc::Tsc tsc{sim, tsc::kPaperTscFrequencyHz};
  NtpClientConfig config;
  config.id = 1;
  config.servers = {100};
  NtpClient client(env, keyring, tsc, tsc::kPaperTscFrequencyHz, config);
  client.start();
  sim.run_until(minutes(2));
  EXPECT_GT(client.now() - sim.now(), seconds(4));
}

TEST(NtpClient, InvalidConfigThrows) {
  NtpFixture f;
  NtpClientConfig bad;
  bad.id = 2;
  bad.servers = {100};
  bad.min_tau = 5;
  bad.max_tau = 3;
  EXPECT_THROW(NtpClient(f.env, f.keyring, f.tsc, 1e9, bad),
               std::invalid_argument);
}

TEST(NtpServer, RejectsGarbage) {
  NtpFixture f;
  f.net.send(5, 100, Bytes{1, 2, 3});
  f.sim.run_until(seconds(1));
  EXPECT_EQ(f.server.stats().rejected_frames, 1u);
}

}  // namespace
}  // namespace triad::ntp
