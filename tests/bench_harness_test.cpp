// Coverage for the in-repo bench harness (bench/harness.h) and the
// bench_diff comparison core: measurement statistics sanity, the
// triad-bench-v1 JSON contract (schema tag, fixed key order, parseable
// floats), and the regression gate (exit 0 on identical inputs, nonzero
// past the median threshold).
#include "harness.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "diff.h"

namespace {

using triad::bench::BenchResult;
using triad::bench::Harness;
using triad::bench::HarnessOptions;
using triad::bench::MachineFingerprint;
using triad::tools::BenchEntry;
using triad::tools::DiffOptions;
using triad::tools::DiffReport;
using triad::tools::DiffStatus;

/// A fast deterministic workload: enough work per iteration that the
/// calibrated count stays small under the test's tiny min_time.
void spin_bench(triad::bench::State& state) {
  std::uint64_t acc = 1;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) acc = acc * 6364136223846793005ULL + 1;
    triad::bench::do_not_optimize(acc);
  }
  state.set_items_processed(state.iterations());
}

HarnessOptions fast_options() {
  HarnessOptions options;
  options.min_time_ms = 0.5;
  options.repetitions = 3;
  options.warmup = 1;
  return options;
}

TEST(BenchHarness, MeasureProducesOrderedStats) {
  const Harness harness("test");
  const BenchResult result =
      harness.measure("spin", spin_bench, 0, fast_options());
  EXPECT_EQ(result.name, "spin");
  EXPECT_GE(result.iterations, 1u);
  EXPECT_EQ(result.repetitions, 3u);
  EXPECT_GT(result.min_ns, 0.0);
  EXPECT_LE(result.min_ns, result.median_ns);
  EXPECT_LE(result.median_ns, result.p95_ns);
  EXPECT_GE(result.stddev_ns, 0.0);
  EXPECT_GT(result.items_per_second, 0.0);
}

TEST(BenchHarness, StateCarriesRangeArgument) {
  const Harness harness("test");
  std::int64_t seen = -1;
  const BenchResult result = harness.measure(
      "arg",
      [&seen](triad::bench::State& state) {
        seen = state.range(0);
        std::uint64_t acc = static_cast<std::uint64_t>(seen);
        for (auto _ : state) {
          for (int i = 0; i < 64; ++i) acc = acc * 2862933555777941757ULL + 3;
          triad::bench::do_not_optimize(acc);
        }
        state.set_bytes_processed(state.iterations() * state.range(0));
      },
      1024, fast_options());
  EXPECT_EQ(seen, 1024);
  EXPECT_GT(result.bytes_per_second, 0.0);
}

std::string bench_json_text(const std::vector<BenchResult>& results) {
  MachineFingerprint fp;
  fp.cpu = "Test CPU";
  fp.cores = 4;
  fp.compiler = "gcc test";
  fp.flags = "-O2";
  std::ostringstream out;
  triad::bench::write_bench_json(out, "unit", fp, results);
  return out.str();
}

BenchResult make_result(const std::string& name, double median_ns) {
  BenchResult r;
  r.name = name;
  r.iterations = 100;
  r.repetitions = 5;
  r.min_ns = median_ns * 0.9;
  r.median_ns = median_ns;
  r.p95_ns = median_ns * 1.1;
  r.mean_ns = median_ns;
  r.stddev_ns = 1.0;
  return r;
}

TEST(BenchJson, SchemaAndFixedKeyOrder) {
  const std::string text =
      bench_json_text({make_result("a", 100.0), make_result("b", 5.5)});
  const triad::tools::JsonValue doc = triad::tools::parse_json_or_throw(text);

  const auto& top = doc.as_object();
  const std::vector<std::string> top_keys = {"schema", "suite", "fingerprint",
                                             "benchmarks"};
  ASSERT_EQ(top.size(), top_keys.size());
  for (std::size_t i = 0; i < top_keys.size(); ++i) {
    EXPECT_EQ(top[i].first, top_keys[i]) << "top-level key " << i;
  }
  EXPECT_EQ(doc.at("schema").as_string(), "triad-bench-v1");
  EXPECT_EQ(doc.at("suite").as_string(), "unit");

  const auto& fp = doc.at("fingerprint").as_object();
  const std::vector<std::string> fp_keys = {"cpu", "cores", "compiler",
                                            "flags"};
  ASSERT_EQ(fp.size(), fp_keys.size());
  for (std::size_t i = 0; i < fp_keys.size(); ++i) {
    EXPECT_EQ(fp[i].first, fp_keys[i]) << "fingerprint key " << i;
  }

  const auto& benchmarks = doc.at("benchmarks").as_array();
  ASSERT_EQ(benchmarks.size(), 2u);
  const std::vector<std::string> bench_keys = {
      "name",    "iterations", "repetitions",      "min_ns",
      "median_ns", "p95_ns",   "mean_ns",          "stddev_ns",
      "bytes_per_second",      "items_per_second"};
  const auto& entry = benchmarks[0].as_object();
  ASSERT_EQ(entry.size(), bench_keys.size());
  for (std::size_t i = 0; i < bench_keys.size(); ++i) {
    EXPECT_EQ(entry[i].first, bench_keys[i]) << "benchmark key " << i;
  }
  EXPECT_DOUBLE_EQ(benchmarks[0].at("median_ns").as_number(), 100.0);
  EXPECT_DOUBLE_EQ(benchmarks[1].at("median_ns").as_number(), 5.5);
}

std::vector<BenchEntry> entries_from(const std::vector<BenchResult>& results) {
  const triad::tools::JsonValue doc =
      triad::tools::parse_json_or_throw(bench_json_text(results));
  return triad::tools::load_bench_document(doc);
}

TEST(BenchDiff, IdenticalInputsExitZero) {
  const auto baseline = entries_from({make_result("a", 100.0)});
  const DiffOptions options;
  const DiffReport report =
      triad::tools::diff_benchmarks(baseline, baseline, options);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].status, DiffStatus::kOk);
  EXPECT_EQ(report.exit_code(options), 0);
}

TEST(BenchDiff, MedianRegressionPastThresholdExitsNonzero) {
  const auto baseline = entries_from({make_result("a", 100.0)});
  // 25% slower median: past the default 10% threshold.
  const auto current = entries_from({make_result("a", 125.0)});
  const DiffOptions options;
  const DiffReport report =
      triad::tools::diff_benchmarks(baseline, current, options);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_EQ(report.rows[0].status, DiffStatus::kRegression);
  EXPECT_NEAR(report.rows[0].delta_pct, 25.0, 1e-9);
  EXPECT_NE(report.exit_code(options), 0);
}

TEST(BenchDiff, ImprovementAndMissingEntriesStayClean) {
  const auto baseline =
      entries_from({make_result("gone", 50.0), make_result("kept", 100.0)});
  const auto current =
      entries_from({make_result("kept", 80.0), make_result("fresh", 10.0)});
  DiffOptions options;
  const DiffReport report =
      triad::tools::diff_benchmarks(baseline, current, options);
  ASSERT_EQ(report.rows.size(), 3u);  // baseline order, then new entries
  EXPECT_EQ(report.rows[0].status, DiffStatus::kMissing);
  EXPECT_EQ(report.rows[1].status, DiffStatus::kOk);  // 20% faster
  EXPECT_EQ(report.rows[2].status, DiffStatus::kNew);
  EXPECT_EQ(report.exit_code(options), 0);
  options.require_all = true;
  EXPECT_NE(report.exit_code(options), 0);
}

TEST(BenchHarness, MeasureRespectsFilterViaRegistration) {
  Harness harness("test");
  int spin_calls = 0;
  int other_calls = 0;
  harness.add("spin", [&spin_calls](triad::bench::State& state) {
    ++spin_calls;
    spin_bench(state);
  });
  harness.add("other", [&other_calls](triad::bench::State& state) {
    ++other_calls;
    spin_bench(state);
  });
  // Drive the real CLI path: --filter selects a subset, --min-time-ms
  // keeps the run fast, --list exercises name expansion.
  const char* argv[] = {"bench_test",      "--filter",      "spin",
                        "--min-time-ms",   "0.5",           "--repetitions",
                        "2"};
  ASSERT_EQ(harness.run(static_cast<int>(std::size(argv)),
                        const_cast<char**>(argv)),
            0);
  EXPECT_GT(spin_calls, 0);
  EXPECT_EQ(other_calls, 0);
}

}  // namespace
