// Enclave thread + AEX generation: distributions (Figure 1 shapes),
// drivers, machine-wide correlated interrupts.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "enclave/aex_source.h"
#include "enclave/enclave_thread.h"
#include "sim/simulation.h"
#include "stats/histogram.h"
#include "stats/summary.h"

namespace triad::enclave {
namespace {

TEST(EnclaveThread, TracksAexTimesAndCounts) {
  sim::Simulation sim;
  EnclaveThread thread(sim);
  EXPECT_EQ(thread.aex_count(), 0u);
  EXPECT_EQ(thread.last_aex_time(), 0);

  sim.run_until(seconds(5));
  EXPECT_EQ(thread.uninterrupted_duration(), seconds(5));

  thread.deliver_aex();
  EXPECT_EQ(thread.aex_count(), 1u);
  EXPECT_EQ(thread.last_aex_time(), seconds(5));
  EXPECT_EQ(thread.uninterrupted_duration(), 0);
}

TEST(EnclaveThread, HandlerInvokedOnEachAex) {
  sim::Simulation sim;
  EnclaveThread thread(sim);
  int calls = 0;
  thread.set_aex_handler([&] { ++calls; });
  thread.deliver_aex();
  thread.deliver_aex();
  EXPECT_EQ(calls, 2);
}

TEST(TriadLikeDistribution, OnlyTheThreePaperDelays) {
  Rng rng(1);
  TriadLikeAexDistribution dist;
  std::map<Duration, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[dist.next_delay(rng)];
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_TRUE(counts.contains(milliseconds(10)));
  EXPECT_TRUE(counts.contains(milliseconds(532)));
  EXPECT_TRUE(counts.contains(milliseconds(1590)));
  for (const auto& [delay, count] : counts) {
    EXPECT_NEAR(count / static_cast<double>(n), 1.0 / 3.0, 0.02);
  }
}

TEST(IsolatedCoreDistribution, MassConcentratesNearFiveMinutes) {
  Rng rng(2);
  IsolatedCoreAexDistribution dist;
  int near_mode = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const Duration d = dist.next_delay(rng);
    EXPECT_GT(d, 0);
    if (d > seconds(310) && d < seconds(340)) ++near_mode;
  }
  // Paper: "most AEXs occur every 5.4 minutes".
  EXPECT_GT(near_mode / static_cast<double>(n), 0.7);
}

TEST(MarkovDistribution, StickinessCorrelatesSuccessiveDelays) {
  Rng rng(5);
  MarkovAexDistribution sticky(0.8);
  std::vector<double> delays;
  for (int i = 0; i < 20000; ++i) {
    delays.push_back(to_seconds(sticky.next_delay(rng)));
  }
  // Strong lag-1 autocorrelation, and only the three paper delays.
  EXPECT_GT(stats::autocorrelation(delays, 1), 0.5);
  for (double d : delays) {
    EXPECT_TRUE(d == 0.010 || d == 0.532 || d == 1.590);
  }
}

TEST(MarkovDistribution, OneThirdStickinessIsIid) {
  Rng rng(6);
  MarkovAexDistribution iid_like(1.0 / 3.0);
  std::vector<double> delays;
  std::map<double, int> counts;
  for (int i = 0; i < 30000; ++i) {
    const double d = to_seconds(iid_like.next_delay(rng));
    delays.push_back(d);
    ++counts[d];
  }
  EXPECT_LT(std::abs(stats::autocorrelation(delays, 1)), 0.02);
  for (const auto& [delay, count] : counts) {
    EXPECT_NEAR(count / 30000.0, 1.0 / 3.0, 0.02);
  }
}

TEST(MarkovDistribution, IidPaperDistributionHasNoAutocorrelation) {
  Rng rng(7);
  TriadLikeAexDistribution dist;
  std::vector<double> delays;
  for (int i = 0; i < 20000; ++i) {
    delays.push_back(to_seconds(dist.next_delay(rng)));
  }
  EXPECT_LT(std::abs(stats::autocorrelation(delays, 1)), 0.02);
}

TEST(MarkovDistribution, InvalidStickinessThrows) {
  EXPECT_THROW(MarkovAexDistribution(-0.1), std::invalid_argument);
  EXPECT_THROW(MarkovAexDistribution(1.1), std::invalid_argument);
}

TEST(FixedDistribution, ConstantAndValidated) {
  Rng rng(3);
  FixedAexDistribution dist(seconds(2));
  EXPECT_EQ(dist.next_delay(rng), seconds(2));
  EXPECT_THROW(FixedAexDistribution(0), std::invalid_argument);
}

TEST(AexDriver, FiresAtDistributionDelays) {
  sim::Simulation sim(7);
  EnclaveThread thread(sim);
  AexDriver driver(sim, thread, std::make_unique<FixedAexDistribution>(
                                    seconds(1)),
                   sim.rng().fork("d"));
  driver.start();
  sim.run_until(seconds(10) + 1);
  EXPECT_EQ(thread.aex_count(), 10u);
}

TEST(AexDriver, StopHaltsDelivery) {
  sim::Simulation sim(7);
  EnclaveThread thread(sim);
  AexDriver driver(sim, thread,
                   std::make_unique<FixedAexDistribution>(seconds(1)),
                   sim.rng().fork("d"));
  driver.start();
  sim.run_until(seconds(3) + 1);
  driver.stop();
  EXPECT_FALSE(driver.running());
  sim.run_until(seconds(20));
  EXPECT_EQ(thread.aex_count(), 3u);
}

TEST(AexDriver, RestartAndSwapDistribution) {
  sim::Simulation sim(7);
  EnclaveThread thread(sim);
  AexDriver driver(sim, thread,
                   std::make_unique<FixedAexDistribution>(seconds(10)),
                   sim.rng().fork("d"));
  driver.start();
  driver.stop();
  driver.set_distribution(
      std::make_unique<FixedAexDistribution>(seconds(1)));
  driver.start();
  sim.run_until(seconds(5) + 1);
  EXPECT_EQ(thread.aex_count(), 5u);
}

TEST(AexDriver, DoubleStartIsIdempotent) {
  sim::Simulation sim(7);
  EnclaveThread thread(sim);
  AexDriver driver(sim, thread,
                   std::make_unique<FixedAexDistribution>(seconds(1)),
                   sim.rng().fork("d"));
  driver.start();
  driver.start();
  sim.run_until(seconds(2) + 1);
  EXPECT_EQ(thread.aex_count(), 2u);  // not doubled
}

TEST(MachineInterruptHub, FullHitsReachAllThreads) {
  sim::Simulation sim(9);
  EnclaveThread t1(sim), t2(sim), t3(sim);
  MachineInterruptHub hub(sim,
                          std::make_unique<FixedAexDistribution>(seconds(5)),
                          sim.rng().fork("hub"), 1.0);
  hub.register_thread(&t1);
  hub.register_thread(&t2);
  hub.register_thread(&t3);
  hub.start();
  sim.run_until(seconds(16));
  EXPECT_EQ(hub.interrupts_fired(), 3u);
  EXPECT_EQ(t1.aex_count(), 3u);
  EXPECT_EQ(t2.aex_count(), 3u);
  EXPECT_EQ(t3.aex_count(), 3u);
  // Correlation: all three saw the AEX at the same instant.
  EXPECT_EQ(t1.last_aex_time(), t2.last_aex_time());
  EXPECT_EQ(t2.last_aex_time(), t3.last_aex_time());
}

TEST(MachineInterruptHub, PartialHitsSpareExactlyOneThread) {
  sim::Simulation sim(11);
  EnclaveThread t1(sim), t2(sim);
  MachineInterruptHub hub(sim,
                          std::make_unique<FixedAexDistribution>(seconds(1)),
                          sim.rng().fork("hub"), 0.0);  // always partial
  hub.register_thread(&t1);
  hub.register_thread(&t2);
  hub.start();
  sim.run_until(seconds(100) + 1);
  EXPECT_EQ(hub.interrupts_fired(), 100u);
  // Each interrupt hits exactly one of the two threads.
  EXPECT_EQ(t1.aex_count() + t2.aex_count(), 100u);
  EXPECT_GT(t1.aex_count(), 20u);  // roughly balanced
  EXPECT_GT(t2.aex_count(), 20u);
}

TEST(MachineInterruptHub, InvalidParametersThrow) {
  sim::Simulation sim;
  EXPECT_THROW(MachineInterruptHub(sim, nullptr, Rng(1)),
               std::invalid_argument);
  MachineInterruptHub hub(sim,
                          std::make_unique<FixedAexDistribution>(seconds(1)),
                          Rng(1));
  EXPECT_THROW(hub.register_thread(nullptr), std::invalid_argument);
  EXPECT_THROW(MachineInterruptHub(
                   sim, std::make_unique<FixedAexDistribution>(seconds(1)),
                   Rng(1), 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace triad::enclave
