// TimedService live telemetry: the scrapeable TCP endpoints, the
// internal trace ring + online detector bank, the signal-drain path,
// and the offline==online alarm-verdict invariant.
//
// Everything here opens loopback sockets (the `net` ctest label);
// each test GTEST_SKIPs when the sandbox cannot bind loopback.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crypto/channel.h"
#include "obs/detect.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/real_env.h"
#include "timed/service.h"

namespace triad::timed {
namespace {

using runtime::SockAddr;
using runtime::TcpConn;

bool sockets_available() {
  const runtime::UdpSocket probe = runtime::UdpSocket::bind(
      runtime::kLoopbackAny);
  return probe.valid();
}

#define SKIP_WITHOUT_SOCKETS()                                  \
  do {                                                          \
    if (!sockets_available()) {                                 \
      GTEST_SKIP() << "no loopback UDP in this sandbox";        \
    }                                                           \
  } while (0)

/// Minimal HTTP/1.0 GET, the same shape triad_mon and the run_all.sh
/// /dev/tcp scraper use. Returns (status line, body).
std::optional<std::pair<std::string, std::string>> http_get(
    SockAddr addr, const std::string& path) {
  std::string error;
  TcpConn conn = TcpConn::dial(addr, 2000, &error);
  if (!conn.valid()) return std::nullopt;
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!conn.write_all(BytesView{
          reinterpret_cast<const std::uint8_t*>(request.data()),
          request.size()})) {
    return std::nullopt;
  }
  conn.shutdown_write();
  std::string response;
  std::uint8_t buf[4096];
  for (;;) {
    const std::size_t n = conn.read_some(buf, sizeof(buf));
    if (n == 0) break;
    response.append(reinterpret_cast<const char*>(buf), n);
  }
  const auto line_end = response.find("\r\n");
  const auto body = response.find("\r\n\r\n");
  if (line_end == std::string::npos || body == std::string::npos) {
    return std::nullopt;
  }
  return std::make_pair(response.substr(0, line_end),
                        response.substr(body + 4));
}

/// True when any sample line of `family` on the Prometheus page carries
/// a nonzero value.
bool gauge_nonzero(const std::string& text, const std::string& family) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(family, 0) != 0) continue;  // skips "# TYPE/HELP" too
    const auto space = line.rfind(' ');
    if (space == std::string::npos) continue;
    if (std::stod(line.substr(space + 1)) != 0.0) return true;
  }
  return false;
}

/// "# TYPE name kind" lines of a Prometheus page — the family set, which
/// is fixed at registration time and thus identical between a live
/// scrape and the exit dump (values differ, families must not).
std::set<std::string> prom_families(const std::string& text) {
  std::set<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) out.insert(line);
  }
  return out;
}

/// TA + one node, both with telemetry listeners, running until stopped.
struct Cluster {
  obs::Registry ta_registry;
  obs::Registry node_registry;
  std::optional<TimedService> ta;
  std::optional<TimedService> node;
  std::thread ta_thread;
  std::thread node_thread;

  explicit Cluster(bool detectors = false,
                   double nominal_frequency_hz = 0.0) {
    ServiceConfig ta_config;
    ta_config.role = Role::kTa;
    ta_config.ta_id = 9;
    ta_config.trace_capacity = 1 << 14;
    ta_config.telemetry = runtime::kLoopbackAny;
    ta.emplace(std::move(ta_config),
               runtime::ObsBinding{&ta_registry, nullptr});

    ServiceConfig node_config;
    node_config.role = Role::kNode;
    node_config.workers = 2;
    node_config.node.id = 1;
    node_config.node.ta_address = 9;
    node_config.node.calib_pairs = 2;
    node_config.node.calib_wait_high = milliseconds(20);
    node_config.peers = {{9, ta->protocol_addr()}};
    node_config.trace_capacity = 1 << 14;
    node_config.telemetry = runtime::kLoopbackAny;
    node_config.enable_detectors = detectors;
    node_config.detectors.ta_address = 9;
    node_config.detectors.nominal_frequency_hz = nominal_frequency_hz;
    node.emplace(std::move(node_config),
                 runtime::ObsBinding{&node_registry, nullptr});
  }

  bool valid() const { return ta->valid() && node->valid(); }

  void start() {
    ta->start();
    ta_thread = std::thread([this] { ta->run(); });
    node->start();
    node_thread = std::thread([this] { node->run(); });
  }

  /// Waits until the node has calibrated, by scraping /trace — the ring
  /// is node-thread state, so the only race-free reader while the loop
  /// runs is the telemetry endpoint itself.
  bool wait_calibrated(double timeout_ms = 10000.0) {
    const SockAddr addr = node->telemetry_addr();
    const runtime::MonotonicTimer waited;
    while (waited.elapsed_ms() < timeout_ms) {
      if (const auto shipped = http_get(addr, "/trace");
          shipped.has_value()) {
        std::size_t rejected = 0;
        for (const obs::TraceEvent& event :
             obs::parse_jsonl(shipped->second, &rejected)) {
          if (event.type == obs::TraceEventType::kCalibration) return true;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  void stop_and_join() {
    node->stop();
    if (node_thread.joinable()) node_thread.join();
    ta->stop();
    if (ta_thread.joinable()) ta_thread.join();
  }

  ~Cluster() {
    if (node) node->stop();
    if (node_thread.joinable()) node_thread.join();
    if (ta) ta->stop();
    if (ta_thread.joinable()) ta_thread.join();
  }
};

TEST(TimedTelemetry, EndpointsServeMetricsTraceProfAnd404) {
  SKIP_WITHOUT_SOCKETS();
  Cluster cluster;
  ASSERT_TRUE(cluster.valid())
      << cluster.ta->error() << cluster.node->error();
  cluster.start();
  ASSERT_TRUE(cluster.wait_calibrated());
  const SockAddr addr = cluster.node->telemetry_addr();
  ASSERT_NE(addr.port, 0);

  const auto metrics = http_get(addr, "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->first, "HTTP/1.0 200 OK");
  EXPECT_NE(metrics->second.find("obs_trace_dropped_total"),
            std::string::npos);
  EXPECT_NE(metrics->second.find("obs_trace_ring_high_watermark"),
            std::string::npos);
  EXPECT_NE(metrics->second.find("triad_timed_requests_total"),
            std::string::npos);

  const auto trace = http_get(addr, "/trace");
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->first, "HTTP/1.0 200 OK");
  std::size_t rejected = 0;
  const std::vector<obs::TraceEvent> events =
      obs::parse_jsonl(trace->second, &rejected);
  EXPECT_EQ(rejected, 0u);
  EXPECT_FALSE(events.empty());

  const auto prof = http_get(addr, "/prof");
  ASSERT_TRUE(prof.has_value());
  EXPECT_EQ(prof->first, "HTTP/1.0 200 OK");

  const auto missing = http_get(addr, "/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->first, "HTTP/1.0 404 Not Found");

  // The TA's listener works the same way (its trace ships kTaServe).
  const auto ta_trace = http_get(cluster.ta->telemetry_addr(), "/trace");
  ASSERT_TRUE(ta_trace.has_value());
  EXPECT_EQ(ta_trace->first, "HTTP/1.0 200 OK");

  cluster.stop_and_join();
  EXPECT_GE(cluster.node->telemetry()->scrapes(), 4u);
  EXPECT_EQ(cluster.node->trace_ring()->dropped(), 0u);
}

TEST(TimedTelemetry, ScrapedFamiliesMatchTheExitDump) {
  SKIP_WITHOUT_SOCKETS();
  Cluster cluster;
  ASSERT_TRUE(cluster.valid());
  cluster.start();
  ASSERT_TRUE(cluster.wait_calibrated());

  const auto scraped = http_get(cluster.node->telemetry_addr(), "/metrics");
  ASSERT_TRUE(scraped.has_value());
  cluster.stop_and_join();

  std::ostringstream dump;
  cluster.node_registry.write_prometheus(dump);
  EXPECT_EQ(prom_families(scraped->second), prom_families(dump.str()));
}

TimedService* g_signal_service = nullptr;
void stop_on_signal(int) {
  if (g_signal_service != nullptr) g_signal_service->stop();
}

TEST(TimedTelemetry, SignalStopDrainsWorkersAndKeepsFinalDumpsIntact) {
  SKIP_WITHOUT_SOCKETS();
  // The triad_timed SIGINT path, in-process: stop() from a signal
  // handler must drain the node loop AND the serve workers so the final
  // metrics/trace dumps see joined, quiescent state.
  Cluster cluster;
  ASSERT_TRUE(cluster.valid());
  cluster.start();
  ASSERT_TRUE(cluster.wait_calibrated());

  g_signal_service = &*cluster.node;
  auto* previous = std::signal(SIGINT, stop_on_signal);
  ASSERT_NE(previous, SIG_ERR);
  std::raise(SIGINT);
  std::signal(SIGINT, previous);
  g_signal_service = nullptr;

  cluster.node_thread.join();  // run() returns and joins the workers
  for (const auto& worker : cluster.node->serve_workers()) {
    (void)worker;  // joined by run(); reading stats below must be safe
  }
  const std::uint64_t total = cluster.node->trace_ring()->total();
  EXPECT_GT(total, 0u);
  std::ostringstream dump;
  cluster.node_registry.write_prometheus(dump);
  EXPECT_NE(dump.str().find("obs_trace_dropped_total 0"),
            std::string::npos);

  cluster.ta->stop();
  cluster.ta_thread.join();
}

TEST(TimedTelemetry, BindFailureReportsErrnoDetail) {
  SKIP_WITHOUT_SOCKETS();
  // Regression: TelemetryServer used to hand &error_ to
  // TcpListener::open before error_ was constructed (member init
  // order), so a "port in use" failure wrote into a dead string and the
  // service reported "telemetry endpoint: " with no detail.
  std::string listener_error;
  const runtime::TcpListener occupant =
      runtime::TcpListener::open(runtime::kLoopbackAny, &listener_error);
  ASSERT_TRUE(occupant.valid()) << listener_error;

  ServiceConfig config;
  config.role = Role::kTa;
  config.ta_id = 9;
  config.telemetry = occupant.local_addr();  // guaranteed EADDRINUSE
  obs::Registry registry;
  TimedService service(std::move(config),
                       runtime::ObsBinding{&registry, nullptr});
  EXPECT_FALSE(service.valid());
  EXPECT_NE(service.error().find("telemetry endpoint: bind"),
            std::string::npos)
      << service.error();
}

TEST(TimedTelemetry, IdleConnectionsAreCappedAndSwept) {
  SKIP_WITHOUT_SOCKETS();
  ServiceConfig config;
  config.role = Role::kTa;
  config.ta_id = 9;
  config.telemetry = runtime::kLoopbackAny;
  config.telemetry_max_pending = 2;
  config.telemetry_request_deadline = milliseconds(100);
  obs::Registry registry;
  TimedService service(std::move(config),
                       runtime::ObsBinding{&registry, nullptr});
  ASSERT_TRUE(service.valid()) << service.error();
  service.start();
  std::thread runner([&service] { service.run(); });
  const SockAddr addr = service.telemetry_addr();

  // Three connections that never send a request line: the cap (2) must
  // evict the oldest as the third is accepted...
  TcpConn a = TcpConn::dial(addr, 2000);
  TcpConn b = TcpConn::dial(addr, 2000);
  TcpConn c = TcpConn::dial(addr, 2000);
  ASSERT_TRUE(a.valid() && b.valid() && c.valid());
  const std::atomic<std::uint32_t>& active =
      service.telemetry()->active_conns();
  runtime::MonotonicTimer waited;
  while (waited.elapsed_ms() < 5000.0 &&
         active.load(std::memory_order_relaxed) != 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(active.load(std::memory_order_relaxed), 2u);

  // ...and the 100 ms request deadline must sweep the survivors, so an
  // idle client can neither exhaust fds nor pin active_conns() (the
  // workers' scrape signal) nonzero forever.
  waited.restart();
  while (waited.elapsed_ms() < 5000.0 &&
         active.load(std::memory_order_relaxed) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(active.load(std::memory_order_relaxed), 0u);

  // The plane still serves well-behaved scrapers afterwards.
  const auto metrics = http_get(addr, "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->first, "HTTP/1.0 200 OK");

  service.stop();
  runner.join();
}

TEST(TimedTelemetry, BatchDepthGaugeResetsWhenScrapersDisconnect) {
  SKIP_WITHOUT_SOCKETS();
  Cluster cluster;
  ASSERT_TRUE(cluster.valid());
  cluster.start();
  ASSERT_TRUE(cluster.wait_calibrated());
  const SockAddr addr = cluster.node->telemetry_addr();

  const crypto::ClusterKeyring keyring(Bytes(32, 0x42));
  BlockingProbe probe(50, 1, cluster.node->serve_addr(), keyring);
  ASSERT_TRUE(probe.valid());

  // While a scraper connection is open, serve batches are sampled into
  // the gauge.
  bool sampled = false;
  runtime::MonotonicTimer waited;
  while (!sampled && waited.elapsed_ms() < 10000.0) {
    TcpConn holder = TcpConn::dial(addr, 2000);
    ASSERT_TRUE(holder.valid());
    // Give the node thread a moment to accept (raising active_conns).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    (void)probe.request();
    if (const auto metrics = http_get(addr, "/metrics");
        metrics.has_value()) {
      sampled = gauge_nonzero(metrics->second, "triad_timed_batch_depth");
    }
    holder.close_now();
  }
  EXPECT_TRUE(sampled);

  // Once every scraper is gone (the holder above plus each completed
  // http_get), the 1 -> 0 connection edge zeroes the gauge — the next
  // scrape must not present the stale depth as a live reading.
  bool zeroed = false;
  waited.restart();
  while (!zeroed && waited.elapsed_ms() < 10000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (const auto metrics = http_get(addr, "/metrics");
        metrics.has_value()) {
      zeroed = !gauge_nonzero(metrics->second, "triad_timed_batch_depth");
    }
  }
  EXPECT_TRUE(zeroed);

  cluster.stop_and_join();
}

TEST(TimedTelemetry, OnlineAlarmsEqualOfflineReplayOfShippedTrace) {
  SKIP_WITHOUT_SOCKETS();
  // A slope prior of 1 MHz is wildly wrong for any real TSC, so the
  // online bank must alarm on the first calibration. The invariant:
  // replaying the *shipped* JSONL (scraped /trace) through a fresh bank
  // with the same config reproduces the live alarm sequence exactly.
  Cluster cluster(/*detectors=*/true, /*nominal_frequency_hz=*/1e6);
  ASSERT_TRUE(cluster.valid());
  cluster.start();
  ASSERT_TRUE(cluster.wait_calibrated());

  const auto shipped = http_get(cluster.node->telemetry_addr(), "/trace");
  ASSERT_TRUE(shipped.has_value());
  cluster.stop_and_join();

  const std::vector<obs::Alarm>& live = cluster.node->detectors()->alarms();
  ASSERT_FALSE(live.empty());

  std::size_t rejected = 0;
  const std::vector<obs::TraceEvent> events =
      obs::parse_jsonl(shipped->second, &rejected);
  ASSERT_EQ(rejected, 0u);
  obs::DetectorConfig config;
  config.ta_address = 9;
  config.nominal_frequency_hz = 1e6;
  obs::DetectorBank replay(config, nullptr, nullptr);
  for (const obs::TraceEvent& event : events) replay.emit(event);

  // The scrape happened before shutdown, so the shipped prefix may be
  // shorter than the full run — every live alarm up to the scrape point
  // must be reproduced field-for-field, and none invented.
  const std::vector<obs::Alarm>& offline = replay.alarms();
  ASSERT_LE(offline.size(), live.size());
  ASSERT_FALSE(offline.empty());
  for (std::size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ(offline[i].at, live[i].at) << i;
    EXPECT_EQ(offline[i].detector, live[i].detector) << i;
    EXPECT_EQ(offline[i].node, live[i].node) << i;
    EXPECT_EQ(offline[i].source, live[i].source) << i;
    EXPECT_EQ(offline[i].span, live[i].span) << i;
    EXPECT_DOUBLE_EQ(offline[i].value, live[i].value) << i;
    EXPECT_DOUBLE_EQ(offline[i].threshold, live[i].threshold) << i;
  }
  EXPECT_EQ(replay.first_alarm_at(),
            cluster.node->detectors()->first_alarm_at());
}

}  // namespace
}  // namespace triad::timed
