// runtime::RealEnv: real-socket framing, malformed-datagram robustness,
// scheduler ordering, and the SimEnv-vs-RealEnv protocol cross-check.
//
// Every test that needs sockets GTEST_SKIPs when the sandbox cannot bind
// loopback UDP (the CI fallback the realenv smoke tier also honours).
// These tests carry the `net` ctest label; see tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "crypto/channel.h"
#include "net/network.h"
#include "net/wire.h"
#include "obs/detect.h"
#include "obs/trace.h"
#include "runtime/real_env.h"
#include "runtime/sim_env.h"
#include "sim/simulation.h"
#include "ta/time_authority.h"
#include "timed/service.h"
#include "triad/messages.h"

namespace triad::runtime {
namespace {

constexpr NodeId kTa = 100;
constexpr NodeId kClient = 1;

bool sockets_available() {
  const UdpSocket probe = UdpSocket::bind(kLoopbackAny);
  return probe.valid();
}

#define SKIP_WITHOUT_SOCKETS()                                  \
  do {                                                          \
    if (!sockets_available()) {                                 \
      GTEST_SKIP() << "no loopback UDP in this sandbox";        \
    }                                                           \
  } while (0)

TEST(SockAddrTest, ParseRoundTrip) {
  const auto addr = parse_sockaddr("127.0.0.1:9000");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->ip, 0x7f000001u);
  EXPECT_EQ(addr->port, 9000);
  EXPECT_EQ(addr->to_string(), "127.0.0.1:9000");

  EXPECT_FALSE(parse_sockaddr("").has_value());
  EXPECT_FALSE(parse_sockaddr("127.0.0.1").has_value());
  EXPECT_FALSE(parse_sockaddr("127.0.0.1:").has_value());
  EXPECT_FALSE(parse_sockaddr("127.0.0.1:99999").has_value());
  EXPECT_FALSE(parse_sockaddr("256.0.0.1:1").has_value());
  EXPECT_FALSE(parse_sockaddr("1.2.3:4").has_value());
  EXPECT_FALSE(parse_sockaddr("a.b.c.d:1").has_value());
}

TEST(RealSchedulerTest, FifoAtEqualDeadlinesAndCancel) {
  RealClock clock;
  RealScheduler scheduler(clock);

  std::vector<int> order;
  const SimTime due = clock.now();  // already due
  scheduler.schedule_at(due, [&] { order.push_back(1); });
  const TimerId cancelled = scheduler.schedule_at(due, [&] {
    order.push_back(2);
  });
  scheduler.schedule_at(due, [&] { order.push_back(3); });
  EXPECT_TRUE(scheduler.cancel(cancelled));
  EXPECT_FALSE(scheduler.cancel(cancelled));  // double-cancel is a no-op

  scheduler.fire_due(clock.now());
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(scheduler.pending(), 0u);

  // A timer scheduled far in the future stays pending.
  scheduler.schedule_after(hours(1), [&] { order.push_back(4); });
  scheduler.fire_due(clock.now());
  EXPECT_EQ(order.size(), 2u);
  EXPECT_EQ(scheduler.pending(), 1u);
}

TEST(UdpSocketTest, FramingRoundTripOverLoopback) {
  SKIP_WITHOUT_SOCKETS();
  UdpSocket server = UdpSocket::bind(kLoopbackAny);
  UdpSocket client = UdpSocket::bind(kLoopbackAny);
  ASSERT_TRUE(server.valid());
  ASSERT_TRUE(client.valid());
  server.set_recv_timeout_ms(2000);

  const Bytes payload = {0xde, 0xad, 0xbe, 0xef};
  const Bytes datagram = net::wire::encode_frame(7, 9, payload);
  ASSERT_TRUE(client.send_to(server.local_addr(), datagram));

  std::array<RecvView, kRecvBatch> views;
  const std::size_t got = server.recv_batch(views);
  ASSERT_EQ(got, 1u);
  const auto frame = net::wire::decode_frame(views[0].data);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->src, 7u);
  EXPECT_EQ(frame->dst, 9u);
  EXPECT_EQ(Bytes(frame->payload.begin(), frame->payload.end()), payload);
  // The kernel reports the client's bound endpoint as the source.
  EXPECT_EQ(views[0].from, client.local_addr());
}

TEST(TcpConnTest, WriteAllBoundsTotalStallAgainstSlowReader) {
  SKIP_WITHOUT_SOCKETS();
  // SO_SNDTIMEO only bounds each write() call: a reader draining one
  // byte per interval keeps every partial write under the per-call
  // timeout, so without write_all's cumulative deadline a slow-loris
  // scraper could stall the telemetry sender indefinitely.
  std::string error;
  TcpListener listener = TcpListener::open(kLoopbackAny, &error);
  ASSERT_TRUE(listener.valid()) << error;
  TcpConn client = TcpConn::dial(listener.local_addr(), 200, &error);
  ASSERT_TRUE(client.valid()) << error;
  TcpConn server;
  for (int i = 0; i < 200 && !server.valid(); ++i) {
    server = listener.accept_client(/*timeout_ms=*/200);
    if (!server.valid()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_TRUE(server.valid());

  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::uint8_t byte = 0;
    while (!done.load(std::memory_order_relaxed)) {
      (void)client.read_some(&byte, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  // Far larger than the loopback socket buffers, and hours of work at
  // the ~20 B/s the reader drains — the write can only end by deadline.
  const Bytes big(std::size_t{64} << 20, 0xab);
  const MonotonicTimer elapsed;
  const bool ok = server.write_all(BytesView{big.data(), big.size()});
  const double waited_ms = elapsed.elapsed_ms();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_FALSE(ok);
  // 200 ms cumulative deadline + at most one blocked write's own
  // SO_SNDTIMEO + scheduling slack; generous but finite.
  EXPECT_LT(waited_ms, 5000.0);
}

TEST(UdpTransportTest, GarbageAndTruncatedDatagramsCountedNeverFatal) {
  SKIP_WITHOUT_SOCKETS();
  RealEnvConfig config;
  config.listen = kLoopbackAny;
  RealEnv env(config);
  ASSERT_TRUE(env.valid());

  std::optional<Packet> received;
  env.transport()->attach(5, [&](const Packet& p) {
    received.emplace(Packet{p.src, p.dst, {}, p.sent_at, p.id});
    env.stop();
  });

  UdpSocket client = UdpSocket::bind(kLoopbackAny);
  ASSERT_TRUE(client.valid());
  const SockAddr server = env.transport()->local_addr();

  // Four malformed datagrams: short, wrong magic, truncated header, and
  // a valid header addressed to nobody.
  ASSERT_TRUE(client.send_to(server, Bytes{0x01}));
  Bytes wrong_magic = net::wire::encode_frame(1, 5, Bytes{1, 2, 3});
  wrong_magic[0] ^= 0xff;
  ASSERT_TRUE(client.send_to(server, wrong_magic));
  const Bytes valid = net::wire::encode_frame(1, 5, Bytes{1, 2, 3});
  ASSERT_TRUE(
      client.send_to(server, BytesView(valid.data(), net::wire::kHeaderSize - 2)));
  ASSERT_TRUE(client.send_to(server, net::wire::encode_frame(1, 42, Bytes{9})));
  // Then one valid frame for the attached handler; receiving it proves
  // the garbage before it was absorbed without killing the loop.
  ASSERT_TRUE(client.send_to(server, valid));

  env.run_for(seconds(2));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->src, 1u);
  EXPECT_EQ(received->dst, 5u);

  const UdpTransportStats& stats = env.transport()->stats();
  EXPECT_EQ(stats.decode_errors, 3u);
  EXPECT_EQ(stats.dropped_no_receiver, 1u);
  EXPECT_EQ(stats.delivered, 1u);
}

/// Runs one sealed TaRequest/TaResponse exchange against a TimeAuthority
/// and returns the trace as (type, node, peer) tuples.
struct TraceTuple {
  obs::TraceEventType type;
  NodeId node;
  NodeId peer;
  friend bool operator==(const TraceTuple&, const TraceTuple&) = default;
};

std::vector<TraceTuple> tuples_of(const obs::RingTraceSink& trace) {
  std::vector<TraceTuple> out;
  trace.for_each([&](const obs::TraceEvent& event) {
    out.push_back({event.type, event.node, event.peer});
  });
  return out;
}

/// Detector verdicts with the backend-independent fields only (alarm
/// timestamps follow the backend's clock and must not be compared).
struct AlarmTuple {
  obs::DetectorKind detector;
  NodeId node;
  NodeId source;
  friend bool operator==(const AlarmTuple&, const AlarmTuple&) = default;
};

std::vector<AlarmTuple> replay_alarms(const obs::RingTraceSink& trace) {
  obs::DetectorBank bank(obs::DetectorConfig{}, nullptr, nullptr);
  trace.for_each([&](const obs::TraceEvent& event) { bank.emit(event); });
  std::vector<AlarmTuple> out;
  for (const obs::Alarm& alarm : bank.alarms()) {
    out.push_back({alarm.detector, alarm.node, alarm.source});
  }
  return out;
}

std::vector<TraceTuple> sim_exchange(const crypto::Keyring& keyring,
                                     std::vector<AlarmTuple>* alarms) {
  obs::RingTraceSink trace(1024);
  sim::Simulation sim(5);
  net::Network net(sim, std::make_unique<net::FixedDelay>(milliseconds(1)));
  SimEnv env(sim, net, ObsBinding{nullptr, &trace});
  ta::TimeAuthority ta(env, kTa, keyring);

  crypto::SecureChannel client(kClient, keyring);
  bool answered = false;
  net.attach(kClient, [&](const net::Packet& p) {
    answered = client.open(p.payload).has_value();
  });
  net.send(kClient, kTa,
           client.seal(kTa, proto::encode(proto::Message{proto::TaRequest{
                                 .request_id = 4, .wait = 0}})));
  sim.run();
  EXPECT_TRUE(answered);
  if (alarms != nullptr) *alarms = replay_alarms(trace);
  return tuples_of(trace);
}

std::vector<TraceTuple> real_exchange(const crypto::Keyring& keyring,
                                      std::vector<AlarmTuple>* alarms) {
  obs::RingTraceSink trace(1024);
  RealEnvConfig config;
  config.listen = kLoopbackAny;
  config.obs = ObsBinding{nullptr, &trace};
  RealEnv env(config);
  EXPECT_TRUE(env.valid());
  // Client and TA are colocated on the one socket; the wire dst field
  // routes between them, so the datagram loops through the kernel.
  env.transport()->set_peer(kTa, env.transport()->local_addr());
  env.transport()->set_peer(kClient, env.transport()->local_addr());
  ta::TimeAuthority ta(env, kTa, keyring);

  crypto::SecureChannel client(kClient, keyring);
  bool answered = false;
  env.transport()->attach(kClient, [&](const Packet& p) {
    answered = client.open(p.payload).has_value();
    env.stop();
  });
  env.transport()->send(
      kClient, kTa,
      client.seal(kTa, proto::encode(proto::Message{proto::TaRequest{
                            .request_id = 4, .wait = 0}})));
  env.run_for(seconds(5));
  EXPECT_TRUE(answered);
  if (alarms != nullptr) *alarms = replay_alarms(trace);
  return tuples_of(trace);
}

TEST(RealEnvTest, SimAndRealTraceSequencesMatch) {
  SKIP_WITHOUT_SOCKETS();
  const crypto::ClusterKeyring keyring(Bytes(32, 1));
  std::vector<AlarmTuple> sim_alarms;
  std::vector<AlarmTuple> real_alarms;
  const auto sim_trace = sim_exchange(keyring, &sim_alarms);
  const auto real_trace = real_exchange(keyring, &real_alarms);
  // Same protocol, different transport: the (type, node, peer) sequence
  // must be identical; only timestamps differ.
  EXPECT_EQ(sim_trace, real_trace);
  // Detectors are pure trace consumers, so the verdicts must agree
  // across backends too — here an honest exchange raises none on either.
  EXPECT_EQ(sim_alarms, real_alarms);
  EXPECT_TRUE(real_alarms.empty());
  ASSERT_FALSE(real_trace.empty());
  // Spot-check the expected shape: send -> deliver -> serve -> send ->
  // deliver.
  ASSERT_EQ(real_trace.size(), 5u);
  EXPECT_EQ(real_trace[0].type, obs::TraceEventType::kPacketSend);
  EXPECT_EQ(real_trace[1].type, obs::TraceEventType::kPacketDeliver);
  EXPECT_EQ(real_trace[2].type, obs::TraceEventType::kTaServe);
  EXPECT_EQ(real_trace[3].type, obs::TraceEventType::kPacketSend);
  EXPECT_EQ(real_trace[4].type, obs::TraceEventType::kPacketDeliver);
}

TEST(TimedServiceTest, ServesMonotoneSealedTimestamps) {
  SKIP_WITHOUT_SOCKETS();
  using namespace triad::timed;
  const Bytes secret(32, 0x42);

  ServiceConfig ta_config;
  ta_config.role = Role::kTa;
  ta_config.ta_id = 9;
  TimedService ta(ta_config);
  ASSERT_TRUE(ta.valid()) << ta.error();
  ta.start();
  std::thread ta_thread([&ta] { ta.run(); });

  ServiceConfig node_config;
  node_config.role = Role::kNode;
  node_config.workers = 2;
  node_config.node.id = 1;
  node_config.node.ta_address = 9;
  node_config.node.calib_pairs = 2;
  node_config.node.calib_wait_high = milliseconds(20);
  node_config.peers = {{9, ta.protocol_addr()}};
  TimedService node(node_config);
  ASSERT_TRUE(node.valid()) << node.error();
  node.start();
  std::thread node_thread([&node] { node.run(); });

  const crypto::ClusterKeyring keyring(secret);
  timed::BlockingProbe probe(50, 1, node.serve_addr(), keyring);
  ASSERT_TRUE(probe.valid());

  // Wait out calibration, then demand strictly monotone sealed answers.
  std::optional<TrustedTimestamp> first;
  const MonotonicTimer waited;
  while (!first.has_value() && waited.elapsed_ms() < 10000.0) {
    first = probe.request(milliseconds(100));
  }
  ASSERT_TRUE(first.has_value()) << "node never became available";

  SimTime last = first->timestamp;
  for (int i = 0; i < 20; ++i) {
    const auto ts = probe.request();
    ASSERT_TRUE(ts.has_value()) << "request " << i;
    EXPECT_GT(ts->timestamp, last);
    last = ts->timestamp;
  }
  EXPECT_EQ(probe.bad_frames(), 0u);

  node.stop();
  node_thread.join();
  ta.stop();
  ta_thread.join();
  EXPECT_GE(node.total_responses(), 21u);
  EXPECT_EQ(node.total_bad_frames(), 0u);
}

}  // namespace
}  // namespace triad::runtime
