// TSC model, core model, and the INC monitor — including a scaled-down
// version of the paper's RQ A.1 statistics and manipulation-detection
// properties.
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "stats/summary.h"
#include "tsc/core.h"
#include "tsc/inc_monitor.h"
#include "tsc/tsc.h"

namespace triad::tsc {
namespace {

TEST(Tsc, AdvancesAtTrueFrequency) {
  sim::Simulation sim;
  Tsc tsc(sim, 2899.999e6);
  EXPECT_EQ(tsc.read(), 0u);
  sim.run_until(seconds(1));
  EXPECT_NEAR(static_cast<double>(tsc.read()), 2899.999e6, 1.0);
  sim.run_until(seconds(10));
  EXPECT_NEAR(static_cast<double>(tsc.read()), 2899.999e7, 10.0);
}

TEST(Tsc, InitialValueRespected) {
  sim::Simulation sim;
  Tsc tsc(sim, 1e9, 5000);
  EXPECT_EQ(tsc.read(), 5000u);
  sim.run_until(milliseconds(1));
  EXPECT_NEAR(static_cast<double>(tsc.read()), 5000 + 1e6, 1.0);
}

TEST(Tsc, MonotonicWithoutManipulation) {
  sim::Simulation sim;
  Tsc tsc(sim, 3.0e9);
  TscValue prev = tsc.read();
  for (int i = 1; i <= 1000; ++i) {
    sim.run_until(microseconds(i * 7));
    const TscValue now = tsc.read();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Tsc, HypervisorOffsetJumpsValue) {
  sim::Simulation sim;
  Tsc tsc(sim, 1e9);
  sim.run_until(seconds(1));
  const TscValue before = tsc.read();
  tsc.hv_add_offset(1'000'000);
  EXPECT_NEAR(static_cast<double>(tsc.read()),
              static_cast<double>(before) + 1e6, 2.0);
  tsc.hv_add_offset(-2'000'000);  // back in time
  EXPECT_NEAR(static_cast<double>(tsc.read()),
              static_cast<double>(before) - 1e6, 2.0);
}

TEST(Tsc, NegativeTotalClampsToZero) {
  sim::Simulation sim;
  Tsc tsc(sim, 1e9);
  sim.run_until(milliseconds(1));
  tsc.hv_add_offset(-10'000'000);
  EXPECT_EQ(tsc.read(), 0u);
}

TEST(Tsc, HypervisorScaleChangesRateContinuously) {
  sim::Simulation sim;
  Tsc tsc(sim, 1e9);
  sim.run_until(seconds(1));
  const double before = static_cast<double>(tsc.read());
  tsc.hv_set_scale(2.0);
  EXPECT_NEAR(static_cast<double>(tsc.read()), before, 2.0);  // continuous
  sim.run_until(seconds(2));
  EXPECT_NEAR(static_cast<double>(tsc.read()), before + 2e9, 4.0);
  EXPECT_DOUBLE_EQ(tsc.effective_frequency_hz(), 2e9);
  EXPECT_DOUBLE_EQ(tsc.true_frequency_hz(), 1e9);
}

TEST(Tsc, InvalidParametersThrow) {
  sim::Simulation sim;
  EXPECT_THROW(Tsc(sim, 0.0), std::invalid_argument);
  Tsc tsc(sim, 1e9);
  EXPECT_THROW(tsc.hv_set_scale(0.0), std::invalid_argument);
  EXPECT_THROW(tsc.hv_set_scale(-1.0), std::invalid_argument);
}

TEST(Core, ExpectedIncMatchesPaperOperatingPoint) {
  // 15e6 TSC ticks at 2899.999 MHz take ~5.1724 ms; at 3500 MHz with the
  // fitted loop cost this is ~632182 INCs (paper §IV-A1).
  Core core(CoreParams{}, Rng(1));
  const Duration dt = from_seconds(15e6 / kPaperTscFrequencyHz);
  EXPECT_NEAR(core.expected_inc_count(dt), 632182.0, 25.0);
}

TEST(Core, IncCountNoiseIsSmall) {
  Core core(CoreParams{}, Rng(2));
  const Duration dt = from_seconds(15e6 / kPaperTscFrequencyHz);
  stats::SummaryStats stats;
  for (int i = 0; i < 2000; ++i) {
    stats.add(static_cast<double>(core.inc_count(dt)));
  }
  EXPECT_NEAR(stats.mean(), 632182.0, 25.0);
  EXPECT_LT(stats.stddev(), 4.0);  // paper: 2.9 after outlier removal
  EXPECT_GT(stats.stddev(), 0.5);
}

TEST(Core, FrequencyScalingChangesIncRate) {
  Core core(CoreParams{}, Rng(3));
  const Duration dt = milliseconds(5);
  const double at_3500 = core.expected_inc_count(dt);
  core.set_frequency_hz(1750.0e6);
  EXPECT_NEAR(core.expected_inc_count(dt), at_3500 / 2, 1.0);
}

TEST(Core, InvalidParametersThrow) {
  EXPECT_THROW(Core(CoreParams{.frequency_hz = 0}, Rng(1)),
               std::invalid_argument);
  Core core(CoreParams{}, Rng(1));
  EXPECT_THROW(core.set_frequency_hz(-1), std::invalid_argument);
  EXPECT_THROW((void)core.expected_inc_count(-1), std::invalid_argument);
}

struct MonitorFixture {
  sim::Simulation sim{77};
  Tsc tsc{sim, kPaperTscFrequencyHz};
  Core core{CoreParams{}, Rng(42)};
  IncMonitor monitor{tsc, core};
};

TEST(IncMonitor, CalibrationMatchesExpectedWindow) {
  MonitorFixture f;
  const IncCalibration cal = f.monitor.calibrate(kPaperWindowTicks, 100);
  EXPECT_EQ(cal.window_ticks, kPaperWindowTicks);
  EXPECT_NEAR(cal.mean_inc, 632182.0, 25.0);
  EXPECT_LT(cal.stddev_inc, 4.0);
}

TEST(IncMonitor, CleanTscPassesCheck) {
  MonitorFixture f;
  const IncCalibration cal = f.monitor.calibrate(kPaperWindowTicks, 100);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(f.monitor.check(cal));
  }
}

TEST(IncMonitor, DetectsScaleSpeedup) {
  MonitorFixture f;
  const IncCalibration cal = f.monitor.calibrate(kPaperWindowTicks, 100);
  // A 0.1% TSC speedup shifts the window's real duration by 0.1% — about
  // 632 INCs, vastly beyond the ~3 INC noise.
  f.tsc.hv_set_scale(1.001);
  EXPECT_FALSE(f.monitor.check(cal));
}

TEST(IncMonitor, DetectsScaleSlowdown) {
  MonitorFixture f;
  const IncCalibration cal = f.monitor.calibrate(kPaperWindowTicks, 100);
  f.tsc.hv_set_scale(0.999);
  EXPECT_FALSE(f.monitor.check(cal));
}

TEST(IncMonitor, DetectionThresholdAroundTensOfPpm) {
  // The INC monitor's resolution: deviations of ~30 ppm (≈19 INC) are
  // caught; sub-noise deviations are not. This quantifies RQ A.1's
  // "reliably detect TSC discrepancies".
  MonitorFixture f;
  const IncCalibration cal = f.monitor.calibrate(kPaperWindowTicks, 200);
  f.tsc.hv_set_scale(1.0 + 50e-6);  // 50 ppm
  int detections = 0;
  for (int i = 0; i < 50; ++i) {
    if (!f.monitor.check(cal)) ++detections;
  }
  EXPECT_GT(detections, 45);  // reliably caught

  f.tsc.hv_set_scale(1.0 + 1e-6);  // 1 ppm: inside the noise floor
  detections = 0;
  for (int i = 0; i < 50; ++i) {
    if (!f.monitor.check(cal)) ++detections;
  }
  EXPECT_LT(detections, 5);
}

TEST(IncMonitor, CoreFrequencyChangeLooksLikeManipulation) {
  // The paper notes this monitor is frequency-dependent: an OS dropping
  // the core's P-state shifts INC counts exactly like a TSC attack, so
  // Triad must pin the governor (or pair it with a frequency-independent
  // monitor).
  MonitorFixture f;
  const IncCalibration cal = f.monitor.calibrate(kPaperWindowTicks, 100);
  f.core.set_frequency_hz(3400.0e6);
  EXPECT_FALSE(f.monitor.check(cal));
}

TEST(IncMonitor, ContinuityCleanIntervalConsistent) {
  MonitorFixture f;
  const IncCalibration cal = f.monitor.calibrate(kPaperWindowTicks, 100);
  f.monitor.reset_continuity();
  for (int i = 1; i <= 20; ++i) {
    f.sim.run_for(seconds(5));
    const auto check = f.monitor.check_continuity(cal);
    EXPECT_TRUE(check.consistent) << "interval " << i;
    EXPECT_NEAR(check.observed_ticks, check.expected_ticks,
                check.expected_ticks * 20e-6 + 1e6);
    f.monitor.reset_continuity();
  }
}

TEST(IncMonitor, ContinuityDetectsBackwardJump) {
  MonitorFixture f;
  const IncCalibration cal = f.monitor.calibrate(kPaperWindowTicks, 100);
  f.monitor.reset_continuity();
  f.sim.run_until(seconds(2));
  f.tsc.hv_add_offset(-15'000'000);  // 5 ms backwards
  EXPECT_FALSE(f.monitor.check_continuity(cal).consistent);
}

TEST(IncMonitor, ContinuityDetectsForwardJump) {
  MonitorFixture f;
  const IncCalibration cal = f.monitor.calibrate(kPaperWindowTicks, 100);
  f.monitor.reset_continuity();
  f.sim.run_until(seconds(2));
  f.tsc.hv_add_offset(+3'000'000'000LL);  // ~1 s into the future
  EXPECT_FALSE(f.monitor.check_continuity(cal).consistent);
}

TEST(IncMonitor, ContinuityDetectsMidIntervalScaleChange) {
  MonitorFixture f;
  const IncCalibration cal = f.monitor.calibrate(kPaperWindowTicks, 100);
  f.monitor.reset_continuity();
  f.sim.run_until(seconds(10));
  f.tsc.hv_set_scale(1.01);  // second half runs 1% fast
  f.sim.run_until(seconds(20));
  EXPECT_FALSE(f.monitor.check_continuity(cal).consistent);
}

TEST(IncMonitor, ContinuitySubThresholdJumpTolerated) {
  // Jumps below the tolerance floor (1e6 ticks ≈ 0.34 ms) pass — the
  // monitor's resolution limit.
  MonitorFixture f;
  const IncCalibration cal = f.monitor.calibrate(kPaperWindowTicks, 100);
  f.monitor.reset_continuity();
  f.sim.run_until(seconds(1));
  f.tsc.hv_add_offset(100'000);
  EXPECT_TRUE(f.monitor.check_continuity(cal).consistent);
}

TEST(IncMonitor, ContinuityRequiresReset) {
  MonitorFixture f;
  const IncCalibration cal = f.monitor.calibrate(kPaperWindowTicks, 10);
  EXPECT_THROW((void)f.monitor.check_continuity(cal), std::logic_error);
}

TEST(IncMonitor, InvalidUseThrows) {
  MonitorFixture f;
  EXPECT_THROW((void)f.monitor.measure_window(0), std::invalid_argument);
  EXPECT_THROW((void)f.monitor.calibrate(1000, 1), std::invalid_argument);
  EXPECT_THROW((void)f.monitor.check(IncCalibration{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace triad::tsc
